#include <gtest/gtest.h>

#include "datatree/text_io.h"
#include "xmlenc/dtd.h"
#include "xmlenc/xml.h"

namespace fo2dt {
namespace {

const char* kScheduleXml = R"(
<schedule>
  <course ID="5">
    <lecturer faculty="12"> </lecturer>
    <building nr="1"> </building>
  </course>
</schedule>
)";

TEST(XmlTest, ParsePaperExample) {
  auto doc = ParseXml(kScheduleXml);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->tag, "schedule");
  ASSERT_EQ(doc->children.size(), 1u);
  const XmlElement& course = doc->children[0];
  EXPECT_EQ(course.tag, "course");
  ASSERT_EQ(course.attributes.size(), 1u);
  EXPECT_EQ(course.attributes[0].name, "ID");
  EXPECT_EQ(course.attributes[0].value, "5");
  ASSERT_EQ(course.children.size(), 2u);
  EXPECT_EQ(course.children[0].tag, "lecturer");
  EXPECT_EQ(course.children[1].tag, "building");
}

TEST(XmlTest, ParseErrors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a x=5/>").ok());
  EXPECT_FALSE(ParseXml("<a x=\"1/>").ok());
  EXPECT_TRUE(ParseXml("<a x='1'/>").ok());
  EXPECT_TRUE(ParseXml("<a><!-- comment --><b/></a>").ok());
}

TEST(XmlTest, Figure3Encoding) {
  XmlElement doc = *ParseXml(kScheduleXml);
  Alphabet labels;
  ValueDictionary values;
  auto t = EncodeXml(doc, &labels, &values);
  ASSERT_TRUE(t.ok());
  // 7 nodes: schedule, course, ID, lecturer, faculty, building, nr.
  EXPECT_EQ(t->size(), 7u);
  // The course's first child is the ID attribute node with value "5".
  NodeId course = t->first_child(t->root());
  NodeId id = t->first_child(course);
  EXPECT_EQ(labels.Name(t->label(id)), "ID");
  EXPECT_EQ(values.Name(t->data(id)), "5");
  // Attribute nodes precede element children.
  NodeId lecturer = t->next_sibling(id);
  EXPECT_EQ(labels.Name(t->label(lecturer)), "lecturer");
  EXPECT_TRUE(t->Validate().ok());
}

TEST(XmlTest, EncodeDecodeRoundTrip) {
  XmlElement doc = *ParseXml(kScheduleXml);
  Alphabet labels;
  ValueDictionary values;
  DataTree t = *EncodeXml(doc, &labels, &values);
  std::vector<Symbol> attrs = {labels.Find("ID"), labels.Find("faculty"),
                               labels.Find("nr")};
  auto back = DecodeXml(t, labels, values, attrs);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(XmlToString(*back), XmlToString(doc));
}

class DtdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schedule_ = labels_.Intern("schedule");
    course_ = labels_.Intern("course");
    id_ = labels_.Intern("ID");
    lecturer_ = labels_.Intern("lecturer");
    faculty_ = labels_.Intern("faculty");

    Dtd dtd;
    dtd.root = schedule_;
    DtdElement sched;
    sched.element = schedule_;
    sched.content = *ParseRegex("course+", &labels_);
    DtdElement course;
    course.element = course_;
    course.attributes = {id_};
    course.content = *ParseRegex("lecturer?", &labels_);
    DtdElement lecturer;
    lecturer.element = lecturer_;
    lecturer.attributes = {faculty_};
    dtd.elements = {sched, course, lecturer};
    auto schema = DtdToTreeAutomaton(dtd, labels_.size());
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::make_unique<TreeAutomaton>(*schema);
  }

  bool Valid(const char* text) {
    Alphabet copy = labels_;
    auto t = ParseDataTree(text, &copy);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_LE(copy.size(), labels_.size()) << "test used unknown labels";
    return schema_->Accepts(*t);
  }

  Alphabet labels_;
  Symbol schedule_, course_, id_, lecturer_, faculty_;
  std::unique_ptr<TreeAutomaton> schema_;
};

TEST_F(DtdTest, AcceptsValidDocuments) {
  EXPECT_TRUE(Valid("schedule:0 (course:0 (ID:5))"));
  EXPECT_TRUE(Valid("schedule:0 (course:0 (ID:5) course:0 (ID:6))"));
  EXPECT_TRUE(
      Valid("schedule:0 (course:0 (ID:5 lecturer:0 (faculty:12)))"));
}

TEST_F(DtdTest, RejectsInvalidDocuments) {
  // Empty schedule: content model requires course+.
  EXPECT_FALSE(Valid("schedule:0"));
  // Missing the ID attribute.
  EXPECT_FALSE(Valid("schedule:0 (course:0)"));
  // Attribute after the element child (attributes come first).
  EXPECT_FALSE(
      Valid("schedule:0 (course:0 (lecturer:0 (faculty:12) ID:5))"));
  // Two lecturers.
  EXPECT_FALSE(Valid(
      "schedule:0 (course:0 (ID:5 lecturer:0 (faculty:1) lecturer:0 "
      "(faculty:2)))"));
  // Wrong root.
  EXPECT_FALSE(Valid("course:0 (ID:5)"));
  // Lecturer without faculty.
  EXPECT_FALSE(Valid("schedule:0 (course:0 (ID:5 lecturer:0))"));
  // Attribute node with children.
  EXPECT_FALSE(Valid("schedule:0 (course:0 (ID:5 (faculty:1)))"));
}

TEST_F(DtdTest, EmptinessAndWitness) {
  EXPECT_FALSE(schema_->IsEmpty());
  auto w = schema_->FindWitnessTree();
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(schema_->Accepts(*w));
}

TEST(DtdErrorTest, BadInputs) {
  Alphabet labels;
  Symbol a = labels.Intern("a");
  Dtd dtd;
  dtd.root = 7;  // outside alphabet
  EXPECT_FALSE(DtdToTreeAutomaton(dtd, labels.size()).ok());
  dtd.root = a;
  DtdElement e1{a, Regex::Epsilon(), {}};
  dtd.elements = {e1, e1};
  EXPECT_FALSE(DtdToTreeAutomaton(dtd, labels.size()).ok());  // duplicate
}

}  // namespace
}  // namespace fo2dt
