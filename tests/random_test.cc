#include "common/random.h"

#include <vector>

#include <gtest/gtest.h>

namespace fo2dt {
namespace {

// The thread-ownership contract in random.h: workers get independent
// streams via Split(), and the derivation must be deterministic so a
// seeded run stays reproducible regardless of when workers are spawned.
TEST(RandomSourceTest, SplitIsDeterministic) {
  RandomSource a(42);
  RandomSource b(42);
  RandomSource child_a = a.Split();
  RandomSource child_b = b.Split();
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(child_a.Next(), child_b.Next());
  }
  // The parents stay in lockstep after splitting, too.
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomSourceTest, SplitChildDivergesFromParent) {
  RandomSource parent(7);
  RandomSource child = parent.Split();
  int collisions = 0;
  for (int i = 0; i < 256; ++i) {
    if (parent.Next() == child.Next()) ++collisions;
  }
  EXPECT_LT(collisions, 4);
}

TEST(RandomSourceTest, SiblingSplitsDiverge) {
  RandomSource parent(99);
  RandomSource first = parent.Split();
  RandomSource second = parent.Split();
  int collisions = 0;
  for (int i = 0; i < 256; ++i) {
    if (first.Next() == second.Next()) ++collisions;
  }
  EXPECT_LT(collisions, 4);
}

TEST(RandomSourceTest, UniformIntStaysInRange) {
  RandomSource r(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RandomSourceTest, ShuffleIsSeedDeterministic) {
  std::vector<int> first{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> second = first;
  RandomSource r1(11);
  RandomSource r2(11);
  r1.Shuffle(&first);
  r2.Shuffle(&second);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace fo2dt
