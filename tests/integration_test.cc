// End-to-end integration: XML document -> Figure-3 encoding -> DTD schema ->
// constraints -> FO² -> bounded decision, and DNF -> puzzle -> frontend.
// Each step reuses another module's output rather than fixtures.

#include <gtest/gtest.h>

#include "constraints/constraints.h"
#include "frontend/solver.h"
#include "logic/eval.h"
#include "logic/scott.h"
#include "puzzle/counting.h"
#include "puzzle/puzzle.h"
#include "xmlenc/dtd.h"
#include "xmlenc/xml.h"
#include "xpath/xpath.h"

namespace fo2dt {
namespace {

TEST(IntegrationTest, XmlToConstraintsToDecision) {
  // 1. Parse and encode a document.
  XmlElement doc = *ParseXml(
      "<schedule><course ID=\"5\"><lecturer faculty=\"12\"/></course>"
      "<course ID=\"7\"><lecturer faculty=\"12\"/></course></schedule>");
  Alphabet labels;
  ValueDictionary values;
  DataTree tree = *EncodeXml(doc, &labels, &values);

  // 2. A DTD for exactly this shape accepts the encoding.
  Dtd dtd;
  dtd.root = labels.Find("schedule");
  DtdElement sched{dtd.root, *ParseRegex("course+", &labels), {}};
  DtdElement course{labels.Find("course"),
                    *ParseRegex("lecturer?", &labels),
                    {labels.Find("ID")}};
  DtdElement lect{labels.Find("lecturer"),
                  Regex::Epsilon(),
                  {labels.Find("faculty")}};
  dtd.elements = {sched, course, lect};
  TreeAutomaton schema = *DtdToTreeAutomaton(dtd, labels.size());
  EXPECT_TRUE(schema.Accepts(tree));

  // 3. The key holds on the document and its FO² form agrees.
  UnaryKey key{labels.Find("course"), labels.Find("ID")};
  EXPECT_TRUE(DocumentSatisfiesKey(tree, key));
  EXPECT_TRUE(*Evaluator::EvaluateSentence(KeyToFo2(key), tree, nullptr));

  // 4. Consistency of the key relative to the DTD (bounded search finds a
  // small valid document).
  ConstraintSet set;
  set.keys.push_back(key);
  SolverOptions opt;
  opt.max_model_nodes = 4;
  auto sat = CheckConsistencyBounded(schema, set, opt);
  ASSERT_TRUE(sat.ok()) << sat.status().ToString();
  ASSERT_EQ(sat->verdict, SatVerdict::kSat);
  EXPECT_TRUE(schema.Accepts(*sat->witness));
  EXPECT_TRUE(DocumentSatisfiesKey(*sat->witness, key));

  // 5. An XPath query over the same document.
  Alphabet xp_labels = labels;
  XpPath q = *ParseXPath("/Child::course[Child::lecturer]", &xp_labels);
  auto hits = EvaluateXPathFromRoot(tree, q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST(IntegrationTest, DnfThroughPuzzleAndFrontend) {
  // DNF with two blocks: an unsatisfiable one (courses forbidden entirely
  // but required by the language) and a satisfiable one; the frontend must
  // kill the first by counting and solve the second by search.
  ExtAlphabet ext{2, 0};
  DataNormalForm dnf;
  dnf.ext = ext;

  auto letter = [&](ExtSymbol l) {
    TypeSet t(ext.size(), 0);
    t[l] = 1;
    return t;
  };
  // Block 1: label-0 nodes may not coexist with themselves (no 0 anywhere),
  // yet the root must be labeled 0.
  DnfBlock dead;
  SimpleFormula no0;
  no0.kind = SimpleFormula::Kind::kNoCoexist;
  no0.alpha = letter(0);
  no0.beta = letter(0);
  dead.simples.push_back(no0);
  TreeAutomaton root0(ext.profiled_size(), 1);
  root0.SetInitial(0);
  for (Symbol s = 0; s < ext.profiled_size(); ++s) {
    root0.AddHorizontal(0, s, 0);
    root0.AddVertical(0, s, 0);
    if (ext.LabelOf(ext.ExtOf(s)) == 0) root0.SetAccepting(0, s);
  }
  dead.regular.push_back(root0);
  // Block 2: at most one label-0 node per class.
  DnfBlock live;
  SimpleFormula amo;
  amo.kind = SimpleFormula::Kind::kAtMostOne;
  amo.alpha = letter(0);
  live.simples.push_back(amo);
  dnf.blocks = {dead, live};

  SolverOptions opt;
  opt.max_model_nodes = 3;
  auto r = CheckDnfSatisfiability(dnf, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->verdict, SatVerdict::kSat);
  // The witness solves the live block's puzzle.
  Puzzle live_puzzle = *PuzzleFromBlock(live, ext);
  EXPECT_TRUE(
      *IsPuzzleSolution(live_puzzle, *r->witness, *r->witness_interp));

  // With only the dead block, the counting abstraction certifies UNSAT.
  dnf.blocks = {dead};
  auto dead_r = CheckDnfSatisfiability(dnf, opt);
  ASSERT_TRUE(dead_r.ok());
  EXPECT_EQ(dead_r->verdict, SatVerdict::kUnsat);
  EXPECT_EQ(dead_r->method, SatMethod::kCountingAbstraction);
}

TEST(IntegrationTest, ScottFormOfConstraintFormulaStaysFaithful) {
  // Key formula -> Scott normal form -> brute-force EMSO evaluation agrees
  // with the direct checker on the paper's example document.
  Alphabet labels;
  ValueDictionary values;
  XmlElement doc = *ParseXml(
      "<schedule><course ID=\"5\"/><course ID=\"5\"/></schedule>");
  DataTree tree = *EncodeXml(doc, &labels, &values);
  UnaryKey key{labels.Find("course"), labels.Find("ID")};
  EXPECT_FALSE(DocumentSatisfiesKey(tree, key));
  Formula f = KeyToFo2(key);
  auto snf = ToScottNormalForm(f, 0);
  ASSERT_TRUE(snf.ok());
  Emso2Formula emso;
  emso.num_preds = snf->num_preds;
  emso.core = ScottToFormula(*snf);
  auto via_snf = Evaluator::EvaluateEmsoBruteForce(emso, tree, 22);
  ASSERT_TRUE(via_snf.ok()) << via_snf.status().ToString();
  EXPECT_FALSE(*via_snf);
}

}  // namespace
}  // namespace fo2dt
