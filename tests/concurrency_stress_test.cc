// Concurrency stress for the cross-solve cache under a live worker pool
// (DESIGN.md §12): hammer threads drive SolveCache lookups, inserts, and
// LRU eviction while an in-process fo2dtd worker pool runs real solves that
// consult the same cache. Built for the tsan preset — every shared path
// here (cache LRU list, eviction accounting, server queue, per-connection
// write lock) is exercised from many threads at once — but the invariants
// are asserted in every build:
//
//   * counter coherence: solve-slot hits + misses equals exactly the
//     number of solve-slot lookups issued (by the hammer and by the
//     workers), even while evictions rearrange the LRU under the lookups;
//   * eviction progress: the byte budget is small enough that the hammer
//     must evict, and the cache never exceeds its configured budget after
//     quiescence;
//   * the worker pool answers every request correctly throughout.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/query_log.h"  // JsonEscape
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "server/server.h"

namespace fo2dt {
namespace {

constexpr char kEasyBody[] = "labels 1\nformula exists x. l0(x)";

std::string SocketPath(const char* stem) {
  static int counter = 0;
  return "/tmp/fo2dt_cst_" + std::to_string(::getpid()) + "_" + stem + "_" +
         std::to_string(counter++) + ".sock";
}

std::string JsonStrField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  std::string out;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '"') break;
    out += line[i];
  }
  return out;
}

std::string SolveRequestLine(const std::string& id, const std::string& body) {
  return "{\"op\":\"solve\",\"id\":\"" + id +
         "\",\"facade\":\"frontend.sat\",\"body\":\"" + JsonEscape(body) +
         "\",\"deadline_ms\":10000}\n";
}

/// Minimal blocking line client over the daemon's Unix socket.
class LineClient {
 public:
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool RecvLine(std::string* out, int timeout_ms = 60000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (true) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, 100) <= 0) continue;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(ConcurrencyStressTest, CacheCountersStayCoherentUnderWorkerPool) {
  SolveCache& cache = SolveCache::Instance();
  SolveCacheConfig config;
  config.enabled = true;
  // Small enough that the hammer's distinct keys must evict (each stored
  // entry is a few hundred bytes; the hammer inserts far more than fit).
  config.max_bytes = 32 * 1024;
  cache.Configure(config);
  cache.Clear();

  SolveServerOptions options;
  options.socket_path = SocketPath("coherent");
  options.num_workers = 4;
  options.admission.tenant_active_limit = 0;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kHammerThreads = 4;
  constexpr int kHammerOps = 400;
  constexpr int kSolveClients = 3;
  constexpr int kSolvesPerClient = 25;

  // atomic: relaxed tallies summed after the joins below.
  std::atomic<uint64_t> hammer_lookups{0};
  std::atomic<uint64_t> hammer_hits{0};
  std::atomic<int> client_failures{0};
  std::atomic<uint64_t> solve_ok{0};

  std::vector<std::thread> threads;
  // Hammer: rotating key space ~4x the byte budget; each miss inserts, so
  // the LRU evicts continuously while lookups walk it.
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kHammerOps; ++i) {
        const std::string key =
            "stress:" + std::to_string(t) + ":" + std::to_string(i % 100);
        auto hit = cache.Lookup(key, names::kMetricCacheSolveHits,
                                names::kMetricCacheSolveMisses);
        hammer_lookups.fetch_add(1, std::memory_order_relaxed);
        if (hit.has_value()) {
          hammer_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          SolveCacheEntry entry;
          entry.verdict = "SAT";
          entry.method = "stress";
          entry.steps = static_cast<uint64_t>(i);
          entry.payload.assign(200, 'x');
          cache.Insert(key, entry, nullptr, names::kModFrontendSolver);
        }
      }
    });
  }
  // Worker-pool load: every solve of the shared body does exactly one
  // verdict-cache lookup inside the solver (frontend/solver.cc), so each
  // OK response accounts for one more lookup in the coherence equation.
  for (int c = 0; c < kSolveClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect(options.socket_path)) {
        client_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < kSolvesPerClient; ++i) {
        const std::string id =
            "s" + std::to_string(c) + "_" + std::to_string(i);
        std::string line;
        if (!client.Send(SolveRequestLine(id, kEasyBody)) ||
            !client.RecvLine(&line)) {
          client_failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (JsonStrField(line, "status") != "OK" ||
            JsonStrField(line, "verdict") != "SAT") {
          client_failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        solve_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Shutdown();

  ASSERT_EQ(client_failures.load(), 0);
  ASSERT_EQ(solve_ok.load(),
            static_cast<uint64_t>(kSolveClients * kSolvesPerClient));

  const SolveCache::Stats stats = cache.stats();
  // The coherence contract: every solve-slot lookup was counted exactly
  // once as a hit or a miss — no lookup lost to a racing insert/eviction.
  EXPECT_EQ(stats.solve_hits + stats.solve_misses,
            hammer_lookups.load() + solve_ok.load());
  // The hammer's key space exceeds the byte budget several times over.
  EXPECT_GT(stats.solve_evictions, 0u);
  EXPECT_LE(stats.bytes, config.max_bytes);
  // Keys repeat within each hammer thread (i % 100), so warm iterations
  // hit unless eviction got there first; either way hits were observed
  // somewhere (the repeated solve body guarantees at least the warm
  // solves hit).
  EXPECT_GT(stats.solve_hits, 0u);

  cache.Configure(SolveCacheConfig{});  // disable again for other tests
}

// The telemetry plane's lock-free histogram under the tsan microscope:
// eight threads hammer Record while taking Snapshots mid-flight (snapshots
// may tear across fields — that is documented and benign — but must never
// race). After the joins the final snapshot is exact: no Record lost to any
// interleaving, buckets/count/sum/max all coherent.
TEST(ConcurrencyStressTest, HistogramRecordSnapshotStaysCoherent) {
  Histogram hist{names::kMetricHistWireMs};  // local target, not registered
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        hist.Record(i);  // values span buckets 0..15
        if (i % 512 == static_cast<uint64_t>(t)) {
          HistogramSnapshot mid = hist.Snapshot();
          // Monotone sanity only — mid-flight fields may mutually tear.
          EXPECT_LE(mid.max, kOpsPerThread - 1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  HistogramSnapshot snap = hist.Snapshot();
  const uint64_t total = kThreads * kOpsPerThread;
  EXPECT_EQ(snap.count, total);
  // Each thread recorded 0..N-1 once: sum = threads * N*(N-1)/2.
  EXPECT_EQ(snap.sum, kThreads * (kOpsPerThread * (kOpsPerThread - 1) / 2));
  EXPECT_EQ(snap.max, kOpsPerThread - 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, total);
  // Percentiles are monotone and tail-clamped to the exact max.
  EXPECT_LE(snap.Percentile(50), snap.Percentile(95));
  EXPECT_LE(snap.Percentile(95), snap.Percentile(99));
  EXPECT_LE(snap.Percentile(99), static_cast<double>(snap.max));
}

}  // namespace
}  // namespace fo2dt
