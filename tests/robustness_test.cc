/// \file robustness_test.cc
/// \brief Execution governor and graceful degradation tests.
///
/// Covers the ExecutionContext subsystem (deadline, hierarchical
/// cancellation, accounting, StopReason), the FirstWinsFanout protocol, the
/// ThreadStats quiescence contract, and the failpoint framework: every
/// injected fault must surface as a clean Status with an intact StopReason —
/// never a crash, hang (guarded by a watchdog), leak, or wrong verdict.
/// Failpoint-dependent tests skip themselves in builds where the sites are
/// compiled out (release/RelWithDebInfo); the sanitizer presets build Debug
/// and run them all.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arith/bigint.h"
#include "common/execution_context.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_stats.h"
#include "constraints/constraints.h"
#include "frontend/solver.h"
#include "lcta/lcta.h"
#include "logic/parser.h"
#include "solverlp/ilp.h"
#include "xmlenc/dtd.h"

namespace fo2dt {
namespace {

/// Aborts the process if the guarded scope outlives `limit` — turns a hang
/// (the one failure mode a test cannot otherwise report) into a loud crash.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds limit)
      : thread_([this, limit] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, limit, [this] { return done_; })) {
            std::fprintf(stderr, "watchdog: test hung; aborting\n");
            std::abort();
          }
        }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

/// Disarms every failpoint when the test scope exits, pass or fail.
struct FailpointGuard {
  ~FailpointGuard() { Failpoints::Instance().DisableAll(); }
};

LinearExpr MakeExpr(std::vector<int64_t> coeffs, int64_t c) {
  LinearExpr e{BigInt(c)};
  for (size_t i = 0; i < coeffs.size(); ++i) {
    e.AddTerm(static_cast<VarId>(i), BigInt(coeffs[i]));
  }
  return e;
}

// Automaton over one symbol accepting all "flat" trees (root + leaf
// children); the standard small LCTA test instance.
TreeAutomaton FlatTrees() {
  TreeAutomaton a(1, 2);
  a.SetInitial(0);
  a.AddHorizontal(0, 0, 0);
  a.AddVertical(0, 0, 1);
  a.SetAccepting(1, 0);
  a.SetAccepting(0, 0);
  return a;
}

// ---------------------------------------------------------------------------
// StopReason plumbing
// ---------------------------------------------------------------------------

TEST(StopReasonTest, ToStringNamesBudgetModuleAndCounters) {
  StopReason r{StopKind::kNodeBudget, "solverlp.ilp", 200001, 200000};
  EXPECT_TRUE(r.stopped());
  std::string s = r.ToString();
  EXPECT_NE(s.find("solverlp.ilp"), std::string::npos) << s;
  EXPECT_NE(s.find("200001"), std::string::npos) << s;
  EXPECT_NE(s.find("200000"), std::string::npos) << s;
  EXPECT_FALSE(StopReason{}.stopped());
}

TEST(StopReasonTest, SurvivesWithContext) {
  Status st = Status::ResourceExhausted(
      "node budget", StopReason{StopKind::kNodeBudget, "solverlp.ilp", 7, 5});
  ASSERT_NE(st.stop_reason(), nullptr);
  Status wrapped = st.WithContext("while testing");
  ASSERT_NE(wrapped.stop_reason(), nullptr);
  EXPECT_EQ(wrapped.stop_reason()->kind, StopKind::kNodeBudget);
  EXPECT_EQ(wrapped.stop_reason()->counter, 7u);
  EXPECT_EQ(Status::OK().stop_reason(), nullptr);
}

// ---------------------------------------------------------------------------
// CancellationToken / FirstWinsFanout / ExecCheckpoint
// ---------------------------------------------------------------------------

TEST(CancellationTokenTest, HierarchyAndFlagAdapter) {
  CancellationToken inert;
  EXPECT_FALSE(inert.CanBeCancelled());
  EXPECT_FALSE(inert.IsCancelled());
  inert.RequestCancel();  // no-op
  EXPECT_FALSE(inert.IsCancelled());

  CancellationToken parent = CancellationToken::Create();
  CancellationToken child = parent.Child();
  CancellationToken grandchild = child.Child();
  EXPECT_FALSE(grandchild.IsCancelled());
  // Cancelling a child leaves the parent untouched.
  child.RequestCancel();
  EXPECT_TRUE(child.IsCancelled());
  EXPECT_TRUE(grandchild.IsCancelled());
  EXPECT_FALSE(parent.IsCancelled());
  // Cancelling the parent reaches every descendant.
  CancellationToken other = parent.Child();
  parent.RequestCancel();
  EXPECT_TRUE(other.IsCancelled());

  std::atomic<bool> flag{false};
  CancellationToken wrapped = CancellationToken::WrapFlag(&flag);
  CancellationToken wrapped_child = wrapped.Child();
  EXPECT_FALSE(wrapped_child.IsCancelled());
  flag.store(true);
  EXPECT_TRUE(wrapped.IsCancelled());
  EXPECT_TRUE(wrapped_child.IsCancelled());
}

TEST(FirstWinsFanoutTest, TerminalCancelsOnlyHigherBranches) {
  CancellationToken parent = CancellationToken::Create();
  FirstWinsFanout fanout(4, parent);
  EXPECT_EQ(fanout.stop_at(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(fanout.Abandoned(i));
    EXPECT_FALSE(fanout.TokenFor(i).IsCancelled());
  }
  fanout.MarkTerminal(2);
  EXPECT_EQ(fanout.stop_at(), 2u);
  EXPECT_FALSE(fanout.TokenFor(0).IsCancelled());
  EXPECT_FALSE(fanout.TokenFor(1).IsCancelled());
  EXPECT_FALSE(fanout.TokenFor(2).IsCancelled());
  EXPECT_TRUE(fanout.TokenFor(3).IsCancelled());
  EXPECT_TRUE(fanout.Abandoned(3));
  EXPECT_FALSE(fanout.Abandoned(2));
  // A later, smaller terminal index still lowers the bar.
  fanout.MarkTerminal(1);
  EXPECT_EQ(fanout.stop_at(), 1u);
  EXPECT_TRUE(fanout.TokenFor(2).IsCancelled());
  // A larger one does not raise it back.
  fanout.MarkTerminal(3);
  EXPECT_EQ(fanout.stop_at(), 1u);
  // The caller's token still cancels everything, including branch 0.
  parent.RequestCancel();
  EXPECT_TRUE(fanout.TokenFor(0).IsCancelled());
}

TEST(ExecCheckpointTest, ReportsDeadlineWithStopReason) {
  ExecutionContext exec;
  exec.SetDeadlineAfter(std::chrono::milliseconds(0));
  ExecCheckpoint checkpoint(&exec, nullptr, "test.module", /*period=*/4);
  Status st = Status::OK();
  for (int i = 0; i < 8 && st.ok(); ++i) st = checkpoint.Tick();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted());
  ASSERT_NE(st.stop_reason(), nullptr);
  EXPECT_EQ(st.stop_reason()->kind, StopKind::kDeadline);
  EXPECT_STREQ(st.stop_reason()->module, "test.module");
  EXPECT_GT(exec.counters().deadline_checks.load(), 0u);
}

TEST(ExecCheckpointTest, ReportsCallerCancellation) {
  ExecutionContext exec;
  CancellationToken token = CancellationToken::Create();
  exec.set_token(token);
  ExecCheckpoint checkpoint(&exec, nullptr, "test.module", /*period=*/2);
  EXPECT_TRUE(checkpoint.Tick().ok());
  token.RequestCancel();
  Status st = Status::OK();
  for (int i = 0; i < 4 && st.ok(); ++i) st = checkpoint.Tick();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled());
  ASSERT_NE(st.stop_reason(), nullptr);
  EXPECT_EQ(st.stop_reason()->kind, StopKind::kCancelled);
}

TEST(ExecutionContextTest, MemoryAccountant) {
  ExecutionContext exec;
  exec.set_max_bytes(1000);
  EXPECT_TRUE(exec.ChargeMemory(600, "test.module").ok());
  Status st = exec.ChargeMemory(600, "test.module");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted());
  ASSERT_NE(st.stop_reason(), nullptr);
  EXPECT_EQ(st.stop_reason()->kind, StopKind::kMemoryBudget);
}

// ---------------------------------------------------------------------------
// Deadline end-to-end: every public entry point fails fast and clean
// ---------------------------------------------------------------------------

TEST(DeadlineTest, FrontendDegradesToUnknownWithin500Ms) {
  Watchdog watchdog(std::chrono::seconds(60));
  Alphabet labels;
  // Propositionally unsatisfiable, so enumeration never terminates early;
  // with 10-node trees the space is astronomically larger than any budget.
  auto f = ParseFormula("exists x. (a(x) & b(x))", &labels);
  ASSERT_TRUE(f.ok());
  SolverOptions opt;
  opt.max_model_nodes = 10;
  opt.max_steps = ~uint64_t{0};  // only the deadline can stop this
  ExecutionContext exec;
  exec.SetDeadlineAfter(std::chrono::milliseconds(50));
  opt.exec = &exec;
  auto start = std::chrono::steady_clock::now();
  auto r = CheckFo2SatisfiabilityBounded(*f, opt);
  auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, SatVerdict::kUnknown);
  ASSERT_TRUE(r->stop_reason.has_value());
  EXPECT_EQ(r->stop_reason->kind, StopKind::kDeadline);
  EXPECT_STREQ(r->stop_reason->module, "frontend.enumerate");
  EXPECT_LT(wall.count(), 500) << "deadline overshoot";
  EXPECT_GT(exec.counters().deadline_checks.load(), 0u);
}

TEST(DeadlineTest, FrontendCancellationPropagatesAsStatus) {
  Alphabet labels;
  auto f = ParseFormula("exists x. (a(x) & b(x))", &labels);
  ASSERT_TRUE(f.ok());
  SolverOptions opt;
  opt.max_model_nodes = 10;
  opt.max_steps = ~uint64_t{0};
  ExecutionContext exec;
  CancellationToken token = CancellationToken::Create();
  exec.set_token(token);
  opt.exec = &exec;
  token.RequestCancel();
  auto r = CheckFo2SatisfiabilityBounded(*f, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
  ASSERT_NE(r.status().stop_reason(), nullptr);
  EXPECT_EQ(r.status().stop_reason()->kind, StopKind::kCancelled);
}

TEST(DeadlineTest, LctaVerdictsIdenticalAcrossThreadCounts) {
  Watchdog watchdog(std::chrono::seconds(60));
  // Flat trees with n_0 == 4: nonempty, witness counts are deterministic.
  LinearExpr e;
  e.AddTerm(0, BigInt(1));
  e.AddConstant(BigInt(-4));
  for (size_t threads : {1u, 2u, 8u}) {
    Lcta lcta{FlatTrees(), LinearConstraint::Eq(e)};
    LctaOptions opt;
    opt.num_threads = threads;
    auto r = CheckLctaEmptiness(lcta, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->empty) << "threads " << threads;
    ASSERT_EQ(r->state_counts.size(), 2u);
    EXPECT_EQ(r->state_counts[0].ToString(), "4") << "threads " << threads;
  }
  // With an already-expired deadline every thread count reports the same
  // clean deadline stop — never a verdict, never a hang.
  for (size_t threads : {1u, 2u, 8u}) {
    Lcta lcta{FlatTrees(), LinearConstraint::Eq(e)};
    LctaOptions opt;
    opt.num_threads = threads;
    ExecutionContext exec;
    exec.SetDeadlineAfter(std::chrono::milliseconds(0));
    opt.exec = &exec;
    auto r = CheckLctaEmptiness(lcta, opt);
    ASSERT_FALSE(r.ok()) << "threads " << threads;
    EXPECT_TRUE(r.status().IsResourceExhausted()) << "threads " << threads;
    ASSERT_NE(r.status().stop_reason(), nullptr);
    EXPECT_EQ(r.status().stop_reason()->kind, StopKind::kDeadline);
  }
}

TEST(DeadlineTest, GovernedIlpSolveAccountsEffort) {
  ExecutionContext exec;
  exec.SetDeadlineAfter(std::chrono::seconds(30));  // generous: must finish
  IlpOptions opt;
  opt.exec = &exec;
  // Fractional LP vertex forces branching, so nodes and pivots accumulate.
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({2, -1}, 0)),
                      LinearAtom::Ge(MakeExpr({0, 1}, -3))};
  auto sol = IlpSolver::FindIntegerPoint(sys, 2, opt);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_TRUE(sol->feasible);
  EXPECT_GT(exec.counters().ilp_nodes.load(), 0u);
  EXPECT_GT(exec.counters().simplex_pivots.load(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadStats quiescence contract
// ---------------------------------------------------------------------------

TEST(ThreadStatsTest, ScopedWorkerTracksLiveWorkers) {
  ASSERT_EQ(ActiveStatsWorkerCount().load(), 0);
  {
    ScopedStatsWorker outer;
    EXPECT_EQ(ActiveStatsWorkerCount().load(), 1);
    std::thread t([] {
      ScopedStatsWorker inner;
      EXPECT_EQ(ActiveStatsWorkerCount().load(), 2);
    });
    t.join();
    EXPECT_EQ(ActiveStatsWorkerCount().load(), 1);
  }
  EXPECT_EQ(ActiveStatsWorkerCount().load(), 0);
}

TEST(ThreadStatsTest, ParallelSolveLeavesWorkersQuiescent) {
  // The DNF fan-out joins its workers before returning, so the registry is
  // quiescent and the (asserted) aggregation precondition holds.
  std::vector<LinearSystem> branches;
  for (int64_t k = 1; k <= 6; ++k) {
    branches.push_back({LinearAtom::Eq(MakeExpr({1, 0}, -k)),
                        LinearAtom::Eq(MakeExpr({0, 1}, k - 10))});
  }
  IlpOptions opt;
  opt.num_threads = 4;
  auto r = IlpSolver::SolveDnf(branches, 2, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->solution.feasible);
  EXPECT_EQ(ActiveStatsWorkerCount().load(), 0);
}

// ---------------------------------------------------------------------------
// Failpoints: graceful degradation under injected faults
// ---------------------------------------------------------------------------

TEST(FailpointTest, FrameworkSkipAndFireWindows) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  FailpointGuard guard;
  int fired = 0;
  Failpoints::Instance().Enable(
      "test.site", [&](void*) { ++fired; }, /*skip=*/2, /*fire=*/3);
  for (int i = 0; i < 10; ++i) FO2DT_FAILPOINT("test.site", nullptr);
  EXPECT_EQ(fired, 3);  // hits 3..5 of 10
  EXPECT_EQ(Failpoints::Instance().HitCount("test.site"), 10u);
  Failpoints::Instance().Disable("test.site");
  FO2DT_FAILPOINT("test.site", nullptr);
  EXPECT_EQ(fired, 3);
}

TEST(FailpointTest, BigIntSlowAddMatchesFastPath) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(60));
  // Reference results on the small-int fast path.
  std::vector<std::pair<int64_t, int64_t>> cases = {
      {0, 0},     {1, -1},         {123456789, 987654321},
      {-5, 3},    {1 << 30, 1},    {-(1LL << 40), 1LL << 40},
      {7, -7000}, {999999, 999999}};
  std::vector<std::string> expected;
  for (const auto& [a, b] : cases) {
    expected.push_back((BigInt(a) + BigInt(b)).ToString());
  }
  // Forcing the limb path must produce identical canonical values.
  FailpointGuard guard;
  Failpoints::Instance().Enable("bigint.force_slow_add", [](void* arg) {
    *static_cast<bool*>(arg) = true;
  });
  for (size_t i = 0; i < cases.size(); ++i) {
    BigInt slow = BigInt(cases[i].first) + BigInt(cases[i].second);
    EXPECT_EQ(slow.ToString(), expected[i])
        << cases[i].first << " + " << cases[i].second;
  }
  EXPECT_GT(Failpoints::Instance().HitCount("bigint.force_slow_add"), 0u);
}

TEST(FailpointTest, SimplexForcedRebuildKeepsVerdict) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(60));
  FailpointGuard guard;
  // Every bound application reports a pivot-cap overflow, forcing the
  // rebuild path; the verdict and witness must not change.
  Failpoints::Instance().Enable("simplex.force_rebuild", [](void* arg) {
    *static_cast<bool*>(arg) = true;
  });
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({2, -1}, 0)),
                      LinearAtom::Ge(MakeExpr({0, 1}, -3))};
  auto sol = IlpSolver::FindIntegerPoint(sys, 2);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  ASSERT_TRUE(sol->feasible);
  for (const auto& atom : sys) {
    EXPECT_TRUE(*atom.Evaluate(sol->assignment)) << atom.ToString();
  }
  EXPECT_GT(Failpoints::Instance().HitCount("simplex.force_rebuild"), 0u);

  LinearSystem infeasible = {LinearAtom::Eq(MakeExpr({2, -2}, -1))};
  auto none = IlpSolver::FindIntegerPoint(infeasible, 2);
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_FALSE(none->feasible);
}

TEST(FailpointTest, IlpWorkerFaultSurfacesCleanStatus) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(60));
  FailpointGuard guard;
  Failpoints::Instance().Enable("ilp.worker_fault", [](void* arg) {
    *static_cast<Status*>(arg) = Status::Internal("injected worker fault");
  });
  std::vector<LinearSystem> branches;
  for (int64_t k = 1; k <= 6; ++k) {
    branches.push_back({LinearAtom::Eq(MakeExpr({1, 0}, -k)),
                        LinearAtom::Eq(MakeExpr({0, 1}, k - 10))});
  }
  IlpOptions opt;
  opt.num_threads = 4;
  auto r = IlpSolver::SolveDnf(branches, 2, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
  EXPECT_NE(r.status().ToString().find("injected worker fault"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(ActiveStatsWorkerCount().load(), 0);  // workers joined cleanly
}

TEST(FailpointTest, MidSearchCancellationThroughBranchHook) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(60));
  FailpointGuard guard;
  CancellationToken token = CancellationToken::Create();
  // Cancel from *inside* the search, at the first branch-and-bound node.
  Failpoints::Instance().Enable(
      "ilp.branch", [&token](void*) { token.RequestCancel(); },
      /*skip=*/0, /*fire=*/1);
  IlpOptions opt;
  opt.cancel_token = token;
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({2, -1}, 0)),
                      LinearAtom::Ge(MakeExpr({0, 1}, -3))};
  auto r = IlpSolver::FindIntegerPoint(sys, 2, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
  ASSERT_NE(r.status().stop_reason(), nullptr);
  EXPECT_EQ(r.status().stop_reason()->kind, StopKind::kCancelled);
}

// ---------------------------------------------------------------------------
// Stop attribution end-to-end: when a deadline (or budget) kills a solve, the
// degraded SatResult must say not just *that* it stopped but *where* — the
// StopReason module and the PhaseProfile's dominant phase have to agree on
// the pipeline stage that was burning the clock. One test per stop site:
// the LCTA cut loop, the simplex/B&B core, the ILP node budget, and the
// connectivity-cut budget.
// ---------------------------------------------------------------------------

/// Key/foreign-key family over a DTD schema, mirroring the benchmark
/// instance: per kind i the root holds "src_i, src_i, ref_i?", each element
/// carrying attribute k_i, with keyed inclusions src_i.k_i -> ref_i.k_i.
/// The inconsistent variant also keys src_i (two sources, at most one
/// target), which drives the specialized ILP into a node-heavy search.
struct KeyFkFamily {
  Alphabet labels;
  TreeAutomaton schema;
  ConstraintSet set;
};

KeyFkFamily MakeKeyFkFamily(size_t kinds, bool consistent) {
  KeyFkFamily f;
  Symbol root = f.labels.Intern("root");
  Dtd dtd;
  dtd.root = root;
  std::string content;
  for (size_t i = 0; i < kinds; ++i) {
    Symbol src = f.labels.Intern("src" + std::to_string(i));
    Symbol ref = f.labels.Intern("ref" + std::to_string(i));
    Symbol key = f.labels.Intern("k" + std::to_string(i));
    dtd.elements.push_back(DtdElement{src, Regex::Epsilon(), {key}});
    dtd.elements.push_back(DtdElement{ref, Regex::Epsilon(), {key}});
    if (!content.empty()) content += ", ";
    content += "src" + std::to_string(i) + ", src" + std::to_string(i) +
               ", ref" + std::to_string(i) + "?";
    if (!consistent) f.set.keys.push_back({src, key});
    f.set.keys.push_back({ref, key});
    f.set.inclusions.push_back({src, key, ref, key});
  }
  DtdElement root_el;
  root_el.element = root;
  Alphabet regex_labels = f.labels;
  root_el.content = *ParseRegex(content, &regex_labels);
  dtd.elements.push_back(root_el);
  f.schema = *DtdToTreeAutomaton(dtd, f.labels.size());
  return f;
}

TEST(StopAttributionTest, CutLoopDeadlineAttributesToLcta) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(120));
  FailpointGuard guard;
  // Stall the first cut round well past the deadline; the per-round
  // checkpoint right after the failpoint must then attribute the stop to
  // the cut loop (module "lcta.cuts"), and the stall itself lands in the
  // kLcta phase timer that wraps SolveRoot.
  Failpoints::Instance().Enable("lcta.cut_round", [](void*) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });
  KeyFkFamily f = MakeKeyFkFamily(1, /*consistent=*/true);
  ExecutionContext exec;
  exec.SetDeadlineAfter(std::chrono::milliseconds(250));
  LctaOptions opt;
  opt.exec = &exec;
  opt.num_threads = 1;  // serialize the root fan-out for determinism
  auto r = CheckKeyForeignKeyConsistencyIlp(f.schema, f.set, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, SatVerdict::kUnknown);
  ASSERT_TRUE(r->stop_reason.has_value());
  EXPECT_EQ(r->stop_reason->kind, StopKind::kDeadline);
  EXPECT_STREQ(r->stop_reason->module, "lcta.cuts");
  ASSERT_TRUE(r->profile.has_value());
  EXPECT_EQ(r->profile->stop.kind, r->stop_reason->kind);
  EXPECT_STREQ(r->profile->stop.module, r->stop_reason->module);
  EXPECT_EQ(r->profile->StopPhase(), Phase::kLcta);
  EXPECT_EQ(r->profile->DominantPhase(), Phase::kLcta);
}

TEST(StopAttributionTest, MidSimplexDeadlineAttributesToSolverCore) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(120));
  FailpointGuard guard;
  // The 2-kind inconsistent root LP runs ~500 exact pivots in one tableau,
  // past the amortized 256-pivot deadline checkpoint. Expire the deadline
  // from inside that pivot loop — the bigint failpoint fires on every
  // small-int add, and in a single-threaded solve the add sequence is
  // deterministic: hit ~100 lands after the cut-round-0 governor check
  // (which happens at add ~4) but before the 256th pivot (~add 430). The
  // stop must then be attributed to simplex pivoting, not the cut loop.
  // The initial deadline must be armed (nonzero) before the solve starts:
  // checkpoints constructed against a deadline-free context disarm
  // themselves for the fast path and would never observe the shortening.
  ExecutionContext exec;
  exec.SetDeadlineAfter(std::chrono::minutes(5));
  Failpoints::Instance().Enable(
      "bigint.force_slow_add",
      [&exec](void*) { exec.SetDeadlineAfter(std::chrono::milliseconds(0)); },
      /*skip=*/99, /*fire=*/1);
  KeyFkFamily f = MakeKeyFkFamily(2, /*consistent=*/false);
  LctaOptions opt;
  opt.exec = &exec;
  opt.num_threads = 1;
  auto r = CheckKeyForeignKeyConsistencyIlp(f.schema, f.set, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, SatVerdict::kUnknown);
  ASSERT_TRUE(r->stop_reason.has_value());
  EXPECT_EQ(r->stop_reason->kind, StopKind::kDeadline);
  EXPECT_STREQ(r->stop_reason->module, "solverlp.simplex");
  ASSERT_TRUE(r->profile.has_value());
  EXPECT_EQ(r->profile->StopPhase(), Phase::kIlp);
  // The phase that was cut short must show up in the profile: the solver
  // core had run hundreds of pivots before the checkpoint fired.
  EXPECT_GT((*r->profile)[Phase::kIlp].calls, 0u);
  EXPECT_GT((*r->profile)[Phase::kIlp].wall_ns, 0u);
  // Distinctness against the cut-loop case above: same stop kind, different
  // module, different owning phase.
  EXPECT_NE(r->profile->StopPhase(), Phase::kLcta);
}

TEST(StopAttributionTest, IlpNodeBudgetAttributesToIlpModule) {
  // No failpoints: runs in every build. The LCTA flow systems are
  // effectively totally unimodular — their searches conclude at the root
  // node — so a genuine budget trip needs a genuinely branching system:
  // 2x + 3y == 1 has the fractional LP vertex x = 1/2 but no nonnegative
  // integer point, and its coefficient gcd is 1 so preprocessing keeps it.
  // A node budget of 0 must then trip with the ILP module's StopReason.
  Watchdog watchdog(std::chrono::seconds(120));
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({2, 3}, -1)),
                      LinearAtom::Ge(MakeExpr({1, 0}, 0)),
                      LinearAtom::Ge(MakeExpr({0, 1}, 0))};
  IlpOptions opt;
  opt.max_nodes = 0;
  auto r = IlpSolver::FindIntegerPoint(sys, 2, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  ASSERT_NE(r.status().stop_reason(), nullptr);
  EXPECT_EQ(r.status().stop_reason()->kind, StopKind::kNodeBudget);
  EXPECT_STREQ(r.status().stop_reason()->module, "solverlp.ilp");
}

TEST(StopAttributionTest, CutBudgetSurfacesWithCutModule) {
  // The phantom-cycle instance (cf. lcta_test ConnectivityCutsFire) needs at
  // least one connectivity cut; with max_cuts=0 the second round trips the
  // cut budget, which must be attributed to the cut loop, not the ILP.
  Watchdog watchdog(std::chrono::seconds(120));
  TreeAutomaton a(1, 3);
  a.SetInitial(0);
  a.AddVertical(0, 0, 1);
  a.SetAccepting(1, 0);
  a.AddVertical(2, 0, 2);
  LinearExpr e = LinearExpr::Variable(2);  // n_2 >= 1: only the phantom
  e.AddConstant(BigInt(-1));
  Lcta lcta{a, LinearConstraint::Ge(e)};
  LctaOptions opt;
  opt.max_cuts = 0;
  auto r = CheckLctaEmptiness(lcta, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  ASSERT_NE(r.status().stop_reason(), nullptr);
  EXPECT_EQ(r.status().stop_reason()->kind, StopKind::kCutBudget);
  EXPECT_STREQ(r.status().stop_reason()->module, "lcta.cuts");
}

TEST(FailpointTest, LctaCutRoundFaultSurfacesCleanStatus) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Watchdog watchdog(std::chrono::seconds(60));
  FailpointGuard guard;
  Failpoints::Instance().Enable("lcta.cut_round", [](void* arg) {
    *static_cast<Status*>(arg) = Status::Internal("injected cut-round fault");
  });
  Lcta lcta{FlatTrees(), LinearConstraint::True()};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
  EXPECT_NE(r.status().ToString().find("injected cut-round fault"),
            std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace fo2dt
