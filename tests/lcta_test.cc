#include "lcta/lcta.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fo2dt {
namespace {

// Automaton over one symbol accepting all "flat" trees: a root whose children
// (any number >= 0) are leaves. States: 0 = leaf child (initial), 1 = root.
TreeAutomaton FlatTrees() {
  TreeAutomaton a(1, 2);
  a.SetInitial(0);
  a.AddHorizontal(0, 0, 0);  // leaf chain
  a.AddVertical(0, 0, 1);    // last leaf hands to root
  a.SetAccepting(1, 0);
  a.SetAccepting(0, 0);  // single node tree
  return a;
}

LinearExpr StateCount(TreeState q, int64_t coeff = 1) {
  LinearExpr e;
  e.AddTerm(q, BigInt(coeff));
  return e;
}

TEST(ShapeEnumerationTest, CatalanCounts) {
  // Ordered unranked trees with n nodes are counted by Catalan(n-1).
  size_t expect[] = {0, 1, 1, 2, 5, 14, 42};
  for (size_t n = 1; n <= 6; ++n) {
    EXPECT_EQ(EnumerateTreeShapes(n).size(), expect[n]) << "n=" << n;
  }
  // Every shape is a valid parent array.
  for (const auto& parents : EnumerateTreeShapes(5)) {
    DataTree t;
    ASSERT_TRUE(t.CreateRoot(0, 0).ok());
    for (size_t v = 1; v < parents.size(); ++v) {
      ASSERT_LT(parents[v], v);  // parents precede children
      ASSERT_TRUE(t.AppendChild(parents[v], 0, 0).ok());
    }
    EXPECT_TRUE(t.Validate().ok());
  }
}

TEST(LctaTest, UnconstrainedMatchesAutomatonEmptiness) {
  Lcta lcta{FlatTrees(), LinearConstraint::True()};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->empty);
}

TEST(LctaTest, CountEqualityConstraint) {
  // Flat trees with exactly 4 leaf-children: n_0 == 4.
  LinearExpr e = StateCount(0);
  e.AddConstant(BigInt(-4));
  Lcta lcta{FlatTrees(), LinearConstraint::Eq(e)};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty);
  EXPECT_EQ(r->state_counts[0].ToString(), "4");
  EXPECT_EQ(r->state_counts[1].ToString(), "1");
  // And a witness of that size exists.
  auto w = FindLctaWitnessBounded(lcta, 6);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->size(), 5u);
}

TEST(LctaTest, InfeasibleCountConstraint) {
  // Flat trees need exactly one root: n_1 == 3 is impossible.
  LinearExpr e = StateCount(1);
  e.AddConstant(BigInt(-3));
  Lcta lcta{FlatTrees(), LinearConstraint::Eq(e)};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty);
  EXPECT_TRUE(FindLctaWitnessBounded(lcta, 5).status().IsNotFound());
}

TEST(LctaTest, EqualCountsOfTwoStates) {
  // Two kinds of leaves under a root (labels a=0, b=1), constraint: equally
  // many of each. States: 0 = a-leaf, 1 = b-leaf, 2 = root.
  TreeAutomaton a(2, 3);
  a.SetInitial(0);
  a.SetInitial(1);
  a.AddHorizontal(0, 0, 0);
  a.AddHorizontal(0, 0, 1);
  a.AddHorizontal(1, 1, 0);
  a.AddHorizontal(1, 1, 1);
  a.AddVertical(0, 0, 2);
  a.AddVertical(1, 1, 2);
  a.SetAccepting(2, 0);
  LinearExpr diff = StateCount(0);
  diff.AddTerm(1, BigInt(-1));
  // n_0 == n_1 and n_0 >= 2.
  LinearExpr at_least = StateCount(0);
  at_least.AddConstant(BigInt(-2));
  Lcta lcta{a, LinearConstraint::And(LinearConstraint::Eq(diff),
                                     LinearConstraint::Ge(at_least))};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty);
  EXPECT_EQ(r->state_counts[0], r->state_counts[1]);
  auto w = FindLctaWitnessBounded(lcta, 6);
  ASSERT_TRUE(w.ok());
  // Witness: root + 2 a-leaves + 2 b-leaves.
  EXPECT_EQ(w->size(), 5u);
}

TEST(LctaTest, PaperRemarkStateVsLetterCounting) {
  // Section III-C notes constraints speak of STATES, not letters: over words
  // (vertical chains here), an automaton can recognize { b^m a^n b^n } by
  // giving the two b-blocks different states and constraining those states —
  // letter counting alone could not. Chain automaton, root at top:
  // states: 3 = bottom-b block, 2 = middle-a block, 1 = top-b block.
  // Build as vertical chain: leaf at bottom, root at top.
  TreeAutomaton a(2, 4);  // labels: a=0, b=1; states 0..3
  // state 3: bottom b's (initial at the leaf), climbing through b's:
  a.SetInitial(3);
  a.AddVertical(3, 1, 3);  // b below, still in bottom block
  a.AddVertical(3, 1, 2);  // switch to a-block
  a.AddVertical(2, 0, 2);  // climb a's
  a.AddVertical(2, 0, 1);  // switch to top b-block
  a.AddVertical(1, 1, 1);  // climb b's
  a.SetAccepting(1, 1);    // root is a b in the top block
  // Constraint: |a-block| == |bottom-b block| i.e. n_2 == n_3, and n_2 >= 1.
  LinearExpr diff = StateCount(2);
  diff.AddTerm(3, BigInt(-1));
  LinearExpr pos = StateCount(2);
  pos.AddConstant(BigInt(-1));
  Lcta lcta{a, LinearConstraint::And(LinearConstraint::Eq(diff),
                                     LinearConstraint::Ge(pos))};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty);
  auto w = FindLctaWitnessBounded(lcta, 5);
  ASSERT_TRUE(w.ok());
  // Smallest member: b a b chain read top-down as b (top), a, b (bottom):
  // m = 1 top-b? Count: top block >= 1 (root b), a-block n, bottom-b n.
  EXPECT_EQ(w->size(), 3u);
}

TEST(LctaTest, DifferentialAgainstBruteForce) {
  // Random small automata + random constraints: whenever brute force finds a
  // witness of size <= 5, the Parikh solver must say nonempty; whenever the
  // Parikh solver says empty, brute force must find nothing.
  RandomSource rng(99);
  size_t checked_nonempty = 0;
  for (int iter = 0; iter < 40; ++iter) {
    size_t states = 2 + rng.UniformIndex(2);
    TreeAutomaton a(2, states);
    a.SetInitial(static_cast<TreeState>(rng.UniformIndex(states)));
    size_t edges = 3 + rng.UniformIndex(5);
    for (size_t e = 0; e < edges; ++e) {
      TreeState f = static_cast<TreeState>(rng.UniformIndex(states));
      TreeState t = static_cast<TreeState>(rng.UniformIndex(states));
      Symbol s = static_cast<Symbol>(rng.UniformIndex(2));
      if (rng.Bernoulli(0.5)) {
        a.AddHorizontal(f, s, t);
      } else {
        a.AddVertical(f, s, t);
      }
    }
    a.SetAccepting(static_cast<TreeState>(rng.UniformIndex(states)),
                   static_cast<Symbol>(rng.UniformIndex(2)));
    // Constraint: n_{q0} <= k for random q0, k.
    LinearExpr e;
    e.AddTerm(static_cast<VarId>(rng.UniformIndex(states)), BigInt(-1));
    e.AddConstant(BigInt(static_cast<int64_t>(rng.UniformIndex(3))));
    Lcta lcta{a, LinearConstraint::Ge(e)};
    auto parikh = CheckLctaEmptiness(lcta);
    ASSERT_TRUE(parikh.ok()) << parikh.status().ToString();
    auto brute = FindLctaWitnessBounded(lcta, 5);
    if (brute.ok()) {
      EXPECT_FALSE(parikh->empty) << "iter " << iter;
      ++checked_nonempty;
    }
    if (parikh->empty) {
      EXPECT_FALSE(brute.ok()) << "iter " << iter;
    }
  }
  EXPECT_GT(checked_nonempty, 5u);  // the test exercised real agreements
}

TEST(LctaTest, ConstraintBeyondStatesRejected) {
  LinearExpr e;
  e.AddTerm(10, BigInt(1));
  Lcta lcta{FlatTrees(), LinearConstraint::Ge(e)};
  EXPECT_FALSE(CheckLctaEmptiness(lcta).ok());
}

TEST(LctaTest, DifferentialRandomized200) {
  // ~200 random LCTAs: the Parikh solver and bounded brute force must agree
  // in both directions within the brute-force bound — a brute witness forces
  // nonempty, and an empty verdict forbids any bounded witness. Nonempty
  // verdicts additionally ship state counts that must be internally sane.
  RandomSource rng(20260805);
  size_t agreements_nonempty = 0;
  size_t agreements_empty = 0;
  for (int iter = 0; iter < 200; ++iter) {
    size_t states = 2 + rng.UniformIndex(2);
    TreeAutomaton a(2, states);
    a.SetInitial(static_cast<TreeState>(rng.UniformIndex(states)));
    if (rng.Bernoulli(0.3)) {
      a.SetInitial(static_cast<TreeState>(rng.UniformIndex(states)));
    }
    size_t edges = 2 + rng.UniformIndex(6);
    for (size_t e = 0; e < edges; ++e) {
      TreeState f = static_cast<TreeState>(rng.UniformIndex(states));
      TreeState t = static_cast<TreeState>(rng.UniformIndex(states));
      Symbol s = static_cast<Symbol>(rng.UniformIndex(2));
      if (rng.Bernoulli(0.5)) {
        a.AddHorizontal(f, s, t);
      } else {
        a.AddVertical(f, s, t);
      }
    }
    a.SetAccepting(static_cast<TreeState>(rng.UniformIndex(states)),
                   static_cast<Symbol>(rng.UniformIndex(2)));
    if (rng.Bernoulli(0.4)) {
      a.SetAccepting(static_cast<TreeState>(rng.UniformIndex(states)),
                     static_cast<Symbol>(rng.UniformIndex(2)));
    }
    // Constraint: random atom or a disjunction, to exercise the DNF fan-out.
    auto random_atom = [&]() {
      LinearExpr e;
      e.AddTerm(static_cast<VarId>(rng.UniformIndex(states)),
                BigInt(rng.Bernoulli(0.5) ? -1 : 1));
      e.AddConstant(BigInt(static_cast<int64_t>(rng.UniformIndex(4)) - 1));
      return rng.Bernoulli(0.25) ? LinearConstraint::Eq(std::move(e))
                                 : LinearConstraint::Ge(std::move(e));
    };
    LinearConstraint c = random_atom();
    if (rng.Bernoulli(0.5)) c = LinearConstraint::Or(c, random_atom());
    if (rng.Bernoulli(0.3)) c = LinearConstraint::And(c, random_atom());
    Lcta lcta{a, c};
    auto parikh = CheckLctaEmptiness(lcta);
    ASSERT_TRUE(parikh.ok()) << "iter " << iter << ": "
                             << parikh.status().ToString();
    auto brute = FindLctaWitnessBounded(lcta, 4);
    if (brute.ok()) {
      EXPECT_FALSE(parikh->empty) << "iter " << iter;
      ++agreements_nonempty;
    } else {
      ASSERT_TRUE(brute.status().IsNotFound()) << brute.status().ToString();
    }
    if (parikh->empty) {
      EXPECT_FALSE(brute.ok()) << "iter " << iter;
      ++agreements_empty;
    } else {
      // The witness counts describe a nonempty run: some state is used and
      // no count is negative.
      ASSERT_EQ(parikh->state_counts.size(), states);
      bool any_used = false;
      for (const BigInt& n : parikh->state_counts) {
        EXPECT_FALSE(n.IsNegative());
        if (n.IsPositive()) any_used = true;
      }
      EXPECT_TRUE(any_used) << "iter " << iter;
    }
  }
  // The generator must exercise both verdicts for the test to mean anything.
  EXPECT_GT(agreements_nonempty, 20u);
  EXPECT_GT(agreements_empty, 20u);
}

TEST(LctaTest, DeterministicAcrossThreadCounts) {
  // Verdict and witness state counts must be identical with 1, 2, and 8
  // threads (first-qualifying-root / first-SAT-branch selection).
  RandomSource rng(424242);
  size_t nonempty_checked = 0;
  for (int iter = 0; iter < 25; ++iter) {
    size_t states = 2 + rng.UniformIndex(3);
    TreeAutomaton a(2, states);
    a.SetInitial(static_cast<TreeState>(rng.UniformIndex(states)));
    size_t edges = 3 + rng.UniformIndex(5);
    for (size_t e = 0; e < edges; ++e) {
      TreeState f = static_cast<TreeState>(rng.UniformIndex(states));
      TreeState t = static_cast<TreeState>(rng.UniformIndex(states));
      Symbol s = static_cast<Symbol>(rng.UniformIndex(2));
      if (rng.Bernoulli(0.5)) {
        a.AddHorizontal(f, s, t);
      } else {
        a.AddVertical(f, s, t);
      }
    }
    // Several accepting roots so the root fan-out has real work to race on.
    for (int k = 0; k < 3; ++k) {
      a.SetAccepting(static_cast<TreeState>(rng.UniformIndex(states)),
                     static_cast<Symbol>(rng.UniformIndex(2)));
    }
    LinearExpr e;
    e.AddTerm(static_cast<VarId>(rng.UniformIndex(states)), BigInt(-1));
    e.AddConstant(BigInt(static_cast<int64_t>(rng.UniformIndex(3)) + 1));
    LinearExpr f2;
    f2.AddTerm(static_cast<VarId>(rng.UniformIndex(states)), BigInt(1));
    f2.AddConstant(BigInt(-1));
    Lcta lcta{a, LinearConstraint::Or(LinearConstraint::Ge(e),
                                      LinearConstraint::Ge(f2))};

    bool ref_empty = true;
    IntAssignment ref_counts;
    for (size_t threads : {1u, 2u, 8u}) {
      LctaOptions opt;
      opt.num_threads = threads;
      auto r = CheckLctaEmptiness(lcta, opt);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (threads == 1) {
        ref_empty = r->empty;
        ref_counts = r->state_counts;
        if (!ref_empty) ++nonempty_checked;
      } else {
        EXPECT_EQ(r->empty, ref_empty) << "iter " << iter << " threads "
                                       << threads;
        ASSERT_EQ(r->state_counts.size(), ref_counts.size());
        for (size_t i = 0; i < ref_counts.size(); ++i) {
          EXPECT_EQ(r->state_counts[i].Compare(ref_counts[i]), 0)
              << "iter " << iter << " threads " << threads << " state " << i;
        }
      }
    }
  }
  EXPECT_GT(nonempty_checked, 5u);  // witnesses were actually compared
}

TEST(LctaTest, ConnectivityCutsFire) {
  // An automaton with a disconnected "phantom" cycle that pure flow happily
  // uses: a δv self-loop on state 2 satisfies every local degree equation
  // (n_2 = out = in_v, no leaves) while being attached to nothing.
  // Constraint demands n_2 >= 1, which only the phantom could satisfy ->
  // must come back EMPTY, via at least one connectivity cut.
  TreeAutomaton a(1, 3);
  a.SetInitial(0);
  a.AddVertical(0, 0, 1);
  a.SetAccepting(1, 0);
  a.AddVertical(2, 0, 2);
  LinearExpr e = StateCount(2);
  e.AddConstant(BigInt(-1));
  Lcta lcta{a, LinearConstraint::Ge(e)};
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->empty);
  EXPECT_GE(r->connectivity_cuts, 1u);
}

}  // namespace
}  // namespace fo2dt
