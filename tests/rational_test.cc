#include "arith/rational.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fo2dt {
namespace {

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(BigInt(6), BigInt(-4));
  EXPECT_EQ(r.num().ToString(), "-3");
  EXPECT_EQ(r.den().ToString(), "2");
  EXPECT_EQ(r.ToString(), "-3/2");
  Rational z(BigInt(0), BigInt(-7));
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.den().ToString(), "1");
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, Comparisons) {
  Rational a(BigInt(1), BigInt(3));
  Rational b(BigInt(2), BigInt(5));
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(-1), Rational(0));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Floor().ToString(), "3");
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Ceil().ToString(), "4");
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Floor().ToString(), "-4");
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Ceil().ToString(), "-3");
  EXPECT_EQ(Rational(5).Floor().ToString(), "5");
  EXPECT_EQ(Rational(5).Ceil().ToString(), "5");
}

TEST(RationalTest, IsInteger) {
  EXPECT_TRUE(Rational(BigInt(4), BigInt(2)).IsInteger());
  EXPECT_FALSE(Rational(BigInt(5), BigInt(2)).IsInteger());
  EXPECT_TRUE(Rational(0).IsInteger());
}

TEST(RationalTest, FieldAxiomsRandomized) {
  RandomSource rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    auto rand_rat = [&rng] {
      int64_t n = rng.UniformInt(-50, 50);
      int64_t d = rng.UniformInt(1, 20);
      return Rational(BigInt(n), BigInt(d));
    };
    Rational a = rand_rat();
    Rational b = rand_rat();
    Rational c = rand_rat();
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!b.IsZero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

}  // namespace
}  // namespace fo2dt
