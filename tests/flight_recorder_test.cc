/// \file flight_recorder_test.cc
/// \brief Flight recorder: JSONL query log across all four facades,
/// failpoint-forced post-mortem capture, and deterministic replay through
/// the fo2dt_replay binary.

#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/execution_context.h"
#include "common/failpoint.h"
#include "common/registry_names.h"
#include "constraints/constraints.h"
#include "datatree/text_io.h"
#include "frontend/solver.h"
#include "logic/parser.h"
#include "vata/vata.h"
#include "xpath/xpath.h"

namespace fo2dt {
namespace {

/// Restores the process-global recorder (and the query log it configures)
/// no matter how the test exits; tests in this binary serialize on it.
class RecorderGuard {
 public:
  explicit RecorderGuard(FlightRecorderConfig config)
      : saved_(FlightRecorder::Instance().config()) {
    FlightRecorder::Instance().Configure(std::move(config));
  }
  ~RecorderGuard() { FlightRecorder::Instance().Configure(saved_); }

 private:
  FlightRecorderConfig saved_;
};

class FailpointGuard {
 public:
  ~FailpointGuard() { Failpoints::Instance().DisableAll(); }
};

std::string UniquePath(const char* stem) {
  static int counter = 0;
  return ::testing::TempDir() + "fr_" + stem + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Value of a top-level string field in one JSONL record. The writer escapes
/// quotes, so scanning to the next unescaped quote is exact.
std::string JsonStringField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  std::string out;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '"') break;
    out += line[i];
  }
  return out;
}

VataAutomaton OneCounterVata() {
  VataAutomaton a;
  a.num_counters = 1;
  a.num_states = 2;
  a.num_labels = 2;
  a.accepting = {1};
  a.leaf_rules.push_back({1, 0, {1}});
  a.transitions.push_back({0, 0, {1}, 0, {1}, 1, {0}});
  return a;
}

TEST(FlightRecorderTest, OneRecordPerSolveAcrossFacades) {
  std::string log = UniquePath("facades") + ".jsonl";
  RecorderGuard guard({log, names::kCaptureModeNever, ""});

  {
    Alphabet labels;
    Formula f = *ParseFormula("exists x. a(x)", &labels);
    SolverOptions opt;
    opt.max_model_nodes = 3;
    auto r = CheckFo2SatisfiabilityBounded(f, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    // Nested facade: consistency runs through the frontend solver
    // internally, and must still produce exactly ONE record.
    TreeAutomaton schema = TreeAutomaton::Universal(3);
    ConstraintSet set;
    set.keys.push_back(UnaryKey{0, 1});
    SolverOptions opt;
    opt.max_model_nodes = 3;
    auto r = CheckConsistencyBounded(schema, set, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    Alphabet labels;
    XpPath p = *ParseXPath("/Child::a", &labels);
    SolverOptions opt;
    opt.max_model_nodes = 3;
    auto r = CheckXPathSatisfiability(p, nullptr, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    Alphabet alpha;
    VataAutomaton a = OneCounterVata();
    DataTree t = *ParseDataTree("a:0 (leaf:0 leaf:0)", &alpha);
    auto r = VataAccepts(a, t);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(*r);
  }

  std::vector<std::string> lines = ReadLines(log);
  ASSERT_EQ(lines.size(), 4u) << "expected one record per facade solve";
  EXPECT_EQ(JsonStringField(lines[0], "facade"), names::kFacadeFrontendSat);
  EXPECT_EQ(JsonStringField(lines[1], "facade"),
            names::kFacadeConstraintsConsistency);
  EXPECT_EQ(JsonStringField(lines[2], "facade"), names::kFacadeXpathSat);
  EXPECT_EQ(JsonStringField(lines[3], "facade"), names::kFacadeVataAccepts);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"v\":1,", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(JsonStringField(line, "input_hash").size(), 16u);
    EXPECT_NE(line.find("\"phases\":{"), std::string::npos);
    EXPECT_NE(line.find("\"budgets\":{"), std::string::npos);
    EXPECT_EQ(JsonStringField(line, "capture"), "");  // mode = never
  }
  EXPECT_EQ(JsonStringField(lines[0], "verdict"), "SAT");
  EXPECT_EQ(JsonStringField(lines[3], "verdict"), "ACCEPT");
  std::remove(log.c_str());
}

TEST(FlightRecorderTest, SlowSolveTailSamplingCapturesDefiniteVerdicts) {
  std::string log = UniquePath("slow") + ".jsonl";
  std::string caps = UniquePath("slowcaps");
  FlightRecorderConfig config;
  config.query_log_path = log;
  config.capture_mode = names::kCaptureModeDegraded;
  config.capture_dir = caps;
  config.slow_ms = 50;  // FO2DT_SLOW_MS equivalent
  RecorderGuard guard(config);

  // Two definite (SAT) solves driven through the recorder directly, so the
  // wall time either side of the threshold is under test control.
  auto run_recorded = [](const char* input, bool past_threshold) {
    SolveRecorder rec(names::kFacadeFrontendSat, nullptr);
    ASSERT_TRUE(rec.active());
    rec.SetInput(input);
    rec.SetReplayInput("labels 1\nformula exists x. l0(x)\n");
    if (past_threshold) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    SolveOutcome outcome;
    outcome.verdict = "SAT";
    rec.Finish(std::move(outcome));
  };
  run_recorded("fast definite", false);
  run_recorded("slow definite", true);

  std::vector<std::string> lines = ReadLines(log);
  ASSERT_EQ(lines.size(), 2u);
  // Under the threshold with a definite verdict: record, no bundle.
  EXPECT_EQ(JsonStringField(lines[0], "capture"), "") << lines[0];
  // Past the threshold: tail-sampled — a bundle with the trace-ring dump
  // explains the latency even though the verdict was definite.
  std::string bundle = JsonStringField(lines[1], "capture");
  ASSERT_FALSE(bundle.empty()) << lines[1];
  EXPECT_TRUE(std::filesystem::exists(
      bundle + "/" + names::kBundleFileTraceJson));
  EXPECT_TRUE(std::filesystem::exists(
      bundle + "/" + names::kBundleFileManifestJson));

  std::remove(log.c_str());
  std::filesystem::remove_all(caps);
}

TEST(FlightRecorderTest, DisabledRecorderWritesNothing) {
  std::string log = UniquePath("disabled") + ".jsonl";
  RecorderGuard guard(FlightRecorderConfig{});  // empty path: disabled

  Alphabet labels;
  Formula f = *ParseFormula("exists x. a(x)", &labels);
  SolverOptions opt;
  opt.max_model_nodes = 3;
  auto r = CheckFo2SatisfiabilityBounded(f, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(std::filesystem::exists(log));
  EXPECT_FALSE(FlightRecorder::Instance().enabled());
}

TEST(FlightRecorderTest, ReplayAlphabetIsPositional) {
  Alphabet a = MakeReplayAlphabet(3);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Name(0), "l0");
  EXPECT_EQ(a.Name(1), "l1");
  EXPECT_EQ(a.Name(2), "l2");
}

/// The tentpole acceptance test: a failpoint-forced degraded solve must
/// produce a self-contained bundle, and fo2dt_replay must re-execute it to
/// the identical outcome (verdict, StopReason kind + module, DominantPhase
/// — all encoded as `expect` lines the binary diffs against).
TEST(FlightRecorderTest, FailpointCaptureReplaysIdentically) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  std::string log = UniquePath("capture") + ".jsonl";
  std::string caps = UniquePath("caps");
  RecorderGuard guard({log, names::kCaptureModeDegraded, caps});
  FailpointGuard fp_guard;
  ASSERT_TRUE(ArmCanonicalReplayInjection(names::kFpLctaCutRound));

  TreeAutomaton schema = TreeAutomaton::Universal(4);
  ConstraintSet set;
  set.keys.push_back(UnaryKey{0, 1});
  set.inclusions.push_back(UnaryInclusion{2, 3, 0, 1});
  ExecutionContext exec;
  LctaOptions opt;
  opt.exec = &exec;
  opt.num_threads = 1;
  auto r = CheckKeyForeignKeyConsistencyIlp(schema, set, opt);
  Failpoints::Instance().DisableAll();

  // The injected cut-round fault degrades the solve (either a kUnknown
  // verdict or a clean ResourceExhausted, depending on where the fan-out
  // unwinds); both are "degraded" to the recorder.
  std::vector<std::string> lines = ReadLines(log);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& record = lines[0];
  EXPECT_EQ(JsonStringField(record, "facade"),
            names::kFacadeConstraintsKeyfk);
  EXPECT_EQ(JsonStringField(record, "stop_kind"), "injected fault");
  EXPECT_EQ(JsonStringField(record, "stop_module"), "lcta.cuts");
  std::string bundle = JsonStringField(record, "capture");
  ASSERT_FALSE(bundle.empty()) << "degraded solve must capture a bundle";

  for (const char* file :
       {names::kBundleFileManifestJson, names::kBundleFileInputFo2dt,
        names::kBundleFileTraceJson, names::kBundleFileMetricsJson}) {
    EXPECT_TRUE(std::filesystem::exists(bundle + "/" + file))
        << "bundle missing " << file;
  }
  std::ifstream in(bundle + "/" + names::kBundleFileInputFo2dt);
  std::stringstream input_text;
  input_text << in.rdbuf();
  EXPECT_NE(input_text.str().find("facade constraints.keyfk"),
            std::string::npos);
  EXPECT_NE(input_text.str().find("failpoint lcta.cut_round"),
            std::string::npos);
  EXPECT_NE(input_text.str().find("expect verdict "), std::string::npos);
  EXPECT_NE(input_text.str().find("expect stop_module lcta.cuts"),
            std::string::npos);

  // Re-execute the bundle; exit 0 means every recorded expectation
  // (verdict, stop kind/module, dominant phase) reproduced exactly.
  std::string cmd = std::string(FO2DT_REPLAY_BIN_PATH) + " \"" + bundle +
                    "\" > \"" + bundle + "/replay.out\" 2>&1";
  int rc = std::system(cmd.c_str());
  std::string replay_out;
  {
    std::ifstream out_file(bundle + "/replay.out");
    std::stringstream buf;
    buf << out_file.rdbuf();
    replay_out = buf.str();
  }
  ASSERT_EQ(rc, 0) << "fo2dt_replay diverged:\n" << replay_out;
  EXPECT_NE(replay_out.find("replay outcome matches the recording"),
            std::string::npos)
      << replay_out;

  std::remove(log.c_str());
  std::filesystem::remove_all(caps);
}

/// Without a bundle on disk the replay binary must fail loudly, not
/// fabricate a match.
TEST(FlightRecorderTest, ReplayRejectsMissingBundle) {
  std::string bogus = UniquePath("nonexistent");
  std::string cmd = std::string(FO2DT_REPLAY_BIN_PATH) + " \"" + bogus +
                    "\" > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, 0);
}

}  // namespace
}  // namespace fo2dt
