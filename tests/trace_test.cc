/// \file trace_test.cc
/// \brief Observability layer tests: TraceRecorder/TraceSpan, the per-phase
/// timers, PhaseProfile snapshots, and the MetricsRegistry federation.
///
/// The span-recording tests only run in builds compiled with FO2DT_TRACE
/// (the sanitizer presets); release-style builds instead static_assert the
/// zero-overhead contract — TraceSpan is an empty type whose constructor
/// compiles to nothing. The snapshot-vs-reset tests exercise the registry's
/// locking under concurrency and are meaningful under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/execution_context.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "solverlp/ilp.h"

namespace fo2dt {
namespace {

// ---------------------------------------------------------------------------
// TraceSpan cost contract
// ---------------------------------------------------------------------------

#ifndef FO2DT_TRACE
// The whole point of the compile-time gate: a span in a release build is an
// empty object with a no-op constructor, so FO2DT_TRACE_SPAN cannot perturb
// benchmark numbers.
static_assert(std::is_empty_v<TraceSpan>,
              "TraceSpan must compile to an empty type without FO2DT_TRACE");
static_assert(sizeof(TraceSpan) == 1,
              "TraceSpan must carry no state without FO2DT_TRACE");
#endif

TEST(TraceRecorderTest, RingBufferOverwritesOldestAndCountsDrops) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.SetCapacity(4);
  EXPECT_EQ(rec.size(), 0u);
  for (uint64_t i = 1; i <= 6; ++i) {
    TraceEvent ev;
    ev.id = i;
    ev.name = "test.event";
    ev.start_ns = i * 10;
    ev.end_ns = i * 10 + 5;
    rec.Record(ev);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, events 1 and 2 overwritten.
  EXPECT_EQ(events.front().id, 3u);
  EXPECT_EQ(events.back().id, 6u);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.SetCapacity(TraceRecorder::kDefaultCapacity);
}

TEST(TraceRecorderTest, WriteJsonEmitsChromeTraceShape) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.SetCapacity(16);
  TraceEvent ev;
  ev.id = 1;
  ev.name = "lcta.cut_round";
  ev.start_ns = 1000;
  ev.end_ns = 3500;
  rec.Record(ev);
  std::string path = ::testing::TempDir() + "/fo2dt_trace_test.json";
  ASSERT_TRUE(rec.WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos) << content;
  EXPECT_NE(content.find("lcta.cut_round"), std::string::npos) << content;
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos) << content;
  std::remove(path.c_str());
  rec.Clear();
  rec.SetCapacity(TraceRecorder::kDefaultCapacity);
}

#ifdef FO2DT_TRACE

TEST(TraceSpanTest, NestedSpansLinkParentIds) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.SetCapacity(64);
  rec.Clear();
  bool was_enabled = rec.enabled();
  rec.SetEnabled(true);
  {
    TraceSpan outer("test.outer");
    { TraceSpan inner("test.inner"); }
  }
  rec.SetEnabled(was_enabled);
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; its parent is the outer span, whose parent is the
  // thread's stack root (0).
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  rec.Clear();
  rec.SetCapacity(TraceRecorder::kDefaultCapacity);
}

TEST(TraceSpanTest, MultiThreadedEmissionUnderFanout) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.SetCapacity(1 << 10);
  rec.Clear();
  bool was_enabled = rec.enabled();
  rec.SetEnabled(true);
  constexpr size_t kBranches = 4;
  constexpr int kSpansPerBranch = 50;
  FirstWinsFanout fanout(kBranches, CancellationToken());
  std::vector<std::thread> threads;
  for (size_t b = 0; b < kBranches; ++b) {
    threads.emplace_back([&fanout, b] {
      for (int i = 0; i < kSpansPerBranch; ++i) {
        if (fanout.TokenFor(b).IsCancelled()) break;
        TraceSpan span("test.branch_work");
        if (i == kSpansPerBranch / 2 && b == 1) fanout.MarkTerminal(b);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  rec.SetEnabled(was_enabled);
  std::vector<TraceEvent> events = rec.Snapshot();
  // Branches above the terminal index stop early; everything recorded is
  // well-formed and each event's parent stayed on its own thread's stack
  // (here: all top-level, so parent == 0).
  EXPECT_GT(events.size(), static_cast<size_t>(kSpansPerBranch));
  for (const TraceEvent& ev : events) {
    EXPECT_STREQ(ev.name, "test.branch_work");
    EXPECT_EQ(ev.parent, 0u);
    EXPECT_LE(ev.start_ns, ev.end_ns);
  }
  rec.Clear();
  rec.SetCapacity(TraceRecorder::kDefaultCapacity);
}

#endif  // FO2DT_TRACE

// ---------------------------------------------------------------------------
// Phase mapping and timers
// ---------------------------------------------------------------------------

TEST(PhaseTest, ModuleStringsMapToOwningPhases) {
  EXPECT_EQ(PhaseForModule("logic.scott"), Phase::kScott);
  EXPECT_EQ(PhaseForModule("logic.dnf"), Phase::kDnf);
  EXPECT_EQ(PhaseForModule("puzzle.bounded"), Phase::kBoundedSearch);
  EXPECT_EQ(PhaseForModule("frontend.enumerate"), Phase::kBoundedSearch);
  EXPECT_EQ(PhaseForModule("puzzle.counting"), Phase::kPuzzle);
  EXPECT_EQ(PhaseForModule("lcta.emptiness"), Phase::kLcta);
  EXPECT_EQ(PhaseForModule("lcta.cuts"), Phase::kLcta);
  EXPECT_EQ(PhaseForModule("solverlp.ilp"), Phase::kIlp);
  EXPECT_EQ(PhaseForModule("solverlp.simplex"), Phase::kIlp);
  EXPECT_EQ(PhaseForModule("vata.derive"), Phase::kVata);
  EXPECT_EQ(PhaseForModule("constraints.keyfk"), Phase::kConstraints);
  EXPECT_EQ(PhaseForModule("xpath.translate"), Phase::kXpath);
  EXPECT_EQ(PhaseForModule("frontend.solver"), Phase::kFrontend);
  EXPECT_EQ(PhaseForModule("no.such.module"), Phase::kFrontend);
  EXPECT_STREQ(PhaseName(Phase::kIlp), "ilp");
  EXPECT_STREQ(PhaseName(Phase::kBoundedSearch), "bounded_search");
}

TEST(PhaseTest, ScopedTimerAttributesSelfTimeExclusively) {
  PhaseStats::Reset();
  constexpr auto kSleep = std::chrono::milliseconds(20);
  {
    ScopedPhaseTimer outer(Phase::kLcta);
    outer.AddEffort(3);
    std::this_thread::sleep_for(kSleep);
    {
      ScopedPhaseTimer inner(Phase::kIlp);
      inner.AddEffort(7);
      std::this_thread::sleep_for(kSleep);
    }
  }
  PhaseCounters agg = PhaseStats::Aggregate();
  const PhaseCounters::Entry& lcta = agg.phases[static_cast<size_t>(Phase::kLcta)];
  const PhaseCounters::Entry& ilp = agg.phases[static_cast<size_t>(Phase::kIlp)];
  EXPECT_EQ(lcta.calls, 1u);
  EXPECT_EQ(ilp.calls, 1u);
  EXPECT_EQ(lcta.effort, 3u);
  EXPECT_EQ(ilp.effort, 7u);
  // Self time: each phase owns roughly its own sleep. The outer timer paused
  // while the inner ran, so it must NOT have absorbed both sleeps.
  const uint64_t kHalfSleepNs = 10 * 1000 * 1000;
  const uint64_t kBothSleepsNs = 38 * 1000 * 1000;
  EXPECT_GE(lcta.wall_ns, kHalfSleepNs);
  EXPECT_GE(ilp.wall_ns, kHalfSleepNs);
  EXPECT_LT(lcta.wall_ns, kBothSleepsNs) << "outer timer double-counted";
  PhaseStats::Reset();
}

TEST(PhaseTest, TimerFeedsExecutionContextProfile) {
  ExecutionContext exec;
  {
    ScopedPhaseTimer timer(Phase::kIlp, &exec);
    timer.AddEffort(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  exec.phases().RecordDepth(3);
  ASSERT_TRUE(exec.ChargeMemory(4096, "test.module").ok());
  PhaseProfile profile = SnapshotPhaseProfile(exec);
  EXPECT_EQ(profile[Phase::kIlp].calls, 1u);
  EXPECT_EQ(profile[Phase::kIlp].effort, 5u);
  EXPECT_GT(profile[Phase::kIlp].wall_ns, 0u);
  EXPECT_EQ(profile.ilp_max_depth, 3u);
  EXPECT_GE(profile.mem_high_water, 4096u);
  EXPECT_EQ(profile.DominantPhase(), Phase::kIlp);
  EXPECT_FALSE(profile.stop.stopped());
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"ilp\""), std::string::npos) << json;
  EXPECT_FALSE(profile.ToString().empty());
  PhaseStats::Reset();
}

// ---------------------------------------------------------------------------
// MetricsRegistry federation
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, FederatesPhaseArithAndSimplexSources) {
  // A tiny governed ILP solve touches BigInt arithmetic, the simplex core,
  // and a phase timer — all three families must land in one snapshot.
  MetricsRegistry::Instance().Reset();
  LinearExpr e{BigInt(-3)};
  e.AddTerm(0, BigInt(2));
  LinearSystem sys = {LinearAtom::Ge(e)};
  auto sol = IlpSolver::FindIntegerPoint(sys, 1);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  ASSERT_TRUE(sol->feasible);

  std::vector<std::string> names = MetricsRegistry::Instance().SourceNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "phase"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "arith"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "simplex"), names.end());

  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  EXPECT_TRUE(snap.Has("phase.ilp.calls"));
  EXPECT_TRUE(snap.Has("simplex.pivots"));
  EXPECT_TRUE(snap.Has("simplex.warm_start_hit_rate"));
  EXPECT_TRUE(snap.Has("arith.small_ops"));
  EXPECT_GT(snap.Get("phase.ilp.calls"), 0.0);
  EXPECT_GT(snap.Get("arith.small_ops"), 0.0);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"simplex.pivots\""), std::string::npos);

  // Reset fans out to every family.
  MetricsRegistry::Instance().Reset();
  MetricsSnapshot zero = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(zero.Get("phase.ilp.calls"), 0.0);
  EXPECT_EQ(zero.Get("simplex.pivots"), 0.0);
  EXPECT_EQ(zero.Get("arith.small_ops"), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentSnapshotAndResetAreSerialized) {
  // No counter writers are live (quiescence holds); snapshot and reset race
  // only against each other and must be mutually safe — meaningful under
  // TSan, which the sanitizer presets run this test with.
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
        ASSERT_FALSE(snap.values.empty());
      }
    });
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) MetricsRegistry::Instance().Reset();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(MetricsRegistry::Instance().SourceNames().empty());
}

}  // namespace
}  // namespace fo2dt
