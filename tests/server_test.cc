/// \file server_test.cc
/// \brief fo2dtd solve server: admission-control determinism, the overload
/// shedding ladder, hierarchical cancellation, crash-safe solve execution,
/// and graceful SIGTERM drain.
///
/// Two layers of coverage:
///   * in-process SolveServer instances — deterministic, and every server
///     thread is visible to tsan, so the concurrent tests double as the
///     data-race assertion for the single-write query-log/cache appends;
///   * a real spawned fo2dtd binary (FO2DT_FO2DTD_BIN_PATH) — worker-fault
///     injection via --failpoint, SIGTERM drain with artifact checks, and
///     the overload recipe exercised over the actual wire.

#include "server/server.h"

#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/flight_recorder.h"
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "server/admission.h"
#include "server/protocol.h"

namespace fo2dt {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures and helpers

/// Trivially satisfiable body: one enumeration step.
constexpr char kEasyBody[] = "labels 1\nformula exists x. l0(x)";
/// A second cacheable body with a distinct cache key.
constexpr char kEasyBody2[] = "labels 2\nformula exists x. l1(x)";
/// Unsatisfiable within its budgets: each node carries exactly one label, so
/// the bounded search exhausts whatever deadline or step budget it is given
/// and returns kUnknown with a StopReason. This is the "slow solve" every
/// pressure test leans on — its runtime is the budget, deterministically.
constexpr char kHardBody[] =
    "labels 2\nbudget max_model_nodes 8\nformula exists x. (l0(x) & l1(x))";

std::string UniquePath(const char* stem) {
  static int counter = 0;
  return ::testing::TempDir() + "srv_" + stem + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

/// Short socket paths: sun_path is ~108 bytes and TempDir can be deep.
std::string SocketPath(const char* stem) {
  static int counter = 0;
  return "/tmp/fo2dt_" + std::to_string(::getpid()) + "_" + stem + "_" +
         std::to_string(counter++) + ".sock";
}

std::string JsonStrField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  std::string out;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '"') break;
    out += line[i];
  }
  return out;
}

uint64_t JsonUintField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) return 0;
  uint64_t value = 0;
  for (size_t i = at + needle.size(); i < line.size(); ++i) {
    if (line[i] < '0' || line[i] > '9') break;
    value = value * 10 + static_cast<uint64_t>(line[i] - '0');
  }
  return value;
}

/// Strips the two response fields that legitimately differ between otherwise
/// bit-identical responses: queue_depth (momentary load) and request_id
/// (unique correlation id minted per request).
std::string WithoutQueueDepth(std::string line) {
  size_t at = line.find(",\"queue_depth\":");
  if (at != std::string::npos) {
    size_t end = at + std::strlen(",\"queue_depth\":");
    while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
    line.erase(at, end - at);
  }
  at = line.find(",\"request_id\":\"");
  if (at != std::string::npos) {
    size_t end = line.find('"', at + std::strlen(",\"request_id\":\""));
    if (end != std::string::npos) line.erase(at, end + 1 - at);
  }
  return line;
}

std::string SolveRequestLine(const std::string& id, const std::string& body,
                             uint64_t deadline_ms) {
  ServerResponse escape_helper;  // reuse the writer's escaping via JsonEscape
  (void)escape_helper;
  std::string line = "{\"op\":\"solve\",\"id\":\"" + id +
                     "\",\"facade\":\"frontend.sat\",\"body\":\"" +
                     JsonEscape(body) + "\"";
  if (deadline_ms != 0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  line += "}\n";
  return line;
}

/// Full request builder: optional tenant and client-supplied correlation id
/// ride along with the solve.
std::string SolveRequestLineFull(const std::string& id,
                                 const std::string& tenant,
                                 const std::string& request_id,
                                 const std::string& body,
                                 uint64_t deadline_ms) {
  std::string line = "{\"op\":\"solve\",\"id\":\"" + id + "\"";
  if (!request_id.empty()) {
    line += ",\"request_id\":\"" + request_id + "\"";
  }
  if (!tenant.empty()) line += ",\"tenant\":\"" + tenant + "\"";
  line += ",\"facade\":\"frontend.sat\",\"body\":\"" + JsonEscape(body) + "\"";
  if (deadline_ms != 0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  line += "}\n";
  return line;
}

/// Decodes a JSON string field with real unescaping. JsonStrField drops the
/// backslash but keeps the escape letter ('\n' comes back as 'n'), which is
/// fine for ids and verdicts but mangles multi-line exposition text.
std::string JsonStrFieldDecoded(const std::string& line,
                                const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::string out;
  for (size_t i = at + needle.size(); i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      char e = line[++i];
      out += e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e;
      continue;
    }
    if (c == '"') break;
    out += c;
  }
  return out;
}

/// Parses Prometheus-style exposition text into series name -> value. The
/// key keeps the label set verbatim, e.g.
///   fo2dt_tenant_requests_total{tenant="acme",outcome="admitted"}
/// Sets *parse_ok to false on any non-comment line that is not `name value`.
std::map<std::string, double> ParseExposition(const std::string& text,
                                              bool* parse_ok) {
  std::map<std::string, double> series;
  *parse_ok = !text.empty();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      *parse_ok = false;
      continue;
    }
    char* endp = nullptr;
    double value = std::strtod(line.c_str() + sp + 1, &endp);
    if (endp == nullptr || *endp != '\0') *parse_ok = false;
    series[line.substr(0, sp)] = value;
  }
  return series;
}

/// Blocking line-oriented client over the daemon's Unix socket.
class LineClient {
 public:
  ~LineClient() { Close(); }

  bool Connect(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line; false on EOF/timeout. Timeouts are
  /// generous because sanitizer builds run everything slower.
  bool RecvLine(std::string* out, int timeout_ms = 60000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (true) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      int ready = ::poll(&pfd, 1, 100);
      if (ready <= 0) continue;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;  // EOF
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Restores the process-global recorder configuration; in-process server
/// tests that enable the query log serialize on the singleton.
class RecorderGuard {
 public:
  explicit RecorderGuard(FlightRecorderConfig config)
      : saved_(FlightRecorder::Instance().config()) {
    FlightRecorder::Instance().Configure(std::move(config));
  }
  ~RecorderGuard() { FlightRecorder::Instance().Configure(saved_); }

 private:
  FlightRecorderConfig saved_;
};

class CacheGuard {
 public:
  explicit CacheGuard(SolveCacheConfig config)
      : saved_(SolveCache::Instance().config()) {
    SolveCache::Instance().Configure(std::move(config));
  }
  ~CacheGuard() { SolveCache::Instance().Configure(saved_); }

 private:
  SolveCacheConfig saved_;
};

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Admission controller: the robustness envelope, unit-tested with no
// sockets or threads in the way.

AdmissionConfig LadderConfig() {
  AdmissionConfig config;
  config.queue_limit = 8;
  config.tenant_active_limit = 0;
  config.degrade_light_pct = 50;
  config.degrade_heavy_pct = 75;
  config.light_divisor = 4;
  config.heavy_divisor = 16;
  return config;
}

TEST(AdmissionTest, LadderWalksDeterministically) {
  AdmissionController admission(LadderConfig(), 1600);
  RequestedBudgets requested;  // all defaults: unlimited effort, no deadline
  std::vector<AdmitAction> actions;
  std::vector<AdmitDecision> decisions;
  for (int i = 0; i < 10; ++i) {
    decisions.push_back(admission.Admit("t", requested));
    actions.push_back(decisions.back().action);
  }
  // Occupancy is measured before each reservation: depths 0..3 accept,
  // 4..5 (>=50% of 8) degrade light, 6..7 (>=75%) degrade heavy, 8 is full.
  std::vector<AdmitAction> expected = {
      AdmitAction::kAccept,       AdmitAction::kAccept,
      AdmitAction::kAccept,       AdmitAction::kAccept,
      AdmitAction::kDegradeLight, AdmitAction::kDegradeLight,
      AdmitAction::kDegradeHeavy, AdmitAction::kDegradeHeavy,
      AdmitAction::kReject,       AdmitAction::kReject};
  EXPECT_EQ(actions, expected);

  // Full-budget admit keeps the default deadline and unlimited effort.
  EXPECT_EQ(decisions[0].deadline_ms, 1600u);
  EXPECT_EQ(decisions[0].max_effort, 0u);
  // Light: deadline intact, unlimited effort hard-capped.
  EXPECT_EQ(decisions[4].deadline_ms, 1600u);
  EXPECT_EQ(decisions[4].max_effort, 65536u);
  // Heavy: deadline / 16 and the tighter effort cap.
  EXPECT_EQ(decisions[6].deadline_ms, 100u);
  EXPECT_EQ(decisions[6].max_effort, 1024u);
  // Rejections carry the queue-full evidence.
  EXPECT_NE(decisions[8].detail.find("queue full (8/8)"), std::string::npos);
  EXPECT_EQ(decisions[8].queue_depth, 8u);

  AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.degraded, 4u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.queue_depth_peak, 8u);
}

TEST(AdmissionTest, RequestedEffortIsDividedNotReplaced) {
  AdmissionController admission(LadderConfig(), 1600);
  RequestedBudgets requested;
  requested.max_effort = 400000;
  for (int i = 0; i < 4; ++i) (void)admission.Admit("t", requested);
  AdmitDecision light = admission.Admit("t", requested);
  EXPECT_EQ(light.action, AdmitAction::kDegradeLight);
  EXPECT_EQ(light.max_effort, 100000u);  // 400000 / light_divisor
  (void)admission.Admit("t", requested);
  AdmitDecision heavy = admission.Admit("t", requested);
  EXPECT_EQ(heavy.action, AdmitAction::kDegradeHeavy);
  EXPECT_EQ(heavy.max_effort, 25000u);  // 400000 / heavy_divisor
}

TEST(AdmissionTest, TenantCapIsPerTenant) {
  AdmissionConfig config = LadderConfig();
  config.tenant_active_limit = 2;
  AdmissionController admission(config, 1000);
  RequestedBudgets requested;
  EXPECT_EQ(admission.Admit("a", requested).action, AdmitAction::kAccept);
  EXPECT_EQ(admission.Admit("a", requested).action, AdmitAction::kAccept);
  AdmitDecision third = admission.Admit("a", requested);
  EXPECT_EQ(third.action, AdmitAction::kReject);
  EXPECT_NE(third.detail.find("tenant 'a'"), std::string::npos);
  // Another tenant is unaffected by a's cap.
  EXPECT_EQ(admission.Admit("b", requested).action, AdmitAction::kAccept);
  // Finishing one of a's solves frees a slot for a again.
  admission.OnDequeue();
  admission.OnFinish("a");
  EXPECT_EQ(admission.Admit("a", requested).action, AdmitAction::kAccept);
}

TEST(AdmissionTest, AbandonReleasesQueueAndTenantSlots) {
  AdmissionConfig config = LadderConfig();
  config.tenant_active_limit = 1;
  config.queue_limit = 1;
  AdmissionController admission(config, 1000);
  RequestedBudgets requested;
  EXPECT_EQ(admission.Admit("a", requested).action, AdmitAction::kAccept);
  EXPECT_EQ(admission.Admit("a", requested).action, AdmitAction::kReject);
  admission.OnAbandon("a");
  EXPECT_EQ(admission.stats().queue_depth, 0u);
  EXPECT_EQ(admission.Admit("a", requested).action, AdmitAction::kAccept);
}

TEST(AdmissionTest, QuotaClampsRequestedBudgets) {
  AdmissionConfig config = LadderConfig();
  config.quota.max_deadline_ms = 500;
  config.quota.max_effort = 10000;
  config.quota.max_bytes = 1 << 20;
  AdmissionController admission(config, 2000);
  RequestedBudgets greedy;
  greedy.deadline_ms = 60000;
  greedy.max_effort = 1u << 30;
  greedy.max_bytes = 1u << 30;
  AdmitDecision decision = admission.Admit("t", greedy);
  EXPECT_EQ(decision.action, AdmitAction::kAccept);
  EXPECT_EQ(decision.deadline_ms, 500u);
  EXPECT_EQ(decision.max_effort, 10000u);
  EXPECT_EQ(decision.max_bytes, static_cast<uint64_t>(1 << 20));
  // A request naming no deadline gets the server default, quota-clamped.
  RequestedBudgets silent;
  AdmitDecision defaulted = admission.Admit("t", silent);
  EXPECT_EQ(defaulted.deadline_ms, 500u);
}

// ---------------------------------------------------------------------------
// In-process server: protocol basics

TEST(SolveServerTest, PingStatsAndErrorsRoundTrip) {
  SolveServerOptions options;
  options.socket_path = SocketPath("basic");
  options.num_workers = 2;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path));
  std::string line;

  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"p\"}\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "OK");
  EXPECT_EQ(JsonStrField(line, "detail"), "pong");
  EXPECT_EQ(JsonStrField(line, "id"), "p");

  ASSERT_TRUE(client.Send("this is not json\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "ERROR");

  ASSERT_TRUE(client.Send("{\"op\":\"solve\",\"facade\":\"no.such\","
                          "\"body\":\"x\"}\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "ERROR");
  EXPECT_NE(JsonStrField(line, "detail").find("no.such"), std::string::npos);

  // frontend.dnf_sat is registered but has no textual body grammar.
  ASSERT_TRUE(client.Send("{\"op\":\"solve\",\"facade\":\"frontend.dnf_sat\","
                          "\"body\":\"x\"}\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "ERROR");

  ASSERT_TRUE(client.Send(SolveRequestLine("s", kEasyBody, 2000)));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "OK");
  EXPECT_EQ(JsonStrField(line, "verdict"), "SAT");

  ASSERT_TRUE(client.Send("{\"op\":\"stats\"}\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonUintField(line, names::kMetricServerCompleted), 1u);

  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Acceptance (a) + (b): a pipelined burst against one slow worker walks the
// shedding ladder — full-budget accepts, then kUnknown-with-StopReason
// degraded solves, and only past that deterministic OVERLOADED rejections
// carrying queue-depth evidence.

TEST(SolveServerTest, OverloadBurstDegradesThenSheds) {
  SolveServerOptions options;
  options.socket_path = SocketPath("burst");
  options.num_workers = 1;
  options.admission = LadderConfig();  // queue_limit 8, no tenant cap
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kBurst = 16;
  constexpr uint64_t kDeadlineMs = 400;
  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path));
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += SolveRequestLine("q" + std::to_string(i), kHardBody, kDeadlineMs);
  }
  ASSERT_TRUE(client.Send(burst));

  std::map<int, std::string> responses;
  for (int i = 0; i < kBurst; ++i) {
    std::string line;
    ASSERT_TRUE(client.RecvLine(&line)) << "response " << i << " missing";
    std::string id = JsonStrField(line, "id");
    ASSERT_EQ(id.substr(0, 1), "q") << line;
    responses[std::stoi(id.substr(1))] = line;
  }
  ASSERT_EQ(responses.size(), static_cast<size_t>(kBurst));

  std::set<int> accepted, degraded, overloaded;
  for (const auto& [seq, line] : responses) {
    std::string status = JsonStrField(line, "status");
    if (status == "OVERLOADED") {
      overloaded.insert(seq);
      // Queue-depth counter evidence rides on every rejection.
      EXPECT_EQ(JsonUintField(line, "queue_depth"), 8u) << line;
      EXPECT_NE(JsonStrField(line, "detail").find("queue full"),
                std::string::npos)
          << line;
      continue;
    }
    ASSERT_EQ(status, "OK") << line;
    // Every admitted hard solve exhausts some budget: kUnknown + StopReason.
    EXPECT_EQ(JsonStrField(line, "verdict"), "UNKNOWN") << line;
    EXPECT_FALSE(JsonStrField(line, "stop_kind").empty()) << line;
    if (line.find("\"degraded\":1") != std::string::npos) {
      degraded.insert(seq);
    } else {
      accepted.insert(seq);
    }
  }

  // The ladder must engage before shedding starts, and the burst is long
  // enough that every rung is exercised.
  EXPECT_GE(accepted.size(), 1u);
  EXPECT_GE(degraded.size(), 2u);
  EXPECT_GE(overloaded.size(), 4u);
  // Monotone escalation: accepts, then degrades, then rejections. The one
  // worker can complete exactly one dequeue while the reader admits the
  // burst (freeing one queue slot), so severity may step back down at most
  // once across the whole sequence — never more.
  int inversions = 0;
  int prev_severity = 0;
  for (const auto& [seq, line] : responses) {
    int severity = overloaded.count(seq) ? 2 : degraded.count(seq) ? 1 : 0;
    if (severity < prev_severity) ++inversions;
    prev_severity = severity;
  }
  EXPECT_LE(inversions, 1);
  // The one-slot dip can never reorder accepts past rejections (depth 8
  // cannot fall to <4 on a single dequeue), and the ladder always engages
  // before the queue fills.
  EXPECT_LT(*accepted.rbegin(), *overloaded.begin());
  EXPECT_LT(*degraded.begin(), *overloaded.begin());

  // The stats op exposes the same evidence as counters.
  LineClient probe;
  ASSERT_TRUE(probe.Connect(options.socket_path));
  ASSERT_TRUE(probe.Send("{\"op\":\"stats\"}\n"));
  std::string stats_line;
  ASSERT_TRUE(probe.RecvLine(&stats_line));
  EXPECT_EQ(JsonUintField(stats_line, names::kMetricServerRejectedOverload),
            overloaded.size());
  EXPECT_EQ(JsonUintField(stats_line, names::kMetricServerDegraded),
            degraded.size());
  EXPECT_EQ(JsonUintField(stats_line, names::kMetricServerQueueDepthPeak), 8u);

  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Hierarchical cancellation: a client disconnect cancels its queued and
// in-flight solves, and the daemon keeps serving everyone else.

TEST(SolveServerTest, DisconnectCancelsPendingSolves) {
  SolveServerOptions options;
  options.socket_path = SocketPath("disco");
  options.num_workers = 1;
  options.admission.tenant_active_limit = 0;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  {
    LineClient doomed;
    ASSERT_TRUE(doomed.Connect(options.socket_path));
    std::string burst;
    for (int i = 0; i < 6; ++i) {
      burst += SolveRequestLine("d" + std::to_string(i), kHardBody, 400);
    }
    ASSERT_TRUE(doomed.Send(burst));
    // Give the reader a moment to admit the burst, then vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // The disconnect must surface in the counters (the in-flight solve is
  // token-cancelled; queued ones are dropped at dequeue).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().disconnect_cancels == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().disconnect_cancels, 1u);

  // The daemon still serves new clients afterwards.
  LineClient fresh;
  ASSERT_TRUE(fresh.Connect(options.socket_path));
  ASSERT_TRUE(fresh.Send(SolveRequestLine("ok", kEasyBody, 2000)));
  std::string line;
  ASSERT_TRUE(fresh.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "verdict"), "SAT");

  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Watchdog kill: a solve stuck past deadline + grace is cancelled, and the
// still-connected client gets its response — only a disconnect may ever
// suppress one.

TEST(SolveServerTest, WatchdogKilledSolveStillAnswers) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  SolveServerOptions options;
  options.socket_path = SocketPath("wdog");
  options.num_workers = 1;
  options.watchdog_grace_ms = 100;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Stall the first solve inside the worker, polling nothing — exactly the
  // shape of a solve stuck between checkpoints. The callback injects no
  // fault; it just burns wall-clock past deadline + grace so the watchdog
  // fires mid-solve.
  Failpoints::Instance().Enable(
      names::kFpServerWorkerCrash,
      [](void*) { std::this_thread::sleep_for(std::chrono::milliseconds(1500)); },
      /*skip=*/0, /*fire=*/1);

  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path));
  ASSERT_TRUE(client.Send(SolveRequestLine("stuck", kHardBody, 100)));
  std::string line;
  bool got = client.RecvLine(&line);
  Failpoints::Instance().DisableAll();
  // The watchdog-killed solve must still answer; a hang here is the bug.
  ASSERT_TRUE(got) << "watchdog-killed solve sent no response";
  EXPECT_EQ(JsonStrField(line, "id"), "stuck") << line;
  EXPECT_FALSE(JsonStrField(line, "stop_kind").empty()) << line;
  EXPECT_EQ(server.stats().watchdog_kills, 1u);

  // The daemon shrugs it off and serves the next request.
  ASSERT_TRUE(client.Send(SolveRequestLine("after", kEasyBody, 2000)));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "verdict"), "SAT") << line;

  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Connection reaping: disconnected clients release their server-side fd and
// reader thread promptly, not at Shutdown — a long-lived daemon must never
// march toward EMFILE.

int CountOpenFds() {
  int count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

TEST(SolveServerTest, DisconnectedClientsAreReapedPromptly) {
  SolveServerOptions options;
  options.socket_path = SocketPath("reap");
  options.num_workers = 1;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  int baseline = CountOpenFds();
  for (int i = 0; i < 20; ++i) {
    LineClient c;
    ASSERT_TRUE(c.Connect(options.socket_path));
    ASSERT_TRUE(c.Send("{\"op\":\"ping\",\"id\":\"p\"}\n"));
    std::string line;
    ASSERT_TRUE(c.RecvLine(&line));
  }  // every client hung up; the server must close its side too

  // Readers notice EOF within a poll tick and self-reap; the watchdog sweep
  // joins the dead threads. Wait for the fd count to return to baseline.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int fds = CountOpenFds();
  while (fds > baseline && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fds = CountOpenFds();
  }
  EXPECT_LE(fds, baseline) << "server leaks fds for disconnected clients";

  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Graceful drain: Shutdown() finishes admitted solves and responds before
// tearing connections down.

TEST(SolveServerTest, ShutdownDrainsAdmittedSolves) {
  SolveServerOptions options;
  options.socket_path = SocketPath("drain");
  options.num_workers = 2;
  options.admission.tenant_active_limit = 0;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path));
  std::string burst;
  for (int i = 0; i < 4; ++i) {
    burst += SolveRequestLine("g" + std::to_string(i), kHardBody, 300);
  }
  ASSERT_TRUE(client.Send(burst));
  // Admission happens on the reader thread; drain only guarantees solves
  // that were admitted before it starts.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().admission.accepted < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.stats().admission.accepted, 4u);

  server.Shutdown();

  // All four responses must have been written before teardown; then EOF.
  std::set<std::string> ids;
  std::string line;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.RecvLine(&line)) << "drained response " << i;
    EXPECT_EQ(JsonStrField(line, "status"), "OK") << line;
    ids.insert(JsonStrField(line, "id"));
  }
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_FALSE(client.RecvLine(&line, 5000)) << "expected EOF, got: " << line;
}

// A solve dispatched after the drain barrier closes the queue gets a
// structured rejection — never a silent drop with no response.
TEST(SolveServerTest, SolveDispatchedDuringDrainIsRejectedNotDropped) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  SolveServerOptions options;
  options.socket_path = SocketPath("draingate");
  options.num_workers = 1;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path));

  // The slow-drain failpoint fires right after Shutdown closes the queue
  // (readers are still up). The callback signals the test and then holds
  // Shutdown inside the drain window while the late solve goes out.
  std::atomic<bool> queue_closed{false};
  Failpoints::Instance().Enable(
      names::kFpServerSlowDrain,
      [&queue_closed](void*) {
        queue_closed.store(true);
        std::this_thread::sleep_for(std::chrono::seconds(2));
      },
      /*skip=*/0, /*fire=*/1);
  std::thread shutdown_thread([&server] { server.Shutdown(); });
  while (!queue_closed.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  bool sent = client.Send(SolveRequestLine("late", kEasyBody, 1000));
  std::string line;
  bool got = sent && client.RecvLine(&line);
  shutdown_thread.join();
  Failpoints::Instance().DisableAll();

  ASSERT_TRUE(sent);
  ASSERT_TRUE(got) << "late solve was silently dropped during drain";
  EXPECT_EQ(JsonStrField(line, "id"), "late") << line;
  EXPECT_EQ(JsonStrField(line, "status"), "OVERLOADED") << line;
  EXPECT_NE(JsonStrField(line, "detail").find("draining"), std::string::npos)
      << line;
}

// ---------------------------------------------------------------------------
// Solve-cache interaction: concurrent warm hits answer identically, and the
// concurrent query-log appends stay whole (the tsan assertion for the
// single-write append path).

TEST(SolveServerTest, ConcurrentWarmHitsAnswerBitIdentically) {
  CacheGuard cache_guard([] {
    SolveCacheConfig config;
    config.enabled = true;
    return config;
  }());
  std::string log = UniquePath("warmlog") + ".jsonl";
  RecorderGuard rec_guard({log, names::kCaptureModeNever, ""});

  SolveServerOptions options;
  options.socket_path = SocketPath("warm");
  options.num_workers = 4;
  options.admission.tenant_active_limit = 0;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Cold solve populates the verdict cache.
  {
    LineClient cold;
    ASSERT_TRUE(cold.Connect(options.socket_path));
    ASSERT_TRUE(cold.Send(SolveRequestLine("w", kEasyBody, 2000)));
    std::string line;
    ASSERT_TRUE(cold.RecvLine(&line));
    ASSERT_EQ(JsonStrField(line, "verdict"), "SAT") << line;
  }

  // Eight connections fire the identical request concurrently; every
  // response must be byte-identical modulo the admission-time queue depth.
  constexpr size_t kClients = 8;
  std::vector<std::string> lines(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      LineClient c;
      if (!c.Connect(options.socket_path) ||
          !c.Send(SolveRequestLine("w", kEasyBody, 2000)) ||
          !c.RecvLine(&lines[i])) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  std::string canonical = WithoutQueueDepth(lines[0]);
  EXPECT_NE(canonical.find("\"verdict\":\"SAT\""), std::string::npos);
  for (size_t i = 1; i < kClients; ++i) {
    EXPECT_EQ(WithoutQueueDepth(lines[i]), canonical) << "client " << i;
  }

  server.Shutdown();

  // Nine solves, nine whole query-log records: concurrent appends from four
  // workers never interleave bytes (single O_APPEND write per record).
  std::vector<std::string> records = ReadLines(log);
  ASSERT_EQ(records.size(), 9u);
  int hits = 0;
  for (const std::string& record : records) {
    EXPECT_EQ(record.rfind("{\"v\":1,", 0), 0u) << record;
    EXPECT_EQ(record.back(), '}') << record;
    if (JsonStrField(record, "cache") == "hit") ++hits;
  }
  EXPECT_EQ(hits, 8) << "every warm solve must be a verdict-cache hit";
  std::remove(log.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end request correlation (DESIGN.md §13): one id joins the wire
// response, the query-log record, and the capture-bundle manifest.

TEST(SolveServerTest, RequestIdJoinsWireLogAndBundle) {
  std::string log = UniquePath("corrlog") + ".jsonl";
  std::string caps = UniquePath("corrcaps");
  FlightRecorderConfig rec;
  rec.query_log_path = log;
  rec.capture_mode = names::kCaptureModeDegraded;
  rec.capture_dir = caps;
  RecorderGuard rec_guard(rec);

  SolveServerOptions options;
  options.socket_path = SocketPath("corr");
  options.num_workers = 1;
  SolveServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path));
  std::string line;

  // Client-supplied id, echoed verbatim on a degraded (UNKNOWN) solve.
  ASSERT_TRUE(client.Send(
      SolveRequestLineFull("c1", "", "corr-42", kHardBody, 300)));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "verdict"), "UNKNOWN") << line;
  EXPECT_EQ(JsonStrField(line, "request_id"), "corr-42") << line;

  // No client id: the server mints one and echoes it.
  ASSERT_TRUE(client.Send(SolveRequestLine("c2", kEasyBody, 5000)));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "OK") << line;
  std::string minted = JsonStrField(line, "request_id");
  EXPECT_EQ(minted.rfind("fo2dtd-", 0), 0u) << line;
  EXPECT_NE(minted, "corr-42");
  server.Shutdown();

  // The query log carries the same ids, record for record.
  std::vector<std::string> records = ReadLines(log);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(JsonStrField(records[0], "request_id"), "corr-42")
      << records[0];
  EXPECT_EQ(JsonStrField(records[1], "request_id"), minted) << records[1];

  // The degraded solve captured a bundle whose manifest embeds the same
  // record — correlation id included — next to the trace-ring dump.
  std::string bundle = JsonStrField(records[0], "capture");
  ASSERT_FALSE(bundle.empty()) << records[0];
  std::vector<std::string> manifest =
      ReadLines(bundle + "/" + names::kBundleFileManifestJson);
  ASSERT_EQ(manifest.size(), 1u);
  EXPECT_NE(manifest[0].find("\"request_id\":\"corr-42\""),
            std::string::npos)
      << manifest[0];
  EXPECT_TRUE(std::filesystem::exists(
      bundle + "/" + names::kBundleFileTraceJson));
  // The definite fast solve stays unsampled (no slow threshold configured).
  EXPECT_EQ(JsonStrField(records[1], "capture"), "") << records[1];

  std::remove(log.c_str());
  std::filesystem::remove_all(caps);
}

// ---------------------------------------------------------------------------
// Spawned fo2dtd binary

pid_t SpawnDaemon(const std::vector<std::string>& extra_args,
                  const std::vector<std::pair<std::string, std::string>>& env,
                  const std::string& socket_path) {
  pid_t pid = ::fork();
  if (pid == 0) {
    for (const auto& [key, value] : env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<std::string> args = {FO2DT_FO2DTD_BIN_PATH, "--socket",
                                     socket_path};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(FO2DT_FO2DTD_BIN_PATH, argv.data());
    ::_exit(127);
  }
  return pid;
}

/// Polls until the daemon's socket accepts connections.
bool WaitForDaemon(const std::string& socket_path, int timeout_ms = 30000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    LineClient probe;
    if (probe.Connect(socket_path)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// SIGTERM + waitpid; returns the daemon's exit code (-1 on abnormal exit).
int StopDaemon(pid_t pid) {
  ::kill(pid, SIGTERM);
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) return -1;
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

/// Acceptance (c): an injected worker fault fails exactly one request —
/// with a flight-recorder record and a replayable capture bundle — and the
/// daemon keeps serving.
TEST(SpawnedDaemonTest, WorkerFaultFailsOneRequestDaemonStaysUp) {
  if (!Failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  std::string socket = SocketPath("fault");
  std::string log = UniquePath("faultlog") + ".jsonl";
  std::string caps = UniquePath("faultcaps");
  pid_t pid = SpawnDaemon({"--workers", "1", "--failpoint",
                           std::string(names::kFpServerWorkerCrash) + "=1"},
                          {{"FO2DT_QUERY_LOG", log},
                           {"FO2DT_CAPTURE", names::kCaptureModeDegraded},
                           {"FO2DT_CAPTURE_DIR", caps}},
                          socket);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(WaitForDaemon(socket));

  LineClient client;
  ASSERT_TRUE(client.Connect(socket));
  std::string line;

  // First solve eats the injected fault: the request fails, not the daemon.
  ASSERT_TRUE(client.Send(SolveRequestLine("f1", kEasyBody, 5000)));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "ERROR") << line;
  EXPECT_EQ(JsonStrField(line, "stop_kind"), "injected fault") << line;
  EXPECT_EQ(JsonStrField(line, "verdict").rfind("ERROR:", 0), 0u) << line;

  // Second solve on the same daemon succeeds.
  ASSERT_TRUE(client.Send(SolveRequestLine("f2", kEasyBody, 5000)));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "OK") << line;
  EXPECT_EQ(JsonStrField(line, "verdict"), "SAT") << line;

  ASSERT_TRUE(client.Send("{\"op\":\"stats\"}\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonUintField(line, names::kMetricServerWorkerFaults), 1u);
  EXPECT_EQ(JsonUintField(line, names::kMetricServerCompleted), 1u);

  EXPECT_EQ(StopDaemon(pid), 0);

  // The failed solve left a post-mortem: a query-log record pointing at a
  // capture bundle with the facade body as replay input.
  std::vector<std::string> records = ReadLines(log);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(JsonStrField(records[0], "stop_kind"), "injected fault");
  std::string bundle = JsonStrField(records[0], "capture");
  ASSERT_FALSE(bundle.empty()) << records[0];
  EXPECT_TRUE(std::filesystem::exists(
      bundle + "/" + names::kBundleFileInputFo2dt));
  std::remove(log.c_str());
  std::filesystem::remove_all(caps);
}

/// Acceptance (d) + solve-cache persistence: SIGTERM mid-flight drains the
/// in-flight solve, leaves the query log and cache file intact and
/// parseable, and a restarted daemon warm-hits the persisted cache.
TEST(SpawnedDaemonTest, SigtermDrainLeavesArtifactsIntactAndCacheWarm) {
  std::string socket = SocketPath("term");
  std::string log = UniquePath("termlog") + ".jsonl";
  std::string cache_file = UniquePath("termcache") + ".fo2dtcache";
  pid_t pid = SpawnDaemon({"--workers", "2"},
                          {{"FO2DT_QUERY_LOG", log},
                           {"FO2DT_CACHE_FILE", cache_file}},
                          socket);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(WaitForDaemon(socket));

  LineClient client;
  ASSERT_TRUE(client.Connect(socket));
  std::string line;
  ASSERT_TRUE(client.Send(SolveRequestLine("c1", kEasyBody, 5000)));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(JsonStrField(line, "verdict"), "SAT") << line;
  ASSERT_TRUE(client.Send(SolveRequestLine("c2", kEasyBody2, 5000)));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(JsonStrField(line, "verdict"), "SAT") << line;

  // Leave a hard solve in flight, then pull the plug.
  ASSERT_TRUE(client.Send(SolveRequestLine("c3", kHardBody, 500)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(StopDaemon(pid), 0);

  // The drain resolved the in-flight solve and responded before teardown.
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "id"), "c3") << line;
  EXPECT_EQ(JsonStrField(line, "verdict"), "UNKNOWN") << line;
  EXPECT_FALSE(client.RecvLine(&line, 2000)) << "expected EOF, got " << line;

  // Query log: one whole record per executed solve.
  std::vector<std::string> records = ReadLines(log);
  ASSERT_EQ(records.size(), 3u);
  for (const std::string& record : records) {
    EXPECT_EQ(record.rfind("{\"v\":1,", 0), 0u) << record;
    EXPECT_EQ(record.back(), '}') << record;
  }

  // Cache file: fingerprint header plus the two definite verdicts (the
  // kUnknown drain victim must NOT have been cached).
  std::vector<std::string> cache_lines = ReadLines(cache_file);
  ASSERT_GE(cache_lines.size(), 3u);
  EXPECT_EQ(cache_lines[0].rfind("fingerprint ", 0), 0u) << cache_lines[0];

  // A fresh daemon over the same cache file answers warm.
  std::string log2 = UniquePath("termlog2") + ".jsonl";
  pid_t pid2 = SpawnDaemon({"--workers", "2"},
                           {{"FO2DT_QUERY_LOG", log2},
                            {"FO2DT_CACHE_FILE", cache_file}},
                           socket);
  ASSERT_GT(pid2, 0);
  ASSERT_TRUE(WaitForDaemon(socket));
  LineClient warm;
  ASSERT_TRUE(warm.Connect(socket));
  ASSERT_TRUE(warm.Send(SolveRequestLine("c1", kEasyBody, 5000)));
  ASSERT_TRUE(warm.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "verdict"), "SAT") << line;
  EXPECT_EQ(StopDaemon(pid2), 0);

  std::vector<std::string> records2 = ReadLines(log2);
  ASSERT_EQ(records2.size(), 1u);
  EXPECT_EQ(JsonStrField(records2[0], "cache"), "hit")
      << "restarted daemon must warm-hit the persisted cache: " << records2[0];

  std::remove(log.c_str());
  std::remove(log2.c_str());
  std::remove(cache_file.c_str());
}

/// The overload recipe over the real wire: a pipelined burst against one
/// worker and a tiny queue produces OVERLOADED rejections whose evidence is
/// visible both on the rejection lines and through the stats op.
TEST(SpawnedDaemonTest, OverloadRecipeProducesCounterEvidence) {
  std::string socket = SocketPath("recipe");
  pid_t pid = SpawnDaemon({"--workers", "1", "--queue-limit", "2",
                           "--tenant-active-limit", "0"},
                          {}, socket);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(WaitForDaemon(socket));

  LineClient client;
  ASSERT_TRUE(client.Connect(socket));
  std::string burst;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    burst += SolveRequestLine("r" + std::to_string(i), kHardBody, 300);
  }
  ASSERT_TRUE(client.Send(burst));
  int overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string line;
    ASSERT_TRUE(client.RecvLine(&line));
    if (JsonStrField(line, "status") == "OVERLOADED") {
      ++overloaded;
      EXPECT_EQ(JsonUintField(line, "queue_depth"), 2u) << line;
    }
  }
  EXPECT_GE(overloaded, kBurst - 4);

  LineClient probe;
  ASSERT_TRUE(probe.Connect(socket));
  ASSERT_TRUE(probe.Send("{\"op\":\"stats\"}\n"));
  std::string stats_line;
  ASSERT_TRUE(probe.RecvLine(&stats_line));
  EXPECT_EQ(JsonUintField(stats_line, names::kMetricServerRejectedOverload),
            static_cast<uint64_t>(overloaded));
  EXPECT_EQ(JsonUintField(stats_line, names::kMetricServerQueueDepthPeak), 2u);

  EXPECT_EQ(StopDaemon(pid), 0);
}

/// Telemetry-plane acceptance: a mixed two-tenant 100-request burst against
/// a fresh daemon, then one `metrics` scrape that must account for every
/// response — the wire-latency histogram's _count equals the solve responses
/// received, the per-tenant ladder counters sum to the per-tenant request
/// counts, and the exposition text parses line by line.
TEST(SpawnedDaemonTest, MetricsExpositionAccountsForEveryRequest) {
  std::string socket = SocketPath("expo");
  // A 6-slot queue forces blue's pipelined hard burst onto the shedding
  // ladder, so the degraded/rejected rungs provably show up in the scrape.
  pid_t pid = SpawnDaemon({"--workers", "2", "--queue-limit", "6",
                           "--tenant-active-limit", "0"},
                          {}, socket);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(WaitForDaemon(socket));

  constexpr int kEasyCount = 80;  // tenant acme: fast definite solves
  constexpr int kHardCount = 20;  // tenant blue: deadline-bound solves
  constexpr int kTotal = kEasyCount + kHardCount;

  LineClient blue;
  ASSERT_TRUE(blue.Connect(socket));
  std::string hard_burst;
  for (int i = 0; i < kHardCount; ++i) {
    hard_burst += SolveRequestLineFull("b" + std::to_string(i), "blue", "",
                                       kHardBody, 100);
  }
  ASSERT_TRUE(blue.Send(hard_burst));

  LineClient acme;
  ASSERT_TRUE(acme.Connect(socket));
  std::string easy_burst;
  for (int i = 0; i < kEasyCount; ++i) {
    easy_burst += SolveRequestLineFull("a" + std::to_string(i), "acme", "",
                                       kEasyBody, 5000);
  }
  ASSERT_TRUE(acme.Send(easy_burst));

  // Every request answers, every answer carries a unique minted id.
  std::set<std::string> request_ids;
  int ladder_engaged = 0;
  std::string line;
  for (int i = 0; i < kHardCount; ++i) {
    ASSERT_TRUE(blue.RecvLine(&line)) << "blue response " << i;
    request_ids.insert(JsonStrField(line, "request_id"));
    if (JsonStrField(line, "status") == "OVERLOADED" ||
        line.find("\"degraded\":1") != std::string::npos) {
      ++ladder_engaged;
    }
  }
  for (int i = 0; i < kEasyCount; ++i) {
    ASSERT_TRUE(acme.RecvLine(&line)) << "acme response " << i;
    request_ids.insert(JsonStrField(line, "request_id"));
  }
  EXPECT_EQ(request_ids.size(), static_cast<size_t>(kTotal));
  EXPECT_FALSE(request_ids.count(""));
  EXPECT_GE(ladder_engaged, 1) << "hard burst never hit the ladder";

  // One scrape after the burst quiesced.
  LineClient probe;
  ASSERT_TRUE(probe.Connect(socket));
  ASSERT_TRUE(probe.Send("{\"op\":\"metrics\",\"id\":\"m\"}\n"));
  ASSERT_TRUE(probe.RecvLine(&line));
  EXPECT_EQ(JsonStrField(line, "status"), "OK") << line;
  std::string exposition = JsonStrFieldDecoded(line, "exposition");
  bool parse_ok = false;
  std::map<std::string, double> series =
      ParseExposition(exposition, &parse_ok);
  EXPECT_TRUE(parse_ok) << exposition;

  // The wire histogram saw every solve response this daemon ever sent —
  // admitted, degraded, and rejected alike.
  ASSERT_TRUE(series.count("fo2dt_hist_wire_ms_count")) << exposition;
  EXPECT_EQ(series["fo2dt_hist_wire_ms_count"], kTotal);
  EXPECT_EQ(series["fo2dt_hist_wire_ms_bucket{le=\"+Inf\"}"], kTotal);
  // Derived percentiles pass through as flat gauges for fo2dt_top.
  EXPECT_TRUE(series.count("fo2dt_hist_wire_ms_p50")) << exposition;
  EXPECT_TRUE(series.count("fo2dt_hist_wire_ms_p99")) << exposition;

  // Ladder counters: per-tenant sums equal the per-tenant request counts.
  auto tenant_sum = [&series](const std::string& tenant) {
    double sum = 0;
    for (const char* outcome : {"admitted", "degraded_light",
                                "degraded_heavy", "rejected"}) {
      sum += series["fo2dt_tenant_requests_total{tenant=\"" + tenant +
                    "\",outcome=\"" + outcome + "\"}"];
    }
    return sum;
  };
  EXPECT_EQ(tenant_sum("acme"), kEasyCount);
  EXPECT_EQ(tenant_sum("blue"), kHardCount);
  // Per-tenant latency histograms count every sent response for the tenant.
  EXPECT_EQ(series["fo2dt_hist_tenant_wire_ms_count{tenant=\"acme\"}"],
            kEasyCount);
  EXPECT_EQ(series["fo2dt_hist_tenant_wire_ms_count{tenant=\"blue\"}"],
            kHardCount);

  // Queue-wait, solve-wall, and memory histograms cover exactly the solves
  // that actually executed: everything not rejected at admission.
  double rejected =
      series["fo2dt_tenant_requests_total{tenant=\"acme\","
             "outcome=\"rejected\"}"] +
      series["fo2dt_tenant_requests_total{tenant=\"blue\","
             "outcome=\"rejected\"}"];
  EXPECT_EQ(series["fo2dt_hist_queue_wait_ms_count"], kTotal - rejected);
  EXPECT_EQ(series["fo2dt_hist_solve_wall_ms_count"], kTotal - rejected);
  EXPECT_EQ(series["fo2dt_hist_solve_mem_bytes_count"], kTotal - rejected);

  // Live gauges exist (values are load-dependent; presence is the contract).
  EXPECT_TRUE(series.count("fo2dt_server_queue_depth")) << exposition;
  EXPECT_TRUE(series.count("fo2dt_server_workers_busy")) << exposition;

  EXPECT_EQ(StopDaemon(pid), 0);
}

}  // namespace
}  // namespace fo2dt
