#include "arith/bigint.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fo2dt {
namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(1).ToString(), "1");
  EXPECT_EQ(BigInt(-1).ToString(), "-1");
  EXPECT_EQ(BigInt(123456789).ToString(), "123456789");
  EXPECT_EQ(BigInt(-987654321).ToString(), "-987654321");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* s : {"0", "1", "-1", "42", "-94837261", "123456789012345678901234567890",
                        "-999999999999999999999999999999999999"}) {
    auto v = BigInt::FromString(s);
    ASSERT_TRUE(v.ok()) << s;
    EXPECT_EQ(v->ToString(), s);
  }
}

TEST(BigIntTest, FromStringErrors) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("0x10").ok());
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  auto v = BigInt::FromString("-0");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsZero());
  EXPECT_FALSE(v->IsNegative());
  EXPECT_EQ(v->ToString(), "0");
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).ToString(), "5");
  EXPECT_EQ((BigInt(-2) + BigInt(3)).ToString(), "1");
  EXPECT_EQ((BigInt(2) + BigInt(-3)).ToString(), "-1");
  EXPECT_EQ((BigInt(-2) + BigInt(-3)).ToString(), "-5");
  EXPECT_EQ((BigInt(5) + BigInt(-5)).ToString(), "0");
}

TEST(BigIntTest, CarryPropagation) {
  BigInt big = *BigInt::FromString("4294967295");  // 2^32 - 1
  EXPECT_EQ((big + BigInt(1)).ToString(), "4294967296");
  BigInt big2 = *BigInt::FromString("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((big2 + BigInt(1)).ToString(), "18446744073709551616");
  EXPECT_EQ((big2 + big2).ToString(), "36893488147419103230");
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = *BigInt::FromString("123456789012345678901234567890");
  BigInt b = *BigInt::FromString("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToString(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).ToString(), "-1");
}

TEST(BigIntTest, FloorAndCeilDiv) {
  EXPECT_EQ(BigInt(7).FloorDiv(BigInt(2)).ToString(), "3");
  EXPECT_EQ(BigInt(-7).FloorDiv(BigInt(2)).ToString(), "-4");
  EXPECT_EQ(BigInt(7).CeilDiv(BigInt(2)).ToString(), "4");
  EXPECT_EQ(BigInt(-7).CeilDiv(BigInt(2)).ToString(), "-3");
  EXPECT_EQ(BigInt(6).FloorDiv(BigInt(3)).ToString(), "2");
  EXPECT_EQ(BigInt(6).CeilDiv(BigInt(3)).ToString(), "2");
}

TEST(BigIntTest, DivisionLargeKnuthPath) {
  BigInt a = *BigInt::FromString("340282366920938463463374607431768211456");  // 2^128
  BigInt b = *BigInt::FromString("18446744073709551616");                    // 2^64
  EXPECT_EQ((a / b).ToString(), "18446744073709551616");
  EXPECT_EQ((a % b).ToString(), "0");
  BigInt c = a + BigInt(12345);
  EXPECT_EQ((c / b).ToString(), "18446744073709551616");
  EXPECT_EQ((c % b).ToString(), "12345");
}

TEST(BigIntTest, DivModIdentityRandomized) {
  RandomSource rng(42);
  for (int iter = 0; iter < 500; ++iter) {
    // Build random magnitudes of varying limb counts.
    auto rand_big = [&rng](int limbs) {
      BigInt v(0);
      for (int i = 0; i < limbs; ++i) {
        v = v * BigInt(static_cast<int64_t>(1) << 32) +
            BigInt(static_cast<int64_t>(rng.Next() & 0xffffffffULL));
      }
      if (rng.Bernoulli(0.5)) v = -v;
      return v;
    };
    BigInt a = rand_big(1 + static_cast<int>(rng.UniformIndex(4)));
    BigInt b = rand_big(1 + static_cast<int>(rng.UniformIndex(3)));
    if (b.IsZero()) continue;
    BigInt q = a / b;
    BigInt r = a % b;
    EXPECT_EQ((q * b + r).Compare(a), 0)
        << "a=" << a << " b=" << b << " q=" << q << " r=" << r;
    EXPECT_LT(r.Abs().Compare(b.Abs()), 0);
    if (!r.IsZero()) EXPECT_EQ(r.IsNegative(), a.IsNegative());
  }
}

TEST(BigIntTest, CompareOrdering) {
  EXPECT_LT(BigInt(-5).Compare(BigInt(3)), 0);
  EXPECT_GT(BigInt(3).Compare(BigInt(-5)), 0);
  EXPECT_EQ(BigInt(7).Compare(BigInt(7)), 0);
  EXPECT_LT(BigInt(-7).Compare(BigInt(-3)), 0);
  BigInt big = *BigInt::FromString("99999999999999999999");
  EXPECT_GT(big.Compare(BigInt(INT64_MAX)), 0);
  EXPECT_LT((-big).Compare(BigInt(INT64_MIN)), 0);
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToString(), "0");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToString(), "1");
}

TEST(BigIntTest, ToInt64Bounds) {
  EXPECT_EQ(*BigInt(INT64_MAX).ToInt64(), INT64_MAX);
  EXPECT_EQ(*BigInt(INT64_MIN).ToInt64(), INT64_MIN);
  BigInt over = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_TRUE(over.ToInt64().status().IsOverflow());
  BigInt under = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_TRUE(under.ToInt64().status().IsOverflow());
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::FromString("18446744073709551616")->BitLength(), 65u);
}

TEST(BigIntTest, ArithmeticIdentitiesRandomized) {
  RandomSource rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    BigInt a(static_cast<int64_t>(rng.Next()) >> 16);
    BigInt b(static_cast<int64_t>(rng.Next()) >> 16);
    BigInt c(static_cast<int64_t>(rng.Next()) >> 40);
    EXPECT_EQ(((a + b) * c).Compare(a * c + b * c), 0);
    EXPECT_EQ((a - b).Compare(-(b - a)), 0);
    EXPECT_EQ((a + b).Compare(b + a), 0);
  }
}

}  // namespace
}  // namespace fo2dt
