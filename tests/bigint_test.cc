#include "arith/bigint.h"

#include <gtest/gtest.h>

#include "arith/arith_stats.h"
#include "common/random.h"

namespace fo2dt {
namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(1).ToString(), "1");
  EXPECT_EQ(BigInt(-1).ToString(), "-1");
  EXPECT_EQ(BigInt(123456789).ToString(), "123456789");
  EXPECT_EQ(BigInt(-987654321).ToString(), "-987654321");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* s : {"0", "1", "-1", "42", "-94837261", "123456789012345678901234567890",
                        "-999999999999999999999999999999999999"}) {
    auto v = BigInt::FromString(s);
    ASSERT_TRUE(v.ok()) << s;
    EXPECT_EQ(v->ToString(), s);
  }
}

TEST(BigIntTest, FromStringErrors) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("0x10").ok());
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  auto v = BigInt::FromString("-0");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsZero());
  EXPECT_FALSE(v->IsNegative());
  EXPECT_EQ(v->ToString(), "0");
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).ToString(), "5");
  EXPECT_EQ((BigInt(-2) + BigInt(3)).ToString(), "1");
  EXPECT_EQ((BigInt(2) + BigInt(-3)).ToString(), "-1");
  EXPECT_EQ((BigInt(-2) + BigInt(-3)).ToString(), "-5");
  EXPECT_EQ((BigInt(5) + BigInt(-5)).ToString(), "0");
}

TEST(BigIntTest, CarryPropagation) {
  BigInt big = *BigInt::FromString("4294967295");  // 2^32 - 1
  EXPECT_EQ((big + BigInt(1)).ToString(), "4294967296");
  BigInt big2 = *BigInt::FromString("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((big2 + BigInt(1)).ToString(), "18446744073709551616");
  EXPECT_EQ((big2 + big2).ToString(), "36893488147419103230");
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = *BigInt::FromString("123456789012345678901234567890");
  BigInt b = *BigInt::FromString("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToString(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).ToString(), "-1");
}

TEST(BigIntTest, FloorAndCeilDiv) {
  EXPECT_EQ(BigInt(7).FloorDiv(BigInt(2)).ToString(), "3");
  EXPECT_EQ(BigInt(-7).FloorDiv(BigInt(2)).ToString(), "-4");
  EXPECT_EQ(BigInt(7).CeilDiv(BigInt(2)).ToString(), "4");
  EXPECT_EQ(BigInt(-7).CeilDiv(BigInt(2)).ToString(), "-3");
  EXPECT_EQ(BigInt(6).FloorDiv(BigInt(3)).ToString(), "2");
  EXPECT_EQ(BigInt(6).CeilDiv(BigInt(3)).ToString(), "2");
}

TEST(BigIntTest, DivisionLargeKnuthPath) {
  BigInt a = *BigInt::FromString("340282366920938463463374607431768211456");  // 2^128
  BigInt b = *BigInt::FromString("18446744073709551616");                    // 2^64
  EXPECT_EQ((a / b).ToString(), "18446744073709551616");
  EXPECT_EQ((a % b).ToString(), "0");
  BigInt c = a + BigInt(12345);
  EXPECT_EQ((c / b).ToString(), "18446744073709551616");
  EXPECT_EQ((c % b).ToString(), "12345");
}

TEST(BigIntTest, DivModIdentityRandomized) {
  RandomSource rng(42);
  for (int iter = 0; iter < 500; ++iter) {
    // Build random magnitudes of varying limb counts.
    auto rand_big = [&rng](int limbs) {
      BigInt v(0);
      for (int i = 0; i < limbs; ++i) {
        v = v * BigInt(static_cast<int64_t>(1) << 32) +
            BigInt(static_cast<int64_t>(rng.Next() & 0xffffffffULL));
      }
      if (rng.Bernoulli(0.5)) v = -v;
      return v;
    };
    BigInt a = rand_big(1 + static_cast<int>(rng.UniformIndex(4)));
    BigInt b = rand_big(1 + static_cast<int>(rng.UniformIndex(3)));
    if (b.IsZero()) continue;
    BigInt q = a / b;
    BigInt r = a % b;
    EXPECT_EQ((q * b + r).Compare(a), 0)
        << "a=" << a << " b=" << b << " q=" << q << " r=" << r;
    EXPECT_LT(r.Abs().Compare(b.Abs()), 0);
    if (!r.IsZero()) {
      EXPECT_EQ(r.IsNegative(), a.IsNegative());
    }
  }
}

TEST(BigIntTest, CompareOrdering) {
  EXPECT_LT(BigInt(-5).Compare(BigInt(3)), 0);
  EXPECT_GT(BigInt(3).Compare(BigInt(-5)), 0);
  EXPECT_EQ(BigInt(7).Compare(BigInt(7)), 0);
  EXPECT_LT(BigInt(-7).Compare(BigInt(-3)), 0);
  BigInt big = *BigInt::FromString("99999999999999999999");
  EXPECT_GT(big.Compare(BigInt(INT64_MAX)), 0);
  EXPECT_LT((-big).Compare(BigInt(INT64_MIN)), 0);
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToString(), "0");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToString(), "1");
}

TEST(BigIntTest, ToInt64Bounds) {
  EXPECT_EQ(*BigInt(INT64_MAX).ToInt64(), INT64_MAX);
  EXPECT_EQ(*BigInt(INT64_MIN).ToInt64(), INT64_MIN);
  BigInt over = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_TRUE(over.ToInt64().status().IsOverflow());
  BigInt under = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_TRUE(under.ToInt64().status().IsOverflow());
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::FromString("18446744073709551616")->BitLength(), 65u);
}

TEST(BigIntTest, ArithmeticIdentitiesRandomized) {
  RandomSource rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    BigInt a(static_cast<int64_t>(rng.Next()) >> 16);
    BigInt b(static_cast<int64_t>(rng.Next()) >> 16);
    BigInt c(static_cast<int64_t>(rng.Next()) >> 40);
    EXPECT_EQ(((a + b) * c).Compare(a * c + b * c), 0);
    EXPECT_EQ((a - b).Compare(-(b - a)), 0);
    EXPECT_EQ((a + b).Compare(b + a), 0);
  }
}

TEST(BigIntTest, InlineHeapBoundaryExplicit) {
  // Values straddling the int64 boundary must be canonical: FitsInt64() true
  // exactly when the value is representable inline, identical semantics on
  // both sides.
  for (int64_t delta = -2; delta <= 2; ++delta) {
    BigInt near_max = BigInt(INT64_MAX) + BigInt(delta);
    EXPECT_EQ(near_max.FitsInt64(), delta <= 0) << "delta " << delta;
    BigInt near_min = BigInt(INT64_MIN) + BigInt(delta);
    EXPECT_EQ(near_min.FitsInt64(), delta >= 0) << "delta " << delta;
    // Round trips across the boundary land back inline.
    EXPECT_TRUE((near_max - BigInt(delta)).FitsInt64());
    EXPECT_EQ((near_max - BigInt(delta)).Compare(BigInt(INT64_MAX)), 0);
    EXPECT_TRUE((near_min - BigInt(delta)).FitsInt64());
    EXPECT_EQ((near_min - BigInt(delta)).Compare(BigInt(INT64_MIN)), 0);
  }
  // Powers of two around the boundary, both signs: 2^63 spills, -2^63 fits.
  BigInt p = BigInt(1);
  for (int e = 0; e <= 65; ++e) {
    EXPECT_EQ(p.FitsInt64(), e <= 62) << "2^" << e;
    EXPECT_EQ((-p).FitsInt64(), e <= 63) << "-2^" << e;
    EXPECT_EQ((p - BigInt(1)).FitsInt64(), e <= 63) << "2^" << e << "-1";
    EXPECT_TRUE((p - p).IsZero());
    p += p;
  }
}

TEST(BigIntTest, Int64MinEdgeCases) {
  const BigInt min64(INT64_MIN);
  EXPECT_FALSE((-min64).FitsInt64());
  EXPECT_EQ((-min64).ToString(), "9223372036854775808");
  EXPECT_EQ(min64.Abs().ToString(), "9223372036854775808");
  EXPECT_EQ((min64 / BigInt(-1)).ToString(), "9223372036854775808");
  EXPECT_TRUE((min64 % BigInt(-1)).IsZero());
  EXPECT_EQ((min64 * BigInt(-1)).ToString(), "9223372036854775808");
  EXPECT_EQ(min64.FloorDiv(BigInt(-1)).ToString(), "9223372036854775808");
  EXPECT_EQ(min64.CeilDiv(BigInt(-1)).ToString(), "9223372036854775808");
  EXPECT_EQ(BigInt::Gcd(min64, min64).ToString(), "9223372036854775808");
  EXPECT_EQ(BigInt::Gcd(min64, BigInt(0)).ToString(), "9223372036854775808");
}

namespace i128 {

// Builds a BigInt from an __int128 through decimal chunks, independent of the
// wide operators under test (only small-range + and * are exercised).
BigInt FromI128(__int128 v) {
  const __int128 kChunk = 1000000000000000000LL;  // 10^18
  bool neg = v < 0;
  __int128 mag = neg ? -v : v;
  BigInt out(0);
  BigInt scale(1);
  while (mag > 0) {
    out += scale * BigInt(static_cast<int64_t>(mag % kChunk));
    scale *= BigInt(static_cast<int64_t>(kChunk));
    mag /= kChunk;
  }
  return neg ? -out : out;
}

__int128 DrawBoundary(RandomSource* rng) {
  // Magnitude uniform-ish in [2^62, 2^65]: squarely straddling the
  // inline/heap representation boundary.
  __int128 mag = (static_cast<__int128>(1) << 62) +
                 static_cast<__int128>(rng->Next() % 15) *
                     (static_cast<__int128>(1) << 60) +
                 static_cast<__int128>(rng->Next() >> 4);
  return rng->Bernoulli(0.5) ? -mag : mag;
}

}  // namespace i128

TEST(BigIntTest, BoundaryPropertyRandomized) {
  // Differential check against __int128 for + and -, identity checks for
  // * / % and gcd, with operands straddling the inline/heap boundary
  // (|v| in [2^62, 2^65]).
  using i128::DrawBoundary;
  using i128::FromI128;
  RandomSource rng(2026);
  for (int iter = 0; iter < 400; ++iter) {
    const __int128 ra = DrawBoundary(&rng);
    const __int128 rb = DrawBoundary(&rng);
    const BigInt a = FromI128(ra);
    const BigInt b = FromI128(rb);
    ASSERT_EQ(a.Compare(b), ra < rb ? -1 : (ra > rb ? 1 : 0));

    EXPECT_EQ((a + b).Compare(FromI128(ra + rb)), 0) << "iter " << iter;
    EXPECT_EQ((a - b).Compare(FromI128(ra - rb)), 0) << "iter " << iter;
    EXPECT_EQ(((a + b) - b).Compare(a), 0) << "iter " << iter;

    // Multiplication vs reference with one operand kept small enough that
    // the reference product fits __int128.
    const int64_t small =
        rng.UniformInt(-(int64_t{1} << 31), int64_t{1} << 31);
    EXPECT_EQ((a * BigInt(small)).Compare(FromI128(ra * small)), 0);

    // Truncated division identities: a == (a/b)*b + a%b, |a%b| < |b|, and
    // the remainder carries the dividend's sign.
    const BigInt q = a / b;
    const BigInt r = a % b;
    EXPECT_EQ((q * b + r).Compare(a), 0) << "iter " << iter;
    EXPECT_EQ(r.Abs().Compare(b.Abs()), -1) << "iter " << iter;
    EXPECT_TRUE(r.IsZero() || r.IsNegative() == a.IsNegative());

    // Floor/ceil division: the remainder lies in [0, b) resp. (-b, 0] for
    // b > 0, mirrored for b < 0.
    const BigInt fr = a - a.FloorDiv(b) * b;
    const BigInt cr = a - a.CeilDiv(b) * b;
    if (b.IsPositive()) {
      EXPECT_TRUE(!fr.IsNegative() && fr < b);
      EXPECT_TRUE(!cr.IsPositive() && -cr < b);
    } else {
      EXPECT_TRUE(!fr.IsPositive() && fr > b);
      EXPECT_TRUE(!cr.IsNegative() && -cr > b);
    }

    const BigInt g = BigInt::Gcd(a, b);
    EXPECT_FALSE(g.IsNegative());
    EXPECT_EQ(g.Compare(BigInt::Gcd(b, a)), 0);
    if (!g.IsZero()) {
      EXPECT_TRUE((a % g).IsZero());
      EXPECT_TRUE((b % g).IsZero());
    }

    // Canonical representation: heap-backed iff out of int64 range.
    const BigInt sum = a + b;
    const __int128 rsum = ra + rb;
    EXPECT_EQ(sum.FitsInt64(), rsum >= INT64_MIN && rsum <= INT64_MAX);
  }
}

TEST(BigIntTest, GcdDivModEdges) {
  EXPECT_TRUE(BigInt::Gcd(BigInt(0), BigInt(0)).IsZero());
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(-6)).Compare(BigInt(6)), 0);
  EXPECT_EQ(BigInt::Gcd(BigInt(-4), BigInt(0)).Compare(BigInt(4)), 0);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(-18)).Compare(BigInt(6)), 0);
  const BigInt huge =
      *BigInt::FromString("340282366920938463463374607431768211456");  // 2^128
  EXPECT_EQ(BigInt::Gcd(huge, BigInt(6)).Compare(BigInt(2)), 0);
  EXPECT_EQ((huge / huge).Compare(BigInt(1)), 0);
  EXPECT_TRUE((huge % huge).IsZero());
  EXPECT_TRUE((BigInt(0) / huge).IsZero());
  EXPECT_TRUE((BigInt(0) % huge).IsZero());
  EXPECT_EQ((huge % (huge + BigInt(1))).Compare(huge), 0);
  EXPECT_EQ(((-huge) / huge).Compare(BigInt(-1)), 0);
  EXPECT_EQ((-huge).FloorDiv(huge + BigInt(1)).Compare(BigInt(-1)), 0);
  EXPECT_TRUE((-huge).CeilDiv(huge + BigInt(1)).IsZero());
}

TEST(ArithStatsTest, FastPathCountersMove) {
  // Small-only arithmetic must register as small_ops (fast-path rate 1.0
  // because work happened on the inline representation, not because the
  // counters were idle); multi-limb work must register as big_ops.
  ArithStats::Reset();
  BigInt a(1000), b(37);
  for (int i = 0; i < 10; ++i) a = a + b * BigInt(i) - a / b;
  ArithCounters small_only = ArithStats::Aggregate();
  EXPECT_GT(small_only.small_ops, 0u);
  EXPECT_EQ(small_only.big_ops, 0u);
  EXPECT_EQ(small_only.FastPathRate(), 1.0);

  ArithStats::Reset();
  BigInt huge = *BigInt::FromString("340282366920938463463374607431768211456");
  BigInt r = huge * huge + huge;
  EXPECT_FALSE(r.IsZero());
  EXPECT_GT(ArithStats::Aggregate().big_ops, 0u);
}

}  // namespace
}  // namespace fo2dt
