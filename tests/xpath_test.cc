#include "xpath/xpath.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datatree/generator.h"
#include "datatree/text_io.h"
#include "logic/eval.h"

namespace fo2dt {
namespace {

struct Ctx {
  Alphabet labels;
  DataTree tree;
};

Ctx MakeCtx(const std::string& tree_text) {
  Ctx c;
  auto t = ParseDataTree(tree_text, &c.labels);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  c.tree = *t;
  return c;
}

Result<std::vector<NodeId>> Eval(Ctx* c, const std::string& xpath) {
  auto p = ParseXPath(xpath, &c->labels);
  if (!p.ok()) return p.status();
  return EvaluateXPathFromRoot(c->tree, *p);
}

TEST(XPathParseTest, RoundTrip) {
  Alphabet labels;
  const char* exprs[] = {
      "/Child::a/Child::b",
      "Child::a[Child::b]/NextSibling::*",
      "/Child::a[not (Child::b or Self::a[Parent::c])]",
      "Child::a[Child::b/@B1 = /Child::c/@B2]",
      "Child::a[Self::a/@B2 != Child::b/@B1]",
      "ElseWhere::x[PreviousSibling::y]",
  };
  for (const char* e : exprs) {
    auto p = ParseXPath(e, &labels);
    ASSERT_TRUE(p.ok()) << e << ": " << p.status().ToString();
    // Parse(print(parse(e))) is stable.
    std::string printed = XPathToString(*p, labels);
    auto p2 = ParseXPath(printed, &labels);
    ASSERT_TRUE(p2.ok()) << printed;
    EXPECT_EQ(XPathToString(*p2, labels), printed);
  }
}

TEST(XPathParseTest, Errors) {
  Alphabet labels;
  EXPECT_FALSE(ParseXPath("", &labels).ok());
  EXPECT_FALSE(ParseXPath("Descendant::a", &labels).ok());  // no such axis
  EXPECT_FALSE(ParseXPath("Child:a", &labels).ok());
  EXPECT_FALSE(ParseXPath("Child::a[", &labels).ok());
  // Relative equality must be Self-step vs one step.
  EXPECT_FALSE(
      ParseXPath("Child::a[Child::b/@X = Child::c/@Y]", &labels).ok());
}

TEST(XPathEvalTest, NavigationAxes) {
  Ctx c = MakeCtx("r:0 (a:1 (b:2 c:3) a:4 d:5)");
  EXPECT_EQ(Eval(&c, "/Child::a")->size(), 2u);
  EXPECT_EQ(Eval(&c, "/Child::a/Child::b")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::a/Child::b/NextSibling::c")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::a/NextSibling::a")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::d/PreviousSibling::a")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::a/Parent::r")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::*")->size(), 3u);
  // Elsewhere from the root: everything else.
  EXPECT_EQ(Eval(&c, "/ElseWhere::*")->size(), 5u);
}

TEST(XPathEvalTest, Predicates) {
  Ctx c = MakeCtx("r:0 (a:1 (b:2) a:4 (c:5) a:6)");
  EXPECT_EQ(Eval(&c, "/Child::a[Child::b]")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::a[not Child::*]")->size(), 1u);
  EXPECT_EQ(Eval(&c, "/Child::a[Child::b or Child::c]")->size(), 2u);
  EXPECT_EQ(Eval(&c, "/Child::a[Child::b and Child::c]")->size(), 0u);
}

TEST(XPathEvalTest, DataComparisons) {
  // Figure-3-style: items with @val, one reference list.
  Ctx c = MakeCtx(
      "r:0 (item:0 (val:7) item:0 (val:8) ref:0 (val:7))");
  // Items whose val equals some absolute ref val.
  auto hits = Eval(&c, "/Child::item[Self::item/@val = /Child::ref/@val]");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  // Relative comparison needs the element-value encoding only for the FO²
  // translation; the evaluator reads attributes directly... but the LHS here
  // is Self-step so this parses as kRelCompare with RHS a Step — make RHS
  // absolute instead: use the kPathCompare form.
  EXPECT_EQ(Eval(&c, "/Child::item[Self::*/@val = /Child::ref/@val]")->size(),
            1u);
  EXPECT_EQ(Eval(&c, "/Child::item[Self::*/@val != /Child::ref/@val]")->size(),
            1u);
}

TEST(XPathEvalTest, RelativeComparison) {
  // Example 1 from the paper: nodes all of whose b-children share the node's
  // value — here the positive form: some b-child with equal value.
  Ctx c = MakeCtx("r:0 (a:1 (b:1 b:2) a:3 (b:4))");
  auto p = ParseXPath("/Child::a[Self::a/@B2 = Child::b/@B1]", &c.labels);
  ASSERT_TRUE(p.ok());
  // Attribute semantics: @B2 of a-nodes, @B1 of b-nodes — our encoding here
  // has no attribute children, so this selects nothing; rebuild with
  // attribute children.
  Ctx c2 = MakeCtx(
      "r:0 (a:0 (B2:1 b:0 (B1:1) b:0 (B1:2)) a:0 (B2:3 b:0 (B1:4)))");
  auto p2 = ParseXPath("/Child::a[Self::a/@B2 = Child::b/@B1]", &c2.labels);
  ASSERT_TRUE(p2.ok());
  auto hits = EvaluateXPathFromRoot(c2.tree, *p2);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  auto p3 = ParseXPath("/Child::a[Self::a/@B2 != Child::b/@B1]", &c2.labels);
  auto hits3 = EvaluateXPathFromRoot(c2.tree, *p3);
  EXPECT_EQ(hits3->size(), 2u);  // both a's have a differing b-child
}

TEST(XPathSafetyTest, AssociationsFunction) {
  Alphabet labels;
  XpPath safe = *ParseXPath("/Child::a[Self::a/@B2 = Child::b/@B1]", &labels);
  auto assoc = CheckSafety({&safe});
  ASSERT_TRUE(assoc.ok()) << assoc.status().ToString();
  EXPECT_EQ(assoc->by_label.at(labels.Find("a")), labels.Find("B2"));
  EXPECT_EQ(assoc->by_label.at(labels.Find("b")), labels.Find("B1"));
  // Conflicting association: a with two different attributes.
  XpPath clash =
      *ParseXPath("/Child::a[Self::a/@B1 = Child::a/@B2]", &labels);
  EXPECT_FALSE(CheckSafety({&clash}).ok());
  // Wildcard forces a unique attribute.
  XpPath wild = *ParseXPath("/Child::a[Self::*/@B1 = Child::*/@B1]", &labels);
  EXPECT_TRUE(CheckSafety({&wild}).ok());
  EXPECT_FALSE(CheckSafety({&wild, &safe}).ok());
}

TEST(XPathTranslationTest, AgreesWithEvaluatorOnRandomTrees) {
  // Differential test: for structural queries, the FO² translation evaluated
  // by the model checker selects exactly the nodes the XPath evaluator
  // returns.
  Alphabet labels;
  const char* queries[] = {
      "/Child::l0",
      "/Child::*/Child::l1",
      "/Child::l0[Child::l1]",
      "/Child::*[not Child::l0]/NextSibling::*",
      "/Child::l0[Child::l1 or Self::l0[Parent::l2]]",
  };
  RandomSource rng(4242);
  RandomTreeOptions opt;
  opt.num_nodes = 12;
  opt.num_labels = 3;
  SafetyAssociations no_assoc;
  for (const char* q : queries) {
    auto path = ParseXPath(q, &labels);
    ASSERT_TRUE(path.ok()) << q;
    auto formula = TranslateXPathToFo2(*path, no_assoc);
    ASSERT_TRUE(formula.ok()) << q << ": " << formula.status().ToString();
    for (int iter = 0; iter < 20; ++iter) {
      DataTree t = RandomDataTree(opt, &rng, &labels);
      auto direct = EvaluateXPathFromRoot(t, *path);
      ASSERT_TRUE(direct.ok());
      auto by_formula = Evaluator::EvaluateUnary(*formula, t, Var::kX);
      ASSERT_TRUE(by_formula.ok()) << by_formula.status().ToString();
      std::vector<char> expect(t.size(), 0);
      for (NodeId v : *direct) expect[v] = 1;
      EXPECT_EQ(*by_formula, expect) << q << " on " << DataTreeToText(t, labels);
    }
  }
}

TEST(XPathTranslationTest, DataJoinAgreesAfterEncoding) {
  // Relative comparisons: translation works on element-value-encoded trees.
  Alphabet labels;
  XpPath q = *ParseXPath("/Child::a[Self::a/@B2 = Child::b/@B1]", &labels);
  auto assoc = CheckSafety({&q});
  ASSERT_TRUE(assoc.ok());
  auto formula = TranslateXPathToFo2(q, *assoc);
  ASSERT_TRUE(formula.ok()) << formula.status().ToString();
  Ctx c = MakeCtx(
      "r:0 (a:0 (B2:1 b:0 (B1:1) b:0 (B1:2)) a:0 (B2:3 b:0 (B1:4)))");
  // Note: both alphabets interned a,B2,b,B1 in the same order.
  DataTree encoded = ApplyElementValueEncoding(c.tree, *assoc);
  auto direct = EvaluateXPathFromRoot(c.tree, q);
  ASSERT_TRUE(direct.ok());
  auto by_formula = Evaluator::EvaluateUnary(*formula, encoded, Var::kX);
  ASSERT_TRUE(by_formula.ok());
  std::vector<char> expect(c.tree.size(), 0);
  for (NodeId v : *direct) expect[v] = 1;
  EXPECT_EQ(*by_formula, expect);
}

TEST(XPathDecisionTest, SatisfiabilityAndContainment) {
  Alphabet labels;
  XpPath p = *ParseXPath("/Child::a[Child::b]", &labels);
  XpPath q = *ParseXPath("/Child::a", &labels);
  SolverOptions opt;
  opt.max_model_nodes = 4;
  auto sat = CheckXPathSatisfiability(p, nullptr, opt);
  ASSERT_TRUE(sat.ok()) << sat.status().ToString();
  EXPECT_EQ(sat->verdict, SatVerdict::kSat);
  // p ⊆ q holds: no counterexample.
  auto holds = CheckXPathContainment(p, q, nullptr, opt);
  ASSERT_TRUE(holds.ok());
  EXPECT_EQ(holds->verdict, SatVerdict::kUnknown);
  // q ⊆ p is refuted.
  auto refuted = CheckXPathContainment(q, p, nullptr, opt);
  ASSERT_TRUE(refuted.ok());
  ASSERT_EQ(refuted->verdict, SatVerdict::kSat);
  // The witness genuinely separates the queries.
  auto in_q = EvaluateXPathFromRoot(*refuted->witness, q);
  auto in_p = EvaluateXPathFromRoot(*refuted->witness, p);
  EXPECT_GT(in_q->size(), in_p->size());
}

}  // namespace
}  // namespace fo2dt
