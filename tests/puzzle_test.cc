#include "puzzle/puzzle.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datatree/generator.h"
#include "datatree/text_io.h"
#include "logic/eval.h"
#include "puzzle/bounded_solver.h"
#include "puzzle/counting.h"

namespace fo2dt {
namespace {

// Alphabet {a=0, b=1}, no predicates.
ExtAlphabet TinyExt() { return ExtAlphabet{2, 0}; }

TypeSet LetterType(const ExtAlphabet& ext, ExtSymbol l) {
  TypeSet t(ext.size(), 0);
  t[l] = 1;
  return t;
}

SimpleFormula AtMostOne(const ExtAlphabet& ext, ExtSymbol l) {
  SimpleFormula s;
  s.kind = SimpleFormula::Kind::kAtMostOne;
  s.alpha = LetterType(ext, l);
  return s;
}

SimpleFormula NoCoexist(const ExtAlphabet& ext, ExtSymbol a, ExtSymbol b) {
  SimpleFormula s;
  s.kind = SimpleFormula::Kind::kNoCoexist;
  s.alpha = LetterType(ext, a);
  s.beta = LetterType(ext, b);
  return s;
}

SimpleFormula Implies(const ExtAlphabet& ext, ExtSymbol a, ExtSymbol b) {
  SimpleFormula s;
  s.kind = SimpleFormula::Kind::kImpliesPresence;
  s.alpha = LetterType(ext, a);
  s.beta = LetterType(ext, b);
  return s;
}

DataTree T(const std::string& text, Alphabet* alpha) {
  auto t = ParseDataTree(text, alpha);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

TEST(PuzzleTest, UnconstrainedBlockAcceptsEverything) {
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  PredInterpretation none = PredInterpretation::Empty(0, 5);
  DataTree t = T("a:1 (b:1 a:2 (b:2) b:1)", &alpha);
  EXPECT_TRUE(*IsPuzzleSolution(*puzzle, t, none));
}

TEST(PuzzleTest, AtMostOneCondition) {
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  block.simples.push_back(AtMostOne(ext, 0));  // at most one 'a' per class
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  PredInterpretation none = PredInterpretation::Empty(0, 3);
  EXPECT_TRUE(*IsPuzzleSolution(*puzzle, T("a:1 (a:2 b:1)", &alpha), none));
  EXPECT_FALSE(*IsPuzzleSolution(*puzzle, T("a:1 (a:1 b:2)", &alpha), none));
}

TEST(PuzzleTest, ProfileConditionFoldsIntoLanguage) {
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  SimpleFormula prof;
  prof.kind = SimpleFormula::Kind::kProfile;
  prof.alpha = LetterType(ext, 1);  // every 'b'
  // Allowed profiles: parent_same set (codes with bit 4 in EncodeProfile,
  // i.e. codes 4..7).
  prof.profile_mask = 0xf0;
  block.simples.push_back(prof);
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  EXPECT_TRUE(puzzle->class_conditions.empty());
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  PredInterpretation none = PredInterpretation::Empty(0, 2);
  // b child sharing the parent's value: profile P-- (code 4): allowed.
  EXPECT_TRUE(*IsPuzzleSolution(*puzzle, T("a:1 (b:1)", &alpha), none));
  // b child with a different value: profile ---: rejected.
  EXPECT_FALSE(*IsPuzzleSolution(*puzzle, T("a:1 (b:2)", &alpha), none));
}

TEST(PuzzleTest, SimpleFormulasAgreeWithFo2Semantics) {
  // Differential: EvaluateSimple must agree with the FO² reading
  // (SimpleToFormula + model checker) on random trees.
  ExtAlphabet ext = TinyExt();
  std::vector<SimpleFormula> simples = {
      AtMostOne(ext, 0), NoCoexist(ext, 0, 1), Implies(ext, 0, 1)};
  SimpleFormula prof;
  prof.kind = SimpleFormula::Kind::kProfile;
  prof.alpha = LetterType(ext, 0);
  prof.profile_mask = 0x0f;  // 'a' nodes must not share the parent's value
  simples.push_back(prof);

  Alphabet alpha;  // generator interns l0, l1 as labels 0, 1
  RandomSource rng(321);
  RandomTreeOptions opt;
  opt.num_nodes = 8;
  opt.num_labels = 2;
  opt.num_data_values = 3;
  PredInterpretation none = PredInterpretation::Empty(0, opt.num_nodes);
  for (int iter = 0; iter < 60; ++iter) {
    DataTree t = RandomDataTree(opt, &rng, &alpha);
    for (const SimpleFormula& s : simples) {
      bool direct = *EvaluateSimple(s, t, ext, none);
      Formula f = SimpleToFormula(s, ext);
      bool logical = *Evaluator::EvaluateSentence(f, t, nullptr);
      EXPECT_EQ(direct, logical)
          << s.ToString(ext, alpha) << " on " << DataTreeToText(t, alpha);
    }
  }
}

TEST(PuzzleTest, PairSemantics) {
  ExtAlphabet ext = TinyExt();
  std::vector<SimpleFormula> conds = {AtMostOne(ext, 0), Implies(ext, 1, 0)};
  AcceptingPair ok;
  ok.dogs = LetterType(ext, 0);   // D = {a}
  ok.sheep = LetterType(ext, 1);  // S = {b}
  EXPECT_TRUE(PairSatisfiesConditions(ok, conds));
  AcceptingPair bad;
  bad.dogs = TypeSet(2, 0);
  bad.sheep = LetterType(ext, 1);  // b possible but a not guaranteed
  EXPECT_FALSE(PairSatisfiesConditions(bad, conds));
  AcceptingPair a_sheep;
  a_sheep.dogs = TypeSet(2, 0);
  a_sheep.sheep = TypeSet(2, 1);  // a in S violates at-most-one
  EXPECT_FALSE(PairSatisfiesConditions(a_sheep, conds));

  // Class conformance: dogs exactly once, sheep free, others zero.
  EXPECT_TRUE(ClassConformsToPair({1, 3}, ok));
  EXPECT_FALSE(ClassConformsToPair({2, 3}, ok));
  EXPECT_FALSE(ClassConformsToPair({0, 3}, ok));  // dog 'a' must occur
  AcceptingPair only_b;
  only_b.dogs = TypeSet(2, 0);
  only_b.sheep = LetterType(ext, 1);
  EXPECT_TRUE(ClassConformsToPair({0, 0}, only_b));
  EXPECT_FALSE(ClassConformsToPair({1, 0}, only_b));
}

TEST(PuzzleTest, CountAcceptingPairsMatchesEnumeration) {
  // Exhaustive differential over all 3^E pair assignments for small E.
  RandomSource rng(555);
  for (int iter = 0; iter < 20; ++iter) {
    ExtAlphabet ext{3, 0};  // three letters
    Puzzle puzzle;
    puzzle.ext = ext;
    puzzle.language = TreeAutomaton::Universal(ext.profiled_size());
    int num_conds = 1 + static_cast<int>(rng.UniformIndex(3));
    for (int c = 0; c < num_conds; ++c) {
      ExtSymbol x = static_cast<ExtSymbol>(rng.UniformIndex(3));
      ExtSymbol y = static_cast<ExtSymbol>(rng.UniformIndex(3));
      switch (rng.UniformIndex(3)) {
        case 0:
          puzzle.class_conditions.push_back(AtMostOne(ext, x));
          break;
        case 1:
          puzzle.class_conditions.push_back(NoCoexist(ext, x, y));
          break;
        default:
          puzzle.class_conditions.push_back(Implies(ext, x, y));
      }
    }
    BigInt dp_count = CountAcceptingPairs(puzzle);
    // Brute force: each letter in {absent, dog, sheep}.
    int64_t brute = 0;
    for (int assign = 0; assign < 27; ++assign) {
      AcceptingPair pair;
      pair.dogs = TypeSet(3, 0);
      pair.sheep = TypeSet(3, 0);
      int code = assign;
      for (int l = 0; l < 3; ++l) {
        int choice = code % 3;
        code /= 3;
        if (choice == 1) pair.dogs[static_cast<size_t>(l)] = 1;
        if (choice == 2) pair.sheep[static_cast<size_t>(l)] = 1;
      }
      if (PairSatisfiesConditions(pair, puzzle.class_conditions)) ++brute;
    }
    EXPECT_EQ(dp_count.ToString(), BigInt(brute).ToString()) << "iter " << iter;
  }
}

TEST(PuzzleTest, NormalizeImpliesPreservesSolutions) {
  // Class-level satisfaction of the original block must equal EMSO-style
  // satisfaction of the normalized block (∃ marker sets) on small trees.
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  block.simples.push_back(Implies(ext, 0, 1));  // class with a needs a b
  ExtAlphabet grown = ext;
  auto normalized = NormalizeImpliesPresence(block, &grown);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(grown.num_preds, 1u);

  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  const char* trees[] = {"a:1",       "b:1",           "a:1 (b:1)",
                         "a:1 (b:2)", "a:1 (b:1 a:1)", "b:1 (a:2 b:2)"};
  for (const char* text : trees) {
    DataTree t = T(text, &alpha);
    PredInterpretation none = PredInterpretation::Empty(0, t.size());
    bool direct = true;
    for (const SimpleFormula& s : block.simples) {
      direct = direct && *EvaluateSimple(s, t, ext, none);
    }
    // Normalized: exists a marker assignment satisfying all simples.
    DataNormalForm dnf;
    dnf.ext = grown;
    dnf.blocks.push_back(*normalized);
    bool via_markers = *EvaluateDnfBruteForce(dnf, t, 24);
    EXPECT_EQ(direct, via_markers) << text;
  }
}

TEST(PuzzleTest, BoundedSolverFindsWitness) {
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  block.simples.push_back(Implies(ext, 0, 1));  // a-classes contain a b
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  auto result = SolvePuzzleBounded(*puzzle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->verdict, BoundedVerdict::kSat);
  EXPECT_TRUE(*IsPuzzleSolution(*puzzle, result->witness, result->interp));
}

TEST(PuzzleTest, BoundedSolverProvesBoundedUnsat) {
  // 'a' may not coexist with itself (no class contains an a at all -> since
  // every node is in some class, no a anywhere), but the language accepts
  // only trees whose root is 'a'. Unsatisfiable.
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  block.simples.push_back(NoCoexist(ext, 0, 0));
  // Language: root must be 'a' (any profile); one-state automaton.
  TreeAutomaton root_a(ext.profiled_size(), 1);
  root_a.SetInitial(0);
  for (Symbol s = 0; s < ext.profiled_size(); ++s) {
    root_a.AddHorizontal(0, s, 0);
    root_a.AddVertical(0, s, 0);
    if (ext.LabelOf(ext.ExtOf(s)) == 0) root_a.SetAccepting(0, s);
  }
  block.regular.push_back(root_a);
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  BoundedSolveOptions opt;
  opt.max_nodes = 4;
  auto result = SolvePuzzleBounded(*puzzle, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, BoundedVerdict::kUnsatWithinBound);
  // The counting abstraction proves it outright.
  auto counted = CheckPuzzleUnsatByCounting(*puzzle);
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  EXPECT_EQ(counted->verdict, CountingVerdict::kUnsat);
}

TEST(PuzzleTest, CountingInconclusiveOnSatisfiablePuzzle) {
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  block.simples.push_back(AtMostOne(ext, 0));
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  auto counted = CheckPuzzleUnsatByCounting(*puzzle);
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  EXPECT_EQ(counted->verdict, CountingVerdict::kInconclusive);
}

TEST(CoherenceTest, AcceptsProfilesOfRealTrees) {
  ExtAlphabet ext = TinyExt();
  TreeAutomaton coherent = ProfileCoherenceAutomaton(ext);
  Alphabet alpha;
  RandomSource rng(777);
  RandomTreeOptions opt;
  opt.num_nodes = 15;
  opt.num_labels = 2;
  opt.num_data_values = 4;
  PredInterpretation none = PredInterpretation::Empty(0, opt.num_nodes);
  for (int iter = 0; iter < 40; ++iter) {
    DataTree t = RandomDataTree(opt, &rng, &alpha);
    DataTree profiled = *BuildExtProfiledTree(t, ext, none);
    EXPECT_TRUE(coherent.Accepts(profiled))
        << DataTreeToText(t, alpha);
  }
}

TEST(CoherenceTest, RejectsIncoherentProfiles) {
  ExtAlphabet ext = TinyExt();
  TreeAutomaton coherent = ProfileCoherenceAutomaton(ext);
  // Root claiming a parent: profile P-- (code 4).
  {
    DataTree t;
    (void)t.CreateRoot(ext.Profiled(0, 4), 0);
    EXPECT_FALSE(coherent.Accepts(t));
  }
  // Two siblings with mismatched shared-edge bits: first claims right-same
  // (code 1 = --R), second claims left-different (code 0 = ---).
  {
    DataTree t;
    (void)t.CreateRoot(ext.Profiled(0, 0), 0);
    (void)t.AppendChild(t.root(), ext.Profiled(0, 1), 0);
    (void)t.AppendChild(t.root(), ext.Profiled(0, 0), 0);
    EXPECT_FALSE(coherent.Accepts(t));
  }
  // Triangle violation: both children share the parent's value but claim to
  // differ from each other: children profiles P-- (4) and P-- (4), sibling
  // edge bits 0. Exactly one of the three equalities is false.
  {
    DataTree t;
    (void)t.CreateRoot(ext.Profiled(0, 0), 0);
    (void)t.AppendChild(t.root(), ext.Profiled(0, 4), 0);
    (void)t.AppendChild(t.root(), ext.Profiled(0, 4), 0);
    EXPECT_FALSE(coherent.Accepts(t));
  }
  // The same shape with a coherent marking is accepted: children share with
  // the parent AND with each other: profiles P-R (code 5) then PL- (code 6).
  {
    DataTree t;
    (void)t.CreateRoot(ext.Profiled(0, 0), 0);
    (void)t.AppendChild(t.root(), ext.Profiled(0, 5), 0);
    (void)t.AppendChild(t.root(), ext.Profiled(0, 6), 0);
    EXPECT_TRUE(coherent.Accepts(t));
  }
}

TEST(TableITest, ConstantsHaveExpectedStructure) {
  ExtAlphabet ext = TinyExt();
  DnfBlock block;
  block.simples.push_back(AtMostOne(ext, 0));
  auto puzzle = PuzzleFromBlock(block, ext);
  ASSERT_TRUE(puzzle.ok());
  TableIConstants c = ComputeTableIConstants(*puzzle);
  EXPECT_TRUE(c.f_size.IsPositive());
  EXPECT_EQ(c.m.Compare(c.m1 * BigInt(3)), 0);
  EXPECT_TRUE(c.n1.IsPositive());
  EXPECT_GT(c.n_digits, 0u);
  // M_i = |F| * |Q|^|Q| with |Q| = 1 here (universal language): M1 == |F|.
  EXPECT_EQ(c.m1.Compare(c.f_size), 0);
}

}  // namespace
}  // namespace fo2dt
