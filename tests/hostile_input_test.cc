/// \file hostile_input_test.cc
/// \brief Fuzz-style malformed-input hardening for every text parser that is
/// reachable from the network through fo2dtd request bodies: tree-automaton
/// text, FO2 formulas, XPath, data trees, the vata facade body, and the wire
/// protocol's request lines.
///
/// The contract under test: hostile input — truncations, giant counts and
/// dimensions, absurd nesting, non-UTF8 bytes — always comes back as a
/// Status carrying position information. Never a crash, never an
/// input-proportional allocation, never a hang.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/automaton_io.h"
#include "common/status.h"
#include "datatree/text_io.h"
#include "lcta/lcta.h"
#include "logic/parser.h"
#include "server/facade_exec.h"
#include "server/protocol.h"
#include "xpath/xpath.h"

namespace fo2dt {
namespace {

// ---------------------------------------------------------------------------
// Tree-automaton text

TEST(HostileAutomatonTest, GiantDimensionHeaderRejectedBeforeAllocation) {
  // The constructor reserves num_symbols * num_states adjacency slots; this
  // header asks for 2^48 of them from a few bytes of input. If the parser
  // ever allocates proportionally, the test OOMs instead of failing politely.
  auto r = ParseTreeAutomaton(
      "automaton 16777216 16777216\n"
      "initial 0\nnonfirst 0\naccepting 0\nhorizontal 0\nvertical 0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("implausibly large"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileAutomatonTest, GiantListCountRunsOutOfTokensNotMemory) {
  // The list count promises ~2^64 entries the text does not contain. The
  // parser must fail at "text ended early", not trust the count.
  auto r = ParseTreeAutomaton(
      "automaton 2 2\ninitial 18446744073709551615 0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line "), std::string::npos)
      << r.status().ToString();
}

TEST(HostileAutomatonTest, CountOverflowRejected) {
  auto r = ParseTreeAutomaton(
      "automaton 99999999999999999999999999 2\n"
      "initial 0\nnonfirst 0\naccepting 0\nhorizontal 0\nvertical 0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overflows"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileAutomatonTest, OutOfRangeStateCarriesPosition) {
  auto r = ParseTreeAutomaton(
      "automaton 2 2\ninitial 1 7\n"
      "nonfirst 0\naccepting 0\nhorizontal 0\nvertical 0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileAutomatonTest, NonUtf8BytesSanitizedInErrorMessage) {
  std::string text = "automaton 2 2\ninitial 1 \xff\xfe\x01garbage\n";
  auto r = ParseTreeAutomaton(text);
  ASSERT_FALSE(r.ok());
  // The offending token is echoed with non-printable bytes replaced, so the
  // diagnostic itself stays clean text.
  for (char c : r.status().message()) {
    unsigned char byte = static_cast<unsigned char>(c);
    EXPECT_TRUE(byte >= 0x20 && byte < 0x7f) << "raw byte in error message";
  }
}

TEST(HostileAutomatonTest, TruncationAtEveryByteFailsCleanly) {
  const std::string valid =
      "automaton 2 3\ninitial 1 0\nnonfirst 1 1\naccepting 1 2 1\n"
      "horizontal 1 0 0 1\nvertical 1 1 1 2\n";
  ASSERT_TRUE(ParseTreeAutomaton(valid).ok());
  for (size_t cut = 0; cut + 1 < valid.size(); ++cut) {
    auto r = ParseTreeAutomaton(valid.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "prefix of length " << cut << " parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    EXPECT_FALSE(r.status().message().empty());
  }
}

// ---------------------------------------------------------------------------
// FO2 formulas

TEST(HostileFormulaTest, DeepParenNestingRejected) {
  std::string text(100000, '(');
  text += "a(x)";
  text += std::string(100000, ')');
  Alphabet labels;
  auto r = ParseFormula(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileFormulaTest, DeepNegationChainRejected) {
  std::string text(100000, '!');
  text += "a(x)";
  Alphabet labels;
  auto r = ParseFormula(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos);
}

TEST(HostileFormulaTest, DeepImplicationChainRejected) {
  std::string text = "a(x)";
  for (int i = 0; i < 100000; ++i) text += " -> a(x)";
  Alphabet labels;
  auto r = ParseFormula(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos);
}

TEST(HostileFormulaTest, DeepQuantifierChainRejected) {
  std::string text;
  for (int i = 0; i < 100000; ++i) text += "exists x. ";
  text += "a(x)";
  Alphabet labels;
  auto r = ParseFormula(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos);
}

TEST(HostileFormulaTest, ReasonableNestingStillParses) {
  // The depth ceiling must sit far above anything legitimate.
  std::string text(64, '(');
  text += "a(x)";
  text += std::string(64, ')');
  Alphabet labels;
  EXPECT_TRUE(ParseFormula(text, &labels).ok());
}

TEST(HostileFormulaTest, ErrorsCarryLineAndColumn) {
  Alphabet labels;
  for (const char* bad : {"a(z)", "exists x a(x)", "a(x) &", "(a(x)",
                          "\xff\xfe(x)", "x ~"}) {
    auto r = ParseFormula(bad, &labels);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_NE(r.status().message().find("line "), std::string::npos)
        << r.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// XPath

TEST(HostileXPathTest, DeepNotNestingRejected) {
  std::string text = "Child::a[";
  for (int i = 0; i < 100000; ++i) text += "not(";
  text += "Child::b";
  text += std::string(100000, ')');
  text += "]";
  Alphabet labels;
  auto r = ParseXPath(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileXPathTest, DeepPredicateNestingRejected) {
  std::string text;
  for (int i = 0; i < 100000; ++i) text += "Child::a[";
  text += "Child::b";
  text += std::string(100000, ']');
  Alphabet labels;
  auto r = ParseXPath(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos);
}

TEST(HostileXPathTest, ReasonableNestingStillParses) {
  std::string text = "/Child::a[Child::b[Child::c[not(Child::d)]]]";
  Alphabet labels;
  EXPECT_TRUE(ParseXPath(text, &labels).ok());
}

// ---------------------------------------------------------------------------
// Data trees

TEST(HostileDataTreeTest, DeepNestingRejected) {
  std::string text;
  for (int i = 0; i < 100000; ++i) text += "a:0 (";
  text += "b:1";
  text += std::string(100000, ')');
  Alphabet labels;
  auto r = ParseDataTree(text, &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nested too deeply"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileDataTreeTest, DataValueOverflowRejected) {
  Alphabet labels;
  auto r = ParseDataTree("a:99999999999999999999999999", &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overflows"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileDataTreeTest, TruncationsFailWithPosition) {
  Alphabet labels;
  for (const char* bad : {"", "a", "a:", "a:0 (", "a:0 (b:1", "a:0 ("}) {
    auto r = ParseDataTree(bad, &labels);
    ASSERT_FALSE(r.ok()) << "'" << bad << "' parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    EXPECT_NE(r.status().message().find("line "), std::string::npos)
        << r.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Facade bodies (the composite grammar fo2dtd feeds from the wire)

TEST(HostileFacadeBodyTest, GiantLabelsLineRejected) {
  auto r = ExecuteFacadeBody(
      "frontend.sat",
      {"labels 18446744073709551615", "formula exists x. l0(x)"}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("implausibly large"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileFacadeBodyTest, GiantCanonicalLabelTokenRejected) {
  // MaxCanonicalLabel scans every body line for l<N> tokens; a 19-digit one
  // must saturate above the cap, not wrap around to a small alphabet.
  auto r = ExecuteFacadeBody(
      "frontend.sat",
      {"labels 1", "formula exists x. l18446744073709551617(x)"}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("implausibly large"), std::string::npos);
}

TEST(HostileFacadeBodyTest, BudgetValueOverflowRejected) {
  // 2^64 exactly: the old scanner wrapped this to 0 instead of failing.
  auto r = ExecuteFacadeBody(
      "frontend.sat",
      {"budget max_steps 18446744073709551616", "formula exists x. l0(x)"},
      nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("overflows"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileFacadeBodyTest, BudgetValueTrailingGarbageRejected) {
  // The old scanner stopped at the first non-digit, silently reading 12.
  auto r = ExecuteFacadeBody(
      "frontend.sat",
      {"budget max_steps 12abc", "formula exists x. l0(x)"}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("malformed unsigned integer"),
            std::string::npos)
      << r.status().ToString();
}

TEST(HostileFacadeBodyTest, EmptyBudgetValueRejected) {
  auto r = ExecuteFacadeBody(
      "frontend.sat", {"budget max_steps", "formula exists x. l0(x)"},
      nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(HostileFacadeBodyTest, VataRuleCountOverflowRejected) {
  auto r = ExecuteFacadeBody(
      "vata.accepts",
      {"vata 1 2 1", "accepting 1 1", "leafrules 99999999999999999999",
       "0 1 0", "tree l0:0"},
      nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("overflows"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileFacadeBodyTest, GiantVataHeaderRejected) {
  auto r = ExecuteFacadeBody(
      "vata.accepts",
      {"vata 18446744073709551615 2 1", "tree l0:0"}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("implausibly large"), std::string::npos)
      << r.status().ToString();
}

TEST(HostileFacadeBodyTest, GiantVataAcceptingCountRejected) {
  // The count promises 2^64-1 states the line does not carry; the loop must
  // stop at extraction failure instead of pushing k entries.
  auto r = ExecuteFacadeBody(
      "vata.accepts",
      {"vata 1 2 1", "accepting 18446744073709551615 1", "tree l0:0"},
      nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("short accepting list"),
            std::string::npos)
      << r.status().ToString();
}

TEST(HostileFacadeBodyTest, WellFormedVataBodyStillExecutes) {
  auto r = ExecuteFacadeBody(
      "vata.accepts",
      {"vata 1 2 1", "accepting 1 1", "leafrules 1", "0 1 0", "tree l0:0"},
      nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, "ACCEPT");
}

// ---------------------------------------------------------------------------
// Wire protocol request lines

TEST(HostileRequestLineTest, StructuralAttacksRejectedWithByteOffset) {
  const char* bad_lines[] = {
      "",                                  // empty
      "not json",                          // no object
      "{",                                 // unterminated object
      "{\"op\"}",                          // missing value
      "{\"op\":}",                         // empty value
      "{\"op\":{\"nested\":1}}",           // nested object
      "{\"op\":[1,2]}",                    // array
      "{\"op\":-1}",                       // negative where string expected
      "{\"deadline_ms\":-5}",              // negative integer
      "{\"deadline_ms\":1.5}",             // float
      "{\"deadline_ms\":99999999999999999999999999}",  // overflow
      "{\"op\":\"solve\"} trailing",       // trailing garbage
      "{\"op\":\"solve\",}",               // dangling comma
      "{\"unknown_key\":\"x\"}",           // unknown key
      "{\"op\":\"ping\" \"id\":\"r\"}",    // missing comma
  };
  for (const char* bad : bad_lines) {
    auto r = ParseRequestLine(bad);
    ASSERT_FALSE(r.ok()) << "'" << bad << "' parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    EXPECT_NE(r.status().message().find("byte "), std::string::npos)
        << "'" << bad << "' -> " << r.status().ToString();
  }
}

TEST(HostileRequestLineTest, StringEscapeAttacksRejected) {
  const char* bad_lines[] = {
      "{\"op\":\"solve",                  // unterminated string
      "{\"op\":\"solve\\",                // dangling escape
      "{\"op\":\"so\\qlve\"}",            // unknown escape
      "{\"op\":\"so\\u12\"}",             // truncated \u
      "{\"op\":\"so\\uZZZZ\"}",           // bad hex
      "{\"op\":\"so\\ud800lve\"}",        // surrogate
      "{\"op\":\"so\x01lve\"}",           // raw control byte
  };
  for (const char* bad : bad_lines) {
    auto r = ParseRequestLine(bad);
    ASSERT_FALSE(r.ok()) << "'" << bad << "' parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(HostileRequestLineTest, MissingOpRejected) {
  auto r = ParseRequestLine("{}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("no op"), std::string::npos);
}

TEST(HostileRequestLineTest, TruncationAtEveryByteFailsCleanly) {
  const std::string valid =
      "{\"op\":\"solve\",\"id\":\"r1\",\"tenant\":\"t\","
      "\"facade\":\"frontend.sat\","
      "\"body\":\"labels 1\\nformula exists x. l0(x)\","
      "\"deadline_ms\":500,\"max_effort\":1024}";
  auto full = ParseRequestLine(valid);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->op, "solve");
  EXPECT_EQ(full->facade, "frontend.sat");
  ASSERT_EQ(full->body.size(), 2u);
  EXPECT_EQ(full->body[0], "labels 1");
  EXPECT_EQ(full->body[1], "formula exists x. l0(x)");
  EXPECT_EQ(full->deadline_ms, 500u);
  EXPECT_EQ(full->max_effort, 1024u);
  for (size_t cut = 0; cut + 1 < valid.size(); ++cut) {
    auto r = ParseRequestLine(valid.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "prefix of length " << cut << " parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(HostileRequestLineTest, UnicodeEscapesDecodeToUtf8) {
  auto r = ParseRequestLine("{\"op\":\"ping\",\"id\":\"\\u0041\\u00e9\\u20ac\"}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->id, "A\xc3\xa9\xe2\x82\xac");
}

TEST(HostileRequestLineTest, ResponseEscapingRoundTrips) {
  // A verdict containing quotes, backslashes, and newlines must serialize to
  // one parseable line (the transport is line-delimited).
  ServerResponse resp;
  resp.id = "r\"1\\x";
  resp.status = "ERROR";
  resp.detail = "line1\nline2\ttab";
  std::string line = resp.ToJsonLine();
  ASSERT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "embedded newline escaped";
}

// ---------------------------------------------------------------------------
// LCTA variable-layout overflow

TEST(HostileLctaTest, NumAuxNearUint32MaxRejectedNotWrapped) {
  // num_aux close to UINT32_MAX plus the state/symbol blocks would wrap the
  // unchecked uint32 sum to a tiny value, silently mislaying the variable
  // blocks. The checked accessor must reject instead.
  Lcta lcta;
  lcta.automaton = TreeAutomaton::Universal(4);
  lcta.use_symbol_counts = true;
  lcta.num_aux = 0xFFFFFFFFu - 2;
  auto checked = lcta.CheckedNumUserVars();
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
  // The full emptiness entry point surfaces the same structured error (no
  // crash, no wrapped layout).
  auto r = CheckLctaEmptiness(lcta);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HostileLctaTest, ExactWrapToSmallValueRejected) {
  // 1 state, no symbol counts, num_aux = UINT32_MAX: the unchecked uint32 sum
  // wraps to exactly 0, which would validate any constraint as in-range.
  Lcta lcta;
  lcta.automaton = TreeAutomaton::Universal(1);
  lcta.num_aux = 0xFFFFFFFFu;
  auto checked = lcta.CheckedNumUserVars();
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
}

TEST(HostileLctaTest, ModestAuxBlockStillAccepted) {
  Lcta lcta;
  lcta.automaton = TreeAutomaton::Universal(2);
  lcta.use_symbol_counts = true;
  lcta.num_aux = 7;
  auto checked = lcta.CheckedNumUserVars();
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(*checked, 1u + 2u + 7u);
  EXPECT_EQ(*checked, lcta.NumUserVars());
}

}  // namespace
}  // namespace fo2dt
