#include <gtest/gtest.h>

#include "common/random.h"
#include "solverlp/ilp.h"
#include "solverlp/linear.h"
#include "solverlp/simplex.h"

namespace fo2dt {
namespace {

// Helper: expr = sum coeffs[i] * v_i + c.
LinearExpr MakeExpr(std::vector<int64_t> coeffs, int64_t c) {
  LinearExpr e{BigInt(c)};
  for (size_t i = 0; i < coeffs.size(); ++i) {
    e.AddTerm(static_cast<VarId>(i), BigInt(coeffs[i]));
  }
  return e;
}

TEST(LinearExprTest, TermMergingAndZeroErasure) {
  LinearExpr e;
  e.AddTerm(0, BigInt(2));
  e.AddTerm(0, BigInt(3));
  EXPECT_EQ(e.CoefficientOf(0).ToString(), "5");
  e.AddTerm(0, BigInt(-5));
  EXPECT_TRUE(e.CoefficientOf(0).IsZero());
  EXPECT_TRUE(e.terms().empty());
}

TEST(LinearExprTest, Evaluate) {
  LinearExpr e = MakeExpr({2, -1}, 7);
  IntAssignment a = {BigInt(3), BigInt(4)};
  EXPECT_EQ(e.Evaluate(a)->ToString(), "9");
  IntAssignment short_a = {BigInt(3)};
  EXPECT_FALSE(e.Evaluate(short_a).ok());
}

TEST(LinearExprTest, ToStringRendering) {
  EXPECT_EQ(MakeExpr({1, -2}, 3).ToString(), "v0 - 2*v1 + 3");
  EXPECT_EQ(MakeExpr({}, -4).ToString(), "-4");
  EXPECT_EQ(MakeExpr({-1}, 0).ToString(), "-v0");
}

TEST(LinearConstraintTest, EvaluateBooleanStructure) {
  // (v0 >= 1) && !(v1 == 2)
  LinearConstraint c = LinearConstraint::And(
      {LinearConstraint::Ge(MakeExpr({1}, -1)),
       LinearConstraint::Not(LinearConstraint::Eq(MakeExpr({0, 1}, -2)))});
  EXPECT_TRUE(*c.Evaluate({BigInt(1), BigInt(0)}));
  EXPECT_FALSE(*c.Evaluate({BigInt(0), BigInt(0)}));
  EXPECT_FALSE(*c.Evaluate({BigInt(5), BigInt(2)}));
}

TEST(LinearConstraintTest, DnfMatchesDirectEvaluation) {
  // Randomized: DNF expansion is equivalent to the original constraint on
  // small integer points.
  RandomSource rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    // Random constraint over 2 vars, depth 2.
    std::function<LinearConstraint(int)> gen = [&](int depth) {
      if (depth == 0 || rng.Bernoulli(0.4)) {
        LinearExpr e = MakeExpr({rng.UniformInt(-2, 2), rng.UniformInt(-2, 2)},
                                rng.UniformInt(-3, 3));
        return rng.Bernoulli(0.5) ? LinearConstraint::Ge(e)
                                  : LinearConstraint::Eq(e);
      }
      double pick = rng.UniformDouble();
      if (pick < 0.33) {
        return LinearConstraint::Not(gen(depth - 1));
      }
      std::vector<LinearConstraint> parts = {gen(depth - 1), gen(depth - 1)};
      return pick < 0.66 ? LinearConstraint::And(parts)
                         : LinearConstraint::Or(parts);
    };
    LinearConstraint c = gen(2);
    auto dnf = c.ToDnf();
    ASSERT_TRUE(dnf.ok());
    for (int64_t x = 0; x <= 3; ++x) {
      for (int64_t y = 0; y <= 3; ++y) {
        IntAssignment a = {BigInt(x), BigInt(y)};
        bool direct = *c.Evaluate(a);
        bool via_dnf = false;
        for (const auto& branch : *dnf) {
          bool all = true;
          for (const auto& atom : branch) {
            if (!*atom.Evaluate(a)) {
              all = false;
              break;
            }
          }
          if (all) {
            via_dnf = true;
            break;
          }
        }
        EXPECT_EQ(direct, via_dnf) << c.ToString() << " at " << x << "," << y;
      }
    }
  }
}

TEST(SimplexTest, SimpleFeasible) {
  // v0 + v1 >= 2, v0 <= 5 (i.e. 5 - v0 >= 0)
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({1, 1}, -2)),
                      LinearAtom::Ge(MakeExpr({-1, 0}, 5))};
  auto sol = SimplexSolver::FindFeasible(sys, 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kOptimal);
  // Check the point actually satisfies the constraints.
  for (const auto& atom : sys) {
    Rational v = *atom.expr.EvaluateRational(sol->assignment);
    EXPECT_GE(v, Rational(0));
  }
}

TEST(SimplexTest, Infeasible) {
  // v0 >= 3 and v0 <= 1.
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({1}, -3)),
                      LinearAtom::Ge(MakeExpr({-1}, 1))};
  auto sol = SimplexSolver::FindFeasible(sys, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kInfeasible);
}

TEST(SimplexTest, EqualityConstraints) {
  // v0 + v1 == 4, v0 - v1 == 2 -> v0 = 3, v1 = 1.
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({1, 1}, -4)),
                      LinearAtom::Eq(MakeExpr({1, -1}, -2))};
  auto sol = SimplexSolver::FindFeasible(sys, 2);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_EQ(sol->assignment[0], Rational(3));
  EXPECT_EQ(sol->assignment[1], Rational(1));
}

TEST(SimplexTest, MinimizeObjective) {
  // min v0 + v1 s.t. v0 + 2*v1 >= 4, 2*v0 + v1 >= 4. Optimum at (4/3, 4/3).
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({1, 2}, -4)),
                      LinearAtom::Ge(MakeExpr({2, 1}, -4))};
  auto sol = SimplexSolver::Minimize(MakeExpr({1, 1}, 0), sys, 2);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_EQ(sol->objective, Rational(BigInt(8), BigInt(3)));
}

TEST(SimplexTest, Unbounded) {
  // min -v0 with only v0 >= 0: unbounded below.
  LinearSystem sys;
  auto sol = SimplexSolver::Minimize(MakeExpr({-1}, 0), sys, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RedundantRowsHandled) {
  // Same constraint three times plus an equality that makes one row
  // redundant after elimination.
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({1, 1}, -2)),
                      LinearAtom::Ge(MakeExpr({1, 1}, -2)),
                      LinearAtom::Ge(MakeExpr({2, 2}, -4)),
                      LinearAtom::Eq(MakeExpr({1, -1}, 0))};
  auto sol = SimplexSolver::FindFeasible(sys, 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_EQ(sol->assignment[0], sol->assignment[1]);
}

TEST(SimplexTest, DegenerateCyclingGuard) {
  // A classically degenerate LP; Bland's rule must terminate.
  // min -0.75 v0 + 150 v1 - 0.02 v2 + 6 v3 scaled to integers (x4, x50):
  // Use the Beale example scaled: min -3v0+600v1-... we just check
  // termination + a valid verdict.
  LinearSystem sys = {
      LinearAtom::Ge(MakeExpr({-1, 240, 4, -36}, 0)),    // row1 <= 0 form
      LinearAtom::Ge(MakeExpr({-1, 120, 2, -6}, 0)),
      LinearAtom::Ge(MakeExpr({0, 0, -1, 0}, 1)),
  };
  auto sol = SimplexSolver::Minimize(MakeExpr({-3, 600, -2, 24}, 0), sys, 4);
  ASSERT_TRUE(sol.ok());
  // Any of the three outcomes is structurally acceptable; the point of the
  // test is termination with exact arithmetic. Verify feasibility if optimal.
  if (sol->status == LpStatus::kOptimal) {
    for (const auto& atom : sys) {
      EXPECT_GE(*atom.expr.EvaluateRational(sol->assignment), Rational(0));
    }
  }
}

TEST(IlpTest, FindsIntegerPointWhenLpVertexFractional) {
  // 2*v0 == v1, v1 >= 3 -> minimal integer point v0=2, v1=4.
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({2, -1}, 0)),
                      LinearAtom::Ge(MakeExpr({0, 1}, -3))};
  auto sol = IlpSolver::FindIntegerPoint(sys, 2);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  for (const auto& atom : sys) {
    EXPECT_TRUE(*atom.Evaluate(sol->assignment)) << atom.ToString();
  }
}

TEST(IlpTest, IntegerInfeasibleThoughLpFeasible) {
  // 2*v0 - 2*v1 == 1 has rational solutions but no integer ones.
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({2, -2}, -1))};
  auto sol = IlpSolver::FindIntegerPoint(sys, 2);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_FALSE(sol->feasible);
}

TEST(IlpTest, EqualitySystemWithUniqueSolution) {
  // v0 + v1 + v2 == 6, v0 - v1 == 1, v1 - v2 == 1 -> (3, 2, 1).
  LinearSystem sys = {LinearAtom::Eq(MakeExpr({1, 1, 1}, -6)),
                      LinearAtom::Eq(MakeExpr({1, -1, 0}, -1)),
                      LinearAtom::Eq(MakeExpr({0, 1, -1}, -1))};
  auto sol = IlpSolver::FindIntegerPoint(sys, 3);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_EQ(sol->assignment[0].ToString(), "3");
  EXPECT_EQ(sol->assignment[1].ToString(), "2");
  EXPECT_EQ(sol->assignment[2].ToString(), "1");
}

TEST(IlpTest, SolveBooleanCombination) {
  // (v0 >= 5) || (v0 == 1 && v1 >= 2), with v0 <= 3 conjoined: forces branch 2.
  LinearConstraint c = LinearConstraint::And(
      {LinearConstraint::Or({LinearConstraint::Ge(MakeExpr({1}, -5)),
                             LinearConstraint::And(
                                 {LinearConstraint::Eq(MakeExpr({1, 0}, -1)),
                                  LinearConstraint::Ge(MakeExpr({0, 1}, -2))})}),
       LinearConstraint::Ge(MakeExpr({-1, 0}, 3))});
  auto sol = IlpSolver::Solve(c, 2);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->feasible);
  EXPECT_EQ(sol->assignment[0].ToString(), "1");
  EXPECT_TRUE(*c.Evaluate(sol->assignment));
}

TEST(IlpTest, UnsatBooleanCombination) {
  // v0 == 1 && v0 == 2.
  LinearConstraint c =
      LinearConstraint::And({LinearConstraint::Eq(MakeExpr({1}, -1)),
                             LinearConstraint::Eq(MakeExpr({1}, -2))});
  auto sol = IlpSolver::Solve(c, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->feasible);
}

TEST(IlpTest, RandomizedAgainstBruteForce) {
  RandomSource rng(19);
  for (int iter = 0; iter < 60; ++iter) {
    // Random small system over 3 vars; brute force over [0, 6]^3.
    LinearSystem sys;
    int rows = 1 + static_cast<int>(rng.UniformIndex(3));
    for (int r = 0; r < rows; ++r) {
      LinearExpr e = MakeExpr({rng.UniformInt(-3, 3), rng.UniformInt(-3, 3),
                               rng.UniformInt(-3, 3)},
                              rng.UniformInt(-5, 5));
      sys.push_back(rng.Bernoulli(0.6) ? LinearAtom::Ge(e) : LinearAtom::Eq(e));
    }
    // Bound the domain so brute force is exact and ILP agrees within it.
    for (VarId v = 0; v < 3; ++v) {
      sys.push_back(LinearAtom::Ge(MakeExpr(
          {v == 0 ? -1 : 0, v == 1 ? -1 : 0, v == 2 ? -1 : 0}, 6)));
    }
    bool brute = false;
    for (int64_t a = 0; a <= 6 && !brute; ++a) {
      for (int64_t b = 0; b <= 6 && !brute; ++b) {
        for (int64_t c = 0; c <= 6 && !brute; ++c) {
          IntAssignment pt = {BigInt(a), BigInt(b), BigInt(c)};
          bool all = true;
          for (const auto& atom : sys) {
            if (!*atom.Evaluate(pt)) {
              all = false;
              break;
            }
          }
          brute = all;
        }
      }
    }
    auto sol = IlpSolver::FindIntegerPoint(sys, 3);
    ASSERT_TRUE(sol.ok());
    EXPECT_EQ(sol->feasible, brute) << "iter " << iter;
    if (sol->feasible) {
      for (const auto& atom : sys) {
        EXPECT_TRUE(*atom.Evaluate(sol->assignment));
      }
    }
  }
}

TEST(IlpTest, SmallSolutionBoundIsPositive) {
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({3, -2}, -7))};
  BigInt bound = IlpSolver::SmallSolutionBound(sys, 2);
  EXPECT_TRUE(bound.IsPositive());
}

TEST(IncrementalSimplexTest, BoundTighteningMatchesFreshSolve) {
  // x0 + x1 <= 10, x0 - x1 >= -3. Tighten bounds step by step and compare
  // feasibility with a from-scratch solve of the equivalent explicit system.
  LinearSystem base = {LinearAtom::Ge(MakeExpr({-1, -1}, 10)),
                       LinearAtom::Ge(MakeExpr({1, -1}, 3))};
  auto inc = IncrementalSimplex::Create(base, 2);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->feasible());

  struct Step {
    VarId v;
    bool upper;
    int64_t value;
  };
  const std::vector<Step> steps = {
      {0, false, 2}, {1, false, 4}, {0, true, 6}, {1, true, 5}, {0, false, 5},
  };
  LinearSystem explicit_sys = base;
  for (const Step& s : steps) {
    Status st = s.upper ? inc->SetUpperBound(s.v, BigInt(s.value))
                        : inc->SetLowerBound(s.v, BigInt(s.value));
    ASSERT_TRUE(st.ok()) << st.ToString();
    LinearExpr e;
    if (s.upper) {
      e.AddTerm(s.v, BigInt(-1));
      e.AddConstant(BigInt(s.value));
    } else {
      e.AddTerm(s.v, BigInt(1));
      e.AddConstant(BigInt(-s.value));
    }
    explicit_sys.push_back(LinearAtom::Ge(std::move(e)));
    auto fresh = SimplexSolver::FindFeasible(explicit_sys, 2);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(inc->feasible(), fresh->status == LpStatus::kOptimal);
    if (inc->feasible()) {
      // The warm vertex satisfies every constraint of the explicit system.
      std::vector<Rational> x = inc->Assignment();
      for (const auto& atom : explicit_sys) {
        Rational val = *atom.expr.EvaluateRational(x);
        if (atom.rel == LinearRel::kGe) {
          EXPECT_FALSE(val.IsNegative()) << atom.ToString();
        } else {
          EXPECT_TRUE(val.IsZero()) << atom.ToString();
        }
      }
    }
  }
  // x1 in [4,5] and x0 >= 5 with x0 - x1 >= -3 is still satisfiable
  // (e.g. x0=5, x1=4); pushing x1's lower bound to 6 contradicts x1 <= 5.
  ASSERT_TRUE(inc->feasible());
  ASSERT_TRUE(inc->SetLowerBound(1, BigInt(6)).ok());
  EXPECT_FALSE(inc->feasible());
}

TEST(IncrementalSimplexTest, CopiesAreIndependent) {
  LinearSystem base = {LinearAtom::Ge(MakeExpr({-1, -1}, 8))};
  auto inc = IncrementalSimplex::Create(base, 2);
  ASSERT_TRUE(inc.ok() && inc->feasible());
  IncrementalSimplex down = *inc;
  ASSERT_TRUE(down.SetUpperBound(0, BigInt(3)).ok());
  ASSERT_TRUE(down.SetLowerBound(0, BigInt(4)).ok());  // 4 <= x0 <= 3
  EXPECT_FALSE(down.feasible());
  EXPECT_TRUE(inc->feasible());  // the original is untouched
  ASSERT_TRUE(inc->SetLowerBound(0, BigInt(7)).ok());
  EXPECT_TRUE(inc->feasible());
}

TEST(IncrementalSimplexTest, RandomizedAgainstFreshSolves) {
  RandomSource rng(31337);
  for (int iter = 0; iter < 60; ++iter) {
    const VarId n = 3;
    LinearSystem base;
    const size_t rows = 1 + rng.UniformIndex(3);
    for (size_t i = 0; i < rows; ++i) {
      LinearExpr e;
      for (VarId v = 0; v < n; ++v) {
        e.AddTerm(v, BigInt(rng.UniformInt(-3, 3)));
      }
      e.AddConstant(BigInt(rng.UniformInt(-5, 10)));
      base.push_back(rng.Bernoulli(0.3) ? LinearAtom::Eq(std::move(e))
                                        : LinearAtom::Ge(std::move(e)));
    }
    auto inc = IncrementalSimplex::Create(base, n);
    ASSERT_TRUE(inc.ok());
    auto fresh0 = SimplexSolver::FindFeasible(base, n);
    ASSERT_TRUE(fresh0.ok());
    ASSERT_EQ(inc->feasible(), fresh0->status == LpStatus::kOptimal);
    if (!inc->feasible()) continue;

    // Apply a random monotone bound sequence, mirroring into an explicit
    // system solved from scratch at every step.
    LinearSystem explicit_sys = base;
    std::vector<int64_t> lo(n, 0);
    std::vector<int64_t> hi(n, 8);
    for (int step = 0; step < 6 && inc->feasible(); ++step) {
      const VarId v = static_cast<VarId>(rng.UniformIndex(n));
      const bool upper = rng.Bernoulli(0.5);
      if (upper) {
        hi[v] = std::max<int64_t>(0, hi[v] - static_cast<int64_t>(
                                                 rng.UniformIndex(3)) - 1);
      } else {
        lo[v] += static_cast<int64_t>(rng.UniformIndex(3)) + 1;
      }
      const int64_t value = upper ? hi[v] : lo[v];
      Status st = upper ? inc->SetUpperBound(v, BigInt(value))
                        : inc->SetLowerBound(v, BigInt(value));
      ASSERT_TRUE(st.ok()) << st.ToString();
      LinearExpr e;
      e.AddTerm(v, BigInt(upper ? -1 : 1));
      e.AddConstant(BigInt(upper ? value : -value));
      explicit_sys.push_back(LinearAtom::Ge(std::move(e)));
      auto fresh = SimplexSolver::FindFeasible(explicit_sys, n);
      ASSERT_TRUE(fresh.ok());
      ASSERT_EQ(inc->feasible(), fresh->status == LpStatus::kOptimal)
          << "iter " << iter << " step " << step;
    }
  }
}

TEST(IlpTest, SolveDnfDeterministicAcrossThreadCounts) {
  // A disjunction whose branches have distinct witnesses: the selected
  // branch (and thus the witness) must not depend on the thread count.
  std::vector<LinearSystem> branches;
  for (int64_t k = 5; k >= 1; --k) {
    // Branch: x0 == k && x1 == 10 - k.
    branches.push_back({LinearAtom::Eq(MakeExpr({1, 0}, -k)),
                        LinearAtom::Eq(MakeExpr({0, 1}, k - 10))});
  }
  // Prepend two infeasible branches so the first feasible index is 2.
  branches.insert(branches.begin(),
                  {LinearAtom::Ge(MakeExpr({-1, 0}, -1)),
                   LinearAtom::Ge(MakeExpr({1, 0}, -2))});  // x0<=-1 && x0>=2
  branches.insert(branches.begin(), {LinearAtom::Eq(MakeExpr({0, 0}, 1))});

  IntAssignment expected;
  std::vector<BranchOutcome> expected_outcomes;
  for (size_t threads : {1u, 2u, 8u}) {
    IlpOptions opt;
    opt.num_threads = threads;
    auto r = IlpSolver::SolveDnf(branches, 2, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->solution.feasible);
    if (threads == 1) {
      expected = r->solution.assignment;
      expected_outcomes = r->outcomes;
      EXPECT_EQ(expected[0].ToString(), "5");  // first feasible branch: k=5
      EXPECT_EQ(expected[1].ToString(), "5");
      EXPECT_EQ(r->outcomes[0], BranchOutcome::kInfeasible);
      EXPECT_EQ(r->outcomes[1], BranchOutcome::kInfeasible);
      EXPECT_EQ(r->outcomes[2], BranchOutcome::kFeasible);
    } else {
      ASSERT_EQ(r->solution.assignment.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(r->solution.assignment[i].Compare(expected[i]), 0)
            << "threads " << threads << " var " << i;
      }
      EXPECT_EQ(r->outcomes, expected_outcomes) << "threads " << threads;
    }
  }
}

TEST(IlpTest, CancellationAbortsBetweenNodes) {
  // A pre-set cancellation flag (adapted through the legacy WrapFlag shim)
  // must abort the solve with kCancelled before any verdict is produced.
  std::atomic<bool> cancel{true};
  IlpOptions opt;
  opt.cancel_token = CancellationToken::WrapFlag(&cancel);
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({1}, -1))};
  auto r = IlpSolver::FindIntegerPoint(sys, 1, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
  auto dnf = IlpSolver::SolveDnf({sys}, 1, opt);
  ASSERT_FALSE(dnf.ok());
  EXPECT_TRUE(dnf.status().IsCancelled());
}

TEST(IlpTest, CancellationTokenAbortsBetweenNodes) {
  // Same through a native token, plus hierarchy: cancelling the parent
  // aborts a solve polling the child.
  CancellationToken parent = CancellationToken::Create();
  IlpOptions opt;
  opt.cancel_token = parent.Child();
  parent.RequestCancel();
  LinearSystem sys = {LinearAtom::Ge(MakeExpr({1}, -1))};
  auto r = IlpSolver::FindIntegerPoint(sys, 1, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
  ASSERT_NE(r.status().stop_reason(), nullptr);
  EXPECT_EQ(r.status().stop_reason()->kind, StopKind::kCancelled);
}

TEST(SimplexStatsTest, WarmStartCountersMove) {
  SimplexStats::Reset();
  LinearSystem base = {LinearAtom::Ge(MakeExpr({-1, -1}, 10))};
  auto inc = IncrementalSimplex::Create(base, 2);
  ASSERT_TRUE(inc.ok() && inc->feasible());
  ASSERT_TRUE(inc->SetUpperBound(0, BigInt(4)).ok());
  ASSERT_TRUE(inc->SetLowerBound(0, BigInt(2)).ok());
  SimplexCounters agg = SimplexStats::Aggregate();
  EXPECT_GE(agg.tableau_builds, 1u);
  EXPECT_GE(agg.warm_starts, 2u);
  EXPECT_EQ(agg.warm_starts, agg.warm_start_hits);  // no rebuild needed here
}

}  // namespace
}  // namespace fo2dt
