#include "datatree/data_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "datatree/generator.h"
#include "datatree/text_io.h"
#include "datatree/zones.h"

namespace fo2dt {
namespace {

// The running example: a(1)( b(1) c(2)( d(2) ) b(1) ).
DataTree Example(Alphabet* alpha) {
  auto t = ParseDataTree("a:1 (b:1 c:2 (d:2) b:1)", alpha);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

TEST(DataTreeTest, ConstructionAndNavigation) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  ASSERT_EQ(t.size(), 5u);
  NodeId root = t.root();
  EXPECT_EQ(t.parent(root), kNoNode);
  std::vector<NodeId> kids = t.Children(root);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(alpha.Name(t.label(kids[0])), "b");
  EXPECT_EQ(alpha.Name(t.label(kids[1])), "c");
  EXPECT_EQ(alpha.Name(t.label(kids[2])), "b");
  EXPECT_EQ(t.next_sibling(kids[0]), kids[1]);
  EXPECT_EQ(t.prev_sibling(kids[1]), kids[0]);
  EXPECT_EQ(t.first_child(root), kids[0]);
  EXPECT_EQ(t.last_child(root), kids[2]);
  EXPECT_EQ(t.NumChildren(root), 3u);
  EXPECT_EQ(t.Depth(kids[0]), 1u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(DataTreeTest, SingleRootInvariant) {
  DataTree t;
  Alphabet alpha;
  Symbol a = alpha.Intern("a");
  ASSERT_TRUE(t.CreateRoot(a, 1).ok());
  EXPECT_FALSE(t.CreateRoot(a, 2).ok());
  EXPECT_FALSE(t.AppendChild(17, a, 1).ok());
}

TEST(DataTreeTest, StructuralPredicates) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  std::vector<NodeId> kids = t.Children(t.root());
  NodeId d = t.first_child(kids[1]);
  EXPECT_TRUE(t.HorizontalSuccessor(kids[0], kids[1]));
  EXPECT_FALSE(t.HorizontalSuccessor(kids[1], kids[0]));
  EXPECT_TRUE(t.VerticalSuccessor(t.root(), kids[0]));
  EXPECT_TRUE(t.VerticalSuccessor(kids[1], d));
  EXPECT_FALSE(t.VerticalSuccessor(t.root(), d));
  EXPECT_TRUE(t.HorizontalOrder(kids[0], kids[2]));
  EXPECT_FALSE(t.HorizontalOrder(kids[2], kids[0]));
  EXPECT_TRUE(t.VerticalOrder(t.root(), d));
  EXPECT_FALSE(t.VerticalOrder(d, t.root()));
  EXPECT_TRUE(t.SameData(kids[0], kids[2]));
  EXPECT_FALSE(t.SameData(kids[0], kids[1]));
}

TEST(DataTreeTest, Profiles) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  std::vector<NodeId> kids = t.Children(t.root());
  NodeId d = t.first_child(kids[1]);
  // b(1): parent a(1) same, no left, right c(2) differs.
  EXPECT_EQ(ProfileToString(t.ProfileOf(kids[0])), "P--");
  // c(2): parent differs, left differs, right differs.
  EXPECT_EQ(ProfileToString(t.ProfileOf(kids[1])), "---");
  // d(2): parent c(2) same.
  EXPECT_EQ(ProfileToString(t.ProfileOf(d)), "P--");
  // root.
  EXPECT_EQ(ProfileToString(t.ProfileOf(t.root())), "---");
  // Profile encoding round trip.
  for (uint32_t code = 0; code < kNumProfiles; ++code) {
    EXPECT_EQ(EncodeProfile(DecodeProfile(code)), code);
  }
}

TEST(DataTreeTest, ProfiledTreeAlignsSymbols) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  Alphabet profiled_alpha;
  DataTree pt = BuildProfiledTree(t, alpha, &profiled_alpha);
  ASSERT_EQ(pt.size(), t.size());
  EXPECT_EQ(profiled_alpha.size(), alpha.size() * kNumProfiles);
  for (NodeId v = 0; v < t.size(); ++v) {
    Symbol expect =
        ProfiledSymbol(t.label(v), EncodeProfile(t.ProfileOf(v)));
    EXPECT_EQ(pt.label(v), expect);
    EXPECT_EQ(pt.data(v), t.data(v));
    EXPECT_EQ(pt.parent(v), t.parent(v));
  }
}

TEST(DataTreeTest, DataErasure) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  DataTree e = DataErasure(t);
  ASSERT_EQ(e.size(), t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(e.data(v), 0u);
    EXPECT_EQ(e.label(v), t.label(v));
  }
}

TEST(TextIoTest, RoundTrip) {
  Alphabet alpha;
  const std::string text = "a:1 (b:1 c:2 (d:2) b:1)";
  DataTree t = *ParseDataTree(text, &alpha);
  EXPECT_EQ(DataTreeToText(t, alpha), text);
}

TEST(TextIoTest, ParseErrors) {
  Alphabet alpha;
  EXPECT_FALSE(ParseDataTree("", &alpha).ok());
  EXPECT_FALSE(ParseDataTree("a", &alpha).ok());
  EXPECT_FALSE(ParseDataTree("a:", &alpha).ok());
  EXPECT_FALSE(ParseDataTree("a:1 (b:2", &alpha).ok());
  EXPECT_FALSE(ParseDataTree("a:1 extra:2", &alpha).ok());
  EXPECT_FALSE(ParseDataTree("1:a", &alpha).ok());
}

TEST(ZonesTest, PaperExampleZones) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  ZonePartition z = ComputeZones(t);
  // Zones: {a,b} (root + first b, value 1, connected), {c,d} (value 2),
  // {b} (second b, value 1, not adjacent to the first zone's members? It is
  // a child of root with value 1 — root has value 1 and is its parent, so it
  // IS connected to the root zone).
  // Actually: root a(1) - child b(1): connected; root - last b(1): connected
  // via parent edge. So zone {a, b, b} and zone {c, d}.
  EXPECT_EQ(z.num_zones(), 2u);
  std::vector<NodeId> kids = t.Children(t.root());
  EXPECT_EQ(z.zone_of[t.root()], z.zone_of[kids[0]]);
  EXPECT_EQ(z.zone_of[t.root()], z.zone_of[kids[2]]);
  EXPECT_NE(z.zone_of[t.root()], z.zone_of[kids[1]]);
  EXPECT_EQ(z.zone_of[kids[1]], z.zone_of[t.first_child(kids[1])]);
}

TEST(ZonesTest, ZoneDisconnectedSameValue) {
  Alphabet alpha;
  // a(1)( b(2) ( c(1) ) ): root and c share value 1 but are separated by b.
  DataTree t = *ParseDataTree("a:1 (b:2 (c:1))", &alpha);
  ZonePartition z = ComputeZones(t);
  EXPECT_EQ(z.num_zones(), 3u);
  ClassPartition c = ComputeClasses(t);
  EXPECT_EQ(c.num_classes(), 2u);
}

TEST(ZonesTest, AdjacentZones) {
  Alphabet alpha;
  DataTree t = *ParseDataTree("a:1 (b:2 (c:1))", &alpha);
  ZonePartition z = ComputeZones(t);
  ZoneId zb = z.zone_of[t.first_child(t.root())];
  std::vector<ZoneId> adj = z.AdjacentZones(t, zb);
  EXPECT_EQ(adj.size(), 2u);  // adjacent to both value-1 zones
}

TEST(ZonesTest, SiblinghoodsIncludeRootSingleton) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  auto sibs = Siblinghoods(t);
  ASSERT_EQ(sibs.size(), 3u);  // root, root's children, c's children
  EXPECT_EQ(sibs[0].size(), 1u);
  EXPECT_EQ(sibs[1].size(), 3u);
  EXPECT_EQ(sibs[2].size(), 1u);
}

TEST(ZonesTest, MaximalPureIntervals) {
  Alphabet alpha;
  // Children data values: 1 1 2 2 2 1 under a root with value 9.
  DataTree t = *ParseDataTree("r:9 (c:1 c:1 c:2 c:2 c:2 c:1)", &alpha);
  auto intervals = MaximalPureIntervals(t);
  // Root singleton interval + three runs in the children siblinghood.
  ASSERT_EQ(intervals.size(), 4u);
  EXPECT_EQ(intervals[1].length(), 2u);
  EXPECT_EQ(intervals[2].length(), 3u);
  EXPECT_EQ(intervals[3].length(), 1u);
  EXPECT_EQ(intervals[1].data, 1u);
  EXPECT_EQ(intervals[2].data, 2u);
  for (const auto& iv : intervals) EXPECT_TRUE(iv.complete);
}

TEST(ZonesTest, DataPaths) {
  Alphabet alpha;
  // Vertical chain with a same-value run of length 3 in the middle.
  DataTree t = *ParseDataTree("a:1 (b:2 (c:2 (d:2 (e:3))))", &alpha);
  auto paths = MaximalDataPaths(t);
  size_t max_len = 0;
  for (const auto& p : paths) max_len = std::max(max_len, p.nodes.size());
  EXPECT_EQ(max_len, 3u);
  // Path starts: a (no parent), b (parent differs), e (parent differs).
  EXPECT_EQ(paths.size(), 3u);
}

TEST(ZonesTest, DataPathsBranching) {
  Alphabet alpha;
  // Root value 1 with two children value 1: two maximal paths of length 2.
  DataTree t = *ParseDataTree("a:1 (b:1 c:1)", &alpha);
  auto paths = MaximalDataPaths(t);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].nodes.size(), 2u);
  EXPECT_EQ(paths[1].nodes.size(), 2u);
}

TEST(ZonesTest, ShapeStatsOnFlatRuns) {
  Alphabet alpha;
  DataTree t = FlatRunsTree(12, 3, &alpha);
  TreeShapeStats s = ComputeShapeStats(t);
  EXPECT_EQ(s.num_nodes, 13u);
  EXPECT_EQ(s.num_zones, 5u);  // root + 4 runs
  EXPECT_EQ(s.max_pure_interval_length, 3u);
  EXPECT_EQ(s.max_complete_intervals_per_siblinghood, 4u);
}

TEST(ZonesTest, IsReducedThresholds) {
  Alphabet alpha;
  DataTree t = FlatRunsTree(12, 3, &alpha);  // 4 complete intervals, zones <= 3
  EXPECT_TRUE(IsReduced(t, 0, 4));   // no zone bigger than 4, no sibs > 4
  EXPECT_FALSE(IsReduced(t, 0, 2));  // 4 zones exceed size 2 > M=0
  EXPECT_TRUE(IsReduced(t, 4, 2));
  // Siblinghood with 4 complete pure intervals: N=3 -> one big siblinghood.
  EXPECT_FALSE(IsReduced(t, 0, 3));
  EXPECT_TRUE(IsReduced(t, 1, 3));
}

TEST(GeneratorTest, RandomTreeValid) {
  Alphabet alpha;
  RandomSource rng(5);
  RandomTreeOptions opt;
  opt.num_nodes = 200;
  DataTree t = RandomDataTree(opt, &rng, &alpha);
  EXPECT_EQ(t.size(), 200u);
  EXPECT_TRUE(t.Validate().ok());
  // Sanity: copy semantics produce some nontrivial zones.
  TreeShapeStats s = ComputeShapeStats(t);
  EXPECT_GT(s.num_zones, 1u);
  EXPECT_LT(s.num_zones, s.num_nodes);
}

TEST(GeneratorTest, ZonesRefineClasses) {
  // Property: every zone is contained in one class, and the number of zones
  // is at least the number of classes.
  Alphabet alpha;
  RandomSource rng(17);
  for (int iter = 0; iter < 20; ++iter) {
    RandomTreeOptions opt;
    opt.num_nodes = 60;
    opt.num_data_values = 5;
    DataTree t = RandomDataTree(opt, &rng, &alpha);
    ZonePartition z = ComputeZones(t);
    EXPECT_GE(z.num_zones(), ComputeClasses(t).num_classes());
    for (const auto& members : z.members) {
      for (NodeId v : members) {
        EXPECT_EQ(t.data(v), t.data(members[0]));
      }
    }
    // Zone maximality: any edge between same-data nodes stays in one zone.
    for (NodeId v = 0; v < t.size(); ++v) {
      NodeId p = t.parent(v);
      if (p != kNoNode && t.SameData(p, v)) {
        EXPECT_EQ(z.zone_of[p], z.zone_of[v]);
      }
      NodeId s = t.next_sibling(v);
      if (s != kNoNode && t.SameData(s, v)) {
        EXPECT_EQ(z.zone_of[s], z.zone_of[v]);
      }
    }
  }
}

TEST(GeneratorTest, CombTreeShape) {
  Alphabet alpha;
  DataTree t = CombTree(5, 2, 2, &alpha);
  EXPECT_EQ(t.size(), 5u + 10u);
  EXPECT_TRUE(t.Validate().ok());
  TreeShapeStats s = ComputeShapeStats(t);
  // Runs of length 2 along the spine: ceil(5/2) = 3 distinct values.
  EXPECT_EQ(s.num_classes, 3u);
}

TEST(DataTreeTest, PreOrderIsDocumentOrder) {
  Alphabet alpha;
  DataTree t = Example(&alpha);
  std::vector<NodeId> order = t.PreOrder();
  ASSERT_EQ(order.size(), t.size());
  EXPECT_EQ(order[0], t.root());
  // Parent precedes children; left siblings precede right ones.
  std::vector<size_t> pos(t.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.parent(v) != kNoNode) {
      EXPECT_LT(pos[t.parent(v)], pos[v]);
    }
    if (t.next_sibling(v) != kNoNode) {
      EXPECT_LT(pos[v], pos[t.next_sibling(v)]);
    }
  }
}

}  // namespace
}  // namespace fo2dt
