// Tests for the ranked mutex and the runtime lock-order checker
// (common/mutex.h): the hierarchy is strict rank ascent, so acquiring a
// lower- or equal-ranked lock while holding one must invoke the violation
// handler, ascending chains must not, and ScopedRankedLock must stay usable
// as the lock argument of a condition-variable wait.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>
#include <vector>

#include "common/registry_names.h"

// ThreadSanitizer's built-in lock-order detector (rightly) reports the
// deliberate real-lock inversions below as potential deadlocks, which the
// tsan preset promotes to failures. Under tsan those tests drop to the
// NoteAcquire/NoteRelease bookkeeping layer — same checker semantics, no
// real pthread mutexes — and tsan itself covers the real-lock ordering.
#if defined(__SANITIZE_THREAD__)
#define FO2DT_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FO2DT_TSAN_BUILD 1
#endif
#endif

namespace fo2dt {
namespace {

// The handler is a bare function pointer, so the capture goes through
// globals; LockOrderGuard serializes tests and resets them.
int g_violations = 0;
const names::LockRankEntry* g_last_held = nullptr;
const names::LockRankEntry* g_last_acquiring = nullptr;

void CountingHandler(const names::LockRankEntry& held,
                     const names::LockRankEntry& acquiring) {
  ++g_violations;
  g_last_held = &held;
  g_last_acquiring = &acquiring;
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_violations = 0;
    g_last_held = nullptr;
    g_last_acquiring = nullptr;
    prev_enabled_ = SetLockOrderChecking(true);
    SetLockOrderViolationHandler(&CountingHandler);
  }
  void TearDown() override {
    SetLockOrderViolationHandler(nullptr);
    SetLockOrderChecking(prev_enabled_);
  }

 private:
  bool prev_enabled_ = false;
};

TEST_F(LockOrderTest, AscendingAcquisitionIsClean) {
  Mutex queue(names::kLockServerQueue);    // rank 10
  Mutex conns(names::kLockServerConns);    // rank 20
  Mutex csr(names::kLockAutomataCsr);      // rank 140
  {
    ScopedRankedLock l1(queue);
    ScopedRankedLock l2(conns);
    ScopedRankedLock l3(csr);
    EXPECT_EQ(internal::HeldLockDepth(), 3);
  }
  EXPECT_EQ(internal::HeldLockDepth(), 0);
  EXPECT_EQ(g_violations, 0);
}

TEST_F(LockOrderTest, InvertedAcquisitionFiresHandler) {
#if defined(FO2DT_TSAN_BUILD)
  // Bookkeeping-layer inversion: identical checker path, no real locks
  // (tsan's own detector owns the real-lock case).
  internal::NoteAcquire(names::kLockServerConns);   // rank 20
  internal::NoteAcquire(names::kLockServerQueue);   // 10 while holding 20
  EXPECT_EQ(g_violations, 1);
  internal::NoteRelease(names::kLockServerQueue);
  internal::NoteRelease(names::kLockServerConns);
#else
  Mutex queue(names::kLockServerQueue);    // rank 10
  Mutex conns(names::kLockServerConns);    // rank 20
  {
    ScopedRankedLock outer(conns);
    ScopedRankedLock inner(queue);  // 10 while holding 20: inversion
    EXPECT_EQ(g_violations, 1);
  }
#endif
  ASSERT_NE(g_last_held, nullptr);
  ASSERT_NE(g_last_acquiring, nullptr);
  EXPECT_STREQ(g_last_held->name, "server.conns");
  EXPECT_STREQ(g_last_acquiring->name, "server.queue");
  // A returning handler lets the acquisition proceed and the bookkeeping
  // stays balanced.
  EXPECT_EQ(internal::HeldLockDepth(), 0);
}

TEST_F(LockOrderTest, EqualRankFires) {
  // Two locks sharing a rank entry (the intern table's shards): nesting
  // them is a self-deadlock hazard, so the checker treats equal rank as a
  // violation too. Aggregates visit shards one at a time for this reason.
#if defined(FO2DT_TSAN_BUILD)
  internal::NoteAcquire(names::kLockCacheIntern);
  internal::NoteAcquire(names::kLockCacheIntern);
  EXPECT_EQ(g_violations, 1);
  internal::NoteRelease(names::kLockCacheIntern);
  internal::NoteRelease(names::kLockCacheIntern);
#else
  Mutex shard_a(names::kLockCacheIntern);
  Mutex shard_b(names::kLockCacheIntern);
  ScopedRankedLock l1(shard_a);
  ScopedRankedLock l2(shard_b);
  EXPECT_EQ(g_violations, 1);
#endif
}

TEST_F(LockOrderTest, DisabledCheckingStaysSilent) {
  SetLockOrderChecking(false);
#if defined(FO2DT_TSAN_BUILD)
  internal::NoteAcquire(names::kLockServerConns);
  internal::NoteAcquire(names::kLockServerQueue);  // inversion, check off
  EXPECT_EQ(g_violations, 0);
  EXPECT_EQ(internal::HeldLockDepth(), 2);
  internal::NoteRelease(names::kLockServerQueue);
  internal::NoteRelease(names::kLockServerConns);
#else
  Mutex queue(names::kLockServerQueue);
  Mutex conns(names::kLockServerConns);
  ScopedRankedLock outer(conns);
  ScopedRankedLock inner(queue);  // inversion, but the check is off
  EXPECT_EQ(g_violations, 0);
  // Bookkeeping runs regardless so re-enabling stays coherent.
  EXPECT_EQ(internal::HeldLockDepth(), 2);
#endif
}

TEST_F(LockOrderTest, ManualLockUnlockBalances) {
  Mutex queue(names::kLockServerQueue);
  queue.lock();
  EXPECT_EQ(internal::HeldLockDepth(), 1);
  queue.unlock();
  EXPECT_EQ(internal::HeldLockDepth(), 0);
  EXPECT_TRUE(queue.try_lock());
  EXPECT_EQ(internal::HeldLockDepth(), 1);
  queue.unlock();
  EXPECT_EQ(g_violations, 0);
}

TEST_F(LockOrderTest, ConditionVariableWaitKeepsRank) {
  // The fo2dtd worker loop's exact shape: ScopedRankedLock::native() feeds
  // cv.wait, the rank stays held across the wait, and a post-wait nested
  // acquisition still checks against it.
  Mutex queue(names::kLockServerQueue);
  Mutex conns(names::kLockServerConns);
  std::condition_variable cv;
  bool ready = false;

  std::thread signaller([&] {
    ScopedRankedLock lock(queue);
    ready = true;
    cv.notify_one();
  });

  {
    ScopedRankedLock lock(queue);
    cv.wait(lock.native(), [&] {
      EXPECT_EQ(internal::HeldLockDepth(), 1);  // rank held during the wait
      return ready;
    });
    ScopedRankedLock nested(conns);  // ascending: clean
  }
  signaller.join();
  EXPECT_EQ(g_violations, 0);
  EXPECT_EQ(internal::HeldLockDepth(), 0);
}

TEST_F(LockOrderTest, HierarchyTableIsStrictlyAscending) {
  // The generated table is the contract the whole tree locks against.
  ASSERT_GE(names::kNumLockRanks, 2u);
  for (size_t i = 1; i < names::kNumLockRanks; ++i) {
    EXPECT_LT(names::kAllLockRanks[i - 1].rank, names::kAllLockRanks[i].rank)
        << names::kAllLockRanks[i].name;
  }
}

TEST_F(LockOrderTest, ContendedAscendingChainsStayClean) {
  // Many threads taking the same ascending chain concurrently: contention
  // must never look like an ordering violation (the stack is per-thread).
  Mutex queue(names::kLockServerQueue);
  Mutex conns(names::kLockServerConns);
  int shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ScopedRankedLock l1(queue);
        ScopedRankedLock l2(conns);
        ++shared;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, 8 * 500);
  EXPECT_EQ(g_violations, 0);
}

}  // namespace
}  // namespace fo2dt
