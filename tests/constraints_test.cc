#include "constraints/constraints.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datatree/generator.h"
#include "datatree/text_io.h"
#include "logic/eval.h"
#include "xmlenc/dtd.h"

namespace fo2dt {
namespace {

// Schedule-style alphabet: course(0), ID(1), lecturer(2), faculty(3).
struct Fixture {
  Alphabet labels;
  Symbol course, id, lecturer, faculty, schedule;

  Fixture() {
    course = labels.Intern("course");
    id = labels.Intern("ID");
    lecturer = labels.Intern("lecturer");
    faculty = labels.Intern("faculty");
    schedule = labels.Intern("schedule");
  }
};

TEST(ConstraintsTest, DocumentLevelKey) {
  Fixture f;
  // schedule with two courses, distinct IDs -> key holds.
  DataTree t = *ParseDataTree(
      "schedule:0 (course:0 (ID:5) course:0 (ID:7))", &f.labels);
  UnaryKey key{f.course, f.id};
  EXPECT_TRUE(DocumentSatisfiesKey(t, key));
  DataTree bad = *ParseDataTree(
      "schedule:0 (course:0 (ID:5) course:0 (ID:5))", &f.labels);
  EXPECT_FALSE(DocumentSatisfiesKey(bad, key));
  // Missing attributes are skipped.
  DataTree partial =
      *ParseDataTree("schedule:0 (course:0 course:0 (ID:5))", &f.labels);
  EXPECT_TRUE(DocumentSatisfiesKey(partial, key));
}

TEST(ConstraintsTest, DocumentLevelInclusion) {
  Fixture f;
  UnaryInclusion inc{f.course, f.faculty, f.lecturer, f.faculty};
  DataTree good = *ParseDataTree(
      "schedule:0 (course:0 (faculty:12) lecturer:0 (faculty:12))", &f.labels);
  EXPECT_TRUE(DocumentSatisfiesInclusion(good, inc));
  DataTree bad = *ParseDataTree(
      "schedule:0 (course:0 (faculty:12) lecturer:0 (faculty:13))", &f.labels);
  EXPECT_FALSE(DocumentSatisfiesInclusion(bad, inc));
}

TEST(ConstraintsTest, Fo2FormulasAgreeWithDirectSemantics) {
  // Differential: the Proposition 5 formulas evaluated by the model checker
  // must agree with the document-level checkers on random documents.
  Fixture f;
  UnaryKey key{f.course, f.id};
  UnaryInclusion inc{f.course, f.faculty, f.lecturer, f.faculty};
  Formula key_f = KeyToFo2(key);
  Formula inc_f = InclusionToFo2(inc);
  RandomSource rng(2024);
  RandomTreeOptions opt;
  opt.num_nodes = 10;
  opt.num_labels = 5;  // generator labels l0..l4 collide with ours by id
  opt.num_data_values = 3;
  for (int iter = 0; iter < 80; ++iter) {
    Alphabet gen_labels = f.labels;
    DataTree t = RandomDataTree(opt, &rng, &gen_labels);
    EXPECT_EQ(DocumentSatisfiesKey(t, key),
              *Evaluator::EvaluateSentence(key_f, t, nullptr))
        << DataTreeToText(t, gen_labels);
    EXPECT_EQ(DocumentSatisfiesInclusion(t, inc),
              *Evaluator::EvaluateSentence(inc_f, t, nullptr))
        << DataTreeToText(t, gen_labels);
  }
}

TEST(ConstraintsTest, ConsistencyFindsWitness) {
  Fixture f;
  ConstraintSet set;
  set.keys.push_back({f.course, f.id});
  set.inclusions.push_back({f.course, f.faculty, f.lecturer, f.faculty});
  TreeAutomaton schema = TreeAutomaton::Universal(f.labels.size());
  SolverOptions opt;
  opt.max_model_nodes = 1;  // a single node satisfies everything vacuously
  auto r = CheckConsistencyBounded(schema, set, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, SatVerdict::kSat);
}

TEST(ConstraintsTest, ImplicationCounterexample) {
  Fixture f;
  // Premise: none. Conclusion: the course-ID key. A counterexample document
  // must exist (two courses sharing an ID).
  ConstraintSet premises;
  TreeAutomaton schema = TreeAutomaton::Universal(f.labels.size());
  SolverOptions opt;
  opt.max_model_nodes = 5;
  Formula key_f = KeyToFo2({f.course, f.id});
  auto r = CheckImplicationBounded(schema, premises, key_f, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->verdict, SatVerdict::kSat);  // refuted
  // The witness indeed violates the key formula. (The document-level checker
  // can disagree on degenerate documents with duplicated attribute children,
  // which the Figure-3 encoding never produces; the formulas follow the
  // XPath data model's unique-attribute assumption, like the paper's.)
  EXPECT_FALSE(*Evaluator::EvaluateSentence(key_f, *r->witness, nullptr));
}

TEST(ConstraintsTest, ImplicationHoldsTrivially) {
  Fixture f;
  // Premise: key(course, ID). Conclusion: the same key. No counterexample.
  ConstraintSet premises;
  premises.keys.push_back({f.course, f.id});
  TreeAutomaton schema = TreeAutomaton::Universal(f.labels.size());
  SolverOptions opt;
  opt.max_model_nodes = 4;
  auto r = CheckImplicationBounded(schema, premises,
                                   KeyToFo2({f.course, f.id}), opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, SatVerdict::kUnknown);  // no counterexample found
}

// The AFL-style ILP baseline with a DTD schema: courses reference lecturers
// by a keyed attribute, and the DTD forces cardinalities that make the
// system inconsistent.
TEST(ConstraintsTest, IlpConsistencyWithDtd) {
  Fixture f;
  Alphabet labels = f.labels;
  // DTD: schedule -> course course lecturer? ; course has attr faculty;
  // lecturer has attr faculty. Keys: lecturer.faculty AND course.faculty;
  // inclusion course.faculty ⊆ lecturer.faculty. With two courses per
  // schedule and at most one lecturer: n_course = 2 > n_lecturer <= 1 ->
  // inconsistent. Dropping the course key makes it consistent.
  // A slim alphabet keeps the schema automaton (hence the ILP) small.
  Alphabet slim;
  Symbol schedule = slim.Intern("schedule");
  Symbol course = slim.Intern("course");
  Symbol lecturer = slim.Intern("lecturer");
  Symbol faculty = slim.Intern("faculty");
  f.schedule = schedule;
  f.course = course;
  f.lecturer = lecturer;
  f.faculty = faculty;
  labels = slim;
  Dtd dtd;
  dtd.root = f.schedule;
  DtdElement course_el;
  course_el.element = f.course;
  course_el.attributes = {f.faculty};
  DtdElement lecturer_el;
  lecturer_el.element = f.lecturer;
  lecturer_el.attributes = {f.faculty};
  DtdElement schedule_el;
  schedule_el.element = f.schedule;
  Alphabet regex_labels = labels;
  schedule_el.content =
      *ParseRegex("course, course, lecturer?", &regex_labels);
  dtd.elements = {schedule_el, course_el, lecturer_el};
  auto schema = DtdToTreeAutomaton(dtd, labels.size());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  ConstraintSet inconsistent;
  inconsistent.keys.push_back({f.lecturer, f.faculty});
  inconsistent.keys.push_back({f.course, f.faculty});
  inconsistent.inclusions.push_back(
      {f.course, f.faculty, f.lecturer, f.faculty});
  auto r1 = CheckKeyForeignKeyConsistencyIlp(*schema, inconsistent);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->verdict, SatVerdict::kUnsat);

  ConstraintSet consistent = inconsistent;
  consistent.keys.erase(consistent.keys.begin() + 1);  // drop the course key
  auto r2 = CheckKeyForeignKeyConsistencyIlp(*schema, consistent);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->verdict, SatVerdict::kSat);
}

TEST(ConstraintsTest, IlpAgreesWithBoundedSearchOnSmallSchemas) {
  // Tiny universal schema: ILP says consistent; bounded search finds a
  // witness document too.
  Fixture f;
  TreeAutomaton schema = TreeAutomaton::Universal(f.labels.size());
  ConstraintSet set;
  set.keys.push_back({f.lecturer, f.faculty});
  set.inclusions.push_back({f.course, f.faculty, f.lecturer, f.faculty});
  auto ilp = CheckKeyForeignKeyConsistencyIlp(schema, set);
  ASSERT_TRUE(ilp.ok());
  EXPECT_EQ(ilp->verdict, SatVerdict::kSat);
  SolverOptions opt;
  opt.max_model_nodes = 2;
  auto search = CheckConsistencyBounded(schema, set, opt);
  ASSERT_TRUE(search.ok());
  EXPECT_EQ(search->verdict, SatVerdict::kSat);
}

}  // namespace
}  // namespace fo2dt
