#include "frontend/solver.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace fo2dt {
namespace {

Result<SatResult> Solve(const std::string& text, Alphabet* labels,
                        size_t max_nodes = 5) {
  auto f = ParseFormula(text, labels);
  if (!f.ok()) return f.status();
  SolverOptions opt;
  opt.max_model_nodes = max_nodes;
  return CheckFo2SatisfiabilityBounded(*f, opt);
}

TEST(SolverTest, TriviallySatisfiable) {
  Alphabet labels;
  auto r = Solve("exists x. a(x)", &labels);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->verdict, SatVerdict::kSat);
  ASSERT_TRUE(r->witness.has_value());
  EXPECT_EQ(r->witness->size(), 1u);
}

TEST(SolverTest, PropositionalContradiction) {
  Alphabet labels;
  // A node cannot have two labels.
  auto r = Solve("exists x. (a(x) & b(x))", &labels);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, SatVerdict::kUnknown);  // bound exhausted, no model
}

TEST(SolverTest, DataConstraintsShapeWitness) {
  Alphabet labels;
  // Some two siblings share a data value while parent differs from both.
  auto r = Solve(
      "exists x. exists y. (next(x,y) & x ~ y & a(x)) & "
      "forall x. forall y. (child(x,y) -> !(x ~ y))",
      &labels);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->verdict, SatVerdict::kSat);
  const DataTree& w = *r->witness;
  EXPECT_GE(w.size(), 3u);
  // Verify no parent-child pair shares a value.
  for (NodeId v = 0; v < w.size(); ++v) {
    if (w.parent(v) != kNoNode) {
      EXPECT_FALSE(w.SameData(w.parent(v), v));
    }
  }
}

TEST(SolverTest, KeyLikeFormulaSat) {
  Alphabet labels;
  // Every a is unique in its class, and there exist two a's.
  auto r = Solve(
      "forall x. forall y. ((a(x) & a(y) & x ~ y) -> x = y) & "
      "exists x. exists y. (a(x) & a(y) & x != y)",
      &labels);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->verdict, SatVerdict::kSat);
}

TEST(SolverTest, OrderAxesSupported) {
  Alphabet labels;
  // Some node has a same-valued proper descendant at depth >= 2 (not a
  // child) — requires the E⇓ axis of FO²(∼,<,+1).
  auto r = Solve(
      "exists x. exists y. (desc(x,y) & !child(x,y) & x ~ y)", &labels, 4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->verdict, SatVerdict::kSat);
  EXPECT_GE(r->witness->size(), 3u);
}

TEST(SolverTest, RejectsOpenFormulas) {
  Alphabet labels;
  auto f = ParseFormula("a(x)", &labels);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(CheckFo2SatisfiabilityBounded(*f).ok());
}

TEST(SolverTest, SchemaFilterRestrictsModels) {
  Alphabet labels;
  Formula f = *ParseFormula("exists x. b(x)", &labels);  // b interned at 1?
  // Alphabet: formula interned "b" as 0. Build a schema over 2 labels that
  // only accepts single-node trees labeled 0.
  TreeAutomaton schema(2, 1);
  schema.SetInitial(0);
  schema.SetAccepting(0, 0);
  SolverOptions opt;
  opt.structural_filter = &schema;
  auto r = CheckFo2SatisfiabilityBounded(f, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, SatVerdict::kSat);  // single b-node is accepted
  // Now a schema accepting only label-1 roots: "exists b(=0)" unsatisfiable.
  TreeAutomaton schema2(2, 1);
  schema2.SetInitial(0);
  schema2.SetAccepting(0, 1);
  opt.structural_filter = &schema2;
  auto r2 = CheckFo2SatisfiabilityBounded(f, opt);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->verdict, SatVerdict::kUnknown);
}

TEST(SolverTest, WitnessIsMinimal) {
  Alphabet labels;
  // Needs 3 distinct classes pairwise different: minimal model has 3 nodes.
  auto r = Solve(
      "exists x. exists y. (a(x) & b(y) & !(x ~ y)) & "
      "exists x. exists y. (b(x) & c(y) & !(x ~ y)) & "
      "exists x. exists y. (a(x) & c(y) & !(x ~ y))",
      &labels);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->verdict, SatVerdict::kSat);
  EXPECT_EQ(r->witness->size(), 3u);
}

}  // namespace
}  // namespace fo2dt
