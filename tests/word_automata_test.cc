#include "automata/word_automata.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fo2dt {
namespace {

std::vector<Symbol> Word(std::initializer_list<Symbol> syms) { return syms; }

TEST(RegexTest, ParseAndRender) {
  Alphabet alpha;
  auto r = ParseRegex("(a | b)*, c", &alpha);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(alpha.size(), 3u);
  auto bad = ParseRegex("(a | ", &alpha);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(ParseRegex("a**)", &alpha).ok());
  EXPECT_FALSE(ParseRegex("#unknown", &alpha).ok());
}

TEST(RegexTest, ThompsonNfaAccepts) {
  Alphabet alpha;
  Regex r = *ParseRegex("(a | b)*, c", &alpha);
  Nfa nfa = r.ToNfa(alpha.size());
  Symbol a = alpha.Find("a");
  Symbol b = alpha.Find("b");
  Symbol c = alpha.Find("c");
  EXPECT_TRUE(nfa.Accepts(Word({c})));
  EXPECT_TRUE(nfa.Accepts(Word({a, b, a, c})));
  EXPECT_FALSE(nfa.Accepts(Word({a, b})));
  EXPECT_FALSE(nfa.Accepts(Word({c, a})));
  EXPECT_FALSE(nfa.Accepts(Word({})));
}

TEST(RegexTest, PlusAndOpt) {
  Alphabet alpha;
  Regex r = *ParseRegex("a+, b?", &alpha);
  Nfa nfa = r.ToNfa(alpha.size());
  Symbol a = alpha.Find("a");
  Symbol b = alpha.Find("b");
  EXPECT_TRUE(nfa.Accepts(Word({a})));
  EXPECT_TRUE(nfa.Accepts(Word({a, a, b})));
  EXPECT_FALSE(nfa.Accepts(Word({b})));
  EXPECT_FALSE(nfa.Accepts(Word({a, b, b})));
}

TEST(RegexTest, EpsilonAndEmpty) {
  Alphabet alpha;
  alpha.Intern("a");
  Regex eps = *ParseRegex("#eps", &alpha);
  EXPECT_TRUE(eps.ToNfa(1).Accepts(Word({})));
  EXPECT_FALSE(eps.ToNfa(1).Accepts(Word({0})));
  Regex empty = *ParseRegex("#empty", &alpha);
  EXPECT_FALSE(empty.ToNfa(1).Accepts(Word({})));
  Dfa d = Determinize(empty.ToNfa(1));
  EXPECT_TRUE(d.IsEmpty());
}

TEST(DfaTest, DeterminizeMatchesNfa) {
  Alphabet alpha;
  Regex r = *ParseRegex("(a, b | b, a)*, a?", &alpha);
  Nfa nfa = r.ToNfa(alpha.size());
  Dfa dfa = Determinize(nfa);
  RandomSource rng(23);
  for (int iter = 0; iter < 500; ++iter) {
    size_t len = rng.UniformIndex(8);
    std::vector<Symbol> w;
    for (size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<Symbol>(rng.UniformIndex(alpha.size())));
    }
    EXPECT_EQ(nfa.Accepts(w), dfa.Accepts(w));
  }
}

TEST(DfaTest, ComplementFlipsMembership) {
  Alphabet alpha;
  Regex r = *ParseRegex("a, a*", &alpha);
  Dfa dfa = Determinize(r.ToNfa(alpha.size()));
  Dfa comp = dfa.Complement();
  EXPECT_TRUE(dfa.Accepts(Word({0})));
  EXPECT_FALSE(comp.Accepts(Word({0})));
  EXPECT_FALSE(dfa.Accepts(Word({})));
  EXPECT_TRUE(comp.Accepts(Word({})));
}

TEST(DfaTest, IntersectAndUnion) {
  Alphabet alpha;
  Dfa has_a = Determinize(ParseRegex("(a | b)*, a, (a | b)*", &alpha)->ToNfa(2));
  Dfa has_b = Determinize(ParseRegex("(a | b)*, b, (a | b)*", &alpha)->ToNfa(2));
  Dfa both = Dfa::Intersect(has_a, has_b);
  Dfa either = Dfa::Union(has_a, has_b);
  EXPECT_TRUE(both.Accepts(Word({0, 1})));
  EXPECT_FALSE(both.Accepts(Word({0, 0})));
  EXPECT_TRUE(either.Accepts(Word({0, 0})));
  EXPECT_FALSE(either.Accepts(Word({})));
}

TEST(DfaTest, MinimizePreservesLanguage) {
  Alphabet alpha;
  Regex r = *ParseRegex("(a, a)*", &alpha);
  Dfa dfa = Determinize(r.ToNfa(1));
  Dfa min = dfa.Minimize();
  EXPECT_LE(min.num_states(), dfa.num_states());
  RandomSource rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    size_t len = rng.UniformIndex(10);
    std::vector<Symbol> w(len, 0);
    EXPECT_EQ(dfa.Accepts(w), min.Accepts(w));
  }
  // Even-length unary language needs exactly 2 states.
  EXPECT_EQ(min.num_states(), 2u);
}

TEST(DfaTest, EquivalenceChecks) {
  Alphabet alpha;
  Dfa a1 = Determinize(ParseRegex("a*, a", &alpha)->ToNfa(1));
  Dfa a2 = Determinize(ParseRegex("a, a*", &alpha)->ToNfa(1));
  Dfa a3 = Determinize(ParseRegex("a*", &alpha)->ToNfa(1));
  EXPECT_TRUE(Dfa::Equivalent(a1, a2));
  EXPECT_FALSE(Dfa::Equivalent(a1, a3));
}

TEST(DfaTest, FindWitnessShortest) {
  Alphabet alpha;
  Dfa d = Determinize(ParseRegex("a, b, a", &alpha)->ToNfa(2));
  auto w = d.FindWitness();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, Word({0, 1, 0}));
  Dfa empty = Determinize(ParseRegex("#empty", &alpha)->ToNfa(2));
  EXPECT_TRUE(empty.FindWitness().status().IsNotFound());
  // Witness of the whole language: empty word (initial accepting).
  Dfa all = Determinize(ParseRegex("(a | b)*", &alpha)->ToNfa(2));
  auto we = all.FindWitness();
  ASSERT_TRUE(we.ok());
  EXPECT_TRUE(we->empty());
}

TEST(DfaTest, DeMorganProperty) {
  // Randomized regex pairs: L(r1) ∩ L(r2) == complement(complement(L1) ∪
  // complement(L2)).
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  RandomSource rng(41);
  const char* pool[] = {"a*", "(a|b)*", "a,b", "(a,b)*", "b?,a+", "a|b,b"};
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      Dfa d1 = Determinize(ParseRegex(pool[i], &alpha)->ToNfa(2));
      Dfa d2 = Determinize(ParseRegex(pool[j], &alpha)->ToNfa(2));
      Dfa inter = Dfa::Intersect(d1, d2);
      Dfa via_de_morgan =
          Dfa::Union(d1.Complement(), d2.Complement()).Complement();
      EXPECT_TRUE(Dfa::Equivalent(inter, via_de_morgan)) << pool[i] << " " << pool[j];
    }
  }
}

}  // namespace
}  // namespace fo2dt
