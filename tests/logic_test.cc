#include <gtest/gtest.h>

#include "common/random.h"
#include "datatree/generator.h"
#include "datatree/text_io.h"
#include "logic/eval.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "logic/scott.h"

namespace fo2dt {
namespace {

struct Ctx {
  Alphabet labels;
  Alphabet preds;
  DataTree tree;
};

Ctx MakeCtx(const std::string& tree_text) {
  Ctx c;
  auto t = ParseDataTree(tree_text, &c.labels);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  c.tree = *t;
  return c;
}

Result<bool> Holds(Ctx* c, const std::string& formula_text) {
  auto f = ParseFormula(formula_text, &c->labels, &c->preds);
  if (!f.ok()) return f.status();
  return Evaluator::EvaluateSentence(*f, c->tree, nullptr);
}

TEST(FormulaTest, ParseRenderRoundTrip) {
  Alphabet labels;
  Alphabet preds;
  auto f = ParseFormula("forall x. (a(x) -> exists y. (child(x,y) & x ~ y))",
                        &labels, &preds);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->ToString(labels),
            "forall x. (!a(x) | exists y. (child(x,y) & x ~ y))");
  EXPECT_TRUE(f->IsSentence());
  EXPECT_TRUE(f->UsesData());
  EXPECT_FALSE(f->UsesOrderAxes());
}

TEST(FormulaTest, ParseErrors) {
  Alphabet labels;
  EXPECT_FALSE(ParseFormula("", &labels).ok());
  EXPECT_FALSE(ParseFormula("a(z)", &labels).ok());
  EXPECT_FALSE(ParseFormula("exists x a(x)", &labels).ok());
  EXPECT_FALSE(ParseFormula("a(x) &", &labels).ok());
  EXPECT_FALSE(ParseFormula("next(x)", &labels).ok());
  EXPECT_FALSE(ParseFormula("$R(x)", &labels).ok());  // no pred catalog
  EXPECT_FALSE(ParseFormula("x ~ y extra", &labels).ok());
}

TEST(FormulaTest, FreeVarsAndSentences) {
  Alphabet labels;
  Alphabet preds;
  Formula open = *ParseFormula("a(x) & exists y. x ~ y", &labels, &preds);
  EXPECT_EQ(open.FreeVars(), 1u);
  EXPECT_FALSE(open.IsSentence());
  Formula closed = Formula::Forall(Var::kX, open);
  EXPECT_TRUE(closed.IsSentence());
}

TEST(FormulaTest, NnfPushesNegations) {
  Alphabet labels;
  Formula f = *ParseFormula("!(a(x) & exists y. next(x,y))", &labels);
  Formula nnf = f.ToNnf();
  EXPECT_EQ(nnf.ToString(labels), "(!a(x) | forall y. !next(x,y))");
  // Double negation collapses.
  Formula dn = Formula::Not(Formula::Not(f)).ToNnf();
  EXPECT_TRUE(dn.EqualsFormula(nnf));
}

TEST(FormulaTest, UsesOrderAxes) {
  Alphabet labels;
  EXPECT_TRUE(ParseFormula("exists x. exists y. desc(x,y)", &labels)->UsesOrderAxes());
  EXPECT_TRUE(ParseFormula("exists x. exists y. foll(x,y)", &labels)->UsesOrderAxes());
  EXPECT_FALSE(ParseFormula("exists x. exists y. child(x,y)", &labels)->UsesOrderAxes());
}

TEST(EvalTest, LabelAndStructure) {
  Ctx c = MakeCtx("a:1 (b:1 c:2 (d:2) b:1)");
  EXPECT_TRUE(*Holds(&c, "exists x. a(x)"));
  EXPECT_FALSE(*Holds(&c, "exists x. e(x)"));
  EXPECT_TRUE(*Holds(&c, "exists x. exists y. next(x,y) & b(x) & c(y)"));
  EXPECT_FALSE(*Holds(&c, "exists x. exists y. next(x,y) & c(x) & b(x)"));
  EXPECT_TRUE(*Holds(&c, "exists x. (c(x) & exists y. (child(x,y) & d(y)))"));
  EXPECT_TRUE(*Holds(&c, "forall x. (d(x) -> exists y. (child(y,x) & c(y)))"));
}

TEST(EvalTest, DataEquality) {
  Ctx c = MakeCtx("a:1 (b:1 c:2 (d:2) b:1)");
  // Root shares its value with both b's.
  EXPECT_TRUE(*Holds(&c, "forall x. (b(x) -> exists y. (a(y) & x ~ y))"));
  // c and d share value 2; no b shares with c.
  EXPECT_TRUE(*Holds(&c, "exists x. (c(x) & exists y. (d(y) & x ~ y))"));
  EXPECT_FALSE(*Holds(&c, "exists x. (b(x) & exists y. (c(y) & x ~ y))"));
  // Every class has at most 3 members — sanity via at-most-one failing.
  EXPECT_FALSE(
      *Holds(&c, "forall x. forall y. ((b(x) & b(y) & x ~ y) -> x = y)"));
}

TEST(EvalTest, TransitiveAxes) {
  Ctx c = MakeCtx("a:1 (b:2 (c:3 (d:4)) e:5)");
  EXPECT_TRUE(*Holds(&c, "exists x. exists y. (a(x) & d(y) & desc(x,y))"));
  EXPECT_TRUE(*Holds(&c, "exists x. exists y. (b(x) & d(y) & desc(x,y))"));
  EXPECT_FALSE(*Holds(&c, "exists x. exists y. (e(x) & d(y) & desc(x,y))"));
  EXPECT_TRUE(*Holds(&c, "exists x. exists y. (b(x) & e(y) & foll(x,y))"));
  EXPECT_FALSE(*Holds(&c, "exists x. exists y. (e(x) & b(y) & foll(x,y))"));
  // desc is irreflexive and next/foll need a shared parent.
  EXPECT_FALSE(*Holds(&c, "exists x. desc(x,x)"));
  EXPECT_FALSE(*Holds(&c, "exists x. exists y. (a(x) & foll(x,y))"));
}

TEST(EvalTest, EqualityAtom) {
  Ctx c = MakeCtx("a:1 (b:2)");
  EXPECT_TRUE(*Holds(&c, "forall x. exists y. x = y"));
  EXPECT_TRUE(*Holds(&c, "exists x. exists y. x != y"));
  EXPECT_TRUE(*Holds(&c, "forall x. x ~ x"));
}

TEST(EvalTest, QuantifierAlternation) {
  // "Every node has a child" is false; "some node has every node as
  // child-or-self" nonsense checks quantifier nesting.
  Ctx c = MakeCtx("a:1 (b:2 b:3)");
  EXPECT_FALSE(*Holds(&c, "forall x. exists y. child(x,y)"));
  EXPECT_TRUE(*Holds(&c, "exists x. forall y. (x = y | child(x,y))"));
  EXPECT_FALSE(*Holds(&c, "exists x. forall y. child(x,y)"));
}

TEST(EvalTest, PredInterpretation) {
  Ctx c = MakeCtx("a:1 (b:2 b:3)");
  Formula f = *ParseFormula("exists x. ($M(x) & b(x))", &c.labels, &c.preds);
  PredInterpretation interp = PredInterpretation::Empty(1, c.tree.size());
  EXPECT_FALSE(*Evaluator::EvaluateSentence(f, c.tree, &interp));
  interp.membership[0][1] = 1;  // mark the first b
  EXPECT_TRUE(*Evaluator::EvaluateSentence(f, c.tree, &interp));
  // Without any interpretation, predicates read as empty.
  EXPECT_FALSE(*Evaluator::EvaluateSentence(f, c.tree, nullptr));
}

TEST(EvalTest, EvaluateUnary) {
  Ctx c = MakeCtx("a:1 (b:1 c:2 (d:2) b:1)");
  Formula f = *ParseFormula("exists y. (child(y,x) & y ~ x)", &c.labels, &c.preds);
  auto sat = Evaluator::EvaluateUnary(f, c.tree, Var::kX);
  ASSERT_TRUE(sat.ok());
  // Nodes whose parent shares their value: both b's and d.
  std::vector<char> expect = {0, 1, 0, 1, 1};
  EXPECT_EQ(*sat, expect);
  // Wrong free variable is an error.
  EXPECT_FALSE(Evaluator::EvaluateUnary(f, c.tree, Var::kY).ok());
}

TEST(EvalTest, EmptyTreeIsError) {
  DataTree t;
  Formula f = Formula::True();
  EXPECT_FALSE(Evaluator::EvaluateSentence(f, t, nullptr).ok());
}

TEST(ScottTest, ShapeOfResult) {
  Alphabet labels;
  Formula f = *ParseFormula(
      "forall x. (a(x) -> exists y. (child(x,y) & x ~ y))", &labels);
  auto snf = ToScottNormalForm(f, 0);
  ASSERT_TRUE(snf.ok()) << snf.status().ToString();
  EXPECT_TRUE(snf->universal.IsQuantifierFree());
  for (const Formula& w : snf->witnesses) {
    EXPECT_TRUE(w.IsQuantifierFree());
    // Witness clauses are over (x free, y quantified): no stray vars needed.
  }
  EXPECT_GT(snf->num_preds, 0u);
}

TEST(ScottTest, EquisatisfiableOnModels) {
  // For every model t of φ there is a predicate interpretation making the
  // Scott form true, and vice versa (checked by brute force over small
  // trees and interpretations).
  Alphabet labels;
  const char* formulas[] = {
      "exists x. a(x)",
      "forall x. (a(x) -> exists y. (child(x,y) & x ~ y))",
      "exists x. (a(x) & forall y. (child(x,y) -> b(y)))",
      "forall x. forall y. ((a(x) & a(y)) -> x = y)",
      "exists x. exists y. (next(x,y) & x ~ y)",
  };
  const char* trees[] = {
      "a:1",           "b:1",           "a:1 (a:1)",      "a:1 (b:1)",
      "a:1 (b:2 b:1)", "b:1 (a:2 a:2)", "a:1 (a:2 (b:2))", "b:3 (b:3)",
  };
  for (const char* ftext : formulas) {
    Formula f = *ParseFormula(ftext, &labels);
    auto snf = ToScottNormalForm(f, 0);
    ASSERT_TRUE(snf.ok());
    Emso2Formula emso;
    emso.num_preds = snf->num_preds;
    emso.core = ScottToFormula(*snf);
    for (const char* ttext : trees) {
      Alphabet tree_labels = labels;  // share ids
      DataTree t = *ParseDataTree(ttext, &tree_labels);
      bool direct = *Evaluator::EvaluateSentence(f, t, nullptr);
      auto via_snf = Evaluator::EvaluateEmsoBruteForce(emso, t, 22);
      ASSERT_TRUE(via_snf.ok()) << via_snf.status().ToString();
      EXPECT_EQ(direct, *via_snf) << ftext << " on " << ttext;
    }
  }
}

TEST(ScottTest, SwapVarsInvolution) {
  Alphabet labels;
  Formula f = *ParseFormula("a(x) & next(x,y) & x ~ y", &labels);
  Formula swapped = *SwapVars(f);
  EXPECT_EQ(swapped.ToString(labels), "(a(y) & next(y,x) & y ~ x)");
  EXPECT_TRUE(SwapVars(swapped)->EqualsFormula(f));
  Formula quantified = Formula::Exists(Var::kX, f);
  EXPECT_FALSE(SwapVars(quantified).ok());
}

TEST(EvalTest, RandomizedSemanticsSpotChecks) {
  // On random trees: "every node with a same-data parent" count matches a
  // direct computation.
  Alphabet labels;
  Alphabet preds;
  Formula f =
      *ParseFormula("exists y. (child(y,x) & y ~ x)", &labels, &preds);
  RandomSource rng(123);
  RandomTreeOptions opt;
  opt.num_nodes = 30;
  opt.num_labels = 2;
  for (int iter = 0; iter < 25; ++iter) {
    // Reuse label ids: generator interns l0, l1 which differ from parse-time
    // labels; the formula above uses no labels so this is safe.
    DataTree t = RandomDataTree(opt, &rng, &labels);
    auto sat = Evaluator::EvaluateUnary(f, t, Var::kX);
    ASSERT_TRUE(sat.ok());
    for (NodeId v = 0; v < t.size(); ++v) {
      bool expect = t.parent(v) != kNoNode && t.SameData(t.parent(v), v);
      EXPECT_EQ((*sat)[v] != 0, expect);
    }
  }
}

}  // namespace
}  // namespace fo2dt
