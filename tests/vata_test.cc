#include "vata/vata.h"

#include <gtest/gtest.h>

#include "datatree/text_io.h"
#include "datatree/zones.h"
#include "logic/eval.h"

namespace fo2dt {
namespace {

// A one-counter VATA over labels {a=0, leaf=1}: leaves produce (q0, [1]);
// an inner 'a' node consumes one token from each child and adds one:
// vector at a node = (#leaves - 2*#inner... ). Transition:
// δ(a, q0, [1], q0, [1], q0, [1]): vector = (x-1)+(y-1)+1 = x+y-1.
// Root accepts at zero: a tree with L leaves and I inner nodes has root
// value L - I (each inner -1... since every inner node consumes 2 adds 1).
// Binary: L = I + 1, so root value is always 1 -> never accepted. Adjust:
// add a second transition that consumes without adding to make acceptance
// possible at the root: δ(a, q0,[1], q0,[1], q1, [0]) with q1 accepting.
VataAutomaton OneCounter() {
  VataAutomaton a;
  a.num_counters = 1;
  a.num_states = 2;
  a.num_labels = 2;
  a.accepting = {1};
  a.leaf_rules.push_back({1, 0, {1}});
  a.transitions.push_back({0, 0, {1}, 0, {1}, 0, {1}});
  a.transitions.push_back({0, 0, {1}, 0, {1}, 1, {0}});
  return a;
}

TEST(VataTest, MembershipSmallTrees) {
  VataAutomaton a = OneCounter();
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("leaf");
  // Single leaf: vector [1], not zero -> reject.
  EXPECT_FALSE(*VataAccepts(a, *ParseDataTree("leaf:0", &alpha)));
  // a(leaf, leaf): rule 2 gives (q1, [0]) -> accept.
  EXPECT_TRUE(*VataAccepts(a, *ParseDataTree("a:0 (leaf:0 leaf:0)", &alpha)));
  // a(a(leaf,leaf), leaf): inner a must use rule 1 -> (q0,[1]); root rule 2:
  // (1-1)+(1-1)+0 = 0 at q1 -> accept.
  EXPECT_TRUE(*VataAccepts(
      a, *ParseDataTree("a:0 (a:0 (leaf:0 leaf:0) leaf:0)", &alpha)));
  // Non-binary tree is an error.
  EXPECT_FALSE(VataAccepts(a, *ParseDataTree("a:0 (leaf:0)", &alpha)).ok());
}

TEST(VataTest, CountersBlockUnderflow) {
  // A VATA that requires taking 2 tokens from a child producing only 1.
  VataAutomaton a;
  a.num_counters = 1;
  a.num_states = 1;
  a.num_labels = 2;
  a.accepting = {0};
  a.leaf_rules.push_back({1, 0, {0}});
  a.transitions.push_back({0, 0, {2}, 0, {0}, 0, {0}});
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("leaf");
  EXPECT_FALSE(
      *VataAccepts(a, *ParseDataTree("a:0 (leaf:0 leaf:0)", &alpha)));
}

TEST(VataTest, BoundedEmptinessFindsWitness) {
  VataAutomaton a = OneCounter();
  auto w = FindVataWitnessBounded(a, 5);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->first.size(), 3u);  // a(leaf, leaf)
  EXPECT_TRUE(*VataAccepts(a, w->first));
}

TEST(VataTest, BoundedEmptinessNotFound) {
  // Accepting state unreachable.
  VataAutomaton a = OneCounter();
  a.accepting = {};
  EXPECT_TRUE(FindVataWitnessBounded(a, 7).status().IsNotFound());
}

TEST(VataTest, CounterTreeSatisfiesDiscipline) {
  VataAutomaton a = OneCounter();
  auto w = FindVataWitnessBounded(a, 7);
  ASSERT_TRUE(w.ok());
  CounterTreeAlphabet alpha{a.num_counters, a.num_states, a.num_labels};
  auto ct = BuildCounterTree(a, w->first, w->second, alpha);
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  EXPECT_TRUE(ct->Validate().ok());
  // The counter tree satisfies the Theorem-4 conditions (1)-(4) and the
  // structural coding shape — checked with the FO² model checker.
  Formula phi = EncodeVataToFo2(a, alpha);
  auto ok = Evaluator::EvaluateSentence(phi, *ct, nullptr);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(*ok);
}

TEST(VataTest, BrokenCounterTreeViolatesDiscipline) {
  VataAutomaton a = OneCounter();
  auto w = FindVataWitnessBounded(a, 7);
  ASSERT_TRUE(w.ok());
  CounterTreeAlphabet alpha{a.num_counters, a.num_states, a.num_labels};
  DataTree ct = *BuildCounterTree(a, w->first, w->second, alpha);
  // Find an increment node and corrupt its value.
  for (NodeId v = 0; v < ct.size(); ++v) {
    if (ct.label(v) == alpha.Inc(0)) {
      ct.set_data(v, 999999);
      break;
    }
  }
  Formula phi = CounterDisciplineFormula(alpha);
  EXPECT_FALSE(*Evaluator::EvaluateSentence(phi, ct, nullptr));
}

TEST(VataTest, CounterTreeShape) {
  // The coding produces unary I/D chains and binary label nodes (Figure 4).
  VataAutomaton a = OneCounter();
  auto w = FindVataWitnessBounded(a, 7);
  ASSERT_TRUE(w.ok());
  CounterTreeAlphabet alpha{a.num_counters, a.num_states, a.num_labels};
  DataTree ct = *BuildCounterTree(a, w->first, w->second, alpha);
  for (NodeId v = 0; v < ct.size(); ++v) {
    size_t kids = ct.NumChildren(v);
    if (ct.label(v) < alpha.StateLabel(0)) {
      EXPECT_EQ(kids, 1u) << "I/D nodes are unary";
    } else {
      EXPECT_LE(kids, 2u);
    }
  }
}

}  // namespace
}  // namespace fo2dt
