#include "automata/tree_automaton.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "automata/automaton_io.h"
#include "common/random.h"
#include "datatree/generator.h"
#include "datatree/text_io.h"

namespace fo2dt {
namespace {

// Automaton over {a=0, b=1} accepting trees where all leaves are 'b' and all
// internal nodes are 'a'. States: 0 = "leaf b" (initial), 1 = "internal a".
TreeAutomaton LeavesAreB() {
  TreeAutomaton aut(2, 2);
  aut.SetInitial(0);
  // Horizontal: any mix of leaf/internal siblings; δh reads the label of the
  // left node, which must match its role.
  aut.AddHorizontal(0, 1, 0);
  aut.AddHorizontal(0, 1, 1);
  aut.AddHorizontal(1, 0, 0);
  aut.AddHorizontal(1, 0, 1);
  // Vertical: last child hands off to its parent, which is internal (1).
  aut.AddVertical(0, 1, 1);
  aut.AddVertical(1, 0, 1);
  aut.SetAccepting(1, 0);  // internal root labeled a
  aut.SetAccepting(0, 1);  // single-leaf tree labeled b
  return aut;
}

DataTree T(const std::string& text, Alphabet* alpha) {
  auto t = ParseDataTree(text, alpha);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

class LeafAutomatonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alpha_.Intern("a");
    alpha_.Intern("b");
  }
  Alphabet alpha_;
  TreeAutomaton aut_ = LeavesAreB();
};

TEST_F(LeafAutomatonTest, AcceptsGoodTrees) {
  EXPECT_TRUE(aut_.Accepts(T("b:0", &alpha_)));
  EXPECT_TRUE(aut_.Accepts(T("a:0 (b:0)", &alpha_)));
  EXPECT_TRUE(aut_.Accepts(T("a:0 (b:0 b:0 b:0)", &alpha_)));
  EXPECT_TRUE(aut_.Accepts(T("a:0 (b:0 a:0 (b:0) b:0)", &alpha_)));
}

TEST_F(LeafAutomatonTest, RejectsBadTrees) {
  EXPECT_FALSE(aut_.Accepts(T("a:0", &alpha_)));               // leaf a
  EXPECT_FALSE(aut_.Accepts(T("b:0 (b:0)", &alpha_)));         // internal b
  EXPECT_FALSE(aut_.Accepts(T("a:0 (b:0 a:0 b:0)", &alpha_))); // leaf a inside
}

TEST_F(LeafAutomatonTest, FindRunIsAcceptingRun) {
  DataTree t = T("a:0 (b:0 a:0 (b:0) b:0)", &alpha_);
  auto run = aut_.FindAcceptingRun(t);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(aut_.IsAcceptingRun(t, *run));
  // The run is unique for this automaton: leaves 0, internal 1.
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ((*run)[v], t.first_child(v) == kNoNode ? 0u : 1u);
  }
}

TEST_F(LeafAutomatonTest, IsAcceptingRunRejectsBadRuns) {
  DataTree t = T("a:0 (b:0)", &alpha_);
  TreeRun bad = {0, 0};  // root must be state 1
  EXPECT_FALSE(aut_.IsAcceptingRun(t, bad));
  TreeRun wrong_size = {1};
  EXPECT_FALSE(aut_.IsAcceptingRun(t, wrong_size));
}

TEST_F(LeafAutomatonTest, WitnessTreeIsAccepted) {
  auto w = aut_.FindWitnessTree();
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(aut_.Accepts(*w));
  EXPECT_FALSE(aut_.IsEmpty());
}

TEST(TreeAutomatonTest, EmptyWhenNoAcceptingReachable) {
  TreeAutomaton aut(1, 2);
  aut.SetInitial(0);
  aut.AddVertical(0, 0, 1);
  // No accepting pairs at all.
  EXPECT_TRUE(aut.IsEmpty());
  aut.SetAccepting(1, 0);
  EXPECT_FALSE(aut.IsEmpty());
  auto w = aut.FindWitnessTree();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->size(), 2u);  // chain: root with one leaf child
  EXPECT_TRUE(aut.Accepts(*w));
}

TEST(TreeAutomatonTest, UniversalAcceptsEverything) {
  TreeAutomaton u = TreeAutomaton::Universal(3);
  Alphabet alpha;
  RandomSource rng(9);
  RandomTreeOptions opt;
  opt.num_nodes = 40;
  opt.num_labels = 3;
  for (int i = 0; i < 10; ++i) {
    DataTree t = RandomDataTree(opt, &rng, &alpha);
    EXPECT_TRUE(u.Accepts(t));
  }
}

TEST(TreeAutomatonTest, LabelFilter) {
  TreeAutomaton f = TreeAutomaton::LabelFilter(3, {true, false, true});
  Alphabet alpha;
  DataTree ok = T("a:0 (c:0)", &alpha);   // a=0, c interned later
  // Intern order: a=0, c=1 — careful: build labels explicitly instead.
  Alphabet a2;
  Symbol s0 = a2.Intern("s0");
  Symbol s1 = a2.Intern("s1");
  Symbol s2 = a2.Intern("s2");
  (void)s0; (void)s1; (void)s2;
  DataTree good;
  (void)good.CreateRoot(0, 0);
  (void)good.AppendChild(good.root(), 2, 0);
  EXPECT_TRUE(f.Accepts(good));
  DataTree bad;
  (void)bad.CreateRoot(0, 0);
  (void)bad.AppendChild(bad.root(), 1, 0);
  EXPECT_FALSE(f.Accepts(bad));
  (void)ok;
}

TEST(TreeAutomatonTest, IntersectionSemantics) {
  // A1: all leaves b; A2: label filter allowing only labels {a, b} with at
  // most... use: trees whose root is 'a'. Build root-label automaton.
  TreeAutomaton a1 = LeavesAreB();
  TreeAutomaton root_a(2, 1);
  root_a.SetInitial(0);
  root_a.AddHorizontal(0, 0, 0);
  root_a.AddHorizontal(0, 1, 0);
  root_a.AddVertical(0, 0, 0);
  root_a.AddVertical(0, 1, 0);
  root_a.SetAccepting(0, 0);  // root must be labeled a
  auto inter = TreeAutomaton::Intersect(a1, root_a);
  ASSERT_TRUE(inter.ok());
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  EXPECT_TRUE(inter->Accepts(T("a:0 (b:0 b:0)", &alpha)));
  EXPECT_FALSE(inter->Accepts(T("b:0", &alpha)));          // root not a
  EXPECT_FALSE(inter->Accepts(T("a:0 (a:0 b:0)", &alpha)));  // leaf a
}

TEST(TreeAutomatonTest, UnionSemantics) {
  TreeAutomaton a1 = LeavesAreB();
  // A2: single-node tree labeled a.
  TreeAutomaton single(2, 1);
  single.SetInitial(0);
  single.SetAccepting(0, 0);
  auto uni = TreeAutomaton::Union(a1, single);
  ASSERT_TRUE(uni.ok());
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  EXPECT_TRUE(uni->Accepts(T("a:0", &alpha)));
  EXPECT_TRUE(uni->Accepts(T("a:0 (b:0)", &alpha)));
  EXPECT_FALSE(uni->Accepts(T("a:0 (a:0)", &alpha)));
}

TEST(TreeAutomatonTest, AlphabetMismatchErrors) {
  TreeAutomaton a(2, 1);
  TreeAutomaton b(3, 1);
  EXPECT_FALSE(TreeAutomaton::Intersect(a, b).ok());
  EXPECT_FALSE(TreeAutomaton::Union(a, b).ok());
}

TEST(TreeAutomatonTest, RandomizedProductAgreesWithConjunction) {
  // Product membership == both memberships, on random trees.
  TreeAutomaton a1 = LeavesAreB();
  TreeAutomaton parity(2, 2);
  // parity automaton: counts nothing meaningful but is nontrivial: state
  // flips along horizontal steps; accepts when root has state 0.
  parity.SetInitial(0);
  parity.SetInitial(1);
  for (Symbol s = 0; s < 2; ++s) {
    parity.AddHorizontal(0, s, 1);
    parity.AddHorizontal(1, s, 0);
    parity.AddVertical(0, s, 0);
    parity.AddVertical(0, s, 1);
    parity.AddVertical(1, s, 0);
    parity.AddVertical(1, s, 1);
    parity.SetAccepting(0, s);
  }
  auto prod = TreeAutomaton::Intersect(a1, parity);
  ASSERT_TRUE(prod.ok());
  Alphabet alpha;
  RandomSource rng(77);
  RandomTreeOptions opt;
  opt.num_nodes = 12;
  opt.num_labels = 2;
  for (int i = 0; i < 50; ++i) {
    DataTree t = RandomDataTree(opt, &rng, &alpha);
    EXPECT_EQ(prod->Accepts(t), a1.Accepts(t) && parity.Accepts(t));
  }
}

// The singleton language {a(b, c(d))} requires anchoring "c is the second
// child" — exactly what the non-first state set provides (see the header
// note in tree_automaton.h).
TreeAutomaton SingletonAbCd() {
  // Σ: a=0, b=1, c=2, d=3. States: 0 = b-leaf, 1 = c-node (non-first),
  // 2 = d-leaf, 3 = root.
  TreeAutomaton aut(4, 4);
  aut.SetInitial(0);
  aut.SetInitial(2);
  aut.SetNonFirst(1);
  aut.AddHorizontal(0, 1, 1);  // b then c
  aut.AddVertical(2, 3, 1);    // d's parent is the c-node
  aut.AddVertical(1, 2, 3);    // c closes the chain into the root
  aut.SetAccepting(3, 0);
  return aut;
}

TEST(TreeAutomatonTest, NonFirstStatesPinSiblingPositions) {
  TreeAutomaton aut = SingletonAbCd();
  Alphabet alpha;
  for (const char* name : {"a", "b", "c", "d"}) alpha.Intern(name);
  EXPECT_TRUE(aut.Accepts(*ParseDataTree("a:0 (b:0 c:0 (d:0))", &alpha)));
  // Pruning c's subtree must now be rejected (c would be a non-I leaf).
  EXPECT_FALSE(aut.Accepts(*ParseDataTree("a:0 (b:0 c:0)", &alpha)));
  // Dropping b must be rejected (c's state is non-first).
  EXPECT_FALSE(aut.Accepts(*ParseDataTree("a:0 (c:0 (d:0))", &alpha)));
  // Reordering or duplication fails too.
  EXPECT_FALSE(aut.Accepts(*ParseDataTree("a:0 (c:0 (d:0) b:0)", &alpha)));
  EXPECT_FALSE(aut.Accepts(*ParseDataTree("a:0 (b:0 c:0 (d:0 d:0))", &alpha)));
  EXPECT_FALSE(aut.Accepts(*ParseDataTree("a:0 (b:0 c:0 (d:0) b:0)", &alpha)));
  // The witness generator must produce the single member.
  auto w = aut.FindWitnessTree();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->size(), 4u);
  EXPECT_TRUE(aut.Accepts(*w));
}

// Property: for random automata, canonical text -> parse -> canonical text is
// bit-identical, and the parsed copy (whose bitsets and CSR index are rebuilt
// from scratch) agrees with the original both structurally and on membership.
// This is the compatibility contract the flat representation owes the solve
// cache: FNV-1a keys are derived from this text.
TEST(TreeAutomatonTest, RandomizedTextRoundTripIsBitIdentical) {
  RandomSource rng(2026);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t ns = static_cast<size_t>(rng.UniformInt(1, 9));
    const size_t na = static_cast<size_t>(rng.UniformInt(1, 5));
    TreeAutomaton aut(na, ns);
    const int edges = static_cast<int>(rng.UniformInt(0, 24));
    for (int e = 0; e < edges; ++e) {
      const auto from = static_cast<TreeState>(
          rng.UniformInt(0, static_cast<int64_t>(ns) - 1));
      const auto sym = static_cast<Symbol>(
          rng.UniformInt(0, static_cast<int64_t>(na) - 1));
      const auto to = static_cast<TreeState>(
          rng.UniformInt(0, static_cast<int64_t>(ns) - 1));
      if (rng.UniformInt(0, 1) == 0) {
        aut.AddHorizontal(from, sym, to);
      } else {
        aut.AddVertical(from, sym, to);
      }
    }
    for (TreeState q = 0; q < ns; ++q) {
      if (rng.UniformInt(0, 2) == 0) aut.SetInitial(q);
      if (rng.UniformInt(0, 3) == 0) aut.SetNonFirst(q);
      for (Symbol a = 0; a < na; ++a) {
        if (rng.UniformInt(0, 3) == 0) aut.SetAccepting(q, a);
      }
    }

    const std::string text = TreeAutomatonToText(aut);
    auto parsed = ParseTreeAutomaton(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(TreeAutomatonToText(*parsed), text);

    EXPECT_TRUE(parsed->initial() == aut.initial());
    EXPECT_TRUE(parsed->non_first() == aut.non_first());
    for (TreeState q = 0; q < ns; ++q) {
      for (Symbol a = 0; a < na; ++a) {
        EXPECT_EQ(parsed->IsAccepting(q, a), aut.IsAccepting(q, a));
      }
    }
    // Membership goes through the freshly rebuilt successor index.
    Alphabet alpha;
    RandomTreeOptions opt;
    opt.num_nodes = 8;
    opt.num_labels = na;
    for (int i = 0; i < 3; ++i) {
      DataTree t = RandomDataTree(opt, &rng, &alpha);
      EXPECT_EQ(parsed->Accepts(t), aut.Accepts(t));
    }
  }
}

// Regression: RestrictStates must carry non-first and accepting membership
// through the renumbering even when the surviving NF state's only in-edges
// change — here its δh predecessor (state 0) is dropped, so the NF mark is
// the only thing still pinning it to second-sibling positions.
TEST(TreeAutomatonTest, RestrictStatesKeepsNonFirstWhenPredecessorDropped) {
  // Σ = {a=0, b=1}. States: 0 (dropped), 1 initial, 2 non-first + accepting,
  // 3 initial.
  TreeAutomaton aut(2, 4);
  aut.SetInitial(1);
  aut.SetInitial(3);
  aut.SetNonFirst(2);
  aut.SetAccepting(2, 1);
  aut.AddHorizontal(0, 0, 2);  // predecessor from the dropped state
  aut.AddHorizontal(1, 0, 2);  // surviving predecessor
  aut.AddVertical(2, 1, 3);

  TreeAutomaton r = aut.RestrictStates({false, true, true, true});
  ASSERT_EQ(r.num_states(), 3u);
  ASSERT_EQ(r.num_symbols(), 2u);
  // Renumbering: old 1 -> 0, old 2 -> 1, old 3 -> 2.
  EXPECT_TRUE(r.IsInitial(0));
  EXPECT_FALSE(r.IsInitial(1));
  EXPECT_TRUE(r.IsInitial(2));
  EXPECT_TRUE(r.IsNonFirst(1));
  EXPECT_FALSE(r.IsNonFirst(0));
  EXPECT_FALSE(r.IsNonFirst(2));
  EXPECT_TRUE(r.IsAccepting(1, 1));
  EXPECT_FALSE(r.IsAccepting(1, 0));
  // Only the transition whose endpoints both survive remains.
  ASSERT_EQ(r.horizontal().size(), 1u);
  EXPECT_TRUE(r.HasHorizontal(0, 0, 1));
  ASSERT_EQ(r.vertical().size(), 1u);
  EXPECT_TRUE(r.HasVertical(1, 1, 2));
}

// Trim renumbers through RestrictStates; the NF anchoring (and hence the
// language) must survive even when trimming discards states around it.
TEST(TreeAutomatonTest, TrimPreservesNonFirstSemantics) {
  TreeAutomaton aut = SingletonAbCd();
  // A useless extra state with transitions into the live part: never
  // bottom-up realizable, so Trim drops it and renumbers the rest.
  TreeState junk = aut.AddState();
  aut.AddHorizontal(junk, 0, 1);
  aut.AddVertical(junk, 1, 3);
  aut.SetNonFirst(junk);

  TreeAutomaton trimmed = aut.Trim();
  EXPECT_LT(trimmed.num_states(), aut.num_states());
  Alphabet alpha;
  for (const char* name : {"a", "b", "c", "d"}) alpha.Intern(name);
  EXPECT_TRUE(
      trimmed.Accepts(*ParseDataTree("a:0 (b:0 c:0 (d:0))", &alpha)));
  // Without the NF mark on c's state these would be accepted.
  EXPECT_FALSE(trimmed.Accepts(*ParseDataTree("a:0 (c:0 (d:0))", &alpha)));
  EXPECT_FALSE(trimmed.Accepts(*ParseDataTree("a:0 (b:0 c:0)", &alpha)));
}

TEST(TreeAutomatonTest, ConcurrentFirstLookupBuildsIndexOnce) {
  // Regression hammer for the lazy CSR build's publication seam
  // (tree_automaton.h LazyIndex): many threads race the *first* const
  // successor lookup, exactly one builds under the index mutex with a
  // release-store publish, and every reader's acquire fast path must
  // observe a fully built CSR. Run under the tsan preset this drives the
  // double-checked protocol's only interesting interleaving; in any build
  // it verifies all threads read identical successor sets.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    // A fresh automaton each round so every round races a cold index.
    TreeAutomaton aut = LeavesAreB();
    std::atomic<bool> go{false};  // atomic: start barrier; release/acquire
    std::atomic<int> sum_mismatch{0};  // atomic: relaxed error tally
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        // LeavesAreB: δh(0, b) = {0, 1}, δh(1, a) = {0, 1} (insertion
        // order), δv(0, b) = {1}.
        auto h0 = aut.HorizontalSuccessors(0, 1);
        auto h1 = aut.HorizontalSuccessors(1, 0);
        auto v = aut.VerticalSuccessors(0, 1);
        if (h0.size() != 2 || h0[0] != 0u || h0[1] != 1u ||
            h1.size() != 2 || h1[0] != 0u || h1[1] != 1u ||
            v.size() != 1 || v[0] != 1u) {
          sum_mismatch.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    ASSERT_EQ(sum_mismatch.load(std::memory_order_relaxed), 0)
        << "round " << round;
  }
}

TEST(TreeAutomatonTest, AcceptingRunStatesRootRestricted) {
  TreeAutomaton aut = LeavesAreB();
  Alphabet alpha;
  alpha.Intern("a");
  alpha.Intern("b");
  DataTree t = T("a:0 (b:0 b:0)", &alpha);
  auto sets = aut.AcceptingRunStates(t);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ((*sets)[t.root()].size(), 1u);
  EXPECT_EQ((*sets)[t.root()].front(), 1u);
}

}  // namespace
}  // namespace fo2dt
