/// \file solve_cache_test.cc
/// \brief Cross-solve cache: warm-vs-cold bit-equality across the facades,
/// persistence through a real process re-exec, fingerprint invalidation, the
/// kUnknown-never-cached rule, LRU byte-budget eviction — and the hash-consed
/// IR underneath it (10k structurally equal formulas intern to one node).

#include "common/solve_cache.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/flight_recorder.h"
#include "common/intern.h"
#include "common/registry_names.h"
#include "constraints/constraints.h"
#include "datatree/text_io.h"
#include "frontend/solver.h"
#include "logic/intern.h"
#include "logic/parser.h"
#include "vata/vata.h"

namespace fo2dt {
namespace {

/// Restores the process-global cache configuration (and drops the entries a
/// test inserted) no matter how the test exits; tests in this binary
/// serialize on the singleton.
class CacheGuard {
 public:
  explicit CacheGuard(SolveCacheConfig config)
      : saved_(SolveCache::Instance().config()) {
    SolveCache::Instance().Configure(std::move(config));
  }
  ~CacheGuard() { SolveCache::Instance().Configure(saved_); }

 private:
  SolveCacheConfig saved_;
};

SolveCacheConfig MemoryOnly() {
  SolveCacheConfig config;
  config.enabled = true;
  return config;
}

std::string UniquePath(const char* stem) {
  static int counter = 0;
  return ::testing::TempDir() + "sc_" + stem + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

/// The deterministic frontend.sat query every persistence test re-solves:
/// the parent and the re-exec'ed child must build the identical cache key.
Result<SatResult> SolveCanonicalQuery() {
  Alphabet labels;
  Formula f = *ParseFormula("exists x. a(x)", &labels);
  SolverOptions opt;
  opt.max_model_nodes = 3;
  return CheckFo2SatisfiabilityBounded(f, opt);
}

/// Verdict/method/steps/witness/StopReason equality — the bit-for-bit
/// contract a warm hit owes the cold solve. Witnesses compare as canonical
/// replay-alphabet text.
void ExpectSameSatResult(const SatResult& cold, const SatResult& warm,
                         size_t alpha) {
  EXPECT_EQ(cold.verdict, warm.verdict);
  EXPECT_EQ(cold.method, warm.method);
  EXPECT_EQ(cold.steps, warm.steps);
  EXPECT_EQ(cold.stop_reason.has_value(), warm.stop_reason.has_value());
  ASSERT_EQ(cold.witness.has_value(), warm.witness.has_value());
  if (cold.witness.has_value()) {
    Alphabet replay = MakeReplayAlphabet(alpha);
    EXPECT_EQ(DataTreeToText(*cold.witness, replay),
              DataTreeToText(*warm.witness, replay));
  }
  ASSERT_EQ(cold.witness_interp.has_value(), warm.witness_interp.has_value());
  if (cold.witness_interp.has_value()) {
    EXPECT_EQ(cold.witness_interp->membership, warm.witness_interp->membership);
  }
}

VataAutomaton OneCounterVata() {
  VataAutomaton a;
  a.num_counters = 1;
  a.num_states = 2;
  a.num_labels = 2;
  a.accepting = {1};
  a.leaf_rules.push_back({1, 0, {1}});
  a.transitions.push_back({0, 0, {1}, 0, {1}, 1, {0}});
  return a;
}

DataNormalForm LiveDnf() {
  ExtAlphabet ext{2, 0};
  DataNormalForm dnf;
  dnf.ext = ext;
  DnfBlock live;
  SimpleFormula amo;
  amo.kind = SimpleFormula::Kind::kAtMostOne;
  TypeSet alpha(ext.size(), 0);
  alpha[0] = 1;
  amo.alpha = alpha;
  live.simples.push_back(amo);
  dnf.blocks = {live};
  return dnf;
}

TEST(SolveCacheTest, WarmEqualsColdFrontendSat) {
  // Reference solve with the cache at its default (disabled): the cold path
  // of a cache-less build.
  Result<SatResult> reference = SolveCanonicalQuery();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->verdict, SatVerdict::kSat);

  CacheGuard guard(MemoryOnly());
  SolveCache& cache = SolveCache::Instance();
  SolveCache::Stats before = cache.stats();
  Result<SatResult> cold = SolveCanonicalQuery();  // populates
  Result<SatResult> warm = SolveCanonicalQuery();  // served
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cache.stats().solve_misses, before.solve_misses + 1);
  EXPECT_EQ(cache.stats().solve_hits, before.solve_hits + 1);
  ExpectSameSatResult(*reference, *cold, 1);
  ExpectSameSatResult(*cold, *warm, 1);
}

TEST(SolveCacheTest, WarmEqualsColdDnfSat) {
  DataNormalForm dnf = LiveDnf();
  SolverOptions opt;
  opt.max_model_nodes = 3;
  Result<SatResult> reference = CheckDnfSatisfiability(dnf, opt);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->verdict, SatVerdict::kSat);

  CacheGuard guard(MemoryOnly());
  SolveCache& cache = SolveCache::Instance();
  SolveCache::Stats before = cache.stats();
  Result<SatResult> cold = CheckDnfSatisfiability(dnf, opt);
  Result<SatResult> warm = CheckDnfSatisfiability(dnf, opt);
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cache.stats().solve_misses, before.solve_misses + 1);
  EXPECT_EQ(cache.stats().solve_hits, before.solve_hits + 1);
  ExpectSameSatResult(*reference, *cold, dnf.ext.size());
  ExpectSameSatResult(*cold, *warm, dnf.ext.size());
}

TEST(SolveCacheTest, WarmEqualsColdConstraintsKeyfk) {
  // Universal schema, one key + one inclusion: consistent, so the counting
  // abstraction returns a definite SAT the cache may serve.
  TreeAutomaton schema = TreeAutomaton::Universal(4);
  ConstraintSet set;
  set.keys.push_back(UnaryKey{2, 3});
  set.inclusions.push_back(UnaryInclusion{0, 1, 2, 3});
  Result<SatResult> reference = CheckKeyForeignKeyConsistencyIlp(schema, set);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->verdict, SatVerdict::kSat);

  CacheGuard guard(MemoryOnly());
  SolveCache& cache = SolveCache::Instance();
  SolveCache::Stats before = cache.stats();
  Result<SatResult> cold = CheckKeyForeignKeyConsistencyIlp(schema, set);
  Result<SatResult> warm = CheckKeyForeignKeyConsistencyIlp(schema, set);
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cache.stats().solve_misses, before.solve_misses + 1);
  EXPECT_EQ(cache.stats().solve_hits, before.solve_hits + 1);
  ExpectSameSatResult(*reference, *cold, 4);
  ExpectSameSatResult(*cold, *warm, 4);
}

TEST(SolveCacheTest, WarmEqualsColdVataAccepts) {
  Alphabet alpha;
  VataAutomaton a = OneCounterVata();
  DataTree t = *ParseDataTree("a:0 (leaf:0 leaf:0)", &alpha);
  Result<bool> reference = VataAccepts(a, t);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  CacheGuard guard(MemoryOnly());
  SolveCache& cache = SolveCache::Instance();
  SolveCache::Stats before = cache.stats();
  Result<bool> cold = VataAccepts(a, t);
  Result<bool> warm = VataAccepts(a, t);
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cache.stats().solve_misses, before.solve_misses + 1);
  EXPECT_EQ(cache.stats().solve_hits, before.solve_hits + 1);
  EXPECT_EQ(*reference, *cold);
  EXPECT_EQ(*cold, *warm);
}

TEST(SolveCacheTest, PersistsAcrossProcessReExec) {
  std::string file = UniquePath("persist") + ".fo2dtcache";
  {
    SolveCacheConfig config;
    config.enabled = true;
    config.file = file;
    CacheGuard guard(config);
    Result<SatResult> cold = SolveCanonicalQuery();
    ASSERT_TRUE(cold.ok());
    ASSERT_EQ(cold->verdict, SatVerdict::kSat);
    ASSERT_GT(std::filesystem::file_size(file), 0u);

    // Same process, fresh resident state: Configure reloads the file and the
    // persisted entry serves.
    SolveCache::Instance().Configure(config);
    SolveCache::Stats before = SolveCache::Instance().stats();
    Result<SatResult> warm = SolveCanonicalQuery();
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(SolveCache::Instance().stats().solve_hits,
              before.solve_hits + 1);
    ExpectSameSatResult(*cold, *warm, 1);
  }

  // The real re-exec: a brand-new process (this binary, filtered to the
  // child test below) must load the file via the FO2DT_CACHE_FILE env seed
  // and serve the verdict without ever solving cold.
  std::string self = std::filesystem::read_symlink("/proc/self/exe");
  std::string out = file + ".child.out";
  std::string cmd =
      "FO2DT_SOLVE_CACHE_CHILD=1 FO2DT_CACHE_FILE=\"" + file + "\" \"" + self +
      "\" --gtest_filter=SolveCacheTest.ChildServesPersistedVerdict > \"" +
      out + "\" 2>&1";
  int rc = std::system(cmd.c_str());
  std::ifstream child_out(out);
  std::stringstream buf;
  buf << child_out.rdbuf();
  EXPECT_EQ(rc, 0) << "child run failed:\n" << buf.str();

  std::remove(file.c_str());
  std::remove(out.c_str());
}

/// The child half of PersistsAcrossProcessReExec: runs only when re-exec'ed
/// with FO2DT_SOLVE_CACHE_CHILD=1, in a process whose cache was seeded
/// entirely from the environment.
TEST(SolveCacheTest, ChildServesPersistedVerdict) {
  if (std::getenv("FO2DT_SOLVE_CACHE_CHILD") == nullptr) {
    GTEST_SKIP() << "parent-driven child test";
  }
  SolveCache& cache = SolveCache::Instance();
  ASSERT_TRUE(cache.enabled()) << "FO2DT_CACHE_FILE must enable the cache";
  SolveCache::Stats before = cache.stats();
  Result<SatResult> warm = SolveCanonicalQuery();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->verdict, SatVerdict::kSat);
  ASSERT_TRUE(warm->witness.has_value());
  EXPECT_EQ(cache.stats().solve_hits, before.solve_hits + 1)
      << "persisted entry did not serve in the re-exec'ed process";
  EXPECT_EQ(cache.stats().solve_misses, before.solve_misses);
}

TEST(SolveCacheTest, FingerprintBumpInvalidatesPersistedEntries) {
  std::string file = UniquePath("fingerprint") + ".fo2dtcache";
  SolveCacheEntry entry;
  entry.verdict = "SAT";
  entry.method = "bounded_model_search";
  entry.steps = 7;

  SolveCacheConfig config;
  config.enabled = true;
  config.file = file;
  config.fingerprint = 1;
  CacheGuard guard(config);
  SolveCache& cache = SolveCache::Instance();
  cache.Insert("deadbeefdeadbeef", entry, nullptr, names::kModFrontendEnumerate);

  // A "new build" (bumped fingerprint) must not admit the old section...
  config.fingerprint = 2;
  cache.Configure(config);
  EXPECT_FALSE(cache
                   .Lookup("deadbeefdeadbeef", names::kMetricCacheSolveHits,
                           names::kMetricCacheSolveMisses)
                   .has_value());

  // ...while the matching fingerprint still does: the file is append-only
  // and old sections stay valid for the build that wrote them.
  config.fingerprint = 1;
  cache.Configure(config);
  std::optional<SolveCacheEntry> hit =
      cache.Lookup("deadbeefdeadbeef", names::kMetricCacheSolveHits,
                   names::kMetricCacheSolveMisses);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, "SAT");
  EXPECT_EQ(hit->steps, 7u);
  std::remove(file.c_str());
}

// A cache file whose sections were written entirely by a previous build
// (different fingerprint — e.g. a pre-flat-representation binary) must look
// empty to the current build even on a cold Configure that loads the file
// from disk, so stale verdicts keyed on the old representation can never be
// served. The file itself stays intact for the build that wrote it.
TEST(SolveCacheTest, ColdLoadIgnoresForeignBuildSections) {
  std::string file = UniquePath("old_build") + ".fo2dtcache";
  SolveCacheEntry entry;
  entry.verdict = "UNSAT";
  entry.method = "lcta_emptiness";
  entry.steps = 42;

  SolveCacheConfig config;
  config.enabled = true;
  config.file = file;
  config.fingerprint = 1;  // the "old build" writes its section...
  {
    CacheGuard guard(config);
    SolveCache::Instance().Insert("cafef00dcafef00d", entry, nullptr,
                                  names::kModFrontendEnumerate);
  }
  // ...the guard restored the previous config, dropping in-memory state; the
  // section now only exists on disk.

  config.fingerprint = 2;  // the current build cold-loads the same file
  {
    CacheGuard guard(config);
    EXPECT_FALSE(SolveCache::Instance()
                     .Lookup("cafef00dcafef00d", names::kMetricCacheSolveHits,
                             names::kMetricCacheSolveMisses)
                     .has_value())
        << "stale section from a foreign build fingerprint was served";
  }

  config.fingerprint = 1;  // the old build still sees its own section
  {
    CacheGuard guard(config);
    std::optional<SolveCacheEntry> hit = SolveCache::Instance().Lookup(
        "cafef00dcafef00d", names::kMetricCacheSolveHits,
        names::kMetricCacheSolveMisses);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->verdict, "UNSAT");
    EXPECT_EQ(hit->method, "lcta_emptiness");
    EXPECT_EQ(hit->steps, 42u);
  }
  std::remove(file.c_str());
}

TEST(SolveCacheTest, UnknownIsNeverCachedOrServed) {
  CacheGuard guard(MemoryOnly());
  SolveCache& cache = SolveCache::Instance();

  // Unit level: Insert() drops non-definite verdicts outright.
  SolveCacheEntry unknown;
  unknown.verdict = "UNKNOWN";
  cache.Insert("k_unknown", unknown, nullptr, names::kModFrontendEnumerate);
  SolveCacheEntry error;
  error.verdict = "ERROR:deadline";
  cache.Insert("k_error", error, nullptr, names::kModFrontendEnumerate);
  for (const char* key : {"k_unknown", "k_error"}) {
    EXPECT_FALSE(cache
                     .Lookup(key, names::kMetricCacheSolveHits,
                             names::kMetricCacheSolveMisses)
                     .has_value());
  }

  // Facade level: a budget-starved solve degrades to kUnknown, and the
  // second identical query must run cold again (a miss, never a hit).
  Alphabet labels;
  Formula f = *ParseFormula("exists x. exists y. (a(x) & b(y))", &labels);
  SolverOptions opt;
  opt.max_model_nodes = 1;  // needs two nodes: bound exhausts, kUnknown
  SolveCache::Stats before = cache.stats();
  Result<SatResult> first = CheckFo2SatisfiabilityBounded(f, opt);
  Result<SatResult> second = CheckFo2SatisfiabilityBounded(f, opt);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->verdict, SatVerdict::kUnknown);
  EXPECT_EQ(second->verdict, SatVerdict::kUnknown);
  EXPECT_EQ(cache.stats().solve_misses, before.solve_misses + 2);
  EXPECT_EQ(cache.stats().solve_hits, before.solve_hits);
}

TEST(SolveCacheTest, LruByteBudgetEvictsOldestEntries) {
  SolveCacheConfig config;
  config.enabled = true;
  config.max_bytes = 2048;
  CacheGuard guard(config);
  SolveCache& cache = SolveCache::Instance();

  SolveCacheEntry entry;
  entry.verdict = "UNSAT";
  entry.method = "counting_abstraction";
  entry.payload = std::string(256, 'x');
  for (int i = 0; i < 64; ++i) {
    cache.Insert("key" + std::to_string(i), entry, nullptr,
                 names::kModFrontendEnumerate);
  }
  SolveCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, config.max_bytes);
  EXPECT_GT(stats.solve_evictions, 0u);
  // LRU: the oldest key is gone, the newest still resident.
  EXPECT_FALSE(cache
                   .Lookup("key0", names::kMetricCacheSolveHits,
                           names::kMetricCacheSolveMisses)
                   .has_value());
  EXPECT_TRUE(cache
                  .Lookup("key63", names::kMetricCacheSolveHits,
                          names::kMetricCacheSolveMisses)
                  .has_value());
}

TEST(SolveCacheTest, KeyMatchesQueryLogInputHash) {
  // 16 lowercase hex digits, deterministic, facade-separated.
  std::string k1 = SolveCacheKey("frontend.sat", "body");
  std::string k2 = SolveCacheKey("frontend.dnf_sat", "body");
  EXPECT_EQ(k1.size(), 16u);
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, SolveCacheKey("frontend.sat", "body"));
}

TEST(HashConsingTest, TenThousandEqualFormulasShareOneNode) {
  Alphabet labels;
  Formula base = *ParseFormula("forall x. (a(x) | b(x))", &labels);
  const InternHandle handle = InternFormula(base);
  ASSERT_NE(handle, kInvalidInternHandle);
  const size_t resident = SharedInternTable::Instance().size();

  // 10k structurally equal formulas, freshly parsed each time: every one
  // maps to the same handle (an O(1) integer compare) and the table does
  // not grow by a single record.
  for (int i = 0; i < 10000; ++i) {
    Alphabet fresh;
    Formula f = *ParseFormula("forall x. (a(x) | b(x))", &fresh);
    ASSERT_EQ(InternFormula(f), handle) << "iteration " << i;
  }
  EXPECT_EQ(SharedInternTable::Instance().size(), resident);
}

TEST(HashConsingTest, CanonicalizationMergesCommutedOperands) {
  // One shared alphabet: commuting the operands must not renumber the
  // symbols, or the comparison would be vacuous.
  Alphabet labels;
  Formula base = *ParseFormula("forall x. (a(x) | b(x))", &labels);
  Formula commuted = *ParseFormula("forall x. (b(x) | a(x))", &labels);
  Formula other = *ParseFormula("forall x. a(x)", &labels);
  EXPECT_EQ(InternFormula(base), InternFormula(commuted));
  EXPECT_EQ(CanonicalFormulaHash(base), CanonicalFormulaHash(commuted));
  EXPECT_NE(InternFormula(base), InternFormula(other));
}

}  // namespace
}  // namespace fo2dt
