/// \file lcta.h
/// \brief Linear constraint tree automata and their emptiness (Theorem 2).
///
/// An LCTA is a nondeterministic unranked tree automaton A together with a
/// linear constraint over A's states; it accepts a tree when some accepting
/// run ρ satisfies the constraint on its Parikh image (|ρ⁻¹(q)|)_q.
///
/// Emptiness is decided through the Parikh image of accepting runs: a run is
/// an in-tree over transition usages (every non-root node has exactly one
/// outgoing constraint — δh to its next sibling or δv to its parent), so a
/// vector of usage counts extends to a run iff it satisfies local flow
/// equations plus connectivity of the used-transition graph (the classical
/// existential-Presburger characterization of context-free Parikh images,
/// Verma–Seidl–Schwentick [21]). We solve the flow system with the exact
/// branch-and-bound ILP and add connectivity cuts lazily, which keeps the
/// boolean structure small in practice; the procedure is sound and complete,
/// with a node budget guarding against pathological cut enumeration.

#pragma once

#include "automata/tree_automaton.h"
#include "common/execution_context.h"
#include "solverlp/linear.h"

namespace fo2dt {

/// \brief A linear constraint tree automaton.
///
/// In `constraint`, variable v < Q := automaton.num_states() denotes the
/// number of nodes the run maps to state v (the paper's |ρ⁻¹(q)|).
///
/// Two extensions used by the puzzle counting abstraction:
/// * when `use_symbol_counts` is set, variables [Q, Q + num_symbols) denote
///   the number of nodes labeled with each symbol;
/// * `num_aux` further existentially quantified variables follow (ids
///   [Q + (symbols?), … )), unconstrained except by `constraint` itself.
struct Lcta {
  TreeAutomaton automaton;
  LinearConstraint constraint = LinearConstraint::True();
  bool use_symbol_counts = false;
  VarId num_aux = 0;

  /// First id after the user-visible variable block.
  ///
  /// Precondition: the block fits VarId — callers on untrusted inputs must
  /// validate through CheckedNumUserVars() first (hostile bodies can send
  /// num_aux near UINT32_MAX, and unchecked uint32 arithmetic here would
  /// silently wrap into a small, wrong variable layout).
  VarId NumUserVars() const {
    return static_cast<VarId>(automaton.num_states() +
                              (use_symbol_counts ? automaton.num_symbols() : 0) +
                              num_aux);
  }

  /// Overflow-checked NumUserVars: InvalidArgument when the user-visible
  /// block cannot fit the VarId space with headroom left for the production
  /// variables the Parikh grammar appends after it.
  Result<VarId> CheckedNumUserVars() const {
    // Half the VarId space for user variables, half reserved for grammar
    // production variables (grammar construction would otherwise need its
    // own overflow check on base + |productions|).
    constexpr uint64_t kMaxUserVars = uint64_t{1} << 31;
    const uint64_t total =
        static_cast<uint64_t>(automaton.num_states()) +
        (use_symbol_counts ? static_cast<uint64_t>(automaton.num_symbols())
                           : 0) +
        static_cast<uint64_t>(num_aux);
    if (total > kMaxUserVars) {
      return Status::InvalidArgument(
          "LCTA variable block overflows the solver id space (num_states + "
          "symbol counts + num_aux too large)");
    }
    return static_cast<VarId>(total);
  }
};

/// \brief Outcome of an LCTA emptiness check.
struct LctaEmptinessResult {
  bool empty = true;
  /// When nonempty: a satisfying assignment of state counts (n_q per state).
  IntAssignment state_counts;
  /// Solver effort (for the Theorem-2 benchmark).
  size_t ilp_nodes = 0;
  size_t connectivity_cuts = 0;
};

/// \brief Tuning for the emptiness solver.
struct LctaOptions {
  /// Budget per ILP invocation.
  size_t max_ilp_nodes = 200000;
  /// Maximum lazy connectivity cuts before giving up (ResourceExhausted).
  size_t max_cuts = 200;
  /// Cap on DNF branches of the user constraint (and on the branch set kept
  /// across cut rounds).
  size_t max_dnf_branches = 4096;
  /// Worker threads, split between the accepting-root fan-out and the ILP
  /// DNF fan-out (0 = hardware concurrency). The verdict and witness counts
  /// are identical for every thread count: the smallest qualifying root (and
  /// within it the smallest-index DNF branch) always wins.
  size_t num_threads = 0;
  /// Cooperative cancellation for the whole emptiness check (inert by
  /// default). Fires as StatusCode::kCancelled, never a verdict.
  CancellationToken cancel_token;
  /// Optional execution governor (wall-clock deadline, caller cancellation,
  /// effort accounting); must outlive the check. Null = ungoverned.
  const ExecutionContext* exec = nullptr;
};

/// \brief LCTA emptiness (Theorem 2). Sound and complete; may return
/// ResourceExhausted when budgets are exceeded (never a wrong verdict).
[[nodiscard]] Result<LctaEmptinessResult> CheckLctaEmptiness(const Lcta& lcta,
                                               const LctaOptions& options = {});

/// \brief Brute-force reference: search for an accepted tree of size at most
/// \p max_nodes over all shapes, labelings and runs. Exponential; used for
/// differential testing and as a witness extractor for small instances.
/// Returns the witness tree if found; NotFound if no tree of bounded size is
/// accepted (which does not prove emptiness). The search is exponential, so
/// it polls \p exec (when given) for deadline/cancellation between runs.
Result<DataTree> FindLctaWitnessBounded(const Lcta& lcta, size_t max_nodes,
                                        const ExecutionContext* exec = nullptr);

/// Enumerates the parent-array representations of all ordered unranked tree
/// shapes with exactly \p num_nodes nodes (node 0 is the root; parents precede
/// children). Exposed for reuse by the puzzle bounded solver and tests.
std::vector<std::vector<uint32_t>> EnumerateTreeShapes(size_t num_nodes);

}  // namespace fo2dt

