#include "lcta/lcta.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "automata/automaton_io.h"
#include "common/arena.h"
#include "common/bitset.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "common/strings.h"
#include "common/thread_stats.h"
#include "common/trace.h"
#include "solverlp/ilp.h"

namespace fo2dt {

namespace {

constexpr const char* kLctaModule = names::kModLctaEmptiness;
constexpr const char* kCutModule = names::kModLctaCuts;

/// Accepting runs of a hedge automaton are exactly the derivation trees of an
/// ordinary context-free grammar with nonterminals
///   N_q      — a node carrying state q (with its whole subtree),
///   C_q      — the children chain of a node carrying state q,
///   T_{p,q}  — the rest of a chain after a node with state p, in a chain
///              that must close with a δv transition into q,
/// and productions
///   PLeaf[q]      : N_q → ε                  (q initial; the node is a leaf)
///   PInner[q]     : N_q → C_q                (the node has children)
///   PStart[q,p]   : C_q → N_p T_{p,q}        (first child has state p; p ∉ NF)
///   PEnd[i]       : T_{p,q} → ε              (δv transition i = (p,a,q))
///   PStep[i,q]    : T_{p,q} → N_{p'} T_{p',q} (δh transition i = (p,a,p'))
/// The start symbol is N_{root state}; the root's label is chosen from F.
///
/// By the classical characterization of context-free Parikh images
/// (Esparza; Verma–Seidl–Schwentick [21]), a vector of production counts
/// extends to a derivation tree iff it satisfies the flow equations and the
/// used-production graph is connected to the start symbol. We enforce flow
/// directly and connectivity by lazy cuts.
///
/// Tails are instantiated *sparsely*: T_{p,q} exists only when p can still
/// reach, along δh edges, some state with a δv transition into q. Without
/// this the grammar is Θ(|Q|²)-dense and intractable for schema automata.
struct Production {
  VarId var;
  size_t lhs;
  size_t rhs[2];
  int num_rhs;
  /// Symbol this production reads (PEnd/PStep carry the label of the node
  /// whose outgoing transition they encode); kNoSymbol otherwise.
  Symbol reads = kNoSymbol;
  /// For PLeaf/PInner: the state whose node count this production feeds.
  TreeState node_state = 0;
  bool counts_node = false;
};

constexpr size_t kNoTail = static_cast<size_t>(-1);

struct Grammar {
  size_t q = 0;
  VarId base = 0;       // first production variable id
  size_t num_nonterminals = 0;
  std::vector<Production> productions;

  // Nonterminal ids: N_q = q | C_q = q + s | tails mapped sparsely through a
  // flat p * q + parent index (kNoTail when T_{p,parent} is not instantiated).
  size_t NT_Node(TreeState s) const { return s; }
  size_t NT_Chain(TreeState s) const { return q + s; }
  std::vector<size_t> tail_ids;

  VarId TotalVars() const {
    return base + static_cast<VarId>(productions.size());
  }
};

Grammar BuildGrammar(const TreeAutomaton& a, VarId base) {
  Grammar g;
  g.q = a.num_states();
  g.base = base;
  g.num_nonterminals = 2 * g.q;

  const auto& hor = a.horizontal();
  const auto& ver = a.vertical();

  // Sparse tail support: for each parent state q, the set of chain states p
  // from which a δv into q is still reachable along δh edges. Backward
  // closure from δv-sources of q over pre-indexed reverse δh adjacency, so
  // each closure visits only incident edges instead of scanning all of δh
  // per work item.
  std::vector<std::vector<TreeState>> rev_hor(g.q);
  for (const auto& [p, sym, pp] : hor) {
    (void)sym;
    rev_hor[pp].push_back(p);
  }
  std::vector<std::vector<TreeState>> ver_sources(g.q);
  for (const auto& [p, sym, tgt] : ver) {
    (void)sym;
    ver_sources[tgt].push_back(p);
  }
  // The support matrix is |Q|² bits of pure scratch: bit rows out of the
  // solve arena (one |Q|-bit row per parent) instead of a vector-of-vectors
  // of bytes.
  const size_t srow = (g.q + 63) / 64;
  SolveArena& arena = SolveArena::ThreadLocal();
  SolveArena::Frame arena_frame(arena);
  uint64_t* support = arena.AllocateArray<uint64_t>(g.q * srow);
  auto support_test = [&](TreeState parent, TreeState p) {
    return (support[parent * srow + p / 64] >> (p % 64)) & 1;
  };
  auto support_set = [&](TreeState parent, TreeState p) {
    support[parent * srow + p / 64] |= uint64_t{1} << (p % 64);
  };
  for (TreeState parent = 0; parent < g.q; ++parent) {
    std::vector<TreeState> work;
    for (TreeState p : ver_sources[parent]) {
      if (!support_test(parent, p)) {
        support_set(parent, p);
        work.push_back(p);
      }
    }
    while (!work.empty()) {
      TreeState cur = work.back();
      work.pop_back();
      for (TreeState p : rev_hor[cur]) {
        if (!support_test(parent, p)) {
          support_set(parent, p);
          work.push_back(p);
        }
      }
    }
  }

  g.tail_ids.assign(g.q * g.q, kNoTail);
  auto tail_id = [&g](TreeState p, TreeState parent) {
    size_t& slot = g.tail_ids[static_cast<size_t>(p) * g.q + parent];
    if (slot == kNoTail) slot = g.num_nonterminals++;
    return slot;
  };

  VarId next = base;
  for (TreeState s = 0; s < g.q; ++s) {
    if (a.IsInitial(s)) {
      Production p{next++, g.NT_Node(s), {0, 0}, 0};
      p.node_state = s;
      p.counts_node = true;
      g.productions.push_back(p);
    }
    {
      Production p{next++, g.NT_Node(s), {g.NT_Chain(s), 0}, 1};
      p.node_state = s;
      p.counts_node = true;
      g.productions.push_back(p);
    }
    for (TreeState first = 0; first < g.q; ++first) {
      if (a.IsNonFirst(first) || !support_test(s, first)) continue;
      Production p{next++,
                   g.NT_Chain(s),
                   {g.NT_Node(first), tail_id(first, s)},
                   2};
      g.productions.push_back(p);
    }
  }
  for (const auto& [p, sym, tgt] : ver) {
    Production prod{next++, tail_id(p, tgt), {0, 0}, 0};
    prod.reads = sym;
    g.productions.push_back(prod);
  }
  for (const auto& [p, sym, pp] : hor) {
    for (TreeState parent = 0; parent < g.q; ++parent) {
      if (!support_test(parent, p) || !support_test(parent, pp)) continue;
      Production prod{next++,
                      tail_id(p, parent),
                      {g.NT_Node(pp), tail_id(pp, parent)},
                      2};
      prod.reads = sym;
      g.productions.push_back(prod);
    }
  }
  return g;
}

/// Flow equations, node-count and optional symbol-count definitions for a
/// root with state `root` and label `root_label`.
LinearConstraint BuildFlowConstraints(const TreeAutomaton& a, const Grammar& g,
                                      TreeState root, Symbol root_label,
                                      bool use_symbol_counts) {
  std::vector<LinearExpr> flow(g.num_nonterminals);
  for (const Production& p : g.productions) {
    flow[p.lhs].AddTerm(p.var, BigInt(1));
    for (int i = 0; i < p.num_rhs; ++i) {
      flow[p.rhs[i]].AddTerm(p.var, BigInt(-1));
    }
  }
  flow[g.NT_Node(root)].AddConstant(BigInt(-1));

  std::vector<LinearConstraint> parts;
  parts.reserve(g.num_nonterminals + g.q + a.num_symbols());
  for (auto& e : flow) parts.push_back(LinearConstraint::Eq(std::move(e)));

  // n_s == expansions of N_s.
  for (TreeState s = 0; s < g.q; ++s) {
    LinearExpr def = LinearExpr::Variable(static_cast<VarId>(s));
    for (const Production& p : g.productions) {
      if (p.counts_node && p.node_state == s) def.AddTerm(p.var, BigInt(-1));
    }
    parts.push_back(LinearConstraint::Eq(std::move(def)));
  }
  if (use_symbol_counts) {
    // Every non-root node's label is read by exactly one PEnd/PStep usage.
    for (Symbol sym = 0; sym < a.num_symbols(); ++sym) {
      LinearExpr def = LinearExpr::Variable(static_cast<VarId>(g.q + sym));
      for (const Production& p : g.productions) {
        if (p.reads == sym) def.AddTerm(p.var, BigInt(-1));
      }
      if (sym == root_label) def.AddConstant(BigInt(-1));
      parts.push_back(LinearConstraint::Eq(std::move(def)));
    }
  }
  return LinearConstraint::And(std::move(parts));
}

/// Used nonterminals that the used-production graph cannot reach from the
/// start symbol; empty means the solution is realizable.
std::vector<size_t> UnreachableUsedNonterminals(const Grammar& g,
                                                const IntAssignment& sol,
                                                TreeState root) {
  SolveArena& arena = SolveArena::ThreadLocal();
  SolveArena::Frame arena_frame(arena);
  char* used = arena.AllocateArray<char>(g.num_nonterminals);
  for (const Production& p : g.productions) {
    if (!sol[p.var].IsZero()) used[p.lhs] = 1;
  }
  char* reach = arena.AllocateArray<char>(g.num_nonterminals);
  reach[g.NT_Node(root)] = 1;
  bool changed = true;
  // fo2dt-lint: allow(no-checkpoint, monotone fixpoint with at most one pass per nonterminal)
  while (changed) {
    changed = false;
    for (const Production& p : g.productions) {
      if (sol[p.var].IsZero() || !reach[p.lhs]) continue;
      for (int i = 0; i < p.num_rhs; ++i) {
        if (!reach[p.rhs[i]]) {
          reach[p.rhs[i]] = 1;
          changed = true;
        }
      }
    }
  }
  std::vector<size_t> bad;
  for (size_t x = 0; x < g.num_nonterminals; ++x) {
    if (used[x] && !reach[x]) bad.push_back(x);
  }
  return bad;
}

/// The overall stop state of an emptiness check: the caller's token, then
/// the governor (which also covers its own token and the deadline).
Status OverallStop(const LctaOptions& options) {
  if (options.cancel_token.IsCancelled()) {
    return Status::Cancelled("LCTA emptiness cancelled by caller",
                             ExecutionContext::CancelReason(kLctaModule));
  }
  if (options.exec != nullptr) return options.exec->Check(kLctaModule);
  return Status::OK();
}

/// Cut: either no U-nonterminal is expanded, or some used production outside
/// U produces into U.
LinearConstraint ConnectivityCut(const Grammar& g,
                                 const std::vector<size_t>& u) {
  SolveArena& arena = SolveArena::ThreadLocal();
  SolveArena::Frame arena_frame(arena);
  char* in_u = arena.AllocateArray<char>(g.num_nonterminals);
  for (size_t x : u) in_u[x] = 1;
  LinearExpr expansions;
  LinearExpr crossing;
  for (const Production& p : g.productions) {
    if (in_u[p.lhs]) expansions.AddTerm(p.var, BigInt(1));
    if (!in_u[p.lhs]) {
      for (int i = 0; i < p.num_rhs; ++i) {
        if (in_u[p.rhs[i]]) {
          crossing.AddTerm(p.var, BigInt(1));
          break;
        }
      }
    }
  }
  crossing.AddConstant(BigInt(-1));  // crossing >= 1
  return LinearConstraint::Or(LinearConstraint::Eq(std::move(expansions)),
                              LinearConstraint::Ge(std::move(crossing)));
}

/// Per-root outcome of the cut loop (one slot per accepting root choice).
struct RootOutcome {
  enum Kind { kPending, kEmpty, kNonEmpty, kAbandoned };
  Kind kind = kPending;
  IntAssignment state_counts;
  size_t ilp_nodes = 0;
  size_t connectivity_cuts = 0;
};

/// Runs the lazy-cut loop for one accepting root choice. The conjunction is
/// converted to DNF exactly once; each cut round multiplies the *surviving*
/// branch set by the cut's two DNF branches (a branch proven infeasible stays
/// infeasible when atoms are added, so it is pruned instead of re-solved).
Status SolveRoot(const Lcta& lcta, const Grammar& g, TreeState root,
                 Symbol root_label, const LctaOptions& options,
                 const IlpOptions& ilp_options, RootOutcome* out) {
  FO2DT_TRACE_SPAN(names::kSpanLctaSolveRoot);
  // Self time = flow building + cut machinery (the nested ILP solves carry
  // their own kIlp timers); effort = cut rounds.
  ScopedPhaseTimer phase_timer(Phase::kLcta, options.exec);
  ScopedPhaseMemory phase_memory(Phase::kLcta, options.exec);
  // This worker thread's arena scratch (DNF cut scratch, connectivity
  // fixpoints, run-set rows) is billed to this solve's governor while the
  // root is being worked.
  ScopedArenaAccounting arena_accounting(options.exec, kLctaModule);
  const TreeAutomaton& a = lcta.automaton;
  LinearConstraint flow =
      BuildFlowConstraints(a, g, root, root_label, lcta.use_symbol_counts);
  FO2DT_ASSIGN_OR_RETURN(
      std::vector<LinearSystem> branches,
      LinearConstraint::And(flow, lcta.constraint)
          .ToDnf(options.max_dnf_branches));
  for (size_t cut_round = 0;; ++cut_round) {
    FO2DT_TRACE_SPAN(names::kSpanLctaCutRound);
    phase_timer.AddEffort(1);
    if (cut_round > options.max_cuts) {
      return Status::ResourceExhausted(
          StringFormat("LCTA emptiness: connectivity cut budget exceeded in "
                       "%s: %zu of %zu cut rounds",
                       kCutModule, cut_round, options.max_cuts),
          StopReason{StopKind::kCutBudget, kCutModule, cut_round,
                     options.max_cuts});
    }
    if (options.exec != nullptr) {
      options.exec->counters().lcta_cut_rounds.fetch_add(
          1, std::memory_order_relaxed);
    }
    // Failpoint: inject an error into the cut loop (tests prove a failing
    // cut round unwinds as a clean Status through the root fan-out).
    if (Failpoints::CompiledIn()) {
      Status injected;
      FO2DT_FAILPOINT(names::kFpLctaCutRound, &injected);
      if (!injected.ok()) return injected;
    }
    // Unamortized per-round governor check: a deadline that dies between
    // cut rounds is attributed to the cut loop ("lcta.cuts"), not to
    // whichever ILP stumbled on it hundreds of pivots later.
    if (options.exec != nullptr) {
      FO2DT_RETURN_NOT_OK(options.exec->Check(kCutModule));
    }
    FO2DT_ASSIGN_OR_RETURN(
        DnfSolveResult r,
        IlpSolver::SolveDnf(branches, g.TotalVars(), ilp_options));
    out->ilp_nodes += r.solution.nodes_explored;
    if (!r.solution.feasible) {
      out->kind = RootOutcome::kEmpty;  // this root choice yields nothing
      return Status::OK();
    }
    std::vector<size_t> u =
        UnreachableUsedNonterminals(g, r.solution.assignment, root);
    if (u.empty()) {
      out->kind = RootOutcome::kNonEmpty;
      out->state_counts.assign(r.solution.assignment.begin(),
                               r.solution.assignment.begin() +
                                   static_cast<std::ptrdiff_t>(a.num_states()));
      return Status::OK();
    }
    FO2DT_ASSIGN_OR_RETURN(std::vector<LinearSystem> cut_dnf,
                           ConnectivityCut(g, u).ToDnf(2));
    std::vector<LinearSystem> next;
    for (size_t i = 0; i < branches.size(); ++i) {
      if (r.outcomes[i] == BranchOutcome::kInfeasible) continue;
      for (const LinearSystem& cut : cut_dnf) {
        LinearSystem extended = branches[i];
        extended.insert(extended.end(), cut.begin(), cut.end());
        next.push_back(std::move(extended));
      }
    }
    if (next.size() > options.max_dnf_branches) {
      return Status::ResourceExhausted(
          StringFormat("LCTA emptiness: DNF branch budget exceeded in %s: "
                       "%zu of %zu branches after cut %zu",
                       kCutModule, next.size(), options.max_dnf_branches,
                       cut_round),
          StopReason{StopKind::kBranchBudget, kCutModule, next.size(),
                     options.max_dnf_branches});
    }
    branches = std::move(next);
    ++out->connectivity_cuts;
  }
}

/// Sub-memo key for a whole emptiness check: the canonical automaton text
/// (transition-sorted), the constraint, the count-variable layout, and every
/// option that can change the reported effort counters (budgets, threads) —
/// so a memo hit is bit-for-bit the result the cold check would compute.
std::string LctaEmptinessMemoKey(const Lcta& lcta, const LctaOptions& options) {
  std::string key = StringFormat(
      "lcta.emptiness:%d:%u:%llu:%llu:%llu:%llu\n",
      lcta.use_symbol_counts ? 1 : 0, lcta.num_aux,
      static_cast<unsigned long long>(options.max_ilp_nodes),
      static_cast<unsigned long long>(options.max_cuts),
      static_cast<unsigned long long>(options.max_dnf_branches),
      static_cast<unsigned long long>(options.num_threads));
  key += lcta.constraint.ToString();
  key += '\n';
  key += TreeAutomatonToText(lcta.automaton);
  return key;
}

bool ParseMemoU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Memo value: "<empty 0|1> <ilp_nodes> <cuts>" then one signed decimal per
/// state count. The inverse returns false on malformation, which sends the
/// caller down the cold path instead of failing.
std::string SerializeEmptinessResult(const LctaEmptinessResult& r) {
  std::string out = StringFormat(
      "%d %llu %llu", r.empty ? 1 : 0,
      static_cast<unsigned long long>(r.ilp_nodes),
      static_cast<unsigned long long>(r.connectivity_cuts));
  for (const BigInt& v : r.state_counts) out += " " + v.ToString();
  return out;
}

bool ParseEmptinessResult(const std::string& text, LctaEmptinessResult* out) {
  std::vector<std::string> tokens = SplitString(text, ' ');
  if (tokens.size() < 3) return false;
  if (tokens[0] != "0" && tokens[0] != "1") return false;
  out->empty = tokens[0] == "1";
  uint64_t nodes = 0;
  uint64_t cuts = 0;
  if (!ParseMemoU64(tokens[1], &nodes) || !ParseMemoU64(tokens[2], &cuts)) {
    return false;
  }
  out->ilp_nodes = static_cast<size_t>(nodes);
  out->connectivity_cuts = static_cast<size_t>(cuts);
  out->state_counts.clear();
  for (size_t i = 3; i < tokens.size(); ++i) {
    Result<BigInt> v = BigInt::FromString(tokens[i]);
    if (!v.ok()) return false;
    out->state_counts.push_back(std::move(*v));
  }
  return true;
}

/// The cold emptiness check; CheckLctaEmptiness below may serve the whole
/// result from the sub-result memo instead of running this.
Result<LctaEmptinessResult> CheckLctaEmptinessImpl(const Lcta& lcta,
                                                   const LctaOptions& options) {
  FO2DT_TRACE_SPAN(names::kModLctaEmptiness);
  // Facade timer: validation + shared grammar construction. Closed before
  // the parallel fan-out below — each worker's SolveRoot runs its own kLcta
  // timer, and an open main-thread timer would bill the join wait to kLcta,
  // double-counting the workers' time.
  std::optional<ScopedPhaseTimer> phase_timer;
  phase_timer.emplace(Phase::kLcta, options.exec);
  ScopedPhaseMemory phase_memory(Phase::kLcta, options.exec);
  // Main-thread arena accounting for the shared grammar build; each fan-out
  // worker's SolveRoot installs its own attachment for its thread's arena.
  ScopedArenaAccounting arena_accounting(options.exec, kLctaModule);
  const TreeAutomaton& a = lcta.automaton;
  FO2DT_ASSIGN_OR_RETURN(const VarId num_user_vars, lcta.CheckedNumUserVars());
  if (lcta.constraint.NumVarsSpanned() > num_user_vars) {
    return Status::InvalidArgument(
        "LCTA constraint mentions a variable beyond the user block");
  }
  // Grammar and flow structure are built once for the whole check and shared
  // (read-only) by every root worker.
  Grammar g = BuildGrammar(a, num_user_vars);
  LctaEmptinessResult out;
  out.empty = true;

  // Without symbol counting the flow system depends only on the root state,
  // so accepting pairs sharing a state are handled once; with symbol
  // counting the root's label contributes to a count and every pair matters.
  std::vector<std::pair<TreeState, Symbol>> roots;
  for (const auto& [s, sym] : a.accepting()) {
    if (a.IsNonFirst(s)) continue;  // the root has no siblings
    roots.emplace_back(s, lcta.use_symbol_counts ? sym : Symbol{0});
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  if (roots.empty()) return out;

  const size_t num_threads =
      options.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  const size_t root_workers = std::min(num_threads, roots.size());

  IlpOptions ilp_options;
  ilp_options.max_nodes = options.max_ilp_nodes;
  ilp_options.max_dnf_branches = options.max_dnf_branches;
  ilp_options.num_threads = std::max<size_t>(1, num_threads / root_workers);
  ilp_options.cancel_token = options.cancel_token;
  ilp_options.exec = options.exec;

  if (root_workers <= 1) {
    for (const auto& [root, root_label] : roots) {
      FO2DT_RETURN_NOT_OK(OverallStop(options));
      RootOutcome o;
      FO2DT_RETURN_NOT_OK(
          SolveRoot(lcta, g, root, root_label, options, ilp_options, &o));
      out.ilp_nodes += o.ilp_nodes;
      out.connectivity_cuts += o.connectivity_cuts;
      if (o.kind == RootOutcome::kNonEmpty) {
        out.empty = false;
        out.state_counts = std::move(o.state_counts);
        return out;
      }
    }
    return out;
  }

  phase_timer.reset();  // workers time their own SolveRoot calls

  // Parallel root fan-out, first-nonempty-wins with deterministic selection,
  // coordinated by FirstWinsFanout: its terminal index is the smallest root
  // index known terminal (nonempty or error); roots above it are abandoned
  // via their branch tokens, roots below it always complete, so the
  // ascending scan below is schedule-independent.
  struct Slot {
    RootOutcome outcome;
    Status error;  // non-OK turns the slot into an error terminal
  };
  std::vector<Slot> slots(roots.size());
  // atomic: work-stealing ticket; relaxed fetch_add hands each root index
  // to exactly one worker, slot writes are ordered by the thread join.
  std::atomic<size_t> next{0};
  FirstWinsFanout fanout(roots.size(), options.cancel_token);
  auto worker = [&]() {
    // Workers write thread-local solver counters; declare so that
    // ThreadStats aggregation can assert quiescence (the join below orders
    // this destructor before any post-solve Aggregate()).
    ScopedStatsWorker stats_worker;
    for (;;) {
      if (!OverallStop(options).ok()) return;
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= roots.size()) return;
      Slot& slot = slots[i];
      if (fanout.Abandoned(i)) {
        slot.outcome.kind = RootOutcome::kAbandoned;
        continue;
      }
      IlpOptions my_ilp = ilp_options;
      my_ilp.cancel_token = fanout.TokenFor(i);
      Status st = SolveRoot(lcta, g, roots[i].first, roots[i].second, options,
                            my_ilp, &slot.outcome);
      if (!st.ok()) {
        if (st.IsCancelled()) {
          slot.outcome.kind = RootOutcome::kAbandoned;
          continue;
        }
        slot.error = st;
        fanout.MarkTerminal(i);
        continue;
      }
      if (slot.outcome.kind == RootOutcome::kNonEmpty) fanout.MarkTerminal(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(root_workers - 1);
  for (size_t t = 1; t < root_workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();

  // All workers are joined: safe to aggregate stats and scan slots.
  FO2DT_RETURN_NOT_OK(OverallStop(options));

  // Exact counter aggregation: summed single-threaded after the join.
  for (const Slot& slot : slots) {
    out.ilp_nodes += slot.outcome.ilp_nodes;
    out.connectivity_cuts += slot.outcome.connectivity_cuts;
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.error.ok()) return slot.error;
    switch (slot.outcome.kind) {
      case RootOutcome::kNonEmpty:
        out.empty = false;
        out.state_counts = std::move(slot.outcome.state_counts);
        return out;
      case RootOutcome::kEmpty:
        break;
      case RootOutcome::kPending:
      case RootOutcome::kAbandoned:
        // Every root below the smallest terminal index completes; reaching an
        // unsolved slot here means that invariant broke.
        return Status::Internal("unsolved root below the terminal index");
    }
  }
  return out;
}

}  // namespace

Result<LctaEmptinessResult> CheckLctaEmptiness(const Lcta& lcta,
                                               const LctaOptions& options) {
  SolveCache& cache = SolveCache::Instance();
  if (!cache.enabled()) return CheckLctaEmptinessImpl(lcta, options);
  // Whole-check memo: the dominant cost of repeated traffic (xpath and
  // constraint workloads re-derive identical product automata) is the
  // ILP/cut loop, so one memo hit here skips the entire emptiness pipeline.
  const std::string memo_key = LctaEmptinessMemoKey(lcta, options);
  std::optional<std::string> memo = cache.LookupSub(
      memo_key, names::kMetricCacheSubHits, names::kMetricCacheSubMisses);
  if (memo.has_value()) {
    LctaEmptinessResult served;
    if (ParseEmptinessResult(*memo, &served)) return served;
  }
  Result<LctaEmptinessResult> result = CheckLctaEmptinessImpl(lcta, options);
  if (result.ok()) {
    // Only completed checks are memoized; ResourceExhausted must be retried
    // with whatever budgets the next caller holds (mirrors kUnknown-never-
    // cached at the verdict level).
    cache.InsertSub(memo_key, SerializeEmptinessResult(*result), options.exec,
                    kLctaModule);
  }
  return result;
}

std::vector<std::vector<uint32_t>> EnumerateTreeShapes(size_t num_nodes) {
  // shapes[n] = parent arrays of n-node trees; forests built recursively.
  // A forest with k nodes is a first subtree of size s plus a forest of
  // size k - s; parent arrays use creation order (parents precede children).
  struct Builder {
    std::vector<std::vector<std::vector<uint32_t>>> tree_memo;  // by size

    const std::vector<std::vector<uint32_t>>& Trees(size_t n) {
      // fo2dt-lint: allow(no-checkpoint, memo resize bounded by requested size n)
      while (tree_memo.size() <= n) tree_memo.emplace_back();
      if (n == 0 || !tree_memo[n].empty()) return tree_memo[n];
      if (n == 1) {
        tree_memo[1] = {{kNoNode}};
        return tree_memo[1];
      }
      std::vector<std::vector<uint32_t>> out;
      std::vector<std::vector<uint32_t>> forests = Forests(n - 1);
      for (auto& f : forests) {
        std::vector<uint32_t> parents = {kNoNode};
        for (uint32_t p : f) {
          // Forest arrays mark component roots with kNoNode; shift by one
          // and attach component roots under the new root 0.
          parents.push_back(p == kNoNode ? 0 : p + 1);
        }
        out.push_back(std::move(parents));
      }
      tree_memo[n] = std::move(out);
      return tree_memo[n];
    }

    std::vector<std::vector<uint32_t>> Forests(size_t k) {
      if (k == 0) return {{}};
      std::vector<std::vector<uint32_t>> out;
      for (size_t s = 1; s <= k; ++s) {
        for (const auto& first : Trees(s)) {
          for (const auto& rest : Forests(k - s)) {
            std::vector<uint32_t> combined = first;  // root at index 0
            for (uint32_t p : rest) {
              combined.push_back(p == kNoNode ? kNoNode
                                              : p + static_cast<uint32_t>(s));
            }
            out.push_back(std::move(combined));
          }
        }
      }
      return out;
    }
  };
  Builder b;
  return b.Trees(num_nodes);
}

Result<DataTree> FindLctaWitnessBounded(const Lcta& lcta, size_t max_nodes,
                                        const ExecutionContext* exec) {
  FO2DT_TRACE_SPAN(names::kSpanLctaWitnessBruteforce);
  ScopedPhaseTimer phase_timer(Phase::kLcta, exec);
  ScopedPhaseMemory phase_memory(Phase::kLcta, exec);
  ExecCheckpoint checkpoint(exec, nullptr, kLctaModule);
  const TreeAutomaton& a = lcta.automaton;
  const size_t num_symbols = a.num_symbols();
  if (lcta.num_aux > 0) {
    return Status::NotImplemented(
        "brute-force witness search does not support auxiliary variables");
  }
  for (size_t n = 1; n <= max_nodes; ++n) {
    for (const auto& parents : EnumerateTreeShapes(n)) {
      DataTree t;
      (void)t.CreateRoot(0, 0);
      for (size_t v = 1; v < n; ++v) {
        (void)t.AppendChild(parents[v], 0, 0);
      }
      // Enumerate labelings (odometer over symbols).
      std::vector<Symbol> labels(n, 0);
      for (;;) {
        for (NodeId v = 0; v < n; ++v) t.set_label(v, labels[v]);
        auto runs_ok = [&]() -> Result<bool> {
          // Odometer over per-node states; n and |Q| are tiny in the
          // intended (test / witness) use of this function.
          std::vector<TreeState> run(n, 0);
          for (;;) {
            FO2DT_RETURN_NOT_OK(checkpoint.Tick());
            TreeRun r(run.begin(), run.end());
            if (a.IsAcceptingRun(t, r)) {
              IntAssignment counts(lcta.NumUserVars(), BigInt(0));
              for (TreeState s : run) counts[s] += BigInt(1);
              if (lcta.use_symbol_counts) {
                for (NodeId v = 0; v < n; ++v) {
                  counts[a.num_states() + t.label(v)] += BigInt(1);
                }
              }
              FO2DT_ASSIGN_OR_RETURN(bool ok, lcta.constraint.Evaluate(counts));
              if (ok) return true;
            }
            size_t i = 0;
            // fo2dt-lint: allow(no-checkpoint, odometer carry bounded by n digits)
            while (i < n) {
              if (++run[i] < a.num_states()) break;
              run[i] = 0;
              ++i;
            }
            if (i == n) return false;
          }
        }();
        FO2DT_RETURN_NOT_OK(runs_ok.status());
        if (*runs_ok) return t;
        size_t i = 0;
        // fo2dt-lint: allow(no-checkpoint, odometer carry bounded by n digits)
        while (i < n) {
          if (++labels[i] < num_symbols) break;
          labels[i] = 0;
          ++i;
        }
        if (i == n) break;
      }
    }
  }
  return Status::NotFound("no LCTA witness within the size bound");
}

}  // namespace fo2dt
