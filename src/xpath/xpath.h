/// \file xpath.h
/// \brief LocalDataXPath (Section V): a data-aware XPath fragment whose
/// satisfiability and containment reduce to FO²(∼,+1).
///
/// Grammar (as in the paper, with `::` axis syntax):
///   LocPath    := RelLocPath | '/' RelLocPath
///   RelLocPath := Step ('/' Step)*
///   Step       := Axis '::' NameTest Predicate*
///   Axis       := Child | Parent | NextSibling | PreviousSibling | Self
///               | ElseWhere
///   NameTest   := Name | '*'
///   Predicate  := '[' PredExpr ']'
///   PredExpr   := LocPath
///               | LocPath '/' '@'Name EqOp AbsLocPath '/' '@'Name
///               | Self-Step '/' '@'Name EqOp Step '/' '@'Name
///               | PredExpr 'and' PredExpr | PredExpr 'or' PredExpr
///               | 'not' PredExpr | '(' PredExpr ')'
///   EqOp       := '=' | '!='
///
/// Relative (in-)equalities (the third PredExpr form) are subject to the
/// paper's *safety* restriction: the induced label → attribute associations
/// must be a function. Their translation stores the associated attribute's
/// value in the element node's data (the Theorem-3 encoding); the required
/// consistency formula is produced by ElementValueConsistencyFormula.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "frontend/solver.h"
#include "logic/formula.h"

namespace fo2dt {

/// \brief LocalDataXPath axes (Section V; ElseWhere is the paper's addition
/// for limited global navigation: every node other than the current one).
enum class XpAxis {
  kChild,
  kParent,
  kNextSibling,
  kPreviousSibling,
  kSelf,
  kElsewhere,
};

/// \brief Name test: a label or the wildcard '*'.
struct NameTest {
  bool wildcard = false;
  Symbol name = kNoSymbol;

  bool Matches(Symbol label) const { return wildcard || label == name; }
};

struct XpPredicate;

/// \brief One location step with its predicates.
struct XpStep {
  XpAxis axis = XpAxis::kChild;
  NameTest test;
  std::vector<XpPredicate> predicates;
};

/// \brief A location path.
struct XpPath {
  bool absolute = false;
  std::vector<XpStep> steps;
};

/// \brief A predicate expression.
struct XpPredicate {
  enum class Kind {
    kPathExists,   ///< LocPath
    kPathCompare,  ///< LocPath/@A EqOp AbsLocPath/@B
    kRelCompare,   ///< Self::t/@A EqOp Step/@B
    kAnd,
    kOr,
    kNot,
  };
  Kind kind = Kind::kPathExists;

  // kPathExists / kPathCompare.
  std::shared_ptr<XpPath> path;
  // kPathCompare: attributes and the absolute right-hand side.
  Symbol left_attribute = kNoSymbol;
  bool equal = true;  ///< '=' vs '!='
  std::shared_ptr<XpPath> abs_path;
  Symbol right_attribute = kNoSymbol;
  // kRelCompare.
  NameTest self_test;
  std::shared_ptr<XpStep> rel_step;
  // kAnd / kOr / kNot.
  std::vector<XpPredicate> children;
};

/// Parses a LocalDataXPath expression; names are interned into \p labels.
Result<XpPath> ParseXPath(const std::string& text, Alphabet* labels);

/// Renders back to the concrete syntax.
std::string XPathToString(const XpPath& path, const Alphabet& labels);

/// \brief The label → attribute association induced by the relative
/// (in-)equalities of a set of expressions (paper's safety condition).
struct SafetyAssociations {
  /// Exact-label associations.
  std::map<Symbol, Symbol> by_label;
  /// Association induced by a wildcard test (applies to every label).
  std::optional<Symbol> wildcard;

  /// The attribute associated with \p label, if any.
  std::optional<Symbol> AttributeFor(Symbol label) const;
};

/// Computes the associations of \p paths and verifies safety (the induced
/// relation is a function); InvalidArgument otherwise.
Result<SafetyAssociations> CheckSafety(const std::vector<const XpPath*>& paths);

/// \brief Evaluates \p path on a Figure-3-encoded document: result node set
/// when started from \p start (use {root} for absolute paths; absolute paths
/// reset to the root regardless).
Result<std::vector<NodeId>> EvaluateXPath(const DataTree& t, const XpPath& path,
                                          const std::vector<NodeId>& start);

/// Convenience: evaluation from the root.
Result<std::vector<NodeId>> EvaluateXPathFromRoot(const DataTree& t,
                                                  const XpPath& path);

/// \brief Translates an *absolute* path into an FO²(∼,+1) formula with one
/// free variable x ("x is selected"). Relative equalities use the
/// element-value encoding; conjoin ElementValueConsistencyFormula and apply
/// ApplyElementValueEncoding to concrete trees when cross-checking.
Result<Formula> TranslateXPathToFo2(const XpPath& path,
                                    const SafetyAssociations& assoc);

/// The FO² consistency formula tying element data values to the associated
/// attribute children's values (over labels [0, num_labels)).
Formula ElementValueConsistencyFormula(const SafetyAssociations& assoc,
                                       size_t num_labels);

/// Copies \p t with each associated element's data value overwritten by its
/// associated attribute child's value (left unchanged when absent).
DataTree ApplyElementValueEncoding(const DataTree& t,
                                   const SafetyAssociations& assoc);

/// \brief Satisfiability of an absolute LocalDataXPath query, optionally
/// relative to a schema (Theorem 3; bounded-complete). Honors
/// SolverOptions::exec: a deadline degrades the verdict to kUnknown with a
/// structured SatResult::stop_reason, a cancellation aborts with kCancelled.
[[nodiscard]] Result<SatResult> CheckXPathSatisfiability(const XpPath& path,
                                           const TreeAutomaton* schema,
                                           const SolverOptions& options = {});

/// \brief Containment p ⊆ q of absolute queries (optionally under a schema):
/// searches for a counterexample tree with a node selected by p but not q.
/// kSat = refuted (witness attached), kUnknown = no counterexample within
/// budget.
[[nodiscard]] Result<SatResult> CheckXPathContainment(const XpPath& p, const XpPath& q,
                                        const TreeAutomaton* schema,
                                        const SolverOptions& options = {});

}  // namespace fo2dt

