#include "xpath/xpath.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <set>

#include "automata/automaton_io.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/trace.h"

namespace fo2dt {

namespace {

const char* AxisName(XpAxis axis) {
  switch (axis) {
    case XpAxis::kChild:
      return "Child";
    case XpAxis::kParent:
      return "Parent";
    case XpAxis::kNextSibling:
      return "NextSibling";
    case XpAxis::kPreviousSibling:
      return "PreviousSibling";
    case XpAxis::kSelf:
      return "Self";
    case XpAxis::kElsewhere:
      return "ElseWhere";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Parser

/// Recursive-descent depth ceiling. XPath text reaches this parser from the
/// network (fo2dtd request bodies), so hostile "not(not(not(..." or nested
/// "[.[.[..." predicates must produce a ParseError, not a stack overflow.
constexpr size_t kMaxXPathDepth = 256;

/// Tracks live recursion frames; paired with an entry check in every
/// production that can self-recurse.
struct XpDepthGuard {
  explicit XpDepthGuard(size_t* depth) : depth_(depth) { ++*depth_; }
  ~XpDepthGuard() { --*depth_; }
  size_t* depth_;
};

class XPathParser {
 public:
  XPathParser(const std::string& text, Alphabet* labels)
      : text_(text), labels_(labels) {}

  Result<XpPath> Parse() {
    FO2DT_ASSIGN_OR_RETURN(XpPath p, ParsePath());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StringFormat("trailing XPath input at offset %zu", pos_));
    }
    return p;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Match(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    if (std::isalpha(static_cast<unsigned char>(token[0]))) {
      size_t end = pos_ + token.size();
      if (end < text_.size() &&
          (std::isalnum(static_cast<unsigned char>(text_[end])) ||
           text_[end] == '_')) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  /// True when the input continues with "/@" (an attribute selection): the
  /// path being parsed ends here.
  bool AtAttributeBreak() {
    SkipSpace();
    size_t save = pos_;
    if (pos_ < text_.size() && text_[pos_] == '/') {
      ++pos_;
      SkipSpace();
      bool at = pos_ < text_.size() && text_[pos_] == '@';
      pos_ = save;
      return at;
    }
    pos_ = save;
    return false;
  }

  Result<std::string> ParseName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(
          StringFormat("expected name at offset %zu", start));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<XpAxis> ParseAxis() {
    if (Match("Child")) return XpAxis::kChild;
    if (Match("Parent")) return XpAxis::kParent;
    if (Match("NextSibling")) return XpAxis::kNextSibling;
    if (Match("PreviousSibling")) return XpAxis::kPreviousSibling;
    if (Match("Self")) return XpAxis::kSelf;
    if (Match("ElseWhere")) return XpAxis::kElsewhere;
    return Status::ParseError(
        StringFormat("expected axis at offset %zu", pos_));
  }

  Result<NameTest> ParseNameTest() {
    if (PeekChar('*')) {
      ++pos_;
      return NameTest{true, kNoSymbol};
    }
    FO2DT_ASSIGN_OR_RETURN(std::string name, ParseName());
    return NameTest{false, labels_->Intern(name)};
  }

  Result<XpStep> ParseStep() {
    if (depth_ >= kMaxXPathDepth) {
      return Status::ParseError(
          StringFormat("XPath nested too deeply at offset %zu", pos_));
    }
    XpDepthGuard guard(&depth_);
    XpStep step;
    FO2DT_ASSIGN_OR_RETURN(step.axis, ParseAxis());
    if (!Match("::")) return Status::ParseError("expected '::' after axis");
    FO2DT_ASSIGN_OR_RETURN(step.test, ParseNameTest());
    while (PeekChar('[')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(XpPredicate pred, ParsePredExpr());
      if (!PeekChar(']')) return Status::ParseError("expected ']'");
      ++pos_;
      step.predicates.push_back(std::move(pred));
    }
    return step;
  }

  Result<XpPath> ParsePath() {
    XpPath path;
    if (PeekChar('/')) {
      path.absolute = true;
      ++pos_;
      SkipSpace();
      if (pos_ == text_.size() || text_[pos_] == ']') return path;  // "/"
    }
    FO2DT_ASSIGN_OR_RETURN(XpStep first, ParseStep());
    path.steps.push_back(std::move(first));
    while (!AtAttributeBreak() && PeekChar('/')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(XpStep next, ParseStep());
      path.steps.push_back(std::move(next));
    }
    return path;
  }

  Result<Symbol> ParseAttribute() {
    if (!PeekChar('/')) return Status::ParseError("expected '/@attr'");
    ++pos_;
    SkipSpace();
    if (!PeekChar('@')) return Status::ParseError("expected '@'");
    ++pos_;
    FO2DT_ASSIGN_OR_RETURN(std::string name, ParseName());
    return labels_->Intern(name);
  }

  Result<XpPredicate> ParsePredExpr() { return ParseOr(); }

  Result<XpPredicate> ParseOr() {
    FO2DT_ASSIGN_OR_RETURN(XpPredicate left, ParseAnd());
    while (Match("or")) {
      FO2DT_ASSIGN_OR_RETURN(XpPredicate right, ParseAnd());
      XpPredicate node;
      node.kind = XpPredicate::Kind::kOr;
      node.children = {std::move(left), std::move(right)};
      left = std::move(node);
    }
    return left;
  }

  Result<XpPredicate> ParseAnd() {
    FO2DT_ASSIGN_OR_RETURN(XpPredicate left, ParseUnary());
    while (Match("and")) {
      FO2DT_ASSIGN_OR_RETURN(XpPredicate right, ParseUnary());
      XpPredicate node;
      node.kind = XpPredicate::Kind::kAnd;
      node.children = {std::move(left), std::move(right)};
      left = std::move(node);
    }
    return left;
  }

  Result<XpPredicate> ParseUnary() {
    if (depth_ >= kMaxXPathDepth) {
      return Status::ParseError(
          StringFormat("XPath nested too deeply at offset %zu", pos_));
    }
    XpDepthGuard guard(&depth_);
    if (Match("not")) {
      FO2DT_ASSIGN_OR_RETURN(XpPredicate inner, ParseUnary());
      XpPredicate node;
      node.kind = XpPredicate::Kind::kNot;
      node.children = {std::move(inner)};
      return node;
    }
    if (PeekChar('(')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(XpPredicate inner, ParsePredExpr());
      if (!PeekChar(')')) return Status::ParseError("expected ')'");
      ++pos_;
      return inner;
    }
    // Path-led form.
    FO2DT_ASSIGN_OR_RETURN(XpPath path, ParsePath());
    if (!AtAttributeBreak()) {
      XpPredicate node;
      node.kind = XpPredicate::Kind::kPathExists;
      node.path = std::make_shared<XpPath>(std::move(path));
      return node;
    }
    FO2DT_ASSIGN_OR_RETURN(Symbol left_attr, ParseAttribute());
    bool equal;
    if (Match("!=")) {
      equal = false;
    } else if (Match("=")) {
      equal = true;
    } else {
      return Status::ParseError("expected '=' or '!=' after attribute");
    }
    // Right-hand side: absolute path or a single step.
    SkipSpace();
    if (PeekChar('/')) {
      FO2DT_ASSIGN_OR_RETURN(XpPath rhs, ParsePath());
      if (!rhs.absolute) {
        return Status::Internal("absolute RHS expected after '/'");
      }
      FO2DT_ASSIGN_OR_RETURN(Symbol right_attr, ParseAttribute());
      XpPredicate node;
      node.kind = XpPredicate::Kind::kPathCompare;
      node.path = std::make_shared<XpPath>(std::move(path));
      node.left_attribute = left_attr;
      node.equal = equal;
      node.abs_path = std::make_shared<XpPath>(std::move(rhs));
      node.right_attribute = right_attr;
      return node;
    }
    // Relative equality: LHS must be a single Self step without predicates.
    if (path.absolute || path.steps.size() != 1 ||
        path.steps[0].axis != XpAxis::kSelf ||
        !path.steps[0].predicates.empty()) {
      return Status::InvalidArgument(
          "relative (in-)equality requires the form Self::t/@A EqOp Step/@B");
    }
    FO2DT_ASSIGN_OR_RETURN(XpStep rhs_step, ParseStep());
    FO2DT_ASSIGN_OR_RETURN(Symbol right_attr, ParseAttribute());
    XpPredicate node;
    node.kind = XpPredicate::Kind::kRelCompare;
    node.self_test = path.steps[0].test;
    node.left_attribute = left_attr;
    node.equal = equal;
    node.rel_step = std::make_shared<XpStep>(std::move(rhs_step));
    node.right_attribute = right_attr;
    return node;
  }

  const std::string& text_;
  Alphabet* labels_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

// ---------------------------------------------------------------------------
// Printer

std::string NameTestToString(const NameTest& t, const Alphabet& labels) {
  return t.wildcard ? "*" : labels.Name(t.name);
}

std::string PredicateToString(const XpPredicate& p, const Alphabet& labels);

std::string StepToString(const XpStep& s, const Alphabet& labels) {
  std::string out = std::string(AxisName(s.axis)) + "::" +
                    NameTestToString(s.test, labels);
  for (const XpPredicate& p : s.predicates) {
    out += "[" + PredicateToString(p, labels) + "]";
  }
  return out;
}

std::string PathToString(const XpPath& p, const Alphabet& labels) {
  std::string out = p.absolute ? "/" : "";
  for (size_t i = 0; i < p.steps.size(); ++i) {
    if (i) out += "/";
    out += StepToString(p.steps[i], labels);
  }
  return out;
}

std::string PredicateToString(const XpPredicate& p, const Alphabet& labels) {
  switch (p.kind) {
    case XpPredicate::Kind::kPathExists:
      return PathToString(*p.path, labels);
    case XpPredicate::Kind::kPathCompare:
      return PathToString(*p.path, labels) + "/@" +
             labels.Name(p.left_attribute) + (p.equal ? " = " : " != ") +
             PathToString(*p.abs_path, labels) + "/@" +
             labels.Name(p.right_attribute);
    case XpPredicate::Kind::kRelCompare:
      return "Self::" + NameTestToString(p.self_test, labels) + "/@" +
             labels.Name(p.left_attribute) + (p.equal ? " = " : " != ") +
             StepToString(*p.rel_step, labels) + "/@" +
             labels.Name(p.right_attribute);
    case XpPredicate::Kind::kAnd:
      return "(" + PredicateToString(p.children[0], labels) + " and " +
             PredicateToString(p.children[1], labels) + ")";
    case XpPredicate::Kind::kOr:
      return "(" + PredicateToString(p.children[0], labels) + " or " +
             PredicateToString(p.children[1], labels) + ")";
    case XpPredicate::Kind::kNot:
      return "not " + PredicateToString(p.children[0], labels);
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Safety

Status CollectAssociations(const XpPredicate& p, SafetyAssociations* out);

Status CollectFromStep(const XpStep& s, SafetyAssociations* out) {
  for (const XpPredicate& p : s.predicates) {
    FO2DT_RETURN_NOT_OK(CollectAssociations(p, out));
  }
  return Status::OK();
}

Status CollectFromPath(const XpPath& path, SafetyAssociations* out) {
  for (const XpStep& s : path.steps) {
    FO2DT_RETURN_NOT_OK(CollectFromStep(s, out));
  }
  return Status::OK();
}

Status AddAssociation(const NameTest& test, Symbol attr,
                      SafetyAssociations* out) {
  if (test.wildcard) {
    if (out->wildcard.has_value() && *out->wildcard != attr) {
      return Status::InvalidArgument(
          "unsafe expression: wildcard associated with two attributes");
    }
    out->wildcard = attr;
    return Status::OK();
  }
  auto [it, fresh] = out->by_label.emplace(test.name, attr);
  if (!fresh && it->second != attr) {
    return Status::InvalidArgument(
        "unsafe expression: one label associated with two attributes");
  }
  return Status::OK();
}

Status CollectAssociations(const XpPredicate& p, SafetyAssociations* out) {
  switch (p.kind) {
    case XpPredicate::Kind::kPathExists:
      return CollectFromPath(*p.path, out);
    case XpPredicate::Kind::kPathCompare:
      FO2DT_RETURN_NOT_OK(CollectFromPath(*p.path, out));
      return CollectFromPath(*p.abs_path, out);
    case XpPredicate::Kind::kRelCompare:
      FO2DT_RETURN_NOT_OK(AddAssociation(p.self_test, p.left_attribute, out));
      FO2DT_RETURN_NOT_OK(
          AddAssociation(p.rel_step->test, p.right_attribute, out));
      return CollectFromStep(*p.rel_step, out);
    case XpPredicate::Kind::kAnd:
    case XpPredicate::Kind::kOr:
    case XpPredicate::Kind::kNot:
      for (const XpPredicate& c : p.children) {
        FO2DT_RETURN_NOT_OK(CollectAssociations(c, out));
      }
      return Status::OK();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Evaluator

std::vector<DataValue> AttrValues(const DataTree& t, NodeId v, Symbol attr) {
  std::vector<DataValue> out;
  for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
    if (t.label(c) == attr) out.push_back(t.data(c));
  }
  return out;
}

Result<bool> EvalPredicate(const DataTree& t, const XpPredicate& p, NodeId v);

Result<std::vector<NodeId>> EvalSteps(const DataTree& t, const XpPath& path,
                                      const std::vector<NodeId>& start) {
  std::set<NodeId> cur;
  if (path.absolute) {
    if (!t.empty()) cur.insert(t.root());
  } else {
    cur.insert(start.begin(), start.end());
  }
  for (const XpStep& step : path.steps) {
    std::set<NodeId> next;
    for (NodeId v : cur) {
      std::vector<NodeId> candidates;
      switch (step.axis) {
        case XpAxis::kChild:
          candidates = t.Children(v);
          break;
        case XpAxis::kParent:
          if (t.parent(v) != kNoNode) candidates.push_back(t.parent(v));
          break;
        case XpAxis::kNextSibling:
          if (t.next_sibling(v) != kNoNode) {
            candidates.push_back(t.next_sibling(v));
          }
          break;
        case XpAxis::kPreviousSibling:
          if (t.prev_sibling(v) != kNoNode) {
            candidates.push_back(t.prev_sibling(v));
          }
          break;
        case XpAxis::kSelf:
          candidates.push_back(v);
          break;
        case XpAxis::kElsewhere:
          for (NodeId w = 0; w < t.size(); ++w) {
            if (w != v) candidates.push_back(w);
          }
          break;
      }
      for (NodeId w : candidates) {
        if (!step.test.Matches(t.label(w))) continue;
        bool ok = true;
        for (const XpPredicate& pred : step.predicates) {
          FO2DT_ASSIGN_OR_RETURN(bool holds, EvalPredicate(t, pred, w));
          if (!holds) {
            ok = false;
            break;
          }
        }
        if (ok) next.insert(w);
      }
    }
    cur = std::move(next);
  }
  return std::vector<NodeId>(cur.begin(), cur.end());
}

Result<bool> EvalPredicate(const DataTree& t, const XpPredicate& p, NodeId v) {
  switch (p.kind) {
    case XpPredicate::Kind::kPathExists: {
      FO2DT_ASSIGN_OR_RETURN(std::vector<NodeId> hits,
                             EvalSteps(t, *p.path, {v}));
      return !hits.empty();
    }
    case XpPredicate::Kind::kPathCompare: {
      FO2DT_ASSIGN_OR_RETURN(std::vector<NodeId> lhs,
                             EvalSteps(t, *p.path, {v}));
      FO2DT_ASSIGN_OR_RETURN(std::vector<NodeId> rhs,
                             EvalSteps(t, *p.abs_path, {}));
      std::set<DataValue> left_vals;
      for (NodeId u : lhs) {
        for (DataValue d : AttrValues(t, u, p.left_attribute)) {
          left_vals.insert(d);
        }
      }
      std::set<DataValue> right_vals;
      for (NodeId u : rhs) {
        for (DataValue d : AttrValues(t, u, p.right_attribute)) {
          right_vals.insert(d);
        }
      }
      for (DataValue a : left_vals) {
        for (DataValue b : right_vals) {
          if (p.equal ? a == b : a != b) return true;
        }
      }
      return false;
    }
    case XpPredicate::Kind::kRelCompare: {
      if (!p.self_test.Matches(t.label(v))) return false;
      std::vector<DataValue> left_vals =
          AttrValues(t, v, p.left_attribute);
      if (left_vals.empty()) return false;
      XpPath step_path;
      step_path.steps.push_back(*p.rel_step);
      FO2DT_ASSIGN_OR_RETURN(std::vector<NodeId> targets,
                             EvalSteps(t, step_path, {v}));
      for (NodeId w : targets) {
        for (DataValue b : AttrValues(t, w, p.right_attribute)) {
          for (DataValue a : left_vals) {
            if (p.equal ? a == b : a != b) return true;
          }
        }
      }
      return false;
    }
    case XpPredicate::Kind::kAnd: {
      for (const XpPredicate& c : p.children) {
        FO2DT_ASSIGN_OR_RETURN(bool holds, EvalPredicate(t, c, v));
        if (!holds) return false;
      }
      return true;
    }
    case XpPredicate::Kind::kOr: {
      for (const XpPredicate& c : p.children) {
        FO2DT_ASSIGN_OR_RETURN(bool holds, EvalPredicate(t, c, v));
        if (holds) return true;
      }
      return false;
    }
    case XpPredicate::Kind::kNot: {
      FO2DT_ASSIGN_OR_RETURN(bool holds, EvalPredicate(t, p.children[0], v));
      return !holds;
    }
  }
  return Status::Internal("unreachable predicate kind");
}

// ---------------------------------------------------------------------------
// Translation to FO²(∼,+1)

using Continuation = std::function<Result<Formula>(Var)>;

Result<Formula> IsRoot(Var v) {
  return Formula::Not(Formula::Exists(
      OtherVar(v), Formula::Edge(Axis::kChild, OtherVar(v), v)));
}

/// Edge formula for a forward move from `from` to `to` along `axis`.
Result<Formula> AxisEdge(XpAxis axis, Var from, Var to) {
  switch (axis) {
    case XpAxis::kChild:
      return Formula::Edge(Axis::kChild, from, to);
    case XpAxis::kParent:
      return Formula::Edge(Axis::kChild, to, from);
    case XpAxis::kNextSibling:
      return Formula::Edge(Axis::kNextSibling, from, to);
    case XpAxis::kPreviousSibling:
      return Formula::Edge(Axis::kNextSibling, to, from);
    case XpAxis::kElsewhere:
      return Formula::Not(Formula::Equal(from, to));
    case XpAxis::kSelf:
      return Status::Internal("Self has no edge formula");
  }
  return Status::Internal("unreachable axis");
}

Result<Formula> TranslatePredicate(const XpPredicate& p, Var v,
                                   const SafetyAssociations& assoc);

Result<Formula> NodeConditions(const XpStep& step, Var v,
                               const SafetyAssociations& assoc) {
  std::vector<Formula> parts;
  if (!step.test.wildcard) {
    parts.push_back(Formula::Label(step.test.name, v));
  }
  for (const XpPredicate& pred : step.predicates) {
    FO2DT_ASSIGN_OR_RETURN(Formula f, TranslatePredicate(pred, v, assoc));
    parts.push_back(std::move(f));
  }
  return Formula::And(std::move(parts));
}

/// Forward translation: starting at `v`, steps[i..] can be traversed ending
/// in a node satisfying `k`.
Result<Formula> TranslateForward(const std::vector<XpStep>& steps, size_t i,
                                 Var v, const SafetyAssociations& assoc,
                                 const Continuation& k) {
  if (i == steps.size()) return k(v);
  const XpStep& step = steps[i];
  if (step.axis == XpAxis::kSelf) {
    FO2DT_ASSIGN_OR_RETURN(Formula here, NodeConditions(step, v, assoc));
    FO2DT_ASSIGN_OR_RETURN(Formula rest,
                           TranslateForward(steps, i + 1, v, assoc, k));
    return Formula::And(std::move(here), std::move(rest));
  }
  Var next = OtherVar(v);
  FO2DT_ASSIGN_OR_RETURN(Formula edge, AxisEdge(step.axis, v, next));
  FO2DT_ASSIGN_OR_RETURN(Formula here, NodeConditions(step, next, assoc));
  FO2DT_ASSIGN_OR_RETURN(Formula rest,
                         TranslateForward(steps, i + 1, next, assoc, k));
  return Formula::Exists(
      next, Formula::And({std::move(edge), std::move(here), std::move(rest)}));
}

/// Backward translation of an absolute path: `v` is a node selected by the
/// path (simulating the path from `v` back to the root, the paper's trick
/// for absolute sides of data comparisons).
Result<Formula> TranslateAbsoluteEnd(const XpPath& path, size_t i, Var v,
                                     const SafetyAssociations& assoc) {
  if (path.steps.empty()) return IsRoot(v);  // the path "/" selects the root
  const XpStep& step = path.steps[i];
  FO2DT_ASSIGN_OR_RETURN(Formula here, NodeConditions(step, v, assoc));
  if (step.axis == XpAxis::kSelf) {
    if (i == 0) {
      FO2DT_ASSIGN_OR_RETURN(Formula root, IsRoot(v));
      return Formula::And(std::move(here), std::move(root));
    }
    FO2DT_ASSIGN_OR_RETURN(Formula rest,
                           TranslateAbsoluteEnd(path, i - 1, v, assoc));
    return Formula::And(std::move(here), std::move(rest));
  }
  Var prev = OtherVar(v);
  FO2DT_ASSIGN_OR_RETURN(Formula edge, AxisEdge(step.axis, prev, v));
  Formula prev_cond = Formula::True();
  if (i == 0) {
    FO2DT_ASSIGN_OR_RETURN(prev_cond, IsRoot(prev));
  } else {
    FO2DT_ASSIGN_OR_RETURN(prev_cond,
                           TranslateAbsoluteEnd(path, i - 1, prev, assoc));
  }
  return Formula::And(
      std::move(here),
      Formula::Exists(prev,
                      Formula::And(std::move(edge), std::move(prev_cond))));
}

Result<Formula> TranslateAbsoluteEnd(const XpPath& path, Var v,
                                     const SafetyAssociations& assoc) {
  if (path.steps.empty()) return IsRoot(v);
  return TranslateAbsoluteEnd(path, path.steps.size() - 1, v, assoc);
}

/// The data-comparison tail of kPathCompare: at the element `e`, there is an
/// A-attribute child whose value relates (=/!=) to the B-attribute of some
/// element selected by the absolute path.
Result<Formula> CompareTail(const XpPredicate& p, Var e,
                            const SafetyAssociations& assoc) {
  Var attr = OtherVar(e);
  // From the attribute node `attr`, jump to a same/different-valued
  // B-attribute node, then simulate the absolute path backwards from its
  // parent (the paper's Section V translation).
  Var other = e;  // reuse the element variable: e is no longer needed
  Formula jump_rel = p.equal
                         ? Formula::SameData(attr, other)
                         : Formula::Not(Formula::SameData(attr, other));
  Var rhs_elem = attr;  // reuse again one level deeper
  FO2DT_ASSIGN_OR_RETURN(Formula abs_end,
                         TranslateAbsoluteEnd(*p.abs_path, rhs_elem, assoc));
  Formula b_parent = Formula::Exists(
      rhs_elem, Formula::And(Formula::Edge(Axis::kChild, rhs_elem, other),
                             std::move(abs_end)));
  Formula jump = Formula::Exists(
      other, Formula::And({std::move(jump_rel),
                           Formula::Label(p.right_attribute, other),
                           std::move(b_parent)}));
  return Formula::Exists(
      attr, Formula::And({Formula::Edge(Axis::kChild, e, attr),
                          Formula::Label(p.left_attribute, attr),
                          std::move(jump)}));
}

Result<Formula> TranslatePredicate(const XpPredicate& p, Var v,
                                   const SafetyAssociations& assoc) {
  switch (p.kind) {
    case XpPredicate::Kind::kPathExists: {
      if (p.path->absolute) {
        Var end = OtherVar(v);
        FO2DT_ASSIGN_OR_RETURN(Formula f,
                               TranslateAbsoluteEnd(*p.path, end, assoc));
        return Formula::Exists(end, std::move(f));
      }
      Continuation done = [](Var) -> Result<Formula> {
        return Formula::True();
      };
      return TranslateForward(p.path->steps, 0, v, assoc, done);
    }
    case XpPredicate::Kind::kPathCompare: {
      Continuation tail = [&](Var e) { return CompareTail(p, e, assoc); };
      if (p.path->absolute) {
        Var end = OtherVar(v);
        FO2DT_ASSIGN_OR_RETURN(Formula at_end,
                               TranslateAbsoluteEnd(*p.path, end, assoc));
        FO2DT_ASSIGN_OR_RETURN(Formula cmp, tail(end));
        return Formula::Exists(end,
                               Formula::And(std::move(at_end), std::move(cmp)));
      }
      return TranslateForward(p.path->steps, 0, v, assoc, tail);
    }
    case XpPredicate::Kind::kRelCompare: {
      // Element-value encoding: the data values of associated elements hold
      // their associated attribute's value, so the comparison is x ~ y on
      // the elements themselves; attribute-presence guards keep missing
      // attributes from matching accidentally.
      std::vector<Formula> parts;
      if (!p.self_test.wildcard) {
        parts.push_back(Formula::Label(p.self_test.name, v));
      }
      Var o = OtherVar(v);
      parts.push_back(Formula::Exists(
          o, Formula::And(Formula::Edge(Axis::kChild, v, o),
                          Formula::Label(p.left_attribute, o))));
      FO2DT_ASSIGN_OR_RETURN(Formula edge, AxisEdge(p.rel_step->axis, v, o));
      FO2DT_ASSIGN_OR_RETURN(Formula target_cond,
                             NodeConditions(*p.rel_step, o, assoc));
      Formula rel = p.equal ? Formula::SameData(v, o)
                            : Formula::Not(Formula::SameData(v, o));
      Formula b_guard = Formula::Exists(
          v, Formula::And(Formula::Edge(Axis::kChild, o, v),
                          Formula::Label(p.right_attribute, v)));
      if (p.rel_step->axis == XpAxis::kSelf) {
        return Status::NotImplemented(
            "Self-to-Self relative comparison is not part of the fragment");
      }
      parts.push_back(Formula::Exists(
          o, Formula::And({std::move(edge), std::move(target_cond),
                           std::move(rel), std::move(b_guard)})));
      return Formula::And(std::move(parts));
    }
    case XpPredicate::Kind::kAnd:
    case XpPredicate::Kind::kOr: {
      std::vector<Formula> parts;
      for (const XpPredicate& c : p.children) {
        FO2DT_ASSIGN_OR_RETURN(Formula f, TranslatePredicate(c, v, assoc));
        parts.push_back(std::move(f));
      }
      return p.kind == XpPredicate::Kind::kAnd ? Formula::And(std::move(parts))
                                               : Formula::Or(std::move(parts));
    }
    case XpPredicate::Kind::kNot: {
      FO2DT_ASSIGN_OR_RETURN(Formula f,
                             TranslatePredicate(p.children[0], v, assoc));
      return Formula::Not(std::move(f));
    }
  }
  return Status::Internal("unreachable predicate kind");
}

}  // namespace

Result<XpPath> ParseXPath(const std::string& text, Alphabet* labels) {
  return XPathParser(text, labels).Parse();
}

std::string XPathToString(const XpPath& path, const Alphabet& labels) {
  return PathToString(path, labels);
}

std::optional<Symbol> SafetyAssociations::AttributeFor(Symbol label) const {
  auto it = by_label.find(label);
  if (it != by_label.end()) return it->second;
  return wildcard;
}

Result<SafetyAssociations> CheckSafety(
    const std::vector<const XpPath*>& paths) {
  SafetyAssociations out;
  for (const XpPath* p : paths) {
    FO2DT_RETURN_NOT_OK(CollectFromPath(*p, &out));
  }
  // The wildcard must agree with every per-label association.
  if (out.wildcard.has_value()) {
    for (const auto& [label, attr] : out.by_label) {
      (void)label;
      if (attr != *out.wildcard) {
        return Status::InvalidArgument(
            "unsafe expression set: wildcard and label associations differ");
      }
    }
  }
  return out;
}

Result<std::vector<NodeId>> EvaluateXPath(const DataTree& t, const XpPath& path,
                                          const std::vector<NodeId>& start) {
  if (t.empty()) return std::vector<NodeId>{};
  return EvalSteps(t, path, start);
}

Result<std::vector<NodeId>> EvaluateXPathFromRoot(const DataTree& t,
                                                  const XpPath& path) {
  if (t.empty()) return std::vector<NodeId>{};
  return EvalSteps(t, path, {t.root()});
}

Result<Formula> TranslateXPathToFo2(const XpPath& path,
                                    const SafetyAssociations& assoc) {
  if (!path.absolute) {
    return Status::NotImplemented(
        "only absolute queries are translated as unary formulas; binary "
        "containment of relative queries needs distinguished-node markers");
  }
  return TranslateAbsoluteEnd(path, Var::kX, assoc);
}

Formula ElementValueConsistencyFormula(const SafetyAssociations& assoc,
                                       size_t num_labels) {
  std::vector<Formula> parts;
  auto tie = [](Formula label_test, Symbol attr) {
    // ∀x∀y: label(x) ∧ child(x,y) ∧ attr(y) → x ~ y.
    Formula body = Formula::Implies(
        Formula::And({std::move(label_test),
                      Formula::Edge(Axis::kChild, Var::kX, Var::kY),
                      Formula::Label(attr, Var::kY)}),
        Formula::SameData(Var::kX, Var::kY));
    return Formula::Forall(Var::kX, Formula::Forall(Var::kY, body));
  };
  if (assoc.wildcard.has_value()) {
    parts.push_back(tie(Formula::True(), *assoc.wildcard));
  }
  for (const auto& [label, attr] : assoc.by_label) {
    if (label < num_labels) {
      parts.push_back(tie(Formula::Label(label, Var::kX), attr));
    }
  }
  return Formula::And(std::move(parts));
}

DataTree ApplyElementValueEncoding(const DataTree& t,
                                   const SafetyAssociations& assoc) {
  DataTree out = t;
  for (NodeId v = 0; v < t.size(); ++v) {
    std::optional<Symbol> attr = assoc.AttributeFor(t.label(v));
    if (!attr.has_value()) continue;
    for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
      if (t.label(c) == *attr) {
        out.set_data(v, t.data(c));
        break;
      }
    }
  }
  return out;
}

namespace {

void MaxSymbolIn(const XpPath& path, Symbol* max_plus_one);

void MaxSymbolIn(const NameTest& test, Symbol* max_plus_one) {
  if (!test.wildcard && test.name != kNoSymbol && test.name + 1 > *max_plus_one) {
    *max_plus_one = test.name + 1;
  }
}

void MaxSymbolIn(const XpPredicate& pred, Symbol* max_plus_one) {
  auto attr = [&](Symbol a) {
    if (a != kNoSymbol && a + 1 > *max_plus_one) *max_plus_one = a + 1;
  };
  if (pred.path != nullptr) MaxSymbolIn(*pred.path, max_plus_one);
  if (pred.abs_path != nullptr) MaxSymbolIn(*pred.abs_path, max_plus_one);
  attr(pred.left_attribute);
  attr(pred.right_attribute);
  MaxSymbolIn(pred.self_test, max_plus_one);
  if (pred.rel_step != nullptr) {
    MaxSymbolIn(pred.rel_step->test, max_plus_one);
    for (const XpPredicate& p : pred.rel_step->predicates) {
      MaxSymbolIn(p, max_plus_one);
    }
  }
  for (const XpPredicate& p : pred.children) MaxSymbolIn(p, max_plus_one);
}

void MaxSymbolIn(const XpPath& path, Symbol* max_plus_one) {
  for (const XpStep& step : path.steps) {
    MaxSymbolIn(step.test, max_plus_one);
    for (const XpPredicate& p : step.predicates) MaxSymbolIn(p, max_plus_one);
  }
}

// Replay body for the XPath facades: alphabet size, optional schema, the
// expression(s) in concrete syntax, budgets. All symbol ids are dense, so
// re-parsing against a same-size canonical alphabet is position-stable —
// provided the replay alphabet is pre-interned before ParseXPath interns.
std::string SerializeXPathProblem(const std::vector<const XpPath*>& paths,
                                  const TreeAutomaton* schema,
                                  const SolverOptions& options) {
  Symbol alpha = 0;
  for (const XpPath* p : paths) MaxSymbolIn(*p, &alpha);
  if (schema != nullptr && schema->num_symbols() > alpha) {
    alpha = static_cast<Symbol>(schema->num_symbols());
  }
  Alphabet replay_alphabet = MakeReplayAlphabet(alpha);
  std::string body =
      StringFormat("labels %llu\n", static_cast<unsigned long long>(alpha));
  body += StringFormat("budget max_model_nodes %llu\n",
                       static_cast<unsigned long long>(options.max_model_nodes));
  body += StringFormat("budget max_steps %llu\n",
                       static_cast<unsigned long long>(options.max_steps));
  if (schema != nullptr) {
    body += "schema\n" + TreeAutomatonToText(*schema);
  }
  for (const XpPath* p : paths) {
    body += StringFormat("xpath %s\n",
                         XPathToString(*p, replay_alphabet).c_str());
  }
  return body;
}

}  // namespace

Result<SatResult> CheckXPathSatisfiability(const XpPath& path,
                                           const TreeAutomaton* schema,
                                           const SolverOptions& options) {
  SolveRecorder rec(names::kFacadeXpathSat, options.exec);
  if (rec.active()) {
    std::string body = SerializeXPathProblem({&path}, schema, options);
    rec.SetInput(body);
    rec.SetReplayInput(body);
    rec.AddBudget("max_model_nodes", options.max_model_nodes);
    rec.AddBudget("max_steps", options.max_steps);
  }
  // Translation is charged to kXpath; the solver call at the end times
  // itself (and attaches the PhaseProfile), so the timer closes first.
  Result<Formula> query = [&]() -> Result<Formula> {
    FO2DT_TRACE_SPAN(names::kModXpathTranslate);
    ScopedPhaseTimer phase_timer(Phase::kXpath, options.exec);
    ScopedPhaseMemory phase_memory(Phase::kXpath, options.exec);
    FO2DT_ASSIGN_OR_RETURN(SafetyAssociations assoc, CheckSafety({&path}));
    FO2DT_ASSIGN_OR_RETURN(Formula selected, TranslateXPathToFo2(path, assoc));
    size_t num_labels =
        schema != nullptr
            ? schema->num_symbols()
            : static_cast<size_t>(selected.NumSymbolsSpanned()) + 1;
    return Formula::And(Formula::Exists(Var::kX, std::move(selected)),
                        ElementValueConsistencyFormula(assoc, num_labels));
  }();
  if (!query.ok()) {
    SolveOutcome outcome;
    outcome.verdict =
        std::string("ERROR:") + StatusCodeToString(query.status().code());
    rec.Finish(std::move(outcome));
    return query.status();
  }
  SolverOptions opt = options;
  opt.structural_filter = schema;
  Result<SatResult> result = CheckFo2SatisfiabilityBounded(*query, opt);
  rec.Finish(SolveOutcomeFromSat(result));
  return result;
}

Result<SatResult> CheckXPathContainment(const XpPath& p, const XpPath& q,
                                        const TreeAutomaton* schema,
                                        const SolverOptions& options) {
  SolveRecorder rec(names::kFacadeXpathContainment, options.exec);
  if (rec.active()) {
    std::string body = SerializeXPathProblem({&p, &q}, schema, options);
    rec.SetInput(body);
    rec.SetReplayInput(body);
    rec.AddBudget("max_model_nodes", options.max_model_nodes);
    rec.AddBudget("max_steps", options.max_steps);
  }
  Result<Formula> query = [&]() -> Result<Formula> {
    FO2DT_TRACE_SPAN(names::kModXpathTranslate);
    ScopedPhaseTimer phase_timer(Phase::kXpath, options.exec);
    ScopedPhaseMemory phase_memory(Phase::kXpath, options.exec);
    FO2DT_ASSIGN_OR_RETURN(SafetyAssociations assoc, CheckSafety({&p, &q}));
    FO2DT_ASSIGN_OR_RETURN(Formula in_p, TranslateXPathToFo2(p, assoc));
    FO2DT_ASSIGN_OR_RETURN(Formula in_q, TranslateXPathToFo2(q, assoc));
    Formula counterexample =
        Formula::And(std::move(in_p), Formula::Not(std::move(in_q)));
    size_t num_labels =
        schema != nullptr
            ? schema->num_symbols()
            : static_cast<size_t>(counterexample.NumSymbolsSpanned()) + 1;
    return Formula::And(Formula::Exists(Var::kX, std::move(counterexample)),
                        ElementValueConsistencyFormula(assoc, num_labels));
  }();
  if (!query.ok()) {
    SolveOutcome outcome;
    outcome.verdict =
        std::string("ERROR:") + StatusCodeToString(query.status().code());
    rec.Finish(std::move(outcome));
    return query.status();
  }
  SolverOptions opt = options;
  opt.structural_filter = schema;
  Result<SatResult> result = CheckFo2SatisfiabilityBounded(*query, opt);
  rec.Finish(SolveOutcomeFromSat(result));
  return result;
}

}  // namespace fo2dt
