#include "common/solve_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/flight_recorder.h"
#include "common/hash.h"
#include "common/query_log.h"
#include "common/registry_names.h"
#include "common/strings.h"

namespace fo2dt {

namespace {

// Bump when the on-disk line format changes; folded into the fingerprint so
// old files self-invalidate.
constexpr uint64_t kCacheSchemaVersion = 1;

// Fixed per-entry overhead estimate (map node, LRU node, bookkeeping).
constexpr uint64_t kEntryOverheadBytes = 128;

/// Inverse of JsonEscape for the escape set it emits. Returns false on a
/// malformed escape (the loader then skips the line).
bool JsonUnescape(const std::string& in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= in.size()) return false;
    switch (in[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 >= in.size()) return false;
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          char h = in[i + 1 + static_cast<size_t>(k)];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (value > 0xff) return false;
        out->push_back(static_cast<char>(value));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

std::string Quoted(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

/// Splits one cache line into whitespace-separated tokens, where a token
/// starting with '"' runs (escape-aware) to its closing quote and is
/// unescaped. Returns false on malformed quoting.
bool Tokenize(const std::string& line, std::vector<std::string>* tokens) {
  tokens->clear();
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    if (line[i] == '"') {
      size_t j = i + 1;
      std::string raw;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\') {
          if (j + 1 >= line.size()) return false;
          raw.push_back(line[j]);
          raw.push_back(line[j + 1]);
          j += 2;
        } else {
          raw.push_back(line[j]);
          ++j;
        }
      }
      if (j >= line.size()) return false;  // unterminated quote
      std::string cooked;
      if (!JsonUnescape(raw, &cooked)) return false;
      tokens->push_back(std::move(cooked));
      i = j + 1;
    } else {
      size_t j = line.find(' ', i);
      if (j == std::string::npos) j = line.size();
      tokens->push_back(line.substr(i, j - i));
      i = j;
    }
  }
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Profile blob: "d=<ilp_max_depth>;m=<mem_high_water>" then one
/// ";<phase>:<calls>:<wall_ns>:<effort>:<mem_peak>" per phase that ran.
/// Empty string means "no profile recorded". StopReason is not serialized:
/// cached verdicts are definite, so stop is always kind == kNone.
std::string SerializeProfile(const std::optional<PhaseProfile>& profile) {
  if (!profile.has_value()) return "";
  std::string out = StringFormat(
      "d=%llu;m=%llu",
      static_cast<unsigned long long>(profile->ilp_max_depth),
      static_cast<unsigned long long>(profile->mem_high_water));
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseProfile::Entry& e = profile->phases[i];
    if (e.calls == 0) continue;
    out += StringFormat(";%llu:%llu:%llu:%llu:%llu",
                        static_cast<unsigned long long>(i),
                        static_cast<unsigned long long>(e.calls),
                        static_cast<unsigned long long>(e.wall_ns),
                        static_cast<unsigned long long>(e.effort),
                        static_cast<unsigned long long>(e.mem_peak));
  }
  return out;
}

std::optional<PhaseProfile> ParseProfile(const std::string& blob) {
  if (blob.empty()) return std::nullopt;
  PhaseProfile profile;
  bool have_gauges = false;
  for (const std::string& part : SplitString(blob, ';')) {
    if (StartsWith(part, "d=")) {
      if (!ParseU64(part.substr(2), &profile.ilp_max_depth)) return std::nullopt;
      continue;
    }
    if (StartsWith(part, "m=")) {
      if (!ParseU64(part.substr(2), &profile.mem_high_water)) return std::nullopt;
      have_gauges = true;
      continue;
    }
    std::vector<std::string> fields = SplitString(part, ':');
    if (fields.size() != 5) return std::nullopt;
    uint64_t idx = 0;
    if (!ParseU64(fields[0], &idx) || idx >= kPhaseCount) return std::nullopt;
    PhaseProfile::Entry& e = profile.phases[idx];
    if (!ParseU64(fields[1], &e.calls) || !ParseU64(fields[2], &e.wall_ns) ||
        !ParseU64(fields[3], &e.effort) || !ParseU64(fields[4], &e.mem_peak)) {
      return std::nullopt;
    }
  }
  if (!have_gauges) return std::nullopt;
  return profile;
}

bool IsDefiniteVerdict(const std::string& verdict) {
  return !verdict.empty() && verdict != "UNKNOWN" &&
         verdict.rfind("ERROR:", 0) != 0;
}

uint64_t EntryBytes(const std::string& key, const SolveCacheEntry& entry) {
  return kEntryOverheadBytes + key.size() + entry.verdict.size() +
         entry.method.size() + entry.payload.size() +
         (entry.profile.has_value() ? sizeof(PhaseProfile) : 0);
}

}  // namespace

SolveCache& SolveCache::Instance() {
  static SolveCache* cache = new SolveCache();  // leaked: process lifetime
  return *cache;
}

SolveCache::SolveCache() {
  const char* file = std::getenv("FO2DT_CACHE_FILE");
  const char* flag = std::getenv("FO2DT_CACHE");
  const char* bytes = std::getenv("FO2DT_CACHE_BYTES");
  if (file != nullptr && file[0] != '\0') {
    config_.enabled = true;
    config_.file = file;
  }
  if (flag != nullptr) config_.enabled = flag[0] == '1';
  if (bytes != nullptr) {
    uint64_t budget = 0;
    if (ParseU64(bytes, &budget) && budget > 0) config_.max_bytes = budget;
  }
  if (config_.enabled && !config_.file.empty()) {
    ScopedRankedLock lock(mu_);
    LoadFileLocked();
  }
}

uint64_t SolveCache::BuildFingerprint() {
  // Schema version + build stamp: any rebuild (and any line-format change)
  // starts a fresh fingerprint section, so persisted entries never outlive
  // the binary that wrote them.
  Fnv1aHasher hasher;
  hasher.MixU64(kCacheSchemaVersion);
  hasher.MixString(__DATE__ " " __TIME__);
  return hasher.hash();
}

uint64_t SolveCache::FingerprintLocked() const {
  return config_.fingerprint != 0 ? config_.fingerprint : BuildFingerprint();
}

void SolveCache::Configure(SolveCacheConfig config) {
  ScopedRankedLock lock(mu_);
  config_ = std::move(config);
  lru_.clear();
  solve_.clear();
  sub_.clear();
  bytes_ = 0;
  header_written_ = false;
  if (config_.enabled && !config_.file.empty()) LoadFileLocked();
}

SolveCacheConfig SolveCache::config() const {
  ScopedRankedLock lock(mu_);
  return config_;
}

bool SolveCache::enabled() const {
  ScopedRankedLock lock(mu_);
  return config_.enabled;
}

uint64_t SolveCache::fingerprint() const {
  ScopedRankedLock lock(mu_);
  return FingerprintLocked();
}

void SolveCache::LoadFileLocked() {
  std::FILE* f = std::fopen(config_.file.c_str(), "r");
  if (f == nullptr) return;  // no file yet: first run
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  const uint64_t want = FingerprintLocked();
  bool section_matches = false;
  for (const std::string& line : SplitString(content, '\n')) {
    std::vector<std::string> tokens;
    if (!Tokenize(line, &tokens) || tokens.empty()) continue;
    if (tokens[0] == "fingerprint" && tokens.size() == 2) {
      section_matches = tokens[1] == HashToHex(want);
      continue;
    }
    if (!section_matches || tokens[0] != "entry" || tokens.size() != 7) {
      continue;
    }
    SolveCacheEntry entry;
    entry.verdict = tokens[2];
    entry.method = tokens[3];
    if (!ParseU64(tokens[4], &entry.steps)) continue;
    entry.profile = ParseProfile(tokens[5]);
    entry.payload = tokens[6];
    if (!IsDefiniteVerdict(entry.verdict)) continue;
    Stored stored;
    stored.bytes = EntryBytes(tokens[1], entry);
    stored.entry = std::move(entry);
    InsertLocked(Slot::kSolve, tokens[1], std::move(stored));
  }
}

void SolveCache::AppendEntryLocked(const std::string& key,
                                   const SolveCacheEntry& entry) {
  if (config_.file.empty()) return;
  // Build the full append (header + entry) and issue it as one O_APPEND
  // write(): a daemon killed mid-drain leaves either complete lines or
  // nothing, never a truncated entry for the loader to choke on (the loader
  // skips malformed lines regardless, as defense in depth).
  std::string chunk;
  if (!header_written_) {
    chunk += StringFormat("fingerprint %s\n",
                          HashToHex(FingerprintLocked()).c_str());
  }
  chunk += StringFormat("entry %s %s %s %llu %s %s\n", key.c_str(),
                        Quoted(entry.verdict).c_str(),
                        Quoted(entry.method).c_str(),
                        static_cast<unsigned long long>(entry.steps),
                        Quoted(SerializeProfile(entry.profile)).c_str(),
                        Quoted(entry.payload).c_str());
  int fd = ::open(config_.file.c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;  // caching must never fail the solve
  ssize_t written;
  do {
    written = ::write(fd, chunk.data(), chunk.size());
  } while (written < 0 && errno == EINTR);
  (void)::close(fd);
  if (written >= 0 && static_cast<size_t>(written) == chunk.size()) {
    header_written_ = true;
  }
}

void SolveCache::EvictLocked() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    const auto& [slot, key] = lru_.front();
    auto& store = slot == Slot::kSolve ? solve_ : sub_;
    auto it = store.find(key);
    if (it != store.end()) {
      bytes_ -= it->second.bytes;
      store.erase(it);
    }
    const char* metric = slot == Slot::kSolve
                             ? names::kMetricCacheSolveEvictions
                             : names::kMetricCacheSubEvictions;
    ++counters_[metric];
    lru_.pop_front();
  }
}

void SolveCache::InsertLocked(Slot slot, const std::string& key,
                              Stored stored) {
  auto& store = slot == Slot::kSolve ? solve_ : sub_;
  auto it = store.find(key);
  if (it != store.end()) {
    // Refresh: keep the first-stored result but bump recency.
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
    return;
  }
  lru_.emplace_back(slot, key);
  stored.lru_it = std::prev(lru_.end());
  bytes_ += stored.bytes;
  store.emplace(key, std::move(stored));
  EvictLocked();
}

std::optional<SolveCacheEntry> SolveCache::Lookup(const std::string& key,
                                                  const char* hit_metric,
                                                  const char* miss_metric) {
  ScopedRankedLock lock(mu_);
  if (!config_.enabled) return std::nullopt;
  auto it = solve_.find(key);
  if (it == solve_.end()) {
    ++counters_[miss_metric];
    NoteSolveCacheDisposition("miss");
    return std::nullopt;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru_it);
  ++counters_[hit_metric];
  NoteSolveCacheDisposition("hit");
  return it->second.entry;
}

void SolveCache::Insert(const std::string& key, const SolveCacheEntry& entry,
                        const ExecutionContext* exec, const char* module) {
  if (!IsDefiniteVerdict(entry.verdict)) return;  // kUnknown never cached
  const uint64_t bytes = EntryBytes(key, entry);
  // Charge the inserting solve's governor first: a solve over its memory
  // budget must not grow the cache (it skips caching, never fails).
  if (exec != nullptr && !exec->ChargeMemory(bytes, module).ok()) return;
  ScopedRankedLock lock(mu_);
  if (!config_.enabled) return;
  const bool fresh = solve_.find(key) == solve_.end();
  Stored stored;
  stored.entry = entry;
  stored.bytes = bytes;
  InsertLocked(Slot::kSolve, key, std::move(stored));
  if (fresh) AppendEntryLocked(key, entry);
}

std::optional<std::string> SolveCache::LookupSub(const std::string& key,
                                                 const char* hit_metric,
                                                 const char* miss_metric) {
  ScopedRankedLock lock(mu_);
  if (!config_.enabled) return std::nullopt;
  auto it = sub_.find(key);
  // Sub-memo traffic never stamps the query-log `cache` field: the field
  // reports the verdict-level disposition, and a body-memo hit ahead of a
  // verdict miss must not masquerade as a served solve.
  if (it == sub_.end()) {
    ++counters_[miss_metric];
    return std::nullopt;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru_it);
  ++counters_[hit_metric];
  return it->second.value;
}

void SolveCache::InsertSub(const std::string& key, std::string value,
                           const ExecutionContext* exec, const char* module) {
  const uint64_t bytes = kEntryOverheadBytes + key.size() + value.size();
  if (exec != nullptr && !exec->ChargeMemory(bytes, module).ok()) return;
  ScopedRankedLock lock(mu_);
  if (!config_.enabled) return;
  Stored stored;
  stored.value = std::move(value);
  stored.bytes = bytes;
  InsertLocked(Slot::kSub, key, std::move(stored));
}

SolveCache::Stats SolveCache::stats() const {
  ScopedRankedLock lock(mu_);
  Stats out;
  auto get = [this](const char* key) {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0ull : it->second;
  };
  out.solve_hits = get(names::kMetricCacheSolveHits);
  out.solve_misses = get(names::kMetricCacheSolveMisses);
  out.sub_hits = get(names::kMetricCacheSubHits);
  out.sub_misses = get(names::kMetricCacheSubMisses);
  out.solve_evictions = get(names::kMetricCacheSolveEvictions);
  out.sub_evictions = get(names::kMetricCacheSubEvictions);
  out.entries = solve_.size() + sub_.size();
  out.bytes = bytes_;
  return out;
}

void SolveCache::Clear() {
  ScopedRankedLock lock(mu_);
  lru_.clear();
  solve_.clear();
  sub_.clear();
  bytes_ = 0;
  counters_.clear();
}

namespace {

// Federates the cache counters into the unified MetricsRegistry. Every
// counter key a lookup site passed is exported verbatim, plus the resident
// gauges, so fo2dt_report sees hit rates without bespoke plumbing.
const MetricsSourceRegistrar kSolveCacheMetricsSource(
    "solve_cache",
    [](MetricsSnapshot* snap) {
      SolveCache::Stats s = SolveCache::Instance().stats();
      snap->Set(names::kMetricCacheSolveHits, static_cast<double>(s.solve_hits));
      snap->Set(names::kMetricCacheSolveMisses,
                static_cast<double>(s.solve_misses));
      snap->Set(names::kMetricCacheSubHits, static_cast<double>(s.sub_hits));
      snap->Set(names::kMetricCacheSubMisses,
                static_cast<double>(s.sub_misses));
      snap->Set(names::kMetricCacheSolveEvictions,
                static_cast<double>(s.solve_evictions));
      snap->Set(names::kMetricCacheSubEvictions,
                static_cast<double>(s.sub_evictions));
      snap->Set(names::kMetricCacheSolveEntries,
                static_cast<double>(s.entries));
      snap->Set(names::kMetricCacheSolveBytes, static_cast<double>(s.bytes));
    },
    [] {});

}  // namespace

std::string SolveCacheKey(const char* facade, const std::string& body) {
  return HashToHex(Fnv1a64(std::string(facade) + "\n" + body));
}

}  // namespace fo2dt
