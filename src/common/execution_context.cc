#include "common/execution_context.h"

#include "common/strings.h"

namespace fo2dt {

CancellationToken CancellationToken::Create() {
  return CancellationToken(std::make_shared<State>());
}

CancellationToken CancellationToken::WrapFlag(const std::atomic<bool>* flag) {
  auto state = std::make_shared<State>();
  state->external = flag;
  return CancellationToken(std::move(state));
}

CancellationToken CancellationToken::Child() const {
  auto state = std::make_shared<State>();
  state->parent = state_;  // nullptr parent (inert token) -> fresh root
  return CancellationToken(std::move(state));
}

Status ExecutionContext::ChargeMemory(uint64_t bytes,
                                      const char* module) const {
  uint64_t total =
      bytes_charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  phases_.RecordMemory(total);  // high-water gauge, budget or not
  // Per-phase attribution: the innermost open memory scope on this thread
  // wins; a charge outside any scope falls back to the charging module's
  // phase so no byte goes unattributed.
  Phase phase;
  if (!ScopedPhaseMemory::CurrentPhase(&phase)) phase = PhaseForModule(module);
  phases_.RecordPhaseMemory(phase, total);
  if (max_bytes_ != 0 && total > max_bytes_) {
    return Status::ResourceExhausted(
        StringFormat("memory budget exhausted in %s: %llu of %llu bytes",
                     module, static_cast<unsigned long long>(total),
                     static_cast<unsigned long long>(max_bytes_)),
        StopReason{StopKind::kMemoryBudget, module, total, max_bytes_});
  }
  return Status::OK();
}

Status ExecutionContext::Check(const char* module) const {
  if (token_.IsCancelled()) {
    return Status::Cancelled(
        StringFormat("cancelled by caller in %s", module),
        CancelReason(module));
  }
  if (has_deadline_) {
    counters_.deadline_checks.fetch_add(1, std::memory_order_relaxed);
    if (std::chrono::steady_clock::now() >= deadline_) {
      return Status::ResourceExhausted(
          StringFormat("deadline exceeded in %s: %llu of %llu ms", module,
                       static_cast<unsigned long long>(ElapsedMs()),
                       static_cast<unsigned long long>(budget_ms_)),
          DeadlineReason(module));
    }
  }
  return Status::OK();
}

Status ExecCheckpoint::Fire() {
  if (token_ != nullptr && token_->IsCancelled()) {
    // The branch token chains to the caller's token, so distinguish "the
    // whole solve was cancelled" from "a first-wins sibling won".
    if (exec_ != nullptr && exec_->token().IsCancelled()) {
      return Status::Cancelled(
          StringFormat("cancelled by caller in %s", module_),
          ExecutionContext::CancelReason(module_));
    }
    return Status::Cancelled(
        StringFormat("abandoned in %s: a sibling branch already produced the "
                     "answer",
                     module_),
        ExecutionContext::CancelReason(module_));
  }
  if (exec_ != nullptr) return exec_->Check(module_);
  return Status::OK();
}

FirstWinsFanout::FirstWinsFanout(size_t num_branches,
                                 const CancellationToken& parent)
    : stop_at_(num_branches) {
  tokens_.reserve(num_branches);
  for (size_t i = 0; i < num_branches; ++i) {
    tokens_.push_back(parent.Child());
  }
}

void FirstWinsFanout::MarkTerminal(size_t i) {
  size_t cur = stop_at_.load(std::memory_order_acquire);
  while (i < cur &&
         !stop_at_.compare_exchange_weak(cur, i, std::memory_order_acq_rel)) {
  }
  // Branches above the (possibly just lowered) terminal index can no longer
  // influence the verdict; cancel them so they stop burning cycles. Cancel
  // is idempotent, so racing winners may overlap harmlessly.
  size_t stop = stop_at_.load(std::memory_order_acquire);
  for (size_t j = stop + 1; j < tokens_.size(); ++j) {
    tokens_[j].RequestCancel();
  }
}

}  // namespace fo2dt
