#include "common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fo2dt {
namespace {

void DefaultViolationHandler(const names::LockRankEntry& held,
                             const names::LockRankEntry& acquiring) {
  std::fprintf(stderr,
               "fo2dt: lock order violation: acquiring \"%s\" (rank %d) while"
               " holding \"%s\" (rank %d); hierarchy requires strictly"
               " ascending ranks (tools/lint/registry.json lock_ranks)\n",
               acquiring.name, acquiring.rank, held.name, held.rank);
  std::abort();
}

// atomic: handler/enabled flags are configuration toggled before contending
// threads exist; relaxed loads on the hot path, store visibility is by test
// setup ordering, not by these atomics.
std::atomic<LockOrderViolationHandler> g_handler{DefaultViolationHandler};
std::atomic<int> g_enabled{-1};  // -1: unresolved, consult env/build type

bool ResolveEnabledFromEnvironment() {
  const char* env = std::getenv("FO2DT_LOCK_CHECK");
  if (env != nullptr && *env != '\0') return std::strcmp(env, "0") != 0;
#if defined(NDEBUG)
  return false;
#else
  return true;
#endif
}

// Per-thread stack of held rank entries. Fixed-size POD storage: no TLS
// destructor ordering hazards, and depth beyond the cap only pauses checking
// (overflow_ balances the pops) — real nesting depth here is <= 4.
constexpr int kMaxHeldLocks = 16;
thread_local const names::LockRankEntry* t_held[kMaxHeldLocks];
thread_local int t_depth = 0;
thread_local int t_overflow = 0;

}  // namespace

LockOrderViolationHandler SetLockOrderViolationHandler(
    LockOrderViolationHandler handler) {
  if (handler == nullptr) handler = DefaultViolationHandler;
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

bool SetLockOrderChecking(bool enabled) {
  const int prev = g_enabled.exchange(enabled ? 1 : 0,
                                      std::memory_order_acq_rel);
  return prev == -1 ? ResolveEnabledFromEnvironment() : prev != 0;
}

bool LockOrderCheckingEnabled() {
  int state = g_enabled.load(std::memory_order_acquire);
  if (state == -1) {
    state = ResolveEnabledFromEnvironment() ? 1 : 0;
    // First caller wins; a concurrent SetLockOrderChecking overrides us.
    int expected = -1;
    if (!g_enabled.compare_exchange_strong(expected, state,
                                           std::memory_order_acq_rel)) {
      state = expected;
    }
  }
  return state != 0;
}

namespace internal {

void NoteAcquire(const names::LockRankEntry& rank) {
  if (t_depth >= kMaxHeldLocks) {
    ++t_overflow;
    return;
  }
  if (t_depth > 0 && LockOrderCheckingEnabled()) {
    // The stack is ascending by construction, so the top carries the
    // thread's maximum held rank.
    const names::LockRankEntry* top = t_held[t_depth - 1];
    if (rank.rank <= top->rank) {
      g_handler.load(std::memory_order_acquire)(*top, rank);
      // A returning (test) handler lets the acquisition proceed; fall
      // through so the pop in NoteRelease stays balanced.
    }
  }
  t_held[t_depth++] = &rank;
}

void NoteRelease(const names::LockRankEntry& rank) {
  if (t_overflow > 0) {
    --t_overflow;
    return;
  }
  // Locks release LIFO in practice, but scan for robustness: an
  // out-of-order unlock must not desync the stack.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i] == &rank) {
      for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
      --t_depth;
      return;
    }
  }
}

int HeldLockDepth() { return t_depth; }

}  // namespace internal
}  // namespace fo2dt
