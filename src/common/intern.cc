#include "common/intern.h"

#include <cassert>
#include <cstring>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/registry_names.h"

namespace fo2dt {

namespace {

constexpr size_t kInitialIndexCapacity = 64;  // power of two

}  // namespace

InternPool::InternPool() : index_(kInitialIndexCapacity, 0) {}

InternHandle InternPool::Find(const void* data, size_t len,
                              uint64_t hash) const {
  const size_t mask = index_.size() - 1;
  size_t slot = static_cast<size_t>(hash) & mask;
  while (index_[slot] != 0) {
    const InternHandle handle = index_[slot] - 1;
    const Record& rec = records_[handle];
    if (rec.hash == hash && rec.length == len &&
        (len == 0 ||
         std::memcmp(arena_.data() + rec.offset, data, len) == 0)) {
      return handle;
    }
    slot = (slot + 1) & mask;
  }
  return kInvalidInternHandle;
}

void InternPool::Grow() {
  std::vector<uint32_t> bigger(index_.size() * 2, 0);
  const size_t mask = bigger.size() - 1;
  for (uint32_t entry : index_) {
    if (entry == 0) continue;
    size_t slot = static_cast<size_t>(records_[entry - 1].hash) & mask;
    while (bigger[slot] != 0) slot = (slot + 1) & mask;
    bigger[slot] = entry;
  }
  index_.swap(bigger);
}

InternHandle InternPool::Intern(const void* data, size_t len) {
  return InternHashed(data, len, Fnv1a64Bytes(data, len));
}

InternHandle InternPool::InternHashed(const void* data, size_t len,
                                      uint64_t hash) {
  InternHandle existing = Find(data, len, hash);
  if (existing != kInvalidInternHandle) {
    ++hits_;
    return existing;
  }
  ++misses_;
  // Keep the probe sequence short: grow at ~70% load.
  if ((records_.size() + 1) * 10 >= index_.size() * 7) Grow();
  Record rec;
  rec.offset = arena_.size();
  rec.length = len;
  rec.hash = hash;
  if (len > 0) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    arena_.insert(arena_.end(), p, p + len);
  }
  assert(records_.size() < kInvalidInternHandle);
  const InternHandle handle = static_cast<InternHandle>(records_.size());
  records_.push_back(rec);
  const size_t mask = index_.size() - 1;
  size_t slot = static_cast<size_t>(hash) & mask;
  while (index_[slot] != 0) slot = (slot + 1) & mask;
  index_[slot] = handle + 1;
  return handle;
}

const uint8_t* InternPool::data(InternHandle handle) const {
  return arena_.data() + records_[handle].offset;
}

size_t InternPool::length(InternHandle handle) const {
  return records_[handle].length;
}

std::string InternPool::ToString(InternHandle handle) const {
  const Record& rec = records_[handle];
  return std::string(reinterpret_cast<const char*>(arena_.data()) + rec.offset,
                     rec.length);
}

size_t InternPool::bytes() const {
  return arena_.capacity() + records_.capacity() * sizeof(Record) +
         index_.capacity() * sizeof(uint32_t);
}

void InternPool::Clear() {
  arena_.clear();
  records_.clear();
  index_.assign(kInitialIndexCapacity, 0);
  hits_ = 0;
  misses_ = 0;
}

SharedInternTable& SharedInternTable::Instance() {
  static SharedInternTable* table =
      new SharedInternTable();  // leaked: process lifetime
  return *table;
}

InternHandle SharedInternTable::Intern(const void* data, size_t len) {
  const uint64_t hash = Fnv1a64Bytes(data, len);
  Shard& shard = shards_[static_cast<size_t>(hash) & (kNumShards - 1)];
  InternHandle local;
  {
    ScopedRankedLock lock(shard.mu);
    local = shard.pool.InternHashed(data, len, hash);
  }
  // Shard in the low bits: the local id must stay clear of the sentinel
  // after the shift.
  assert(local < (kInvalidInternHandle >> kShardBits));
  return static_cast<InternHandle>((local << kShardBits) |
                                   (static_cast<size_t>(hash) &
                                    (kNumShards - 1)));
}

InternHandle SharedInternTable::InternString(const std::string& s) {
  return Intern(s.data(), s.size());
}

std::string SharedInternTable::ToString(InternHandle handle) const {
  const Shard& shard = shards_[handle & (kNumShards - 1)];
  ScopedRankedLock lock(shard.mu);
  return shard.pool.ToString(handle >> kShardBits);
}

size_t SharedInternTable::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    ScopedRankedLock lock(shard.mu);
    total += shard.pool.size();
  }
  return total;
}

size_t SharedInternTable::bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    ScopedRankedLock lock(shard.mu);
    total += shard.pool.bytes();
  }
  return total;
}

uint64_t SharedInternTable::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    ScopedRankedLock lock(shard.mu);
    total += shard.pool.hits();
  }
  return total;
}

void SharedInternTable::Clear() {
  for (Shard& shard : shards_) {
    ScopedRankedLock lock(shard.mu);
    shard.pool.Clear();
  }
}

namespace {

// Federates the shared intern table into the unified MetricsRegistry. The
// table is monotone (records are never dropped outside tests), so reset only
// zeroes the hit counters via Clear in tests — the registry reset is a no-op
// here to keep outstanding handles valid.
const MetricsSourceRegistrar kInternMetricsSource(
    "intern",
    [](MetricsSnapshot* snap) {
      SharedInternTable& table = SharedInternTable::Instance();
      snap->Set(names::kMetricCacheInternNodes,
                static_cast<double>(table.size()));
      snap->Set(names::kMetricCacheInternHits,
                static_cast<double>(table.hits()));
      snap->Set(names::kMetricCacheInternBytes,
                static_cast<double>(table.bytes()));
    },
    [] {});

}  // namespace

}  // namespace fo2dt
