#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace fo2dt {

std::vector<std::string> SplitString(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string StripWhitespace(const std::string& text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

TextPosition TextPositionAt(const std::string& text, size_t offset) {
  TextPosition pos;
  const size_t end = offset < text.size() ? offset : text.size();
  for (size_t i = 0; i < end; ++i) {
    if (text[i] == '\n') {
      ++pos.line;
      pos.column = 1;
    } else {
      ++pos.column;
    }
  }
  return pos;
}

std::string FormatTextPosition(const std::string& text, size_t offset) {
  TextPosition pos = TextPositionAt(text, offset);
  return StringFormat("line %zu, column %zu", pos.line, pos.column);
}

}  // namespace fo2dt
