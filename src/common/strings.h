/// \file strings.h
/// \brief Small string helpers shared across modules.

#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace fo2dt {

/// Joins the elements of \p parts with \p sep, using operator<< to format.
template <typename Container>
std::string JoinToString(const Container& parts, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    first = false;
    out << p;
  }
  return out.str();
}

/// Splits \p text on character \p sep; keeps empty segments.
std::vector<std::string> SplitString(const std::string& text, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string StripWhitespace(const std::string& text);

/// True if \p text begins with \p prefix.
bool StartsWith(const std::string& text, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// 1-based line/column of a byte offset in \p text. Offsets past the end
/// report the position one past the last character.
struct TextPosition {
  size_t line = 1;
  size_t column = 1;
};

TextPosition TextPositionAt(const std::string& text, size_t offset);

/// Renders the position of \p offset in \p text as "line L, column C".
std::string FormatTextPosition(const std::string& text, size_t offset);

}  // namespace fo2dt

