#include "common/symbol.h"

namespace fo2dt {

Symbol Alphabet::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Symbol Alphabet::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoSymbol : it->second;
}

std::vector<Symbol> Alphabet::AllSymbols() const {
  std::vector<Symbol> out(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) out[i] = static_cast<Symbol>(i);
  return out;
}

}  // namespace fo2dt
