/// \file solve_cache.h
/// \brief The cross-solve cache: a persistent verdict cache plus an
/// in-memory sub-result memo, both under one LRU byte budget.
///
/// Level (b) of the caching subsystem (DESIGN.md §9): facades key solves by
/// the same canonical FNV-1a input hash the query log computes
/// (`HashToHex(Fnv1a64(facade + "\n" + canonical_body))`), so a cache key
/// printed in a JSONL record identifies the exact entry that served it. An
/// entry stores the definite verdict, the decision method, the step count,
/// the cold solve's PhaseProfile, and a facade-specific payload (e.g. the
/// witness tree in replay-alphabet text).
///
/// Soundness rules, enforced centrally in Insert():
///   * `kUnknown` is never cached — degraded solves must always be retried
///     with whatever budgets the caller has now;
///   * errors are never cached;
///   * cached verdicts are definite, so a hit reproduces the cold verdict
///     with StopReason kind == kNone, bit-for-bit.
///
/// Persistence: entries append to `FO2DT_CACHE_FILE` as single text lines
/// under `fingerprint` section headers. A loader only admits sections whose
/// fingerprint matches the running build (schema version ⊕ build stamp), so
/// stale entries from an older build self-invalidate without any file
/// rewrite — the format stays append-only.
///
/// Memory: every entry's approximate footprint is charged to the calling
/// solve's governor (ExecutionContext::ChargeMemory) before insertion — a
/// solve over its memory budget cannot grow the cache — and the cache
/// globally evicts least-recently-used entries beyond `max_bytes`.
///
/// Level (c), sub-result memoization, shares the same LRU and byte budget
/// through LookupSub/InsertSub: values are opaque serialized strings keyed
/// by canonical subterm text (LCTA emptiness verdicts, DNF branch counts,
/// simplex seed hints). Sub-results never persist: they are process-local
/// accelerators, cheap to rebuild.
///
/// Configuration: `FO2DT_CACHE=1` enables the in-memory cache,
/// `FO2DT_CACHE_FILE=<path>` enables it with persistence, and
/// `FO2DT_CACHE_BYTES=<n>` overrides the LRU budget. Defaults to disabled so
/// cold-path runs and committed baselines are byte-identical to a build
/// without the cache. Tests and benchmarks use Configure().

#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"

namespace fo2dt {

class ExecutionContext;

/// \brief One cached solve outcome. Only definite verdicts are stored.
struct SolveCacheEntry {
  /// "SAT" / "UNSAT" / "ACCEPT" / "REJECT" — never "UNKNOWN" or "ERROR:*".
  std::string verdict;
  /// The decision method of the cold solve.
  std::string method;
  /// The cold solve's facade-reported step count.
  uint64_t steps = 0;
  /// The cold solve's per-phase profile (stop is always kind == kNone).
  std::optional<PhaseProfile> profile;
  /// Facade-specific extra result, e.g. the witness DataTree serialized in
  /// the replay alphabet. Empty when the facade has nothing to reconstruct.
  std::string payload;
};

/// \brief Cache configuration; see the file comment for the env mapping.
struct SolveCacheConfig {
  /// Master switch; false leaves every Lookup/Insert a no-op.
  bool enabled = false;
  /// Append-only persistence file; empty keeps the cache in-memory only.
  std::string file;
  /// LRU byte budget over resident entries (verdicts + sub-results).
  uint64_t max_bytes = 64ull * 1024 * 1024;
  /// Fingerprint override for tests; 0 uses BuildFingerprint().
  uint64_t fingerprint = 0;
};

/// \brief Process-wide cross-solve cache. Thread-safe.
class SolveCache {
 public:
  static SolveCache& Instance();

  /// Replaces the configuration, drops resident entries, and (re)loads the
  /// persistence file's matching-fingerprint sections.
  void Configure(SolveCacheConfig config);

  SolveCacheConfig config() const;
  bool enabled() const;

  /// The fingerprint in effect (config override or BuildFingerprint()).
  uint64_t fingerprint() const;

  /// Schema version ⊕ build stamp: changes when the cache line format or the
  /// binary changes, so persisted entries never cross a build boundary.
  static uint64_t BuildFingerprint();

  /// Looks up a verdict entry. \p hit_metric / \p miss_metric must be
  /// registered metric-key constants (names::kMetricCache...); the matching
  /// counter is bumped and the disposition is noted for the query log's
  /// `cache` field. Returns nullopt when disabled or absent.
  std::optional<SolveCacheEntry> Lookup(const std::string& key,
                                        const char* hit_metric,
                                        const char* miss_metric);

  /// Inserts a verdict entry unless the verdict is not definite (UNKNOWN /
  /// ERROR — the kUnknown-never-cached rule) or \p exec refuses the memory
  /// charge (\p module attributes the charge; a budget-exhausted solve skips
  /// caching rather than failing). Appends to the persistence file.
  void Insert(const std::string& key, const SolveCacheEntry& entry,
              const ExecutionContext* exec, const char* module);

  /// Sub-result memo: same LRU, opaque serialized values, never persisted.
  std::optional<std::string> LookupSub(const std::string& key,
                                       const char* hit_metric,
                                       const char* miss_metric);
  void InsertSub(const std::string& key, std::string value,
                 const ExecutionContext* exec, const char* module);

  /// Counters mirrored into the MetricsRegistry ("solve_cache" source).
  struct Stats {
    uint64_t solve_hits = 0;
    uint64_t solve_misses = 0;
    uint64_t sub_hits = 0;
    uint64_t sub_misses = 0;
    uint64_t solve_evictions = 0;
    uint64_t sub_evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };
  Stats stats() const;

  /// Drops resident entries and zeroes counters. Leaves the persistence
  /// file untouched (tests re-Configure to reload it).
  void Clear();

 private:
  SolveCache();  // seeds from FO2DT_CACHE / FO2DT_CACHE_FILE / _BYTES

  enum class Slot { kSolve, kSub };
  struct Stored {
    SolveCacheEntry entry;                              // kSolve payload
    std::string value;                                  // kSub payload
    uint64_t bytes = 0;
    std::list<std::pair<Slot, std::string>>::iterator lru_it;
  };

  void LoadFileLocked() FO2DT_REQUIRES(mu_);
  void AppendEntryLocked(const std::string& key, const SolveCacheEntry& entry)
      FO2DT_REQUIRES(mu_);
  void EvictLocked() FO2DT_REQUIRES(mu_);
  void InsertLocked(Slot slot, const std::string& key, Stored stored)
      FO2DT_REQUIRES(mu_);
  uint64_t FingerprintLocked() const FO2DT_REQUIRES(mu_);

  mutable Mutex mu_{names::kLockCacheSolve};
  SolveCacheConfig config_ FO2DT_GUARDED_BY(mu_);
  // front = oldest
  std::list<std::pair<Slot, std::string>> lru_ FO2DT_GUARDED_BY(mu_);
  std::unordered_map<std::string, Stored> solve_ FO2DT_GUARDED_BY(mu_);
  std::unordered_map<std::string, Stored> sub_ FO2DT_GUARDED_BY(mu_);
  uint64_t bytes_ FO2DT_GUARDED_BY(mu_) = 0;
  bool header_written_ FO2DT_GUARDED_BY(mu_) = false;
  /// Hit/miss/evict counts keyed by the registered metric name each lookup
  /// site passed; exported verbatim by the "solve_cache" metrics source.
  std::unordered_map<std::string, uint64_t> counters_ FO2DT_GUARDED_BY(mu_);
};

/// The verdict-cache key for \p body under \p facade —
/// `HashToHex(Fnv1a64(facade + "\n" + body))`, identical to the query log's
/// input_hash, so the hash in a JSONL record names the entry that served it.
std::string SolveCacheKey(const char* facade, const std::string& body);

}  // namespace fo2dt
