/// \file mutex.h
/// \brief Ranked mutex + RAII lock with runtime lock-order checking.
///
/// Every long-lived lock in the tree is a `fo2dt::Mutex` constructed with its
/// entry from the generated lock hierarchy (`names::kLock*`, rendered from
/// the `lock_ranks` section of tools/lint/registry.json). The hierarchy rule
/// is strict rank ascent: a thread may only acquire a lock whose rank is
/// strictly greater than the rank of every lock it already holds. The same
/// table feeds three enforcement layers:
///
///   * Clang Thread Safety Analysis — `Mutex` is a `capability("mutex")`, so
///     `FO2DT_GUARDED_BY`/`FO2DT_REQUIRES` contracts compile to proofs under
///     the lint preset's `-Wthread-safety -Werror`.
///   * This runtime checker — each thread keeps a stack of held ranks;
///     out-of-order acquisition invokes the violation handler (default:
///     report and abort). Bookkeeping always runs (an array store and an
///     increment); the *check* is enabled by default in builds without
///     NDEBUG and can be forced either way with FO2DT_LOCK_CHECK=0/1 or
///     SetLockOrderChecking().
///   * `fo2dt_lint.py --deep` — the lock-annotation rule flags bare
///     `std::mutex` members, so new locks must come through here.
///
/// `ScopedRankedLock` wraps `std::unique_lock<std::mutex>` (not a
/// `lock_guard`) so condition variables keep working:
/// `cv.wait(lock.native(), pred)`. The rank stays on the thread's stack for
/// the duration of the wait — the hierarchy constrains acquisition *order*,
/// and the wait's internal release/reacquire cannot reorder against locks
/// acquired later.

#pragma once

#include <mutex>

#include "common/annotations.h"
#include "common/registry_names.h"

namespace fo2dt {

/// Called on an out-of-order acquisition attempt: \p held is the
/// highest-ranked lock the thread already holds, \p acquiring the offender.
/// The default handler writes both to stderr and aborts. A test handler may
/// return, in which case the acquisition proceeds (bookkeeping stays
/// consistent).
using LockOrderViolationHandler = void (*)(
    const names::LockRankEntry& held, const names::LockRankEntry& acquiring);

/// Installs \p handler and returns the previous one. Pass nullptr to restore
/// the default report-and-abort handler. Not thread-safe; install before
/// spawning contending threads (tests).
LockOrderViolationHandler SetLockOrderViolationHandler(
    LockOrderViolationHandler handler);

/// Forces the runtime order check on or off, overriding the build-type /
/// FO2DT_LOCK_CHECK default. Returns the previous setting.
bool SetLockOrderChecking(bool enabled);

/// Whether the runtime order check is currently active.
bool LockOrderCheckingEnabled();

namespace internal {
// Per-thread held-rank bookkeeping; called by Mutex/ScopedRankedLock only.
void NoteAcquire(const names::LockRankEntry& rank);
void NoteRelease(const names::LockRankEntry& rank);
// Depth of the calling thread's held-lock stack (tests).
int HeldLockDepth();
}  // namespace internal

/// \brief Rank-checked wrapper over std::mutex. Satisfies BasicLockable /
/// Lockable, so std::lock_guard<fo2dt::Mutex> works; prefer ScopedRankedLock,
/// which also supports condition-variable waits.
class FO2DT_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const names::LockRankEntry& rank) : rank_(&rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FO2DT_ACQUIRE() {
    internal::NoteAcquire(*rank_);
    mu_.lock();
  }
  void unlock() FO2DT_RELEASE() {
    mu_.unlock();
    internal::NoteRelease(*rank_);
  }
  bool try_lock() FO2DT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    internal::NoteAcquire(*rank_);
    return true;
  }

  const names::LockRankEntry& rank() const { return *rank_; }

  /// The underlying std::mutex, for ScopedRankedLock only — going through
  /// this directly skips both the static capability and the rank check.
  std::mutex& native_for_scoped_lock() { return mu_; }

 private:
  std::mutex mu_;
  const names::LockRankEntry* rank_;
};

/// \brief RAII lock over a ranked Mutex, built on std::unique_lock so
/// condition variables can wait on it via native().
class FO2DT_SCOPED_CAPABILITY ScopedRankedLock {
 public:
  explicit ScopedRankedLock(Mutex& mu) FO2DT_ACQUIRE(mu) : mu_(&mu) {
    internal::NoteAcquire(mu.rank());
    lock_ = std::unique_lock<std::mutex>(mu.native_for_scoped_lock());
  }
  ~ScopedRankedLock() FO2DT_RELEASE() {
    if (lock_.owns_lock()) lock_.unlock();
    internal::NoteRelease(mu_->rank());
  }
  ScopedRankedLock(const ScopedRankedLock&) = delete;
  ScopedRankedLock& operator=(const ScopedRankedLock&) = delete;

  /// The wrapped unique_lock, for `cv.wait(lock.native(), pred)`. The rank
  /// entry stays on the held stack across the wait; see the header comment.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

}  // namespace fo2dt
