/// \file arena.h
/// \brief Per-solve bump allocator for flat solver scratch.
///
/// The hot decision-procedure loops (run-set propagation, the Parikh grammar
/// build, connectivity-cut scratch) need many short-lived flat arrays whose
/// lifetimes nest exactly like the call stack. SolveArena carves them out of
/// reusable blocks with a pointer bump and releases them wholesale when the
/// enclosing Frame unwinds — no per-array malloc/free, no destructor walks.
///
/// Lifetime model: each thread owns one arena (SolveArena::ThreadLocal());
/// a function that wants scratch opens a `SolveArena::Frame`, allocates
/// freely, and the frame's destructor rewinds the arena to its entry mark.
/// Frames nest; blocks are retained across frames, so steady-state solve
/// traffic allocates from warm memory.
///
/// Accounting: the arena itself never enforces a budget — enforcement stays
/// with the resident structures that charge ExecutionContext::ChargeMemory
/// directly. But when a solve attaches its governor with
/// ScopedArenaAccounting, every *new* block the arena reserves (plus the
/// blocks already warm at attach time) is charged to the context, so the
/// governor's MemoryHighWater and the per-phase gauges sampled by
/// ScopedPhaseMemory include solver scratch instead of undercounting it.
///
/// Concurrency contract (DESIGN.md §12): SolveArena is thread-COMPATIBLE,
/// not thread-safe — it takes no locks and has no atomics. Every arena is
/// thread-confined: ThreadLocal() hands each thread its own instance, and
/// pointers allocated from a frame must not outlive it or escape to another
/// thread (the deep lint arena-escape rule enforces the non-escape half).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace fo2dt {

class ExecutionContext;

/// \brief Thread-local bump allocator with stack-discipline frames.
class SolveArena {
 public:
  SolveArena() = default;
  SolveArena(const SolveArena&) = delete;
  SolveArena& operator=(const SolveArena&) = delete;

  /// The calling thread's arena (created on first use, process lifetime).
  static SolveArena& ThreadLocal();

  /// \p bytes of storage aligned to \p align (a power of two no larger than
  /// alignof(std::max_align_t)). Never fails short of ::operator new failing.
  void* Allocate(size_t bytes, size_t align);

  /// A zero-initialized array of \p n trivially-destructible elements. The
  /// pointer is valid until the enclosing Frame unwinds.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound, never destroyed");
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena arrays are raw storage");
    void* p = Allocate(n * sizeof(T), alignof(T));
    std::memset(p, 0, n * sizeof(T));
    return static_cast<T*>(p);
  }

  /// Live bytes handed out below the current frame stack.
  size_t used() const { return used_; }
  /// Peak of used() over the arena's lifetime.
  size_t high_water() const { return high_water_; }
  /// Total block bytes reserved from the system (>= high_water()).
  size_t reserved() const { return reserved_; }

  /// Charges future block reservations (and the already-reserved bytes, once,
  /// now) to \p exec under \p module. Null detaches. Prefer the RAII
  /// ScopedArenaAccounting over calling this directly.
  void AttachAccounting(const ExecutionContext* exec, const char* module);

  /// \brief Rewinds the arena to its construction-time mark on destruction.
  class Frame {
   public:
    explicit Frame(SolveArena& arena = ThreadLocal())
        : arena_(&arena),
          block_(arena.cur_block_),
          offset_(arena.cur_off_),
          used_(arena.used_) {}
    ~Frame() {
      arena_->cur_block_ = block_;
      arena_->cur_off_ = offset_;
      arena_->used_ = used_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    SolveArena* arena_;
    size_t block_;
    size_t offset_;
    size_t used_;
  };

 private:
  friend class ScopedArenaAccounting;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t cap = 0;
  };

  void AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t cur_block_ = 0;  // index of the block being bumped (== blocks_.size()
                          // when empty)
  size_t cur_off_ = 0;
  size_t used_ = 0;
  size_t high_water_ = 0;
  size_t reserved_ = 0;

  const ExecutionContext* exec_ = nullptr;
  const char* module_ = nullptr;
};

/// \brief Attaches the thread-local arena to a solve's governor for the
/// scope's duration, restoring the previous attachment on exit.
class ScopedArenaAccounting {
 public:
  ScopedArenaAccounting(const ExecutionContext* exec, const char* module);
  ~ScopedArenaAccounting();
  ScopedArenaAccounting(const ScopedArenaAccounting&) = delete;
  ScopedArenaAccounting& operator=(const ScopedArenaAccounting&) = delete;

 private:
  const ExecutionContext* prev_exec_;
  const char* prev_module_;
};

}  // namespace fo2dt
