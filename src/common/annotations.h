/// \file annotations.h
/// \brief Clang Thread Safety Analysis capability macros (no-ops off-clang).
///
/// Wraps the `capability`/`guarded_by`/`acquire_capability` attribute family
/// so every mutex-bearing type in the tree can state its locking contract in
/// the declaration itself. Under clang the lint preset compiles with
/// `-Wthread-safety -Werror`, turning the annotations into compile-time
/// proofs; under gcc (the default toolchain here) every macro expands to
/// nothing and the declarations are unchanged.
///
/// Conventions:
///   * Data members protected by a lock carry FO2DT_GUARDED_BY(mu_).
///   * Private `FooLocked()` helpers carry FO2DT_REQUIRES(mu_).
///   * RAII lock types carry FO2DT_SCOPED_CAPABILITY with
///     FO2DT_ACQUIRE/FO2DT_RELEASE on the constructor/destructor.
///   * Atomics are self-synchronizing, so they are *not* guarded; instead
///     each `std::atomic` member documents its ordering contract in an
///     adjacent `// atomic:` comment (enforced by `fo2dt_lint.py --deep`'s
///     lock-annotation rule).
///   * Code that is correct but inexpressible (e.g. the release/acquire
///     publication in TreeAutomaton::EnsureIndex) uses
///     FO2DT_NO_THREAD_SAFETY_ANALYSIS with a comment explaining the manual
///     proof.

#pragma once

#if defined(__clang__)
#define FO2DT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FO2DT_THREAD_ANNOTATION(x)  // no-op: gcc has no thread-safety pass
#endif

/// Marks a type as a capability (lockable). The string names the capability
/// kind in diagnostics ("mutex").
#define FO2DT_CAPABILITY(x) FO2DT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define FO2DT_SCOPED_CAPABILITY FO2DT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding \p x.
#define FO2DT_GUARDED_BY(x) FO2DT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by \p x.
#define FO2DT_PT_GUARDED_BY(x) FO2DT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define FO2DT_REQUIRES(...) \
  FO2DT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FO2DT_REQUIRES_SHARED(...) \
  FO2DT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define FO2DT_ACQUIRE(...) \
  FO2DT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FO2DT_ACQUIRE_SHARED(...) \
  FO2DT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define FO2DT_RELEASE(...) \
  FO2DT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FO2DT_RELEASE_SHARED(...) \
  FO2DT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns \p b.
#define FO2DT_TRY_ACQUIRE(...) \
  FO2DT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (deadlock guard for self-recursive locking).
#define FO2DT_EXCLUDES(...) FO2DT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares static ordering between capabilities (hierarchy edges).
#define FO2DT_ACQUIRED_BEFORE(...) \
  FO2DT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FO2DT_ACQUIRED_AFTER(...) \
  FO2DT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define FO2DT_ASSERT_CAPABILITY(x) \
  FO2DT_THREAD_ANNOTATION(assert_capability(x))

/// Accessor returning a reference to the capability guarding `this`.
#define FO2DT_RETURN_CAPABILITY(x) FO2DT_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of analysis. Every use must carry a comment with the
/// manual correctness argument; the deep lint audits these.
#define FO2DT_NO_THREAD_SAFETY_ANALYSIS \
  FO2DT_THREAD_ANNOTATION(no_thread_safety_analysis)
