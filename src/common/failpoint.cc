#include "common/failpoint.h"

#include <algorithm>

namespace fo2dt {

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // leaked: process lifetime
  return *instance;
}

void Failpoints::Enable(const std::string& site,
                        std::function<void(void*)> callback, int64_t skip,
                        int64_t fire) {
  ScopedRankedLock lock(mu_);
  auto [it, inserted] = sites_.try_emplace(site);
  it->second.callback = std::move(callback);
  it->second.skip = skip;
  it->second.fire = fire;
  it->second.hits = 0;
  if (inserted) active_sites_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::Disable(const std::string& site) {
  ScopedRankedLock lock(mu_);
  if (sites_.erase(site) > 0) {
    active_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisableAll() {
  ScopedRankedLock lock(mu_);
  sites_.clear();
  active_sites_.store(0, std::memory_order_relaxed);
}

std::vector<std::string> Failpoints::ArmedSites() const {
  ScopedRankedLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, _] : sites_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t Failpoints::HitCount(const std::string& site) const {
  ScopedRankedLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

void Failpoints::Hit(const char* site, void* arg) {
  std::function<void(void*)> callback;
  {
    ScopedRankedLock lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return;
    Site& s = it->second;
    ++s.hits;
    if (s.skip > 0) {
      --s.skip;
      return;
    }
    if (s.fire == 0) return;
    if (s.fire > 0) --s.fire;
    callback = s.callback;  // copy: run outside the lock (callback may
                            // re-enter the registry, e.g. to disable itself)
  }
  if (callback) callback(arg);
}

}  // namespace fo2dt
