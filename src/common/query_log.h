/// \file query_log.h
/// \brief The per-solve query-log record and its JSONL sink.
///
/// Every facade solve leaves exactly one structured record: what was asked
/// (a stable input hash and size), under which budgets, what came out
/// (verdict, method, StopReason), and where the effort went (the full
/// per-phase profile with wall time, effort, and memory high-water). The
/// records append to a JSON-Lines file configured via `FO2DT_QUERY_LOG` (or
/// programmatically), one object per line, so `tools/report/fo2dt_report.py`
/// can aggregate histories across runs and machines.
///
/// Field names are registry-backed (tools/lint/registry.json `log_fields` →
/// names::kLogField...), so the C++ writer, the Python analyzer, and the
/// schema ctest cannot silently disagree on the schema.
///
/// Layering: this header is src/common — it knows nothing about formulas,
/// trees, or automata. Facades serialize their own inputs to strings and
/// hand them down (see common/flight_recorder.h for the recording RAII).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"

namespace fo2dt {

/// Escapes \p s for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// \brief Facade-agnostic outcome of one solve, as the flight recorder sees
/// it. Facades convert their own result types (SatResult, Result<bool>)
/// into this common-layer shape.
struct SolveOutcome {
  /// "SAT" / "UNSAT" / "UNKNOWN" for satisfiability facades, "ACCEPT" /
  /// "REJECT" for membership, "ERROR:<code name>" for failed calls.
  std::string verdict;
  /// The decision method ("bounded_model_search", "counting_abstraction",
  /// "lcta_ilp", ...); empty when not applicable.
  std::string method;
  /// Facade-reported step count (SatResult::steps or equivalent).
  uint64_t steps = 0;
  /// The structured stop, kind == kNone for definite verdicts.
  StopReason stop;
  /// Per-phase profile; the recorder snapshots the ExecutionContext when a
  /// facade leaves this unset.
  std::optional<PhaseProfile> profile;
};

/// \brief One query-log record; renders as a single JSONL line whose keys
/// follow names::kAllLogFields order. All fields are always emitted so
/// downstream consumers never need existence checks.
struct QueryRecord {
  int v = 1;                 ///< schema version
  uint64_t ts_ms = 0;        ///< wall clock at solve end, ms since epoch
  const char* facade = "";   ///< names::kFacade... constant
  /// End-to-end correlation id (wire request → this record → capture
  /// bundle); empty for unattributed CLI/bench solves.
  std::string request_id;
  std::string input_hash;    ///< 16 hex digits (Fnv1a64 of facade + input)
  uint64_t input_size = 0;   ///< canonical input bytes
  SolveOutcome outcome;
  uint64_t wall_ms = 0;      ///< end-to-end wall time of the solve
  uint64_t cpu_ms = 0;       ///< process CPU time consumed
  uint64_t threads = 1;      ///< worker thread count in effect
  uint64_t seed = 0;         ///< RandomSource seed in effect
  /// The Table-I-style budget constants in effect (max_model_nodes,
  /// max_steps, max_cuts, ...), facade-specific.
  std::vector<std::pair<std::string, uint64_t>> budgets;
  std::string capture;       ///< bundle directory, or empty
  /// Solve-cache disposition: "hit" when the verdict was served from the
  /// cross-solve cache, "miss" when the cache was consulted and populated,
  /// empty when caching was disabled for this solve.
  std::string cache;

  std::string ToJsonLine() const;
};

/// \brief Process-wide append-only JSONL sink. Thread-safe; appends are
/// whole-line and serialized under one mutex, so concurrent solves never
/// interleave partial records.
class QueryLog {
 public:
  static QueryLog& Instance();

  /// Points the sink at \p path (empty disables logging). Overrides the
  /// FO2DT_QUERY_LOG environment configuration.
  void Configure(std::string path);

  std::string path() const;
  bool enabled() const;

  /// Appends one record line (newline added here). No-op when disabled.
  Status Append(const std::string& line);

 private:
  QueryLog();  // seeds path_ from FO2DT_QUERY_LOG

  mutable Mutex mu_{names::kLockQuerylogSink};
  std::string path_ FO2DT_GUARDED_BY(mu_);
};

}  // namespace fo2dt
