/// \file intern.h
/// \brief Hash-consing intern table: canonical byte records to flat uint32
/// handles with O(1) equality.
///
/// The pool stores each distinct record exactly once in a flat byte arena and
/// hands out dense `uint32` handles; two records are byte-equal iff their
/// handles are equal, so equality and hashing of interned terms are O(1)
/// integer operations. This is the dedup-database idiom (canonicalize, then
/// intern): the logic layer encodes canonicalized formula nodes as records
/// whose operands are child handles, the facades intern canonical automaton
/// texts, and the solve cache reuses the resulting ids as cheap keys.
///
/// `InternPool` is the single-threaded core; `SharedInternTable` is the
/// process-wide, mutex-guarded instance that also federates the
/// cache.intern.* counters into the MetricsRegistry.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace fo2dt {

/// Dense id of one interned record. Handles are allocated consecutively from
/// zero, so they index companion side tables directly.
using InternHandle = uint32_t;

/// Sentinel for "no record" (the pool can never grow this large).
inline constexpr InternHandle kInvalidInternHandle = 0xffffffffu;

/// \brief Flat-arena hash-consing pool. Not thread-safe; wrap with a mutex
/// (see SharedInternTable) or confine to one thread.
class InternPool {
 public:
  InternPool();

  /// Interns \p len bytes at \p data: returns the existing handle when an
  /// identical record is resident, otherwise copies the bytes into the arena
  /// and allocates the next handle.
  InternHandle Intern(const void* data, size_t len);
  /// Same, with \p hash = Fnv1a64Bytes(data, len) already computed (the
  /// sharded table hashes once to pick a shard and reuses it here).
  InternHandle InternHashed(const void* data, size_t len, uint64_t hash);
  InternHandle InternString(const std::string& s) {
    return Intern(s.data(), s.size());
  }

  /// Pointer/length of the record behind \p handle. The pointer is stable:
  /// the arena only grows and records are never moved (offsets are fixed at
  /// insertion; growth reallocates the vector, so the pointer is only valid
  /// until the next Intern — copy out if you must hold it across inserts).
  const uint8_t* data(InternHandle handle) const;
  size_t length(InternHandle handle) const;
  std::string ToString(InternHandle handle) const;

  /// Number of distinct records resident.
  size_t size() const { return records_.size(); }
  /// Arena + index footprint in bytes (approximate resident cost).
  size_t bytes() const;
  /// Intern calls that matched an existing record.
  uint64_t hits() const { return hits_; }
  /// Intern calls that allocated a new record.
  uint64_t misses() const { return misses_; }

  /// Drops every record and counter (tests).
  void Clear();

 private:
  struct Record {
    size_t offset;   ///< start in arena_
    size_t length;   ///< record length in bytes
    uint64_t hash;   ///< FNV-1a 64 of the record bytes
  };

  InternHandle Find(const void* data, size_t len, uint64_t hash) const;
  void Grow();

  std::vector<uint8_t> arena_;
  std::vector<Record> records_;
  /// Open-addressed index: slot holds handle + 1, 0 means empty. Capacity is
  /// a power of two; linear probing; rebuilt on growth.
  std::vector<uint32_t> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// \brief Process-wide intern table shared by the logic layer (canonical
/// formula nodes) and the facades (canonical automaton texts). Thread-safe.
///
/// Sharded: the record hash picks one of kNumShards independent pools, each
/// behind its own lock, so concurrent solves interning unrelated terms do
/// not serialize on one global mutex. A handle encodes its shard in the low
/// bits (`local << kShardBits | shard`), so handles stay stable uint32 ids
/// with O(1) equality — but they are dense only *per shard*; treat
/// SharedInternTable handles as opaque ids (every current consumer does:
/// cache-key components and record operands).
///
/// Aggregate accessors (size/bytes/hits) and Clear visit shards one at a
/// time — never holding two shard locks at once, which keeps the lock
/// hierarchy free of same-rank nesting. Snapshots may therefore tear across
/// shards; the counters are observability, not invariants.
class SharedInternTable {
 public:
  static constexpr size_t kShardBits = 3;
  static constexpr size_t kNumShards = 1u << kShardBits;

  static SharedInternTable& Instance();

  InternHandle Intern(const void* data, size_t len);
  InternHandle InternString(const std::string& s);

  /// Copy of the record behind \p handle (safe across concurrent inserts).
  std::string ToString(InternHandle handle) const;

  size_t size() const;
  size_t bytes() const;
  uint64_t hits() const;

  /// Drops every record (tests only — outstanding handles become dangling).
  void Clear();

 private:
  SharedInternTable() = default;

  struct Shard {
    mutable Mutex mu{names::kLockCacheIntern};
    InternPool pool FO2DT_GUARDED_BY(mu);
  };

  std::array<Shard, kNumShards> shards_;
};

}  // namespace fo2dt
