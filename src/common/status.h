/// \file status.h
/// \brief Arrow-style error propagation: Status and Result<T>.
///
/// The public API of fo2dt never throws; every fallible operation returns a
/// Status (when there is no value to produce) or a Result<T>. This mirrors the
/// error-handling idiom of production database engines (Arrow, RocksDB).

#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace fo2dt {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  /// A caller supplied an argument that violates the documented contract.
  kInvalidArgument = 1,
  /// A well-formed request that the current implementation does not cover
  /// (e.g. a formula outside the guarded local fragment, see DESIGN.md §2).
  kNotImplemented = 2,
  /// Parsing of a textual artifact (formula, XPath, XML, DTD) failed.
  kParseError = 3,
  /// A configured resource budget (node count, solver iterations) ran out
  /// before the procedure reached a verdict.
  kResourceExhausted = 4,
  /// Arithmetic left the representable range of a fixed-width type.
  kOverflow = 5,
  /// An internal invariant failed; indicates a bug in fo2dt itself.
  kInternal = 6,
  /// A lookup did not find the requested entity.
  kNotFound = 7,
  /// The operation was abandoned because a concurrent sibling already
  /// produced the answer (first-SAT-wins fan-outs); never a verdict.
  kCancelled = 8,
};

/// \brief Human-readable name of a status code ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Which budget (or external signal) terminated a computation early.
///
/// Every ResourceExhausted/Cancelled status produced by the solver pipeline
/// carries a StopReason so callers can distinguish "the wall-clock deadline
/// fired inside simplex" from "the ILP node budget ran out" without parsing
/// message strings. kNone is reserved for statuses predating the governor.
enum class StopKind : int {
  kNone = 0,
  /// The ExecutionContext wall-clock deadline passed.
  kDeadline = 1,
  /// A CancellationToken (external caller, or a first-SAT-wins sibling that
  /// already produced the answer) requested cancellation.
  kCancelled = 2,
  /// A step budget (model-enumeration steps, marker-predicate combinations).
  kStepBudget = 3,
  /// A branch-and-bound node budget (IlpOptions::max_nodes).
  kNodeBudget = 4,
  /// The LCTA connectivity-cut round budget (LctaOptions::max_cuts).
  kCutBudget = 5,
  /// A DNF expansion / disjunct branch cap.
  kBranchBudget = 6,
  /// The VATA derivation candidate budget.
  kCandidateBudget = 7,
  /// The simplex pivot cap (kRebuildPivotCap without successful repair).
  kPivotBudget = 8,
  /// The memory accountant's byte budget.
  kMemoryBudget = 9,
  /// A failpoint-injected fault (testing only; never in production builds).
  kInjectedFault = 10,
};

/// \brief Human-readable name of a stop kind ("deadline", "node budget", ...).
const char* StopKindToString(StopKind kind);

/// \brief Structured description of why a computation stopped early.
///
/// Carried inside Status (for ResourceExhausted/Cancelled) and surfaced on
/// SatResult so that every layer reports *which* budget died, at what counter
/// value, against which configured limit, and in which module.
struct StopReason {
  StopKind kind = StopKind::kNone;
  /// Static identifier of the module that detected the stop, e.g.
  /// "solverlp.ilp" or "lcta.cuts". Must point at storage with static
  /// lifetime (string literals).
  const char* module = "";
  /// Counter value when the budget was exhausted (elapsed ms for kDeadline).
  uint64_t counter = 0;
  /// The configured limit (budget ms for kDeadline; 0 when not applicable).
  uint64_t limit = 0;

  bool stopped() const { return kind != StopKind::kNone; }

  /// e.g. "deadline in lcta.cuts (52 of 50 ms)".
  std::string ToString() const;
};

/// \brief The outcome of a fallible operation that produces no value.
///
/// A Status is either OK or carries a code plus a message. The OK state is
/// represented without allocation; error states allocate one small block.
///
/// [[nodiscard]]: silently dropping a Status is exactly the drift class the
/// static-analysis layer exists to prevent — discard explicitly with a
/// `(void)` cast plus a reason comment when a result is intentionally
/// ignored (see DESIGN.md "Static analysis & invariants").
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(
                         State{code, std::move(message), StopReason{}})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg, StopReason reason) {
    return Status(StatusCode::kResourceExhausted, std::move(msg))
        .WithStopReason(reason);
  }
  static Status Overflow(std::string msg) {
    return Status(StatusCode::kOverflow, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Cancelled(std::string msg, StopReason reason) {
    return Status(StatusCode::kCancelled, std::move(msg))
        .WithStopReason(reason);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsOverflow() const { return code() == StatusCode::kOverflow; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns this status with \p context prepended to the message; OK stays OK.
  Status WithContext(const std::string& context) const;

  /// Returns this status with the structured stop reason attached; OK stays
  /// OK (a reason on a success status would be meaningless).
  Status WithStopReason(StopReason reason) const;

  /// The structured stop reason, or nullptr when none was attached (OK
  /// statuses and errors predating the execution governor).
  const StopReason* stop_reason() const {
    return (ok() || !state_->stop_reason.stopped()) ? nullptr
                                                    : &state_->stop_reason;
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
    StopReason stop_reason;  // kind == kNone when absent
  };
  std::shared_ptr<State> state_;  // nullptr == OK
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an error Result aborts in debug builds; callers are
/// expected to test ok() (or use the FO2DT_ASSIGN_OR_RETURN macro) first.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  /// Implicit construction from an error status.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!this->status().ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or \p fallback when in the error state.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status out of the enclosing function.
#define FO2DT_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::fo2dt::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

#define FO2DT_CONCAT_IMPL(x, y) x##y
#define FO2DT_CONCAT(x, y) FO2DT_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error status from the enclosing function.
#define FO2DT_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto FO2DT_CONCAT(_res_, __LINE__) = (rexpr);                     \
  if (!FO2DT_CONCAT(_res_, __LINE__).ok())                          \
    return FO2DT_CONCAT(_res_, __LINE__).status();                  \
  lhs = std::move(FO2DT_CONCAT(_res_, __LINE__)).value()

}  // namespace fo2dt

