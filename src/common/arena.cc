#include "common/arena.h"

#include "common/execution_context.h"

namespace fo2dt {

namespace {

// First block size; doubles per block up to the growth cap so one warm-up
// solve settles the block list for a whole serving process.
constexpr size_t kMinBlockBytes = size_t{64} * 1024;
constexpr size_t kMaxBlockBytes = size_t{8} * 1024 * 1024;

size_t AlignUp(size_t x, size_t a) { return (x + a - 1) & ~(a - 1); }

}  // namespace

SolveArena& SolveArena::ThreadLocal() {
  static thread_local SolveArena arena;
  return arena;
}

void SolveArena::AddBlock(size_t min_bytes) {
  size_t cap = blocks_.empty() ? kMinBlockBytes : blocks_.back().cap * 2;
  if (cap > kMaxBlockBytes) cap = kMaxBlockBytes;
  if (cap < min_bytes) cap = min_bytes;
  Block b;
  b.data.reset(new char[cap]);
  b.cap = cap;
  blocks_.push_back(std::move(b));
  reserved_ += cap;
  // Accounting, not enforcement: the gauge keeps the governor's per-phase
  // memory numbers honest, but scratch growth cannot abort mid-allocation —
  // a budget overrun surfaces at the next resident-structure charge or
  // deadline check.
  if (exec_ != nullptr) (void)exec_->ChargeMemory(cap, module_);
}

void* SolveArena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      const size_t off = AlignUp(cur_off_, align);
      if (off + bytes <= b.cap) {
        cur_off_ = off + bytes;
        used_ += bytes;
        if (used_ > high_water_) high_water_ = used_;
        return b.data.get() + off;
      }
      // Block exhausted; fall through to the next retained block (or a new
      // one). Skipped tail space is reclaimed when the frame rewinds.
      ++cur_block_;
      cur_off_ = 0;
      continue;
    }
    AddBlock(bytes + align);
    cur_block_ = blocks_.size() - 1;
    cur_off_ = 0;
  }
}

void SolveArena::AttachAccounting(const ExecutionContext* exec,
                                  const char* module) {
  exec_ = exec;
  module_ = module;
  // Blocks warm from earlier solves are this solve's scratch footprint too;
  // charge them once so the gauge starts from the true reservation.
  if (exec_ != nullptr && reserved_ != 0) {
    (void)exec_->ChargeMemory(reserved_, module_);
  }
}

ScopedArenaAccounting::ScopedArenaAccounting(const ExecutionContext* exec,
                                             const char* module) {
  SolveArena& arena = SolveArena::ThreadLocal();
  prev_exec_ = arena.exec_;
  prev_module_ = arena.module_;
  arena.AttachAccounting(exec, module);
}

ScopedArenaAccounting::~ScopedArenaAccounting() {
  // Restore without re-charging: the outer scope already accounted for the
  // blocks reserved while it was attached.
  SolveArena& arena = SolveArena::ThreadLocal();
  arena.exec_ = prev_exec_;
  arena.module_ = prev_module_;
}

}  // namespace fo2dt
