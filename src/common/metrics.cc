#include "common/metrics.h"

#include <cstring>

#include "common/execution_context.h"
#include "common/registry_names.h"
#include "common/strings.h"

namespace fo2dt {

// The Phase enum and the generated registry must enumerate the same phases
// in the same order; the lint registry (tools/lint/registry.json) is the
// source of truth for the names.
static_assert(names::kNumPhases == kPhaseCount,
              "Phase enum and tools/lint/registry.json disagree; edit the "
              "JSON and re-run tools/lint/gen_registry.py");

const char* PhaseName(Phase phase) {
  size_t i = static_cast<size_t>(phase);
  return i < names::kNumPhases ? names::kPhaseNames[i] : "unknown";
}

Phase PhaseForModule(const char* module) {
  if (module == nullptr) return Phase::kFrontend;
  // The generated table is ordered longest-prefix-first (the generator
  // rejects a shadowed ordering), so the first hit is the most specific.
  for (const names::ModulePhasePrefix& entry : names::kPhasePrefixes) {
    if (std::strncmp(module, entry.prefix, std::strlen(entry.prefix)) == 0) {
      return static_cast<Phase>(entry.phase);
    }
  }
  return Phase::kFrontend;
}

namespace {

ScopedPhaseTimer*& ThreadCurrentTimer() {
  thread_local ScopedPhaseTimer* current = nullptr;
  return current;
}

ScopedPhaseMemory*& ThreadCurrentMemoryScope() {
  thread_local ScopedPhaseMemory* current = nullptr;
  return current;
}

}  // namespace

ScopedPhaseTimer* ScopedPhaseTimer::Current() { return ThreadCurrentTimer(); }

ScopedPhaseTimer::ScopedPhaseTimer(Phase phase, const ExecutionContext* exec)
    : phase_(phase), exec_(exec), parent_(ThreadCurrentTimer()) {
  auto now = std::chrono::steady_clock::now();
  if (parent_ != nullptr) {
    // Pause the enclosing timer: bank its running stretch as self time.
    parent_->self_ns_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - parent_->resumed_)
            .count());
  }
  ThreadCurrentTimer() = this;
  resumed_ = now;
}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  auto now = std::chrono::steady_clock::now();
  self_ns_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - resumed_)
          .count());
  PhaseCounters& local = PhaseStats::Local();
  PhaseCounters::Entry& entry = local.phases[static_cast<size_t>(phase_)];
  entry.calls += 1;
  entry.wall_ns += self_ns_;
  entry.effort += effort_;
  if (exec_ != nullptr) exec_->phases().Add(phase_, self_ns_, effort_);
  ThreadCurrentTimer() = parent_;
  if (parent_ != nullptr) parent_->resumed_ = now;  // resume its clock
}

bool ScopedPhaseMemory::CurrentPhase(Phase* out) {
  ScopedPhaseMemory* current = ThreadCurrentMemoryScope();
  if (current == nullptr) return false;
  *out = current->phase_;
  return true;
}

ScopedPhaseMemory::ScopedPhaseMemory(Phase phase, const ExecutionContext* exec)
    : phase_(phase), exec_(exec), parent_(ThreadCurrentMemoryScope()) {
  ThreadCurrentMemoryScope() = this;
  if (exec_ != nullptr) {
    exec_->phases().RecordPhaseMemory(phase_, exec_->BytesCharged());
  }
}

ScopedPhaseMemory::~ScopedPhaseMemory() {
  if (exec_ != nullptr) {
    uint64_t total = exec_->BytesCharged();
    exec_->phases().RecordPhaseMemory(phase_, total);
    // Mirror into the thread-local block so the process-wide bench view
    // carries the same per-phase gauge as the per-solve accumulator.
    PhaseCounters::Entry& entry =
        PhaseStats::Local().phases[static_cast<size_t>(phase_)];
    if (total > entry.mem_peak) entry.mem_peak = total;
  }
  ThreadCurrentMemoryScope() = parent_;
}

Phase PhaseProfile::DominantPhase() const {
  size_t best = 0;
  for (size_t i = 1; i < kPhaseCount; ++i) {
    if (phases[i].wall_ns > phases[best].wall_ns) best = i;
  }
  return static_cast<Phase>(best);
}

std::string PhaseProfile::ToString() const {
  std::string out;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Entry& e = phases[i];
    if (e.calls == 0) continue;
    if (!out.empty()) out += "; ";
    out += StringFormat("%s: %.2f ms/%llu effort",
                        PhaseName(static_cast<Phase>(i)),
                        static_cast<double>(e.wall_ns) / 1e6,
                        static_cast<unsigned long long>(e.effort));
  }
  if (out.empty()) out = "(no instrumented phases ran)";
  if (stop.stopped()) {
    out += StringFormat(" (stopped: %s)", stop.ToString().c_str());
  }
  return out;
}

std::string PhaseProfile::ToJson() const {
  std::string out = "{\"phases\":{";
  bool first = true;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Entry& e = phases[i];
    if (e.calls == 0) continue;
    out += StringFormat(
        "%s\"%s\":{\"calls\":%llu,\"wall_ns\":%llu,\"effort\":%llu,"
        "\"mem_peak\":%llu}",
        first ? "" : ",", PhaseName(static_cast<Phase>(i)),
        static_cast<unsigned long long>(e.calls),
        static_cast<unsigned long long>(e.wall_ns),
        static_cast<unsigned long long>(e.effort),
        static_cast<unsigned long long>(e.mem_peak));
    first = false;
  }
  out += StringFormat(
      "},\"ilp_max_depth\":%llu,\"mem_high_water\":%llu",
      static_cast<unsigned long long>(ilp_max_depth),
      static_cast<unsigned long long>(mem_high_water));
  if (stop.stopped()) {
    out += StringFormat(",\"stop\":{\"kind\":\"%s\",\"module\":\"%s\","
                        "\"counter\":%llu,\"limit\":%llu}",
                        StopKindToString(stop.kind), stop.module,
                        static_cast<unsigned long long>(stop.counter),
                        static_cast<unsigned long long>(stop.limit));
  }
  out += "}";
  return out;
}

PhaseProfile SnapshotPhaseProfile(const ExecutionContext& exec) {
  const PhaseAccumulator& acc = exec.phases();
  PhaseProfile out;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    out.phases[i].calls = acc.slots[i].calls.load(std::memory_order_relaxed);
    out.phases[i].wall_ns =
        acc.slots[i].wall_ns.load(std::memory_order_relaxed);
    out.phases[i].effort = acc.slots[i].effort.load(std::memory_order_relaxed);
    out.phases[i].mem_peak =
        acc.slots[i].mem_peak.load(std::memory_order_relaxed);
  }
  out.ilp_max_depth = acc.ilp_max_depth.load(std::memory_order_relaxed);
  out.mem_high_water = acc.mem_high_water.load(std::memory_order_relaxed);
  return out;
}

double MetricsSnapshot::Get(const std::string& key, double fallback) const {
  for (const auto& [k, v] : values) {
    if (k == key) return v;
  }
  return fallback;
}

bool MetricsSnapshot::Has(const std::string& key) const {
  for (const auto& [k, v] : values) {
    if (k == key) return true;
  }
  return false;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    out += StringFormat("%s\"%s\":%.17g", i == 0 ? "" : ",",
                        values[i].first.c_str(), values[i].second);
  }
  out += "}";
  return out;
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i >= kHistogramBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * count), reported as that bucket's upper bound.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank * 100 < static_cast<uint64_t>(p * static_cast<double>(count))) {
    ++rank;
  }
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      uint64_t bound = BucketUpperBound(i);
      // The top occupied bucket's bound overstates the tail; the exact
      // observed max is a tighter truth for it.
      return static_cast<double>(bound < max ? bound : max);
    }
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  // The phase/gauge family lives in this translation unit, so register it
  // here instead of relying on a static initializer ordering.
  sources_.push_back(Source{
      "phase",
      [](MetricsSnapshot* snap) {
        PhaseCounters agg = PhaseStats::Aggregate();
        for (size_t i = 0; i < kPhaseCount; ++i) {
          const PhaseCounters::Entry& e = agg.phases[i];
          const char* name = PhaseName(static_cast<Phase>(i));
          snap->Set(StringFormat("phase.%s.calls", name),
                    static_cast<double>(e.calls));
          snap->Set(StringFormat("phase.%s.wall_ns", name),
                    static_cast<double>(e.wall_ns));
          snap->Set(StringFormat("phase.%s.effort", name),
                    static_cast<double>(e.effort));
          snap->Set(StringFormat("phase.%s.mem_peak", name),
                    static_cast<double>(e.mem_peak));
        }
        snap->Set(names::kMetricGaugeIlpMaxDepth,
                  static_cast<double>(agg.ilp_max_depth));
        snap->Set(names::kMetricGaugeMemHighWater,
                  static_cast<double>(agg.mem_high_water));
      },
      [] { PhaseStats::Reset(); }});
}

void MetricsRegistry::Register(const std::string& name, CollectFn collect,
                               ResetFn reset) {
  ScopedRankedLock lock(mu_);
  for (Source& s : sources_) {
    if (s.name == name) {
      s.collect = std::move(collect);
      s.reset = std::move(reset);
      return;
    }
  }
  sources_.push_back(Source{name, std::move(collect), std::move(reset)});
}

std::vector<std::string> MetricsRegistry::SourceNames() const {
  ScopedRankedLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const Source& s : sources_) out.push_back(s.name);
  return out;
}

void MetricsRegistry::RegisterHistogram(Histogram* histogram) {
  ScopedRankedLock lock(mu_);
  for (Histogram* h : histograms_) {
    if (h == histogram) return;
  }
  histograms_.push_back(histogram);
}

std::vector<HistogramSnapshot> MetricsRegistry::HistogramSnapshots() const {
  ScopedRankedLock lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const Histogram* h : histograms_) out.push_back(h->Snapshot());
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  ScopedRankedLock lock(mu_);
  MetricsSnapshot snap;
  for (const Source& s : sources_) s.collect(&snap);
  for (const Histogram* h : histograms_) {
    HistogramSnapshot hs = h->Snapshot();
    snap.Set(hs.name + ".count", static_cast<double>(hs.count));
    snap.Set(hs.name + ".sum", static_cast<double>(hs.sum));
    snap.Set(hs.name + ".p50", hs.Percentile(50));
    snap.Set(hs.name + ".p95", hs.Percentile(95));
    snap.Set(hs.name + ".p99", hs.Percentile(99));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  ScopedRankedLock lock(mu_);
  for (const Source& s : sources_) s.reset();
  for (Histogram* h : histograms_) h->Reset();
}

}  // namespace fo2dt
