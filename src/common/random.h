/// \file random.h
/// \brief Deterministic random source for generators, tests and benchmarks.
///
/// A thin wrapper over a SplitMix64/xoshiro-style generator with convenience
/// draws. All randomized components in fo2dt (tree generators, workload
/// synthesis, property tests) take a RandomSource so runs are reproducible
/// from a seed.
///
/// Thread ownership: a RandomSource is NOT internally synchronized — it is
/// thread-confined, owned by the thread that constructed it. The parallel
/// fan-outs in the solver core (IlpSolver::SolveDnf, the LCTA accepting-root
/// loop) are deterministic and take no RandomSource, so nothing in src/**
/// shares a generator across threads; every existing instance is
/// stack-local to a test or benchmark. Code that does need randomness on
/// worker threads must give each worker its own stream via Split() before
/// spawning — never hand one RandomSource to two threads.
///
/// fo2dt_lint (rule no-raw-rand) bans rand()/srand()/std::random_device/
/// std::mt19937 in src/** and bench/** so every random draw flows through
/// this seeded, reproducible, ownership-documented type.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fo2dt {

/// \brief Seedable 64-bit PRNG (splitmix64 core) with utility draws.
class RandomSource {
 public:
  explicit RandomSource(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element index for a container of size n.
  /// Precondition: n > 0.
  size_t UniformIndex(size_t n) { return static_cast<size_t>(Next() % n); }

  /// Derives an independent child stream, e.g. one per worker thread of a
  /// parallel section (see the thread-ownership contract above). The child
  /// is seeded from the parent's sequence through one extra mixing step, so
  /// parent and child outputs are uncorrelated, and the derivation is
  /// deterministic: splitting the same parent state yields the same child.
  RandomSource Split() {
    // Re-mix with a distinct odd constant so the child does not replay the
    // parent's upcoming outputs.
    uint64_t child_seed = Next() * 0xd1342543de82ef95ULL + 1;
    return RandomSource(child_seed);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace fo2dt

