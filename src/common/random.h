/// \file random.h
/// \brief Deterministic random source for generators, tests and benchmarks.
///
/// A thin wrapper over a SplitMix64/xoshiro-style generator with convenience
/// draws. All randomized components in fo2dt (tree generators, workload
/// synthesis, property tests) take a RandomSource so runs are reproducible
/// from a seed.

#ifndef FO2DT_COMMON_RANDOM_H_
#define FO2DT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fo2dt {

/// \brief Seedable 64-bit PRNG (splitmix64 core) with utility draws.
class RandomSource {
 public:
  explicit RandomSource(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element index for a container of size n.
  /// Precondition: n > 0.
  size_t UniformIndex(size_t n) { return static_cast<size_t>(Next() % n); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace fo2dt

#endif  // FO2DT_COMMON_RANDOM_H_
