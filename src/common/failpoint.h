/// \file failpoint.h
/// \brief Deterministic fault injection (RocksDB SyncPoint style).
///
/// A failpoint is a named site in production code where a test can inject a
/// fault: force the BigInt limb-spill path, make a simplex bound repair
/// report a pivot-cap overflow, fail a fan-out worker, cancel a search from
/// inside the search. The robustness tests use them to prove graceful
/// degradation — every injected fault must surface as a clean Status with an
/// intact StopReason, never a crash, hang, leak, or wrong verdict.
///
/// Cost model:
///  * builds without FO2DT_FAILPOINTS (release / RelWithDebInfo): the
///    FO2DT_FAILPOINT macro expands to nothing — zero code, zero overhead;
///  * builds with FO2DT_FAILPOINTS (Debug by default, see the top-level
///    CMakeLists option) and no failpoint armed: one relaxed atomic load;
///  * an armed site takes a mutex and runs the registered callback.
///
/// Site contract: each site passes a void* whose meaning is documented at
/// the site (usually a bool* the callback sets to force a branch, or a
/// Status* the callback overwrites to inject an error). Callbacks run on
/// the thread that hits the site.
///
/// Inventory of sites (keep in sync with DESIGN.md §5):
///   "bigint.force_slow_add"   bool*   force the limb path in operator+
///   "simplex.force_rebuild"   bool*   force DualStatus::kCapExceeded
///   "ilp.branch"              void    observation/cancel hook per B&B node
///   "ilp.worker_fault"        Status* inject an error into a DNF worker
///   "lcta.cut_round"          Status* inject an error into the cut loop

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace fo2dt {

/// \brief Process-wide registry of armed failpoints.
///
/// Tests arm sites via Enable() and must DisableAll() on teardown (the
/// robustness tests use a RAII guard). Thread-safe.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// True when this build has failpoint sites compiled in.
  static constexpr bool CompiledIn() {
#ifdef FO2DT_FAILPOINTS
    return true;
#else
    return false;
#endif
  }

  /// Arms \p site. The callback fires on each hit after skipping the first
  /// \p skip hits, for at most \p fire hits (-1 = unlimited). Re-enabling a
  /// site replaces its previous configuration.
  void Enable(const std::string& site, std::function<void(void*)> callback,
              int64_t skip = 0, int64_t fire = -1);

  /// Disarms \p site (no-op when not armed).
  void Disable(const std::string& site);

  /// Disarms everything and clears hit counters.
  void DisableAll();

  /// Number of times \p site was reached while armed (including skipped and
  /// post-fire hits).
  uint64_t HitCount(const std::string& site) const;

  /// Names of all currently armed sites, sorted. The flight recorder writes
  /// these into post-mortem bundles so fo2dt_replay can re-arm the same
  /// injections deterministically.
  std::vector<std::string> ArmedSites() const;

  /// True when at least one site is armed (single relaxed load — the only
  /// cost an unarmed build pays per site hit).
  bool AnyActive() const {
    return active_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Slow path behind FO2DT_FAILPOINT: looks up \p site and runs its
  /// callback if armed and within its skip/fire window.
  void Hit(const char* site, void* arg);

 private:
  Failpoints() = default;

  struct Site {
    std::function<void(void*)> callback;
    int64_t skip = 0;
    int64_t fire = -1;
    uint64_t hits = 0;
  };

  // atomic: armed-site count; relaxed fast-path gate in AnyActive(). A
  // stale zero only skips a hit that raced Enable — tests arm before
  // spawning the threads they observe.
  std::atomic<int> active_sites_{0};
  mutable Mutex mu_{names::kLockFailpointRegistry};
  std::unordered_map<std::string, Site> sites_ FO2DT_GUARDED_BY(mu_);
};

}  // namespace fo2dt

#ifdef FO2DT_FAILPOINTS
/// Marks an injection site. `arg` is a site-specific void* handed to the
/// armed callback (see the inventory above); pass nullptr when the site is
/// observation-only.
#define FO2DT_FAILPOINT(site, arg)                                   \
  do {                                                               \
    if (::fo2dt::Failpoints::Instance().AnyActive()) {               \
      ::fo2dt::Failpoints::Instance().Hit((site), (arg));            \
    }                                                                \
  } while (false)
#else
#define FO2DT_FAILPOINT(site, arg) \
  do {                             \
  } while (false)
#endif

