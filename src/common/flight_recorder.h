/// \file flight_recorder.h
/// \brief Per-solve flight recording: query-log records and post-mortem
/// capture/replay bundles.
///
/// The recorder closes the operational loop the ROADMAP's north star needs:
/// every facade solve leaves a structured JSONL record (common/query_log.h),
/// and every *anomalous* solve — a degraded kUnknown, an error, or any solve
/// when `FO2DT_CAPTURE=always` — leaves a self-contained bundle that
/// `tools/replay/fo2dt_replay` re-executes deterministically and diffs
/// against the recorded outcome.
///
/// Bundle layout (`<capture_dir>/<facade>-<hash>-<seq>/`, names from the
/// registry's `bundle_files`):
///   manifest.json   the query-log record plus bundle metadata
///   input.fo2dt     line-based replay input: header, facade body, armed
///                   failpoints, and `expect` lines with the recorded outcome
///   trace.json      trace-ring export (Chrome JSON, open spans included)
///   metrics.json    MetricsRegistry snapshot at capture time
///
/// Configuration: `FO2DT_QUERY_LOG=<path>` enables recording;
/// `FO2DT_CAPTURE=never|degraded|always` picks the capture policy (default
/// degraded); `FO2DT_CAPTURE_DIR=<dir>` overrides the bundle root (default
/// `<query_log>.captures`). Tests use Configure() directly.
///
/// Usage in a facade (see frontend/solver.cc for the pattern):
///   SolveRecorder rec(names::kFacadeFrontendSat, options.exec);
///   if (rec.active()) {            // serialization only when recording
///     rec.SetInput(canonical);     // hashing + size
///     rec.SetReplayInput(body);    // replayable text, enables capture
///     rec.AddBudget("max_steps", options.max_steps);
///   }
///   auto result = <solve>;
///   rec.Finish(OutcomeFrom(result));
///
/// Nested facades (constraints → frontend) do not double-log: SolveRecorder
/// keeps a thread-local depth and only the outermost recorder is active.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/query_log.h"
#include "common/symbol.h"

namespace fo2dt {

class ExecutionContext;

/// \brief Recorder configuration; see the file comment for the env mapping.
struct FlightRecorderConfig {
  /// JSONL sink; empty disables recording entirely.
  std::string query_log_path;
  /// One of names::kAllCaptureModes ("never" / "degraded" / "always").
  std::string capture_mode;
  /// Bundle root; empty derives `<query_log_path>.captures`.
  std::string capture_dir;
  /// Tail-sampling threshold (`FO2DT_SLOW_MS`): under capture mode
  /// `degraded`, a solve whose wall time reaches this many ms is bundled —
  /// trace ring included — even when its verdict was definite, so the
  /// flight recorder explains the latency tail, not a random sample.
  /// 0 disables slow-solve sampling (degraded/ERROR solves still capture).
  uint64_t slow_ms = 0;
};

/// \brief Process-wide recorder state. Thread-safe.
class FlightRecorder {
 public:
  static FlightRecorder& Instance();

  /// Replaces the configuration (tests; production uses the environment).
  /// Also points the QueryLog singleton at the new path.
  void Configure(FlightRecorderConfig config);

  FlightRecorderConfig config() const;

  /// True when solves should be recorded at all.
  bool enabled() const;

  /// The directory bundles land in (config or derived default).
  std::string CaptureDir() const;

  /// Monotonic per-process bundle sequence number (unique bundle dirs even
  /// for identical inputs).
  uint64_t NextBundleSeq() {
    return bundle_seq_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  FlightRecorder();  // seeds from FO2DT_QUERY_LOG / FO2DT_CAPTURE[_DIR]

  mutable Mutex mu_{names::kLockRecorderConfig};
  FlightRecorderConfig config_ FO2DT_GUARDED_BY(mu_);
  // atomic: relaxed ticket counter; uniqueness is all that matters.
  std::atomic<uint64_t> bundle_seq_{0};
};

/// \brief RAII recorder for one facade solve. Construct at facade entry,
/// call Finish() with the outcome before returning. Inactive recorders (no
/// query log configured, or nested inside another facade on this thread)
/// cost two thread-local increments and nothing else.
class SolveRecorder {
 public:
  SolveRecorder(const char* facade, const ExecutionContext* exec);
  ~SolveRecorder();
  SolveRecorder(const SolveRecorder&) = delete;
  SolveRecorder& operator=(const SolveRecorder&) = delete;

  /// True when this solve will be recorded; gate serialization work on it.
  bool active() const { return active_; }

  /// The canonical input text: hashed (with the facade name) and measured.
  void SetInput(const std::string& canonical);

  /// The replayable facade body for input.fo2dt. Without it no bundle is
  /// captured (the record still logs).
  void SetReplayInput(std::string text);

  /// Records one budget constant in effect (key must be a plain identifier).
  void AddBudget(const char* key, uint64_t value);

  void SetThreads(uint64_t threads);
  void SetSeed(uint64_t seed);

  /// Correlation id for the query-log record and bundle manifest. Optional:
  /// when unset, Finish() inherits the ExecutionContext's request_id, so
  /// daemon solves correlate without every facade calling this.
  void SetRequestId(std::string request_id);

  /// Logs the record (and captures a bundle per policy). Idempotent; only
  /// the first call records. When \p outcome carries no profile and the
  /// facade ran under an ExecutionContext, the profile is snapshotted here.
  void Finish(SolveOutcome outcome);

 private:
  std::string WriteBundle(const QueryRecord& record,
                          const SolveOutcome& outcome) const;

  const char* facade_;
  const ExecutionContext* exec_;
  bool active_ = false;
  bool finished_ = false;
  QueryRecord record_;
  std::string replay_input_;
  std::chrono::steady_clock::time_point start_;
  uint64_t cpu_start_ms_ = 0;
};

/// Notes the solve cache's disposition ("hit" / "miss") for the top-level
/// solve running on this thread. First call wins: a verdict-cache hit at the
/// inner frontend entry is not overwritten by later sub-memo lookups. The
/// outermost SolveRecorder resets the note on entry and folds it into the
/// query-log `cache` field at Finish; calls outside any solve are dropped.
void NoteSolveCacheDisposition(const char* disposition);

/// Synthetic dense alphabet "l0".."l<n-1>" — the canonical label namespace
/// bundles are serialized in. Replaying with the same n reproduces the same
/// symbol ids, making serialized formulas/trees/paths position-stable.
Alphabet MakeReplayAlphabet(size_t num_labels);

/// The canonical name of replay label \p i ("l<i>").
std::string ReplayLabelName(size_t i);

/// Re-arms \p site with the canonical deterministic replay injection used
/// by capture-time tests and fo2dt_replay: Status*-argument sites sleep a
/// fixed interval (so the owning phase dominates the profile) and inject
/// ResourceExhausted with StopKind::kInjectedFault; bool* sites force their
/// branch. \p fire bounds how many hits inject (-1 = unlimited), so a
/// server fault test can crash exactly one request. False when \p site is
/// not a registered failpoint.
bool ArmCanonicalReplayInjection(const std::string& site, int64_t fire = -1);

}  // namespace fo2dt
