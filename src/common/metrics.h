/// \file metrics.h
/// \brief Unified metrics: pipeline phases, per-phase profiling, and the
/// federating MetricsRegistry.
///
/// Three pieces, layered bottom-up:
///
///  1. **Phase** — the closed enumeration of pipeline stages (Scott normal
///     form, DNF, puzzle construction, bounded search, LCTA emptiness,
///     simplex/ILP, VATA, constraints, XPath, frontend facade), plus
///     `PhaseForModule` mapping the governor's module strings
///     ("solverlp.ilp", "lcta.cuts", ...) onto phases so a StopReason can be
///     attributed to the phase that exhausted the budget.
///
///  2. **ScopedPhaseTimer** — always-compiled coarse instrumentation (a few
///     steady_clock reads per phase entry/exit, at facade granularity; this
///     is *not* the fine-grained span tracing of common/trace.h, which is
///     compiled out of optimized builds). Timers attribute *self* time:
///     entering a nested timer pauses the enclosing one, so the per-phase
///     wall times are exclusive and sum to the instrumented total instead of
///     double-counting nested calls (LCTA → ILP → simplex). Each timer
///     writes two sinks at destruction: the thread-local PhaseStats block
///     (process-wide aggregation for benchmarks, via ThreadStats) and, when
///     given one, the ExecutionContext's PhaseAccumulator (per-solve
///     aggregation across worker threads, the source of SatResult's
///     PhaseProfile).
///
///  3. **MetricsRegistry** — one snapshot/reset API federating every counter
///     family in the process: the phase/gauge blocks defined here plus the
///     pre-existing ArithStats and SimplexStats ThreadStats families, which
///     register themselves from their home translation units (bigint.cc,
///     simplex.cc) so common/ never depends upward.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_stats.h"

namespace fo2dt {

class ExecutionContext;

/// \brief The pipeline stages that per-phase wall time is attributed to.
///
/// kIlp deliberately covers both "solverlp.ilp" and "solverlp.simplex":
/// simplex work happens inside B&B nodes and the two are one budget domain
/// for attribution purposes (the ISSUE's "simplex/ILP" phase).
enum class Phase : int {
  kScott = 0,     ///< Scott normal form (logic/scott)
  kDnf,           ///< data normal form (logic/dnf)
  kPuzzle,        ///< puzzle construction + counting abstraction setup
  kBoundedSearch, ///< bounded model search (puzzle/bounded_solver, enumeration)
  kLcta,          ///< LCTA emptiness: grammar, flows, cut rounds
  kIlp,           ///< simplex/ILP (solverlp)
  kVata,          ///< VATA counter-tree derivation
  kConstraints,   ///< key/foreign-key constraint facades
  kXpath,         ///< XPath translation + containment facades
  kFrontend,      ///< frontend facade glue (solver.cc outside other phases)
};

inline constexpr size_t kPhaseCount = static_cast<size_t>(Phase::kFrontend) + 1;

/// Short stable name, e.g. "scott", "ilp" (used in metric keys and JSON).
const char* PhaseName(Phase phase);

/// Maps a governor module string ("solverlp.simplex", "lcta.cuts",
/// "frontend.enumerate", ...) to the phase that owns it. Unknown modules map
/// to kFrontend.
Phase PhaseForModule(const char* module);

/// \brief Thread-local per-phase counter block (a ThreadStats family).
///
/// `effort` is the phase's own notion of work: enumeration/search steps for
/// kBoundedSearch, cut rounds for kLcta, B&B nodes for kIlp, derivation
/// candidates for kVata. The two gauges merge by max, not sum.
struct PhaseCounters {
  struct Entry {
    uint64_t calls = 0;
    uint64_t wall_ns = 0;  // self time (exclusive of nested phases)
    uint64_t effort = 0;
    uint64_t mem_peak = 0;  // accountant high-water while the phase was open
  };
  std::array<Entry, kPhaseCount> phases;
  uint64_t ilp_max_depth = 0;    // deepest B&B recursion seen
  uint64_t mem_high_water = 0;   // accountant peak, bytes

  void AddTo(PhaseCounters* out) const {
    for (size_t i = 0; i < kPhaseCount; ++i) {
      out->phases[i].calls += phases[i].calls;
      out->phases[i].wall_ns += phases[i].wall_ns;
      out->phases[i].effort += phases[i].effort;
      if (phases[i].mem_peak > out->phases[i].mem_peak) {
        out->phases[i].mem_peak = phases[i].mem_peak;  // gauge: merge by max
      }
    }
    if (ilp_max_depth > out->ilp_max_depth) out->ilp_max_depth = ilp_max_depth;
    if (mem_high_water > out->mem_high_water) {
      out->mem_high_water = mem_high_water;
    }
  }
  void Clear() { *this = PhaseCounters(); }
};

using PhaseStats = ThreadStats<PhaseCounters>;

/// \brief Per-solve phase accumulator, shared by every worker thread of one
/// ExecutionContext. All atomics; written by ScopedPhaseTimer destructors.
struct PhaseAccumulator {
  struct Slot {
    // atomic: relaxed fetch_add from each worker's timer destructor plus
    // max-CAS gauges; snapshots may tear across fields (diagnostics only).
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> wall_ns{0};
    std::atomic<uint64_t> effort{0};
    std::atomic<uint64_t> mem_peak{0};  // accountant high-water, this phase
  };
  std::array<Slot, kPhaseCount> slots;
  // atomic: max-CAS gauges (MaxInto), relaxed everywhere — see Slot.
  std::atomic<uint64_t> ilp_max_depth{0};
  std::atomic<uint64_t> mem_high_water{0};

  void Add(Phase phase, uint64_t wall_ns, uint64_t effort) {
    Slot& s = slots[static_cast<size_t>(phase)];
    s.calls.fetch_add(1, std::memory_order_relaxed);
    s.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
    s.effort.fetch_add(effort, std::memory_order_relaxed);
  }
  void RecordDepth(uint64_t depth) { MaxInto(&ilp_max_depth, depth); }
  void RecordMemory(uint64_t bytes) { MaxInto(&mem_high_water, bytes); }
  void RecordPhaseMemory(Phase phase, uint64_t bytes) {
    MaxInto(&slots[static_cast<size_t>(phase)].mem_peak, bytes);
  }

  static void MaxInto(std::atomic<uint64_t>* slot, uint64_t value) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (cur < value && !slot->compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
};

/// \brief RAII self-time attribution for one phase. Always compiled in; the
/// overhead budget is a handful of clock reads per *phase entry*, never per
/// work unit — hot loops stay untimed and only flush effort counters.
///
/// Nesting (same or different phases, same thread) is handled by pausing the
/// enclosing timer: its elapsed-since-resume is charged to its own phase
/// before the nested timer starts the clock for its phase.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase, const ExecutionContext* exec = nullptr);
  ~ScopedPhaseTimer();
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  /// Adds phase-specific effort units (steps, nodes, rounds) to be flushed
  /// with the timer.
  void AddEffort(uint64_t units) { effort_ += units; }

  /// The innermost timer open on the calling thread (nullptr outside any).
  static ScopedPhaseTimer* Current();

 private:
  Phase phase_;
  const ExecutionContext* exec_;
  ScopedPhaseTimer* parent_;
  uint64_t self_ns_ = 0;
  uint64_t effort_ = 0;
  std::chrono::steady_clock::time_point resumed_;
};

/// \brief RAII memory-scope companion to ScopedPhaseTimer: while open, the
/// memory accountant attributes its running total to \p phase, so every
/// charge lands in a per-phase high-water gauge next to the phase's wall
/// time. The lint rule `timer-memory-scope` enforces that each timer site
/// opens the matching memory scope.
///
/// Like the timer, scopes nest per thread (innermost wins: a charge during
/// LCTA → ILP is the ILP phase's memory). Construction and destruction also
/// sample the accountant's current total into the phase's gauge, so a phase
/// that merely *holds* memory charged earlier still shows its footprint.
/// With a null ExecutionContext the scope is inert (two branch tests).
class ScopedPhaseMemory {
 public:
  explicit ScopedPhaseMemory(Phase phase,
                             const ExecutionContext* exec = nullptr);
  ~ScopedPhaseMemory();
  ScopedPhaseMemory(const ScopedPhaseMemory&) = delete;
  ScopedPhaseMemory& operator=(const ScopedPhaseMemory&) = delete;

  /// The innermost open scope's phase on the calling thread; false when no
  /// scope is open (the accountant then falls back to PhaseForModule).
  static bool CurrentPhase(Phase* out);

 private:
  Phase phase_;
  const ExecutionContext* exec_;
  ScopedPhaseMemory* parent_;
};

/// \brief Per-phase profile of one solve, carried on SatResult.
///
/// Wall times are self times (see ScopedPhaseTimer) summed across the
/// solve's worker threads; on a parallel solve they can exceed elapsed wall
/// clock. `stop` is the structured reason if the solve degraded or was cut
/// short (kind == kNone for a definite verdict).
struct PhaseProfile {
  struct Entry {
    uint64_t calls = 0;
    uint64_t wall_ns = 0;
    uint64_t effort = 0;
    uint64_t mem_peak = 0;
  };
  std::array<Entry, kPhaseCount> phases;
  uint64_t ilp_max_depth = 0;
  uint64_t mem_high_water = 0;
  StopReason stop;

  const Entry& operator[](Phase p) const {
    return phases[static_cast<size_t>(p)];
  }

  /// The phase with the largest self wall time (ties: smallest enum value).
  Phase DominantPhase() const;

  /// The phase owning the stop's module (kFrontend when not stopped).
  Phase StopPhase() const { return PhaseForModule(stop.module); }

  /// e.g. "ilp: 42.1 ms/1731 effort; lcta: 1.2 ms/3 effort (stopped: ...)".
  std::string ToString() const;

  /// One JSON object with per-phase wall_ns/calls/effort plus the gauges.
  std::string ToJson() const;
};

/// Reads \p exec's PhaseAccumulator into a value-type profile (stop reason
/// left at kNone; the facade fills it from the SatResult).
PhaseProfile SnapshotPhaseProfile(const ExecutionContext& exec);

/// \brief Ordered key → value snapshot of every registered metric source.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> values;

  void Set(const std::string& key, double value) {
    values.emplace_back(key, value);
  }
  /// First value recorded under \p key, or \p fallback.
  double Get(const std::string& key, double fallback = 0.0) const;
  bool Has(const std::string& key) const;
  /// Flat JSON object {"key": value, ...}.
  std::string ToJson() const;
};

/// Fixed bucket count for every Histogram: bucket i holds values whose
/// bit-width is i, so its upper bound is 2^i - 1 (bucket 0 holds only the
/// value 0; the last bucket absorbs everything wider). 64 buckets cover the
/// whole uint64_t range, so one layout serves both millisecond latencies and
/// byte-sized memory high-waters without per-metric tuning.
inline constexpr size_t kHistogramBuckets = 64;

/// \brief Value-type copy of one Histogram, safe to merge and query off the
/// hot path. Produced by Histogram::Snapshot(); bucket counts may tear
/// relative to count/sum under concurrent Record (diagnostics only).
struct HistogramSnapshot {
  std::string name;
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;  // largest recorded value (exact, not bucket-rounded)

  /// Inclusive upper bound of bucket \p i (2^i - 1; saturates at the top).
  static uint64_t BucketUpperBound(size_t i);

  /// Adds \p other bucket-wise (same fixed layout); max merges by max.
  void Merge(const HistogramSnapshot& other);

  /// Nearest-rank percentile (p in [0,100]) as the upper bound of the
  /// bucket containing that rank, clamped to the exact observed max so the
  /// tail is never reported coarser than reality. 0 when empty.
  double Percentile(double p) const;
};

/// \brief Lock-free fixed log2-bucket histogram for latencies and sizes.
///
/// Record() is three relaxed fetch_adds plus a CAS-max — safe from any
/// thread with no lock, cheap enough for per-request paths. The name must
/// be a registry-owned names::kMetricHist* constant (the histogram-metrics
/// lint rule enforces this), because exposition keys and bench counters are
/// derived from it. Instances are process-lifetime statics or members of
/// process-lifetime singletons; MetricsRegistry::RegisterHistogram holds a
/// raw pointer.
class Histogram {
 public:
  explicit Histogram(const char* name) : name_(name) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const char* name() const { return name_; }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    PhaseAccumulator::MaxInto(&max_, value);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  /// Bit-width of \p value, clamped to the last bucket.
  static size_t BucketIndex(uint64_t value) {
    size_t i = 0;
    while (value != 0 && i < kHistogramBuckets - 1) {
      value >>= 1;
      ++i;
    }
    return i;
  }

  const char* name_;
  // atomic: relaxed fetch_add per Record from any thread; CAS-max gauge for
  // max_ (PhaseAccumulator::MaxInto). Snapshots may tear across fields.
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// \brief Process-wide federation point for counter families.
///
/// Sources register once (from their home translation unit) with a collect
/// callback and a reset callback; Snapshot()/Reset() fan out to all of them
/// under one lock. The phase/gauge family above is pre-registered; arith and
/// simplex register from bigint.cc / simplex.cc.
///
/// Collect callbacks typically call ThreadStats<C>::Aggregate(), so the
/// quiescence precondition applies: snapshot between solves, not during.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  using CollectFn = std::function<void(MetricsSnapshot*)>;
  using ResetFn = std::function<void()>;

  /// Registers a named source. Re-registering a name replaces the callbacks
  /// (makes static-initializer registration idempotent across re-links).
  void Register(const std::string& name, CollectFn collect, ResetFn reset);

  /// Names of all registered sources, registration order.
  std::vector<std::string> SourceNames() const;

  /// Registers a process-lifetime histogram. Snapshot() derives
  /// <name>.count/.sum/.p50/.p95/.p99 keys from it, HistogramSnapshots()
  /// exposes the full buckets (for Prometheus-style exposition), and
  /// Reset() zeroes it. Re-registering the same instance is a no-op.
  /// Short-lived histograms (e.g. the admission controller's per-tenant
  /// table) must NOT register here — they are surfaced by their owner.
  void RegisterHistogram(Histogram* histogram);

  /// Bucket-level copies of every registered histogram, registration order.
  std::vector<HistogramSnapshot> HistogramSnapshots() const;

  /// Runs every source's collect callback into one snapshot, then appends
  /// the derived keys of every registered histogram.
  MetricsSnapshot Snapshot() const;

  /// Runs every source's reset callback and zeroes registered histograms.
  void Reset();

 private:
  MetricsRegistry();

  struct Source {
    std::string name;
    CollectFn collect;
    ResetFn reset;
  };
  /// Held across every source's collect/reset callback, which take the
  /// cache/intern/stats locks — hence metrics.registry ranks before them.
  mutable Mutex mu_{names::kLockMetricsRegistry};
  std::vector<Source> sources_ FO2DT_GUARDED_BY(mu_);
  std::vector<Histogram*> histograms_ FO2DT_GUARDED_BY(mu_);
};

/// \brief Registers a metrics source from a static initializer.
///
/// Usage (file scope, in the counter family's home .cc):
///   static MetricsSourceRegistrar reg("arith", collect_fn, reset_fn);
struct MetricsSourceRegistrar {
  MetricsSourceRegistrar(const std::string& name,
                         MetricsRegistry::CollectFn collect,
                         MetricsRegistry::ResetFn reset) {
    MetricsRegistry::Instance().Register(name, std::move(collect),
                                         std::move(reset));
  }
};

}  // namespace fo2dt

