/// \file hash.h
/// \brief FNV-1a 64-bit hashing shared by the query log, the intern tables,
/// and the solve cache.
///
/// One hash function, one set of constants: the query log's canonical input
/// hash, the hash-consed IR's bucket index, and the persistent solve-cache
/// key all speak the same FNV-1a 64 so a hash printed in one subsystem can
/// be looked up in another. Not cryptographic; collisions only cost a shared
/// bundle prefix or a bucket probe.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/strings.h"

namespace fo2dt {

/// FNV-1a 64-bit offset basis / prime (the canonical constants).
inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

/// FNV-1a 64-bit over \p len raw bytes starting at \p data, continuing from
/// \p seed (pass the offset basis to start a fresh hash).
inline uint64_t Fnv1a64Bytes(const void* data, size_t len,
                             uint64_t seed = kFnv1aOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// FNV-1a 64-bit over \p data — the stable input hash. Not cryptographic;
/// collisions only cost a shared bundle prefix.
inline uint64_t Fnv1a64(const std::string& data) {
  return Fnv1a64Bytes(data.data(), data.size());
}

/// \brief Incremental FNV-1a 64 for callers that hash a record piecewise
/// (the intern table hashes kind + operand ids without materializing a
/// string). Mix* calls must happen in a deterministic order.
class Fnv1aHasher {
 public:
  Fnv1aHasher() = default;

  Fnv1aHasher& MixBytes(const void* data, size_t len) {
    hash_ = Fnv1a64Bytes(data, len, hash_);
    return *this;
  }
  Fnv1aHasher& MixString(const std::string& s) {
    return MixBytes(s.data(), s.size());
  }
  Fnv1aHasher& MixU64(uint64_t v) {
    // Fixed-width little-endian mix so the hash is layout-independent.
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffu);
    }
    return MixBytes(bytes, sizeof(bytes));
  }
  Fnv1aHasher& MixU32(uint32_t v) { return MixU64(v); }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = kFnv1aOffsetBasis;
};

/// \p hash as 16 lowercase hex digits.
inline std::string HashToHex(uint64_t hash) {
  return StringFormat("%016llx", static_cast<unsigned long long>(hash));
}

}  // namespace fo2dt
