/// \file symbol.h
/// \brief Interned label alphabets.
///
/// Formulas, automata, puzzles and trees all refer to node labels from a
/// finite alphabet Σ. An Alphabet interns label strings to dense integer ids
/// so that hot paths (automaton transitions, zone computation) work on small
/// ints while diagnostics keep human-readable names.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fo2dt {

/// \brief Dense id of an interned label. Valid ids are [0, alphabet size).
using Symbol = uint32_t;

/// \brief Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = static_cast<Symbol>(-1);

/// \brief A finite alphabet of node labels with string interning.
///
/// Interning is append-only; ids are stable for the lifetime of the Alphabet.
class Alphabet {
 public:
  Alphabet() = default;

  /// Interns \p name, returning its id (existing or fresh).
  Symbol Intern(const std::string& name);

  /// Looks up an already-interned label; kNoSymbol when absent.
  Symbol Find(const std::string& name) const;

  /// Whether \p s is a valid id in this alphabet.
  bool Contains(Symbol s) const { return s < names_.size(); }

  /// The label string of \p s. Precondition: Contains(s).
  const std::string& Name(Symbol s) const { return names_[s]; }

  /// Number of interned labels.
  size_t size() const { return names_.size(); }

  /// All ids, 0..size-1, convenience for iteration.
  std::vector<Symbol> AllSymbols() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> index_;
};

}  // namespace fo2dt

