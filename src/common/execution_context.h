/// \file execution_context.h
/// \brief The unified execution governor: deadline, cancellation, accounting.
///
/// The decision procedures in this library are non-elementary in the worst
/// case (the paper's automata route is 3NEXPTIME), so every solver entry
/// point must be interruptible. Before this subsystem each layer invented
/// its own budget plumbing — `SolverOptions::max_steps`, a raw
/// `const std::atomic<bool>*` on IlpOptions, per-module node caps, and two
/// hand-rolled first-SAT-wins `stop_at` protocols. ExecutionContext unifies
/// them:
///
///  * a monotonic wall-clock **deadline** (std::chrono::steady_clock);
///  * a hierarchical **CancellationToken** — cancelling a parent cancels all
///    children, and an adapter wraps legacy `std::atomic<bool>` flags;
///  * a **step/memory accountant** with per-layer counters, so a stopped run
///    can report exactly where the effort went;
///  * structured **StopReason** production (see common/status.h): every
///    deadline/cancellation exit says which budget died, at what counter
///    value, in which module.
///
/// Hot loops do not call ExecutionContext::Check directly — they tick an
/// ExecCheckpoint, which amortizes the steady_clock read over N work units
/// (a pivot, a node, an enumeration step) so the fast path stays at the
/// PR 1 benchmark numbers.
///
/// All methods are thread-safe; one ExecutionContext is shared by every
/// worker thread of a solve.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace fo2dt {

/// \brief Cooperative, hierarchical cancellation.
///
/// A token is a handle on shared cancellation state. `Child()` derives a
/// token that observes its parent: cancelling the parent cancels every
/// descendant, while cancelling a child leaves the parent untouched. This is
/// exactly the shape of the first-SAT-wins fan-outs (SolveDnf, the LCTA
/// accepting-root loop): the caller's token is the parent, each branch gets
/// a child, and a winning branch cancels only the losing siblings.
///
/// A default-constructed token is *inert*: IsCancelled() is false forever
/// and RequestCancel() is a no-op. Copies share state (shared_ptr).
class CancellationToken {
 public:
  /// Inert token: never cancelled, cancel requests are dropped.
  CancellationToken() = default;

  /// A fresh root token.
  static CancellationToken Create();

  /// Adapter for legacy call sites that signal through a raw atomic flag
  /// (the pre-governor IlpOptions::cancel idiom). The token reports
  /// cancelled whenever `*flag` is true; \p flag must outlive the token.
  static CancellationToken WrapFlag(const std::atomic<bool>* flag);

  /// Derives a token that is cancelled when either this token is cancelled
  /// or RequestCancel() is called on the child itself. A child of an inert
  /// token is a fresh root.
  CancellationToken Child() const;

  /// False for inert tokens (no check will ever fire).
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// True once this token, any ancestor, or a wrapped flag is cancelled.
  bool IsCancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) return true;
      if (s->external != nullptr &&
          s->external->load(std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  /// Cancels this token and (transitively) all children. Idempotent,
  /// thread-safe; a no-op on inert tokens.
  void RequestCancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_release);
    }
  }

 private:
  struct State {
    // atomic: set with release in RequestCancel, read with acquire in
    // IsCancelled — the only cross-thread signal; parent/external are
    // immutable after construction.
    std::atomic<bool> cancelled{false};
    const std::atomic<bool>* external = nullptr;  // WrapFlag adapter
    std::shared_ptr<const State> parent;          // Child() chain
  };
  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;  // nullptr == inert
};

/// \brief Per-layer effort counters, aggregated across worker threads.
///
/// These are diagnostics, not budgets: budgets live in the per-module
/// options (max_nodes, max_cuts, ...) and in the ExecutionContext deadline.
struct ExecCounters {
  // atomic: relaxed fetch_add from every worker thread; read after join (or
  // torn-tolerantly for live observability). No inter-counter ordering.
  std::atomic<uint64_t> simplex_pivots{0};
  std::atomic<uint64_t> ilp_nodes{0};
  std::atomic<uint64_t> search_steps{0};
  std::atomic<uint64_t> lcta_cut_rounds{0};
  std::atomic<uint64_t> vata_candidates{0};
  /// How often the (amortized) deadline was actually consulted.
  std::atomic<uint64_t> deadline_checks{0};
};

/// \brief Shared governor for one top-level solve.
///
/// Construct one per request, set a deadline and/or a cancellation token,
/// and pass a pointer down through the layer options. All solver layers
/// treat a null ExecutionContext* as "ungoverned" (no deadline, inert
/// token), so existing call sites keep working unchanged.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Arms the wall-clock deadline \p budget from now (steady clock).
  void SetDeadlineAfter(std::chrono::milliseconds budget) {
    start_ = std::chrono::steady_clock::now();
    deadline_ = start_ + budget;
    budget_ms_ = static_cast<uint64_t>(budget.count());
    has_deadline_ = true;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds elapsed since the deadline was armed (0 when unarmed).
  uint64_t ElapsedMs() const {
    if (!has_deadline_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  /// Installs the caller's cancellation token (defaults to inert).
  void set_token(CancellationToken token) { token_ = std::move(token); }
  const CancellationToken& token() const { return token_; }

  /// Caps the memory accountant at \p bytes (0 = unlimited).
  void set_max_bytes(uint64_t bytes) { max_bytes_ = bytes; }

  /// End-to-end correlation id for this solve ("" outside the daemon). Set
  /// once by the owner before the solve starts; read-only afterwards, so it
  /// needs no synchronization beyond the context handoff itself.
  void set_request_id(std::string request_id) {
    request_id_ = std::move(request_id);
  }
  const std::string& request_id() const { return request_id_; }

  /// Effort counters; writable through const refs (the context is shared as
  /// a const pointer by worker threads, and the counters are atomics).
  ExecCounters& counters() const { return counters_; }

  /// Per-phase wall-time/effort accumulator for this solve, written by
  /// ScopedPhaseTimer from every worker thread (same const-ref convention as
  /// counters()). Snapshot with SnapshotPhaseProfile(). Accumulates over the
  /// context's lifetime: reuse a context across solves and the profile spans
  /// all of them, exactly like the effort counters.
  PhaseAccumulator& phases() const { return phases_; }

  /// Peak value ever charged against the memory accountant, in bytes.
  uint64_t MemoryHighWater() const {
    return phases_.mem_high_water.load(std::memory_order_relaxed);
  }

  /// Running total currently charged against the accountant, in bytes.
  /// Sampled by ScopedPhaseMemory to attribute footprints to phases.
  uint64_t BytesCharged() const {
    return bytes_charged_.load(std::memory_order_relaxed);
  }

  /// Charges \p bytes against the memory budget; ResourceExhausted with
  /// StopKind::kMemoryBudget when the cap is exceeded.
  /// Const for the same reason counters() is: the accountant is an atomic
  /// and the context is shared as a const pointer by worker threads.
  Status ChargeMemory(uint64_t bytes, const char* module) const;

  /// The full (unamortized) stop check: the caller's token, then the
  /// deadline. Returns OK, or Cancelled / ResourceExhausted carrying a
  /// structured StopReason naming \p module.
  Status Check(const char* module) const;

  /// True when the deadline has passed (false when unarmed).
  bool DeadlineExpired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// StopReason for a deadline exit detected by \p module.
  StopReason DeadlineReason(const char* module) const {
    return StopReason{StopKind::kDeadline, module, ElapsedMs(), budget_ms_};
  }

  /// StopReason for a caller-cancellation exit detected by \p module.
  static StopReason CancelReason(const char* module) {
    return StopReason{StopKind::kCancelled, module, 0, 0};
  }

 private:
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t budget_ms_ = 0;
  bool has_deadline_ = false;
  CancellationToken token_;
  std::string request_id_;
  uint64_t max_bytes_ = 0;
  // atomic: CAS accounting loop in ChargeMemory, relaxed reads elsewhere;
  // the high-water mark lives in phases_.mem_high_water.
  mutable std::atomic<uint64_t> bytes_charged_{0};
  // mutable: Check() is logically const but counts deadline consultations,
  // and phase timers charge the shared accumulator through const pointers.
  mutable ExecCounters counters_;
  mutable PhaseAccumulator phases_;
};

/// \brief Amortized stop checks for hot loops.
///
/// `Tick()` costs one decrement on the fast path; every `period` ticks it
/// consults the branch token (one or two relaxed loads) and the
/// ExecutionContext (token walk + steady_clock read). Both the context and
/// the token are optional; with neither, Tick() is free and always OK.
///
/// The period trades responsiveness for overhead: at ~10M simplex pivots/s
/// a period of 1024 bounds deadline overshoot to ~0.1 ms.
class ExecCheckpoint {
 public:
  static constexpr uint32_t kDefaultPeriod = 1024;

  ExecCheckpoint(const ExecutionContext* exec, const CancellationToken* token,
                 const char* module, uint32_t period = kDefaultPeriod)
      : exec_(exec),
        token_(token != nullptr && token->CanBeCancelled() ? token : nullptr),
        module_(module),
        period_(period),
        countdown_(period) {
    if (exec_ != nullptr && !exec_->has_deadline() &&
        !exec_->token().CanBeCancelled()) {
      exec_ = nullptr;  // nothing to check: keep the fast path trivial
    }
  }

  /// Accounts one unit of work; OK on the amortized fast path.
  Status Tick() {
    if (--countdown_ != 0) return Status::OK();
    countdown_ = period_;
    return Fire();
  }

  /// The unamortized check (e.g. once per coarse-grained round).
  Status Fire();

 private:
  const ExecutionContext* exec_;
  const CancellationToken* token_;
  const char* module_;
  uint32_t period_;
  uint32_t countdown_;
};

/// \brief Deterministic first-SAT-wins fan-out coordination.
///
/// Both parallel fan-outs in the pipeline (IlpSolver::SolveDnf and the LCTA
/// accepting-root loop) race branches for the first terminal answer while
/// keeping the *verdict* schedule-independent: the reported answer is the
/// one with the smallest branch index, and every branch at or below the
/// current terminal index always runs to completion. Pre-governor, each site
/// hand-rolled this with an atomic `stop_at` plus a raw flag per branch;
/// FirstWinsFanout centralizes the protocol on CancellationTokens.
///
/// Usage: construct with the branch count and the caller's token; give
/// branch i `TokenFor(i)`; when branch i reaches a terminal answer call
/// `MarkTerminal(i)` — every branch with a larger index is cancelled.
/// `Abandoned(i)` tells a scheduler whether branch i no longer matters.
class FirstWinsFanout {
 public:
  FirstWinsFanout(size_t num_branches, const CancellationToken& parent);

  size_t size() const { return tokens_.size(); }

  /// The token branch \p i must poll; a child of the caller's token.
  const CancellationToken& TokenFor(size_t i) const { return tokens_[i]; }

  /// Records that branch \p i produced a terminal answer. Lowers the
  /// terminal index monotonically (CAS) and cancels all higher branches.
  void MarkTerminal(size_t i);

  /// True when some branch with index <= \p i already produced a terminal
  /// answer strictly below \p i — branch i's outcome can no longer affect
  /// the verdict.
  bool Abandoned(size_t i) const {
    return i > stop_at_.load(std::memory_order_acquire);
  }

  /// Smallest branch index known to be terminal (size() when none).
  size_t stop_at() const { return stop_at_.load(std::memory_order_acquire); }

 private:
  std::vector<CancellationToken> tokens_;
  // atomic: min-CAS in MarkTerminal (release), acquire reads in Abandoned —
  // a branch that observes stop_at < i sees the winner's writes.
  std::atomic<size_t> stop_at_;
};

}  // namespace fo2dt

