/// \file trace.h
/// \brief Low-overhead structured tracing: scoped spans over a ring buffer.
///
/// A TraceSpan marks the dynamic extent of one unit of pipeline work ("one
/// Scott normalization", "one LCTA cut round", "one B&B subtree"). Spans
/// record monotonic start/end timestamps, the emitting thread, and a
/// hierarchical parent id (the innermost open span on the same thread), and
/// land in a process-wide fixed-capacity ring buffer guarded by a mutex —
/// new events overwrite the oldest once the buffer is full, so tracing can
/// stay on for arbitrarily long runs with bounded memory.
///
/// Cost model, in line with the failpoint framework (common/failpoint.h):
///
///  * builds without the FO2DT_TRACE compile definition (the default for
///    optimized builds; see the CMake option of the same name) compile every
///    span to literally nothing — TraceSpan is an empty type, the
///    constructor has an empty body, and `FO2DT_TRACE_SPAN(...)` cannot
///    perturb benchmark numbers;
///  * builds with FO2DT_TRACE but with recording disabled at runtime pay
///    one relaxed atomic load per span;
///  * with recording enabled (environment variable FO2DT_TRACE=1, or
///    TraceRecorder::SetEnabled(true)) each span costs two steady_clock
///    reads plus two short critical sections — one at construction to
///    register the span as in-flight (so a post-mortem export can show
///    where execution stopped), one at destruction to complete it.
///
/// The buffer exports in Chrome trace-event format ("catapult" JSON), so a
/// dump loads directly into chrome://tracing or https://ui.perfetto.dev.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace fo2dt {

/// \brief One completed span in the ring buffer.
struct TraceEvent {
  /// Process-unique span id (1-based; 0 means "no span").
  uint64_t id = 0;
  /// Id of the span that was open on the same thread when this one started
  /// (0 at the root of a thread's span stack).
  uint64_t parent = 0;
  /// Static string naming the work, e.g. "lcta.cut_round". Spans only accept
  /// string literals, so no ownership or copying is involved.
  const char* name = "";
  /// Small dense index of the emitting thread (assigned on first emission).
  uint32_t thread = 0;
  /// Monotonic nanoseconds since the recorder's epoch.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// \brief Process-wide span sink. Thread-safe.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  /// The singleton; constructed on first use. Recording starts enabled iff
  /// the environment variable FO2DT_TRACE is set to "1" at that point.
  static TraceRecorder& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Resizes the ring buffer (drops all recorded events).
  void SetCapacity(size_t capacity);

  /// Drops all recorded events and the dropped-event count.
  void Clear();

  /// Number of events currently held (<= capacity).
  size_t size() const;

  /// Number of events overwritten because the ring was full.
  uint64_t dropped() const;

  /// The buffered events, oldest first. Completed spans only; in-flight
  /// spans are reported separately by OpenSpans().
  std::vector<TraceEvent> Snapshot() const;

  /// Spans currently open (constructed, not yet destroyed), oldest first,
  /// with end_ns == 0. A post-mortem export taken mid-solve shows exactly
  /// where execution stopped through these.
  std::vector<TraceEvent> OpenSpans() const;

  /// Writes the buffer to \p path in Chrome trace-event JSON. The file is a
  /// single object: {"traceEvents": [...], "otherData": {...}}. In-flight
  /// spans are emitted after the completed ones with `"open":true` in their
  /// args and a duration running up to the export time.
  Status WriteJson(const std::string& path) const;

  /// Monotonic nanoseconds since the recorder's construction.
  uint64_t NowNs() const;

  /// Registers an in-flight span (called by the TraceSpan constructor;
  /// \p event carries end_ns == 0 until completion).
  void BeginSpan(const TraceEvent& event);

  /// Appends one completed event and retires its in-flight entry (called by
  /// ~TraceSpan).
  void Record(const TraceEvent& event);

  /// Allocates a fresh span id.
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Dense index of the calling thread (stable for the thread's lifetime).
  static uint32_t CurrentThreadIndex();

 private:
  TraceRecorder();

  // atomic: enabled_ is a relaxed on/off flag sampled per span (stale reads
  // only cost one recorded/missed span); next_id_ is a relaxed id ticket.
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  uint64_t epoch_ns_ = 0;  // steady_clock at construction

  mutable Mutex mu_{names::kLockTraceRing};
  std::vector<TraceEvent> ring_ FO2DT_GUARDED_BY(mu_);
  size_t capacity_ FO2DT_GUARDED_BY(mu_) = kDefaultCapacity;
  // next overwrite position once full
  size_t head_ FO2DT_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ FO2DT_GUARDED_BY(mu_) = 0;
  // in-flight spans
  std::vector<TraceEvent> open_ FO2DT_GUARDED_BY(mu_);
};

// The per-thread innermost open span id; spans link to it as their parent.
// Lives outside the #if so trace.cc can define helpers unconditionally.
uint64_t& ThreadCurrentSpanId();

#ifdef FO2DT_TRACE

/// \brief RAII span. See file comment for the cost model.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    TraceRecorder& rec = TraceRecorder::Instance();
    if (!rec.enabled()) return;
    armed_ = true;
    name_ = name;
    id_ = rec.NextId();
    uint64_t& current = ThreadCurrentSpanId();
    parent_ = current;
    current = id_;
    start_ns_ = rec.NowNs();
    TraceEvent ev;
    ev.id = id_;
    ev.parent = parent_;
    ev.name = name_;
    ev.thread = TraceRecorder::CurrentThreadIndex();
    ev.start_ns = start_ns_;
    rec.BeginSpan(ev);  // end_ns stays 0 until destruction
  }
  ~TraceSpan() {
    if (!armed_) return;
    TraceRecorder& rec = TraceRecorder::Instance();
    TraceEvent ev;
    ev.id = id_;
    ev.parent = parent_;
    ev.name = name_;
    ev.thread = TraceRecorder::CurrentThreadIndex();
    ev.start_ns = start_ns_;
    ev.end_ns = rec.NowNs();
    rec.Record(ev);
    ThreadCurrentSpanId() = parent_;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_ = false;
  const char* name_ = "";
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ns_ = 0;
};

#else  // !FO2DT_TRACE

/// Stub: empty type, constructor compiles to nothing. trace_test
/// static_asserts std::is_empty_v<TraceSpan> in this configuration, which is
/// the "disabled tracing is zero-overhead" guarantee.
class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // FO2DT_TRACE

/// Opens a span over the rest of the enclosing scope.
#define FO2DT_TRACE_SPAN(name) \
  ::fo2dt::TraceSpan FO2DT_CONCAT(_fo2dt_span_, __LINE__)(name)

}  // namespace fo2dt

