/// \file thread_stats.h
/// \brief Thread-local performance counters with global aggregation.
///
/// Hot paths (BigInt arithmetic, simplex pivots) increment plain thread-local
/// counters — no atomics, no contention. Benchmarks aggregate across threads
/// afterwards. A counter struct `C` must be default-constructible and provide
///   void AddTo(C* out) const;   // out->x += x for every field
///   void Clear();               // zero every field
///
/// Aggregate()/Reset() take a registry lock and REQUIRE worker quiescence:
/// every solver worker thread must have been joined first, or in-flight
/// increments are silently missed. The precondition is enforced in debug
/// builds — fan-out workers hold a ScopedStatsWorker for their lifetime and
/// Aggregate()/Reset() assert that no worker is live.

#pragma once

#include <atomic>
#include <cassert>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace fo2dt {

/// Process-wide count of live solver worker threads that may be writing
/// thread-local counter blocks. Shared across all ThreadStats
/// instantiations (a worker typically writes several counter families).
/// atomic: incremented relaxed at worker start, decremented with release at
/// worker exit; the acquire load in AssertStatsWorkersQuiescent() pairs with
/// that release so observing 0 also publishes the workers' counter writes.
inline std::atomic<int>& ActiveStatsWorkerCount() {
  static std::atomic<int> count{0};
  return count;
}

/// The quiescence precondition of Aggregate()/Reset(), as one named,
/// annotation-clean check: an acquire load of the worker count (no counter
/// block is touched here, so there is nothing for the thread-safety
/// analysis to flag), asserted to be zero in debug builds. Returns the
/// count so release builds can keep the call free of dead variables.
inline int AssertStatsWorkersQuiescent() {
  const int live = ActiveStatsWorkerCount().load(std::memory_order_acquire);
  assert(live == 0 &&
         "ThreadStats aggregation requires quiescent workers: join fan-out "
         "threads first");
  return live;
}

/// \brief RAII declaration "this thread is a counter-writing worker".
///
/// Construct as the first statement of a fan-out worker body; the join of
/// the worker thread then orders the destructor before any subsequent
/// Aggregate()/Reset() on the spawning thread.
class ScopedStatsWorker {
 public:
  ScopedStatsWorker() {
    ActiveStatsWorkerCount().fetch_add(1, std::memory_order_relaxed);
  }
  ~ScopedStatsWorker() {
    // Release pairs with the acquire load in Aggregate()/Reset(): when the
    // assertion observes count == 0, every counter write that preceded a
    // worker's destructor is visible. A relaxed fetch_sub here would let the
    // assertion pass while a worker's increments were still in flight.
    ActiveStatsWorkerCount().fetch_sub(1, std::memory_order_release);
  }
  ScopedStatsWorker(const ScopedStatsWorker&) = delete;
  ScopedStatsWorker& operator=(const ScopedStatsWorker&) = delete;
};

template <typename C>
class ThreadStats {
 public:
  /// The calling thread's counter block (registered on first use).
  static C& Local() {
    thread_local Handle handle;
    return handle.counters;
  }

  /// Sum over all live threads plus exited threads since the last Reset().
  /// Precondition: all solver workers joined (asserted in debug builds).
  static C Aggregate() {
    (void)AssertStatsWorkersQuiescent();
    Registry& r = GetRegistry();
    ScopedRankedLock lock(r.mu);
    C out = r.retired;
    // Dereferencing live[] blocks is safe only under the quiescence
    // precondition just asserted: the pointees are thread-confined to their
    // owning (now joined or idle) threads, not guarded by r.mu.
    for (const C* c : r.live) c->AddTo(&out);
    return out;
  }

  /// Zeroes the retired accumulator and every live thread's block.
  /// Precondition: all solver workers joined (asserted in debug builds).
  static void Reset() {
    (void)AssertStatsWorkersQuiescent();
    Registry& r = GetRegistry();
    ScopedRankedLock lock(r.mu);
    r.retired.Clear();
    for (C* c : r.live) c->Clear();
  }

 private:
  struct Registry {
    Mutex mu{names::kLockStatsRegistry};
    /// The list itself is guarded by mu; the pointees are NOT — each block
    /// is thread-confined to its owner and only read cross-thread under the
    /// quiescence precondition (AssertStatsWorkersQuiescent).
    std::vector<C*> live FO2DT_GUARDED_BY(mu);
    C retired FO2DT_GUARDED_BY(mu);
  };

  static Registry& GetRegistry() {
    static Registry* r = new Registry();  // leaked: outlives thread exits
    return *r;
  }

  struct Handle {
    C counters;
    Handle() {
      Registry& r = GetRegistry();
      ScopedRankedLock lock(r.mu);
      r.live.push_back(&counters);
    }
    ~Handle() {
      Registry& r = GetRegistry();
      ScopedRankedLock lock(r.mu);
      counters.AddTo(&r.retired);
      for (size_t i = 0; i < r.live.size(); ++i) {
        if (r.live[i] == &counters) {
          r.live.erase(r.live.begin() + static_cast<long>(i));
          break;
        }
      }
    }
  };
};

}  // namespace fo2dt

