/// \file thread_stats.h
/// \brief Thread-local performance counters with global aggregation.
///
/// Hot paths (BigInt arithmetic, simplex pivots) increment plain thread-local
/// counters — no atomics, no contention. Benchmarks aggregate across threads
/// afterwards. A counter struct `C` must be default-constructible and provide
///   void AddTo(C* out) const;   // out->x += x for every field
///   void Clear();               // zero every field
///
/// Aggregate()/Reset() take a registry lock and are intended to be called
/// while worker threads are quiescent (between benchmark iterations); calling
/// them concurrently with active workers is memory-safe but may miss
/// in-flight increments.

#ifndef FO2DT_COMMON_THREAD_STATS_H_
#define FO2DT_COMMON_THREAD_STATS_H_

#include <mutex>
#include <vector>

namespace fo2dt {

template <typename C>
class ThreadStats {
 public:
  /// The calling thread's counter block (registered on first use).
  static C& Local() {
    thread_local Handle handle;
    return handle.counters;
  }

  /// Sum over all live threads plus exited threads since the last Reset().
  static C Aggregate() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    C out = r.retired;
    for (const C* c : r.live) c->AddTo(&out);
    return out;
  }

  /// Zeroes the retired accumulator and every live thread's block.
  static void Reset() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retired.Clear();
    for (C* c : r.live) c->Clear();
  }

 private:
  struct Registry {
    std::mutex mu;
    std::vector<C*> live;
    C retired;
  };

  static Registry& GetRegistry() {
    static Registry* r = new Registry();  // leaked: outlives thread exits
    return *r;
  }

  struct Handle {
    C counters;
    Handle() {
      Registry& r = GetRegistry();
      std::lock_guard<std::mutex> lock(r.mu);
      r.live.push_back(&counters);
    }
    ~Handle() {
      Registry& r = GetRegistry();
      std::lock_guard<std::mutex> lock(r.mu);
      counters.AddTo(&r.retired);
      for (size_t i = 0; i < r.live.size(); ++i) {
        if (r.live[i] == &counters) {
          r.live.erase(r.live.begin() + static_cast<long>(i));
          break;
        }
      }
    }
  };
};

}  // namespace fo2dt

#endif  // FO2DT_COMMON_THREAD_STATS_H_
