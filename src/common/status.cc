#include "common/status.h"

#include "common/strings.h"

namespace fo2dt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kOverflow:
      return "Overflow";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

const char* StopKindToString(StopKind kind) {
  switch (kind) {
    case StopKind::kNone:
      return "none";
    case StopKind::kDeadline:
      return "deadline";
    case StopKind::kCancelled:
      return "cancelled";
    case StopKind::kStepBudget:
      return "step budget";
    case StopKind::kNodeBudget:
      return "node budget";
    case StopKind::kCutBudget:
      return "cut budget";
    case StopKind::kBranchBudget:
      return "branch budget";
    case StopKind::kCandidateBudget:
      return "candidate budget";
    case StopKind::kPivotBudget:
      return "pivot budget";
    case StopKind::kMemoryBudget:
      return "memory budget";
    case StopKind::kInjectedFault:
      return "injected fault";
  }
  return "unknown";
}

std::string StopReason::ToString() const {
  if (!stopped()) return "none";
  const char* unit = kind == StopKind::kDeadline ? " ms" : "";
  if (limit > 0) {
    return StringFormat("%s in %s (%llu of %llu%s)", StopKindToString(kind),
                        module, static_cast<unsigned long long>(counter),
                        static_cast<unsigned long long>(limit), unit);
  }
  return StringFormat("%s in %s", StopKindToString(kind), module);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  Status out(code(), context + ": " + message());
  if (const StopReason* reason = stop_reason()) {
    out = out.WithStopReason(*reason);
  }
  return out;
}

Status Status::WithStopReason(StopReason reason) const {
  if (ok()) return *this;
  Status out = *this;
  out.state_ = std::make_shared<State>(State{code(), message(), reason});
  return out;
}

}  // namespace fo2dt
