#include "common/status.h"

namespace fo2dt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kOverflow:
      return "Overflow";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace fo2dt
