#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace fo2dt {

uint64_t& ThreadCurrentSpanId() {
  thread_local uint64_t current = 0;
  return current;
}

uint32_t TraceRecorder::CurrentThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

TraceRecorder::TraceRecorder() {
  epoch_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  ring_.reserve(capacity_);
  const char* env = std::getenv("FO2DT_TRACE");
  if (env != nullptr && std::strcmp(env, "1") == 0) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked: see
  return *recorder;  // thread_stats.h GetRegistry for the rationale
}

uint64_t TraceRecorder::NowNs() const {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_;
}

void TraceRecorder::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  dropped_ = 0;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::vector<TraceEvent> events = Snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StringFormat("cannot open trace output file '%s'", path.c_str()));
  }
  std::fputs("{\"traceEvents\":[", f);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // Chrome "complete" events; timestamps/durations are in microseconds
    // (fractional values are accepted, so nanosecond precision survives).
    std::fprintf(
        f,
        "%s\n  {\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"id\":%llu,\"parent\":%llu}}",
        i == 0 ? "" : ",", e.name, e.thread,
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.end_ns - e.start_ns) / 1e3,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent));
  }
  std::fprintf(f,
               "\n],\"otherData\":{\"enabled\":%s,\"dropped\":%llu}}\n",
               enabled() ? "true" : "false",
               static_cast<unsigned long long>(dropped()));
  if (std::fclose(f) != 0) {
    return Status::Internal(
        StringFormat("error writing trace output file '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace fo2dt
