#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace fo2dt {

uint64_t& ThreadCurrentSpanId() {
  thread_local uint64_t current = 0;
  return current;
}

uint32_t TraceRecorder::CurrentThreadIndex() {
  // atomic: thread-index ticket; relaxed fetch_add — each thread only needs
  // a distinct value, not ordering with anything else.
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

TraceRecorder::TraceRecorder() {
  epoch_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  ring_.reserve(capacity_);
  const char* env = std::getenv("FO2DT_TRACE");
  if (env != nullptr && std::strcmp(env, "1") == 0) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked: see
  return *recorder;  // thread_stats.h GetRegistry for the rationale
}

uint64_t TraceRecorder::NowNs() const {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_;
}

void TraceRecorder::SetCapacity(size_t capacity) {
  ScopedRankedLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  dropped_ = 0;
}

void TraceRecorder::Clear() {
  ScopedRankedLock lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  open_.clear();
}

size_t TraceRecorder::size() const {
  ScopedRankedLock lock(mu_);
  return ring_.size();
}

uint64_t TraceRecorder::dropped() const {
  ScopedRankedLock lock(mu_);
  return dropped_;
}

void TraceRecorder::BeginSpan(const TraceEvent& event) {
  ScopedRankedLock lock(mu_);
  open_.push_back(event);
}

void TraceRecorder::Record(const TraceEvent& event) {
  ScopedRankedLock lock(mu_);
  // Retire the in-flight entry. Spans destroy strictly LIFO per thread, so
  // the match is almost always at or near the back.
  for (size_t i = open_.size(); i > 0; --i) {
    if (open_[i - 1].id == event.id) {
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i - 1));
      break;
    }
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  ScopedRankedLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::OpenSpans() const {
  ScopedRankedLock lock(mu_);
  return open_;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::vector<TraceEvent> events = Snapshot();
  std::vector<TraceEvent> open_spans = OpenSpans();
  uint64_t now_ns = NowNs();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StringFormat("cannot open trace output file '%s'", path.c_str()));
  }
  std::fputs("{\"traceEvents\":[", f);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // Chrome "complete" events; timestamps/durations are in microseconds
    // (fractional values are accepted, so nanosecond precision survives).
    std::fprintf(
        f,
        "%s\n  {\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"id\":%llu,\"parent\":%llu}}",
        i == 0 ? "" : ",", e.name, e.thread,
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.end_ns - e.start_ns) / 1e3,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent));
  }
  // In-flight spans: still open at export time (a post-mortem snapshot shows
  // where execution stopped). Marked "open":true; the duration runs up to
  // the export instant.
  for (size_t i = 0; i < open_spans.size(); ++i) {
    const TraceEvent& e = open_spans[i];
    uint64_t dur_ns = now_ns > e.start_ns ? now_ns - e.start_ns : 0;
    std::fprintf(
        f,
        "%s\n  {\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"id\":%llu,\"parent\":%llu,\"open\":true}}",
        events.empty() && i == 0 ? "" : ",", e.name, e.thread,
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(dur_ns) / 1e3,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent));
  }
  std::fprintf(f,
               "\n],\"otherData\":{\"enabled\":%s,\"dropped\":%llu,"
               "\"open_spans\":%llu}}\n",
               enabled() ? "true" : "false",
               static_cast<unsigned long long>(dropped()),
               static_cast<unsigned long long>(open_spans.size()));
  if (std::fclose(f) != 0) {
    return Status::Internal(
        StringFormat("error writing trace output file '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace fo2dt
