/// \file bitset.h
/// \brief Dynamic bitset with cached popcount and sorted-order iteration.
///
/// The flat state-set representation used by the hot automaton layers
/// (the ltsmin `dm/bitvector.h` shape): membership is one shift + mask,
/// insertion maintains an exact element count, and iteration visits set bits
/// in increasing index order — the same order a `std::set<uint32_t>` would
/// produce, which is what keeps the canonical `automaton_io` text (and with
/// it every FNV-1a solve-cache key) byte-identical across the flat rewrite.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fo2dt {

/// \brief A grow-on-insert set of uint32 ids backed by packed 64-bit words.
class Bitset {
 public:
  Bitset() = default;
  /// A set over the universe [0, universe); all bits clear.
  explicit Bitset(size_t universe) : words_((universe + 63) / 64, 0) {}

  /// Inserts \p i, growing the word array as needed. Idempotent.
  void Insert(uint32_t i) {
    const size_t w = i / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    const uint64_t mask = uint64_t{1} << (i % 64);
    if ((words_[w] & mask) == 0) {
      words_[w] |= mask;
      ++count_;
    }
  }

  bool Contains(uint32_t i) const {
    const size_t w = i / 64;
    return w < words_.size() && (words_[w] >> (i % 64)) & 1;
  }

  /// Number of elements (exact, O(1)).
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void Clear() {
    words_.assign(words_.size(), 0);
    count_ = 0;
  }

  /// The packed words (low id = low bit of word 0). For bulk set algebra.
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    if (a.count_ != b.count_) return false;
    // Trailing all-zero words are representation noise, not content.
    const size_t n = a.words_.size() < b.words_.size() ? a.words_.size()
                                                       : b.words_.size();
    for (size_t i = 0; i < n; ++i) {
      if (a.words_[i] != b.words_[i]) return false;
    }
    for (size_t i = n; i < a.words_.size(); ++i) {
      if (a.words_[i] != 0) return false;
    }
    for (size_t i = n; i < b.words_.size(); ++i) {
      if (b.words_[i] != 0) return false;
    }
    return true;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) { return !(a == b); }

  /// Forward iterator over the set ids, in increasing order.
  class const_iterator {
   public:
    using value_type = uint32_t;

    const_iterator(const uint64_t* words, size_t num_words, size_t word_idx)
        : words_(words), num_words_(num_words), word_idx_(word_idx) {
      cur_ = word_idx_ < num_words_ ? words_[word_idx_] : 0;
      Settle();
    }

    uint32_t operator*() const {
      return static_cast<uint32_t>(word_idx_ * 64 +
                                   static_cast<size_t>(std::countr_zero(cur_)));
    }

    const_iterator& operator++() {
      cur_ &= cur_ - 1;  // clear the lowest set bit
      Settle();
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.word_idx_ == b.word_idx_ && a.cur_ == b.cur_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    void Settle() {
      while (cur_ == 0 && ++word_idx_ < num_words_) cur_ = words_[word_idx_];
      if (word_idx_ >= num_words_) {
        word_idx_ = num_words_;
        cur_ = 0;
      }
    }

    const uint64_t* words_;
    size_t num_words_;
    size_t word_idx_;
    uint64_t cur_ = 0;
  };

  const_iterator begin() const {
    return const_iterator(words_.data(), words_.size(), 0);
  }
  const_iterator end() const {
    return const_iterator(words_.data(), words_.size(), words_.size());
  }

 private:
  std::vector<uint64_t> words_;
  size_t count_ = 0;
};

/// \brief Calls \p fn(id) for every set bit of a raw word array, ascending.
///
/// The word-array twin of Bitset iteration, for scratch sets carved out of a
/// SolveArena (per-node run sets, grammar support rows) where a container
/// per set would defeat the point of the arena.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t num_words, Fn&& fn) {
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t cur = words[w];
    while (cur != 0) {
      fn(static_cast<uint32_t>(w * 64 +
                               static_cast<size_t>(std::countr_zero(cur))));
      cur &= cur - 1;
    }
  }
}

}  // namespace fo2dt
