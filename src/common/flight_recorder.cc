#include "common/flight_recorder.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/execution_context.h"
#include "common/failpoint.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/trace.h"

namespace fo2dt {

namespace {

// Depth of facade nesting on this thread; only depth 1 records, so a facade
// implemented on top of another facade (constraints → frontend) leaves one
// record, attributed to the outermost entry point.
int& ThreadSolveDepth() {
  thread_local int depth = 0;
  return depth;
}

// Solve-cache disposition for the top-level solve on this thread; "" when no
// cache lookup happened (or caching is off). Reset by the outermost
// SolveRecorder so state never leaks across solves.
const char*& ThreadCacheDisposition() {
  thread_local const char* disposition = "";
  return disposition;
}

uint64_t ProcessCpuMs() {
  return static_cast<uint64_t>(static_cast<double>(std::clock()) * 1000.0 /
                               CLOCKS_PER_SEC);
}

bool IsKnownCaptureMode(const std::string& mode) {
  for (size_t i = 0; i < names::kNumCaptureModes; ++i) {
    if (mode == names::kAllCaptureModes[i]) return true;
  }
  return false;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StringFormat("cannot open bundle file '%s'", path.c_str()));
  }
  std::fputs(content.c_str(), f);
  if (std::fclose(f) != 0) {
    return Status::Internal(
        StringFormat("error writing bundle file '%s'", path.c_str()));
  }
  return Status::OK();
}

// The canonical injection sleeps inside the phase that owns the failpoint,
// long enough to dominate any real work a small replay input does, so the
// recorded and replayed DominantPhase agree deterministically.
constexpr auto kInjectionDelay = std::chrono::milliseconds(50);

void InjectStatusFault(void* arg, const char* module) {
  std::this_thread::sleep_for(kInjectionDelay);
  StopReason reason;
  reason.kind = StopKind::kInjectedFault;
  reason.module = module;
  reason.counter = 1;
  reason.limit = 1;
  *static_cast<Status*>(arg) =
      Status::ResourceExhausted("injected fault (canonical replay)", reason);
}

}  // namespace

FlightRecorder::FlightRecorder() {
  const char* log = std::getenv("FO2DT_QUERY_LOG");
  if (log != nullptr && log[0] != '\0') config_.query_log_path = log;
  const char* mode = std::getenv("FO2DT_CAPTURE");
  config_.capture_mode = names::kCaptureModeDegraded;
  if (mode != nullptr && IsKnownCaptureMode(mode)) config_.capture_mode = mode;
  const char* dir = std::getenv("FO2DT_CAPTURE_DIR");
  if (dir != nullptr && dir[0] != '\0') config_.capture_dir = dir;
  const char* slow = std::getenv("FO2DT_SLOW_MS");
  if (slow != nullptr && slow[0] != '\0') {
    config_.slow_ms = std::strtoull(slow, nullptr, 10);
  }
}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked: see
  return *recorder;  // thread_stats.h GetRegistry for the rationale
}

void FlightRecorder::Configure(FlightRecorderConfig config) {
  if (config.capture_mode.empty() || !IsKnownCaptureMode(config.capture_mode)) {
    config.capture_mode = names::kCaptureModeDegraded;
  }
  {
    ScopedRankedLock lock(mu_);
    config_ = config;
  }
  QueryLog::Instance().Configure(config.query_log_path);
}

FlightRecorderConfig FlightRecorder::config() const {
  ScopedRankedLock lock(mu_);
  return config_;
}

bool FlightRecorder::enabled() const {
  ScopedRankedLock lock(mu_);
  return !config_.query_log_path.empty();
}

std::string FlightRecorder::CaptureDir() const {
  ScopedRankedLock lock(mu_);
  if (!config_.capture_dir.empty()) return config_.capture_dir;
  return config_.query_log_path + ".captures";
}

SolveRecorder::SolveRecorder(const char* facade, const ExecutionContext* exec)
    : facade_(facade), exec_(exec) {
  int& depth = ThreadSolveDepth();
  ++depth;
  if (depth == 1) ThreadCacheDisposition() = "";
  // The env-seeded QueryLog is authoritative when the recorder was never
  // Configure()d; checking both keeps tests and production in one path.
  active_ = depth == 1 &&
            (FlightRecorder::Instance().enabled() || QueryLog::Instance().enabled());
  if (!active_) return;
  record_.facade = facade_;
  start_ = std::chrono::steady_clock::now();
  cpu_start_ms_ = ProcessCpuMs();
}

SolveRecorder::~SolveRecorder() { --ThreadSolveDepth(); }

void SolveRecorder::SetInput(const std::string& canonical) {
  if (!active_) return;
  record_.input_hash =
      HashToHex(Fnv1a64(std::string(facade_) + "\n" + canonical));
  record_.input_size = canonical.size();
}

void SolveRecorder::SetReplayInput(std::string text) {
  if (!active_) return;
  replay_input_ = std::move(text);
}

void SolveRecorder::AddBudget(const char* key, uint64_t value) {
  if (!active_) return;
  record_.budgets.emplace_back(key, value);
}

void SolveRecorder::SetThreads(uint64_t threads) {
  if (!active_) return;
  record_.threads = threads;
}

void SolveRecorder::SetSeed(uint64_t seed) {
  if (!active_) return;
  record_.seed = seed;
}

void SolveRecorder::SetRequestId(std::string request_id) {
  if (!active_) return;
  record_.request_id = std::move(request_id);
}

void SolveRecorder::Finish(SolveOutcome outcome) {
  if (!active_ || finished_) return;
  finished_ = true;
  if (!outcome.profile.has_value() && exec_ != nullptr) {
    PhaseProfile profile = SnapshotPhaseProfile(*exec_);
    profile.stop = outcome.stop;
    outcome.profile = profile;
  }
  record_.ts_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  record_.wall_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  uint64_t cpu_now = ProcessCpuMs();
  record_.cpu_ms = cpu_now > cpu_start_ms_ ? cpu_now - cpu_start_ms_ : 0;
  record_.outcome = std::move(outcome);
  if (record_.request_id.empty() && exec_ != nullptr) {
    record_.request_id = exec_->request_id();
  }

  const FlightRecorderConfig config = FlightRecorder::Instance().config();
  const std::string& mode = config.capture_mode;
  bool degraded = record_.outcome.verdict == "UNKNOWN" ||
                  record_.outcome.verdict.rfind("ERROR:", 0) == 0;
  // Tail sampling: a definite verdict that took longer than the configured
  // slow threshold is as capture-worthy as a degraded one — the bundle's
  // trace.json is the explanation of the latency tail.
  bool slow = config.slow_ms > 0 && record_.wall_ms >= config.slow_ms;
  bool capture =
      !replay_input_.empty() &&
      (mode == names::kCaptureModeAlways ||
       (mode == names::kCaptureModeDegraded && (degraded || slow)));
  if (capture) record_.capture = WriteBundle(record_, record_.outcome);
  record_.cache = ThreadCacheDisposition();

  // Observability must never fail the solve: a full disk loses the record,
  // not the verdict.
  (void)QueryLog::Instance().Append(record_.ToJsonLine());
}

std::string SolveRecorder::WriteBundle(const QueryRecord& record,
                                       const SolveOutcome& outcome) const {
  std::string slug = facade_;
  for (char& c : slug) {
    if (c == '.') c = '-';
  }
  std::string dir = StringFormat(
      "%s/%s-%s-%llu", FlightRecorder::Instance().CaptureDir().c_str(),
      slug.c_str(), record.input_hash.c_str(),
      static_cast<unsigned long long>(
          FlightRecorder::Instance().NextBundleSeq()));

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";

  // input.fo2dt: header, the facade body, the armed failpoints (so replay
  // re-injects the same faults), then the recorded outcome as expect lines.
  // Expect values run to end of line (StopKindToString is multi-word).
  std::string input = "fo2dt-replay v1\n";
  input += StringFormat("facade %s\n", facade_);
  input += replay_input_;
  if (!input.empty() && input.back() != '\n') input += "\n";
  for (const std::string& site : Failpoints::Instance().ArmedSites()) {
    input += StringFormat("failpoint %s\n", site.c_str());
  }
  input += StringFormat("expect verdict %s\n", outcome.verdict.c_str());
  if (outcome.stop.stopped()) {
    input += StringFormat("expect stop_kind %s\n",
                          StopKindToString(outcome.stop.kind));
    input += StringFormat("expect stop_module %s\n", outcome.stop.module);
  }
  if (outcome.profile.has_value()) {
    input += StringFormat("expect dominant_phase %s\n",
                          PhaseName(outcome.profile->DominantPhase()));
  }

  std::string manifest =
      StringFormat("{\"bundle_version\":1,\"record\":%s}\n",
                   record.ToJsonLine().c_str());

  // Bundle files are best-effort: partial bundles are still useful, and the
  // record's capture field points at whatever was written.
  (void)WriteTextFile(dir + "/" + names::kBundleFileManifestJson, manifest);
  (void)WriteTextFile(dir + "/" + names::kBundleFileInputFo2dt, input);
  (void)TraceRecorder::Instance().WriteJson(dir + "/" +
                                            names::kBundleFileTraceJson);
  (void)WriteTextFile(
      dir + "/" + names::kBundleFileMetricsJson,
      MetricsRegistry::Instance().Snapshot().ToJson() + "\n");
  return dir;
}

void NoteSolveCacheDisposition(const char* disposition) {
  if (ThreadSolveDepth() == 0) return;
  const char*& current = ThreadCacheDisposition();
  if (current[0] == '\0') current = disposition;
}

Alphabet MakeReplayAlphabet(size_t num_labels) {
  Alphabet alphabet;
  for (size_t i = 0; i < num_labels; ++i) {
    (void)alphabet.Intern(ReplayLabelName(i));
  }
  return alphabet;
}

std::string ReplayLabelName(size_t i) {
  return StringFormat("l%llu", static_cast<unsigned long long>(i));
}

bool ArmCanonicalReplayInjection(const std::string& site, int64_t fire) {
  Failpoints& fps = Failpoints::Instance();
  if (site == names::kFpLctaCutRound) {
    fps.Enable(site,
               [](void* arg) { InjectStatusFault(arg, names::kModLctaCuts); },
               /*skip=*/0, fire);
    return true;
  }
  if (site == names::kFpIlpWorkerFault) {
    fps.Enable(site, [](void* arg) {
      InjectStatusFault(arg, names::kModSolverlpIlp);
    }, /*skip=*/0, fire);
    return true;
  }
  if (site == names::kFpServerAcceptFault) {
    fps.Enable(site, [](void* arg) {
      InjectStatusFault(arg, names::kModServerAdmission);
    }, /*skip=*/0, fire);
    return true;
  }
  if (site == names::kFpServerWorkerCrash) {
    fps.Enable(site, [](void* arg) {
      InjectStatusFault(arg, names::kModServerWorker);
    }, /*skip=*/0, fire);
    return true;
  }
  if (site == names::kFpBigintForceSlowAdd ||
      site == names::kFpSimplexForceRebuild ||
      site == names::kFpServerSlowDrain) {
    fps.Enable(site, [](void* arg) { *static_cast<bool*>(arg) = true; },
               /*skip=*/0, fire);
    return true;
  }
  if (site == names::kFpIlpBranch) {
    fps.Enable(site, [](void*) {}, /*skip=*/0, fire);
    return true;
  }
  return false;
}

}  // namespace fo2dt
