#include "common/query_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/registry_names.h"
#include "common/strings.h"

namespace fo2dt {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendField(std::string* out, const char* key, const std::string& value) {
  *out += StringFormat("\"%s\":\"%s\"", key, JsonEscape(value).c_str());
}

void AppendField(std::string* out, const char* key, uint64_t value) {
  *out += StringFormat("\"%s\":%llu", key,
                       static_cast<unsigned long long>(value));
}

}  // namespace

std::string QueryRecord::ToJsonLine() const {
  std::string out = "{";
  AppendField(&out, names::kLogFieldV, static_cast<uint64_t>(v));
  out += ",";
  AppendField(&out, names::kLogFieldTsMs, ts_ms);
  out += ",";
  AppendField(&out, names::kLogFieldFacade, std::string(facade));
  out += ",";
  AppendField(&out, names::kLogFieldRequestId, request_id);
  out += ",";
  AppendField(&out, names::kLogFieldInputHash, input_hash);
  out += ",";
  AppendField(&out, names::kLogFieldInputSize, input_size);
  out += ",";
  AppendField(&out, names::kLogFieldVerdict, outcome.verdict);
  out += ",";
  AppendField(&out, names::kLogFieldMethod, outcome.method);
  out += ",";
  AppendField(&out, names::kLogFieldSteps, outcome.steps);
  out += ",";
  AppendField(&out, names::kLogFieldStopKind,
              std::string(StopKindToString(outcome.stop.kind)));
  out += ",";
  AppendField(&out, names::kLogFieldStopModule,
              std::string(outcome.stop.module));
  out += ",";
  AppendField(&out, names::kLogFieldStopCounter, outcome.stop.counter);
  out += ",";
  AppendField(&out, names::kLogFieldStopLimit, outcome.stop.limit);
  out += ",";
  // Phases: nested {"<phase>":{"ms":..,"effort":..,"mem_peak":..}} for every
  // phase that ran; the dominant phase names the largest self wall time.
  std::string dominant;
  std::string phases = "{";
  uint64_t ilp_max_depth = 0;
  uint64_t mem_high_water = 0;
  if (outcome.profile.has_value()) {
    const PhaseProfile& p = *outcome.profile;
    dominant = PhaseName(p.DominantPhase());
    ilp_max_depth = p.ilp_max_depth;
    mem_high_water = p.mem_high_water;
    bool first = true;
    for (size_t i = 0; i < kPhaseCount; ++i) {
      const PhaseProfile::Entry& e = p.phases[i];
      if (e.calls == 0) continue;
      phases += StringFormat(
          "%s\"%s\":{\"ms\":%.3f,\"effort\":%llu,\"mem_peak\":%llu}",
          first ? "" : ",", PhaseName(static_cast<Phase>(i)),
          static_cast<double>(e.wall_ns) / 1e6,
          static_cast<unsigned long long>(e.effort),
          static_cast<unsigned long long>(e.mem_peak));
      first = false;
    }
  }
  phases += "}";
  AppendField(&out, names::kLogFieldDominantPhase, dominant);
  out += StringFormat(",\"%s\":%s,", names::kLogFieldPhases, phases.c_str());
  AppendField(&out, names::kLogFieldIlpMaxDepth, ilp_max_depth);
  out += ",";
  AppendField(&out, names::kLogFieldMemHighWater, mem_high_water);
  out += ",";
  AppendField(&out, names::kLogFieldWallMs, wall_ms);
  out += ",";
  AppendField(&out, names::kLogFieldCpuMs, cpu_ms);
  out += ",";
  AppendField(&out, names::kLogFieldThreads, threads);
  out += ",";
  AppendField(&out, names::kLogFieldSeed, seed);
  out += StringFormat(",\"%s\":{", names::kLogFieldBudgets);
  for (size_t i = 0; i < budgets.size(); ++i) {
    if (i > 0) out += ",";
    AppendField(&out, budgets[i].first.c_str(), budgets[i].second);
  }
  out += "},";
  AppendField(&out, names::kLogFieldCapture, capture);
  out += ",";
  AppendField(&out, names::kLogFieldCache, cache);
  out += "}";
  return out;
}

QueryLog& QueryLog::Instance() {
  static QueryLog* log = new QueryLog();  // leaked: process lifetime
  return *log;
}

QueryLog::QueryLog() {
  const char* env = std::getenv("FO2DT_QUERY_LOG");
  if (env != nullptr && env[0] != '\0') path_ = env;
}

void QueryLog::Configure(std::string path) {
  ScopedRankedLock lock(mu_);
  path_ = std::move(path);
}

std::string QueryLog::path() const {
  ScopedRankedLock lock(mu_);
  return path_;
}

bool QueryLog::enabled() const {
  ScopedRankedLock lock(mu_);
  return !path_.empty();
}

Status QueryLog::Append(const std::string& line) {
  ScopedRankedLock lock(mu_);
  if (path_.empty()) return Status::OK();
  // One O_APPEND write() for the whole record including the newline: a
  // record either lands complete or not at all, so concurrent appenders and
  // a SIGTERM/SIGKILL mid-append can never interleave or truncate a line.
  int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::InvalidArgument(
        StringFormat("cannot open query log '%s'", path_.c_str()));
  }
  std::string record = line;
  record.push_back('\n');
  ssize_t written;
  do {
    written = ::write(fd, record.data(), record.size());
  } while (written < 0 && errno == EINTR);
  const bool complete =
      written >= 0 && static_cast<size_t>(written) == record.size();
  if (::close(fd) != 0 || !complete) {
    return Status::Internal(
        StringFormat("error appending to query log '%s'", path_.c_str()));
  }
  return Status::OK();
}

}  // namespace fo2dt
