/// \file intern.h
/// \brief Hash-consed IR for formulas: canonicalization + interning so
/// structurally equal formulas share one uint32 node id.
///
/// `InternFormula` lowers a Formula tree into canonical byte records over the
/// process-wide SharedInternTable (common/intern.h), bottom-up: operands of a
/// node's record are the interned handles of its children, so two formulas
/// receive the same handle iff they canonicalize identically — equality and
/// hashing of interned formulas are O(1) integer compares.
///
/// The canonicalization pass applied before interning:
///   * And/Or children are flattened one level, sorted, and deduplicated;
///     neutral elements are dropped and absorbing elements short-circuit
///     (x ∧ true = x, x ∧ false = false, and dually for ∨);
///   * empty conjunction/disjunction collapse to true/false, singletons to
///     their only child;
///   * double negation and ¬true/¬false fold away;
///   * the symmetric atoms x ~ y and x = y order their variable pair.
/// These are all semantic identities, so equal handles imply equivalent
/// formulas while structurally equal formulas always map to equal handles —
/// the property the solve cache and the differential tests rely on.

#pragma once

#include "common/intern.h"
#include "logic/formula.h"

namespace fo2dt {

/// Canonicalizes \p f and interns it, returning its dense node id. Two calls
/// return the same handle iff the formulas canonicalize to the same term;
/// in particular structural equality implies handle equality. Thread-safe.
InternHandle InternFormula(const Formula& f);

/// Process-local canonical hash of \p f: the FNV-1a 64 of its interned
/// record (child handles included). Stable within one process run only —
/// cross-process cache keys must hash canonical text instead.
uint64_t CanonicalFormulaHash(const Formula& f);

}  // namespace fo2dt
