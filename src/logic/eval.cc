#include "logic/eval.h"

#include "common/strings.h"

namespace fo2dt {

PredInterpretation PredInterpretation::Empty(PredId num_preds,
                                             size_t num_nodes) {
  PredInterpretation out;
  out.membership.assign(num_preds, std::vector<char>(num_nodes, 0));
  return out;
}

namespace {

/// Precomputed structural relations for O(1) pair checks.
struct TreeIndex {
  explicit TreeIndex(const DataTree& t) : tree(t) {
    const size_t n = t.size();
    pre.assign(n, 0);
    post.assign(n, 0);
    sibling_index.assign(n, 0);
    size_t clock = 0;
    // Iterative pre/post numbering.
    struct Item {
      NodeId node;
      bool expanded;
    };
    if (n > 0) {
      std::vector<Item> stack = {{t.root(), false}};
      // fo2dt-lint: allow(no-checkpoint, DFS visits each tree node exactly twice)
      while (!stack.empty()) {
        Item it = stack.back();
        stack.pop_back();
        if (it.expanded) {
          post[it.node] = clock++;
          continue;
        }
        pre[it.node] = clock++;
        stack.push_back({it.node, true});
        std::vector<NodeId> kids = t.Children(it.node);
        for (size_t i = kids.size(); i-- > 0;) stack.push_back({kids[i], false});
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      NodeId prev = t.prev_sibling(v);
      sibling_index[v] = prev == kNoNode ? 0 : sibling_index[prev] + 1;
    }
  }

  bool Descendant(NodeId x, NodeId y) const {  // y proper descendant of x
    return pre[x] < pre[y] && post[y] < post[x];
  }
  bool FollowingSibling(NodeId x, NodeId y) const {  // y after x, same parent
    return tree.parent(x) == tree.parent(y) && tree.parent(x) != kNoNode &&
           sibling_index[x] < sibling_index[y];
  }

  const DataTree& tree;
  std::vector<size_t> pre;
  std::vector<size_t> post;
  std::vector<size_t> sibling_index;
};

// Note: sibling_index computation above relies on prev_sibling(v) < v in
// creation order, which DataTree guarantees (children are appended left to
// right).

class PairEvaluator {
 public:
  PairEvaluator(const DataTree& t, const PredInterpretation* preds)
      : t_(t), preds_(preds), index_(t), n_(t.size()) {}

  Result<PairTable> Eval(const Formula& f) {
    using Kind = Formula::Kind;
    const size_t nn = n_ * n_;
    switch (f.kind()) {
      case Kind::kTrue:
        return PairTable(nn, 1);
      case Kind::kFalse:
        return PairTable(nn, 0);
      case Kind::kLabel: {
        if (f.symbol() == kNoSymbol) {
          return Status::InvalidArgument("label atom with no symbol");
        }
        return FromUnary(f.var(), [&](NodeId v) {
          return t_.label(v) == f.symbol();
        });
      }
      case Kind::kPred: {
        if (preds_ == nullptr || f.pred() >= preds_->membership.size()) {
          if (preds_ == nullptr) {
            return FromUnary(f.var(), [](NodeId) { return false; });
          }
          return Status::InvalidArgument(
              StringFormat("predicate $%u has no interpretation", f.pred()));
        }
        const std::vector<char>& member = preds_->membership[f.pred()];
        return FromUnary(f.var(), [&](NodeId v) { return member[v] != 0; });
      }
      case Kind::kSameData:
        return FromBinary(f.var(), f.var2(), [&](NodeId a, NodeId b) {
          return t_.SameData(a, b);
        });
      case Kind::kEqual:
        return FromBinary(f.var(), f.var2(),
                          [](NodeId a, NodeId b) { return a == b; });
      case Kind::kEdge:
        return FromBinary(f.var(), f.var2(), [&](NodeId a, NodeId b) {
          switch (f.axis()) {
            case Axis::kNextSibling:
              return t_.HorizontalSuccessor(a, b);
            case Axis::kChild:
              return t_.VerticalSuccessor(a, b);
            case Axis::kFollowingSibling:
              return index_.FollowingSibling(a, b);
            case Axis::kDescendant:
              return index_.Descendant(a, b);
          }
          return false;
        });
      case Kind::kNot: {
        FO2DT_ASSIGN_OR_RETURN(PairTable sub, Eval(f.child(0)));
        for (char& c : sub) c = !c;
        return sub;
      }
      case Kind::kAnd:
      case Kind::kOr: {
        FO2DT_ASSIGN_OR_RETURN(PairTable acc, Eval(f.child(0)));
        const bool is_and = f.kind() == Kind::kAnd;
        for (size_t i = 1; i < f.children().size(); ++i) {
          FO2DT_ASSIGN_OR_RETURN(PairTable next, Eval(f.child(i)));
          for (size_t k = 0; k < nn; ++k) {
            acc[k] = is_and ? (acc[k] && next[k]) : (acc[k] || next[k]);
          }
        }
        return acc;
      }
      case Kind::kExists:
      case Kind::kForall: {
        FO2DT_ASSIGN_OR_RETURN(PairTable sub, Eval(f.child(0)));
        const bool is_exists = f.kind() == Kind::kExists;
        PairTable out(nn, 0);
        if (f.var() == Var::kX) {
          // Quantify over the first index; result constant in x.
          for (NodeId y = 0; y < n_; ++y) {
            bool acc = !is_exists;
            for (NodeId x = 0; x < n_; ++x) {
              bool v = sub[x * n_ + y] != 0;
              acc = is_exists ? (acc || v) : (acc && v);
            }
            for (NodeId x = 0; x < n_; ++x) out[x * n_ + y] = acc;
          }
        } else {
          for (NodeId x = 0; x < n_; ++x) {
            bool acc = !is_exists;
            for (NodeId y = 0; y < n_; ++y) {
              bool v = sub[x * n_ + y] != 0;
              acc = is_exists ? (acc || v) : (acc && v);
            }
            for (NodeId y = 0; y < n_; ++y) out[x * n_ + y] = acc;
          }
        }
        return out;
      }
    }
    return Status::Internal("unreachable formula kind in evaluator");
  }

 private:
  template <typename Fn>
  PairTable FromUnary(Var v, Fn fn) {
    PairTable out(n_ * n_, 0);
    for (NodeId x = 0; x < n_; ++x) {
      for (NodeId y = 0; y < n_; ++y) {
        NodeId node = v == Var::kX ? x : y;
        out[x * n_ + y] = fn(node) ? 1 : 0;
      }
    }
    return out;
  }

  template <typename Fn>
  PairTable FromBinary(Var a, Var b, Fn fn) {
    PairTable out(n_ * n_, 0);
    for (NodeId x = 0; x < n_; ++x) {
      for (NodeId y = 0; y < n_; ++y) {
        NodeId na = a == Var::kX ? x : y;
        NodeId nb = b == Var::kX ? x : y;
        out[x * n_ + y] = fn(na, nb) ? 1 : 0;
      }
    }
    return out;
  }

  const DataTree& t_;
  const PredInterpretation* preds_;
  TreeIndex index_;
  const size_t n_;
};

}  // namespace

Result<PairTable> Evaluator::EvaluatePairs(const Formula& f, const DataTree& t,
                                           const PredInterpretation* preds) {
  if (t.empty()) {
    return Status::InvalidArgument("evaluation requires a nonempty tree");
  }
  return PairEvaluator(t, preds).Eval(f);
}

Result<bool> Evaluator::EvaluateSentence(const Formula& f, const DataTree& t,
                                         const PredInterpretation* preds) {
  if (!f.IsSentence()) {
    return Status::InvalidArgument("EvaluateSentence requires a sentence");
  }
  FO2DT_ASSIGN_OR_RETURN(PairTable table, EvaluatePairs(f, t, preds));
  return table[0] != 0;  // constant over all pairs for sentences
}

Result<std::vector<char>> Evaluator::EvaluateUnary(
    const Formula& f, const DataTree& t, Var free_var,
    const PredInterpretation* preds) {
  uint8_t fv = f.FreeVars();
  uint8_t want = static_cast<uint8_t>(1u << static_cast<uint8_t>(free_var));
  if ((fv | want) != want) {
    return Status::InvalidArgument(
        "EvaluateUnary: formula has other free variables");
  }
  FO2DT_ASSIGN_OR_RETURN(PairTable table, EvaluatePairs(f, t, preds));
  const size_t n = t.size();
  std::vector<char> out(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    out[v] = free_var == Var::kX ? table[v * n + 0] : table[0 * n + v];
  }
  return out;
}

Result<bool> Evaluator::EvaluateEmsoBruteForce(const Emso2Formula& f,
                                               const DataTree& t,
                                               size_t max_bits) {
  const size_t n = t.size();
  const size_t bits = f.num_preds * n;
  if (bits > max_bits) {
    return Status::ResourceExhausted(
        StringFormat("EMSO brute force needs %zu bits > cap %zu", bits,
                     max_bits));
  }
  const uint64_t limit = 1ULL << bits;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    PredInterpretation interp = PredInterpretation::Empty(f.num_preds, n);
    for (size_t b = 0; b < bits; ++b) {
      if (mask & (1ULL << b)) interp.membership[b / n][b % n] = 1;
    }
    FO2DT_ASSIGN_OR_RETURN(bool ok,
                           EvaluateSentence(f.core, t, &interp));
    if (ok) return true;
  }
  return false;
}

}  // namespace fo2dt
