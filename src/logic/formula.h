/// \file formula.h
/// \brief Abstract syntax of FO²(∼,<,+1) on data trees (Section II).
///
/// The logic has exactly two variables, x and y. Atomic formulas are label
/// tests a(x), unary-predicate tests R(x) (for the existential second-order
/// predicates of EMSO², and for attribute markers), data equality x ~ y,
/// variable equality x = y, and the four structural edges:
///   E→ (next sibling), E↓ (child), E⇒ (following sibling), E⇓ (descendant).
/// FO²(∼,+1) is the fragment that avoids E⇒ and E⇓ (query with UsesOrderAxes).
///
/// Formulas are immutable trees shared by shared_ptr; all combinators are
/// cheap and the AST can be safely reused across threads.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol.h"

namespace fo2dt {

/// \brief One of the two variables of FO².
enum class Var : uint8_t { kX = 0, kY = 1 };

/// The other variable.
inline Var OtherVar(Var v) { return v == Var::kX ? Var::kY : Var::kX; }

/// "x" or "y".
const char* VarName(Var v);

/// \brief Structural binary predicates of the signature.
enum class Axis : uint8_t {
  kNextSibling,       ///< E→(x, y): y is the next sibling of x
  kChild,             ///< E↓(x, y): y is a child of x
  kFollowingSibling,  ///< E⇒(x, y): transitive closure of E→
  kDescendant,        ///< E⇓(x, y): transitive closure of E↓
};

/// \brief Id of a unary predicate (EMSO² set variable / marker).
using PredId = uint32_t;

/// \brief An FO²(∼,<,+1) formula.
class Formula {
 public:
  enum class Kind : uint8_t {
    kTrue,
    kFalse,
    kLabel,     ///< a(v)
    kPred,      ///< R(v)
    kSameData,  ///< v ~ w
    kEqual,     ///< v = w
    kEdge,      ///< axis(v, w)
    kNot,
    kAnd,
    kOr,
    kExists,  ///< ∃v ψ
    kForall,  ///< ∀v ψ
  };

  static Formula True();
  static Formula False();
  static Formula Label(Symbol a, Var v);
  static Formula Pred(PredId p, Var v);
  static Formula SameData(Var v, Var w);
  static Formula Equal(Var v, Var w);
  static Formula Edge(Axis axis, Var from, Var to);
  static Formula Not(Formula f);
  static Formula And(std::vector<Formula> parts);
  static Formula And(Formula a, Formula b) { return And(std::vector<Formula>{std::move(a), std::move(b)}); }
  static Formula Or(std::vector<Formula> parts);
  static Formula Or(Formula a, Formula b) { return Or(std::vector<Formula>{std::move(a), std::move(b)}); }
  static Formula Implies(Formula a, Formula b);
  static Formula Iff(Formula a, Formula b);
  static Formula Exists(Var v, Formula body);
  static Formula Forall(Var v, Formula body);

  Kind kind() const { return node_->kind; }
  /// The variable of a kLabel/kPred/kExists/kForall node, or the first
  /// variable of a binary atom.
  Var var() const { return node_->var; }
  /// The second variable of a binary atom (kSameData/kEqual/kEdge).
  Var var2() const { return node_->var2; }
  Symbol symbol() const { return node_->symbol; }
  PredId pred() const { return node_->pred; }
  Axis axis() const { return node_->axis; }
  const std::vector<Formula>& children() const { return node_->children; }
  const Formula& child(size_t i) const { return node_->children[i]; }

  /// Bitmask of free variables: bit 0 for x, bit 1 for y.
  uint8_t FreeVars() const;
  /// True when no variable occurs free (a sentence).
  bool IsSentence() const { return FreeVars() == 0; }
  /// True when ∼ occurs anywhere.
  bool UsesData() const;
  /// True when E⇒ or E⇓ occurs anywhere (outside FO²(∼,+1)).
  bool UsesOrderAxes() const;
  /// True when no quantifier occurs.
  bool IsQuantifierFree() const;
  /// One plus the largest PredId used; 0 when none.
  PredId NumPredsSpanned() const;
  /// One plus the largest label Symbol used; 0 when none.
  Symbol NumSymbolsSpanned() const;

  /// Negation normal form: negation only on atoms, no kNot above kNot, with
  /// ¬true/¬false folded.
  Formula ToNnf() const;

  /// Substitutes variable \p from by \p to in free positions. Only valid when
  /// the substitution does not capture (\p to must not be bound at any free
  /// occurrence of \p from); callers in this codebase only substitute inside
  /// quantifier-free formulas.
  Formula RenameFreeVar(Var from, Var to) const;

  std::string ToString(const Alphabet& alphabet) const;

  /// Structural equality (deep).
  bool EqualsFormula(const Formula& other) const;

 private:
  struct Node {
    Kind kind;
    Var var = Var::kX;
    Var var2 = Var::kY;
    Symbol symbol = kNoSymbol;
    PredId pred = 0;
    Axis axis = Axis::kNextSibling;
    std::vector<Formula> children = {};
  };
  explicit Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  static Formula Make(Node node) {
    return Formula(std::make_shared<Node>(std::move(node)));
  }

  Formula ToNnfImpl(bool negate) const;

  std::shared_ptr<const Node> node_;
};

/// \brief An EMSO²(∼,<,+1) formula: ∃R_0 … R_{m-1} core, where core is FO².
///
/// For satisfiability the prefix is irrelevant (Corollary 1); it matters for
/// model checking, where the sets must be guessed or supplied.
struct Emso2Formula {
  /// Number of existentially quantified unary predicates (ids 0..m-1).
  PredId num_preds = 0;
  Formula core = Formula::True();
};

}  // namespace fo2dt

