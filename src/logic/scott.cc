#include "logic/scott.h"

#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/trace.h"

namespace fo2dt {

Result<Formula> SwapVars(const Formula& f) {
  using Kind = Formula::Kind;
  switch (f.kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return f;
    case Kind::kLabel:
      return Formula::Label(f.symbol(), OtherVar(f.var()));
    case Kind::kPred:
      return Formula::Pred(f.pred(), OtherVar(f.var()));
    case Kind::kSameData:
      return Formula::SameData(OtherVar(f.var()), OtherVar(f.var2()));
    case Kind::kEqual:
      return Formula::Equal(OtherVar(f.var()), OtherVar(f.var2()));
    case Kind::kEdge:
      return Formula::Edge(f.axis(), OtherVar(f.var()), OtherVar(f.var2()));
    case Kind::kNot: {
      FO2DT_ASSIGN_OR_RETURN(Formula c, SwapVars(f.child(0)));
      return Formula::Not(std::move(c));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(f.children().size());
      for (const Formula& c : f.children()) {
        FO2DT_ASSIGN_OR_RETURN(Formula s, SwapVars(c));
        parts.push_back(std::move(s));
      }
      return f.kind() == Kind::kAnd ? Formula::And(std::move(parts))
                                    : Formula::Or(std::move(parts));
    }
    case Kind::kExists:
    case Kind::kForall:
      return Status::InvalidArgument("SwapVars requires a quantifier-free formula");
  }
  return Status::Internal("unreachable in SwapVars");
}

namespace {

/// Rewriting state shared across the recursion.
struct ScottBuilder {
  PredId next_pred;
  std::vector<Formula> universal_clauses;  // each quantifier-free over {x,y}
  std::vector<Formula> witness_clauses;    // each asserts ∀x∃y clause

  /// Normalizes a quantifier-free clause with free variables ⊆ {v} into one
  /// over {x}: used before wrapping into ∀x∃y form.
  Result<Formula> NormalizeToX(const Formula& f) {
    uint8_t fv = f.FreeVars();
    if (fv & (1u << static_cast<uint8_t>(Var::kY))) {
      // Uses y (and not x, by caller contract): swap.
      return SwapVars(f);
    }
    return f;
  }

  /// Replaces the innermost quantified subformulas of \p f (in NNF) by fresh
  /// predicate atoms, collecting defining clauses. Returns the rewritten,
  /// quantifier-free formula.
  Result<Formula> Rewrite(const Formula& f) {
    using Kind = Formula::Kind;
    switch (f.kind()) {
      case Kind::kTrue:
      case Kind::kFalse:
      case Kind::kLabel:
      case Kind::kPred:
      case Kind::kSameData:
      case Kind::kEqual:
      case Kind::kEdge:
        return f;
      case Kind::kNot: {
        FO2DT_ASSIGN_OR_RETURN(Formula c, Rewrite(f.child(0)));
        return Formula::Not(std::move(c));
      }
      case Kind::kAnd:
      case Kind::kOr: {
        std::vector<Formula> parts;
        parts.reserve(f.children().size());
        for (const Formula& c : f.children()) {
          FO2DT_ASSIGN_OR_RETURN(Formula r, Rewrite(c));
          parts.push_back(std::move(r));
        }
        return f.kind() == Kind::kAnd ? Formula::And(std::move(parts))
                                      : Formula::Or(std::move(parts));
      }
      case Kind::kExists:
      case Kind::kForall: {
        // First make the body quantifier-free.
        FO2DT_ASSIGN_OR_RETURN(Formula body, Rewrite(f.child(0)));
        const Var bound = f.var();
        const Var other = OtherVar(bound);
        // θ = Q bound . body, free vars ⊆ {other}. Introduce R(other) with
        // R(other) <-> θ.
        PredId r = next_pred++;
        Formula r_other = Formula::Pred(r, other);
        if (f.kind() == Kind::kExists) {
          // ¬R(other) → ¬body  for all bound:   ∀∀ (R(other) ∨ ¬body)
          universal_clauses.push_back(
              Formula::Or(r_other, Formula::Not(body)));
          // R(other) → ∃bound body:   ∀other ∃bound (¬R(other) ∨ body)
          Formula clause = Formula::Or(Formula::Not(r_other), body);
          if (bound == Var::kY) {
            // Already ∀x∃y shaped if other==x.
            FO2DT_ASSIGN_OR_RETURN(Formula c, NormalizeWitness(clause, other));
            witness_clauses.push_back(std::move(c));
          } else {
            // ∀y∃x clause: swap variables to get ∀x∃y.
            FO2DT_ASSIGN_OR_RETURN(Formula swapped, SwapVars(clause));
            witness_clauses.push_back(std::move(swapped));
          }
        } else {
          // θ = ∀bound body.
          // R(other) → body for all bound:   ∀∀ (¬R(other) ∨ body)
          universal_clauses.push_back(
              Formula::Or(Formula::Not(r_other), body));
          // ¬R(other) → ∃bound ¬body:  witness clause (R(other) ∨ ¬body)
          Formula clause = Formula::Or(r_other, Formula::Not(body));
          if (bound == Var::kY) {
            FO2DT_ASSIGN_OR_RETURN(Formula c, NormalizeWitness(clause, other));
            witness_clauses.push_back(std::move(c));
          } else {
            FO2DT_ASSIGN_OR_RETURN(Formula swapped, SwapVars(clause));
            witness_clauses.push_back(std::move(swapped));
          }
        }
        return r_other;
      }
    }
    return Status::Internal("unreachable in Scott rewrite");
  }

  /// For a witness clause whose universally quantified variable is `other`
  /// (must be x here) ensure shape over (x free, y bound).
  Result<Formula> NormalizeWitness(const Formula& clause, Var other) {
    if (other == Var::kX) return clause;
    return SwapVars(clause);
  }
};

}  // namespace

Result<ScottNormalForm> ToScottNormalForm(const Formula& sentence,
                                          PredId num_existing_preds) {
  FO2DT_TRACE_SPAN(names::kModLogicScott);
  ScopedPhaseTimer phase_timer(Phase::kScott);
  ScopedPhaseMemory phase_memory(Phase::kScott);
  if (!sentence.IsSentence()) {
    return Status::InvalidArgument("Scott normal form requires a sentence");
  }
  ScottBuilder builder;
  builder.next_pred = std::max(num_existing_preds, sentence.NumPredsSpanned());
  PredId first_fresh = builder.next_pred;
  FO2DT_ASSIGN_OR_RETURN(Formula top, builder.Rewrite(sentence.ToNnf()));
  // `top` is quantifier-free; as the original was a sentence, its free
  // variables stem from predicate atoms replacing closed subformulas. Assert
  // it universally.
  builder.universal_clauses.push_back(top);
  // Closed subformulas were replaced by R(v) for whichever variable was
  // bound; the R's truth must not depend on the node. Enforce uniformity for
  // every fresh predicate that replaced a closed formula — cheap and harmless
  // to enforce for all fresh predicates? No: for open replacements,
  // uniformity would be wrong. Track instead: a replacement R(other) for
  // θ(other) with `other` genuinely free in θ needs no uniformity; for closed
  // θ the defining clauses above quantify over `other` anyway, making R
  // automatically uniform-equivalent: R(v) ↔ θ with θ closed forces R to be
  // the same on every v. So no extra clause is needed.
  ScottNormalForm out;
  out.num_preds = builder.next_pred;
  out.first_fresh = first_fresh;
  out.universal = Formula::And(std::move(builder.universal_clauses));
  out.witnesses = std::move(builder.witness_clauses);
  return out;
}

Formula ScottToFormula(const ScottNormalForm& snf) {
  std::vector<Formula> parts;
  parts.push_back(
      Formula::Forall(Var::kX, Formula::Forall(Var::kY, snf.universal)));
  for (const Formula& w : snf.witnesses) {
    parts.push_back(Formula::Forall(Var::kX, Formula::Exists(Var::kY, w)));
  }
  return Formula::And(std::move(parts));
}

}  // namespace fo2dt
