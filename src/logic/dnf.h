/// \file dnf.h
/// \brief Data normal form (Section III-A).
///
/// A formula in data normal form is a disjunction of blocks
///   ∃R_1 … R_m  ⋀_i θ_i
/// where every θ_i is a *simple* formula of one of five kinds:
///   (a) a data-blind property (here: a tree automaton over the extended,
///       profiled alphabet),
///   (b) "each class contains at most one node with type α",
///   (c) "each class with at least one α has no β",
///   (d) "each class with at least one α also has a β",
///   (e) "each position with type α has profile p".
///
/// Types α, β are conjunctions of unary predicates and negations — here
/// represented extensionally as sets of letters of the *extended alphabet*
/// Σ × 2^preds (each node's letter is its label together with its predicate
/// bit pattern), which makes type reasoning exact set algebra.

#pragma once

#include <string>
#include <vector>

#include "automata/tree_automaton.h"
#include "datatree/data_tree.h"
#include "logic/eval.h"
#include "logic/formula.h"

namespace fo2dt {

/// \brief Letter of the extended alphabet: label id combined with a
/// predicate bitmask. Encoded as label * 2^num_preds + bits.
using ExtSymbol = uint32_t;

/// \brief The extended alphabet Σ × 2^preds.
struct ExtAlphabet {
  size_t num_labels = 0;
  PredId num_preds = 0;

  size_t size() const { return num_labels << num_preds; }
  ExtSymbol Make(Symbol label, uint32_t bits) const {
    return static_cast<ExtSymbol>((label << num_preds) | bits);
  }
  Symbol LabelOf(ExtSymbol s) const { return s >> num_preds; }
  uint32_t BitsOf(ExtSymbol s) const { return s & ((1u << num_preds) - 1); }

  /// The profiled extension has one letter per (ext letter, profile).
  size_t profiled_size() const { return size() * kNumProfiles; }
  Symbol Profiled(ExtSymbol s, uint32_t profile_code) const {
    return static_cast<Symbol>(s * kNumProfiles + profile_code);
  }
  ExtSymbol ExtOf(Symbol profiled) const { return profiled / kNumProfiles; }
  uint32_t ProfileOf(Symbol profiled) const { return profiled % kNumProfiles; }

  /// Human-readable letter name "a{R0,R2}".
  std::string Name(ExtSymbol s, const Alphabet& labels) const;
};

/// \brief A type: a set of extended letters (characteristic vector).
using TypeSet = std::vector<char>;

/// Builds a TypeSet from a quantifier-free formula with one free variable,
/// using only label and predicate atoms (boolean combinations allowed).
/// InvalidArgument if the formula mentions binary atoms or quantifiers.
Result<TypeSet> TypeFromFormula(const Formula& f, const ExtAlphabet& ext);

/// The full type (all letters).
TypeSet FullType(const ExtAlphabet& ext);
/// Set operations.
TypeSet TypeIntersect(const TypeSet& a, const TypeSet& b);
TypeSet TypeUnion(const TypeSet& a, const TypeSet& b);
TypeSet TypeComplement(const TypeSet& a);
bool TypeEmpty(const TypeSet& a);
bool TypeContains(const TypeSet& a, ExtSymbol s);

/// \brief A simple class/profile formula (kinds b–e).
struct SimpleFormula {
  enum class Kind {
    kAtMostOne,        ///< (b): each class has ≤ 1 node of type alpha
    kNoCoexist,        ///< (c): no class has both an alpha and a beta
    kImpliesPresence,  ///< (d): each class with an alpha also has a beta
    kProfile,          ///< (e): alpha-nodes only take profiles in the mask
  };
  Kind kind;
  TypeSet alpha;
  TypeSet beta;                  // kNoCoexist / kImpliesPresence
  uint8_t profile_mask = 0xff;   // kProfile: allowed profile codes (bit p)

  std::string ToString(const ExtAlphabet& ext, const Alphabet& labels) const;
};

/// \brief One disjunct of a data normal form: conjunction of data-blind
/// automata over the profiled extended alphabet plus simple formulas.
struct DnfBlock {
  /// Data-blind regular constraints; each automaton runs over the profiled
  /// extended alphabet (ExtAlphabet::profiled_size() symbols). Conjunction.
  std::vector<TreeAutomaton> regular;
  std::vector<SimpleFormula> simples;
};

/// \brief A formula in data normal form.
struct DataNormalForm {
  ExtAlphabet ext;
  /// Names of the predicates (diagnostics); size == ext.num_preds.
  std::vector<std::string> pred_names;
  /// Disjunction over blocks.
  std::vector<DnfBlock> blocks;
};

/// Builds the profiled extended-alphabet data erasure of \p t under the
/// interpretation \p interp: node labels become Profiled(ext letter, profile)
/// symbols, data values are preserved (the automaton ignores them).
Result<DataTree> BuildExtProfiledTree(const DataTree& t, const ExtAlphabet& ext,
                                      const PredInterpretation& interp);

/// Evaluates a single simple formula on \p t under \p interp.
Result<bool> EvaluateSimple(const SimpleFormula& simple, const DataTree& t,
                            const ExtAlphabet& ext,
                            const PredInterpretation& interp);

/// Evaluates one block (all automata and simples) under \p interp.
Result<bool> EvaluateBlock(const DnfBlock& block, const DataTree& t,
                           const ExtAlphabet& ext,
                           const PredInterpretation& interp);

/// Model-checks the DNF by brute force over predicate interpretations
/// (2^(preds·nodes)); test/cross-check use only.
Result<bool> EvaluateDnfBruteForce(const DataNormalForm& dnf, const DataTree& t,
                                   size_t max_bits = 24);

/// Converts a simple formula into the FO²(∼,+1) sentence it denotes
/// (predicate atoms refer to the DNF's predicate ids).
Formula SimpleToFormula(const SimpleFormula& simple, const ExtAlphabet& ext);

}  // namespace fo2dt

