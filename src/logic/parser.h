/// \file parser.h
/// \brief Concrete syntax for FO²(∼,<,+1) formulas.
///
/// Grammar (precedence low to high: <->, ->, |, &, !, quantifiers bind to
/// the end of the enclosing scope):
///
///   formula  := iff
///   iff      := impl ('<->' impl)*
///   impl     := or ('->' or)*          -- right associative
///   or       := and ('|' and)*
///   and      := unary ('&' unary)*
///   unary    := '!' unary | quant | atom
///   quant    := ('exists' | 'forall') var '.' formula
///   atom     := '(' formula ')' | 'true' | 'false'
///             | var '~' var | var '=' var | var '!=' var
///             | ident '(' var ')'            -- label test, e.g. a(x)
///             | '$' ident '(' var ')'        -- unary predicate $R(x)
///             | rel '(' var ',' var ')'      -- rel in next,child,foll,desc
///   var      := 'x' | 'y'
///
/// `x != y` is sugar for `!(x = y)`. Label names are interned into the
/// supplied alphabet; predicate names into the supplied predicate catalog.

#pragma once

#include <string>

#include "logic/formula.h"

namespace fo2dt {

/// Parses \p text; labels are interned into \p alphabet, `$name` predicates
/// into \p pred_names (appended on first use; index == PredId).
Result<Formula> ParseFormula(const std::string& text, Alphabet* alphabet,
                             Alphabet* pred_names);

/// Convenience overload without predicate support (`$` atoms are errors).
Result<Formula> ParseFormula(const std::string& text, Alphabet* alphabet);

}  // namespace fo2dt

