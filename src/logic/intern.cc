#include "logic/intern.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"

namespace fo2dt {

namespace {

// Formula records in the shared table start with a control byte that cannot
// open an interned text record (texts are printable), so formula nodes and
// canonical automaton/input texts never collide byte-wise.
constexpr uint8_t kFormulaRecordTag = 0x01;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

InternHandle InternRecord(const std::vector<uint8_t>& rec) {
  return SharedInternTable::Instance().Intern(rec.data(), rec.size());
}

InternHandle InternLeaf(Formula::Kind kind) {
  std::vector<uint8_t> rec;
  rec.push_back(kFormulaRecordTag);
  rec.push_back(static_cast<uint8_t>(kind));
  return InternRecord(rec);
}

InternHandle TrueHandle() { return InternLeaf(Formula::Kind::kTrue); }
InternHandle FalseHandle() { return InternLeaf(Formula::Kind::kFalse); }

// Flattens one ∧/∨ spine: children whose Formula kind equals \p kind
// contribute their own children (associativity); everything else interns.
void CollectJunction(const Formula& f, Formula::Kind kind,
                     std::vector<InternHandle>* kids) {
  for (const Formula& child : f.children()) {
    if (child.kind() == kind) {
      CollectJunction(child, kind, kids);
    } else {
      kids->push_back(InternFormula(child));
    }
  }
}

InternHandle InternJunction(const Formula& f, Formula::Kind kind) {
  const InternHandle neutral =
      kind == Formula::Kind::kAnd ? TrueHandle() : FalseHandle();
  const InternHandle absorbing =
      kind == Formula::Kind::kAnd ? FalseHandle() : TrueHandle();
  std::vector<InternHandle> kids;
  CollectJunction(f, kind, &kids);
  std::sort(kids.begin(), kids.end());
  kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
  kids.erase(std::remove(kids.begin(), kids.end(), neutral), kids.end());
  if (std::find(kids.begin(), kids.end(), absorbing) != kids.end()) {
    return absorbing;
  }
  if (kids.empty()) return neutral;
  if (kids.size() == 1) return kids[0];
  std::vector<uint8_t> rec;
  rec.push_back(kFormulaRecordTag);
  rec.push_back(static_cast<uint8_t>(kind));
  AppendU32(&rec, static_cast<uint32_t>(kids.size()));
  for (InternHandle kid : kids) AppendU32(&rec, kid);
  return InternRecord(rec);
}

}  // namespace

InternHandle InternFormula(const Formula& f) {
  using Kind = Formula::Kind;
  std::vector<uint8_t> rec;
  rec.push_back(kFormulaRecordTag);
  switch (f.kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return InternLeaf(f.kind());
    case Kind::kLabel:
      rec.push_back(static_cast<uint8_t>(Kind::kLabel));
      rec.push_back(static_cast<uint8_t>(f.var()));
      AppendU32(&rec, f.symbol());
      break;
    case Kind::kPred:
      rec.push_back(static_cast<uint8_t>(Kind::kPred));
      rec.push_back(static_cast<uint8_t>(f.var()));
      AppendU32(&rec, f.pred());
      break;
    case Kind::kSameData:
    case Kind::kEqual: {
      // Both atoms are symmetric; order the pair so x ~ y and y ~ x intern
      // to the same node.
      uint8_t lo = static_cast<uint8_t>(f.var());
      uint8_t hi = static_cast<uint8_t>(f.var2());
      if (lo > hi) std::swap(lo, hi);
      rec.push_back(static_cast<uint8_t>(f.kind()));
      rec.push_back(lo);
      rec.push_back(hi);
      break;
    }
    case Kind::kEdge:
      rec.push_back(static_cast<uint8_t>(Kind::kEdge));
      rec.push_back(static_cast<uint8_t>(f.axis()));
      rec.push_back(static_cast<uint8_t>(f.var()));
      rec.push_back(static_cast<uint8_t>(f.var2()));
      break;
    case Kind::kNot: {
      const Formula& body = f.child(0);
      if (body.kind() == Kind::kNot) return InternFormula(body.child(0));
      if (body.kind() == Kind::kTrue) return FalseHandle();
      if (body.kind() == Kind::kFalse) return TrueHandle();
      rec.push_back(static_cast<uint8_t>(Kind::kNot));
      AppendU32(&rec, InternFormula(body));
      break;
    }
    case Kind::kAnd:
    case Kind::kOr:
      return InternJunction(f, f.kind());
    case Kind::kExists:
    case Kind::kForall:
      rec.push_back(static_cast<uint8_t>(f.kind()));
      rec.push_back(static_cast<uint8_t>(f.var()));
      AppendU32(&rec, InternFormula(f.child(0)));
      break;
  }
  return InternRecord(rec);
}

uint64_t CanonicalFormulaHash(const Formula& f) {
  const InternHandle handle = InternFormula(f);
  const std::string rec = SharedInternTable::Instance().ToString(handle);
  return Fnv1a64(rec);
}

}  // namespace fo2dt
