#include "logic/parser.h"

#include <cctype>

#include "common/strings.h"

namespace fo2dt {

namespace {

/// Recursive-descent depth ceiling. Formula text reaches this parser from
/// the network (fo2dtd request bodies), so a hostile "((((..." or "!!!!..."
/// must produce a ParseError, not a stack overflow. The bound is far above
/// any formula the test corpus or the XPath translation emits.
constexpr size_t kMaxNestingDepth = 256;

/// Tracks live recursion frames; paired with an entry check in every
/// production that can self-recurse.
struct DepthGuard {
  explicit DepthGuard(size_t* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }
  size_t* depth_;
};

class FormulaParser {
 public:
  FormulaParser(const std::string& text, Alphabet* alphabet,
                Alphabet* pred_names)
      : text_(text), alphabet_(alphabet), pred_names_(pred_names) {}

  Result<Formula> Parse() {
    FO2DT_ASSIGN_OR_RETURN(Formula f, ParseIff());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing formula input");
    }
    return f;
  }

 private:
  /// ParseError pointing at byte offset \p at (default: the cursor),
  /// rendered as line/column.
  Status Err(const std::string& what) const { return Err(what, pos_); }
  Status Err(const std::string& what, size_t at) const {
    return Status::ParseError(what + " at " + FormatTextPosition(text_, at));
  }

  void SkipSpace() {
    // fo2dt-lint: allow(no-checkpoint, scan advances pos_ and is bounded by input length)
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Match(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    // Keyword tokens must not be glued to identifier characters.
    if (std::isalpha(static_cast<unsigned char>(token[0]))) {
      size_t end = pos_ + token.size();
      if (end < text_.size() &&
          (std::isalnum(static_cast<unsigned char>(text_[end])) ||
           text_[end] == '_')) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    // fo2dt-lint: allow(no-checkpoint, scan advances pos_ and is bounded by input length)
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Err("expected identifier", start);
    }
    return text_.substr(start, pos_ - start);
  }

  Result<Var> ParseVar() {
    // Reads through the Result instead of moving the string out: GCC 12's
    // -Wmaybe-uninitialized false-positives on the SSO buffer of a string
    // moved out of a std::variant at -O2.
    Result<std::string> name = ParseIdent();
    if (!name.ok()) return name.status();
    if (*name == "x") return Var::kX;
    if (*name == "y") return Var::kY;
    return Err("expected variable x or y, got: " + *name,
               pos_ - name->size());
  }

  Result<Formula> ParseIff() {
    FO2DT_ASSIGN_OR_RETURN(Formula left, ParseImpl());
    // fo2dt-lint: allow(no-checkpoint, each iteration consumes one operator token)
    while (Match("<->")) {
      FO2DT_ASSIGN_OR_RETURN(Formula right, ParseImpl());
      left = Formula::Iff(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Formula> ParseImpl() {
    if (depth_ >= kMaxNestingDepth) return Err("formula nested too deeply");
    DepthGuard guard(&depth_);
    FO2DT_ASSIGN_OR_RETURN(Formula left, ParseOr());
    if (Match("->")) {
      FO2DT_ASSIGN_OR_RETURN(Formula right, ParseImpl());
      return Formula::Implies(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Formula> ParseOr() {
    FO2DT_ASSIGN_OR_RETURN(Formula left, ParseAnd());
    std::vector<Formula> parts = {std::move(left)};
    // fo2dt-lint: allow(no-checkpoint, each iteration consumes one operator token)
    while (PeekChar('|')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(Formula next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Formula::Or(std::move(parts));
  }

  Result<Formula> ParseAnd() {
    FO2DT_ASSIGN_OR_RETURN(Formula left, ParseUnary());
    std::vector<Formula> parts = {std::move(left)};
    // fo2dt-lint: allow(no-checkpoint, each iteration consumes one operator token)
    while (PeekChar('&')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(Formula next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return Formula::And(std::move(parts));
  }

  Result<Formula> ParseUnary() {
    if (depth_ >= kMaxNestingDepth) return Err("formula nested too deeply");
    DepthGuard guard(&depth_);
    if (PeekChar('!')) {
      // Distinguish `!` (negation) from `!=` (handled in atoms).
      size_t save = pos_;
      ++pos_;
      if (PeekChar('=')) {
        pos_ = save;  // leave for atom parsing error path
      } else {
        FO2DT_ASSIGN_OR_RETURN(Formula inner, ParseUnary());
        return Formula::Not(std::move(inner));
      }
    }
    if (Match("exists")) {
      FO2DT_ASSIGN_OR_RETURN(Var v, ParseVar());
      if (!Match(".")) return Err("expected '.' after exists");
      FO2DT_ASSIGN_OR_RETURN(Formula body, ParseIff());
      return Formula::Exists(v, std::move(body));
    }
    if (Match("forall")) {
      FO2DT_ASSIGN_OR_RETURN(Var v, ParseVar());
      if (!Match(".")) return Err("expected '.' after forall");
      FO2DT_ASSIGN_OR_RETURN(Formula body, ParseIff());
      return Formula::Forall(v, std::move(body));
    }
    return ParseAtom();
  }

  Result<Formula> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Err("unexpected end of formula");
    }
    if (PeekChar('(')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(Formula inner, ParseIff());
      if (!Match(")")) return Err("expected ')'");
      return inner;
    }
    if (PeekChar('$')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(std::string name, ParseIdent());
      if (pred_names_ == nullptr) {
        return Err("predicate atoms ($) not allowed here",
                   pos_ - name.size() - 1);
      }
      if (!Match("(")) return Err("expected '(' after $pred");
      FO2DT_ASSIGN_OR_RETURN(Var v, ParseVar());
      if (!Match(")")) return Err("expected ')' after $pred var");
      return Formula::Pred(pred_names_->Intern(name), v);
    }
    if (Match("true")) return Formula::True();
    if (Match("false")) return Formula::False();

    // Reads through the Result for the same GCC 12 reason as ParseVar.
    Result<std::string> ident_res = ParseIdent();
    if (!ident_res.ok()) return ident_res.status();
    const std::string& ident = *ident_res;
    // Variable-led atoms: x ~ y, x = y, x != y.
    if (ident == "x" || ident == "y") {
      Var v = ident == "x" ? Var::kX : Var::kY;
      if (Match("~")) {
        FO2DT_ASSIGN_OR_RETURN(Var w, ParseVar());
        return Formula::SameData(v, w);
      }
      if (Match("!=")) {
        FO2DT_ASSIGN_OR_RETURN(Var w, ParseVar());
        return Formula::Not(Formula::Equal(v, w));
      }
      if (Match("=")) {
        FO2DT_ASSIGN_OR_RETURN(Var w, ParseVar());
        return Formula::Equal(v, w);
      }
      return Err("expected ~, = or != after variable");
    }
    // Relation or label atom: ident '(' var [',' var] ')'.
    if (!Match("(")) {
      return Err("expected '(' after identifier " + ident);
    }
    FO2DT_ASSIGN_OR_RETURN(Var v, ParseVar());
    if (Match(",")) {
      FO2DT_ASSIGN_OR_RETURN(Var w, ParseVar());
      if (!Match(")")) return Err("expected ')' after relation");
      if (ident == "next") return Formula::Edge(Axis::kNextSibling, v, w);
      if (ident == "child") return Formula::Edge(Axis::kChild, v, w);
      if (ident == "foll") return Formula::Edge(Axis::kFollowingSibling, v, w);
      if (ident == "desc") return Formula::Edge(Axis::kDescendant, v, w);
      return Err("unknown binary relation: " + ident);
    }
    if (!Match(")")) return Err("expected ')' after label atom");
    if (ident == "next" || ident == "child" || ident == "foll" ||
        ident == "desc" || ident == "true" || ident == "false" ||
        ident == "exists" || ident == "forall" || ident == "x" ||
        ident == "y") {
      return Err("reserved word used as label: " + ident);
    }
    return Formula::Label(alphabet_->Intern(ident), v);
  }

  const std::string& text_;
  Alphabet* alphabet_;
  Alphabet* pred_names_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(const std::string& text, Alphabet* alphabet,
                             Alphabet* pred_names) {
  return FormulaParser(text, alphabet, pred_names).Parse();
}

Result<Formula> ParseFormula(const std::string& text, Alphabet* alphabet) {
  return ParseFormula(text, alphabet, nullptr);
}

}  // namespace fo2dt
