#include "logic/formula.h"

#include <algorithm>

#include "common/strings.h"

namespace fo2dt {

const char* VarName(Var v) { return v == Var::kX ? "x" : "y"; }

Formula Formula::True() { return Make({Kind::kTrue}); }
Formula Formula::False() { return Make({Kind::kFalse}); }

Formula Formula::Label(Symbol a, Var v) {
  Node n{Kind::kLabel};
  n.symbol = a;
  n.var = v;
  return Make(std::move(n));
}

Formula Formula::Pred(PredId p, Var v) {
  Node n{Kind::kPred};
  n.pred = p;
  n.var = v;
  return Make(std::move(n));
}

Formula Formula::SameData(Var v, Var w) {
  Node n{Kind::kSameData};
  n.var = v;
  n.var2 = w;
  return Make(std::move(n));
}

Formula Formula::Equal(Var v, Var w) {
  Node n{Kind::kEqual};
  n.var = v;
  n.var2 = w;
  return Make(std::move(n));
}

Formula Formula::Edge(Axis axis, Var from, Var to) {
  Node n{Kind::kEdge};
  n.axis = axis;
  n.var = from;
  n.var2 = to;
  return Make(std::move(n));
}

Formula Formula::Not(Formula f) {
  Node n{Kind::kNot};
  n.children.push_back(std::move(f));
  return Make(std::move(n));
}

Formula Formula::And(std::vector<Formula> parts) {
  if (parts.empty()) return True();
  if (parts.size() == 1) return parts[0];
  Node n{Kind::kAnd};
  n.children = std::move(parts);
  return Make(std::move(n));
}

Formula Formula::Or(std::vector<Formula> parts) {
  if (parts.empty()) return False();
  if (parts.size() == 1) return parts[0];
  Node n{Kind::kOr};
  n.children = std::move(parts);
  return Make(std::move(n));
}

Formula Formula::Implies(Formula a, Formula b) {
  return Or(Not(std::move(a)), std::move(b));
}

Formula Formula::Iff(Formula a, Formula b) {
  Formula na = Not(a);
  Formula nb = Not(b);
  return And(Or(na, std::move(b)), Or(std::move(a), nb));
}

Formula Formula::Exists(Var v, Formula body) {
  Node n{Kind::kExists};
  n.var = v;
  n.children.push_back(std::move(body));
  return Make(std::move(n));
}

Formula Formula::Forall(Var v, Formula body) {
  Node n{Kind::kForall};
  n.var = v;
  n.children.push_back(std::move(body));
  return Make(std::move(n));
}

uint8_t Formula::FreeVars() const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return 0;
    case Kind::kLabel:
    case Kind::kPred:
      return static_cast<uint8_t>(1u << static_cast<uint8_t>(var()));
    case Kind::kSameData:
    case Kind::kEqual:
    case Kind::kEdge:
      return static_cast<uint8_t>((1u << static_cast<uint8_t>(var())) |
                                  (1u << static_cast<uint8_t>(var2())));
    case Kind::kNot:
      return child(0).FreeVars();
    case Kind::kAnd:
    case Kind::kOr: {
      uint8_t m = 0;
      for (const Formula& c : children()) m |= c.FreeVars();
      return m;
    }
    case Kind::kExists:
    case Kind::kForall:
      return static_cast<uint8_t>(
          child(0).FreeVars() & ~(1u << static_cast<uint8_t>(var())));
  }
  return 0;
}

bool Formula::UsesData() const {
  if (kind() == Kind::kSameData) return true;
  for (const Formula& c : children()) {
    if (c.UsesData()) return true;
  }
  return false;
}

bool Formula::UsesOrderAxes() const {
  if (kind() == Kind::kEdge &&
      (axis() == Axis::kFollowingSibling || axis() == Axis::kDescendant)) {
    return true;
  }
  for (const Formula& c : children()) {
    if (c.UsesOrderAxes()) return true;
  }
  return false;
}

bool Formula::IsQuantifierFree() const {
  if (kind() == Kind::kExists || kind() == Kind::kForall) return false;
  for (const Formula& c : children()) {
    if (!c.IsQuantifierFree()) return false;
  }
  return true;
}

PredId Formula::NumPredsSpanned() const {
  PredId m = kind() == Kind::kPred ? pred() + 1 : 0;
  for (const Formula& c : children()) m = std::max(m, c.NumPredsSpanned());
  return m;
}

Symbol Formula::NumSymbolsSpanned() const {
  Symbol m = kind() == Kind::kLabel ? symbol() + 1 : 0;
  for (const Formula& c : children()) m = std::max(m, c.NumSymbolsSpanned());
  return m;
}

Formula Formula::ToNnf() const { return ToNnfImpl(false); }

Formula Formula::ToNnfImpl(bool negate) const {
  switch (kind()) {
    case Kind::kTrue:
      return negate ? False() : *this;
    case Kind::kFalse:
      return negate ? True() : *this;
    case Kind::kLabel:
    case Kind::kPred:
    case Kind::kSameData:
    case Kind::kEqual:
    case Kind::kEdge:
      return negate ? Not(*this) : *this;
    case Kind::kNot:
      return child(0).ToNnfImpl(!negate);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(children().size());
      for (const Formula& c : children()) parts.push_back(c.ToNnfImpl(negate));
      bool is_and = (kind() == Kind::kAnd) != negate;
      return is_and ? And(std::move(parts)) : Or(std::move(parts));
    }
    case Kind::kExists:
    case Kind::kForall: {
      Formula body = child(0).ToNnfImpl(negate);
      bool is_exists = (kind() == Kind::kExists) != negate;
      return is_exists ? Exists(var(), std::move(body))
                       : Forall(var(), std::move(body));
    }
  }
  return *this;
}

Formula Formula::RenameFreeVar(Var from, Var to) const {
  if (from == to) return *this;
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kLabel:
      return var() == from ? Label(symbol(), to) : *this;
    case Kind::kPred:
      return var() == from ? Pred(pred(), to) : *this;
    case Kind::kSameData:
      return SameData(var() == from ? to : var(), var2() == from ? to : var2());
    case Kind::kEqual:
      return Equal(var() == from ? to : var(), var2() == from ? to : var2());
    case Kind::kEdge:
      return Edge(axis(), var() == from ? to : var(),
                  var2() == from ? to : var2());
    case Kind::kNot:
      return Not(child(0).RenameFreeVar(from, to));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(children().size());
      for (const Formula& c : children()) {
        parts.push_back(c.RenameFreeVar(from, to));
      }
      return kind() == Kind::kAnd ? And(std::move(parts)) : Or(std::move(parts));
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (var() == from) return *this;  // `from` is bound below: no free occ.
      Formula body = child(0).RenameFreeVar(from, to);
      return kind() == Kind::kExists ? Exists(var(), std::move(body))
                                     : Forall(var(), std::move(body));
    }
  }
  return *this;
}

namespace {
const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kNextSibling:
      return "next";
    case Axis::kChild:
      return "child";
    case Axis::kFollowingSibling:
      return "foll";
    case Axis::kDescendant:
      return "desc";
  }
  return "?";
}
}  // namespace

std::string Formula::ToString(const Alphabet& alphabet) const {
  switch (kind()) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kLabel: {
      std::string name = symbol() < alphabet.size()
                             ? alphabet.Name(symbol())
                             : StringFormat("sym%u", symbol());
      return name + "(" + VarName(var()) + ")";
    }
    case Kind::kPred:
      return StringFormat("$%u(%s)", pred(), VarName(var()));
    case Kind::kSameData:
      return StringFormat("%s ~ %s", VarName(var()), VarName(var2()));
    case Kind::kEqual:
      return StringFormat("%s = %s", VarName(var()), VarName(var2()));
    case Kind::kEdge:
      return StringFormat("%s(%s,%s)", AxisName(axis()), VarName(var()),
                          VarName(var2()));
    case Kind::kNot:
      return "!" + child(0).ToString(alphabet);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children().size());
      for (const Formula& c : children()) parts.push_back(c.ToString(alphabet));
      return "(" + JoinToString(parts, kind() == Kind::kAnd ? " & " : " | ") +
             ")";
    }
    case Kind::kExists:
      return StringFormat("exists %s. ", VarName(var())) +
             child(0).ToString(alphabet);
    case Kind::kForall:
      return StringFormat("forall %s. ", VarName(var())) +
             child(0).ToString(alphabet);
  }
  return "?";
}

bool Formula::EqualsFormula(const Formula& other) const {
  if (node_ == other.node_) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kLabel:
      return symbol() == other.symbol() && var() == other.var();
    case Kind::kPred:
      return pred() == other.pred() && var() == other.var();
    case Kind::kSameData:
    case Kind::kEqual:
      return var() == other.var() && var2() == other.var2();
    case Kind::kEdge:
      return axis() == other.axis() && var() == other.var() &&
             var2() == other.var2();
    default: {
      if (kind() == Kind::kExists || kind() == Kind::kForall) {
        if (var() != other.var()) return false;
      }
      if (children().size() != other.children().size()) return false;
      for (size_t i = 0; i < children().size(); ++i) {
        if (!child(i).EqualsFormula(other.child(i))) return false;
      }
      return true;
    }
  }
}

}  // namespace fo2dt
