#include "logic/dnf.h"

#include <map>

#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/trace.h"
#include "datatree/zones.h"

namespace fo2dt {

std::string ExtAlphabet::Name(ExtSymbol s, const Alphabet& labels) const {
  Symbol l = LabelOf(s);
  std::string out =
      l < labels.size() ? labels.Name(l) : StringFormat("sym%u", l);
  uint32_t bits = BitsOf(s);
  if (bits) {
    out += "{";
    bool first = true;
    for (PredId p = 0; p < num_preds; ++p) {
      if (bits & (1u << p)) {
        if (!first) out += ",";
        first = false;
        out += StringFormat("R%u", p);
      }
    }
    out += "}";
  }
  return out;
}

TypeSet FullType(const ExtAlphabet& ext) { return TypeSet(ext.size(), 1); }

TypeSet TypeIntersect(const TypeSet& a, const TypeSet& b) {
  TypeSet out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] && b[i];
  return out;
}

TypeSet TypeUnion(const TypeSet& a, const TypeSet& b) {
  TypeSet out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] || b[i];
  return out;
}

TypeSet TypeComplement(const TypeSet& a) {
  TypeSet out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = !a[i];
  return out;
}

namespace {

Result<TypeSet> TypeFromFormulaImpl(const Formula& f, const ExtAlphabet& ext) {
  using Kind = Formula::Kind;
  switch (f.kind()) {
    case Kind::kTrue:
      return FullType(ext);
    case Kind::kFalse:
      return TypeSet(ext.size(), 0);
    case Kind::kLabel: {
      TypeSet out(ext.size(), 0);
      for (ExtSymbol s = 0; s < ext.size(); ++s) {
        out[s] = ext.LabelOf(s) == f.symbol();
      }
      return out;
    }
    case Kind::kPred: {
      if (f.pred() >= ext.num_preds) {
        return Status::InvalidArgument(
            StringFormat("type uses predicate $%u beyond alphabet", f.pred()));
      }
      TypeSet out(ext.size(), 0);
      for (ExtSymbol s = 0; s < ext.size(); ++s) {
        out[s] = (ext.BitsOf(s) >> f.pred()) & 1u;
      }
      return out;
    }
    case Kind::kNot: {
      FO2DT_ASSIGN_OR_RETURN(TypeSet sub, TypeFromFormulaImpl(f.child(0), ext));
      return TypeComplement(sub);
    }
    case Kind::kAnd:
    case Kind::kOr: {
      FO2DT_ASSIGN_OR_RETURN(TypeSet acc, TypeFromFormulaImpl(f.child(0), ext));
      for (size_t i = 1; i < f.children().size(); ++i) {
        FO2DT_ASSIGN_OR_RETURN(TypeSet next,
                               TypeFromFormulaImpl(f.child(i), ext));
        acc = f.kind() == Kind::kAnd ? TypeIntersect(acc, next)
                                     : TypeUnion(acc, next);
      }
      return acc;
    }
    default:
      return Status::InvalidArgument(
          "type formulas may only use unary atoms and boolean connectives");
  }
}

}  // namespace

Result<TypeSet> TypeFromFormula(const Formula& f, const ExtAlphabet& ext) {
  FO2DT_TRACE_SPAN(names::kSpanLogicDnfType);
  ScopedPhaseTimer phase_timer(Phase::kDnf);
  ScopedPhaseMemory phase_memory(Phase::kDnf);
  return TypeFromFormulaImpl(f, ext);
}

bool TypeEmpty(const TypeSet& a) {
  for (char c : a) {
    if (c) return false;
  }
  return true;
}

bool TypeContains(const TypeSet& a, ExtSymbol s) {
  return s < a.size() && a[s] != 0;
}

std::string SimpleFormula::ToString(const ExtAlphabet& ext,
                                    const Alphabet& labels) const {
  auto render = [&](const TypeSet& t) {
    std::vector<std::string> names;
    for (ExtSymbol s = 0; s < t.size(); ++s) {
      if (t[s]) names.push_back(ext.Name(s, labels));
    }
    return "{" + JoinToString(names, ",") + "}";
  };
  switch (kind) {
    case Kind::kAtMostOne:
      return "at-most-one" + render(alpha);
    case Kind::kNoCoexist:
      return "no-coexist(" + render(alpha) + ", " + render(beta) + ")";
    case Kind::kImpliesPresence:
      return "implies-presence(" + render(alpha) + ", " + render(beta) + ")";
    case Kind::kProfile:
      return StringFormat("profile(%s, mask=%02x)", render(alpha).c_str(),
                          profile_mask);
  }
  return "?";
}

namespace {

/// The extended letter of node v under interp.
Result<ExtSymbol> LetterOf(const DataTree& t, NodeId v, const ExtAlphabet& ext,
                           const PredInterpretation& interp) {
  if (t.label(v) >= ext.num_labels) {
    return Status::InvalidArgument(
        StringFormat("node %u has label beyond the extended alphabet", v));
  }
  uint32_t bits = 0;
  if (interp.membership.size() < ext.num_preds) {
    return Status::InvalidArgument("interpretation has too few predicates");
  }
  for (PredId p = 0; p < ext.num_preds; ++p) {
    if (interp.membership[p][v]) bits |= 1u << p;
  }
  return ext.Make(t.label(v), bits);
}

}  // namespace

Result<DataTree> BuildExtProfiledTree(const DataTree& t, const ExtAlphabet& ext,
                                      const PredInterpretation& interp) {
  DataTree out;
  for (NodeId v = 0; v < t.size(); ++v) {
    FO2DT_ASSIGN_OR_RETURN(ExtSymbol letter, LetterOf(t, v, ext, interp));
    Symbol sym = ext.Profiled(letter, EncodeProfile(t.ProfileOf(v)));
    if (t.parent(v) == kNoNode) {
      FO2DT_RETURN_NOT_OK(out.CreateRoot(sym, t.data(v)).status());
    } else {
      FO2DT_RETURN_NOT_OK(out.AppendChild(t.parent(v), sym, t.data(v)).status());
    }
  }
  return out;
}

Result<bool> EvaluateSimple(const SimpleFormula& simple, const DataTree& t,
                            const ExtAlphabet& ext,
                            const PredInterpretation& interp) {
  std::vector<ExtSymbol> letters(t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    FO2DT_ASSIGN_OR_RETURN(letters[v], LetterOf(t, v, ext, interp));
  }
  if (simple.kind == SimpleFormula::Kind::kProfile) {
    for (NodeId v = 0; v < t.size(); ++v) {
      if (!TypeContains(simple.alpha, letters[v])) continue;
      uint32_t code = EncodeProfile(t.ProfileOf(v));
      if (!(simple.profile_mask & (1u << code))) return false;
    }
    return true;
  }
  ClassPartition classes = ComputeClasses(t);
  for (const auto& [value, members] : classes.classes) {
    (void)value;
    size_t count_alpha = 0;
    size_t count_beta = 0;
    for (NodeId v : members) {
      if (TypeContains(simple.alpha, letters[v])) ++count_alpha;
      if (simple.kind != SimpleFormula::Kind::kAtMostOne &&
          TypeContains(simple.beta, letters[v])) {
        ++count_beta;
      }
    }
    switch (simple.kind) {
      case SimpleFormula::Kind::kAtMostOne:
        if (count_alpha > 1) return false;
        break;
      case SimpleFormula::Kind::kNoCoexist:
        if (count_alpha > 0 && count_beta > 0) return false;
        break;
      case SimpleFormula::Kind::kImpliesPresence:
        if (count_alpha > 0 && count_beta == 0) return false;
        break;
      case SimpleFormula::Kind::kProfile:
        break;
    }
  }
  return true;
}

Result<bool> EvaluateBlock(const DnfBlock& block, const DataTree& t,
                           const ExtAlphabet& ext,
                           const PredInterpretation& interp) {
  FO2DT_ASSIGN_OR_RETURN(DataTree profiled,
                         BuildExtProfiledTree(t, ext, interp));
  for (const TreeAutomaton& a : block.regular) {
    if (!a.Accepts(profiled)) return false;
  }
  for (const SimpleFormula& s : block.simples) {
    FO2DT_ASSIGN_OR_RETURN(bool ok, EvaluateSimple(s, t, ext, interp));
    if (!ok) return false;
  }
  return true;
}

Result<bool> EvaluateDnfBruteForce(const DataNormalForm& dnf, const DataTree& t,
                                   size_t max_bits) {
  const size_t n = t.size();
  const size_t bits = dnf.ext.num_preds * n;
  if (bits > max_bits) {
    return Status::ResourceExhausted(
        StringFormat("DNF brute force needs %zu bits > cap %zu", bits,
                     max_bits));
  }
  const uint64_t limit = 1ULL << bits;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    PredInterpretation interp =
        PredInterpretation::Empty(dnf.ext.num_preds, n);
    for (size_t b = 0; b < bits; ++b) {
      if (mask & (1ULL << b)) interp.membership[b / n][b % n] = 1;
    }
    for (const DnfBlock& block : dnf.blocks) {
      FO2DT_ASSIGN_OR_RETURN(bool ok, EvaluateBlock(block, t, dnf.ext, interp));
      if (ok) return true;
    }
  }
  return false;
}

namespace {

/// FO² formula "the letter of v is in the type set".
Formula TypeAtom(const TypeSet& type, const ExtAlphabet& ext, Var v) {
  std::vector<Formula> options;
  for (ExtSymbol s = 0; s < type.size(); ++s) {
    if (!type[s]) continue;
    std::vector<Formula> conj;
    conj.push_back(Formula::Label(ext.LabelOf(s), v));
    for (PredId p = 0; p < ext.num_preds; ++p) {
      Formula atom = Formula::Pred(p, v);
      conj.push_back((ext.BitsOf(s) >> p) & 1u ? atom : Formula::Not(atom));
    }
    options.push_back(Formula::And(std::move(conj)));
  }
  return Formula::Or(std::move(options));
}

/// FO² formula expressing that x has profile `code`.
Formula ProfileAtom(uint32_t code) {
  NodeProfile p = DecodeProfile(code);
  auto has = [](Axis axis, bool forward) {
    // forward: edge from x to y (right neighbor/child-of-x); here we need
    // parent and left/right neighbors of x:
    //   parent_same: ∃y child(y,x) ∧ x~y
    //   left_same:   ∃y next(y,x) ∧ x~y
    //   right_same:  ∃y next(x,y) ∧ x~y
    Formula edge = forward ? Formula::Edge(axis, Var::kX, Var::kY)
                           : Formula::Edge(axis, Var::kY, Var::kX);
    return Formula::Exists(
        Var::kY, Formula::And(edge, Formula::SameData(Var::kX, Var::kY)));
  };
  std::vector<Formula> conj;
  Formula parent_same = has(Axis::kChild, false);
  Formula left_same = has(Axis::kNextSibling, false);
  Formula right_same = has(Axis::kNextSibling, true);
  conj.push_back(p.parent_same ? parent_same : Formula::Not(parent_same));
  conj.push_back(p.left_same ? left_same : Formula::Not(left_same));
  conj.push_back(p.right_same ? right_same : Formula::Not(right_same));
  return Formula::And(std::move(conj));
}

}  // namespace

Formula SimpleToFormula(const SimpleFormula& simple, const ExtAlphabet& ext) {
  Formula ax = TypeAtom(simple.alpha, ext, Var::kX);
  switch (simple.kind) {
    case SimpleFormula::Kind::kAtMostOne: {
      Formula ay = TypeAtom(simple.alpha, ext, Var::kY);
      Formula bad = Formula::And(
          {ax, ay, Formula::SameData(Var::kX, Var::kY),
           Formula::Not(Formula::Equal(Var::kX, Var::kY))});
      return Formula::Forall(
          Var::kX, Formula::Forall(Var::kY, Formula::Not(std::move(bad))));
    }
    case SimpleFormula::Kind::kNoCoexist: {
      Formula by = TypeAtom(simple.beta, ext, Var::kY);
      Formula bad =
          Formula::And({ax, by, Formula::SameData(Var::kX, Var::kY)});
      return Formula::Forall(
          Var::kX, Formula::Forall(Var::kY, Formula::Not(std::move(bad))));
    }
    case SimpleFormula::Kind::kImpliesPresence: {
      Formula by = TypeAtom(simple.beta, ext, Var::kY);
      Formula witness = Formula::Exists(
          Var::kY, Formula::And(Formula::SameData(Var::kX, Var::kY), by));
      return Formula::Forall(Var::kX,
                             Formula::Implies(std::move(ax), std::move(witness)));
    }
    case SimpleFormula::Kind::kProfile: {
      std::vector<Formula> allowed;
      for (uint32_t code = 0; code < kNumProfiles; ++code) {
        if (simple.profile_mask & (1u << code)) allowed.push_back(ProfileAtom(code));
      }
      return Formula::Forall(
          Var::kX, Formula::Implies(std::move(ax), Formula::Or(std::move(allowed))));
    }
  }
  return Formula::True();
}

}  // namespace fo2dt
