/// \file eval.h
/// \brief Model checking FO²(∼,<,+1) on concrete data trees.
///
/// The evaluator computes, bottom-up over the AST, the truth table of every
/// subformula over all pairs of nodes — the classic O(|φ|·n²) FO² algorithm.
/// It serves as the semantic ground truth for the whole library: the puzzle
/// compiler, the XPath translation and the constraint compilers are all
/// differential-tested against it.

#pragma once

#include <vector>

#include "datatree/data_tree.h"
#include "logic/formula.h"

namespace fo2dt {

/// \brief Interpretation of the unary predicates R_0..R_{m-1} over a tree:
/// membership[p][v] != 0 iff node v is in R_p.
struct PredInterpretation {
  std::vector<std::vector<char>> membership;

  /// All-empty interpretation for \p num_preds predicates over \p num_nodes.
  static PredInterpretation Empty(PredId num_preds, size_t num_nodes);
};

/// \brief Truth table of a formula over variable pairs: entry [x*n + y].
using PairTable = std::vector<char>;

/// \brief FO² model checker.
class Evaluator {
 public:
  /// Truth table of \p f over all (x, y) node pairs of \p t. When \p preds is
  /// null, every R-atom evaluates to false. InvalidArgument when \p f uses a
  /// predicate id beyond the interpretation, or a label beyond the table.
  static Result<PairTable> EvaluatePairs(const Formula& f, const DataTree& t,
                                         const PredInterpretation* preds);

  /// Truth value of a sentence on \p t. InvalidArgument for open formulas and
  /// for empty trees (the paper's structures are nonempty).
  static Result<bool> EvaluateSentence(const Formula& f, const DataTree& t,
                                       const PredInterpretation* preds = nullptr);

  /// The set of nodes v such that f(v) holds, for a formula with exactly one
  /// free variable \p free_var.
  static Result<std::vector<char>> EvaluateUnary(
      const Formula& f, const DataTree& t, Var free_var,
      const PredInterpretation* preds = nullptr);

  /// Model-checks the EMSO² sentence by exhaustive search over the 2^(m·n)
  /// predicate interpretations. Exponential — test/cross-check use only.
  /// ResourceExhausted when m·n exceeds \p max_bits.
  static Result<bool> EvaluateEmsoBruteForce(const Emso2Formula& f,
                                             const DataTree& t,
                                             size_t max_bits = 24);
};

}  // namespace fo2dt

