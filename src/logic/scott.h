/// \file scott.h
/// \brief Scott normal form for FO² sentences.
///
/// Every FO² sentence φ is equisatisfiable with
///   ∃R_1 … R_m ( ∀x∀y χ0  ∧  ⋀_i ∀x∃y χ_i )
/// where the χ's are quantifier-free and the R's are fresh unary predicates —
/// the classical first step of every FO² decision procedure (Grädel–Otto
/// [14]), and the shape from which the paper's data-normal-form conversion
/// (Lemma 2) starts. The transformation is linear: one fresh predicate per
/// quantified subformula.

#pragma once

#include <vector>

#include "logic/formula.h"

namespace fo2dt {

/// \brief A sentence in Scott normal form.
struct ScottNormalForm {
  /// Total number of unary predicates in use (original + fresh); fresh
  /// predicates occupy ids [first_fresh, num_preds).
  PredId num_preds = 0;
  PredId first_fresh = 0;
  /// Quantifier-free χ0; the sentence asserts ∀x∀y χ0. May mention both vars.
  Formula universal = Formula::True();
  /// Quantifier-free χ_i with free variables ⊆ {x, y}; each asserts ∀x∃y χ_i.
  std::vector<Formula> witnesses;
};

/// Converts an FO² \p sentence into Scott normal form. \p num_existing_preds
/// is the number of predicate ids already in use (fresh ones are appended).
/// The result is equisatisfiable with ∃(fresh R's) over any structure, and
/// every model of the result is a model of \p sentence (after forgetting the
/// fresh predicates).
Result<ScottNormalForm> ToScottNormalForm(const Formula& sentence,
                                          PredId num_existing_preds);

/// Swaps the roles of x and y in a quantifier-free formula.
Result<Formula> SwapVars(const Formula& quantifier_free);

/// Rebuilds the FO² sentence asserted by \p snf (with the fresh predicates
/// left free, i.e. as an EMSO² core):
///   ∀x∀y χ0 ∧ ⋀_i ∀x∃y χ_i.
Formula ScottToFormula(const ScottNormalForm& snf);

}  // namespace fo2dt

