/// \file solver.h
/// \brief Top-level satisfiability facade.
///
/// Theorem 1's full decision procedure is 3NEXPTIME; following DESIGN.md §2
/// the library exposes a two-sided, budgeted procedure:
///   * SAT side — exhaustive data-tree enumeration up to a size bound,
///     checked against the FO² model checker (complete for SAT whenever a
///     small model exists; the small model property guarantees one exists
///     whenever the formula is satisfiable, but its bound N is astronomical);
///   * UNSAT side — for inputs available in data normal form, the Lemma-3
///     counting abstraction over LCTAs (sound, incomplete);
///   * the verdict is kSat (with witness), kUnsat (with proof route), or
///     kUnknown (budgets exhausted).

#pragma once

#include <optional>
#include <string>

#include "common/execution_context.h"
#include "common/query_log.h"
#include "logic/dnf.h"
#include "logic/eval.h"
#include "logic/formula.h"
#include "puzzle/bounded_solver.h"
#include "puzzle/counting.h"

namespace fo2dt {

/// \brief Verdict of a satisfiability query.
enum class SatVerdict {
  kSat,
  kUnsat,
  kUnknown,
};

const char* SatVerdictToString(SatVerdict v);

/// \brief How a verdict was reached (diagnostics / benchmarks).
enum class SatMethod {
  kBoundedModelSearch,   ///< enumeration found a model / exhausted the bound
  kCountingAbstraction,  ///< Lemma-3-style counting proved emptiness
  kPuzzlePipeline,       ///< DNF -> puzzle bounded solver
  kNone,
};

/// Stable short name ("bounded_model_search", ...; query-log `method` field).
const char* SatMethodToString(SatMethod m);

/// \brief Outcome of a satisfiability query.
struct SatResult {
  SatVerdict verdict = SatVerdict::kUnknown;
  SatMethod method = SatMethod::kNone;
  /// Witness model; set iff kSat.
  std::optional<DataTree> witness;
  /// Witness predicate interpretation (for EMSO inputs).
  std::optional<PredInterpretation> witness_interp;
  /// Search effort, for benchmarks.
  uint64_t steps = 0;
  /// When the verdict is kUnknown because some budget died (deadline, step
  /// cap, node cap, ...): which one, where, and at what counter value.
  /// Unset for definite verdicts and for pre-governor unknowns.
  std::optional<StopReason> stop_reason;
  /// Per-phase profile of the solve (self wall time, effort counters, stop
  /// attribution — see common/metrics.h). Set whenever the query ran under
  /// an ExecutionContext (`SolverOptions::exec`); when a budget died,
  /// `profile->stop` mirrors `stop_reason` so the dominant phase and the
  /// stopping module can be cross-checked.
  std::optional<PhaseProfile> profile;
};

/// \brief Budgets for the solver.
struct SolverOptions {
  /// Largest model size enumerated on the SAT side.
  size_t max_model_nodes = 6;
  /// Enumeration step budget.
  uint64_t max_steps = 20000000;
  /// Number of distinct labels to enumerate (inferred from the formula when
  /// 0; a satisfiable FO² formula has a model using only mentioned labels
  /// plus one fresh "other" label).
  size_t num_labels = 0;
  /// Optional structural filter: only trees accepted by this automaton
  /// (over the base label alphabet) are considered models. This is how
  /// schemas (regular tree languages) relativize satisfiability, cf.
  /// Section IV. Not owned.
  const TreeAutomaton* structural_filter = nullptr;
  /// Run the counting abstraction on DNF inputs before searching.
  bool use_counting_abstraction = true;
  CountingOptions counting;
  BoundedSolveOptions puzzle_search;
  /// Optional execution governor. Its wall-clock deadline degrades the
  /// verdict to kUnknown (with SatResult::stop_reason saying so); its
  /// cancellation token aborts with StatusCode::kCancelled. Propagated into
  /// `counting` and `puzzle_search` unless those set their own. Not owned;
  /// must outlive the call.
  const ExecutionContext* exec = nullptr;
};

/// \brief Bounded-complete FO²(∼,<,+1) satisfiability by model enumeration.
///
/// Enumerates every data tree with at most `max_model_nodes` nodes over the
/// label alphabet (shapes × labelings × set partitions for data values) and
/// model-checks \p sentence. Sound in both directions within the bound;
/// kUnknown when the bound or budget is exhausted without a model.
/// Handles full FO²(∼,<,+1) (including the order axes of Section VI).
[[nodiscard]] Result<SatResult> CheckFo2SatisfiabilityBounded(const Formula& sentence,
                                                const SolverOptions& options = {});

/// \brief Satisfiability of a data normal form (i.e. of EMSO²(∼,+1)):
/// counting abstraction for UNSAT, puzzle bounded search for SAT.
[[nodiscard]] Result<SatResult> CheckDnfSatisfiability(const DataNormalForm& dnf,
                                         const SolverOptions& options = {});

/// Converts a solver facade result into the flight recorder's
/// facade-agnostic outcome shape (verdict/method strings, StopReason,
/// profile). Shared by every facade that reports through the frontend.
SolveOutcome SolveOutcomeFromSat(const Result<SatResult>& result);

}  // namespace fo2dt

