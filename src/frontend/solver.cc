#include "frontend/solver.h"

#include <algorithm>

#include "automata/automaton_io.h"
#include "common/flight_recorder.h"
#include "common/hash.h"
#include "common/intern.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "common/strings.h"
#include "common/trace.h"
#include "datatree/text_io.h"
#include "lcta/lcta.h"
#include "logic/intern.h"
#include "puzzle/puzzle.h"

namespace fo2dt {

const char* SatVerdictToString(SatVerdict v) {
  switch (v) {
    case SatVerdict::kSat:
      return "SAT";
    case SatVerdict::kUnsat:
      return "UNSAT";
    case SatVerdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

const char* SatMethodToString(SatMethod m) {
  switch (m) {
    case SatMethod::kBoundedModelSearch:
      return "bounded_model_search";
    case SatMethod::kCountingAbstraction:
      return "counting_abstraction";
    case SatMethod::kPuzzlePipeline:
      return "puzzle_pipeline";
    case SatMethod::kNone:
      return "";
  }
  return "";
}

SolveOutcome SolveOutcomeFromSat(const Result<SatResult>& result) {
  SolveOutcome out;
  if (!result.ok()) {
    out.verdict =
        std::string("ERROR:") + StatusCodeToString(result.status().code());
    if (const StopReason* reason = result.status().stop_reason()) {
      out.stop = *reason;
    }
    return out;
  }
  out.verdict = SatVerdictToString(result->verdict);
  out.method = SatMethodToString(result->method);
  out.steps = result->steps;
  if (result->stop_reason.has_value()) out.stop = *result->stop_reason;
  out.profile = result->profile;
  return out;
}

namespace {

constexpr const char* kFrontendModule = names::kModFrontendSolver;
constexpr const char* kEnumModule = names::kModFrontendEnumerate;

/// Graceful degradation at the facade: a budget exhaustion anywhere in the
/// pipeline (deadline, step/node/cut caps) becomes an honest kUnknown verdict
/// carrying the structured StopReason. Caller cancellation and genuine
/// errors still propagate as non-OK statuses.
Result<SatResult> DegradeToUnknown(Result<SatResult> result, SatMethod method) {
  if (result.ok()) return result;
  const Status& st = result.status();
  if (!st.IsResourceExhausted()) return result;
  SatResult out;
  out.verdict = SatVerdict::kUnknown;
  out.method = method;
  if (const StopReason* reason = st.stop_reason()) {
    out.stop_reason = *reason;
  }
  return out;
}

/// Attaches the governed solve's per-phase profile to the outgoing result.
/// Must run after every ScopedPhaseTimer of the solve has closed, so the
/// facade timers live in a narrower scope than the call to this.
Result<SatResult> AttachProfile(Result<SatResult> result,
                                const ExecutionContext* exec) {
  if (!result.ok() || exec == nullptr) return result;
  PhaseProfile profile = SnapshotPhaseProfile(*exec);
  if (result->stop_reason.has_value()) profile.stop = *result->stop_reason;
  result->profile = std::move(profile);
  return result;
}

bool SatVerdictFromString(const std::string& s, SatVerdict* out) {
  if (s == "SAT") *out = SatVerdict::kSat;
  else if (s == "UNSAT") *out = SatVerdict::kUnsat;
  else return false;  // UNKNOWN is never cached, so never reconstructed
  return true;
}

bool SatMethodFromString(const std::string& s, SatMethod* out) {
  if (s == "bounded_model_search") *out = SatMethod::kBoundedModelSearch;
  else if (s == "counting_abstraction") *out = SatMethod::kCountingAbstraction;
  else if (s == "puzzle_pipeline") *out = SatMethod::kPuzzlePipeline;
  else if (s.empty()) *out = SatMethod::kNone;
  else return false;
  return true;
}

/// Rebuilds a SatResult from a cache entry. Returns false when the entry is
/// malformed (e.g. a truncated persisted payload) — the caller then falls
/// through to a cold solve instead of failing.
bool SatResultFromCacheEntry(const SolveCacheEntry& entry, size_t alpha,
                             SatResult* out) {
  if (!SatVerdictFromString(entry.verdict, &out->verdict)) return false;
  if (!SatMethodFromString(entry.method, &out->method)) return false;
  out->steps = entry.steps;
  out->profile = entry.profile;  // the cold solve's profile
  if (!entry.payload.empty()) {
    Alphabet replay_alphabet = MakeReplayAlphabet(alpha);
    Result<DataTree> tree = ParseDataTree(entry.payload, &replay_alphabet);
    if (!tree.ok()) return false;
    out->witness = std::move(*tree);
  }
  return true;
}

/// Advances a restricted growth string (canonical set-partition encoding:
/// rgs[0] == 0 and rgs[i] <= max(rgs[0..i-1]) + 1). Returns false after the
/// last one.
bool NextRestrictedGrowthString(std::vector<size_t>* rgs) {
  const size_t n = rgs->size();
  for (size_t i = n; i-- > 1;) {
    size_t max_prefix = 0;
    for (size_t j = 0; j < i; ++j) {
      max_prefix = std::max(max_prefix, (*rgs)[j]);
    }
    if ((*rgs)[i] <= max_prefix) {
      ++(*rgs)[i];
      for (size_t j = i + 1; j < n; ++j) (*rgs)[j] = 0;
      return true;
    }
  }
  return false;
}

/// Enumerates data values as restricted-growth strings over node positions
/// combined with labelings, checking the sentence on each candidate.
class ModelEnumerator {
 public:
  ModelEnumerator(const Formula& sentence, size_t num_labels,
                  const SolverOptions& options)
      : sentence_(sentence),
        num_labels_(num_labels),
        options_(options),
        checkpoint_(options.exec, /*token=*/nullptr, kEnumModule) {}

  Result<SatResult> Run() {
    SatResult out;
    out.method = SatMethod::kBoundedModelSearch;
    for (size_t n = 1; n <= options_.max_model_nodes; ++n) {
      for (const auto& parents : EnumerateTreeShapes(n)) {
        DataTree skeleton;
        FO2DT_RETURN_NOT_OK(skeleton.CreateRoot(0, 0).status());
        for (size_t v = 1; v < n; ++v) {
          FO2DT_RETURN_NOT_OK(skeleton.AppendChild(parents[v], 0, 0).status());
        }
        FO2DT_ASSIGN_OR_RETURN(bool found, SearchShape(&skeleton, n, &out));
        if (found) {
          out.verdict = SatVerdict::kSat;
          return out;
        }
        if (budget_hit_) {
          out.verdict = SatVerdict::kUnknown;
          out.steps = steps_;
          out.stop_reason = StopReason{StopKind::kStepBudget, kEnumModule,
                                       steps_, options_.max_steps};
          return out;
        }
      }
    }
    // The bound was exhausted: no model up to max_model_nodes. The paper's
    // small-model property would turn this into UNSAT only past the Table I
    // bound, so the honest verdict here is kUnknown.
    out.verdict = SatVerdict::kUnknown;
    out.steps = steps_;
    return out;
  }

 private:
  Result<bool> SearchShape(DataTree* t, size_t n, SatResult* out) {
    // Odometer over labelings; per labeling, odometer over data partitions
    // (restricted growth strings).
    std::vector<Symbol> labels(n, 0);
    for (;;) {
      for (NodeId v = 0; v < n; ++v) t->set_label(v, labels[v]);
      labels_checked_ = false;
      std::vector<size_t> rgs(n, 0);  // rgs[0] == 0 always
      for (;;) {
        if (++steps_ > options_.max_steps) {
          budget_hit_ = true;
          return false;
        }
        FO2DT_RETURN_NOT_OK(checkpoint_.Tick());
        for (NodeId v = 0; v < n; ++v) {
          t->set_data(v, static_cast<DataValue>(rgs[v]));
        }
        if (options_.structural_filter != nullptr && !labels_checked_) {
          // The filter ignores data; check once per labeling.
          labels_ok_ = options_.structural_filter->Accepts(*t);
          labels_checked_ = true;
        }
        if (options_.structural_filter != nullptr && !labels_ok_) break;
        FO2DT_ASSIGN_OR_RETURN(bool ok,
                               Evaluator::EvaluateSentence(sentence_, *t,
                                                           nullptr));
        if (ok) {
          out->witness = *t;
          out->steps = steps_;
          return true;
        }
        if (!NextRestrictedGrowthString(&rgs)) break;
      }
      size_t i = 0;
      while (i < n) {
        if (++labels[i] < num_labels_) break;
        labels[i] = 0;
        ++i;
      }
      if (i == n) return false;
    }
  }

  const Formula& sentence_;
  size_t num_labels_;
  const SolverOptions& options_;
  ExecCheckpoint checkpoint_;
  uint64_t steps_ = 0;
  bool budget_hit_ = false;
  bool labels_checked_ = false;
  bool labels_ok_ = false;
};

}  // namespace

Result<SatResult> CheckFo2SatisfiabilityBounded(const Formula& sentence,
                                                const SolverOptions& options) {
  if (!sentence.IsSentence()) {
    return Status::InvalidArgument("satisfiability requires a sentence");
  }
  if (sentence.NumPredsSpanned() > 0) {
    return Status::InvalidArgument(
        "free unary predicates are not allowed; quantify them via EMSO "
        "(CheckDnfSatisfiability) or substitute them away");
  }
  // A satisfiable FO² sentence has a model over the mentioned labels plus one
  // extra "anonymous" label (any unmentioned label behaves identically).
  size_t num_labels = options.num_labels;
  if (num_labels == 0) {
    num_labels = static_cast<size_t>(sentence.NumSymbolsSpanned()) + 1;
  }
  if (options.structural_filter != nullptr) {
    // Models must use the schema's alphabet.
    num_labels = options.structural_filter->num_symbols();
    if (sentence.NumSymbolsSpanned() > num_labels) {
      return Status::InvalidArgument(
          "formula mentions labels outside the schema alphabet");
    }
  }
  SolveRecorder rec(names::kFacadeFrontendSat, options.exec);
  SolveCache& cache = SolveCache::Instance();
  const bool caching = cache.enabled();
  // Serialize in the canonical replay alphabet: the formula mentions dense
  // symbol ids, so an alphabet of matching size reproduces them exactly.
  const size_t alpha =
      std::max(num_labels, static_cast<size_t>(sentence.NumSymbolsSpanned()));
  std::string body;
  if (rec.active() || caching) {
    auto build_body = [&](const std::string& filter_text) {
      Alphabet replay_alphabet = MakeReplayAlphabet(alpha);
      std::string b = StringFormat(
          "labels %llu\n", static_cast<unsigned long long>(num_labels));
      b += StringFormat(
          "budget max_model_nodes %llu\n",
          static_cast<unsigned long long>(options.max_model_nodes));
      b += StringFormat("budget max_steps %llu\n",
                        static_cast<unsigned long long>(options.max_steps));
      b += StringFormat("flag use_counting_abstraction %d\n",
                        options.use_counting_abstraction ? 1 : 0);
      if (!filter_text.empty()) b += "filter\n" + filter_text;
      b += StringFormat("formula %s\n",
                        sentence.ToString(replay_alphabet).c_str());
      return b;
    };
    std::string filter_text = options.structural_filter != nullptr
                                  ? TreeAutomatonToText(*options.structural_filter)
                                  : std::string();
    if (caching) {
      // Hash-consed fast path: intern the sentence and the filter text, then
      // memoize the serialized body under the exact (handle, budget) tuple.
      // Queries that canonicalize to the same term (e.g. reordered ∧/∨
      // operands) share one body — and therefore one verdict-cache entry.
      const InternHandle formula_id = InternFormula(sentence);
      const InternHandle filter_id =
          filter_text.empty()
              ? kInvalidInternHandle
              : SharedInternTable::Instance().InternString(filter_text);
      const std::string body_key = StringFormat(
          "frontend.sat.body:%u:%u:%llu:%llu:%llu:%llu:%d", formula_id,
          filter_id, static_cast<unsigned long long>(alpha),
          static_cast<unsigned long long>(num_labels),
          static_cast<unsigned long long>(options.max_model_nodes),
          static_cast<unsigned long long>(options.max_steps),
          options.use_counting_abstraction ? 1 : 0);
      std::optional<std::string> memo = cache.LookupSub(
          body_key, names::kMetricCacheSubHits, names::kMetricCacheSubMisses);
      if (memo.has_value()) {
        body = std::move(*memo);
      } else {
        body = build_body(filter_text);
        cache.InsertSub(body_key, body, options.exec, kFrontendModule);
      }
    } else {
      body = build_body(filter_text);
    }
    if (rec.active()) {
      rec.SetInput(body);
      rec.SetReplayInput(body);
      rec.AddBudget("max_model_nodes", options.max_model_nodes);
      rec.AddBudget("max_steps", options.max_steps);
    }
  }
  std::string cache_key;
  if (caching) {
    cache_key = SolveCacheKey(names::kFacadeFrontendSat, body);
    std::optional<SolveCacheEntry> hit = cache.Lookup(
        cache_key, names::kMetricCacheSolveHits, names::kMetricCacheSolveMisses);
    if (hit.has_value()) {
      SatResult served;
      if (SatResultFromCacheEntry(*hit, alpha, &served)) {
        Result<SatResult> result = std::move(served);
        rec.Finish(SolveOutcomeFromSat(result));
        return result;
      }
    }
  }
  Result<SatResult> run = [&]() -> Result<SatResult> {
    FO2DT_TRACE_SPAN(names::kModFrontendEnumerate);
    ScopedPhaseTimer phase_timer(Phase::kBoundedSearch, options.exec);
    ScopedPhaseMemory phase_memory(Phase::kBoundedSearch, options.exec);
    ModelEnumerator enumerator(sentence, num_labels, options);
    Result<SatResult> r = enumerator.Run();
    if (r.ok()) phase_timer.AddEffort(r->steps);
    return r;
  }();
  Result<SatResult> result = AttachProfile(
      DegradeToUnknown(std::move(run), SatMethod::kBoundedModelSearch),
      options.exec);
  if (caching && result.ok()) {
    // Insert() applies the kUnknown-never-cached rule, so degraded solves
    // are retried with whatever budgets the next caller holds.
    SolveCacheEntry entry;
    entry.verdict = SatVerdictToString(result->verdict);
    entry.method = SatMethodToString(result->method);
    entry.steps = result->steps;
    entry.profile = result->profile;
    if (result->witness.has_value()) {
      Alphabet replay_alphabet = MakeReplayAlphabet(alpha);
      entry.payload = DataTreeToText(*result->witness, replay_alphabet);
    }
    cache.Insert(cache_key, entry, options.exec, kFrontendModule);
  }
  rec.Finish(SolveOutcomeFromSat(result));
  return result;
}

namespace {

/// Canonical text of a DataNormalForm. Conjunction and disjunction commute,
/// so automaton texts (already transition-sorted by TreeAutomatonToText),
/// simple-formula lines, and whole block texts are each sorted — two DNFs
/// equal up to commutation serialize identically and share one verdict-cache
/// entry. Used as the dnf_sat facade's input hash and cache body; there is
/// no replay parser for it, so the facade never captures a bundle.
std::string SerializeDnf(const DataNormalForm& dnf) {
  std::string out = StringFormat(
      "ext labels %llu preds %llu\n",
      static_cast<unsigned long long>(dnf.ext.num_labels),
      static_cast<unsigned long long>(dnf.ext.num_preds));
  for (const std::string& name : dnf.pred_names) out += "pred " + name + "\n";
  std::vector<std::string> blocks;
  blocks.reserve(dnf.blocks.size());
  for (const DnfBlock& block : dnf.blocks) {
    std::string b = "block\n";
    std::vector<std::string> lines;
    lines.reserve(block.regular.size() + block.simples.size());
    for (const TreeAutomaton& automaton : block.regular) {
      lines.push_back("automaton\n" + TreeAutomatonToText(automaton));
    }
    for (const SimpleFormula& simple : block.simples) {
      std::string line = StringFormat("simple %d %u ",
                                      static_cast<int>(simple.kind),
                                      static_cast<unsigned>(simple.profile_mask));
      for (char c : simple.alpha) line += c != 0 ? '1' : '0';
      line += ' ';
      for (char c : simple.beta) line += c != 0 ? '1' : '0';
      line += '\n';
      lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) b += line;
    blocks.push_back(std::move(b));
  }
  std::sort(blocks.begin(), blocks.end());
  for (const std::string& b : blocks) out += b;
  return out;
}

/// SAT payload for the dnf_sat facade: the witness tree (replay alphabet over
/// the DNF's base labels), a 0x1e separator, then one 0/1 membership row per
/// predicate. UNSAT entries carry no payload.
std::string DnfWitnessPayload(const SatResult& result,
                              const DataNormalForm& dnf) {
  if (!result.witness.has_value()) return "";
  Alphabet replay_alphabet = MakeReplayAlphabet(dnf.ext.num_labels);
  std::string payload = DataTreeToText(*result.witness, replay_alphabet);
  payload += '\x1e';
  if (result.witness_interp.has_value()) {
    for (const std::vector<char>& row : result.witness_interp->membership) {
      for (char c : row) payload += c != 0 ? '1' : '0';
      payload += '\n';
    }
  }
  return payload;
}

/// Inverse of DnfWitnessPayload; false on any malformation (cold fallthrough).
bool DnfResultFromCacheEntry(const SolveCacheEntry& entry,
                             const DataNormalForm& dnf, SatResult* out) {
  if (!SatVerdictFromString(entry.verdict, &out->verdict)) return false;
  if (!SatMethodFromString(entry.method, &out->method)) return false;
  out->steps = entry.steps;
  out->profile = entry.profile;  // the cold solve's profile
  if (out->verdict != SatVerdict::kSat) return entry.payload.empty();
  const size_t sep = entry.payload.find('\x1e');
  if (sep == std::string::npos) return false;
  Alphabet replay_alphabet = MakeReplayAlphabet(dnf.ext.num_labels);
  Result<DataTree> tree =
      ParseDataTree(entry.payload.substr(0, sep), &replay_alphabet);
  if (!tree.ok()) return false;
  PredInterpretation interp =
      PredInterpretation::Empty(dnf.ext.num_preds, tree->size());
  std::vector<std::string> rows;
  for (const std::string& row :
       SplitString(entry.payload.substr(sep + 1), '\n')) {
    if (!row.empty()) rows.push_back(row);
  }
  if (rows.size() != static_cast<size_t>(dnf.ext.num_preds)) return false;
  for (size_t p = 0; p < rows.size(); ++p) {
    if (rows[p].size() != tree->size()) return false;
    for (size_t v = 0; v < rows[p].size(); ++v) {
      if (rows[p][v] != '0' && rows[p][v] != '1') return false;
      interp.membership[p][v] = rows[p][v] == '1' ? 1 : 0;
    }
  }
  out->witness = std::move(*tree);
  out->witness_interp = std::move(interp);
  return true;
}

Result<SatResult> CheckDnfSatisfiabilityImpl(const DataNormalForm& dnf,
                                             const SolverOptions& options) {
  // Propagate the governor into the sub-pipelines unless the caller already
  // installed a more specific one there.
  CountingOptions counting = options.counting;
  if (counting.lcta.exec == nullptr) counting.lcta.exec = options.exec;
  if (!counting.lcta.cancel_token.CanBeCancelled() && options.exec != nullptr) {
    counting.lcta.cancel_token = options.exec->token();
  }
  BoundedSolveOptions search = options.puzzle_search;
  if (search.exec == nullptr) search.exec = options.exec;
  search.max_nodes = std::max(search.max_nodes, options.max_model_nodes);

  SatResult out;
  bool all_unsat = true;
  for (const DnfBlock& block : dnf.blocks) {
    if (options.exec != nullptr) {
      FO2DT_RETURN_NOT_OK(options.exec->Check(kFrontendModule));
    }
    FO2DT_ASSIGN_OR_RETURN(Puzzle puzzle, PuzzleFromBlock(block, dnf.ext));
    if (options.use_counting_abstraction) {
      FO2DT_ASSIGN_OR_RETURN(CountingResult counted,
                             CheckPuzzleUnsatByCounting(puzzle, counting));
      out.steps += counted.ilp_nodes;
      if (counted.verdict == CountingVerdict::kUnsat) {
        continue;  // this block is dead; try the next disjunct
      }
    }
    FO2DT_ASSIGN_OR_RETURN(BoundedSolveResult solved,
                           SolvePuzzleBounded(puzzle, search));
    out.steps += solved.steps;
    if (solved.verdict == BoundedVerdict::kSat) {
      out.verdict = SatVerdict::kSat;
      out.method = SatMethod::kPuzzlePipeline;
      out.witness = std::move(solved.witness);
      out.witness_interp = std::move(solved.interp);
      return out;
    }
    if (solved.verdict == BoundedVerdict::kBudgetExhausted &&
        !out.stop_reason.has_value()) {
      out.stop_reason = solved.stop_reason;
    }
    all_unsat = false;  // bounded search is inconclusive for UNSAT overall
  }
  if (all_unsat) {
    out.verdict = SatVerdict::kUnsat;
    out.method = SatMethod::kCountingAbstraction;
    return out;
  }
  out.verdict = SatVerdict::kUnknown;
  out.method = SatMethod::kPuzzlePipeline;
  return out;
}

}  // namespace

Result<SatResult> CheckDnfSatisfiability(const DataNormalForm& dnf,
                                         const SolverOptions& options) {
  SolveRecorder rec(names::kFacadeFrontendDnfSat, options.exec);
  SolveCache& cache = SolveCache::Instance();
  const bool caching = cache.enabled();
  std::string body;
  if (rec.active() || caching) {
    // Canonical serialization (sorted blocks/automata/simples), so the input
    // hash — and the verdict-cache key derived from it — identifies the DNF
    // up to commutation. No replay parser exists for DNF bodies, so this
    // facade still never captures a bundle.
    body = SerializeDnf(dnf);
    body += StringFormat("budget max_model_nodes %llu\n",
                         static_cast<unsigned long long>(options.max_model_nodes));
    body += StringFormat("budget max_steps %llu\n",
                         static_cast<unsigned long long>(options.max_steps));
    body += StringFormat("flag use_counting_abstraction %d\n",
                         options.use_counting_abstraction ? 1 : 0);
    if (rec.active()) {
      rec.SetInput(body);
      rec.AddBudget("max_model_nodes", options.max_model_nodes);
      rec.AddBudget("max_steps", options.max_steps);
    }
  }
  std::string cache_key;
  if (caching) {
    cache_key = SolveCacheKey(names::kFacadeFrontendDnfSat, body);
    std::optional<SolveCacheEntry> hit = cache.Lookup(
        cache_key, names::kMetricCacheSolveHits, names::kMetricCacheSolveMisses);
    if (hit.has_value()) {
      SatResult served;
      if (DnfResultFromCacheEntry(*hit, dnf, &served)) {
        Result<SatResult> result = std::move(served);
        rec.Finish(SolveOutcomeFromSat(result));
        return result;
      }
    }
  }
  Result<SatResult> run = [&] {
    FO2DT_TRACE_SPAN(names::kModFrontendSolver);
    // Facade glue only: each sub-pipeline (puzzle construction, counting,
    // LCTA, ILP, bounded search) runs its own timer, so kFrontend self time
    // is the per-block orchestration cost.
    ScopedPhaseTimer phase_timer(Phase::kFrontend, options.exec);
    ScopedPhaseMemory phase_memory(Phase::kFrontend, options.exec);
    return CheckDnfSatisfiabilityImpl(dnf, options);
  }();
  Result<SatResult> result = AttachProfile(
      DegradeToUnknown(std::move(run), SatMethod::kPuzzlePipeline),
      options.exec);
  if (caching && result.ok()) {
    // Insert() applies the kUnknown-never-cached rule, so degraded solves
    // are retried with whatever budgets the next caller holds.
    SolveCacheEntry entry;
    entry.verdict = SatVerdictToString(result->verdict);
    entry.method = SatMethodToString(result->method);
    entry.steps = result->steps;
    entry.profile = result->profile;
    entry.payload = DnfWitnessPayload(*result, dnf);
    cache.Insert(cache_key, entry, options.exec, kFrontendModule);
  }
  rec.Finish(SolveOutcomeFromSat(result));
  return result;
}

}  // namespace fo2dt
