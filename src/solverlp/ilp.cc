#include "solverlp/ilp.h"

#include <algorithm>
#include <optional>

namespace fo2dt {

BigInt IlpSolver::SmallSolutionBound(const LinearSystem& system,
                                     VarId num_vars) {
  // Papadimitriou ("On the complexity of integer programming", JACM 1981):
  // a feasible system Ax = b over N with m rows, n columns, and entries of
  // magnitude at most a has a solution with entries at most
  // n * (m * a + max|b| + 1)^(2m+1) -- inequalities reduce to equalities by
  // adding m slack columns, which the n in front absorbs below.
  BigInt a_max(1);
  BigInt b_max(0);
  for (const auto& atom : system) {
    for (const auto& [v, c] : atom.expr.terms()) {
      (void)v;
      a_max = std::max(a_max, c.Abs());
    }
    b_max = std::max(b_max, atom.expr.constant().Abs());
  }
  BigInt m(static_cast<int64_t>(system.size()));
  BigInt n(static_cast<int64_t>(num_vars) + static_cast<int64_t>(system.size()));
  BigInt base = m * a_max + b_max + BigInt(1);
  BigInt result = n.IsZero() ? BigInt(1) : n;
  int64_t exp = 2 * static_cast<int64_t>(system.size()) + 1;
  for (int64_t i = 0; i < exp; ++i) result *= base;
  return result;
}

namespace {

enum class PreprocessVerdict { kOk, kInfeasible };

/// GCD normalization (exact for equalities, Chvátal-Gomory tightening for
/// inequalities): divides every atom by the gcd of its coefficients; an
/// equality whose constant is not divisible is integer-infeasible outright.
PreprocessVerdict Preprocess(const LinearSystem& in, LinearSystem* out) {
  for (const LinearAtom& atom : in) {
    if (atom.expr.terms().empty()) {
      const BigInt& c = atom.expr.constant();
      bool holds = atom.rel == LinearRel::kGe ? c >= BigInt(0) : c.IsZero();
      if (!holds) return PreprocessVerdict::kInfeasible;
      continue;  // trivially true; drop
    }
    BigInt g(0);
    for (const auto& [v, coeff] : atom.expr.terms()) {
      (void)v;
      g = BigInt::Gcd(g, coeff);
    }
    const BigInt& c = atom.expr.constant();
    LinearExpr e;
    for (const auto& [v, coeff] : atom.expr.terms()) e.AddTerm(v, coeff / g);
    if (atom.rel == LinearRel::kEq) {
      if (!(c % g).IsZero()) return PreprocessVerdict::kInfeasible;
      e.AddConstant(c / g);
      out->push_back(LinearAtom::Eq(std::move(e)));
    } else {
      // sum a x + c >= 0  <=>  sum (a/g) x >= ceil(-c/g); rewritten back the
      // tightened constant is floor(c/g).
      e.AddConstant(c.FloorDiv(g));
      out->push_back(LinearAtom::Ge(std::move(e)));
    }
  }
  return PreprocessVerdict::kOk;
}

struct VarBounds {
  BigInt lo;                 // >= 0 always
  std::optional<BigInt> hi;  // nullopt == unbounded above
};

struct SearchState {
  const LinearSystem* base = nullptr;
  VarId num_vars = 0;
  size_t nodes = 0;
  size_t max_nodes = 0;
};

/// Builds the LP system for the current bounds and solves its relaxation.
Result<LpSolution> SolveRelaxation(const SearchState& st,
                                   const std::vector<VarBounds>& bounds) {
  LinearSystem sys = *st.base;
  for (VarId v = 0; v < st.num_vars; ++v) {
    if (bounds[v].lo.IsPositive()) {
      LinearExpr e = LinearExpr::Variable(v);
      e.AddConstant(-bounds[v].lo);
      sys.push_back(LinearAtom::Ge(std::move(e)));  // x >= lo
    }
    if (bounds[v].hi.has_value()) {
      LinearExpr e(*bounds[v].hi);
      e.AddTerm(v, BigInt(-1));
      sys.push_back(LinearAtom::Ge(std::move(e)));  // x <= hi
    }
  }
  return SimplexSolver::FindFeasible(sys, st.num_vars);
}

Result<std::optional<IntAssignment>> Branch(std::vector<VarBounds> bounds,
                                            SearchState* st) {
  if (++st->nodes > st->max_nodes) {
    return Status::ResourceExhausted("ILP branch-and-bound node budget exceeded");
  }
  for (VarId v = 0; v < st->num_vars; ++v) {
    if (bounds[v].hi.has_value() && bounds[v].lo > *bounds[v].hi) {
      return std::optional<IntAssignment>();
    }
  }
  FO2DT_ASSIGN_OR_RETURN(LpSolution lp, SolveRelaxation(*st, bounds));
  if (lp.status == LpStatus::kInfeasible) {
    return std::optional<IntAssignment>();
  }
  // Pick the most fractional coordinate.
  VarId frac_var = st->num_vars;
  Rational best_dist(0);
  for (VarId v = 0; v < st->num_vars; ++v) {
    const Rational& x = lp.assignment[v];
    if (x.IsInteger()) continue;
    Rational frac = x - Rational(x.Floor());
    Rational dist = std::min(frac, Rational(1) - frac,
                             [](const Rational& a, const Rational& b) {
                               return a < b;
                             });
    if (frac_var == st->num_vars || dist > best_dist) {
      frac_var = v;
      best_dist = dist;
    }
  }
  if (frac_var == st->num_vars) {
    IntAssignment out(st->num_vars);
    for (VarId v = 0; v < st->num_vars; ++v) {
      out[v] = lp.assignment[v].Floor();
    }
    return std::optional<IntAssignment>(std::move(out));
  }
  BigInt floor = lp.assignment[frac_var].Floor();
  // Down branch: x <= floor.
  {
    std::vector<VarBounds> down = bounds;
    BigInt new_hi = floor;
    if (!down[frac_var].hi.has_value() || new_hi < *down[frac_var].hi) {
      down[frac_var].hi = new_hi;
    }
    FO2DT_ASSIGN_OR_RETURN(std::optional<IntAssignment> hit,
                           Branch(std::move(down), st));
    if (hit.has_value()) return hit;
  }
  // Up branch: x >= floor + 1.
  bounds[frac_var].lo = std::max(bounds[frac_var].lo, floor + BigInt(1));
  return Branch(std::move(bounds), st);
}

}  // namespace

Result<IlpSolution> IlpSolver::FindIntegerPoint(const LinearSystem& system,
                                                VarId num_vars,
                                                const IlpOptions& options) {
  IlpSolution out;
  LinearSystem base;
  if (Preprocess(system, &base) == PreprocessVerdict::kInfeasible) {
    out.feasible = false;
    out.nodes_explored = 0;
    return out;
  }
  // Phase 1: unbounded search with a slim budget. Flow-style systems almost
  // always resolve here; the branch bounds stay small so the exact simplex
  // works with narrow numbers.
  if (options.two_phase && options.add_small_solution_bound) {
    SearchState st;
    st.base = &base;
    st.num_vars = num_vars;
    st.max_nodes = std::max<size_t>(
        1, options.max_nodes / std::max<size_t>(1, options.unbounded_fraction));
    auto attempt = Branch(std::vector<VarBounds>(num_vars), &st);
    if (attempt.ok()) {
      out.nodes_explored = st.nodes;
      out.feasible = attempt->has_value();
      if (attempt->has_value()) out.assignment = std::move(**attempt);
      return out;
    }
    if (!attempt.status().IsResourceExhausted()) return attempt.status();
    out.nodes_explored += st.nodes;  // fall through to the bounded phase
  }
  std::vector<VarBounds> bounds(num_vars);
  if (options.add_small_solution_bound && num_vars > 0) {
    BigInt bound = SmallSolutionBound(base, num_vars);
    for (VarId v = 0; v < num_vars; ++v) bounds[v].hi = bound;
  }
  SearchState st;
  st.base = &base;
  st.num_vars = num_vars;
  st.max_nodes = options.max_nodes;
  FO2DT_ASSIGN_OR_RETURN(std::optional<IntAssignment> hit,
                         Branch(std::move(bounds), &st));
  out.nodes_explored += st.nodes;
  out.feasible = hit.has_value();
  if (hit.has_value()) out.assignment = std::move(*hit);
  return out;
}

Result<IlpSolution> IlpSolver::Solve(const LinearConstraint& constraint,
                                     VarId num_vars,
                                     const IlpOptions& options) {
  FO2DT_ASSIGN_OR_RETURN(std::vector<LinearSystem> dnf,
                         constraint.ToDnf(options.max_dnf_branches));
  IlpSolution out;
  for (const auto& branch : dnf) {
    FO2DT_ASSIGN_OR_RETURN(IlpSolution sol,
                           FindIntegerPoint(branch, num_vars, options));
    out.nodes_explored += sol.nodes_explored;
    if (sol.feasible) {
      out.feasible = true;
      out.assignment = std::move(sol.assignment);
      return out;
    }
  }
  out.feasible = false;
  return out;
}

}  // namespace fo2dt
