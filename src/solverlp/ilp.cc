#include "solverlp/ilp.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/thread_stats.h"
#include "common/trace.h"

namespace fo2dt {

BigInt IlpSolver::SmallSolutionBound(const LinearSystem& system,
                                     VarId num_vars) {
  // Papadimitriou ("On the complexity of integer programming", JACM 1981):
  // a feasible system Ax = b over N with m rows, n columns, and entries of
  // magnitude at most a has a solution with entries at most
  // n * (m * a + max|b| + 1)^(2m+1) -- inequalities reduce to equalities by
  // adding m slack columns, which the n in front absorbs below.
  BigInt a_max(1);
  BigInt b_max(0);
  for (const auto& atom : system) {
    for (const auto& [v, c] : atom.expr.terms()) {
      (void)v;
      a_max = std::max(a_max, c.Abs());
    }
    b_max = std::max(b_max, atom.expr.constant().Abs());
  }
  BigInt m(static_cast<int64_t>(system.size()));
  BigInt n(static_cast<int64_t>(num_vars) + static_cast<int64_t>(system.size()));
  BigInt base = m * a_max + b_max + BigInt(1);
  BigInt result = n.IsZero() ? BigInt(1) : n;
  int64_t exp = 2 * static_cast<int64_t>(system.size()) + 1;
  for (int64_t i = 0; i < exp; ++i) result *= base;
  return result;
}

namespace {

enum class PreprocessVerdict { kOk, kInfeasible };

/// GCD normalization (exact for equalities, Chvátal-Gomory tightening for
/// inequalities): divides every atom by the gcd of its coefficients; an
/// equality whose constant is not divisible is integer-infeasible outright.
PreprocessVerdict Preprocess(const LinearSystem& in, LinearSystem* out) {
  for (const LinearAtom& atom : in) {
    if (atom.expr.terms().empty()) {
      const BigInt& c = atom.expr.constant();
      bool holds = atom.rel == LinearRel::kGe ? c >= BigInt(0) : c.IsZero();
      if (!holds) return PreprocessVerdict::kInfeasible;
      continue;  // trivially true; drop
    }
    BigInt g(0);
    for (const auto& [v, coeff] : atom.expr.terms()) {
      (void)v;
      g = BigInt::Gcd(g, coeff);
    }
    const BigInt& c = atom.expr.constant();
    LinearExpr e;
    for (const auto& [v, coeff] : atom.expr.terms()) e.AddTerm(v, coeff / g);
    if (atom.rel == LinearRel::kEq) {
      if (!(c % g).IsZero()) return PreprocessVerdict::kInfeasible;
      e.AddConstant(c / g);
      out->push_back(LinearAtom::Eq(std::move(e)));
    } else {
      // sum a x + c >= 0  <=>  sum (a/g) x >= ceil(-c/g); rewritten back the
      // tightened constant is floor(c/g).
      e.AddConstant(c.FloorDiv(g));
      out->push_back(LinearAtom::Ge(std::move(e)));
    }
  }
  return PreprocessVerdict::kOk;
}

constexpr const char* kIlpModule = names::kModSolverlpIlp;

// Amortization period for deadline reads between branch-and-bound nodes; a
// node costs at least one dual-simplex repair, so 16 keeps the overshoot
// tiny without a clock read per node.
constexpr uint32_t kNodeCheckPeriod = 16;

struct SearchState {
  VarId num_vars = 0;
  size_t nodes = 0;
  size_t max_nodes = 0;
  size_t depth = 0;      // current B&B recursion depth
  size_t max_depth = 0;  // deepest node seen (the PhaseProfile gauge)
  // Cancellation (caller token chained with first-SAT-wins abandonment: the
  // branch token is cancelled once a sibling DNF branch with a smaller index
  // has terminated) plus the optional execution governor (deadline).
  CancellationToken token;
  const ExecutionContext* exec = nullptr;
  ExecCheckpoint deadline_check{nullptr, nullptr, kIlpModule};

  void ArmGovernor() {
    deadline_check =
        ExecCheckpoint(exec, /*token=*/nullptr, kIlpModule, kNodeCheckPeriod);
  }

  /// Per-node stop check: the branch token every node, the deadline
  /// amortized. Returns Cancelled / ResourceExhausted with a StopReason.
  Status CheckStop() {
    if (token.IsCancelled()) {
      if (exec != nullptr && exec->token().IsCancelled()) {
        return Status::Cancelled("ILP search cancelled by caller",
                                 ExecutionContext::CancelReason(kIlpModule));
      }
      return Status::Cancelled(
          "ILP search abandoned: a sibling DNF branch already terminated",
          ExecutionContext::CancelReason(kIlpModule));
    }
    return deadline_check.Tick();
  }
};

/// Tracks B&B recursion depth across Branch's early returns.
struct DepthGuard {
  explicit DepthGuard(SearchState* st) : st_(st) {
    if (++st_->depth > st_->max_depth) st_->max_depth = st_->depth;
  }
  ~DepthGuard() { --st_->depth; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;
  SearchState* st_;
};

/// One branch-and-bound node. The tableau arrives already repaired for this
/// node's bounds; branching copies it once for the down child and mutates it
/// in place for the up child (one dual-simplex warm start each, never a
/// from-scratch rebuild).
Result<std::optional<IntAssignment>> Branch(IncrementalSimplex tab,
                                            SearchState* st) {
  DepthGuard depth_guard(st);
  // Failpoint: per-node observation/cancellation hook (tests use it to
  // request cancellation from inside a running search).
  FO2DT_FAILPOINT(names::kFpIlpBranch, nullptr);
  if (++st->nodes > st->max_nodes) {
    return Status::ResourceExhausted(
        StringFormat("ILP branch-and-bound node budget exceeded in %s: "
                     "%zu of %zu nodes",
                     kIlpModule, st->nodes, st->max_nodes),
        StopReason{StopKind::kNodeBudget, kIlpModule, st->nodes,
                   st->max_nodes});
  }
  FO2DT_RETURN_NOT_OK(st->CheckStop());
  if (!tab.feasible()) {
    return std::optional<IntAssignment>();
  }
  std::vector<Rational> x = tab.Assignment();
  // Pick the most fractional coordinate.
  VarId frac_var = st->num_vars;
  Rational best_dist(0);
  for (VarId v = 0; v < st->num_vars; ++v) {
    if (x[v].IsInteger()) continue;
    Rational frac = x[v] - Rational(x[v].Floor());
    Rational dist = std::min(frac, Rational(1) - frac,
                             [](const Rational& a, const Rational& b) {
                               return a < b;
                             });
    if (frac_var == st->num_vars || dist > best_dist) {
      frac_var = v;
      best_dist = dist;
    }
  }
  if (frac_var == st->num_vars) {
    IntAssignment out(st->num_vars);
    for (VarId v = 0; v < st->num_vars; ++v) out[v] = x[v].Floor();
    return std::optional<IntAssignment>(std::move(out));
  }
  const BigInt floor = x[frac_var].Floor();
  // Down branch: x <= floor (strictly tighter, since floor < x <= old hi).
  {
    IncrementalSimplex down = tab;
    FO2DT_RETURN_NOT_OK(down.SetUpperBound(frac_var, floor));
    FO2DT_ASSIGN_OR_RETURN(std::optional<IntAssignment> hit,
                           Branch(std::move(down), st));
    if (hit.has_value()) return hit;
  }
  // Up branch: x >= floor + 1 (strictly tighter, since old lo <= floor).
  FO2DT_RETURN_NOT_OK(tab.SetLowerBound(frac_var, floor + BigInt(1)));
  return Branch(std::move(tab), st);
}

/// Builds the root tableau (one phase-1 solve for the whole search) and runs
/// branch-and-bound.
Result<std::optional<IntAssignment>> RunSearch(
    const LinearSystem& base, const std::optional<BigInt>& upper_bound,
    SearchState* st) {
  st->ArmGovernor();
  FO2DT_ASSIGN_OR_RETURN(
      IncrementalSimplex root,
      IncrementalSimplex::Create(base, st->num_vars, st->exec));
  root.SetGovernor(st->exec, st->token);
  if (upper_bound.has_value()) {
    for (VarId v = 0; v < st->num_vars && root.feasible(); ++v) {
      FO2DT_RETURN_NOT_OK(root.SetUpperBound(v, *upper_bound));
    }
  }
  return Branch(std::move(root), st);
}

/// Accumulates per-search node totals into \p nodes_used and the governor's
/// effort counters on every path (verdicts, errors, cancellation).
void FlushNodes(const SearchState& st, const IlpOptions& options,
                size_t* nodes_used) {
  *nodes_used += st.nodes;
  if (options.exec != nullptr) {
    options.exec->counters().ilp_nodes.fetch_add(st.nodes,
                                                 std::memory_order_relaxed);
    options.exec->phases().RecordDepth(st.max_depth);
  }
  PhaseCounters& local = PhaseStats::Local();
  if (st.max_depth > local.ilp_max_depth) local.ilp_max_depth = st.max_depth;
}

/// True when a non-OK search status may fall through from the slim unbounded
/// phase to the guaranteed-terminating bounded phase: only genuine node-
/// budget exhaustion qualifies; deadline/cancellation stops must propagate.
bool MayFallThrough(const Status& status) {
  if (!status.IsResourceExhausted()) return false;
  const StopReason* reason = status.stop_reason();
  return reason == nullptr || reason->kind == StopKind::kNodeBudget;
}

/// FindIntegerPoint with the fan-out plumbing exposed. \p nodes_used is
/// accumulated on every path, including errors and cancellation, so callers
/// can aggregate exact node totals. \p token is the branch's cancellation
/// token (caller token, possibly chained with first-SAT-wins abandonment).
Result<IlpSolution> FindIntegerPointImpl(const LinearSystem& system,
                                         VarId num_vars,
                                         const IlpOptions& options,
                                         const CancellationToken& token,
                                         size_t* nodes_used) {
  FO2DT_TRACE_SPAN(names::kModSolverlpIlp);
  // One timer per DNF-branch solve; covers the nested simplex work too
  // (simplex and B&B are one attribution phase). Effort = B&B nodes.
  ScopedPhaseTimer phase_timer(Phase::kIlp, options.exec);
  ScopedPhaseMemory phase_memory(Phase::kIlp, options.exec);
  IlpSolution out;
  LinearSystem base;
  if (Preprocess(system, &base) == PreprocessVerdict::kInfeasible) {
    out.feasible = false;
    return out;
  }
  // Phase 1: unbounded search with a slim budget. Flow-style systems almost
  // always resolve here; the branch bounds stay small so the exact simplex
  // works with narrow numbers.
  if (options.two_phase && options.add_small_solution_bound) {
    SearchState st;
    st.num_vars = num_vars;
    st.max_nodes = std::max<size_t>(
        1, options.max_nodes / std::max<size_t>(1, options.unbounded_fraction));
    st.token = token;
    st.exec = options.exec;
    auto attempt = RunSearch(base, std::nullopt, &st);
    FlushNodes(st, options, nodes_used);
    phase_timer.AddEffort(st.nodes);
    if (attempt.ok()) {
      out.nodes_explored = st.nodes;
      out.feasible = attempt->has_value();
      if (attempt->has_value()) out.assignment = std::move(**attempt);
      return out;
    }
    if (!MayFallThrough(attempt.status())) return attempt.status();
    out.nodes_explored += st.nodes;  // fall through to the bounded phase
  }
  std::optional<BigInt> bound;
  if (options.add_small_solution_bound && num_vars > 0) {
    bound = IlpSolver::SmallSolutionBound(base, num_vars);
  }
  SearchState st;
  st.num_vars = num_vars;
  st.max_nodes = options.max_nodes;
  st.token = token;
  st.exec = options.exec;
  auto hit = RunSearch(base, bound, &st);
  FlushNodes(st, options, nodes_used);
  phase_timer.AddEffort(st.nodes);
  if (!hit.ok()) return hit.status();
  out.nodes_explored += st.nodes;
  out.feasible = hit->has_value();
  if (hit->has_value()) out.assignment = std::move(**hit);
  return out;
}

/// The overall stop state of a solve: the caller's token, then the governor
/// (which also covers its own token and the deadline).
Status OverallStop(const IlpOptions& options) {
  if (options.cancel_token.IsCancelled()) {
    return Status::Cancelled("ILP DNF solve cancelled by caller",
                             ExecutionContext::CancelReason(kIlpModule));
  }
  if (options.exec != nullptr) return options.exec->Check(kIlpModule);
  return Status::OK();
}

}  // namespace

Result<IlpSolution> IlpSolver::FindIntegerPoint(const LinearSystem& system,
                                                VarId num_vars,
                                                const IlpOptions& options) {
  size_t nodes = 0;
  return FindIntegerPointImpl(system, num_vars, options, options.cancel_token,
                              &nodes);
}

Result<DnfSolveResult> IlpSolver::SolveDnf(
    const std::vector<LinearSystem>& branches, VarId num_vars,
    const IlpOptions& options) {
  DnfSolveResult out;
  out.outcomes.assign(branches.size(), BranchOutcome::kSkipped);
  if (branches.empty()) {
    out.solution.feasible = false;
    return out;
  }
  size_t num_threads =
      options.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  num_threads = std::min(num_threads, branches.size());

  if (num_threads <= 1) {
    for (size_t i = 0; i < branches.size(); ++i) {
      FO2DT_RETURN_NOT_OK(OverallStop(options));
      size_t nodes = 0;
      Result<IlpSolution> sol = FindIntegerPointImpl(
          branches[i], num_vars, options, options.cancel_token, &nodes);
      out.solution.nodes_explored += nodes;
      if (!sol.ok()) return sol.status();
      if (sol->feasible) {
        out.outcomes[i] = BranchOutcome::kFeasible;
        out.solution.feasible = true;
        out.solution.assignment = std::move(sol.value().assignment);
        return out;
      }
      out.outcomes[i] = BranchOutcome::kInfeasible;
    }
    out.solution.feasible = false;
    return out;
  }

  // Parallel fan-out with deterministic first-SAT-wins selection, driven by
  // FirstWinsFanout: its terminal index is the smallest branch index known
  // to be terminal (feasible or error); branches above it are abandoned
  // (their tokens get cancelled), branches below it always complete, so the
  // ascending scan after the join is independent of scheduling.
  struct Slot {
    enum Kind { kPending, kInfeasible, kFeasible, kAbandoned, kError };
    Kind kind = kPending;
    Status error;
    IntAssignment assignment;
    size_t nodes = 0;
  };
  std::vector<Slot> slots(branches.size());
  // atomic: work-stealing ticket; relaxed fetch_add hands each branch index
  // to exactly one worker, slot writes are ordered by the thread join.
  std::atomic<size_t> next{0};
  FirstWinsFanout fanout(branches.size(), options.cancel_token);
  auto worker = [&]() {
    // Workers write thread-local solver counters; declare so that
    // ThreadStats aggregation can assert quiescence (the join below orders
    // this destructor before any post-solve Aggregate()).
    ScopedStatsWorker stats_worker;
    for (;;) {
      if (!OverallStop(options).ok()) return;
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= branches.size()) return;
      Slot& slot = slots[i];
      if (fanout.Abandoned(i)) {
        slot.kind = Slot::kAbandoned;
        continue;
      }
      Result<IlpSolution> sol = FindIntegerPointImpl(
          branches[i], num_vars, options, fanout.TokenFor(i), &slot.nodes);
      // Failpoint: inject a worker fault after the branch solve (tests
      // prove a failing fan-out task surfaces as a clean error, joined and
      // leak-free, never a hang or a wrong verdict).
      if (Failpoints::CompiledIn() && sol.ok()) {
        Status injected;
        FO2DT_FAILPOINT(names::kFpIlpWorkerFault, &injected);
        if (!injected.ok()) sol = injected;
      }
      if (!sol.ok()) {
        if (sol.status().IsCancelled()) {
          slot.kind = Slot::kAbandoned;
          continue;
        }
        slot.error = sol.status();
        slot.kind = Slot::kError;
        fanout.MarkTerminal(i);
        continue;
      }
      if (sol->feasible) {
        slot.assignment = std::move(sol.value().assignment);
        slot.kind = Slot::kFeasible;
        fanout.MarkTerminal(i);
      } else {
        slot.kind = Slot::kInfeasible;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(num_threads - 1);
  for (size_t t = 1; t < num_threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();

  // All workers are joined: safe to aggregate stats and scan slots.
  FO2DT_RETURN_NOT_OK(OverallStop(options));

  // Exact node aggregation: summed single-threaded after the join.
  for (const Slot& slot : slots) out.solution.nodes_explored += slot.nodes;

  for (size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    switch (slot.kind) {
      case Slot::kError:
        return slot.error;
      case Slot::kFeasible:
        out.outcomes[i] = BranchOutcome::kFeasible;
        out.solution.feasible = true;
        out.solution.assignment = std::move(slot.assignment);
        return out;
      case Slot::kInfeasible:
        out.outcomes[i] = BranchOutcome::kInfeasible;
        break;
      case Slot::kPending:
      case Slot::kAbandoned:
        // Every branch below the smallest terminal index completes; reaching
        // an unsolved slot here means that invariant broke.
        return Status::Internal("unsolved DNF branch below the terminal index");
    }
  }
  out.solution.feasible = false;
  return out;
}

Result<IlpSolution> IlpSolver::Solve(const LinearConstraint& constraint,
                                     VarId num_vars,
                                     const IlpOptions& options) {
  FO2DT_ASSIGN_OR_RETURN(std::vector<LinearSystem> dnf,
                         constraint.ToDnf(options.max_dnf_branches));
  FO2DT_ASSIGN_OR_RETURN(DnfSolveResult result,
                         SolveDnf(dnf, num_vars, options));
  return std::move(result.solution);
}

}  // namespace fo2dt
