/// \file linear.h
/// \brief Linear expressions and constraints over integer variables.
///
/// Section III-C of the paper defines a *linear constraint* as a boolean
/// combination of linear inequalities sum(k_x * x) >= 0 over variables X,
/// interpreted over valuations X -> N. This module provides that AST plus
/// conversion to disjunctive normal form (a disjunction of conjunctive
/// inequality systems), which is what the simplex/ILP backends consume.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arith/bigint.h"
#include "arith/rational.h"
#include "common/status.h"

namespace fo2dt {

/// \brief Dense id of a solver variable.
using VarId = uint32_t;

/// \brief Integer assignment to variables; index == VarId.
using IntAssignment = std::vector<BigInt>;

/// \brief A linear expression sum(coeff_i * var_i) + constant over BigInt.
///
/// Terms live in a flat vector sorted by variable id; zero coefficients are
/// erased eagerly so that iteration visits only live terms. The dominant
/// construction pattern (flow equations appending terms in ascending VarId
/// order) hits the O(1) append fast path of AddTerm; DNF branch copies and
/// tableau loads are contiguous memcpy-like traversals instead of
/// node-by-node map walks.
class LinearExpr {
 public:
  using Term = std::pair<VarId, BigInt>;
  using Terms = std::vector<Term>;

  LinearExpr() = default;
  /// The constant expression \p c.
  explicit LinearExpr(BigInt c) : constant_(std::move(c)) {}

  /// The expression consisting of the single term 1 * \p v.
  static LinearExpr Variable(VarId v);

  /// Adds \p coeff * \p v to this expression.
  void AddTerm(VarId v, const BigInt& coeff);
  /// Adds \p c to the constant.
  void AddConstant(const BigInt& c) { constant_ += c; }

  const BigInt& constant() const { return constant_; }
  /// Live terms sorted by variable id, no zero coefficients.
  const Terms& terms() const { return terms_; }

  /// Coefficient of \p v (zero when absent).
  BigInt CoefficientOf(VarId v) const;

  /// Largest variable id mentioned plus one; 0 when constant.
  VarId NumVarsSpanned() const;

  LinearExpr operator+(const LinearExpr& o) const;
  LinearExpr operator-(const LinearExpr& o) const;
  LinearExpr operator*(const BigInt& k) const;
  LinearExpr operator-() const { return *this * BigInt(-1); }

  /// Value under \p assignment. Variables beyond the assignment are an error.
  Result<BigInt> Evaluate(const IntAssignment& assignment) const;
  /// Value under a rational assignment.
  Result<Rational> EvaluateRational(const std::vector<Rational>& assignment) const;

  /// Rendering such as "2*x3 - x1 + 5" using v<N> names or \p names.
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  Terms terms_;  // sorted by VarId, invariant: no zero coefficients
  BigInt constant_;
};

/// \brief Relation of a linear atom.
enum class LinearRel {
  kGe,  ///< expr >= 0
  kEq,  ///< expr == 0
};

/// \brief An atomic linear constraint: expr >= 0 or expr == 0.
struct LinearAtom {
  LinearExpr expr;
  LinearRel rel = LinearRel::kGe;

  static LinearAtom Ge(LinearExpr e) { return {std::move(e), LinearRel::kGe}; }
  static LinearAtom Eq(LinearExpr e) { return {std::move(e), LinearRel::kEq}; }

  /// Truth value under an integer assignment.
  Result<bool> Evaluate(const IntAssignment& assignment) const;
  std::string ToString(const std::vector<std::string>* names = nullptr) const;
};

/// \brief A conjunction of atoms (one branch of a DNF).
using LinearSystem = std::vector<LinearAtom>;

/// \brief Boolean combination of linear inequalities (the paper's "linear
/// constraint").
///
/// Immutable tree shared via shared_ptr; built with the static factories.
class LinearConstraint {
 public:
  enum class Kind { kAtom, kAnd, kOr, kNot, kTrue, kFalse };

  static LinearConstraint True();
  static LinearConstraint False();
  static LinearConstraint Atom(LinearAtom atom);
  /// Convenience: expr >= 0.
  static LinearConstraint Ge(LinearExpr e) { return Atom(LinearAtom::Ge(std::move(e))); }
  /// Convenience: expr == 0.
  static LinearConstraint Eq(LinearExpr e) { return Atom(LinearAtom::Eq(std::move(e))); }
  static LinearConstraint And(std::vector<LinearConstraint> parts);
  static LinearConstraint And(LinearConstraint a, LinearConstraint b) {
    return And(std::vector<LinearConstraint>{std::move(a), std::move(b)});
  }
  static LinearConstraint Or(std::vector<LinearConstraint> parts);
  static LinearConstraint Or(LinearConstraint a, LinearConstraint b) {
    return Or(std::vector<LinearConstraint>{std::move(a), std::move(b)});
  }
  static LinearConstraint Not(LinearConstraint part);

  Kind kind() const { return node_->kind; }
  const LinearAtom& atom() const { return node_->atom; }
  const std::vector<LinearConstraint>& children() const { return node_->children; }

  /// Truth value under an integer assignment.
  Result<bool> Evaluate(const IntAssignment& assignment) const;

  /// Expands to disjunctive normal form over integer semantics.
  ///
  /// Negations are eliminated exactly: not(e >= 0) becomes -e - 1 >= 0 and
  /// not(e == 0) becomes (e - 1 >= 0) or (-e - 1 >= 0). The result can be
  /// exponentially larger; \p max_branches caps the expansion
  /// (ResourceExhausted beyond it).
  Result<std::vector<LinearSystem>> ToDnf(size_t max_branches = 100000) const;

  /// Largest variable id mentioned plus one.
  VarId NumVarsSpanned() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  struct Node {
    Kind kind;
    LinearAtom atom;                        // kAtom
    std::vector<LinearConstraint> children; // kAnd/kOr/kNot
  };
  explicit LinearConstraint(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace fo2dt

