/// \file simplex.h
/// \brief Exact-rational two-phase simplex for linear programs over Q>=0.
///
/// Solves min c.x subject to a LinearSystem (atoms expr >= 0 / expr == 0)
/// with the implicit domain x >= 0 for every variable. All arithmetic is
/// exact (Rational over BigInt) and pivoting uses Bland's rule, so the solver
/// terminates on every input and never suffers numeric drift — a requirement
/// for the decision procedures built on top (Theorem 2 emptiness checks must
/// be exact, not approximate).

#ifndef FO2DT_SOLVERLP_SIMPLEX_H_
#define FO2DT_SOLVERLP_SIMPLEX_H_

#include <vector>

#include "arith/rational.h"
#include "solverlp/linear.h"

namespace fo2dt {

/// \brief Verdict of an LP solve.
enum class LpStatus {
  kOptimal,     ///< feasible; `assignment` holds an optimal vertex
  kInfeasible,  ///< the constraint system has no rational solution with x >= 0
  kUnbounded,   ///< feasible but the objective decreases without bound
};

/// \brief Outcome of an LP solve.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Optimal vertex (size == num_vars); meaningful iff status == kOptimal.
  std::vector<Rational> assignment;
  /// Objective value at the vertex; meaningful iff status == kOptimal.
  Rational objective;
};

/// \brief Exact LP solver.
class SimplexSolver {
 public:
  /// Minimizes \p objective over { x in Q^num_vars : x >= 0, system holds }.
  ///
  /// \p num_vars must cover every variable mentioned by the system and the
  /// objective. Returns InvalidArgument otherwise.
  static Result<LpSolution> Minimize(const LinearExpr& objective,
                                     const LinearSystem& system,
                                     VarId num_vars);

  /// Feasibility-only entry point (objective 0).
  static Result<LpSolution> FindFeasible(const LinearSystem& system,
                                         VarId num_vars);
};

}  // namespace fo2dt

#endif  // FO2DT_SOLVERLP_SIMPLEX_H_
