/// \file simplex.h
/// \brief Exact-rational simplex for linear programs over Q>=0, with an
/// incremental warm-started variant for branch-and-bound.
///
/// Solves min c.x subject to a LinearSystem (atoms expr >= 0 / expr == 0)
/// with the implicit domain x >= 0 for every variable. All arithmetic is
/// exact (Rational over BigInt) and pivoting uses Bland's rule, so the solver
/// terminates on every input and never suffers numeric drift — a requirement
/// for the decision procedures built on top (Theorem 2 emptiness checks must
/// be exact, not approximate).
///
/// Two entry points:
///  * SimplexSolver — one-shot two-phase primal solve (phase 1 drives
///    artificials out, phase 2 minimizes the objective with maintained
///    row-zero pricing).
///  * IncrementalSimplex — a feasibility tableau that persists across a
///    branch-and-bound search path. Phase 1 runs once; integer bound changes
///    (x_v >= lo, x_v <= hi) are applied in place and repaired with a dual
///    simplex warm start instead of re-running the primal from scratch.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arith/rational.h"
#include "common/execution_context.h"
#include "common/thread_stats.h"
#include "solverlp/linear.h"

namespace fo2dt {

/// \brief Verdict of an LP solve.
enum class LpStatus {
  kOptimal,     ///< feasible; `assignment` holds an optimal vertex
  kInfeasible,  ///< the constraint system has no rational solution with x >= 0
  kUnbounded,   ///< feasible but the objective decreases without bound
};

/// \brief Outcome of an LP solve.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Optimal vertex (size == num_vars); meaningful iff status == kOptimal.
  std::vector<Rational> assignment;
  /// Objective value at the vertex; meaningful iff status == kOptimal.
  Rational objective;
};

/// \brief Counters for the solver performance benchmarks (thread-local,
/// aggregated via SimplexStats::Aggregate()).
struct SimplexCounters {
  /// Total simplex pivots (primal and dual).
  uint64_t pivots = 0;
  /// From-scratch phase-1 tableau constructions.
  uint64_t tableau_builds = 0;
  /// Incremental bound updates attempted on a warm tableau.
  uint64_t warm_starts = 0;
  /// Bound updates resolved by dual-simplex repair (no rebuild needed).
  uint64_t warm_start_hits = 0;

  void AddTo(SimplexCounters* out) const {
    out->pivots += pivots;
    out->tableau_builds += tableau_builds;
    out->warm_starts += warm_starts;
    out->warm_start_hits += warm_start_hits;
  }
  void Clear() { *this = SimplexCounters(); }

  double WarmStartHitRate() const {
    return warm_starts == 0
               ? 1.0
               : static_cast<double>(warm_start_hits) /
                     static_cast<double>(warm_starts);
  }
};

using SimplexStats = ThreadStats<SimplexCounters>;

/// \brief A feasibility tableau that survives across bound changes.
///
/// Built once per conjunctive system (one exact phase-1 solve); afterwards
/// integer variable bounds can only be *tightened*. Each tightening updates
/// the tableau in place — the first bound on a variable appends one row and
/// one surplus column, later tightenings only shift the right-hand side —
/// and restores primal feasibility with dual-simplex pivots (Bland's rule on
/// both the leaving and the entering index, so repair always terminates).
/// When the dual repair exceeds its pivot cap, the tableau is rebuilt from
/// scratch as a safety net (counted as a warm-start miss).
///
/// Copies are deep and independent: branch-and-bound copies the tableau for
/// the down-branch and keeps mutating the original for the up-branch.
///
/// Contract: once feasible() is false the tableau is dead — no further bound
/// changes may be applied (branch-and-bound prunes such nodes immediately).
class IncrementalSimplex {
 public:
  /// Runs phase 1 on \p base (implicit x >= 0). The result may be infeasible;
  /// check feasible(). Statuses are reserved for contract violations and
  /// governor stops (deadline/cancellation during phase 1). A non-null
  /// \p exec governs phase 1 and is inherited by the tableau (SetGovernor
  /// can additionally install a per-branch token).
  static Result<IncrementalSimplex> Create(
      const LinearSystem& base, VarId num_vars,
      const ExecutionContext* exec = nullptr);

  /// Deep copy for branch-and-bound. Reserves two rows of tableau headroom so
  /// the child's first bound-row insertions extend within capacity instead of
  /// reallocating (and moving) the tableau that was just copied; the pivot
  /// scratch buffer is transient and starts empty in the copy.
  IncrementalSimplex(const IncrementalSimplex& o);
  IncrementalSimplex& operator=(const IncrementalSimplex& o);
  IncrementalSimplex(IncrementalSimplex&&) = default;
  IncrementalSimplex& operator=(IncrementalSimplex&&) = default;

  bool feasible() const { return feasible_; }
  VarId num_vars() const { return num_vars_; }

  /// Installs the execution governor: pivot loops poll \p token and the
  /// \p exec deadline (amortized). Copies of the tableau inherit the
  /// governor, so a branch-and-bound search arms it once. Either may be
  /// null/inert; \p exec must outlive the tableau and its copies.
  void SetGovernor(const ExecutionContext* exec, CancellationToken token) {
    exec_ = exec;
    token_ = std::move(token);
  }

  /// Tightens x_v >= lo (lo must not decrease) and repairs feasibility.
  Status SetLowerBound(VarId v, const BigInt& lo);
  /// Tightens x_v <= hi (hi must not increase) and repairs feasibility.
  Status SetUpperBound(VarId v, const BigInt& hi);

  /// Current vertex for the structural variables; meaningful iff feasible().
  std::vector<Rational> Assignment() const;

 private:
  friend class SimplexSolver;

  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  enum class DualStatus { kFeasible, kInfeasible, kCapExceeded, kStopped };

  struct BoundRow {
    bool set = false;
    size_t col = 0;  // the bound row's surplus/slack column
    BigInt value;    // current bound constant
  };

  IncrementalSimplex() = default;

  static Result<IncrementalSimplex> CreateInternal(
      const LinearSystem& base, VarId num_vars, const ExecutionContext* exec,
      CancellationToken token);

  // SoA tableau accessors: row i occupies tab_[i*stride_ .. i*stride_+num_cols_).
  Rational* Row(size_t i) { return tab_.data() + i * stride_; }
  const Rational* Row(size_t i) const { return tab_.data() + i * stride_; }
  /// Appends a zeroed column, reusing slack stride capacity when available;
  /// restrides the tableau otherwise. Returns the new column index.
  size_t AddColumn();
  /// Re-lays the tableau with \p new_stride cells per row.
  void Restride(size_t new_stride);
  /// Removes row \p i by shifting the trailing rows up one stride.
  void EraseRow(size_t i);

  void Pivot(size_t row, size_t col);
  /// Primal simplex on the maintained reduced-cost row (Bland). Returns
  /// false when unbounded; the error state is a governor stop (deadline or
  /// cancellation) with a structured StopReason.
  Result<bool> RunPrimal();
  /// Dual-simplex feasibility repair; never exceeds \p max_pivots. On
  /// kStopped the governor's status is written to \p stop.
  DualStatus RunDualRepair(size_t max_pivots, Status* stop);
  /// Installs \p objective as the maintained reduced-cost row.
  void InitObjective(const LinearExpr& objective);
  void InsertBoundRow(VarId v, const BigInt& value, bool is_upper);
  void TightenBoundRow(VarId v, const BigInt& value, bool is_upper);
  Status ApplyBound(VarId v, const BigInt& value, bool is_upper);
  /// From-scratch safety net used when dual repair exceeds its cap.
  Status Rebuild();
  void RebuildColToRow();
  size_t DualPivotCap() const;

  // Dense exact tableau in structure-of-arrays layout: one contiguous
  // Rational array, row i at tab_[i*stride_], logical width num_cols_ <=
  // stride_. Rows are constraints sum_j T[i][j] x_j == rhs[i] with basis[i]
  // basic in row i (unit column). The pivot inner loop walks contiguous
  // memory, and branch-and-bound tableau copies are single flat vector
  // copies instead of a row-by-row allocation storm. Cells in
  // [num_cols_, stride_) are zero scratch (future bound columns), re-zeroed
  // defensively by AddColumn before becoming visible. Phase-1 artificial
  // variables exist as basis ids only — their columns are never stored
  // (dropped at birth per Chvatal's rule), so the tableau is m x (n+s)
  // rather than m x (n+s+m).
  size_t num_cols_ = 0;
  size_t stride_ = 0;
  size_t num_rows_ = 0;
  std::vector<Rational> tab_;
  std::vector<Rational> rhs_;
  std::vector<size_t> basis_;
  std::vector<size_t> col_to_row_;  // col -> basic row, or kNoRow
  std::vector<Rational> cost_;      // maintained reduced-cost row
  std::vector<uint32_t> nz_scratch_;

  VarId num_vars_ = 0;
  bool feasible_ = false;
  std::shared_ptr<const LinearSystem> base_;  // for the rebuild safety net
  std::vector<BoundRow> lower_;
  std::vector<BoundRow> upper_;

  // Execution governor (optional): polled by the pivot loops. Copied with
  // the tableau so every branch-and-bound node stays governed.
  const ExecutionContext* exec_ = nullptr;
  CancellationToken token_;
};

/// \brief Exact one-shot LP solver.
class SimplexSolver {
 public:
  /// Minimizes \p objective over { x in Q^num_vars : x >= 0, system holds }.
  ///
  /// \p num_vars must cover every variable mentioned by the system and the
  /// objective. Returns InvalidArgument otherwise. A non-null \p exec
  /// governs the pivot loops (deadline + cancellation).
  static Result<LpSolution> Minimize(const LinearExpr& objective,
                                     const LinearSystem& system,
                                     VarId num_vars,
                                     const ExecutionContext* exec = nullptr);

  /// Feasibility-only entry point (objective 0).
  static Result<LpSolution> FindFeasible(const LinearSystem& system,
                                         VarId num_vars,
                                         const ExecutionContext* exec = nullptr);
};

}  // namespace fo2dt

