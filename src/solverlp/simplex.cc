#include "solverlp/simplex.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/trace.h"

namespace fo2dt {

namespace {

// Federates the simplex counter family into the unified MetricsRegistry
// (common/metrics.h); keys mirror the bench counter names.
const MetricsSourceRegistrar kSimplexMetricsSource(
    "simplex",
    [](MetricsSnapshot* snap) {
      SimplexCounters c = SimplexStats::Aggregate();
      snap->Set(names::kMetricSimplexPivots, static_cast<double>(c.pivots));
      snap->Set(names::kMetricSimplexTableauBuilds,
                static_cast<double>(c.tableau_builds));
      snap->Set(names::kMetricSimplexWarmStarts, static_cast<double>(c.warm_starts));
      snap->Set(names::kMetricSimplexWarmStartHits,
                static_cast<double>(c.warm_start_hits));
      snap->Set(names::kMetricSimplexWarmStartHitRate, c.WarmStartHitRate());
    },
    [] { SimplexStats::Reset(); });

// Safety-net pivot budget for the from-scratch Rebuild path. Bland's rule
// guarantees termination, so this is only insurance against a bug turning
// into a hang.
constexpr size_t kRebuildPivotCap = 10'000'000;

// Amortization period for governor (deadline/cancellation) checks inside
// the pivot loops; exact-rational pivots are slow enough that 256 bounds
// the deadline overshoot to well under a millisecond.
constexpr uint32_t kPivotCheckPeriod = 256;

// Flushes a pivot-loop's local count into the shared ExecCounters exactly
// once per loop invocation (atomics per pivot would contend across the
// fan-out workers).
struct PivotTally {
  const ExecutionContext* exec;
  uint64_t count = 0;
  ~PivotTally() {
    if (exec != nullptr && count != 0) {
      exec->counters().simplex_pivots.fetch_add(count,
                                                std::memory_order_relaxed);
    }
  }
};

}  // namespace

IncrementalSimplex::IncrementalSimplex(const IncrementalSimplex& o)
    : num_cols_(o.num_cols_),
      stride_(o.stride_),
      num_rows_(o.num_rows_),
      rhs_(o.rhs_),
      basis_(o.basis_),
      col_to_row_(o.col_to_row_),
      cost_(o.cost_),
      num_vars_(o.num_vars_),
      feasible_(o.feasible_),
      base_(o.base_),
      lower_(o.lower_),
      upper_(o.upper_),
      exec_(o.exec_),
      token_(o.token_) {
  tab_.reserve((num_rows_ + 2) * stride_);
  tab_.insert(tab_.end(), o.tab_.begin(), o.tab_.end());
}

IncrementalSimplex& IncrementalSimplex::operator=(const IncrementalSimplex& o) {
  if (this != &o) *this = IncrementalSimplex(o);
  return *this;
}

size_t IncrementalSimplex::AddColumn() {
  // Growth keeps the slack bounded (~12.5%): branch-and-bound copies the
  // whole tableau per node, so dead stride cells are copied on every branch
  // and cheap restrides beat fat rows.
  if (num_cols_ == stride_) Restride(stride_ + stride_ / 8 + 8);
  const size_t col = num_cols_++;
  // Defensive re-zero before the column becomes logically visible (scratch
  // cells are zero by construction, but no pivot invariant depends on it).
  for (size_t i = 0; i < num_rows_; ++i) Row(i)[col] = Rational(0);
  cost_.emplace_back(0);
  col_to_row_.push_back(kNoRow);
  return col;
}

void IncrementalSimplex::Restride(size_t new_stride) {
  std::vector<Rational> fresh;
  fresh.reserve((num_rows_ + 2) * new_stride);  // bound-row insertion headroom
  fresh.resize(num_rows_ * new_stride);
  for (size_t i = 0; i < num_rows_; ++i) {
    std::move(tab_.begin() + static_cast<ptrdiff_t>(i * stride_),
              tab_.begin() + static_cast<ptrdiff_t>(i * stride_ + num_cols_),
              fresh.begin() + static_cast<ptrdiff_t>(i * new_stride));
  }
  tab_ = std::move(fresh);
  stride_ = new_stride;
}

void IncrementalSimplex::EraseRow(size_t i) {
  std::move(tab_.begin() + static_cast<ptrdiff_t>((i + 1) * stride_),
            tab_.begin() + static_cast<ptrdiff_t>(num_rows_ * stride_),
            tab_.begin() + static_cast<ptrdiff_t>(i * stride_));
  --num_rows_;
  tab_.resize(num_rows_ * stride_);
  rhs_.erase(rhs_.begin() + static_cast<ptrdiff_t>(i));
  basis_.erase(basis_.begin() + static_cast<ptrdiff_t>(i));
}

void IncrementalSimplex::Pivot(size_t row, size_t col) {
  ++SimplexStats::Local().pivots;
  Rational* prow = Row(row);
  const Rational p = prow[col];
  if (!p.IsOne()) {
    for (size_t j = 0; j < num_cols_; ++j) {
      if (!prow[j].IsZero()) prow[j] /= p;
    }
    rhs_[row] /= p;
  }
  // Collect the pivot row's nonzero columns once; every elimination below
  // touches only these instead of sweeping all num_cols_ cells.
  nz_scratch_.clear();
  for (size_t j = 0; j < num_cols_; ++j) {
    if (j != col && !prow[j].IsZero()) {
      nz_scratch_.push_back(static_cast<uint32_t>(j));
    }
  }
  for (size_t i = 0; i < num_rows_; ++i) {
    if (i == row) continue;
    Rational* target = Row(i);
    if (target[col].IsZero()) continue;
    const Rational f = target[col];
    target[col] = Rational(0);  // the eliminated column needs no subtraction
    for (uint32_t j : nz_scratch_) target[j] -= f * prow[j];
    rhs_[i] -= f * rhs_[row];
  }
  if (!cost_.empty() && !cost_[col].IsZero()) {
    const Rational f = cost_[col];
    cost_[col] = Rational(0);
    for (uint32_t j : nz_scratch_) cost_[j] -= f * prow[j];
  }
  col_to_row_[basis_[row]] = kNoRow;
  col_to_row_[col] = row;
  basis_[row] = col;
}

Result<bool> IncrementalSimplex::RunPrimal() {
  ExecCheckpoint checkpoint(exec_, &token_, names::kModSolverlpSimplex,
                            kPivotCheckPeriod);
  PivotTally tally{exec_};
  for (;;) {
    FO2DT_RETURN_NOT_OK(checkpoint.Tick());
    // Bland: first column with negative maintained reduced cost.
    size_t entering = num_cols_;
    for (size_t j = 0; j < num_cols_; ++j) {
      if (cost_[j].IsNegative()) {
        entering = j;
        break;
      }
    }
    if (entering == num_cols_) return true;

    // Ratio test with Bland tie-break (smallest basis column index).
    size_t leaving = num_rows_;
    Rational best_ratio;
    for (size_t i = 0; i < num_rows_; ++i) {
      const Rational& a = Row(i)[entering];
      if (!a.IsPositive()) continue;
      Rational ratio = rhs_[i] / a;
      if (leaving == num_rows_ || ratio < best_ratio ||
          (ratio == best_ratio && basis_[i] < basis_[leaving])) {
        leaving = i;
        best_ratio = std::move(ratio);
      }
    }
    if (leaving == num_rows_) return false;
    ++tally.count;
    Pivot(leaving, entering);
  }
}

IncrementalSimplex::DualStatus IncrementalSimplex::RunDualRepair(
    size_t max_pivots, Status* stop) {
  ExecCheckpoint checkpoint(exec_, &token_, names::kModSolverlpSimplex,
                            kPivotCheckPeriod);
  PivotTally tally{exec_};
  size_t used = 0;
  for (;;) {
    if (Status st = checkpoint.Tick(); !st.ok()) {
      if (stop != nullptr) *stop = std::move(st);
      return DualStatus::kStopped;
    }
    // Leaving row: negative rhs with the smallest basic column index (Bland).
    size_t r = kNoRow;
    for (size_t i = 0; i < num_rows_; ++i) {
      if (rhs_[i].IsNegative() && (r == kNoRow || basis_[i] < basis_[r])) {
        r = i;
      }
    }
    if (r == kNoRow) return DualStatus::kFeasible;

    // Entering column: smallest index with a negative coefficient. With the
    // feasibility objective all reduced costs are zero, so every such column
    // ties the dual ratio test and Bland's smallest-index choice applies.
    const Rational* row = Row(r);
    size_t c = num_cols_;
    for (size_t j = 0; j < num_cols_; ++j) {
      if (row[j].IsNegative()) {
        c = j;
        break;
      }
    }
    if (c == num_cols_) {
      // basic = rhs - sum(a_j x_j) with all a_j >= 0 and rhs < 0: no x >= 0
      // can make the basic variable non-negative.
      return DualStatus::kInfeasible;
    }
    if (++used > max_pivots) return DualStatus::kCapExceeded;
    ++tally.count;
    Pivot(r, c);
  }
}

void IncrementalSimplex::InitObjective(const LinearExpr& objective) {
  // Original costs per column, then reduce against the current basis:
  // d_j = c_j - sum_i c_{basis[i]} * T[i][j].
  std::vector<Rational> orig(num_cols_, Rational(0));
  for (const auto& [v, c] : objective.terms()) orig[v] = Rational(c);
  cost_ = orig;
  for (size_t i = 0; i < num_rows_; ++i) {
    const Rational& cb = orig[basis_[i]];
    if (cb.IsZero()) continue;
    const Rational* row = Row(i);
    for (size_t j = 0; j < num_cols_; ++j) {
      if (!row[j].IsZero()) cost_[j] -= cb * row[j];
    }
  }
}

void IncrementalSimplex::RebuildColToRow() {
  col_to_row_.assign(num_cols_, kNoRow);
  for (size_t i = 0; i < num_rows_; ++i) col_to_row_[basis_[i]] = i;
}

Result<IncrementalSimplex> IncrementalSimplex::Create(
    const LinearSystem& base, VarId num_vars, const ExecutionContext* exec) {
  for (const auto& atom : base) {
    if (atom.expr.NumVarsSpanned() > num_vars) {
      return Status::InvalidArgument(
          "constraint mentions variable >= num_vars: " + atom.ToString());
    }
  }
  return CreateInternal(base, num_vars, exec, CancellationToken());
}

Result<IncrementalSimplex> IncrementalSimplex::CreateInternal(
    const LinearSystem& base, VarId num_vars, const ExecutionContext* exec,
    CancellationToken token) {
  FO2DT_TRACE_SPAN(names::kSpanSolverlpTableauBuild);
  ++SimplexStats::Local().tableau_builds;

  IncrementalSimplex t;
  t.exec_ = exec;
  t.token_ = std::move(token);
  t.num_vars_ = num_vars;
  t.base_ = std::make_shared<const LinearSystem>(base);
  t.lower_.assign(num_vars, BoundRow());
  t.upper_.assign(num_vars, BoundRow());

  const size_t n = num_vars;
  const size_t m = base.size();
  size_t num_surplus = 0;
  for (const auto& atom : base) {
    if (atom.rel == LinearRel::kGe) ++num_surplus;
  }

  t.num_cols_ = n + num_surplus;  // structural | surplus
  t.stride_ = t.num_cols_ + 8;    // bound-column headroom (see AddColumn)
  t.num_rows_ = m;
  t.tab_.assign(m * t.stride_, Rational(0));
  t.rhs_.assign(m, Rational(0));
  t.basis_.assign(m, 0);
  // Ids n+num_surplus .. n+num_surplus+m-1 are the phase-1 artificials. Their
  // columns are never stored: an artificial starts basic (implicitly a unit
  // column) and once it leaves the basis it is dropped outright (Chvatal's
  // rule — a nonbasic artificial may be deleted without changing the phase-1
  // verdict), so no entering scan ever needs its column. The tableau stays
  // m x (n+s) instead of m x (n+s+m), which halves the zero-fill and spares
  // every pivot from maintaining a dense m x m row-operation image.
  t.col_to_row_.assign(t.num_cols_ + m, kNoRow);

  size_t surplus_at = n;
  for (size_t i = 0; i < m; ++i) {
    const LinearAtom& atom = base[i];
    Rational* row = t.Row(i);
    // expr >= 0 means  sum a_j x_j >= -constant; rhs = -constant.
    for (const auto& [v, c] : atom.expr.terms()) {
      row[v] = Rational(c);
    }
    Rational rhs = Rational(-atom.expr.constant());
    if (atom.rel == LinearRel::kGe) {
      row[surplus_at++] = Rational(-1);
    }
    // Make rhs non-negative for phase 1.
    if (rhs.IsNegative()) {
      for (size_t j = 0; j < t.num_cols_; ++j) {
        if (!row[j].IsZero()) row[j] = -row[j];
      }
      rhs = -rhs;
    }
    t.rhs_[i] = rhs;
    // Artificial variable for this row: basic by id only, no stored column.
    const size_t art = n + num_surplus + i;
    t.basis_[i] = art;
    t.col_to_row_[art] = i;
  }

  // Phase 1: minimize the sum of artificials. Maintained reduced costs with
  // every artificial basic at cost 1: d_art = 0 and d_j = -sum_i T[i][j] for
  // the real columns.
  t.cost_.assign(t.num_cols_, Rational(0));
  for (size_t i = 0; i < m; ++i) {
    const Rational* row = t.Row(i);
    for (size_t j = 0; j < n + num_surplus; ++j) {
      if (!row[j].IsZero()) t.cost_[j] -= row[j];
    }
  }
  FO2DT_ASSIGN_OR_RETURN(bool phase1_bounded, t.RunPrimal());
  if (!phase1_bounded) {
    return Status::Internal("phase-1 simplex reported unbounded");
  }
  Rational art_sum(0);
  for (size_t i = 0; i < m; ++i) {
    if (t.basis_[i] >= n + num_surplus) art_sum += t.rhs_[i];
  }
  if (!art_sum.IsZero()) {
    t.feasible_ = false;
    return t;
  }

  // Drive any zero-level artificials out of the basis; drop redundant rows.
  for (size_t i = 0; i < t.num_rows_;) {
    if (t.basis_[i] < n + num_surplus) {
      ++i;
      continue;
    }
    size_t pivot_col = t.num_cols_;
    const Rational* row = t.Row(i);
    for (size_t j = 0; j < n + num_surplus; ++j) {
      if (!row[j].IsZero()) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == t.num_cols_) {
      // Row is 0 == 0 over real columns: redundant.
      t.EraseRow(i);
      continue;
    }
    t.Pivot(i, pivot_col);
    ++i;
  }

  // No artificial is basic now; forget their ids (RebuildColToRow shrinks
  // col_to_row_ back to the stored columns).
  t.cost_.assign(t.num_cols_, Rational(0));  // feasibility objective
  t.RebuildColToRow();
  t.feasible_ = true;
  return t;
}

void IncrementalSimplex::InsertBoundRow(VarId v, const BigInt& value,
                                        bool is_upper) {
  const size_t scol = AddColumn();

  // Lower bound enters the system as  x_v - s = lo  (s >= 0), upper as
  // x_v + s = hi. If x_v is basic its row is subtracted to keep basic columns
  // unit; a final negation (lower bounds only) makes s basic with +1.
  // The new row is composed directly in its tableau slot (appended cells are
  // value-initialized to zero by the resize). Capacity grows geometrically:
  // the bounded-phase root inserts one bound row per variable, and per-row
  // reallocation would move the whole tableau every time.
  const size_t need = (num_rows_ + 1) * stride_;
  if (tab_.capacity() < need) {
    tab_.reserve(std::max(need, tab_.size() + tab_.size() / 2));
  }
  tab_.resize(need);
  Rational* nrow = Row(num_rows_);
  Rational nrhs = Rational(BigInt(value));
  nrow[v] = Rational(1);
  nrow[scol] = is_upper ? Rational(1) : Rational(-1);
  const size_t vrow = col_to_row_[v];
  if (vrow != kNoRow) {
    const Rational* brow = Row(vrow);
    for (size_t j = 0; j < num_cols_; ++j) {
      if (!brow[j].IsZero()) nrow[j] -= brow[j];
    }
    nrhs -= rhs_[vrow];
  }
  if (!is_upper) {
    for (size_t j = 0; j < num_cols_; ++j) {
      if (!nrow[j].IsZero()) nrow[j] = -nrow[j];
    }
    nrhs = -nrhs;
  }
  col_to_row_[scol] = num_rows_;
  basis_.push_back(scol);
  rhs_.push_back(std::move(nrhs));
  ++num_rows_;

  BoundRow& b = is_upper ? upper_[v] : lower_[v];
  b.set = true;
  b.col = scol;
  b.value = value;
}

void IncrementalSimplex::TightenBoundRow(VarId v, const BigInt& value,
                                         bool is_upper) {
  BoundRow& b = is_upper ? upper_[v] : lower_[v];
  const BigInt delta = value - b.value;
  // The bound row's surplus column s appears in exactly one original row, so
  // in the current tableau (a row-operation image of the original system) a
  // bound-constant change of delta shifts every rhs by +-delta times the
  // current column of s. No pivot, no rebuild.
  const Rational db = is_upper ? Rational(delta) : Rational(-delta);
  const size_t col = b.col;
  for (size_t i = 0; i < num_rows_; ++i) {
    const Rational& a = Row(i)[col];
    if (!a.IsZero()) rhs_[i] += db * a;
  }
  b.value = value;
}

size_t IncrementalSimplex::DualPivotCap() const {
  return 100 + 10 * (num_rows_ + num_cols_);
}

Status IncrementalSimplex::ApplyBound(VarId v, const BigInt& value,
                                      bool is_upper) {
  if (v >= num_vars_) {
    return Status::InvalidArgument("bound on variable >= num_vars");
  }
  if (!feasible_) {
    return Status::Internal("bound change applied to an infeasible tableau");
  }
  SimplexCounters& counters = SimplexStats::Local();
  ++counters.warm_starts;

  BoundRow& b = is_upper ? upper_[v] : lower_[v];
  if (!b.set) {
    if (!is_upper && !value.IsPositive()) {
      // x >= 0 already holds implicitly; nothing to add.
      ++counters.warm_start_hits;
      return Status::OK();
    }
    InsertBoundRow(v, value, is_upper);
  } else {
    const int cmp = value.Compare(b.value);
    if (cmp == 0) {
      ++counters.warm_start_hits;
      return Status::OK();
    }
    if (is_upper ? cmp > 0 : cmp < 0) {
      return Status::InvalidArgument("bounds may only be tightened");
    }
    TightenBoundRow(v, value, is_upper);
  }

  // Failpoint: pretend the dual repair blew its pivot cap so tests can
  // drive the Rebuild safety net deterministically.
  bool force_rebuild = false;
  FO2DT_FAILPOINT(names::kFpSimplexForceRebuild, &force_rebuild);

  Status stop;
  switch (force_rebuild ? DualStatus::kCapExceeded
                        : RunDualRepair(DualPivotCap(), &stop)) {
    case DualStatus::kFeasible:
      ++counters.warm_start_hits;
      return Status::OK();
    case DualStatus::kInfeasible:
      ++counters.warm_start_hits;
      feasible_ = false;
      return Status::OK();
    case DualStatus::kCapExceeded:
      return Rebuild();
    case DualStatus::kStopped:
      // Mid-repair stop: the tableau may be primal-infeasible; the caller
      // is unwinding the whole search, so it must not reuse it.
      return stop;
  }
  return Status::Internal("unreachable dual status");
}

Status IncrementalSimplex::SetLowerBound(VarId v, const BigInt& lo) {
  return ApplyBound(v, lo, /*is_upper=*/false);
}

Status IncrementalSimplex::SetUpperBound(VarId v, const BigInt& hi) {
  return ApplyBound(v, hi, /*is_upper=*/true);
}

Status IncrementalSimplex::Rebuild() {
  const std::vector<BoundRow> lo = std::move(lower_);
  const std::vector<BoundRow> hi = std::move(upper_);
  FO2DT_ASSIGN_OR_RETURN(IncrementalSimplex fresh,
                         CreateInternal(*base_, num_vars_, exec_, token_));
  if (!fresh.feasible_) {
    return Status::Internal("rebuild: previously feasible base is infeasible");
  }
  for (VarId v = 0; v < num_vars_ && fresh.feasible_; ++v) {
    for (int pass = 0; pass < 2 && fresh.feasible_; ++pass) {
      const bool is_upper = pass == 1;
      const BoundRow& b = is_upper ? hi[v] : lo[v];
      if (!b.set) continue;
      fresh.InsertBoundRow(v, b.value, is_upper);
      Status stop;
      switch (fresh.RunDualRepair(kRebuildPivotCap, &stop)) {
        case DualStatus::kFeasible:
          break;
        case DualStatus::kInfeasible:
          fresh.feasible_ = false;
          break;
        case DualStatus::kCapExceeded:
          return Status::Internal(
                     "rebuild exceeded its pivot budget")
              .WithStopReason(StopReason{StopKind::kPivotBudget,
                                         names::kModSolverlpSimplex, kRebuildPivotCap,
                                         kRebuildPivotCap});
        case DualStatus::kStopped:
          return stop;
      }
    }
  }
  *this = std::move(fresh);
  return Status::OK();
}

std::vector<Rational> IncrementalSimplex::Assignment() const {
  std::vector<Rational> out(num_vars_, Rational(0));
  for (size_t i = 0; i < num_rows_; ++i) {
    if (basis_[i] < num_vars_) out[basis_[i]] = rhs_[i];
  }
  return out;
}

Result<LpSolution> SimplexSolver::Minimize(const LinearExpr& objective,
                                           const LinearSystem& system,
                                           VarId num_vars,
                                           const ExecutionContext* exec) {
  if (objective.NumVarsSpanned() > num_vars) {
    return Status::InvalidArgument("objective mentions variable >= num_vars");
  }
  FO2DT_ASSIGN_OR_RETURN(IncrementalSimplex t,
                         IncrementalSimplex::Create(system, num_vars, exec));
  LpSolution out;
  if (!t.feasible()) {
    out.status = LpStatus::kInfeasible;
    return out;
  }

  // Phase 2: install the real objective and re-optimize.
  t.InitObjective(objective);
  FO2DT_ASSIGN_OR_RETURN(bool phase2_bounded, t.RunPrimal());
  if (!phase2_bounded) {
    out.status = LpStatus::kUnbounded;
    return out;
  }
  out.status = LpStatus::kOptimal;
  out.assignment = t.Assignment();
  out.objective = Rational(objective.constant());
  for (const auto& [v, c] : objective.terms()) {
    out.objective += Rational(c) * out.assignment[v];
  }
  return out;
}

Result<LpSolution> SimplexSolver::FindFeasible(const LinearSystem& system,
                                               VarId num_vars,
                                               const ExecutionContext* exec) {
  return Minimize(LinearExpr(), system, num_vars, exec);
}

}  // namespace fo2dt
