#include "solverlp/simplex.h"

#include <algorithm>

#include "common/strings.h"

namespace fo2dt {

namespace {

/// Dense exact tableau in equality form: rows are constraints
/// sum_j T[i][j] * x_j == rhs[i] with rhs >= 0, plus a basis map.
struct Tableau {
  size_t num_cols = 0;                  // structural + surplus + artificial
  std::vector<std::vector<Rational>> rows;
  std::vector<Rational> rhs;
  std::vector<size_t> basis;            // basis[i] = column basic in row i

  void Pivot(size_t row, size_t col) {
    Rational p = rows[row][col];
    for (auto& v : rows[row]) v /= p;
    rhs[row] /= p;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i == row) continue;
      Rational f = rows[i][col];
      if (f.IsZero()) continue;
      for (size_t j = 0; j < num_cols; ++j) {
        if (!rows[row][j].IsZero()) rows[i][j] -= f * rows[row][j];
      }
      rhs[i] -= f * rhs[row];
    }
    basis[row] = col;
  }
};

enum class PhaseStatus { kOptimal, kUnbounded };

/// Runs the simplex method minimizing cost over the tableau with Bland's
/// anti-cycling rule. `cost` has one entry per column. Returns kUnbounded if a
/// column with negative reduced cost has no positive entry.
PhaseStatus RunSimplex(Tableau* t, const std::vector<Rational>& cost) {
  const size_t m = t->rows.size();
  for (;;) {
    // Multipliers of basic costs, then reduced costs d_j = c_j - y . A_j.
    // Computed directly from the tableau since basic columns are unit vectors:
    // d_j = c_j - sum_i c_{basis[i]} * T[i][j].
    size_t entering = t->num_cols;
    for (size_t j = 0; j < t->num_cols; ++j) {
      Rational d = cost[j];
      for (size_t i = 0; i < m; ++i) {
        const Rational& cb = cost[t->basis[i]];
        if (!cb.IsZero() && !t->rows[i][j].IsZero()) d -= cb * t->rows[i][j];
      }
      if (d.IsNegative()) {  // Bland: first improving column.
        entering = j;
        break;
      }
    }
    if (entering == t->num_cols) return PhaseStatus::kOptimal;

    // Ratio test with Bland tie-break (smallest basis column index).
    size_t leaving = m;
    Rational best_ratio;
    for (size_t i = 0; i < m; ++i) {
      const Rational& a = t->rows[i][entering];
      if (!a.IsPositive()) continue;
      Rational ratio = t->rhs[i] / a;
      if (leaving == m || ratio < best_ratio ||
          (ratio == best_ratio && t->basis[i] < t->basis[leaving])) {
        leaving = i;
        best_ratio = ratio;
      }
    }
    if (leaving == m) return PhaseStatus::kUnbounded;
    t->Pivot(leaving, entering);
  }
}

}  // namespace

Result<LpSolution> SimplexSolver::Minimize(const LinearExpr& objective,
                                           const LinearSystem& system,
                                           VarId num_vars) {
  if (objective.NumVarsSpanned() > num_vars) {
    return Status::InvalidArgument("objective mentions variable >= num_vars");
  }
  for (const auto& atom : system) {
    if (atom.expr.NumVarsSpanned() > num_vars) {
      return Status::InvalidArgument(
          "constraint mentions variable >= num_vars: " + atom.ToString());
    }
  }

  const size_t n = num_vars;
  const size_t m = system.size();
  size_t num_surplus = 0;
  for (const auto& atom : system) {
    if (atom.rel == LinearRel::kGe) ++num_surplus;
  }

  Tableau t;
  t.num_cols = n + num_surplus + m;  // structural | surplus | artificial
  t.rows.assign(m, std::vector<Rational>(t.num_cols, Rational(0)));
  t.rhs.assign(m, Rational(0));
  t.basis.assign(m, 0);

  size_t surplus_at = n;
  for (size_t i = 0; i < m; ++i) {
    const LinearAtom& atom = system[i];
    // expr >= 0 means  sum a_j x_j >= -constant; rhs = -constant.
    for (const auto& [v, c] : atom.expr.terms()) {
      t.rows[i][v] = Rational(c);
    }
    Rational rhs = Rational(-atom.expr.constant());
    if (atom.rel == LinearRel::kGe) {
      t.rows[i][surplus_at++] = Rational(-1);
    }
    // Make rhs non-negative for phase 1.
    if (rhs.IsNegative()) {
      for (size_t j = 0; j < t.num_cols; ++j) {
        if (!t.rows[i][j].IsZero()) t.rows[i][j] = -t.rows[i][j];
      }
      rhs = -rhs;
    }
    t.rhs[i] = rhs;
    // Artificial variable for this row.
    size_t art = n + num_surplus + i;
    t.rows[i][art] = Rational(1);
    t.basis[i] = art;
  }

  // Phase 1: minimize the sum of artificials.
  std::vector<Rational> phase1_cost(t.num_cols, Rational(0));
  for (size_t i = 0; i < m; ++i) phase1_cost[n + num_surplus + i] = Rational(1);
  PhaseStatus p1 = RunSimplex(&t, phase1_cost);
  if (p1 == PhaseStatus::kUnbounded) {
    return Status::Internal("phase-1 simplex reported unbounded");
  }
  Rational art_sum(0);
  for (size_t i = 0; i < m; ++i) {
    if (t.basis[i] >= n + num_surplus) art_sum += t.rhs[i];
  }
  if (!art_sum.IsZero()) {
    LpSolution out;
    out.status = LpStatus::kInfeasible;
    return out;
  }

  // Drive any zero-level artificials out of the basis; drop redundant rows.
  for (size_t i = 0; i < t.rows.size();) {
    if (t.basis[i] < n + num_surplus) {
      ++i;
      continue;
    }
    size_t pivot_col = t.num_cols;
    for (size_t j = 0; j < n + num_surplus; ++j) {
      if (!t.rows[i][j].IsZero()) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == t.num_cols) {
      // Row is 0 == 0 over real columns: redundant.
      t.rows.erase(t.rows.begin() + static_cast<long>(i));
      t.rhs.erase(t.rhs.begin() + static_cast<long>(i));
      t.basis.erase(t.basis.begin() + static_cast<long>(i));
      continue;
    }
    t.Pivot(i, pivot_col);
    ++i;
  }

  // Phase 2: forbid artificials by pricing them at "will never enter":
  // simply exclude them via a huge cost is inexact; instead zero their
  // columns. Since no artificial is basic, removing their columns is safe.
  for (size_t i = 0; i < t.rows.size(); ++i) {
    t.rows[i].resize(n + num_surplus);
  }
  t.num_cols = n + num_surplus;

  std::vector<Rational> phase2_cost(t.num_cols, Rational(0));
  for (const auto& [v, c] : objective.terms()) phase2_cost[v] = Rational(c);
  PhaseStatus p2 = RunSimplex(&t, phase2_cost);

  LpSolution out;
  if (p2 == PhaseStatus::kUnbounded) {
    out.status = LpStatus::kUnbounded;
    return out;
  }
  out.status = LpStatus::kOptimal;
  out.assignment.assign(n, Rational(0));
  for (size_t i = 0; i < t.rows.size(); ++i) {
    if (t.basis[i] < n) out.assignment[t.basis[i]] = t.rhs[i];
  }
  out.objective = Rational(objective.constant());
  for (const auto& [v, c] : objective.terms()) {
    out.objective += Rational(c) * out.assignment[v];
  }
  return out;
}

Result<LpSolution> SimplexSolver::FindFeasible(const LinearSystem& system,
                                               VarId num_vars) {
  return Minimize(LinearExpr(), system, num_vars);
}

}  // namespace fo2dt
