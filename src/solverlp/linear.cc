#include "solverlp/linear.h"

#include <algorithm>

#include "common/registry_names.h"
#include "common/strings.h"

namespace fo2dt {

LinearExpr LinearExpr::Variable(VarId v) {
  LinearExpr e;
  e.AddTerm(v, BigInt(1));
  return e;
}

void LinearExpr::AddTerm(VarId v, const BigInt& coeff) {
  if (coeff.IsZero()) return;
  // Fast path: appending past the largest id so far (how flow-equation and
  // usage-vector builders emit terms) costs one push_back.
  if (terms_.empty() || terms_.back().first < v) {
    terms_.emplace_back(v, coeff);
    return;
  }
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const Term& t, VarId key) { return t.first < key; });
  if (it == terms_.end() || it->first != v) {
    terms_.insert(it, Term(v, coeff));
    return;
  }
  it->second += coeff;
  if (it->second.IsZero()) terms_.erase(it);
}

BigInt LinearExpr::CoefficientOf(VarId v) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const Term& t, VarId key) { return t.first < key; });
  return it == terms_.end() || it->first != v ? BigInt(0) : it->second;
}

VarId LinearExpr::NumVarsSpanned() const {
  if (terms_.empty()) return 0;
  return terms_.back().first + 1;
}

LinearExpr LinearExpr::operator+(const LinearExpr& o) const {
  // Linear merge of the two sorted term lists (the map version re-inserted
  // every right-hand term at O(log n) apiece).
  LinearExpr out;
  out.terms_.reserve(terms_.size() + o.terms_.size());
  auto a = terms_.begin();
  auto b = o.terms_.begin();
  // fo2dt-lint: allow(no-checkpoint, merge is bounded by the two term lists)
  while (a != terms_.end() && b != o.terms_.end()) {
    if (a->first < b->first) {
      out.terms_.push_back(*a++);
    } else if (b->first < a->first) {
      out.terms_.push_back(*b++);
    } else {
      BigInt sum = a->second + b->second;
      if (!sum.IsZero()) out.terms_.emplace_back(a->first, std::move(sum));
      ++a;
      ++b;
    }
  }
  out.terms_.insert(out.terms_.end(), a, terms_.end());
  out.terms_.insert(out.terms_.end(), b, o.terms_.end());
  out.constant_ = constant_ + o.constant_;
  return out;
}

LinearExpr LinearExpr::operator-(const LinearExpr& o) const {
  return *this + (o * BigInt(-1));
}

LinearExpr LinearExpr::operator*(const BigInt& k) const {
  LinearExpr out;
  if (k.IsZero()) return out;
  out.terms_.reserve(terms_.size());
  for (const auto& [v, c] : terms_) out.terms_.emplace_back(v, c * k);
  out.constant_ = constant_ * k;
  return out;
}

Result<BigInt> LinearExpr::Evaluate(const IntAssignment& assignment) const {
  BigInt out = constant_;
  for (const auto& [v, c] : terms_) {
    if (v >= assignment.size()) {
      return Status::InvalidArgument(
          StringFormat("assignment missing variable v%u", v));
    }
    out += c * assignment[v];
  }
  return out;
}

Result<Rational> LinearExpr::EvaluateRational(
    const std::vector<Rational>& assignment) const {
  Rational out{constant_};
  for (const auto& [v, c] : terms_) {
    if (v >= assignment.size()) {
      return Status::InvalidArgument(
          StringFormat("assignment missing variable v%u", v));
    }
    out += Rational(c) * assignment[v];
  }
  return out;
}

std::string LinearExpr::ToString(const std::vector<std::string>* names) const {
  std::string out;
  bool first = true;
  for (const auto& [v, c] : terms_) {
    std::string name =
        names && v < names->size() ? (*names)[v] : StringFormat("v%u", v);
    if (first) {
      if (c == BigInt(1)) {
        out += name;
      } else if (c == BigInt(-1)) {
        out += "-" + name;
      } else {
        out += c.ToString() + "*" + name;
      }
      first = false;
      continue;
    }
    BigInt a = c.Abs();
    out += c.IsNegative() ? " - " : " + ";
    if (a != BigInt(1)) out += a.ToString() + "*";
    out += name;
  }
  if (first) return constant_.ToString();
  if (!constant_.IsZero()) {
    out += constant_.IsNegative() ? " - " : " + ";
    out += constant_.Abs().ToString();
  }
  return out;
}

Result<bool> LinearAtom::Evaluate(const IntAssignment& assignment) const {
  FO2DT_ASSIGN_OR_RETURN(BigInt v, expr.Evaluate(assignment));
  return rel == LinearRel::kGe ? v >= BigInt(0) : v.IsZero();
}

std::string LinearAtom::ToString(const std::vector<std::string>* names) const {
  return expr.ToString(names) + (rel == LinearRel::kGe ? " >= 0" : " == 0");
}

LinearConstraint LinearConstraint::True() {
  return LinearConstraint(std::make_shared<Node>(Node{Kind::kTrue, {}, {}}));
}

LinearConstraint LinearConstraint::False() {
  return LinearConstraint(std::make_shared<Node>(Node{Kind::kFalse, {}, {}}));
}

LinearConstraint LinearConstraint::Atom(LinearAtom atom) {
  return LinearConstraint(
      std::make_shared<Node>(Node{Kind::kAtom, std::move(atom), {}}));
}

LinearConstraint LinearConstraint::And(std::vector<LinearConstraint> parts) {
  if (parts.empty()) return True();
  if (parts.size() == 1) return parts[0];
  return LinearConstraint(
      std::make_shared<Node>(Node{Kind::kAnd, {}, std::move(parts)}));
}

LinearConstraint LinearConstraint::Or(std::vector<LinearConstraint> parts) {
  if (parts.empty()) return False();
  if (parts.size() == 1) return parts[0];
  return LinearConstraint(
      std::make_shared<Node>(Node{Kind::kOr, {}, std::move(parts)}));
}

LinearConstraint LinearConstraint::Not(LinearConstraint part) {
  return LinearConstraint(
      std::make_shared<Node>(Node{Kind::kNot, {}, {std::move(part)}}));
}

Result<bool> LinearConstraint::Evaluate(const IntAssignment& assignment) const {
  switch (kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return atom().Evaluate(assignment);
    case Kind::kNot: {
      FO2DT_ASSIGN_OR_RETURN(bool v, children()[0].Evaluate(assignment));
      return !v;
    }
    case Kind::kAnd:
      for (const auto& c : children()) {
        FO2DT_ASSIGN_OR_RETURN(bool v, c.Evaluate(assignment));
        if (!v) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : children()) {
        FO2DT_ASSIGN_OR_RETURN(bool v, c.Evaluate(assignment));
        if (v) return true;
      }
      return false;
  }
  return Status::Internal("unreachable LinearConstraint kind");
}

namespace {

// Recursive DNF expansion with polarity tracking (negations pushed to atoms).
Status ToDnfImpl(const LinearConstraint& c, bool positive, size_t max_branches,
                 std::vector<LinearSystem>* out) {
  using Kind = LinearConstraint::Kind;
  switch (c.kind()) {
    case Kind::kTrue:
      if (positive) out->push_back({});
      return Status::OK();
    case Kind::kFalse:
      if (!positive) out->push_back({});
      return Status::OK();
    case Kind::kNot:
      return ToDnfImpl(c.children()[0], !positive, max_branches, out);
    case Kind::kAtom: {
      const LinearAtom& a = c.atom();
      if (positive) {
        out->push_back({a});
      } else if (a.rel == LinearRel::kGe) {
        // not(e >= 0)  <=>  e <= -1  <=>  -e - 1 >= 0   (integer semantics)
        LinearExpr neg = -a.expr;
        neg.AddConstant(BigInt(-1));
        out->push_back({LinearAtom::Ge(std::move(neg))});
      } else {
        // not(e == 0)  <=>  e >= 1 or e <= -1
        LinearExpr up = a.expr;
        up.AddConstant(BigInt(-1));
        LinearExpr down = -a.expr;
        down.AddConstant(BigInt(-1));
        out->push_back({LinearAtom::Ge(std::move(up))});
        out->push_back({LinearAtom::Ge(std::move(down))});
      }
      return Status::OK();
    }
    case Kind::kAnd:
    case Kind::kOr: {
      // Under negation, And behaves as Or and vice versa.
      bool is_or = (c.kind() == Kind::kOr) == positive;
      if (is_or) {
        for (const auto& ch : c.children()) {
          FO2DT_RETURN_NOT_OK(ToDnfImpl(ch, positive, max_branches, out));
          if (out->size() > max_branches) {
            return Status::ResourceExhausted(
                       StringFormat("DNF expansion exceeded its branch cap in "
                                    "solverlp.linear: %zu of %zu branches",
                                    out->size(), max_branches))
                .WithStopReason(StopReason{StopKind::kBranchBudget,
                                           names::kModSolverlpLinear, out->size(),
                                           max_branches});
          }
        }
        return Status::OK();
      }
      // Conjunction: cross product of children's DNFs.
      std::vector<LinearSystem> acc = {{}};
      for (const auto& ch : c.children()) {
        std::vector<LinearSystem> child_dnf;
        FO2DT_RETURN_NOT_OK(ToDnfImpl(ch, positive, max_branches, &child_dnf));
        std::vector<LinearSystem> next;
        next.reserve(acc.size() * child_dnf.size());
        for (const auto& left : acc) {
          for (const auto& right : child_dnf) {
            LinearSystem merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (next.size() > max_branches) {
              return Status::ResourceExhausted(
                         StringFormat(
                             "DNF expansion exceeded its branch cap in "
                             "solverlp.linear: %zu of %zu branches",
                             next.size(), max_branches))
                  .WithStopReason(StopReason{StopKind::kBranchBudget,
                                             names::kModSolverlpLinear, next.size(),
                                             max_branches});
            }
          }
        }
        acc = std::move(next);
        if (acc.empty()) return Status::OK();  // one child was unsatisfiable
      }
      for (auto& sys : acc) out->push_back(std::move(sys));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable LinearConstraint kind");
}

}  // namespace

Result<std::vector<LinearSystem>> LinearConstraint::ToDnf(
    size_t max_branches) const {
  std::vector<LinearSystem> out;
  FO2DT_RETURN_NOT_OK(ToDnfImpl(*this, /*positive=*/true, max_branches, &out));
  return out;
}

VarId LinearConstraint::NumVarsSpanned() const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return 0;
    case Kind::kAtom:
      return atom().expr.NumVarsSpanned();
    default: {
      VarId n = 0;
      for (const auto& c : children()) n = std::max(n, c.NumVarsSpanned());
      return n;
    }
  }
}

std::string LinearConstraint::ToString(
    const std::vector<std::string>* names) const {
  switch (kind()) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return "(" + atom().ToString(names) + ")";
    case Kind::kNot:
      return "!" + children()[0].ToString(names);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children().size());
      for (const auto& c : children()) parts.push_back(c.ToString(names));
      const char* op = kind() == Kind::kAnd ? " && " : " || ";
      return "(" + JoinToString(parts, op) + ")";
    }
  }
  return "?";
}

}  // namespace fo2dt
