/// \file ilp.h
/// \brief Integer feasibility of linear constraint systems over N.
///
/// This is the arithmetic backend of Theorem 2: LCTA emptiness reduces to
/// satisfiability of an existential Presburger formula, i.e. to finding a
/// point in N^n satisfying a boolean combination of linear inequalities.
/// The solver expands the combination to DNF and runs branch-and-bound over
/// the exact simplex relaxation of each branch.
///
/// Branch-and-bound is *incremental*: each search path carries one warm
/// IncrementalSimplex tableau. A child node applies a single integer bound
/// change and repairs feasibility with dual-simplex pivots instead of
/// re-running phase 1 from scratch (see simplex.h).
///
/// Termination: integer programming feasibility admits small-solution bounds
/// (Papadimitriou 1981): if a system has a solution in N^n it has one whose
/// entries are bounded by a value computable from the coefficients. The
/// solver derives such a bound and adds it as explicit upper bounds, making
/// the branch-and-bound tree finite; a node budget additionally guards
/// against pathological blow-up (ResourceExhausted, never a wrong verdict).

#pragma once

#include <vector>

#include "common/execution_context.h"
#include "solverlp/linear.h"
#include "solverlp/simplex.h"

namespace fo2dt {

/// \brief Tuning knobs for the ILP search.
struct IlpOptions {
  /// Maximum branch-and-bound nodes per DNF branch.
  size_t max_nodes = 200000;
  /// Cap on DNF expansion of the input constraint.
  size_t max_dnf_branches = 100000;
  /// When true, add the small-solution upper bound to every variable,
  /// guaranteeing termination (at the price of wider simplex coefficients).
  bool add_small_solution_bound = true;
  /// When true (and bounds are enabled), first run an unbounded search with
  /// `max_nodes / unbounded_fraction` nodes: flow-style systems almost always
  /// resolve there, avoiding the huge bound coefficients; only on budget
  /// exhaustion is the guaranteed-terminating bounded search run.
  bool two_phase = true;
  size_t unbounded_fraction = 10;
  /// Worker threads for the DNF branch fan-out (0 = hardware concurrency).
  /// The verdict, witness, and branch outcomes are identical for every
  /// thread count; only wall-clock and node totals vary.
  size_t num_threads = 1;
  /// Cooperative cancellation, checked between branch-and-bound nodes and
  /// (amortized) inside simplex pivot loops. When it fires the solve aborts
  /// with StatusCode::kCancelled (never a verdict). Defaults to an inert
  /// token. Legacy call sites holding a raw std::atomic<bool> flag adapt via
  /// CancellationToken::WrapFlag(&flag).
  CancellationToken cancel_token;
  /// Optional execution governor: wall-clock deadline, caller cancellation,
  /// and effort accounting (see common/execution_context.h). Must outlive
  /// the solve. Null = ungoverned.
  const ExecutionContext* exec = nullptr;
};

/// \brief Outcome of an integer feasibility query.
struct IlpSolution {
  bool feasible = false;
  /// Witness in N^n; meaningful iff feasible.
  IntAssignment assignment;
  /// Branch-and-bound nodes explored (for benchmarks). Under a parallel
  /// fan-out this includes work on branches that were later abandoned, so it
  /// may vary with num_threads (the verdict and witness never do).
  size_t nodes_explored = 0;
};

/// \brief Per-branch verdict of a DNF fan-out solve.
enum class BranchOutcome {
  kInfeasible,  ///< proven to have no integer point
  kFeasible,    ///< the branch that produced the returned witness
  kSkipped,     ///< not solved: a smaller-index branch already terminated
};

/// \brief Result of SolveDnf: the overall verdict plus what happened to each
/// input branch (callers running cut loops prune the proven-infeasible ones).
struct DnfSolveResult {
  IlpSolution solution;
  std::vector<BranchOutcome> outcomes;  // size == number of input branches
};

/// \brief Branch-and-bound integer feasibility solver.
class IlpSolver {
 public:
  /// Decides whether a conjunction of atoms has a solution in N^num_vars.
  static Result<IlpSolution> FindIntegerPoint(const LinearSystem& system,
                                              VarId num_vars,
                                              const IlpOptions& options = {});

  /// Solves an explicit list of DNF branches (first feasible branch wins).
  ///
  /// Deterministic regardless of options.num_threads: the returned witness is
  /// always the one of the smallest-index feasible branch, and an error from
  /// branch i is reported only if no branch j < i is feasible. Workers
  /// abandon branches above the smallest terminal index (first-SAT-wins).
  static Result<DnfSolveResult> SolveDnf(
      const std::vector<LinearSystem>& branches, VarId num_vars,
      const IlpOptions& options = {});

  /// Decides whether a boolean combination of atoms has a solution in
  /// N^num_vars (DNF expansion + SolveDnf).
  static Result<IlpSolution> Solve(const LinearConstraint& constraint,
                                   VarId num_vars,
                                   const IlpOptions& options = {});

  /// Derives an upper bound B such that: if `system` has a solution in N^n,
  /// it has one with every entry <= B. (Papadimitriou-style bound; always
  /// valid, usually extremely loose.)
  static BigInt SmallSolutionBound(const LinearSystem& system, VarId num_vars);
};

}  // namespace fo2dt

