#include "constraints/constraints.h"

#include <algorithm>
#include <map>
#include <thread>

#include "automata/automaton_io.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "common/strings.h"
#include "common/trace.h"
#include "lcta/lcta.h"

namespace fo2dt {

namespace {

// Replay body shared by the three constraint facades: the schema automaton
// followed by one line per constraint (dense symbol ids; the canonical
// replay alphabet restores them positionally).
std::string SerializeConstraintProblem(const TreeAutomaton& schema,
                                       const ConstraintSet& set) {
  std::string body = "schema\n" + TreeAutomatonToText(schema);
  for (const UnaryKey& k : set.keys) {
    body += StringFormat("key %u %u\n", k.element, k.attribute);
  }
  for (const UnaryInclusion& inc : set.inclusions) {
    body += StringFormat("inclusion %u %u %u %u\n", inc.from_element,
                         inc.from_attribute, inc.to_element, inc.to_attribute);
  }
  return body;
}

}  // namespace

bool ConstraintSet::IsForeignKey(const UnaryInclusion& inc) const {
  for (const UnaryKey& k : keys) {
    if (k.element == inc.to_element && k.attribute == inc.to_attribute) {
      return true;
    }
  }
  return false;
}

std::optional<DataValue> AttributeValue(const DataTree& t, NodeId v,
                                        Symbol attribute) {
  for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
    if (t.label(c) == attribute) return t.data(c);
  }
  return std::nullopt;
}

bool DocumentSatisfiesKey(const DataTree& t, const UnaryKey& key) {
  std::map<DataValue, size_t> seen;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.label(v) != key.element) continue;
    std::optional<DataValue> val = AttributeValue(t, v, key.attribute);
    if (!val.has_value()) continue;
    if (++seen[*val] > 1) return false;
  }
  return true;
}

bool DocumentSatisfiesInclusion(const DataTree& t, const UnaryInclusion& inc) {
  std::map<DataValue, bool> targets;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.label(v) != inc.to_element) continue;
    std::optional<DataValue> val = AttributeValue(t, v, inc.to_attribute);
    if (val.has_value()) targets[*val] = true;
  }
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.label(v) != inc.from_element) continue;
    std::optional<DataValue> val = AttributeValue(t, v, inc.from_attribute);
    if (val.has_value() && !targets.count(*val)) return false;
  }
  return true;
}

bool DocumentSatisfies(const DataTree& t, const ConstraintSet& set) {
  for (const UnaryKey& k : set.keys) {
    if (!DocumentSatisfiesKey(t, k)) return false;
  }
  for (const UnaryInclusion& i : set.inclusions) {
    if (!DocumentSatisfiesInclusion(t, i)) return false;
  }
  return true;
}

Formula KeyToFo2(const UnaryKey& key) {
  // ∀x∀y: x,y are A-attribute nodes under τ-elements with x ~ y  →  x = y.
  auto attr_under = [&](Var v) {
    Var other = OtherVar(v);
    return Formula::And(
        Formula::Label(key.attribute, v),
        Formula::Exists(other,
                        Formula::And(Formula::Label(key.element, other),
                                     Formula::Edge(Axis::kChild, other, v))));
  };
  Formula body = Formula::Implies(
      Formula::And({attr_under(Var::kX), attr_under(Var::kY),
                    Formula::SameData(Var::kX, Var::kY)}),
      Formula::Equal(Var::kX, Var::kY));
  return Formula::Forall(Var::kX, Formula::Forall(Var::kY, body));
}

Formula InclusionToFo2(const UnaryInclusion& inc) {
  // ∀x (A(x) ∧ ∃y(τ1(y) ∧ child(y,x)))
  //   → ∃y (x ~ y ∧ B(y) ∧ ∃x(τ2(x) ∧ child(x,y))).
  Formula source = Formula::And(
      Formula::Label(inc.from_attribute, Var::kX),
      Formula::Exists(
          Var::kY, Formula::And(Formula::Label(inc.from_element, Var::kY),
                                Formula::Edge(Axis::kChild, Var::kY, Var::kX))));
  Formula target = Formula::Exists(
      Var::kY,
      Formula::And(
          {Formula::SameData(Var::kX, Var::kY),
           Formula::Label(inc.to_attribute, Var::kY),
           Formula::Exists(
               Var::kX,
               Formula::And(Formula::Label(inc.to_element, Var::kX),
                            Formula::Edge(Axis::kChild, Var::kX, Var::kY)))}));
  return Formula::Forall(Var::kX,
                         Formula::Implies(std::move(source), std::move(target)));
}

Formula ConstraintSetToFo2(const ConstraintSet& set) {
  std::vector<Formula> parts;
  for (const UnaryKey& k : set.keys) parts.push_back(KeyToFo2(k));
  for (const UnaryInclusion& i : set.inclusions) {
    parts.push_back(InclusionToFo2(i));
  }
  return Formula::And(std::move(parts));
}

Result<SatResult> CheckConsistencyBounded(const TreeAutomaton& schema,
                                          const ConstraintSet& set,
                                          const SolverOptions& options) {
  SolverOptions opt = options;
  opt.structural_filter = &schema;
  SolveRecorder rec(names::kFacadeConstraintsConsistency, options.exec);
  if (rec.active()) {
    std::string body = SerializeConstraintProblem(schema, set);
    body += StringFormat(
        "budget max_model_nodes %llu\n",
        static_cast<unsigned long long>(options.max_model_nodes));
    body += StringFormat("budget max_steps %llu\n",
                         static_cast<unsigned long long>(options.max_steps));
    rec.SetInput(body);
    rec.SetReplayInput(body);
    rec.AddBudget("max_model_nodes", options.max_model_nodes);
    rec.AddBudget("max_steps", options.max_steps);
  }
  // Translation is charged to kConstraints; the bounded search inside the
  // frontend call times itself (and attaches the PhaseProfile).
  Formula query = [&] {
    FO2DT_TRACE_SPAN(names::kModConstraintsTranslate);
    ScopedPhaseTimer phase_timer(Phase::kConstraints, options.exec);
    ScopedPhaseMemory phase_memory(Phase::kConstraints, options.exec);
    return ConstraintSetToFo2(set);
  }();
  Result<SatResult> result = CheckFo2SatisfiabilityBounded(query, opt);
  rec.Finish(SolveOutcomeFromSat(result));
  return result;
}

Result<SatResult> CheckImplicationBounded(const TreeAutomaton& schema,
                                          const ConstraintSet& premises,
                                          const Formula& conclusion,
                                          const SolverOptions& options) {
  SolverOptions opt = options;
  opt.structural_filter = &schema;
  SolveRecorder rec(names::kFacadeConstraintsImplication, options.exec);
  if (rec.active()) {
    std::string body = SerializeConstraintProblem(schema, premises);
    Alphabet replay_alphabet = MakeReplayAlphabet(
        std::max(schema.num_symbols(),
                 static_cast<size_t>(conclusion.NumSymbolsSpanned())));
    body += StringFormat("conclusion %s\n",
                         conclusion.ToString(replay_alphabet).c_str());
    body += StringFormat(
        "budget max_model_nodes %llu\n",
        static_cast<unsigned long long>(options.max_model_nodes));
    body += StringFormat("budget max_steps %llu\n",
                         static_cast<unsigned long long>(options.max_steps));
    rec.SetInput(body);
    rec.SetReplayInput(body);
    rec.AddBudget("max_model_nodes", options.max_model_nodes);
    rec.AddBudget("max_steps", options.max_steps);
  }
  Formula query = [&] {
    FO2DT_TRACE_SPAN(names::kModConstraintsTranslate);
    ScopedPhaseTimer phase_timer(Phase::kConstraints, options.exec);
    ScopedPhaseMemory phase_memory(Phase::kConstraints, options.exec);
    return Formula::And(ConstraintSetToFo2(premises),
                        Formula::Not(conclusion));
  }();
  Result<SatResult> result = CheckFo2SatisfiabilityBounded(query, opt);
  rec.Finish(SolveOutcomeFromSat(result));
  return result;
}

namespace {

/// Rebuilds a keyfk SatResult from a cache entry; the facade's verdicts are
/// witness-free counting results, so only verdict/steps/profile round-trip.
/// False on anything else (cold fallthrough, never an error).
bool KeyfkResultFromCacheEntry(const SolveCacheEntry& entry, SatResult* out) {
  if (entry.verdict == "SAT") out->verdict = SatVerdict::kSat;
  else if (entry.verdict == "UNSAT") out->verdict = SatVerdict::kUnsat;
  else return false;  // UNKNOWN is never cached, so never reconstructed
  if (entry.method != SatMethodToString(SatMethod::kCountingAbstraction)) {
    return false;
  }
  out->method = SatMethod::kCountingAbstraction;
  out->steps = entry.steps;
  out->profile = entry.profile;  // the cold solve's profile
  return entry.payload.empty();
}

Result<SatResult> CheckKeyForeignKeyConsistencyIlpImpl(
    const TreeAutomaton& schema, const ConstraintSet& set,
    const LctaOptions& options) {
  FO2DT_TRACE_SPAN(names::kModConstraintsKeyfkIlp);
  // Self time = cardinality-constraint construction; the LCTA emptiness call
  // below runs its own kLcta/kIlp timers.
  ScopedPhaseTimer phase_timer(Phase::kConstraints, options.exec);
  ScopedPhaseMemory phase_memory(Phase::kConstraints, options.exec);
  // Cardinality conditions over label counts: variable Q + l counts label l.
  const VarId q = static_cast<VarId>(schema.num_states());
  std::vector<LinearConstraint> parts;
  for (const UnaryInclusion& inc : set.inclusions) {
    bool source_keyed = false;
    for (const UnaryKey& k : set.keys) {
      if (k.element == inc.from_element && k.attribute == inc.from_attribute) {
        source_keyed = true;
        break;
      }
    }
    LinearExpr n_from = LinearExpr::Variable(q + inc.from_element);
    LinearExpr n_to = LinearExpr::Variable(q + inc.to_element);
    if (source_keyed) {
      // Distinct source values each need a distinct carrier: n_from <= n_to.
      parts.push_back(LinearConstraint::Ge(n_to - n_from));
    } else {
      // Presence only: n_from == 0 or n_to >= 1.
      LinearExpr n_to_pos = n_to;
      n_to_pos.AddConstant(BigInt(-1));
      parts.push_back(LinearConstraint::Or(
          LinearConstraint::Eq(n_from), LinearConstraint::Ge(n_to_pos)));
    }
  }
  Lcta lcta;
  lcta.automaton = schema;
  lcta.constraint = LinearConstraint::And(std::move(parts));
  lcta.use_symbol_counts = true;
  Result<LctaEmptinessResult> r = CheckLctaEmptiness(lcta, options);
  SatResult out;
  out.method = SatMethod::kCountingAbstraction;
  if (!r.ok()) {
    // Graceful degradation: a dead budget (deadline, node/cut cap) is an
    // honest kUnknown with the structured reason; cancellation and genuine
    // errors propagate.
    if (!r.status().IsResourceExhausted()) return r.status();
    out.verdict = SatVerdict::kUnknown;
    if (const StopReason* reason = r.status().stop_reason()) {
      out.stop_reason = *reason;
    }
    return out;
  }
  out.steps = r->ilp_nodes;
  out.verdict = r->empty ? SatVerdict::kUnsat : SatVerdict::kSat;
  return out;
}

}  // namespace

Result<SatResult> CheckKeyForeignKeyConsistencyIlp(const TreeAutomaton& schema,
                                                   const ConstraintSet& set,
                                                   const LctaOptions& options) {
  SolveRecorder rec(names::kFacadeConstraintsKeyfk, options.exec);
  SolveCache& cache = SolveCache::Instance();
  const bool caching = cache.enabled();
  std::string body;
  if (rec.active() || caching) {
    body = SerializeConstraintProblem(schema, set);
    body += StringFormat("budget max_ilp_nodes %llu\n",
                         static_cast<unsigned long long>(options.max_ilp_nodes));
    body += StringFormat("budget max_cuts %llu\n",
                         static_cast<unsigned long long>(options.max_cuts));
    body += StringFormat(
        "budget max_dnf_branches %llu\n",
        static_cast<unsigned long long>(options.max_dnf_branches));
    if (rec.active()) {
      rec.SetInput(body);
      rec.SetReplayInput(body);
      rec.AddBudget("max_ilp_nodes", options.max_ilp_nodes);
      rec.AddBudget("max_cuts", options.max_cuts);
      rec.AddBudget("max_dnf_branches", options.max_dnf_branches);
      size_t threads = options.num_threads != 0
                           ? options.num_threads
                           : std::max(1u, std::thread::hardware_concurrency());
      rec.SetThreads(threads);
    }
  }
  // This facade runs the LCTA/ILP pipeline directly (no inner frontend solve
  // to piggyback on), so it keys its own verdict-cache entries.
  std::string cache_key;
  if (caching) {
    cache_key = SolveCacheKey(names::kFacadeConstraintsKeyfk, body);
    std::optional<SolveCacheEntry> hit = cache.Lookup(
        cache_key, names::kMetricCacheSolveHits, names::kMetricCacheSolveMisses);
    if (hit.has_value()) {
      SatResult served;
      if (KeyfkResultFromCacheEntry(*hit, &served)) {
        Result<SatResult> result = std::move(served);
        rec.Finish(SolveOutcomeFromSat(result));
        return result;
      }
    }
  }
  Result<SatResult> run =
      CheckKeyForeignKeyConsistencyIlpImpl(schema, set, options);
  // Attach the per-phase profile after every timer of the solve has closed.
  if (run.ok() && options.exec != nullptr) {
    PhaseProfile profile = SnapshotPhaseProfile(*options.exec);
    if (run->stop_reason.has_value()) profile.stop = *run->stop_reason;
    run->profile = std::move(profile);
  }
  if (caching && run.ok()) {
    // Insert() applies the kUnknown-never-cached rule for degraded solves.
    SolveCacheEntry entry;
    entry.verdict = SatVerdictToString(run->verdict);
    entry.method = SatMethodToString(run->method);
    entry.steps = run->steps;
    entry.profile = run->profile;
    cache.Insert(cache_key, entry, options.exec, names::kModConstraintsKeyfkIlp);
  }
  rec.Finish(SolveOutcomeFromSat(run));
  return run;
}

}  // namespace fo2dt
