/// \file constraints.h
/// \brief Unary keys, inclusion and foreign-key constraints (Section IV).
///
/// Documents are data trees in the Figure-3 encoding: the attributes of an
/// element node v are represented by attribute children (labeled with the
/// attribute name) whose data value is the attribute value; element nodes'
/// own data values are unused by the constraint semantics.
///
/// Types are node labels here (the paper uses schema-automaton states; a
/// label-typed schema corresponds to the classic DTD setting of [2], and
/// state types reduce to label types by annotating labels with states via a
/// product alphabet).
///
/// Three decision procedures are provided, mirroring DESIGN.md §2:
/// * compilation to FO²(∼,+1) per Proposition 5 (the paper's formulas),
///   decided with the bounded-complete model search of the frontend;
/// * for the consistency of keys and foreign keys relative to a schema, the
///   specialized cardinality reduction in the style of Arenas–Fan–Libkin [2]
///   (sound and complete for label types), implemented on top of the
///   Theorem-2 LCTA machinery — the "NP procedure" baseline of the paper's
///   related-work discussion;
/// * direct document-level checkers used as ground truth in tests.

#pragma once

#include <vector>

#include "frontend/solver.h"
#include "logic/formula.h"

namespace fo2dt {

/// \brief Unary key constraint τ[@A] → τ: the A-attribute value identifies
/// the τ-element.
struct UnaryKey {
  Symbol element;
  Symbol attribute;
};

/// \brief Unary inclusion constraint τ1[A] ⊆ τ2[B]: every A-value of a τ1
/// element appears as the B-value of some τ2 element.
struct UnaryInclusion {
  Symbol from_element;
  Symbol from_attribute;
  Symbol to_element;
  Symbol to_attribute;
};

/// \brief A set of unary constraints. A *foreign key* is an inclusion whose
/// target (to_element, to_attribute) is a key in the same set.
struct ConstraintSet {
  std::vector<UnaryKey> keys;
  std::vector<UnaryInclusion> inclusions;

  /// Whether \p inc's target is keyed by this set.
  bool IsForeignKey(const UnaryInclusion& inc) const;
};

/// \brief The A-attribute value of element \p v (data value of its first
/// child labeled \p attribute), or nullopt when absent.
std::optional<DataValue> AttributeValue(const DataTree& t, NodeId v,
                                        Symbol attribute);

/// Document-level ground truth.
bool DocumentSatisfiesKey(const DataTree& t, const UnaryKey& key);
bool DocumentSatisfiesInclusion(const DataTree& t, const UnaryInclusion& inc);
bool DocumentSatisfies(const DataTree& t, const ConstraintSet& set);

/// \brief Proposition 5 formulas. The key formula reads: any two same-valued
/// A-attribute nodes under τ-elements are equal; the inclusion formula: every
/// A-attribute node under a τ1-element has a same-valued B-attribute node
/// under a τ2-element.
Formula KeyToFo2(const UnaryKey& key);
Formula InclusionToFo2(const UnaryInclusion& inc);
/// Conjunction over the whole set.
Formula ConstraintSetToFo2(const ConstraintSet& set);

/// \brief Consistency relative to a schema: is there a document accepted by
/// \p schema (over the base label alphabet; pass Universal for "no schema")
/// satisfying every constraint? Bounded-complete via model enumeration.
[[nodiscard]] Result<SatResult> CheckConsistencyBounded(const TreeAutomaton& schema,
                                          const ConstraintSet& set,
                                          const SolverOptions& options = {});

/// \brief Implication: does every document accepted by \p schema satisfying
/// \p premises also satisfy \p conclusion? Searches for a bounded
/// counterexample: kSat means "refuted" (witness is the counterexample),
/// kUnknown means no counterexample within the budget.
[[nodiscard]] Result<SatResult> CheckImplicationBounded(const TreeAutomaton& schema,
                                          const ConstraintSet& premises,
                                          const Formula& conclusion,
                                          const SolverOptions& options = {});

/// \brief Specialized consistency for keys + foreign keys relative to a
/// schema (the [2]-style NP procedure): reduces to emptiness of an LCTA
/// whose linear constraints encode the cardinality conditions
///   * inclusion with keyed source: n_{τ1} ≤ n_{τ2}
///   * inclusion without keyed source: n_{τ1} = 0 ∨ n_{τ2} ≥ 1
/// over label-occurrence counts. Sound and complete for label types,
/// provided the schema guarantees the referenced attribute children (the
/// DTD builders in xmlenc do).
[[nodiscard]] Result<SatResult> CheckKeyForeignKeyConsistencyIlp(
    const TreeAutomaton& schema, const ConstraintSet& set,
    const LctaOptions& options = {});

}  // namespace fo2dt

