#include "vata/vata.h"

#include <algorithm>
#include <map>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "common/strings.h"
#include "common/trace.h"
#include "datatree/text_io.h"
#include "lcta/lcta.h"

namespace fo2dt {

bool IsBinaryTree(const DataTree& t) {
  for (NodeId v = 0; v < t.size(); ++v) {
    size_t kids = t.NumChildren(v);
    if (kids != 0 && kids != 2) return false;
  }
  return true;
}

namespace {

constexpr const char* kVataModule = names::kModVataDerive;

bool VecGe(const CounterVec& a, const CounterVec& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

CounterVec VecCombine(const CounterVec& x, const CounterVec& a,
                      const CounterVec& y, const CounterVec& b,
                      const CounterVec& c) {
  CounterVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - a[i]) + (y[i] - b[i]) + c[i];
  }
  return out;
}

/// Per node: derivable (state, vector) pairs with back-pointers for run
/// extraction.
struct Candidate {
  VataState state;
  CounterVec vector;
  size_t rule;        // leaf rule or transition index
  size_t left_cand;   // indices into the children's candidate lists
  size_t right_cand;
};

Result<std::vector<std::vector<Candidate>>> DeriveAll(
    const VataAutomaton& a, const DataTree& t, size_t max_candidates,
    const ExecutionContext* exec) {
  FO2DT_TRACE_SPAN(names::kModVataDerive);
  ScopedPhaseTimer phase_timer(Phase::kVata, exec);
  ScopedPhaseMemory phase_memory(Phase::kVata, exec);
  if (!IsBinaryTree(t)) {
    return Status::InvalidArgument("VATA runs require a binary tree");
  }
  ExecCheckpoint checkpoint(exec, /*token=*/nullptr, kVataModule);
  std::vector<std::vector<Candidate>> cands(t.size());
  size_t total = 0;
  // Flush the effort counter on every exit path (success, budget, deadline).
  struct CandidateTally {
    const ExecutionContext* exec;
    const size_t* total;
    ScopedPhaseTimer* timer;
    ~CandidateTally() {
      if (exec != nullptr) {
        exec->counters().vata_candidates.fetch_add(*total,
                                                   std::memory_order_relaxed);
      }
      timer->AddEffort(*total);
    }
  } tally{exec, &total, &phase_timer};
  // Children have larger NodeIds only in creation order... process in
  // post-order to be safe.
  std::vector<NodeId> order;
  {
    std::vector<std::pair<NodeId, bool>> stack = {{t.root(), false}};
    // fo2dt-lint: allow(no-checkpoint, post-order walk visits each node exactly twice)
    while (!stack.empty()) {
      auto [v, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        order.push_back(v);
        continue;
      }
      stack.push_back({v, true});
      for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
        stack.push_back({c, false});
      }
    }
  }
  for (NodeId v : order) {
    if (t.first_child(v) == kNoNode) {
      for (size_t r = 0; r < a.leaf_rules.size(); ++r) {
        if (a.leaf_rules[r].label != t.label(v)) continue;
        cands[v].push_back(Candidate{a.leaf_rules[r].state,
                                     a.leaf_rules[r].vector, r, 0, 0});
      }
    } else {
      NodeId left = t.first_child(v);
      NodeId right = t.next_sibling(left);
      for (size_t r = 0; r < a.transitions.size(); ++r) {
        const VataTransition& tr = a.transitions[r];
        if (tr.label != t.label(v)) continue;
        for (size_t li = 0; li < cands[left].size(); ++li) {
          const Candidate& lc = cands[left][li];
          if (lc.state != tr.left_state || !VecGe(lc.vector, tr.take_left)) {
            continue;
          }
          for (size_t ri = 0; ri < cands[right].size(); ++ri) {
            const Candidate& rc = cands[right][ri];
            if (rc.state != tr.right_state ||
                !VecGe(rc.vector, tr.take_right)) {
              continue;
            }
            cands[v].push_back(Candidate{
                tr.result_state,
                VecCombine(lc.vector, tr.take_left, rc.vector, tr.take_right,
                           tr.add),
                r, li, ri});
            if (++total > max_candidates) {
              return Status::ResourceExhausted(
                         StringFormat("VATA derivation candidate budget "
                                      "exceeded in %s: %zu of %zu candidates",
                                      kVataModule, total, max_candidates))
                  .WithStopReason(StopReason{StopKind::kCandidateBudget,
                                             kVataModule, total,
                                             max_candidates});
            }
            FO2DT_RETURN_NOT_OK(checkpoint.Tick());
          }
        }
      }
    }
    // Deduplicate identical (state, vector) pairs to curb blow-up.
    std::sort(cands[v].begin(), cands[v].end(),
              [](const Candidate& lhs, const Candidate& rhs) {
                if (lhs.state != rhs.state) return lhs.state < rhs.state;
                return lhs.vector < rhs.vector;
              });
    cands[v].erase(std::unique(cands[v].begin(), cands[v].end(),
                               [](const Candidate& lhs, const Candidate& rhs) {
                                 return lhs.state == rhs.state &&
                                        lhs.vector == rhs.vector;
                               }),
                   cands[v].end());
  }
  return cands;
}

bool IsZero(const CounterVec& v) {
  for (int64_t x : v) {
    if (x != 0) return false;
  }
  return true;
}

void AppendVec(std::string* out, const CounterVec& v) {
  for (int64_t x : v) {
    *out += StringFormat(" %lld", static_cast<long long>(x));
  }
}

// Replay body: the full automaton (counts first, vectors inline as signed
// decimals), the subject tree in text_io syntax over the canonical replay
// alphabet, and the candidate budget.
std::string SerializeVataProblem(const VataAutomaton& a, const DataTree& t,
                                 size_t max_candidates) {
  std::string body = StringFormat(
      "vata %llu %llu %llu\n", static_cast<unsigned long long>(a.num_counters),
      static_cast<unsigned long long>(a.num_states),
      static_cast<unsigned long long>(a.num_labels));
  body += StringFormat("accepting %llu",
                       static_cast<unsigned long long>(a.accepting.size()));
  for (VataState q : a.accepting) body += StringFormat(" %u", q);
  body += "\n";
  body += StringFormat("leafrules %llu\n",
                       static_cast<unsigned long long>(a.leaf_rules.size()));
  for (const VataLeafRule& r : a.leaf_rules) {
    body += StringFormat("%u %u", r.label, r.state);
    AppendVec(&body, r.vector);
    body += "\n";
  }
  body += StringFormat("transitions %llu\n",
                       static_cast<unsigned long long>(a.transitions.size()));
  for (const VataTransition& tr : a.transitions) {
    body += StringFormat("%u %u", tr.label, tr.left_state);
    AppendVec(&body, tr.take_left);
    body += StringFormat(" %u", tr.right_state);
    AppendVec(&body, tr.take_right);
    body += StringFormat(" %u", tr.result_state);
    AppendVec(&body, tr.add);
    body += "\n";
  }
  size_t alpha = a.num_labels;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.label(v) + 1 > alpha) alpha = t.label(v) + 1;
  }
  Alphabet replay_alphabet = MakeReplayAlphabet(alpha);
  body += StringFormat("tree %s\n",
                       DataTreeToText(t, replay_alphabet).c_str());
  body += StringFormat("budget max_candidates %llu\n",
                       static_cast<unsigned long long>(max_candidates));
  return body;
}

}  // namespace

Result<bool> VataAccepts(const VataAutomaton& a, const DataTree& t,
                         size_t max_candidates, const ExecutionContext* exec) {
  SolveRecorder rec(names::kFacadeVataAccepts, exec);
  SolveCache& cache = SolveCache::Instance();
  const bool caching = cache.enabled();
  std::string body;
  if (rec.active() || caching) {
    body = SerializeVataProblem(a, t, max_candidates);
    if (rec.active()) {
      rec.SetInput(body);
      rec.SetReplayInput(body);
      rec.AddBudget("max_candidates", max_candidates);
    }
  }
  std::string cache_key;
  if (caching) {
    cache_key = SolveCacheKey(names::kFacadeVataAccepts, body);
    std::optional<SolveCacheEntry> hit = cache.Lookup(
        cache_key, names::kMetricCacheSolveHits, names::kMetricCacheSolveMisses);
    if (hit.has_value() &&
        (hit->verdict == "ACCEPT" || hit->verdict == "REJECT")) {
      Result<bool> served = hit->verdict == "ACCEPT";
      SolveOutcome outcome;
      outcome.verdict = hit->verdict;
      rec.Finish(std::move(outcome));
      return served;
    }
  }
  Result<bool> result = [&]() -> Result<bool> {
    FO2DT_ASSIGN_OR_RETURN(std::vector<std::vector<Candidate>> cands,
                           DeriveAll(a, t, max_candidates, exec));
    for (const Candidate& c : cands[t.root()]) {
      if (IsZero(c.vector) &&
          std::find(a.accepting.begin(), a.accepting.end(), c.state) !=
              a.accepting.end()) {
        return true;
      }
    }
    return false;
  }();
  SolveOutcome outcome;
  if (result.ok()) {
    outcome.verdict = *result ? "ACCEPT" : "REJECT";
    if (caching) {
      // Membership verdicts are always definite on success, so every OK
      // result is cacheable; errors never reach Insert().
      SolveCacheEntry entry;
      entry.verdict = outcome.verdict;
      cache.Insert(cache_key, entry, exec, kVataModule);
    }
  } else {
    outcome.verdict =
        std::string("ERROR:") + StatusCodeToString(result.status().code());
    if (const StopReason* reason = result.status().stop_reason()) {
      outcome.stop = *reason;
    }
  }
  rec.Finish(std::move(outcome));
  return result;
}

Result<std::pair<DataTree, VataRun>> FindVataWitnessBounded(
    const VataAutomaton& a, size_t max_nodes, size_t max_candidates,
    const ExecutionContext* exec) {
  for (size_t n = 1; n <= max_nodes; n += 2) {  // binary trees have odd size
    for (const auto& parents : EnumerateTreeShapes(n)) {
      DataTree t;
      (void)t.CreateRoot(0, 0);
      for (size_t v = 1; v < n; ++v) (void)t.AppendChild(parents[v], 0, 0);
      if (!IsBinaryTree(t)) continue;
      // Odometer over labelings.
      std::vector<Symbol> labels(n, 0);
      // No allow() needed: deep lint proves every iteration reaches the
      // governor through DeriveAll.
      for (;;) {
        for (NodeId v = 0; v < n; ++v) t.set_label(v, labels[v]);
        auto cands_or = DeriveAll(a, t, max_candidates, exec);
        if (!cands_or.ok()) {
          const Status& st = cands_or.status();
          // A per-tree candidate cap just skips this labeling; a governor
          // stop (deadline/cancellation) aborts the whole search.
          const StopReason* reason = st.stop_reason();
          bool per_tree_cap =
              st.IsResourceExhausted() &&
              (reason == nullptr ||
               reason->kind == StopKind::kCandidateBudget);
          if (!per_tree_cap) return st;
        }
        if (cands_or.ok()) {
          const auto& cands = *cands_or;
          for (size_t ci = 0; ci < cands[t.root()].size(); ++ci) {
            const Candidate& c = cands[t.root()][ci];
            if (!IsZero(c.vector) ||
                std::find(a.accepting.begin(), a.accepting.end(), c.state) ==
                    a.accepting.end()) {
              continue;
            }
            // Extract the run by following back-pointers top-down.
            VataRun run;
            run.rule.assign(t.size(), 0);
            run.vector.assign(t.size(), CounterVec(a.num_counters, 0));
            std::vector<std::pair<NodeId, size_t>> stack = {{t.root(), ci}};
            // fo2dt-lint: allow(no-checkpoint, run extraction visits each node once)
            while (!stack.empty()) {
              auto [v, idx] = stack.back();
              stack.pop_back();
              const Candidate& cand = cands[v][idx];
              run.rule[v] = cand.rule;
              run.vector[v] = cand.vector;
              if (t.first_child(v) != kNoNode) {
                NodeId left = t.first_child(v);
                NodeId right = t.next_sibling(left);
                stack.push_back({left, cand.left_cand});
                stack.push_back({right, cand.right_cand});
              }
            }
            return std::make_pair(t, run);
          }
        }
        size_t i = 0;
        // fo2dt-lint: allow(no-checkpoint, odometer carry bounded by n digits)
        while (i < n) {
          if (++labels[i] < a.num_labels) break;
          labels[i] = 0;
          ++i;
        }
        if (i == n) break;
      }
    }
  }
  return Status::NotFound("no accepted VATA tree within the bound");
}

namespace {

/// Builder state for the counter-tree construction: per counter, the pool of
/// unconsumed increment values produced in the subtree.
struct CounterPools {
  std::vector<std::vector<DataValue>> pool;

  void Merge(CounterPools&& other) {
    for (size_t i = 0; i < pool.size(); ++i) {
      pool[i].insert(pool[i].end(), other.pool[i].begin(),
                     other.pool[i].end());
    }
  }
};

struct CounterTreeBuilder {
  const VataAutomaton& a;
  const DataTree& t;
  const VataRun& run;
  const CounterTreeAlphabet& alpha;
  DataTree out;
  DataValue next_value = 1;

  /// Emits a chain of I_i nodes (counts per counter) below `attach`,
  /// returning the new attachment point and recording fresh values.
  Result<NodeId> EmitIncrements(NodeId attach, const CounterVec& counts,
                                CounterPools* pools) {
    for (size_t i = 0; i < counts.size(); ++i) {
      for (int64_t k = 0; k < counts[i]; ++k) {
        DataValue v = next_value++;
        pools->pool[i].push_back(v);
        FO2DT_ASSIGN_OR_RETURN(attach,
                               out.AppendChild(attach, alpha.Inc(i), v));
      }
    }
    return attach;
  }

  /// Builds the gadget for tree node v under `attach` (which may be kNoNode
  /// for the root). Returns the pools of unconsumed increments of the whole
  /// gadget.
  Result<CounterPools> BuildUnder(NodeId attach, NodeId v) {
    const size_t k = a.num_counters;
    CounterPools pools{std::vector<std::vector<DataValue>>(k)};
    if (t.first_child(v) == kNoNode) {
      const VataLeafRule& rule = a.leaf_rules[run.rule[v]];
      FO2DT_ASSIGN_OR_RETURN(NodeId chain,
                             EmitChainTop(attach, rule.vector, &pools));
      FO2DT_RETURN_NOT_OK(
          Append(chain, alpha.BaseLabel(rule.label), 0).status());
      return pools;
    }
    const VataTransition& tr = a.transitions[run.rule[v]];
    NodeId left = t.first_child(v);
    NodeId right = t.next_sibling(left);
    // Top chain: c̄ increments, then the label node.
    FO2DT_ASSIGN_OR_RETURN(NodeId chain, EmitChainTop(attach, tr.add, &pools));
    FO2DT_ASSIGN_OR_RETURN(NodeId label_node,
                           Append(chain, alpha.BaseLabel(tr.label), 0));
    // Left branch: ā decrements, then the left gadget.
    FO2DT_ASSIGN_OR_RETURN(
        CounterPools left_pools,
        BuildBranch(label_node, tr.take_left, left));
    // Right branch: b̄ decrements, then the right gadget.
    FO2DT_ASSIGN_OR_RETURN(
        CounterPools right_pools,
        BuildBranch(label_node, tr.take_right, right));
    pools.Merge(std::move(left_pools));
    pools.Merge(std::move(right_pools));
    return pools;
  }

  /// A branch: a chain of D_i nodes (counts) whose values come from the
  /// child gadget's pools, then the child gadget itself.
  Result<CounterPools> BuildBranch(NodeId attach, const CounterVec& takes,
                                   NodeId child) {
    // Build the decrement chain with placeholder values, then the child
    // gadget, then patch the decrements from the child's pools.
    std::vector<NodeId> dec_nodes;
    NodeId cur = attach;
    for (size_t i = 0; i < takes.size(); ++i) {
      for (int64_t n = 0; n < takes[i]; ++n) {
        FO2DT_ASSIGN_OR_RETURN(cur, Append(cur, alpha.Dec(i), 0));
        dec_nodes.push_back(cur);
      }
    }
    FO2DT_ASSIGN_OR_RETURN(CounterPools pools, BuildUnder(cur, child));
    size_t di = 0;
    for (size_t i = 0; i < takes.size(); ++i) {
      for (int64_t n = 0; n < takes[i]; ++n) {
        if (pools.pool[i].empty()) {
          return Status::Internal(
              "counter discipline violated: decrement without increment");
        }
        out.set_data(dec_nodes[di++], pools.pool[i].back());
        pools.pool[i].pop_back();
      }
    }
    return pools;
  }

  Result<NodeId> EmitChainTop(NodeId attach, const CounterVec& counts,
                              CounterPools* pools) {
    NodeId cur = attach;
    for (size_t i = 0; i < counts.size(); ++i) {
      for (int64_t n = 0; n < counts[i]; ++n) {
        DataValue val = next_value++;
        pools->pool[i].push_back(val);
        FO2DT_ASSIGN_OR_RETURN(cur, Append(cur, alpha.Inc(i), val));
      }
    }
    return cur;
  }

  Result<NodeId> Append(NodeId parent, Symbol label, DataValue value) {
    if (parent == kNoNode && out.empty()) {
      return out.CreateRoot(label, value);
    }
    return out.AppendChild(parent, label, value);
  }
};

}  // namespace

Result<DataTree> BuildCounterTree(const VataAutomaton& a, const DataTree& t,
                                  const VataRun& run,
                                  const CounterTreeAlphabet& alpha) {
  if (run.rule.size() != t.size()) {
    return Status::InvalidArgument("run does not match the tree");
  }
  CounterTreeBuilder builder{a, t, run, alpha, DataTree{}, 1};
  FO2DT_ASSIGN_OR_RETURN(CounterPools pools,
                         builder.BuildUnder(kNoNode, t.root()));
  // An accepting run ends with the zero vector: all increments consumed.
  for (const auto& pool : pools.pool) {
    if (!pool.empty()) {
      return Status::InvalidArgument(
          "run does not end with the zero vector; counter tree would leave "
          "unmatched increments");
    }
  }
  return builder.out;
}

Formula CounterDisciplineFormula(const CounterTreeAlphabet& alpha) {
  std::vector<Formula> parts;
  for (size_t i = 0; i < alpha.num_counters; ++i) {
    Formula inc_x = Formula::Label(alpha.Inc(i), Var::kX);
    Formula inc_y = Formula::Label(alpha.Inc(i), Var::kY);
    Formula dec_x = Formula::Label(alpha.Dec(i), Var::kX);
    Formula dec_y = Formula::Label(alpha.Dec(i), Var::kY);
    // (1) increments pairwise different.
    parts.push_back(Formula::Forall(
        Var::kX,
        Formula::Forall(
            Var::kY, Formula::Implies(
                         Formula::And({inc_x, inc_y,
                                       Formula::Not(Formula::Equal(
                                           Var::kX, Var::kY))}),
                         Formula::Not(Formula::SameData(Var::kX, Var::kY))))));
    // (2) decrements pairwise different.
    parts.push_back(Formula::Forall(
        Var::kX,
        Formula::Forall(
            Var::kY, Formula::Implies(
                         Formula::And({dec_x, dec_y,
                                       Formula::Not(Formula::Equal(
                                           Var::kX, Var::kY))}),
                         Formula::Not(Formula::SameData(Var::kX, Var::kY))))));
    // (3) every increment has a same-valued decrement ancestor.
    parts.push_back(Formula::Forall(
        Var::kX,
        Formula::Implies(
            Formula::Label(alpha.Inc(i), Var::kX),
            Formula::Exists(
                Var::kY,
                Formula::And({Formula::Label(alpha.Dec(i), Var::kY),
                              Formula::Edge(Axis::kDescendant, Var::kY,
                                            Var::kX),
                              Formula::SameData(Var::kX, Var::kY)})))));
    // (4) every decrement has a same-valued increment descendant.
    parts.push_back(Formula::Forall(
        Var::kX,
        Formula::Implies(
            Formula::Label(alpha.Dec(i), Var::kX),
            Formula::Exists(
                Var::kY,
                Formula::And({Formula::Label(alpha.Inc(i), Var::kY),
                              Formula::Edge(Axis::kDescendant, Var::kX,
                                            Var::kY),
                              Formula::SameData(Var::kX, Var::kY)})))));
  }
  return Formula::And(std::move(parts));
}

Formula CounterTreeStructureFormula(const CounterTreeAlphabet& alpha) {
  std::vector<Formula> parts;
  // No node has three children: no three consecutive siblings anywhere.
  parts.push_back(Formula::Not(Formula::Exists(
      Var::kX,
      Formula::Exists(
          Var::kY,
          Formula::And(Formula::Edge(Axis::kNextSibling, Var::kX, Var::kY),
                       Formula::Exists(
                           Var::kX, Formula::Edge(Axis::kNextSibling, Var::kY,
                                                  Var::kX)))))));
  // Increment/decrement nodes are unary: they have a child but no second
  // child (their child has no sibling).
  for (size_t i = 0; i < alpha.num_counters; ++i) {
    for (Symbol s : {alpha.Inc(i), alpha.Dec(i)}) {
      parts.push_back(Formula::Forall(
          Var::kX,
          Formula::Implies(Formula::Label(s, Var::kX),
                           Formula::Exists(Var::kY,
                                           Formula::Edge(Axis::kChild, Var::kX,
                                                         Var::kY)))));
      parts.push_back(Formula::Forall(
          Var::kX,
          Formula::Forall(
              Var::kY,
              Formula::Implies(
                  Formula::And(Formula::Label(s, Var::kX),
                               Formula::Edge(Axis::kChild, Var::kX, Var::kY)),
                  Formula::Not(Formula::Exists(
                      Var::kX,
                      Formula::Edge(Axis::kNextSibling, Var::kY, Var::kX)))))));
    }
  }
  return Formula::And(std::move(parts));
}

Formula EncodeVataToFo2(const VataAutomaton& a,
                        const CounterTreeAlphabet& alpha) {
  (void)a;
  return Formula::And(CounterDisciplineFormula(alpha),
                      CounterTreeStructureFormula(alpha));
}

}  // namespace fo2dt
