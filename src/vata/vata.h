/// \file vata.h
/// \brief Vector addition tree automata and the Theorem-4 reduction.
///
/// A VATA (Section VI) is a bottom-up automaton on binary trees assigning
/// each node a state and a vector over N. A transition with parameters
/// (label, q0, ā, q1, b̄, q, c̄) applies at a node v with children carrying
/// (q0, x̄), (q1, ȳ) when x̄ ≥ ā and ȳ ≥ b̄, giving v the state q and vector
/// (x̄-ā)+(ȳ-b̄)+c̄. Leaf rules δ0 assign (q, n̄) to leaves. A tree is
/// accepted when the root carries an accepting state and the zero vector.
/// Emptiness of VATA is a long-standing open problem, equivalent to
/// provability in MELL; Theorem 4 reduces it to FO²(∼,<,+1) satisfiability,
/// which is why the paper leaves that logic's decidability open.
///
/// This module implements the model (membership, bounded emptiness search)
/// and the Theorem-4 artifacts: the counter-tree coding of runs (Figure 4)
/// and the FO²(∼,<,+1) conditions (1)–(4) that data values enforce on
/// counter trees. Runs found by the bounded search are converted to counter
/// trees and differential-tested against the formulas.

#pragma once

#include <optional>

#include "common/execution_context.h"
#include "datatree/data_tree.h"
#include "logic/formula.h"

namespace fo2dt {

/// \brief State id of a VATA.
using VataState = uint32_t;

/// \brief Counter vector (size == num_counters).
using CounterVec = std::vector<int64_t>;

/// \brief Leaf rule δ0(label, state, vector).
struct VataLeafRule {
  Symbol label;
  VataState state;
  CounterVec vector;
};

/// \brief Inner transition (label, q0, ā, q1, b̄, q, c̄).
struct VataTransition {
  Symbol label;
  VataState left_state;
  CounterVec take_left;  // ā
  VataState right_state;
  CounterVec take_right;  // b̄
  VataState result_state;
  CounterVec add;  // c̄
};

/// \brief A vector addition tree automaton.
struct VataAutomaton {
  size_t num_counters = 0;
  size_t num_states = 0;
  size_t num_labels = 0;
  std::vector<VataState> accepting;
  std::vector<VataLeafRule> leaf_rules;
  std::vector<VataTransition> transitions;
};

/// \brief A run: per node, the rule applied and the resulting vector.
struct VataRun {
  /// Index into leaf_rules (leaves) or transitions (inner nodes).
  std::vector<size_t> rule;
  /// Resulting vector at each node.
  std::vector<CounterVec> vector;
};

/// Whether \p t is binary (every node has zero or two children) — the shape
/// VATA run on.
bool IsBinaryTree(const DataTree& t);

/// All (state, vector) pairs derivable at the root of \p t; membership is
/// accepted iff one has an accepting state and the zero vector. The
/// candidate budget caps the DP size (ResourceExhausted past it). A non-null
/// \p exec adds a deadline/cancellation check amortized over candidates.
Result<bool> VataAccepts(const VataAutomaton& a, const DataTree& t,
                         size_t max_candidates = 100000,
                         const ExecutionContext* exec = nullptr);

/// Finds an accepted tree (labels only) with at most \p max_nodes nodes,
/// together with an accepting run; NotFound if none exists in the bound.
/// A non-null \p exec bounds the search by its deadline/cancellation.
Result<std::pair<DataTree, VataRun>> FindVataWitnessBounded(
    const VataAutomaton& a, size_t max_nodes, size_t max_candidates = 100000,
    const ExecutionContext* exec = nullptr);

/// \brief Alphabet layout of counter trees: per counter i the labels I_i and
/// D_i, one label per VATA state (P_q) and the VATA's own labels.
struct CounterTreeAlphabet {
  size_t num_counters = 0;
  size_t num_states = 0;
  size_t num_base_labels = 0;

  Symbol Inc(size_t counter) const { return static_cast<Symbol>(counter); }
  Symbol Dec(size_t counter) const {
    return static_cast<Symbol>(num_counters + counter);
  }
  Symbol StateLabel(VataState q) const {
    return static_cast<Symbol>(2 * num_counters + q);
  }
  Symbol BaseLabel(Symbol a) const {
    return static_cast<Symbol>(2 * num_counters + num_states + a);
  }
  size_t size() const {
    return 2 * num_counters + num_states + num_base_labels;
  }
};

/// \brief Figure 4: converts an accepted (tree, run) into a counter tree
/// whose data values witness the counter discipline: every increment node
/// I_i carries a fresh value, every decrement D_i shares its value with the
/// matched increment below it.
Result<DataTree> BuildCounterTree(const VataAutomaton& a, const DataTree& t,
                                  const VataRun& run,
                                  const CounterTreeAlphabet& alpha);

/// \brief Theorem 4, conditions (1)-(4) as one FO²(∼,<,+1) sentence over the
/// counter-tree alphabet:
///  (1) all I_i nodes have pairwise different data values,
///  (2) all D_i nodes have pairwise different data values,
///  (3) every I_i node has a D_i ancestor with the same value,
///  (4) every D_i node has an I_i descendant with the same value.
Formula CounterDisciplineFormula(const CounterTreeAlphabet& alpha);

/// \brief Structural sanity conditions of the coding, in FO²(+1):
/// increment/decrement nodes form unary chains and no node has three
/// children (binary gadget shape).
Formula CounterTreeStructureFormula(const CounterTreeAlphabet& alpha);

/// \brief The full Theorem-4 formula φ_A: discipline ∧ structure. A model of
/// φ_A over counter trees encodes an accepting run of the automaton, hence
/// FO²(∼,<,+1) satisfiability is at least as hard as VATA emptiness.
Formula EncodeVataToFo2(const VataAutomaton& a,
                        const CounterTreeAlphabet& alpha);

}  // namespace fo2dt

