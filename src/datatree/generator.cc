#include "datatree/generator.h"

#include <string>
#include <vector>

namespace fo2dt {

DataTree RandomDataTree(const RandomTreeOptions& options, RandomSource* rng,
                        Alphabet* alphabet) {
  std::vector<Symbol> labels;
  for (size_t i = 0; i < options.num_labels; ++i) {
    labels.push_back(alphabet->Intern("l" + std::to_string(i)));
  }
  auto pick_label = [&] { return labels[rng->UniformIndex(labels.size())]; };
  auto fresh_value = [&] {
    return static_cast<DataValue>(rng->UniformIndex(options.num_data_values));
  };

  DataTree t;
  (void)t.CreateRoot(pick_label(), fresh_value());
  // Frontier of nodes that may still receive children, with remaining
  // capacity; grow until num_nodes reached.
  std::vector<std::pair<NodeId, size_t>> frontier = {
      {t.root(), options.max_children}};
  while (t.size() < options.num_nodes && !frontier.empty()) {
    size_t idx = rng->UniformIndex(frontier.size());
    auto& [parent, capacity] = frontier[idx];
    DataValue d;
    if (rng->Bernoulli(options.data_copy_parent)) {
      d = t.data(parent);
    } else if (t.last_child(parent) != kNoNode &&
               rng->Bernoulli(options.data_copy_left)) {
      d = t.data(t.last_child(parent));
    } else {
      d = fresh_value();
    }
    NodeId child = t.AppendChild(parent, pick_label(), d).value();
    if (--capacity == 0) {
      frontier[idx] = frontier.back();
      frontier.pop_back();
    }
    frontier.emplace_back(child, options.max_children);
  }
  return t;
}

DataTree CombTree(size_t spine_length, size_t teeth, size_t run_length,
                  Alphabet* alphabet) {
  Symbol spine = alphabet->Intern("s");
  Symbol leaf = alphabet->Intern("t");
  DataTree t;
  if (spine_length == 0) return t;
  auto value_at = [run_length](size_t i) {
    return static_cast<DataValue>(run_length == 0 ? i : i / run_length);
  };
  NodeId cur = t.CreateRoot(spine, value_at(0)).value();
  for (size_t i = 0; i < spine_length; ++i) {
    for (size_t k = 0; k < teeth; ++k) {
      (void)t.AppendChild(cur, leaf, value_at(i));
    }
    if (i + 1 < spine_length) {
      cur = t.AppendChild(cur, spine, value_at(i + 1)).value();
    }
  }
  return t;
}

DataTree FlatRunsTree(size_t n, size_t run_length, Alphabet* alphabet) {
  Symbol root = alphabet->Intern("r");
  Symbol leaf = alphabet->Intern("c");
  DataTree t;
  (void)t.CreateRoot(root, static_cast<DataValue>(-1));
  for (size_t i = 0; i < n; ++i) {
    DataValue d = static_cast<DataValue>(run_length == 0 ? i : i / run_length);
    (void)t.AppendChild(t.root(), leaf, d);
  }
  return t;
}

}  // namespace fo2dt
