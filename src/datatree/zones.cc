#include "datatree/zones.h"

#include <algorithm>
#include <map>
#include <set>

namespace fo2dt {

namespace {

/// Plain union-find over NodeIds with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  }

  NodeId Find(NodeId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Union(NodeId a, NodeId b) {
    NodeId ra = Find(a);
    NodeId rb = Find(b);
    if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

ZonePartition ComputeZones(const DataTree& t) {
  ZonePartition out;
  const size_t n = t.size();
  UnionFind uf(n);
  for (NodeId v = 0; v < n; ++v) {
    NodeId p = t.parent(v);
    if (p != kNoNode && t.SameData(p, v)) uf.Union(p, v);
    NodeId s = t.next_sibling(v);
    if (s != kNoNode && t.SameData(s, v)) uf.Union(s, v);
  }
  out.zone_of.assign(n, 0);
  std::unordered_map<NodeId, ZoneId> root_to_zone;
  for (NodeId v = 0; v < n; ++v) {
    NodeId r = uf.Find(v);
    auto [it, fresh] =
        root_to_zone.emplace(r, static_cast<ZoneId>(out.members.size()));
    if (fresh) {
      out.members.emplace_back();
      out.data_value.push_back(t.data(v));
    }
    out.zone_of[v] = it->second;
    out.members[it->second].push_back(v);
  }
  return out;
}

std::vector<ZoneId> ZonePartition::AdjacentZones(const DataTree& t,
                                                 ZoneId z) const {
  std::set<ZoneId> adj;
  for (NodeId v : members[z]) {
    auto consider = [&](NodeId w) {
      if (w != kNoNode && zone_of[w] != z) adj.insert(zone_of[w]);
    };
    consider(t.parent(v));
    consider(t.prev_sibling(v));
    consider(t.next_sibling(v));
    for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
      consider(c);
    }
  }
  return std::vector<ZoneId>(adj.begin(), adj.end());
}

ClassPartition ComputeClasses(const DataTree& t) {
  std::map<DataValue, std::vector<NodeId>> by_value;
  for (NodeId v = 0; v < t.size(); ++v) by_value[t.data(v)].push_back(v);
  ClassPartition out;
  out.classes.assign(by_value.begin(), by_value.end());
  return out;
}

std::vector<std::vector<NodeId>> Siblinghoods(const DataTree& t) {
  std::vector<std::vector<NodeId>> out;
  if (t.empty()) return out;
  out.push_back({t.root()});
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.first_child(v) == kNoNode) continue;
    out.push_back(t.Children(v));
  }
  return out;
}

std::vector<PureInterval> MaximalPureIntervals(const DataTree& t) {
  std::vector<PureInterval> out;
  std::vector<std::vector<NodeId>> sibs = Siblinghoods(t);
  for (size_t si = 0; si < sibs.size(); ++si) {
    const std::vector<NodeId>& sib = sibs[si];
    size_t begin = 0;
    while (begin < sib.size()) {
      size_t end = begin + 1;
      DataValue d = t.data(sib[begin]);
      while (end < sib.size() && t.data(sib[end]) == d) ++end;
      // Maximal runs always have border (or absent, which counts as border)
      // interfaces, hence maximal pure intervals are complete by
      // construction; the flag matters for non-maximal intervals created by
      // the pruning machinery, and for documentation clarity here.
      out.push_back(PureInterval{si, begin, end, d, /*complete=*/true});
      begin = end;
    }
  }
  return out;
}

std::vector<DataPath> MaximalDataPaths(const DataTree& t) {
  std::vector<DataPath> out;
  if (t.empty()) return out;
  // A maximal path starts at any node whose parent has a different value
  // (or no parent) and extends through every chain of same-data children.
  std::vector<NodeId> starts;
  for (NodeId v = 0; v < t.size(); ++v) {
    NodeId p = t.parent(v);
    if (p == kNoNode || !t.SameData(p, v)) starts.push_back(v);
  }
  // DFS over same-data child edges. Within the "same-data subtree" rooted at
  // a start node, every root-to-leaf branch is one maximal data path.
  struct Frame {
    NodeId node;
    NodeId next_child;      // resume cursor over children
    bool any_child_taken;   // did this node extend the path at least once?
  };
  for (NodeId start : starts) {
    std::vector<NodeId> path = {start};
    std::vector<Frame> stack = {{start, t.first_child(start), false}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      NodeId c = f.next_child;
      while (c != kNoNode && !t.SameData(c, f.node)) c = t.next_sibling(c);
      if (c != kNoNode) {
        f.next_child = t.next_sibling(c);
        f.any_child_taken = true;
        path.push_back(c);
        stack.push_back({c, t.first_child(c), false});
        continue;
      }
      if (!f.any_child_taken) {
        out.push_back(DataPath{path, t.data(start)});
      }
      stack.pop_back();
      path.pop_back();
    }
  }
  return out;
}

TreeShapeStats ComputeShapeStats(const DataTree& t) {
  TreeShapeStats s;
  s.num_nodes = t.size();
  s.num_classes = ComputeClasses(t).num_classes();
  ZonePartition zones = ComputeZones(t);
  s.num_zones = zones.num_zones();
  for (const auto& z : zones.members) {
    s.max_zone_size = std::max(s.max_zone_size, z.size());
  }
  std::vector<PureInterval> intervals = MaximalPureIntervals(t);
  s.num_pure_intervals = intervals.size();
  std::map<size_t, size_t> complete_per_sib;
  for (const auto& iv : intervals) {
    s.max_pure_interval_length =
        std::max(s.max_pure_interval_length, iv.length());
    if (iv.complete) {
      ++s.num_complete_pure_intervals;
      ++complete_per_sib[iv.siblinghood];
    }
  }
  for (const auto& [sib, count] : complete_per_sib) {
    (void)sib;
    s.max_complete_intervals_per_siblinghood =
        std::max(s.max_complete_intervals_per_siblinghood, count);
  }
  for (const auto& p : MaximalDataPaths(t)) {
    s.max_data_path_length = std::max(s.max_data_path_length, p.nodes.size());
  }
  return s;
}

bool IsReduced(const DataTree& t, size_t m, size_t n) {
  ZonePartition zones = ComputeZones(t);
  size_t big_zones = 0;
  for (const auto& z : zones.members) {
    if (z.size() > n) ++big_zones;
  }
  if (big_zones > m) return false;
  std::map<size_t, size_t> complete_per_sib;
  for (const auto& iv : MaximalPureIntervals(t)) {
    if (iv.complete) ++complete_per_sib[iv.siblinghood];
  }
  size_t big_sibs = 0;
  for (const auto& [sib, count] : complete_per_sib) {
    (void)sib;
    if (count > n) ++big_sibs;
  }
  return big_sibs <= m;
}

}  // namespace fo2dt
