/// \file generator.h
/// \brief Random data-tree generators for tests and benchmark workloads.
///
/// Shapes are controlled by a branching distribution, data values by a
/// locality model: with probability `data_copy_parent` (resp.
/// `data_copy_left`) a node copies its parent's (left sibling's) value —
/// this is what produces nontrivial zones, pure intervals and data paths —
/// otherwise it draws a fresh value from [0, num_data_values).

#pragma once

#include "common/random.h"
#include "datatree/data_tree.h"

namespace fo2dt {

/// \brief Knobs for RandomDataTree.
struct RandomTreeOptions {
  /// Total number of nodes (>= 1).
  size_t num_nodes = 20;
  /// Maximum children per node.
  size_t max_children = 4;
  /// Number of distinct labels drawn uniformly (interned as l0, l1, ...).
  size_t num_labels = 3;
  /// Fresh data values are drawn uniformly from [0, num_data_values).
  size_t num_data_values = 8;
  /// Probability that a node copies its parent's data value.
  double data_copy_parent = 0.3;
  /// Probability that a non-first child copies its left sibling's value
  /// (tested after the parent copy fails).
  double data_copy_left = 0.3;
};

/// Generates a random data tree; labels l0..l{k-1} are interned into
/// \p alphabet.
DataTree RandomDataTree(const RandomTreeOptions& options, RandomSource* rng,
                        Alphabet* alphabet);

/// Generates a "comb" tree: a spine of `spine_length` nodes where node i has
/// `teeth` extra leaf children; data values alternate every `run_length`
/// nodes along the spine. Used by the Figure 2 interval benchmarks.
DataTree CombTree(size_t spine_length, size_t teeth, size_t run_length,
                  Alphabet* alphabet);

/// Generates a single siblinghood under a root: `n` leaves whose data values
/// form runs of length `run_length` (so ceil(n/run_length) maximal pure
/// intervals). Used by interval tests and benchmarks.
DataTree FlatRunsTree(size_t n, size_t run_length, Alphabet* alphabet);

}  // namespace fo2dt

