/// \file text_io.h
/// \brief Compact textual syntax for data trees.
///
/// Grammar (whitespace-insensitive):
///   tree  := node
///   node  := label ':' data ( '(' node* ')' )?
///   label := [A-Za-z_][A-Za-z0-9_]*
///   data  := [0-9]+
///
/// Example: `a:1 (b:1 c:2 (d:2) b:1)` — the tree of Figure 1 style examples.
/// Round-trips exactly through ParseDataTree / DataTreeToText.

#pragma once

#include <string>

#include "datatree/data_tree.h"

namespace fo2dt {

/// Parses the textual syntax above, interning labels into \p alphabet.
Result<DataTree> ParseDataTree(const std::string& text, Alphabet* alphabet);

/// Renders \p t in the textual syntax (single line).
std::string DataTreeToText(const DataTree& t, const Alphabet& alphabet);

/// Multi-line indented rendering for diagnostics, one node per line with
/// label, data value, and profile.
std::string DataTreeToPrettyText(const DataTree& t, const Alphabet& alphabet);

}  // namespace fo2dt

