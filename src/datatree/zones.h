/// \file zones.h
/// \brief Classes, zones, intervals and data paths (Sections II and III-B).
///
/// * A *class* is the set of all nodes with one data value.
/// * A *zone* is a maximal connected set of nodes (in the underlying graph
///   induced by E→ and E↓) with the same data value; zones refine classes
///   (Figure 1).
/// * Within a siblinghood, an *interval* is a contiguous run of siblings; a
///   *pure* interval has one data value; a *complete* interval has border
///   interfaces on both sides (Figure 2).
/// * A *d-path* is a vertically connected set of d-valued nodes.
///
/// These notions drive the small-model property (Proposition 2); this module
/// computes them for concrete trees and checks (M,N)-reducedness.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datatree/data_tree.h"

namespace fo2dt {

/// \brief Id of a zone within a ZonePartition.
using ZoneId = uint32_t;

/// \brief The partition of a tree's nodes into zones.
struct ZonePartition {
  /// zone_of[v] is the zone of node v.
  std::vector<ZoneId> zone_of;
  /// members[z] lists the nodes of zone z in ascending NodeId order.
  std::vector<std::vector<NodeId>> members;
  /// data_value[z] is the shared data value of zone z.
  std::vector<DataValue> data_value;

  size_t num_zones() const { return members.size(); }

  /// Zones adjacent to \p z (connected by an E→ or E↓ edge in either
  /// direction), deduplicated, ascending.
  std::vector<ZoneId> AdjacentZones(const DataTree& t, ZoneId z) const;
};

/// Computes the zone partition of \p t (union-find over same-data edges).
ZonePartition ComputeZones(const DataTree& t);

/// \brief The partition of a tree's nodes into classes (per data value).
struct ClassPartition {
  /// Pairs (data value, members ascending by NodeId), sorted by data value.
  std::vector<std::pair<DataValue, std::vector<NodeId>>> classes;

  size_t num_classes() const { return classes.size(); }
};

/// Computes the class partition of \p t.
ClassPartition ComputeClasses(const DataTree& t);

/// \brief A pure interval inside one siblinghood: siblings [begin, end) in
/// the sibling order, all with data value `data`.
struct PureInterval {
  /// Index of the siblinghood in Siblinghoods(t).
  size_t siblinghood;
  /// First position within the siblinghood (inclusive).
  size_t begin;
  /// One past the last position (exclusive).
  size_t end;
  DataValue data;
  /// True when both interfaces are border interfaces. Ends of a siblinghood
  /// count as borders (the missing neighbor ⊥ trivially has a different
  /// value).
  bool complete;

  size_t length() const { return end - begin; }
};

/// All siblinghoods of \p t: the root singleton first, then the children of
/// each node in NodeId order (empty child lists omitted).
std::vector<std::vector<NodeId>> Siblinghoods(const DataTree& t);

/// Decomposes every siblinghood into its maximal pure intervals.
std::vector<PureInterval> MaximalPureIntervals(const DataTree& t);

/// \brief A maximal data path: vertically-linked same-data nodes, top-down.
struct DataPath {
  std::vector<NodeId> nodes;
  DataValue data;
};

/// All maximal data paths of \p t. Every node lies on at least one path; a
/// node whose parent has a different value starts new paths. Paths follow
/// every same-data child, so a node with k same-data children contributes to
/// k continuations (paths form the vertical skeleton of zones).
std::vector<DataPath> MaximalDataPaths(const DataTree& t);

/// \brief Aggregate structure statistics used by the reducedness check and
/// the Figure 1 / Figure 2 benchmarks.
struct TreeShapeStats {
  size_t num_nodes = 0;
  size_t num_classes = 0;
  size_t num_zones = 0;
  size_t max_zone_size = 0;
  size_t num_pure_intervals = 0;
  size_t num_complete_pure_intervals = 0;
  size_t max_pure_interval_length = 0;
  /// Max number of complete pure intervals within one siblinghood.
  size_t max_complete_intervals_per_siblinghood = 0;
  size_t max_data_path_length = 0;
};

/// Computes all statistics in one pass set.
TreeShapeStats ComputeShapeStats(const DataTree& t);

/// \brief (M,N)-reducedness (Section III-B): at most M zones of size > N and
/// at most M siblinghoods with more than N complete pure intervals.
bool IsReduced(const DataTree& t, size_t m, size_t n);

}  // namespace fo2dt

