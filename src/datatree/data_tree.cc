#include "datatree/data_tree.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace fo2dt {

std::string ProfileToString(const NodeProfile& p) {
  std::string out;
  out += p.parent_same ? 'P' : '-';
  out += p.left_same ? 'L' : '-';
  out += p.right_same ? 'R' : '-';
  return out;
}

Result<NodeId> DataTree::CreateRoot(Symbol label, DataValue data) {
  if (!empty()) return Status::InvalidArgument("tree already has a root");
  labels_.push_back(label);
  data_.push_back(data);
  parent_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  prev_sibling_.push_back(kNoNode);
  return NodeId{0};
}

Result<NodeId> DataTree::AppendChild(NodeId parent, Symbol label,
                                     DataValue data) {
  if (!Contains(parent)) {
    return Status::InvalidArgument(
        StringFormat("AppendChild: no such parent %u", parent));
  }
  NodeId v = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  data_.push_back(data);
  parent_.push_back(parent);
  first_child_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  NodeId prev = last_child_[parent];
  prev_sibling_.push_back(prev);
  if (prev != kNoNode) next_sibling_[prev] = v;
  if (first_child_[parent] == kNoNode) first_child_[parent] = v;
  last_child_[parent] = v;
  return v;
}

bool DataTree::HorizontalOrder(NodeId x, NodeId y) const {
  for (NodeId cur = next_sibling_[x]; cur != kNoNode;
       cur = next_sibling_[cur]) {
    if (cur == y) return true;
  }
  return false;
}

bool DataTree::VerticalOrder(NodeId x, NodeId y) const {
  for (NodeId cur = parent_[y]; cur != kNoNode; cur = parent_[cur]) {
    if (cur == x) return true;
  }
  return false;
}

std::vector<NodeId> DataTree::Children(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

size_t DataTree::NumChildren(NodeId v) const {
  size_t n = 0;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) ++n;
  return n;
}

size_t DataTree::Depth(NodeId v) const {
  size_t d = 0;
  for (NodeId cur = parent_[v]; cur != kNoNode; cur = parent_[cur]) ++d;
  return d;
}

std::vector<NodeId> DataTree::PreOrder() const {
  std::vector<NodeId> out;
  if (empty()) return out;
  out.reserve(size());
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    // Push children right-to-left so they pop left-to-right.
    std::vector<NodeId> kids = Children(v);
    for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
  }
  return out;
}

NodeProfile DataTree::ProfileOf(NodeId v) const {
  NodeProfile p;
  NodeId par = parent_[v];
  NodeId left = prev_sibling_[v];
  NodeId right = next_sibling_[v];
  p.parent_same = par != kNoNode && data_[par] == data_[v];
  p.left_same = left != kNoNode && data_[left] == data_[v];
  p.right_same = right != kNoNode && data_[right] == data_[v];
  return p;
}

std::vector<NodeProfile> DataTree::AllProfiles() const {
  std::vector<NodeProfile> out(size());
  for (NodeId v = 0; v < size(); ++v) out[v] = ProfileOf(v);
  return out;
}

std::vector<DataValue> DataTree::DistinctDataValues() const {
  std::unordered_set<DataValue> seen(data_.begin(), data_.end());
  std::vector<DataValue> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool DataTree::Equals(const DataTree& other) const {
  return labels_ == other.labels_ && data_ == other.data_ &&
         parent_ == other.parent_ && first_child_ == other.first_child_ &&
         next_sibling_ == other.next_sibling_;
}

Status DataTree::Validate() const {
  if (empty()) return Status::OK();
  size_t root_count = 0;
  for (NodeId v = 0; v < size(); ++v) {
    if (parent_[v] == kNoNode) {
      ++root_count;
      continue;
    }
    if (!Contains(parent_[v])) {
      return Status::Internal(StringFormat("node %u has invalid parent", v));
    }
  }
  if (root_count != 1) {
    return Status::Internal(
        StringFormat("expected exactly one root, found %zu", root_count));
  }
  for (NodeId v = 0; v < size(); ++v) {
    NodeId next = next_sibling_[v];
    if (next != kNoNode) {
      if (prev_sibling_[next] != v) {
        return Status::Internal(
            StringFormat("sibling links broken at node %u", v));
      }
      if (parent_[next] != parent_[v]) {
        return Status::Internal(
            StringFormat("siblings with different parents at node %u", v));
      }
    }
    NodeId fc = first_child_[v];
    if (fc != kNoNode && (parent_[fc] != v || prev_sibling_[fc] != kNoNode)) {
      return Status::Internal(
          StringFormat("first-child link broken at node %u", v));
    }
    NodeId lc = last_child_[v];
    if (lc != kNoNode && (parent_[lc] != v || next_sibling_[lc] != kNoNode)) {
      return Status::Internal(
          StringFormat("last-child link broken at node %u", v));
    }
  }
  return Status::OK();
}

DataTree BuildProfiledTree(const DataTree& t, const Alphabet& sigma,
                           Alphabet* profiled_alphabet) {
  // Intern the full product Σ × Pro so ProfiledSymbol indices line up.
  for (Symbol s = 0; s < sigma.size(); ++s) {
    for (uint32_t p = 0; p < kNumProfiles; ++p) {
      profiled_alphabet->Intern(sigma.Name(s) + "#" + std::to_string(p));
    }
  }
  DataTree out;
  if (t.empty()) return out;
  // Creation order preserved: NodeIds map 1:1 because AppendChild follows the
  // original creation order (parents precede children in id order).
  for (NodeId v = 0; v < t.size(); ++v) {
    Symbol s = ProfiledSymbol(t.label(v), EncodeProfile(t.ProfileOf(v)));
    if (t.parent(v) == kNoNode) {
      (void)out.CreateRoot(s, t.data(v));
    } else {
      (void)out.AppendChild(t.parent(v), s, t.data(v));
    }
  }
  return out;
}

DataTree DataErasure(const DataTree& t) {
  DataTree out;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.parent(v) == kNoNode) {
      (void)out.CreateRoot(t.label(v), 0);
    } else {
      (void)out.AppendChild(t.parent(v), t.label(v), 0);
    }
  }
  return out;
}

}  // namespace fo2dt
