/// \file data_tree.h
/// \brief Unranked, ordered, labeled trees with data values (Section II).
///
/// A data tree over Σ has nodes carrying a label from the finite alphabet Σ
/// and a data value from an infinite domain (here: uint64_t, standing in for
/// N — the paper only ever compares values for equality, so any countable
/// domain is equivalent).
///
/// The structure exposes exactly the predicates of the paper's logical
/// signature: label tests, the data-equality relation ~, the horizontal
/// successor E→, the vertical successor E↓, and their transitive closures
/// E⇒ / E⇓.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol.h"

namespace fo2dt {

/// \brief Index of a node within its DataTree. Dense, creation-ordered.
using NodeId = uint32_t;

/// \brief Sentinel for "no node" (absent parent/sibling/child).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// \brief A data value (element of the infinite domain, paper's N).
using DataValue = uint64_t;

/// \brief Node profile (Section II): which of the parent, left neighbor and
/// right neighbor carry the same data value as the node itself.
///
/// |Pro| = 8; EncodeProfile maps a profile to its index in [0, 8).
struct NodeProfile {
  bool parent_same = false;
  bool left_same = false;
  bool right_same = false;

  bool operator==(const NodeProfile&) const = default;
};

/// \brief Number of distinct node profiles.
inline constexpr uint32_t kNumProfiles = 8;

/// Dense encoding of a profile in [0, kNumProfiles).
inline uint32_t EncodeProfile(const NodeProfile& p) {
  return (p.parent_same ? 4u : 0u) | (p.left_same ? 2u : 0u) |
         (p.right_same ? 1u : 0u);
}

/// Inverse of EncodeProfile. Precondition: code < kNumProfiles.
inline NodeProfile DecodeProfile(uint32_t code) {
  return NodeProfile{(code & 4u) != 0, (code & 2u) != 0, (code & 1u) != 0};
}

/// Short rendering such as "P-R" (parent same, left different, right same).
std::string ProfileToString(const NodeProfile& p);

/// \brief An unranked ordered tree whose nodes carry a label and a data value.
///
/// Nodes are created top-down (root first, children appended left to right)
/// and addressed by dense NodeIds in creation order. The tree is append-only;
/// all navigation accessors are O(1).
class DataTree {
 public:
  DataTree() = default;

  /// Creates the root. Error if a root already exists.
  Result<NodeId> CreateRoot(Symbol label, DataValue data);

  /// Appends a new rightmost child under \p parent.
  Result<NodeId> AppendChild(NodeId parent, Symbol label, DataValue data);

  /// Number of nodes.
  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// The root id; kNoNode when empty.
  NodeId root() const { return empty() ? kNoNode : 0; }

  bool Contains(NodeId v) const { return v < labels_.size(); }

  Symbol label(NodeId v) const { return labels_[v]; }
  DataValue data(NodeId v) const { return data_[v]; }
  NodeId parent(NodeId v) const { return parent_[v]; }
  NodeId first_child(NodeId v) const { return first_child_[v]; }
  NodeId last_child(NodeId v) const { return last_child_[v]; }
  NodeId next_sibling(NodeId v) const { return next_sibling_[v]; }
  NodeId prev_sibling(NodeId v) const { return prev_sibling_[v]; }

  /// Overwrites the data value of \p v (used by encoding passes, e.g. the
  /// Theorem 3 element-value encoding).
  void set_data(NodeId v, DataValue d) { data_[v] = d; }
  /// Overwrites the label of \p v (used by profiled-tree construction).
  void set_label(NodeId v, Symbol s) { labels_[v] = s; }

  /// Paper predicate E→(x, y): y is the next sibling of x.
  bool HorizontalSuccessor(NodeId x, NodeId y) const {
    return next_sibling_[x] == y && y != kNoNode;
  }
  /// Paper predicate E↓(x, y): y is a child of x.
  bool VerticalSuccessor(NodeId x, NodeId y) const {
    return parent_[y] == x && x != kNoNode;
  }
  /// Paper predicate E⇒(x, y): y is a following sibling of x (transitive,
  /// strict).
  bool HorizontalOrder(NodeId x, NodeId y) const;
  /// Paper predicate E⇓(x, y): y is a proper descendant of x.
  bool VerticalOrder(NodeId x, NodeId y) const;
  /// Paper predicate x ~ y: equal data values.
  bool SameData(NodeId x, NodeId y) const { return data_[x] == data_[y]; }

  /// The children of \p v, left to right.
  std::vector<NodeId> Children(NodeId v) const;
  /// Number of children of \p v.
  size_t NumChildren(NodeId v) const;
  /// Depth of \p v (root has depth 0).
  size_t Depth(NodeId v) const;

  /// Node ids in document order (preorder).
  std::vector<NodeId> PreOrder() const;

  /// The profile of node \p v.
  NodeProfile ProfileOf(NodeId v) const;
  /// Profiles for all nodes, indexed by NodeId.
  std::vector<NodeProfile> AllProfiles() const;

  /// Distinct data values in the tree.
  std::vector<DataValue> DistinctDataValues() const;

  /// Structural + data equality (same shape, labels, and data values).
  bool Equals(const DataTree& other) const;

  /// Internal-consistency check (link symmetry, single root); used by tests.
  Status Validate() const;

 private:
  std::vector<Symbol> labels_;
  std::vector<DataValue> data_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;
};

/// \brief Builds the *profiled tree* of \p t (Section II): same shape and
/// data, labels from Σ × Pro.
///
/// The product alphabet is materialized into \p profiled_alphabet with label
/// names "<label>#<profile code>"; \p profile_symbol maps
/// (symbol, profile code) -> product symbol via index symbol * 8 + code.
DataTree BuildProfiledTree(const DataTree& t, const Alphabet& sigma,
                           Alphabet* profiled_alphabet);

/// Product symbol id for (label, profile) pairs produced by BuildProfiledTree.
inline Symbol ProfiledSymbol(Symbol label, uint32_t profile_code) {
  return label * kNumProfiles + profile_code;
}

/// \brief The *data erasure* of \p t (Section II): same tree, data ignored.
///
/// Represented by zeroing every data value so the result is still a DataTree
/// usable with label-only machinery (automata never read data).
DataTree DataErasure(const DataTree& t);

}  // namespace fo2dt

