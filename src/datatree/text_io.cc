#include "datatree/text_io.h"

#include <cctype>
#include <limits>

#include "common/strings.h"

namespace fo2dt {

namespace {

/// Nesting ceiling for the recursive tree parser. Tree text reaches this
/// parser from the network (vata.accepts request bodies), so a hostile
/// "a:0 (a:0 (a:0 (..." must produce a ParseError, not a stack overflow.
constexpr size_t kMaxTreeDepth = 2048;

class Parser {
 public:
  Parser(const std::string& text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<DataTree> Parse() {
    DataTree t;
    SkipSpace();
    FO2DT_RETURN_NOT_OK(ParseNode(&t, kNoNode, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input", pos_);
    }
    return t;
  }

 private:
  /// ParseError pointing at byte offset \p at, rendered as line/column.
  Status Err(const std::string& what, size_t at) const {
    return Status::ParseError(what + " at " + FormatTextPosition(text_, at));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseNode(DataTree* t, NodeId parent, size_t depth) {
    if (depth >= kMaxTreeDepth) {
      return Err("tree nested too deeply", pos_);
    }
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start ||
        std::isdigit(static_cast<unsigned char>(text_[start]))) {
      return Err("expected label", start);
    }
    std::string label = text_.substr(start, pos_ - start);
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Err("expected ':' after label", pos_);
    }
    ++pos_;
    SkipSpace();
    size_t dstart = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == dstart) {
      return Err("expected data value", pos_);
    }
    DataValue data = 0;
    for (size_t i = dstart; i < pos_; ++i) {
      DataValue digit = static_cast<DataValue>(text_[i] - '0');
      if (data > (std::numeric_limits<DataValue>::max() - digit) / 10) {
        return Err("data value overflows", dstart);
      }
      data = data * 10 + digit;
    }
    Symbol sym = alphabet_->Intern(label);
    NodeId me;
    if (parent == kNoNode) {
      FO2DT_ASSIGN_OR_RETURN(me, t->CreateRoot(sym, data));
    } else {
      FO2DT_ASSIGN_OR_RETURN(me, t->AppendChild(parent, sym, data));
    }
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      SkipSpace();
      while (pos_ < text_.size() && text_[pos_] != ')') {
        FO2DT_RETURN_NOT_OK(ParseNode(t, me, depth + 1));
        SkipSpace();
      }
      if (pos_ >= text_.size()) {
        return Err("unterminated child list: expected ')'", pos_);
      }
      ++pos_;
    }
    return Status::OK();
  }

  const std::string& text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
};

void RenderNode(const DataTree& t, const Alphabet& alphabet, NodeId v,
                std::string* out) {
  *out += alphabet.Name(t.label(v));
  *out += ':';
  *out += std::to_string(t.data(v));
  if (t.first_child(v) != kNoNode) {
    *out += " (";
    bool first = true;
    for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
      if (!first) *out += ' ';
      first = false;
      RenderNode(t, alphabet, c, out);
    }
    *out += ')';
  }
}

}  // namespace

Result<DataTree> ParseDataTree(const std::string& text, Alphabet* alphabet) {
  return Parser(text, alphabet).Parse();
}

std::string DataTreeToText(const DataTree& t, const Alphabet& alphabet) {
  if (t.empty()) return "";
  std::string out;
  RenderNode(t, alphabet, t.root(), &out);
  return out;
}

std::string DataTreeToPrettyText(const DataTree& t, const Alphabet& alphabet) {
  std::string out;
  for (NodeId v : t.PreOrder()) {
    out += std::string(2 * t.Depth(v), ' ');
    out += alphabet.Name(t.label(v));
    out += StringFormat(":%llu  [node %u, profile %s]\n",
                        static_cast<unsigned long long>(t.data(v)), v,
                        ProfileToString(t.ProfileOf(v)).c_str());
  }
  return out;
}

}  // namespace fo2dt
