#include "puzzle/bounded_solver.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/trace.h"
#include "lcta/lcta.h"

namespace fo2dt {

namespace {

constexpr const char* kBoundedModule = names::kModPuzzleBounded;

/// DFS state for one tree shape.
class ShapeSearch {
 public:
  ShapeSearch(const Puzzle& puzzle, const std::vector<uint32_t>& parents,
              const std::vector<ExtSymbol>& allowed_letters, uint64_t* steps,
              uint64_t max_steps, const ExecutionContext* exec)
      : puzzle_(puzzle),
        allowed_(allowed_letters),
        steps_(steps),
        max_steps_(max_steps),
        checkpoint_(exec, /*token=*/nullptr, kBoundedModule),
        n_(parents.size()) {
    (void)skeleton_.CreateRoot(0, 0);
    for (size_t v = 1; v < n_; ++v) {
      (void)skeleton_.AppendChild(parents[v], 0, 0);
    }
    letters_.assign(n_, 0);
    class_of_.assign(n_, 0);
  }

  /// Runs the DFS; returns kSat/kUnsatWithinBound/kBudgetExhausted.
  Result<BoundedVerdict> Run(BoundedSolveResult* out) {
    return Assign(0, /*num_classes=*/0, out);
  }

 private:
  /// Partial pruning: do classes named so far break a (b)/(c) condition?
  /// Only conditions that are monotone in added nodes are pruned here.
  bool PartialClassesViolate(size_t num_assigned, size_t num_classes) const {
    for (const SimpleFormula& c : puzzle_.class_conditions) {
      if (c.kind == SimpleFormula::Kind::kImpliesPresence ||
          c.kind == SimpleFormula::Kind::kProfile) {
        continue;  // not monotone / handled elsewhere
      }
      for (size_t cls = 0; cls < num_classes; ++cls) {
        size_t alpha = 0;
        size_t beta = 0;
        for (size_t v = 0; v < num_assigned; ++v) {
          if (class_of_[v] != cls) continue;
          if (TypeContains(c.alpha, letters_[v])) ++alpha;
          if (c.kind == SimpleFormula::Kind::kNoCoexist &&
              TypeContains(c.beta, letters_[v])) {
            ++beta;
          }
        }
        if (c.kind == SimpleFormula::Kind::kAtMostOne && alpha > 1) return true;
        if (c.kind == SimpleFormula::Kind::kNoCoexist && alpha > 0 && beta > 0) {
          return true;
        }
      }
    }
    return false;
  }

  Result<BoundedVerdict> Assign(size_t v, size_t num_classes,
                                BoundedSolveResult* out) {
    if (v == n_) return Complete(out);
    for (ExtSymbol letter : allowed_) {
      // Restricted growth: class ids 0..num_classes (a fresh one allowed).
      for (size_t cls = 0; cls <= num_classes && cls < n_; ++cls) {
        if (++*steps_ > max_steps_) return BoundedVerdict::kBudgetExhausted;
        // Deadline/cancellation abort the search with an error status (the
        // facade maps it to kUnknown); amortized to keep the DFS hot path.
        FO2DT_RETURN_NOT_OK(checkpoint_.Tick());
        letters_[v] = letter;
        class_of_[v] = cls;
        if (PartialClassesViolate(v + 1,
                                  std::max(num_classes, cls + 1))) {
          continue;
        }
        FO2DT_ASSIGN_OR_RETURN(
            BoundedVerdict verdict,
            Assign(v + 1, std::max(num_classes, cls + 1), out));
        if (verdict != BoundedVerdict::kUnsatWithinBound) return verdict;
      }
    }
    return BoundedVerdict::kUnsatWithinBound;
  }

  Result<BoundedVerdict> Complete(BoundedSolveResult* out) {
    // Materialize the candidate: base labels + data values + interpretation.
    DataTree t = skeleton_;
    PredInterpretation interp =
        PredInterpretation::Empty(puzzle_.ext.num_preds, n_);
    for (NodeId v = 0; v < n_; ++v) {
      t.set_label(v, puzzle_.ext.LabelOf(letters_[v]));
      t.set_data(v, class_of_[v]);
      uint32_t bits = puzzle_.ext.BitsOf(letters_[v]);
      for (PredId p = 0; p < puzzle_.ext.num_preds; ++p) {
        if ((bits >> p) & 1u) interp.membership[p][v] = 1;
      }
    }
    FO2DT_ASSIGN_OR_RETURN(bool ok, IsPuzzleSolution(puzzle_, t, interp));
    if (!ok) return BoundedVerdict::kUnsatWithinBound;
    out->witness = std::move(t);
    out->interp = std::move(interp);
    return BoundedVerdict::kSat;
  }

  const Puzzle& puzzle_;
  const std::vector<ExtSymbol>& allowed_;
  uint64_t* steps_;
  uint64_t max_steps_;
  ExecCheckpoint checkpoint_;
  size_t n_;
  DataTree skeleton_;
  std::vector<ExtSymbol> letters_;
  std::vector<size_t> class_of_;
};

}  // namespace

Result<BoundedSolveResult> SolvePuzzleBounded(
    const Puzzle& puzzle, const BoundedSolveOptions& options) {
  FO2DT_TRACE_SPAN(names::kModPuzzleBounded);
  ScopedPhaseTimer phase_timer(Phase::kBoundedSearch, options.exec);
  ScopedPhaseMemory phase_memory(Phase::kBoundedSearch, options.exec);
  BoundedSolveResult out;
  // Flushes the step count as phase effort on every exit path, including
  // error propagation (destroyed before phase_timer by construction order).
  struct EffortFlush {
    ScopedPhaseTimer* timer;
    const uint64_t* steps;
    ~EffortFlush() { timer->AddEffort(*steps); }
  } effort_flush{&phase_timer, &out.steps};
  // Letters that can appear at all: non-root symbols are read by their
  // outgoing transition, roots by F; a letter some profiled variant of which
  // occurs nowhere can be skipped entirely.
  std::vector<char> symbol_used(puzzle.ext.profiled_size(), 0);
  for (const auto& [f, sym, to] : puzzle.language.horizontal()) {
    (void)f;
    (void)to;
    symbol_used[sym] = 1;
  }
  for (const auto& [f, sym, to] : puzzle.language.vertical()) {
    (void)f;
    (void)to;
    symbol_used[sym] = 1;
  }
  for (const auto& [q, sym] : puzzle.language.accepting()) {
    (void)q;
    symbol_used[sym] = 1;
  }
  std::vector<ExtSymbol> allowed;
  for (ExtSymbol l = 0; l < puzzle.ext.size(); ++l) {
    for (uint32_t p = 0; p < kNumProfiles; ++p) {
      if (symbol_used[puzzle.ext.Profiled(l, p)]) {
        allowed.push_back(l);
        break;
      }
    }
  }
  if (allowed.empty()) {
    out.verdict = BoundedVerdict::kUnsatWithinBound;
    return out;
  }
  bool budget_hit = false;
  for (size_t n = 1; n <= options.max_nodes; ++n) {
    for (const auto& parents : EnumerateTreeShapes(n)) {
      ShapeSearch search(puzzle, parents, allowed, &out.steps,
                         options.max_steps, options.exec);
      auto run = search.Run(&out);
      if (options.exec != nullptr) {
        // Flushed per shape so governed callers see effort even on errors.
        options.exec->counters().search_steps.store(
            out.steps, std::memory_order_relaxed);
      }
      FO2DT_ASSIGN_OR_RETURN(BoundedVerdict verdict, std::move(run));
      if (verdict == BoundedVerdict::kSat) {
        out.verdict = verdict;
        return out;
      }
      if (verdict == BoundedVerdict::kBudgetExhausted) budget_hit = true;
    }
    if (budget_hit) break;
  }
  if (budget_hit) {
    out.verdict = BoundedVerdict::kBudgetExhausted;
    out.stop_reason = StopReason{StopKind::kStepBudget, kBoundedModule,
                                 out.steps, options.max_steps};
  } else {
    out.verdict = BoundedVerdict::kUnsatWithinBound;
  }
  return out;
}

}  // namespace fo2dt
