#include "puzzle/counting.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/execution_context.h"
#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/trace.h"

namespace fo2dt {

TreeAutomaton ProfileCoherenceAutomaton(const ExtAlphabet& ext) {
  // State = the profile code the node claims (and which must match the
  // profile component of its own letter, checked by its outgoing
  // transition).
  const size_t num_symbols = ext.profiled_size();
  TreeAutomaton a(num_symbols, kNumProfiles);
  for (uint32_t code = 0; code < kNumProfiles; ++code) {
    a.SetInitial(code);
    if (DecodeProfile(code).left_same) {
      a.SetNonFirst(code);  // claiming a same-data left neighbor needs one
    }
  }
  auto triangle_ok = [](bool v_parent_same, bool w_parent_same,
                        bool v_w_same) {
    int falses = (!v_parent_same) + (!w_parent_same) + (!v_w_same);
    return falses != 1;
  };
  for (Symbol s = 0; s < num_symbols; ++s) {
    NodeProfile p = DecodeProfile(ext.ProfileOf(s));
    uint32_t own = EncodeProfile(p);
    // Horizontal: v (profile p) followed by w; w's left_same must equal
    // v's right_same, and the (v, w, parent) data-equality triangle must be
    // consistent. Siblings always have a parent (the root has no siblings).
    for (uint32_t next_code = 0; next_code < kNumProfiles; ++next_code) {
      NodeProfile np = DecodeProfile(next_code);
      if (np.left_same != p.right_same) continue;
      if (!triangle_ok(p.parent_same, np.parent_same, p.right_same)) continue;
      a.AddHorizontal(own, s, next_code);
    }
    // Vertical: v is a last child, so it must not claim a right neighbor.
    if (!p.right_same) {
      for (uint32_t parent_code = 0; parent_code < kNumProfiles;
           ++parent_code) {
        a.AddVertical(own, s, parent_code);
      }
    }
    // Root: no parent, no siblings.
    if (!p.parent_same && !p.left_same && !p.right_same) {
      a.SetAccepting(own, s);
    }
  }
  return a;
}

namespace {

/// Region decomposition: letters grouped by their membership pattern across
/// the condition types.
struct Regions {
  /// region index per extended letter.
  std::vector<size_t> of_letter;
  /// membership[r][k]: region r lies inside type k.
  std::vector<std::vector<char>> membership;

  size_t count() const { return membership.size(); }
};

Regions ComputeRegions(const Puzzle& puzzle,
                       const std::vector<const TypeSet*>& types) {
  Regions out;
  out.of_letter.assign(puzzle.ext.size(), 0);
  std::map<std::vector<char>, size_t> index;
  for (ExtSymbol l = 0; l < puzzle.ext.size(); ++l) {
    std::vector<char> pattern(types.size());
    for (size_t k = 0; k < types.size(); ++k) {
      pattern[k] = TypeContains(*types[k], l);
    }
    auto [it, fresh] = index.emplace(pattern, index.size());
    if (fresh) out.membership.push_back(pattern);
    out.of_letter[l] = it->second;
  }
  return out;
}

/// Count bucket of a region within an abstract class type.
enum Bucket : int { kZero = 0, kOne = 1, kMany = 2 };

/// Whether the abstract class type satisfies every class condition. `types`
/// aligns with the condition list flattened as (alpha, beta?) entries via
/// `type_index`.
bool ClassTypeValid(const std::vector<int>& tau, const Regions& regions,
                    const std::vector<SimpleFormula>& conditions,
                    const std::vector<std::pair<size_t, size_t>>& type_index) {
  bool any_nonzero = false;
  for (int b : tau) any_nonzero |= b != kZero;
  if (!any_nonzero) return false;  // classes are nonempty
  for (size_t c = 0; c < conditions.size(); ++c) {
    const SimpleFormula& cond = conditions[c];
    auto count_in = [&](size_t type_k, bool* unbounded) {
      size_t total = 0;
      *unbounded = false;
      for (size_t r = 0; r < regions.count(); ++r) {
        if (!regions.membership[r][type_k]) continue;
        if (tau[r] == kOne) ++total;
        if (tau[r] == kMany) {
          total += 2;
          *unbounded = true;
        }
      }
      return total;
    };
    bool unbounded_a = false;
    size_t count_a = count_in(type_index[c].first, &unbounded_a);
    switch (cond.kind) {
      case SimpleFormula::Kind::kAtMostOne:
        if (count_a > 1 || unbounded_a) return false;
        break;
      case SimpleFormula::Kind::kNoCoexist: {
        bool unbounded_b = false;
        size_t count_b = count_in(type_index[c].second, &unbounded_b);
        if (count_a > 0 && count_b > 0) return false;
        break;
      }
      case SimpleFormula::Kind::kImpliesPresence: {
        bool unbounded_b = false;
        size_t count_b = count_in(type_index[c].second, &unbounded_b);
        if (count_a > 0 && count_b == 0) return false;
        break;
      }
      case SimpleFormula::Kind::kProfile:
        break;
    }
  }
  return true;
}

}  // namespace

Result<CountingResult> CheckPuzzleUnsatByCounting(
    const Puzzle& puzzle, const CountingOptions& options) {
  FO2DT_TRACE_SPAN(names::kModPuzzleCounting);
  // Self time = region/class-type abstraction building; the LCTA emptiness
  // call below carries its own kLcta timer.
  ScopedPhaseTimer phase_timer(Phase::kPuzzle, options.lcta.exec);
  ScopedPhaseMemory phase_memory(Phase::kPuzzle, options.lcta.exec);
  CountingResult out;
  // Collect condition types (alpha, beta) with indices.
  std::vector<const TypeSet*> types;
  std::vector<std::pair<size_t, size_t>> type_index;  // per condition
  for (const SimpleFormula& c : puzzle.class_conditions) {
    size_t ai = types.size();
    types.push_back(&c.alpha);
    size_t bi = ai;
    if (c.kind == SimpleFormula::Kind::kNoCoexist ||
        c.kind == SimpleFormula::Kind::kImpliesPresence) {
      bi = types.size();
      types.push_back(&c.beta);
    }
    type_index.emplace_back(ai, bi);
  }
  Regions regions = ComputeRegions(puzzle, types);
  out.num_regions = regions.count();

  // Enumerate abstract class types tau : regions -> {0, 1, many}.
  std::vector<std::vector<int>> valid_types;
  {
    double total = std::pow(3.0, static_cast<double>(regions.count()));
    if (total > 4e6) {
      out.verdict = CountingVerdict::kInconclusive;
      return out;  // abstraction too large to enumerate
    }
    std::vector<int> tau(regions.count(), kZero);
    // Up to 4e6 combinations (guarded above): poll the governor so a
    // deadline or cancellation can cut the enumeration short.
    ExecCheckpoint checkpoint(options.lcta.exec, nullptr,
                              names::kModPuzzleCounting);
    for (;;) {
      FO2DT_RETURN_NOT_OK(checkpoint.Tick());
      if (ClassTypeValid(tau, regions, puzzle.class_conditions, type_index)) {
        valid_types.push_back(tau);
        if (valid_types.size() > options.max_class_types) {
          out.verdict = CountingVerdict::kInconclusive;
          out.num_class_types = valid_types.size();
          return out;
        }
      }
      size_t i = 0;
      // fo2dt-lint: allow(no-checkpoint, odometer carry bounded by the region count)
      while (i < tau.size()) {
        if (++tau[i] <= kMany) break;
        tau[i] = kZero;
        ++i;
      }
      if (i == tau.size()) break;
    }
  }
  out.num_class_types = valid_types.size();

  // Restrict the language to realizable profiled trees.
  FO2DT_ASSIGN_OR_RETURN(
      TreeAutomaton realizable,
      TreeAutomaton::Intersect(puzzle.language,
                               ProfileCoherenceAutomaton(puzzle.ext)));

  // LCTA variable blocks: states | symbol counts | aux.
  // Aux layout: m_tau per valid type, then one slack per (tau, many-region).
  const VarId q = static_cast<VarId>(realizable.num_states());
  const VarId num_symbols = static_cast<VarId>(realizable.num_symbols());
  const VarId aux_base = q + num_symbols;
  std::vector<VarId> m_var(valid_types.size());
  std::vector<std::map<size_t, VarId>> slack_var(valid_types.size());
  VarId next_aux = aux_base;
  for (size_t ti = 0; ti < valid_types.size(); ++ti) {
    m_var[ti] = next_aux++;
    for (size_t r = 0; r < regions.count(); ++r) {
      if (valid_types[ti][r] == kMany) slack_var[ti][r] = next_aux++;
    }
  }

  std::vector<LinearConstraint> parts;
  // Region balance: total letters in region r == contributions of classes.
  for (size_t r = 0; r < regions.count(); ++r) {
    LinearExpr e;
    for (ExtSymbol l = 0; l < puzzle.ext.size(); ++l) {
      if (regions.of_letter[l] != r) continue;
      for (uint32_t p = 0; p < kNumProfiles; ++p) {
        e.AddTerm(q + static_cast<VarId>(puzzle.ext.Profiled(l, p)), BigInt(1));
      }
    }
    for (size_t ti = 0; ti < valid_types.size(); ++ti) {
      int b = valid_types[ti][r];
      if (b == kOne) e.AddTerm(m_var[ti], BigInt(-1));
      if (b == kMany) {
        e.AddTerm(m_var[ti], BigInt(-2));
        e.AddTerm(slack_var[ti].at(r), BigInt(-1));
      }
    }
    parts.push_back(LinearConstraint::Eq(std::move(e)));
  }
  // Singleton refinement: nodes whose profile claims any same-data neighbor
  // live in classes of size >= 2, so the nodes with an all-different profile
  // must suffice to populate every singleton class.
  {
    LinearExpr e;
    for (ExtSymbol l = 0; l < puzzle.ext.size(); ++l) {
      e.AddTerm(q + static_cast<VarId>(puzzle.ext.Profiled(l, 0)), BigInt(1));
    }
    for (size_t ti = 0; ti < valid_types.size(); ++ti) {
      size_t ones = 0;
      size_t manys = 0;
      for (size_t r = 0; r < regions.count(); ++r) {
        if (valid_types[ti][r] == kOne) ++ones;
        if (valid_types[ti][r] == kMany) ++manys;
      }
      if (ones == 1 && manys == 0) e.AddTerm(m_var[ti], BigInt(-1));
    }
    parts.push_back(LinearConstraint::Ge(std::move(e)));
  }

  Lcta lcta;
  lcta.automaton = std::move(realizable);
  lcta.constraint = LinearConstraint::And(std::move(parts));
  lcta.use_symbol_counts = true;
  lcta.num_aux = next_aux - aux_base;
  FO2DT_ASSIGN_OR_RETURN(LctaEmptinessResult r,
                         CheckLctaEmptiness(lcta, options.lcta));
  out.ilp_nodes = r.ilp_nodes;
  out.verdict =
      r.empty ? CountingVerdict::kUnsat : CountingVerdict::kInconclusive;
  return out;
}

}  // namespace fo2dt
