#include "puzzle/puzzle.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "common/trace.h"
#include "datatree/zones.h"

namespace fo2dt {

Result<Puzzle> PuzzleFromBlock(const DnfBlock& block, const ExtAlphabet& ext) {
  FO2DT_TRACE_SPAN(names::kModPuzzleBuild);
  ScopedPhaseTimer phase_timer(Phase::kPuzzle);
  ScopedPhaseMemory phase_memory(Phase::kPuzzle);
  Puzzle out;
  out.ext = ext;
  const size_t num_profiled = ext.profiled_size();
  out.language = TreeAutomaton::Universal(num_profiled);
  for (const TreeAutomaton& a : block.regular) {
    if (a.num_symbols() != num_profiled) {
      return Status::InvalidArgument(
          "regular constraint alphabet does not match the profiled extended "
          "alphabet");
    }
    FO2DT_ASSIGN_OR_RETURN(out.language,
                           TreeAutomaton::Intersect(out.language, a));
  }
  for (const SimpleFormula& s : block.simples) {
    if (s.kind == SimpleFormula::Kind::kProfile) {
      // (e): positions of type alpha only take profiles in the mask; a
      // letter-filter automaton over the profiled alphabet.
      std::vector<bool> allowed(num_profiled, true);
      for (ExtSymbol l = 0; l < ext.size(); ++l) {
        if (!TypeContains(s.alpha, l)) continue;
        for (uint32_t p = 0; p < kNumProfiles; ++p) {
          if (!(s.profile_mask & (1u << p))) {
            allowed[ext.Profiled(l, p)] = false;
          }
        }
      }
      TreeAutomaton filter = TreeAutomaton::LabelFilter(num_profiled, allowed);
      FO2DT_ASSIGN_OR_RETURN(out.language,
                             TreeAutomaton::Intersect(out.language, filter));
    } else {
      out.class_conditions.push_back(s);
    }
  }
  return out;
}

Result<bool> IsPuzzleSolution(const Puzzle& puzzle, const DataTree& t,
                              const PredInterpretation& interp) {
  FO2DT_ASSIGN_OR_RETURN(DataTree profiled,
                         BuildExtProfiledTree(t, puzzle.ext, interp));
  if (!puzzle.language.Accepts(profiled)) return false;
  for (const SimpleFormula& s : puzzle.class_conditions) {
    FO2DT_ASSIGN_OR_RETURN(bool ok, EvaluateSimple(s, t, puzzle.ext, interp));
    if (!ok) return false;
  }
  return true;
}

namespace {

bool AnyIn(const TypeSet& type, const TypeSet& set) {
  for (size_t i = 0; i < type.size(); ++i) {
    if (type[i] && set[i]) return true;
  }
  return false;
}

size_t CountIn(const TypeSet& type, const TypeSet& set) {
  size_t n = 0;
  for (size_t i = 0; i < type.size(); ++i) {
    if (type[i] && set[i]) ++n;
  }
  return n;
}

}  // namespace

bool PairSatisfiesConditions(const AcceptingPair& pair,
                             const std::vector<SimpleFormula>& conditions) {
  for (const SimpleFormula& c : conditions) {
    switch (c.kind) {
      case SimpleFormula::Kind::kAtMostOne:
        if (AnyIn(c.alpha, pair.sheep)) return false;
        if (CountIn(c.alpha, pair.dogs) > 1) return false;
        break;
      case SimpleFormula::Kind::kNoCoexist: {
        bool possible_a = AnyIn(c.alpha, pair.dogs) || AnyIn(c.alpha, pair.sheep);
        bool possible_b = AnyIn(c.beta, pair.dogs) || AnyIn(c.beta, pair.sheep);
        if (possible_a && possible_b) return false;
        break;
      }
      case SimpleFormula::Kind::kImpliesPresence: {
        bool possible_a = AnyIn(c.alpha, pair.dogs) || AnyIn(c.alpha, pair.sheep);
        bool guaranteed_b = AnyIn(c.beta, pair.dogs);
        if (possible_a && !guaranteed_b) return false;
        break;
      }
      case SimpleFormula::Kind::kProfile:
        break;  // folded into L, not part of F
    }
  }
  return true;
}

bool ClassConformsToPair(const std::vector<size_t>& letter_counts,
                         const AcceptingPair& pair) {
  for (size_t l = 0; l < letter_counts.size(); ++l) {
    bool dog = l < pair.dogs.size() && pair.dogs[l];
    bool sheep = l < pair.sheep.size() && pair.sheep[l];
    if (dog) {
      if (letter_counts[l] != 1) return false;  // dogs occur exactly once
    } else if (!sheep && letter_counts[l] != 0) {
      return false;  // letters outside D ∪ S are forbidden
    }
  }
  return true;
}

Result<DnfBlock> NormalizeImpliesPresence(const DnfBlock& block,
                                          ExtAlphabet* ext) {
  size_t num_markers = 0;
  for (const SimpleFormula& s : block.simples) {
    if (s.kind == SimpleFormula::Kind::kImpliesPresence) ++num_markers;
  }
  if (num_markers == 0) return block;
  ExtAlphabet old = *ext;
  ExtAlphabet grown = old;
  grown.num_preds += static_cast<PredId>(num_markers);
  if (grown.num_preds > 20) {
    return Status::ResourceExhausted(StringFormat(
        "marker normalization in puzzle.normalize would exceed the predicate "
        "budget: %u of 20 predicates",
        static_cast<unsigned>(grown.num_preds)));
  }

  // Embedding: a grown letter maps to the old letter by dropping marker bits.
  auto embed_type = [&](const TypeSet& t) {
    TypeSet out(grown.size(), 0);
    for (ExtSymbol s = 0; s < grown.size(); ++s) {
      ExtSymbol base = old.Make(grown.LabelOf(s),
                                grown.BitsOf(s) & ((1u << old.num_preds) - 1));
      out[s] = t[base];
    }
    return out;
  };
  auto marker_type = [&](PredId marker) {
    TypeSet out(grown.size(), 0);
    for (ExtSymbol s = 0; s < grown.size(); ++s) {
      out[s] = (grown.BitsOf(s) >> marker) & 1u;
    }
    return out;
  };

  DnfBlock out;
  // Re-embed automata: each automaton over the old profiled alphabet becomes
  // one over the grown profiled alphabet by duplicating transitions over all
  // marker-bit patterns.
  for (const TreeAutomaton& a : block.regular) {
    TreeAutomaton b(grown.profiled_size(), a.num_states());
    const uint32_t marker_patterns = 1u << num_markers;
    auto lift = [&](Symbol old_profiled) {
      // old profiled symbol = old ext letter * 8 + profile.
      ExtSymbol old_letter = old.ExtOf(old_profiled);
      uint32_t profile = old.ProfileOf(old_profiled);
      std::vector<Symbol> lifted;
      for (uint32_t m = 0; m < marker_patterns; ++m) {
        ExtSymbol grown_letter =
            grown.Make(old.LabelOf(old_letter),
                       old.BitsOf(old_letter) | (m << old.num_preds));
        lifted.push_back(grown.Profiled(grown_letter, profile));
      }
      return lifted;
    };
    for (const auto& [f, sym, to] : a.horizontal()) {
      for (Symbol s : lift(sym)) b.AddHorizontal(f, s, to);
    }
    for (const auto& [f, sym, to] : a.vertical()) {
      for (Symbol s : lift(sym)) b.AddVertical(f, s, to);
    }
    for (TreeState q : a.initial()) b.SetInitial(q);
    for (TreeState q : a.non_first()) b.SetNonFirst(q);
    for (const auto& [q, sym] : a.accepting()) {
      for (Symbol s : lift(sym)) b.SetAccepting(q, s);
    }
    out.regular.push_back(std::move(b));
  }

  PredId next_marker = old.num_preds;
  for (const SimpleFormula& s : block.simples) {
    if (s.kind != SimpleFormula::Kind::kImpliesPresence) {
      SimpleFormula lifted = s;
      lifted.alpha = embed_type(s.alpha);
      if (!s.beta.empty()) lifted.beta = embed_type(s.beta);
      out.simples.push_back(std::move(lifted));
      continue;
    }
    TypeSet beta_marked =
        TypeIntersect(embed_type(s.beta), marker_type(next_marker));
    SimpleFormula at_most_one;
    at_most_one.kind = SimpleFormula::Kind::kAtMostOne;
    at_most_one.alpha = beta_marked;
    out.simples.push_back(std::move(at_most_one));
    SimpleFormula implies;
    implies.kind = SimpleFormula::Kind::kImpliesPresence;
    implies.alpha = embed_type(s.alpha);
    implies.beta = beta_marked;
    out.simples.push_back(std::move(implies));
    ++next_marker;
  }
  *ext = grown;
  return out;
}

namespace {

/// Per-condition tracker automaton for the accepting-pair DP. States are
/// small ints; kDead rejects.
struct Tracker {
  static constexpr int kDead = -1;
  const SimpleFormula* condition;

  int num_states() const {
    switch (condition->kind) {
      case SimpleFormula::Kind::kAtMostOne:
        return 2;  // 0/1 dog letters of type alpha seen
      default:
        return 4;  // two presence bits
    }
  }
  int initial() const { return 0; }

  /// choice: 0 = absent, 1 = dog, 2 = sheep.
  int Step(int state, ExtSymbol letter, int choice) const {
    if (choice == 0) return state;
    bool in_a = TypeContains(condition->alpha, letter);
    bool in_b = condition->kind != SimpleFormula::Kind::kAtMostOne &&
                TypeContains(condition->beta, letter);
    switch (condition->kind) {
      case SimpleFormula::Kind::kAtMostOne:
        if (!in_a) return state;
        if (choice == 2) return kDead;  // alpha letters may not be sheep
        return state == 0 ? 1 : kDead;
      case SimpleFormula::Kind::kNoCoexist: {
        int s = state;
        if (in_a) s |= 1;  // alpha possible
        if (in_b) s |= 2;  // beta possible
        return s;
      }
      case SimpleFormula::Kind::kImpliesPresence: {
        int s = state;
        if (in_a) s |= 1;                  // alpha possible
        if (in_b && choice == 1) s |= 2;   // beta guaranteed via a dog
        return s;
      }
      case SimpleFormula::Kind::kProfile:
        return state;
    }
    return state;
  }

  bool Accepts(int state) const {
    switch (condition->kind) {
      case SimpleFormula::Kind::kAtMostOne:
        return true;  // death handled in Step
      case SimpleFormula::Kind::kNoCoexist:
        return state != 3;
      case SimpleFormula::Kind::kImpliesPresence:
        return (state & 1) == 0 || (state & 2) != 0;
      case SimpleFormula::Kind::kProfile:
        return true;
    }
    return true;
  }
};

}  // namespace

BigInt CountAcceptingPairs(const Puzzle& puzzle) {
  std::vector<Tracker> trackers;
  for (const SimpleFormula& c : puzzle.class_conditions) {
    if (c.kind != SimpleFormula::Kind::kProfile) trackers.push_back({&c});
  }
  // DP over letters; composite state = vector of tracker states.
  std::map<std::vector<int>, BigInt> dp;
  std::vector<int> init(trackers.size());
  for (size_t i = 0; i < trackers.size(); ++i) init[i] = trackers[i].initial();
  dp[init] = BigInt(1);
  for (ExtSymbol l = 0; l < puzzle.ext.size(); ++l) {
    std::map<std::vector<int>, BigInt> next;
    for (const auto& [state, count] : dp) {
      for (int choice = 0; choice < 3; ++choice) {
        std::vector<int> ns = state;
        bool dead = false;
        for (size_t i = 0; i < trackers.size(); ++i) {
          ns[i] = trackers[i].Step(state[i], l, choice);
          if (ns[i] == Tracker::kDead) {
            dead = true;
            break;
          }
        }
        if (dead) continue;
        next[ns] += count;
      }
    }
    dp = std::move(next);
  }
  BigInt total(0);
  for (const auto& [state, count] : dp) {
    bool ok = true;
    for (size_t i = 0; i < trackers.size(); ++i) {
      if (!trackers[i].Accepts(state[i])) {
        ok = false;
        break;
      }
    }
    if (ok) total += count;
  }
  return total;
}

namespace {

BigInt BigIntPow(const BigInt& base, uint64_t exp) {
  BigInt result(1);
  BigInt b = base;
  // fo2dt-lint: allow(no-checkpoint, square-and-multiply runs at most 64 iterations)
  while (exp > 0) {
    if (exp & 1) result *= b;
    b *= b;
    exp >>= 1;
  }
  return result;
}

}  // namespace

TableIConstants ComputeTableIConstants(const Puzzle& puzzle) {
  TableIConstants out;
  const uint64_t q = puzzle.language.num_states();
  const uint64_t sigma = puzzle.ext.profiled_size();
  out.f_size = CountAcceptingPairs(puzzle);
  BigInt q_pow_q = BigIntPow(BigInt(static_cast<int64_t>(q)), q);
  out.m1 = out.f_size * q_pow_q;
  out.m2 = out.m1;
  out.m3 = out.m1;
  out.n1 = BigInt(static_cast<int64_t>(q * q * sigma));
  out.n2 = BigInt(static_cast<int64_t>(sigma * q * q * q));
  out.n3 = BigInt(static_cast<int64_t>(sigma * q * q));
  out.m = out.m1 + out.m2 + out.m3;
  // N = (N1 * N2)^(N3 + 1); only materialized when it stays manageable.
  BigInt base = out.n1 * out.n2;
  double log10_base = std::log10(std::max(1.0, base.ToDouble()));
  uint64_t exp = static_cast<uint64_t>(sigma * q * q + 1);
  double digits = log10_base * static_cast<double>(exp);
  out.n_digits = static_cast<size_t>(digits) + 1;
  if (digits < 20000 && !base.IsZero()) {
    out.n = BigIntPow(base, exp);
    out.n_digits = out.n.ToString().size();
  } else {
    out.n = BigInt(0);  // too large to materialize; see n_digits
  }
  return out;
}

}  // namespace fo2dt
