/// \file bounded_solver.h
/// \brief Exact bounded-size puzzle solving.
///
/// The paper's full decision procedure rests on the small model property
/// (Proposition 2) whose bound N = (N1·N2)^(N3+1) is astronomically large —
/// a 3NEXPTIME procedure. This solver is the same search with the
/// theoretical bound replaced by a configurable one: it enumerates all data
/// trees up to `max_nodes` nodes (shapes × extended labelings × data
/// partitions) with aggressive pruning, so it is
///   * sound in both directions within the bound: kSat comes with a checked
///     witness; kUnsatWithinBound is exhaustive for the bounded universe;
///   * a full decision procedure whenever the Table I bound itself is below
///     the configured limit (only for degenerate puzzles, as the paper's
///     complexity analysis predicts).

#pragma once

#include "common/execution_context.h"
#include "puzzle/puzzle.h"

namespace fo2dt {

/// \brief Knobs for the bounded search.
struct BoundedSolveOptions {
  /// Largest tree size enumerated.
  size_t max_nodes = 6;
  /// DFS assignment-step budget across the whole search.
  uint64_t max_steps = 20000000;
  /// Optional execution governor: its deadline/cancellation aborts the DFS
  /// with a Status error (amortized checks; never a verdict). Null =
  /// ungoverned.
  const ExecutionContext* exec = nullptr;
};

enum class BoundedVerdict {
  kSat,              ///< witness found (and verified)
  kUnsatWithinBound, ///< no solution with at most max_nodes nodes exists
  kBudgetExhausted,  ///< step budget ran out before the bound was exhausted
};

/// \brief Outcome of a bounded solve.
struct BoundedSolveResult {
  BoundedVerdict verdict = BoundedVerdict::kUnsatWithinBound;
  /// Witness over base labels with data values; meaningful iff kSat.
  DataTree witness;
  /// Predicate interpretation of the witness; meaningful iff kSat.
  PredInterpretation interp;
  uint64_t steps = 0;
  /// Which budget died (kind == kStepBudget) when the verdict is
  /// kBudgetExhausted; kind == kNone otherwise.
  StopReason stop_reason;
};

/// Solves \p puzzle over trees of bounded size.
Result<BoundedSolveResult> SolvePuzzleBounded(
    const Puzzle& puzzle, const BoundedSolveOptions& options = {});

}  // namespace fo2dt

