/// \file puzzle.h
/// \brief Puzzles (Section III): the normal form for EMSO²(∼,+1).
///
/// A puzzle over Σ is a pair (L, F) where L is a regular language over
/// Σ × Pro and F a set of accepting pairs (D, S) of disjoint letter sets. A
/// data tree t solves (L, F) when the data erasure of its profiled tree lies
/// in L and every class matches some pair: all its labels come from D ∪ S
/// and every "dog" letter in D occurs exactly once ("sheep" letters in S are
/// unrestricted).
///
/// Representation notes.
/// * Σ here is the extended alphabet (base labels × predicate bit patterns)
///   of a data normal form, so puzzle letters are full atomic types.
/// * F is kept *symbolically*, as the class-level simple formulas (kinds
///   b/c/d) it stems from: |F| is astronomically large (Table I feeds on
///   |F| ∈ |Σ|-exponential counts), so enumerating pairs is hopeless, while
///   checking a concrete pair — or a concrete class — against the simple
///   formulas is trivial. CountAcceptingPairs computes |F| exactly (as a
///   BigInt) by dynamic programming without enumeration.
/// * Lemma 1 soundness requires the classic marker normalization of (d)
///   formulas ("each class with α has a β" becomes "…has exactly one marked
///   β" for a fresh marker predicate); NormalizeImpliesPresence performs it.
///   After normalization, class-satisfaction and pair-satisfaction coincide.

#pragma once

#include <vector>

#include "arith/bigint.h"
#include "automata/tree_automaton.h"
#include "logic/dnf.h"

namespace fo2dt {

/// \brief A puzzle (L, F) with F kept symbolically.
struct Puzzle {
  ExtAlphabet ext;
  /// L: automaton over the profiled extended alphabet
  /// (ext.profiled_size() symbols).
  TreeAutomaton language{0, 0};
  /// F, symbolically: class-level simple formulas (kinds b, c, d only).
  std::vector<SimpleFormula> class_conditions;
};

/// \brief Lemma 1: builds the puzzle of one data-normal-form block.
///
/// The language is the intersection of the block's regular constraints, the
/// profile restrictions (kind e), and the universal automaton; class-level
/// simples become the symbolic F.
Result<Puzzle> PuzzleFromBlock(const DnfBlock& block, const ExtAlphabet& ext);

/// \brief Checks whether (t, interp) solves the puzzle: the profiled extended
/// erasure is accepted by L and every class satisfies the class conditions.
Result<bool> IsPuzzleSolution(const Puzzle& puzzle, const DataTree& t,
                              const PredInterpretation& interp);

/// \brief An explicit accepting pair (paper representation of F elements).
struct AcceptingPair {
  /// Characteristic vectors over the extended alphabet; disjoint.
  TypeSet dogs;   // D: exactly-once letters
  TypeSet sheep;  // S: unrestricted letters
};

/// \brief Whether EVERY class conforming to (D, S) satisfies the class
/// conditions (the pair-level reading of F; exact after normalization).
bool PairSatisfiesConditions(const AcceptingPair& pair,
                             const std::vector<SimpleFormula>& conditions);

/// \brief Whether a concrete class (multiset of letters, given as counts per
/// extended letter) conforms to the pair.
bool ClassConformsToPair(const std::vector<size_t>& letter_counts,
                         const AcceptingPair& pair);

/// \brief Rewrites every kImpliesPresence(α, β) in \p block into
/// kAtMostOne(β∧R) ∧ kImpliesPresence(α, β∧R) with a fresh marker predicate
/// R, growing the alphabet; afterwards pair-level and class-level
/// satisfaction coincide (Lemma 1's construction). Types of all other
/// simples and automata are re-embedded into the grown alphabet.
Result<DnfBlock> NormalizeImpliesPresence(const DnfBlock& block,
                                          ExtAlphabet* ext);

/// \brief |F|: the exact number of accepting pairs (D, S), via DP over
/// letters with per-condition trackers. Exponentially large, hence BigInt.
BigInt CountAcceptingPairs(const Puzzle& puzzle);

/// \brief Concrete instantiation of Table I's pruning constants.
///
/// The paper gives asymptotic forms (M_i = |F|·|Q|^O(|Q|), N_1 = O(|Q|²|Σ|),
/// N_2 = O(|Σ||Q|³), N_3 = O(|Σ||Q|²)); we instantiate every O(·) with
/// constant 1 (and |Q|^O(|Q|) as |Q|^|Q|) to obtain concrete numbers, and
/// derive M = M1+M2+M3, N = (N1·N2)^(N3+1) as in Section III-B.
struct TableIConstants {
  BigInt f_size;  ///< |F|
  BigInt m1, n1, m2, n2, m3, n3;
  BigInt m;  ///< M = M1 + M2 + M3
  BigInt n;  ///< N = (N1 · N2)^(N3 + 1); astronomically large
  /// Number of decimal digits of N (N itself may be too large to print).
  size_t n_digits;
};

/// Computes the Table I constants for \p puzzle.
TableIConstants ComputeTableIConstants(const Puzzle& puzzle);

}  // namespace fo2dt

