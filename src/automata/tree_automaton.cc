#include "automata/tree_automaton.h"

#include <algorithm>
#include <cassert>

#include "common/arena.h"
#include "common/strings.h"

namespace fo2dt {

namespace {
// 64-bit key for (from, symbol, to) triples used by the has-transition sets.
uint64_t TripleKey(TreeState from, Symbol a, TreeState to) {
  return (static_cast<uint64_t>(from) << 42) ^
         (static_cast<uint64_t>(a) << 21) ^ static_cast<uint64_t>(to);
}
}  // namespace

TreeAutomaton::TreeAutomaton(size_t num_symbols, size_t num_states)
    : num_symbols_(num_symbols), num_states_(num_states) {}

TreeState TreeAutomaton::AddState() {
  ++num_states_;
  InvalidateIndex();  // the CSR offset table is sized by |Q|·|Σ| cells
  return static_cast<TreeState>(num_states_ - 1);
}

void TreeAutomaton::AddHorizontal(TreeState from, Symbol a, TreeState to) {
  if (!horizontal_set_.insert(TripleKey(from, a, to)).second) return;
  horizontal_list_.emplace_back(from, a, to);
  InvalidateIndex();
}

void TreeAutomaton::AddVertical(TreeState from, Symbol a, TreeState to) {
  if (!vertical_set_.insert(TripleKey(from, a, to)).second) return;
  vertical_list_.emplace_back(from, a, to);
  InvalidateIndex();
}

void TreeAutomaton::SetInitial(TreeState q) { initial_.Insert(q); }

void TreeAutomaton::SetNonFirst(TreeState q) { non_first_.Insert(q); }

void TreeAutomaton::SetAccepting(TreeState q, Symbol a) {
  accepting_.Insert(static_cast<uint32_t>(Key(q, a)));
}

bool TreeAutomaton::HasHorizontal(TreeState from, Symbol a, TreeState to) const {
  return horizontal_set_.count(TripleKey(from, a, to)) > 0;
}

bool TreeAutomaton::HasVertical(TreeState from, Symbol a, TreeState to) const {
  return vertical_set_.count(TripleKey(from, a, to)) > 0;
}

bool TreeAutomaton::IsAccepting(TreeState q, Symbol a) const {
  return accepting_.Contains(static_cast<uint32_t>(Key(q, a)));
}

void TreeAutomaton::BuildCsr(
    const std::vector<std::tuple<TreeState, Symbol, TreeState>>& list,
    Csr* csr) const {
  const size_t cells = num_states_ * num_symbols_;
  csr->offsets.assign(cells + 1, 0);
  for (const auto& [f, a, to] : list) {
    (void)to;
    ++csr->offsets[Key(f, a) + 1];
  }
  for (size_t k = 0; k < cells; ++k) csr->offsets[k + 1] += csr->offsets[k];
  csr->targets.resize(list.size());
  // Stable counting sort: per-key insertion order is preserved, so witness
  // extraction walks successors in exactly the order AddHorizontal saw them.
  std::vector<uint32_t> cursor(csr->offsets.begin(), csr->offsets.end() - 1);
  for (const auto& [f, a, to] : list) csr->targets[cursor[Key(f, a)]++] = to;
}

// Double-checked publication; see the LazyIndex protocol comment in the
// header. Analysis is opted out because the reader side legitimately
// accesses the CSR vectors without holding mu once fresh is published.
void TreeAutomaton::EnsureIndex() const {
  // Fast path: acquire pairs with the release-store below, publishing the
  // built vectors to this thread.
  if (index_.fresh.load(std::memory_order_acquire)) return;
  ScopedRankedLock lock(index_.mu);
  // Relaxed is sufficient under mu: the lock's own ordering makes a
  // concurrent builder's writes (data AND flag) visible here.
  if (index_.fresh.load(std::memory_order_relaxed)) return;
  BuildCsr(horizontal_list_, &index_.horizontal);
  BuildCsr(vertical_list_, &index_.vertical);
  // Release: every CSR write above happens-before any reader's acquire.
  index_.fresh.store(true, std::memory_order_release);
  assert(index_.fresh.load(std::memory_order_relaxed));
}

StateSpan TreeAutomaton::HorizontalSuccessors(TreeState q, Symbol a) const {
  EnsureIndex();
  const Csr& c = index_.horizontal;
  const size_t k = Key(q, a);
  return {c.targets.data() + c.offsets[k], c.offsets[k + 1] - c.offsets[k]};
}

StateSpan TreeAutomaton::VerticalSuccessors(TreeState q, Symbol a) const {
  EnsureIndex();
  const Csr& c = index_.vertical;
  const size_t k = Key(q, a);
  return {c.targets.data() + c.offsets[k], c.offsets[k + 1] - c.offsets[k]};
}

bool TreeAutomaton::IsAcceptingRun(const DataTree& t, const TreeRun& run) const {
  if (t.empty()) return false;
  if (run.size() != t.size()) return false;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (run[v] >= num_states_) return false;
    NodeId next = t.next_sibling(v);
    if (next != kNoNode) {
      if (!HasHorizontal(run[v], t.label(v), run[next])) return false;
    } else if (t.parent(v) != kNoNode) {
      if (!HasVertical(run[v], t.label(v), run[t.parent(v)])) return false;
    }
    // Every leaf must carry an initial state (see header note).
    if (t.first_child(v) == kNoNode && !IsInitial(run[v])) return false;
    // Non-first states require a horizontal predecessor.
    if (t.prev_sibling(v) == kNoNode && IsNonFirst(run[v])) return false;
  }
  return IsAccepting(run[t.root()], t.label(t.root()));
}

namespace {

/// Post-order traversal (children before parent, siblings left to right).
std::vector<NodeId> PostOrder(const DataTree& t) {
  std::vector<NodeId> out;
  if (t.empty()) return out;
  out.reserve(t.size());
  struct Item {
    NodeId node;
    bool expanded;
  };
  std::vector<Item> stack = {{t.root(), false}};
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.expanded) {
      out.push_back(it.node);
      continue;
    }
    stack.push_back({it.node, true});
    std::vector<NodeId> kids = t.Children(it.node);
    for (size_t i = kids.size(); i-- > 0;) stack.push_back({kids[i], false});
  }
  return out;
}

/// Copies a Bitset into a \p ws-word arena row (padding with zeros).
void CopyMask(const Bitset& set, uint64_t* row, size_t ws) {
  const std::vector<uint64_t>& words = set.words();
  const size_t n = words.size() < ws ? words.size() : ws;
  for (size_t w = 0; w < n; ++w) row[w] = words[w];
}

}  // namespace

// Computes, for each node v, the set P(v) of states consistent with v's
// subtree and with v's left siblings (and their subtrees). NotFound when some
// node admits no state. The propagation runs over |Q|-bit rows carved from
// the solve arena: one row per node plus three scratch rows, no per-node
// containers.
Result<std::vector<std::vector<TreeState>>> TreeAutomaton::AcceptingRunStates(
    const DataTree& t) const {
  if (t.empty()) return Status::InvalidArgument("empty tree has no runs");
  EnsureIndex();
  const size_t ns = num_states_;
  const size_t ws = (ns + 63) / 64;
  SolveArena& arena = SolveArena::ThreadLocal();
  SolveArena::Frame frame(arena);
  uint64_t* p = arena.AllocateArray<uint64_t>(t.size() * ws);
  uint64_t* base = arena.AllocateArray<uint64_t>(ws);
  uint64_t* step = arena.AllocateArray<uint64_t>(ws);
  uint64_t* init_mask = arena.AllocateArray<uint64_t>(ws);
  uint64_t* nf_mask = arena.AllocateArray<uint64_t>(ws);
  CopyMask(initial_, init_mask, ws);
  CopyMask(non_first_, nf_mask, ws);

  const std::vector<NodeId> order = PostOrder(t);
  for (NodeId v : order) {
    const bool is_leaf = t.first_child(v) == kNoNode;
    // Base constraint: leaves take initial states; internal nodes take
    // δv-successors of their last child.
    if (is_leaf) {
      std::copy(init_mask, init_mask + ws, base);
    } else {
      std::fill(base, base + ws, uint64_t{0});
      const NodeId lc = t.last_child(v);
      const Symbol la = t.label(lc);
      ForEachSetBit(p + size_t{lc} * ws, ws, [&](uint32_t q) {
        for (TreeState r : VerticalSuccessors(q, la)) {
          base[r / 64] |= uint64_t{1} << (r % 64);
        }
      });
    }
    uint64_t* row = p + size_t{v} * ws;
    const NodeId prev = t.prev_sibling(v);
    uint64_t any = 0;
    if (prev == kNoNode) {
      // First siblings cannot use non-first states.
      for (size_t w = 0; w < ws; ++w) {
        row[w] = base[w] & ~nf_mask[w];
        any |= row[w];
      }
    } else {
      std::fill(step, step + ws, uint64_t{0});
      const Symbol pa = t.label(prev);
      ForEachSetBit(p + size_t{prev} * ws, ws, [&](uint32_t q) {
        for (TreeState r : HorizontalSuccessors(q, pa)) {
          step[r / 64] |= uint64_t{1} << (r % 64);
        }
      });
      for (size_t w = 0; w < ws; ++w) {
        row[w] = step[w] & base[w];
        any |= row[w];
      }
    }
    if (any == 0) return Status::NotFound("tree admits no run");
  }
  // Filter the root by acceptance; the returned sets are the P(v) sets, with
  // the root restricted to accepting states. (Callers wanting exact
  // per-node accepting-run state sets should use a downward pass; for type
  // assignment under unambiguous schemas P(v) is already exact.)
  uint64_t* root_row = p + size_t{t.root()} * ws;
  const Symbol root_label = t.label(t.root());
  ForEachSetBit(root_row, ws, [&](uint32_t q) {
    if (!IsAccepting(q, root_label)) {
      root_row[q / 64] &= ~(uint64_t{1} << (q % 64));
    }
  });
  uint64_t root_any = 0;
  for (size_t w = 0; w < ws; ++w) root_any |= root_row[w];
  if (root_any == 0) return Status::NotFound("no accepting run");

  std::vector<std::vector<TreeState>> out(t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    ForEachSetBit(p + size_t{v} * ws, ws,
                  [&](uint32_t q) { out[v].push_back(q); });
  }
  return out;
}

bool TreeAutomaton::Accepts(const DataTree& t) const {
  return AcceptingRunStates(t).ok();
}

Result<TreeRun> TreeAutomaton::FindAcceptingRun(const DataTree& t) const {
  FO2DT_ASSIGN_OR_RETURN(std::vector<std::vector<TreeState>> p,
                         AcceptingRunStates(t));
  TreeRun run(t.size(), 0);
  // Assign the root, then per siblinghood choose states right-to-left; the
  // construction of P guarantees every choice extends leftward.
  run[t.root()] = p[t.root()].front();
  std::vector<NodeId> work = {t.root()};
  while (!work.empty()) {
    NodeId v = work.back();
    work.pop_back();
    if (t.first_child(v) == kNoNode) continue;
    std::vector<NodeId> kids = t.Children(v);
    // Choose the last child: must δv-step into run[v].
    TreeState target = run[v];
    NodeId lc = kids.back();
    TreeState chosen = static_cast<TreeState>(num_states_);
    for (TreeState q : p[lc]) {
      if (HasVertical(q, t.label(lc), target)) {
        chosen = q;
        break;
      }
    }
    if (chosen == num_states_) {
      return Status::Internal("run extraction failed at vertical step");
    }
    run[lc] = chosen;
    // Walk left through the siblinghood.
    for (size_t i = kids.size() - 1; i-- > 0;) {
      NodeId cur = kids[i];
      TreeState next_state = run[kids[i + 1]];
      TreeState pick = static_cast<TreeState>(num_states_);
      for (TreeState q : p[cur]) {
        if (HasHorizontal(q, t.label(cur), next_state)) {
          pick = q;
          break;
        }
      }
      if (pick == num_states_) {
        return Status::Internal("run extraction failed at horizontal step");
      }
      run[cur] = pick;
    }
    for (NodeId c : kids) work.push_back(c);
  }
  return run;
}

Result<DataTree> TreeAutomaton::FindWitnessTree() const {
  // Least-fixpoint reachability with explicit derivations.
  //   S(q, a): a node with state q and label a is realizable at some chain
  //            position (with a fully consistent subtree and left context);
  //   U(q):    q is realizable as the state of a node with children (some
  //            realizable last child δv-steps into q).
  // Rules:
  //   (q, a) ∈ S for all a,  if q ∈ (I ∪ U) \ NF          (first position)
  //   (q',a') ∈ S for all a', if (q,a) ∈ S, (q,a,q') ∈ δh, q' ∈ I ∪ U
  //   q' ∈ U                  if (q,a) ∈ S, (q,a,q') ∈ δv
  // Nonempty iff some (q, a) ∈ F has q ∈ (I ∪ U) \ NF.
  const size_t ns = num_states_;
  const size_t na = num_symbols_;
  if (ns == 0 || na == 0) return Status::NotFound("tree automaton is empty");
  EnsureIndex();

  struct SPairInfo {
    enum Kind { kFirstLeaf, kFirstUp, kStepLeaf, kStepUp } kind = kFirstLeaf;
    TreeState prev_q = 0;  // for kStep*: predecessor pair in the chain
    Symbol prev_a = 0;
  };
  struct UpInfo {
    TreeState last_q = 0;  // last child pair producing this state
    Symbol last_a = 0;
  };
  SolveArena& arena = SolveArena::ThreadLocal();
  SolveArena::Frame frame(arena);
  char* in_s = arena.AllocateArray<char>(ns * na);
  SPairInfo* s_info = arena.AllocateArray<SPairInfo>(ns * na);
  char* in_u = arena.AllocateArray<char>(ns);
  UpInfo* u_info = arena.AllocateArray<UpInfo>(ns);
  auto key = [na](TreeState q, Symbol a) { return q * na + a; };

  auto add_s = [&](TreeState q, Symbol a, SPairInfo info) {
    size_t k = key(q, a);
    if (in_s[k]) return false;
    in_s[k] = 1;
    s_info[k] = info;
    return true;
  };

  // Naive saturation sweeps; the sets only grow and are small (|Q|·|Σ|).
  for (TreeState q : initial_) {
    if (!IsNonFirst(q)) {
      for (Symbol a = 0; a < na; ++a) {
        add_s(q, a, SPairInfo{SPairInfo::kFirstLeaf, 0, 0});
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (TreeState q = 0; q < ns; ++q) {
      for (Symbol a = 0; a < na; ++a) {
        if (!in_s[key(q, a)]) continue;
        // δv: parent becomes realizable-with-children.
        for (TreeState r : VerticalSuccessors(q, a)) {
          if (!in_u[r]) {
            in_u[r] = 1;
            u_info[r] = UpInfo{q, a};
            changed = true;
            if (!IsNonFirst(r)) {
              for (Symbol b = 0; b < na; ++b) {
                changed |= add_s(r, b, SPairInfo{SPairInfo::kFirstUp, 0, 0});
              }
            }
          }
        }
        // δh: extend the chain; the successor is a leaf (I) or has
        // children (U).
        for (TreeState r : HorizontalSuccessors(q, a)) {
          if (IsInitial(r)) {
            for (Symbol b = 0; b < na; ++b) {
              changed |= add_s(r, b, SPairInfo{SPairInfo::kStepLeaf, q, a});
            }
          }
          if (in_u[r]) {
            for (Symbol b = 0; b < na; ++b) {
              changed |= add_s(r, b, SPairInfo{SPairInfo::kStepUp, q, a});
            }
          }
        }
      }
    }
  }

  // Root choice: leaf roots give smaller witnesses; prefer them. The pick is
  // stored by value — accepting() yields proxy pairs, not set references.
  std::pair<TreeState, Symbol> pick{0, 0};
  bool have_pick = false;
  bool pick_leaf = false;
  for (const auto& [q, a] : accepting()) {
    if (IsNonFirst(q)) continue;
    if (IsInitial(q)) {
      pick = {q, a};
      have_pick = true;
      pick_leaf = true;
      break;
    }
    if (in_u[q] && !have_pick) {
      pick = {q, a};
      have_pick = true;
    }
  }
  if (!have_pick) {
    return Status::NotFound("tree automaton language is empty");
  }

  DataTree t;
  (void)t.CreateRoot(pick.second, 0);
  // Expand internal nodes by unrolling chain derivations. Task: realize the
  // children of `parent` so the last child is the pair (last_q, last_a).
  struct Task {
    NodeId parent;
    TreeState last_q;
    Symbol last_a;
  };
  std::vector<Task> tasks;
  if (!pick_leaf) {
    tasks.push_back(
        {t.root(), u_info[pick.first].last_q, u_info[pick.first].last_a});
  }
  while (!tasks.empty()) {
    Task task = tasks.back();
    tasks.pop_back();
    // Walk the chain derivation backwards to its first element.
    std::vector<std::pair<TreeState, Symbol>> chain;
    TreeState q = task.last_q;
    Symbol a = task.last_a;
    for (;;) {
      chain.emplace_back(q, a);
      const SPairInfo& info = s_info[key(q, a)];
      if (info.kind == SPairInfo::kFirstLeaf ||
          info.kind == SPairInfo::kFirstUp) {
        break;
      }
      q = info.prev_q;
      a = info.prev_a;
    }
    std::reverse(chain.begin(), chain.end());
    for (const auto& [cq, ca] : chain) {
      NodeId child = t.AppendChild(task.parent, ca, 0).value();
      const SPairInfo& info = s_info[key(cq, ca)];
      if (info.kind == SPairInfo::kFirstUp || info.kind == SPairInfo::kStepUp) {
        tasks.push_back({child, u_info[cq].last_q, u_info[cq].last_a});
      }
    }
  }
  return t;
}

bool TreeAutomaton::IsEmpty() const { return !FindWitnessTree().ok(); }

Result<TreeAutomaton> TreeAutomaton::Intersect(const TreeAutomaton& a,
                                               const TreeAutomaton& b) {
  if (a.num_symbols() != b.num_symbols()) {
    return Status::InvalidArgument("product requires matching alphabets");
  }
  b.EnsureIndex();
  const size_t nb = b.num_states();
  TreeAutomaton out(a.num_symbols(), a.num_states() * nb);
  auto pair_id = [nb](TreeState qa, TreeState qb) {
    return static_cast<TreeState>(qa * nb + qb);
  };
  for (const auto& [fa, sym, ta] : a.horizontal_list_) {
    for (TreeState fb = 0; fb < nb; ++fb) {
      for (TreeState tb : b.HorizontalSuccessors(fb, sym)) {
        out.AddHorizontal(pair_id(fa, fb), sym, pair_id(ta, tb));
      }
    }
  }
  for (const auto& [fa, sym, ta] : a.vertical_list_) {
    for (TreeState fb = 0; fb < nb; ++fb) {
      for (TreeState tb : b.VerticalSuccessors(fb, sym)) {
        out.AddVertical(pair_id(fa, fb), sym, pair_id(ta, tb));
      }
    }
  }
  for (TreeState qa : a.initial_) {
    for (TreeState qb : b.initial_) out.SetInitial(pair_id(qa, qb));
  }
  for (const auto& [qa, sym] : a.accepting()) {
    for (const auto& [qb, sym2] : b.accepting()) {
      if (sym == sym2) out.SetAccepting(pair_id(qa, qb), sym);
    }
  }
  // A pair state demands a horizontal predecessor when either component does.
  for (TreeState qa = 0; qa < a.num_states(); ++qa) {
    for (TreeState qb = 0; qb < nb; ++qb) {
      if (a.IsNonFirst(qa) || b.IsNonFirst(qb)) {
        out.SetNonFirst(pair_id(qa, qb));
      }
    }
  }
  return out;
}

Result<TreeAutomaton> TreeAutomaton::Union(const TreeAutomaton& a,
                                           const TreeAutomaton& b) {
  if (a.num_symbols() != b.num_symbols()) {
    return Status::InvalidArgument("union requires matching alphabets");
  }
  const TreeState off = static_cast<TreeState>(a.num_states());
  TreeAutomaton out(a.num_symbols(), a.num_states() + b.num_states());
  for (const auto& [f, sym, to] : a.horizontal_list_) {
    out.AddHorizontal(f, sym, to);
  }
  for (const auto& [f, sym, to] : a.vertical_list_) out.AddVertical(f, sym, to);
  for (const auto& [f, sym, to] : b.horizontal_list_) {
    out.AddHorizontal(f + off, sym, to + off);
  }
  for (const auto& [f, sym, to] : b.vertical_list_) {
    out.AddVertical(f + off, sym, to + off);
  }
  for (TreeState q : a.initial_) out.SetInitial(q);
  for (TreeState q : b.initial_) out.SetInitial(q + off);
  for (TreeState q : a.non_first_) out.SetNonFirst(q);
  for (TreeState q : b.non_first_) out.SetNonFirst(q + off);
  for (const auto& [q, sym] : a.accepting()) out.SetAccepting(q, sym);
  for (const auto& [q, sym] : b.accepting()) out.SetAccepting(q + off, sym);
  return out;
}

TreeAutomaton TreeAutomaton::RestrictStates(const std::vector<bool>& keep) const {
  const size_t ns = num_states_;
  std::vector<TreeState> remap(ns, 0);
  TreeState next = 0;
  for (TreeState q = 0; q < ns; ++q) {
    if (keep[q]) remap[q] = next++;
  }
  TreeAutomaton out(num_symbols_, next);
  for (const auto& [f, a, to] : horizontal_list_) {
    if (keep[f] && keep[to]) out.AddHorizontal(remap[f], a, remap[to]);
  }
  for (const auto& [f, a, to] : vertical_list_) {
    if (keep[f] && keep[to]) out.AddVertical(remap[f], a, remap[to]);
  }
  // Membership of every surviving state travels with it under the
  // renumbering — in particular a surviving NF state stays NF even when the
  // δh-predecessor that used to reach it was dropped (it then simply has no
  // legal position, which Trim's next round or emptiness checking surfaces).
  for (TreeState q : initial_) {
    if (keep[q]) out.SetInitial(remap[q]);
  }
  for (TreeState q : non_first_) {
    if (keep[q]) out.SetNonFirst(remap[q]);
  }
  for (const auto& [q, a] : accepting()) {
    if (keep[q]) out.SetAccepting(remap[q], a);
  }
  return out;
}

TreeAutomaton TreeAutomaton::Trim() const {
  // Bottom-up realizability: the S/U fixpoint of FindWitnessTree. A state is
  // occupiable when it can sit on an actual node (leaf via I, or via δv from
  // a realizable last child, possibly after δh steps).
  const size_t ns = num_states_;
  const size_t na = num_symbols_;
  EnsureIndex();
  std::vector<char> in_s(ns, 0);  // occupiable at some position (any label)
  std::vector<char> in_u(ns, 0);  // occupiable with children
  for (TreeState q : initial_) in_s[q] = 1;  // leaves fit anywhere w.r.t. NF?
  // Note: NF only restricts first positions; for occupiability we track the
  // weaker "fits at some position", which needs either ¬NF (first) or a δh
  // predecessor. We approximate from above (keep possibly-useless states
  // rather than drop needed ones): every I or U state counts as occupiable.
  bool changed = true;
  while (changed) {
    changed = false;
    for (TreeState q = 0; q < ns; ++q) {
      if (!in_s[q]) continue;
      for (Symbol a = 0; a < na; ++a) {
        for (TreeState r : VerticalSuccessors(q, a)) {
          if (!in_u[r]) {
            in_u[r] = 1;
            changed = true;
          }
          if (!in_s[r]) {
            in_s[r] = 1;
            changed = true;
          }
        }
        for (TreeState r : HorizontalSuccessors(q, a)) {
          if ((IsInitial(r) || in_u[r]) && !in_s[r]) {
            in_s[r] = 1;
            changed = true;
          }
        }
      }
    }
  }
  // Co-reachability from accepting roots over reversed edges, via a CSR
  // reverse-adjacency built once — each state's predecessor list is scanned
  // exactly once when the state pops, instead of rescanning every edge list
  // per popped state.
  std::vector<uint32_t> roff(ns + 1, 0);
  for (const auto& [f, a, to] : vertical_list_) {
    (void)f;
    (void)a;
    ++roff[to + 1];
  }
  for (const auto& [f, a, to] : horizontal_list_) {
    (void)a;
    // δh edges relax in both directions: predecessors stay useful, and so do
    // right siblings of useful states.
    ++roff[to + 1];
    ++roff[f + 1];
  }
  for (size_t q = 0; q < ns; ++q) roff[q + 1] += roff[q];
  std::vector<TreeState> radj(vertical_list_.size() +
                              2 * horizontal_list_.size());
  {
    std::vector<uint32_t> cursor(roff.begin(), roff.end() - 1);
    for (const auto& [f, a, to] : vertical_list_) {
      (void)a;
      radj[cursor[to]++] = f;
    }
    for (const auto& [f, a, to] : horizontal_list_) {
      (void)a;
      radj[cursor[to]++] = f;
      radj[cursor[f]++] = to;
    }
  }
  std::vector<char> useful(ns, 0);
  std::vector<TreeState> work;
  for (const auto& [q, a] : accepting()) {
    (void)a;
    if (!useful[q] && in_s[q] && !IsNonFirst(q)) {
      useful[q] = 1;
      work.push_back(q);
    }
  }
  while (!work.empty()) {
    TreeState q = work.back();
    work.pop_back();
    for (uint32_t i = roff[q]; i < roff[q + 1]; ++i) {
      const TreeState p = radj[i];
      if (!useful[p] && in_s[p]) {
        useful[p] = 1;
        work.push_back(p);
      }
    }
  }
  std::vector<bool> keep(ns, false);
  for (TreeState q = 0; q < ns; ++q) keep[q] = useful[q] != 0;
  return RestrictStates(keep);
}

TreeAutomaton TreeAutomaton::Universal(size_t num_symbols) {
  TreeAutomaton out(num_symbols, 1);
  out.SetInitial(0);
  for (Symbol a = 0; a < num_symbols; ++a) {
    out.AddHorizontal(0, a, 0);
    out.AddVertical(0, a, 0);
    out.SetAccepting(0, a);
  }
  return out;
}

TreeAutomaton TreeAutomaton::LabelFilter(size_t num_symbols,
                                         const std::vector<bool>& allowed) {
  TreeAutomaton out(num_symbols, 1);
  out.SetInitial(0);
  for (Symbol a = 0; a < num_symbols; ++a) {
    if (!allowed[a]) continue;
    out.AddHorizontal(0, a, 0);
    out.AddVertical(0, a, 0);
    out.SetAccepting(0, a);
  }
  return out;
}

std::string TreeAutomaton::ToString(const Alphabet& alphabet) const {
  std::string out = StringFormat("TreeAutomaton{states=%zu, symbols=%zu\n",
                                 num_states_, num_symbols_);
  out += "  initial:";
  for (TreeState q : initial_) out += StringFormat(" q%u", q);
  out += "\n  non-first:";
  for (TreeState q : non_first_) out += StringFormat(" q%u", q);
  out += "\n  accepting:";
  for (const auto& [q, a] : accepting()) {
    out += StringFormat(" (q%u,%s)", q, alphabet.Name(a).c_str());
  }
  out += "\n  horizontal:\n";
  for (const auto& [f, a, to] : horizontal_list_) {
    out += StringFormat("    q%u --%s--> q%u\n", f, alphabet.Name(a).c_str(), to);
  }
  out += "  vertical:\n";
  for (const auto& [f, a, to] : vertical_list_) {
    out += StringFormat("    q%u ==%s==> q%u\n", f, alphabet.Name(a).c_str(), to);
  }
  out += "}";
  return out;
}

}  // namespace fo2dt
