#include "automata/tree_automaton.h"

#include <algorithm>

#include "common/strings.h"

namespace fo2dt {

namespace {
// 64-bit key for (from, symbol, to) triples used by the has-transition sets.
uint64_t TripleKey(TreeState from, Symbol a, TreeState to) {
  return (static_cast<uint64_t>(from) << 42) ^
         (static_cast<uint64_t>(a) << 21) ^ static_cast<uint64_t>(to);
}
}  // namespace

TreeAutomaton::TreeAutomaton(size_t num_symbols, size_t num_states)
    : num_symbols_(num_symbols),
      num_states_(num_states),
      horizontal_(num_symbols * num_states),
      vertical_(num_symbols * num_states) {}

TreeState TreeAutomaton::AddState() {
  ++num_states_;
  horizontal_.resize(num_symbols_ * num_states_);
  vertical_.resize(num_symbols_ * num_states_);
  return static_cast<TreeState>(num_states_ - 1);
}

void TreeAutomaton::AddHorizontal(TreeState from, Symbol a, TreeState to) {
  if (!horizontal_set_.insert(TripleKey(from, a, to)).second) return;
  horizontal_[Key(from, a)].push_back(to);
  horizontal_list_.emplace_back(from, a, to);
}

void TreeAutomaton::AddVertical(TreeState from, Symbol a, TreeState to) {
  if (!vertical_set_.insert(TripleKey(from, a, to)).second) return;
  vertical_[Key(from, a)].push_back(to);
  vertical_list_.emplace_back(from, a, to);
}

void TreeAutomaton::SetInitial(TreeState q) { initial_.insert(q); }

void TreeAutomaton::SetNonFirst(TreeState q) { non_first_.insert(q); }

void TreeAutomaton::SetAccepting(TreeState q, Symbol a) {
  accepting_.emplace(q, a);
}

bool TreeAutomaton::HasHorizontal(TreeState from, Symbol a, TreeState to) const {
  return horizontal_set_.count(TripleKey(from, a, to)) > 0;
}

bool TreeAutomaton::HasVertical(TreeState from, Symbol a, TreeState to) const {
  return vertical_set_.count(TripleKey(from, a, to)) > 0;
}

bool TreeAutomaton::IsAccepting(TreeState q, Symbol a) const {
  return accepting_.count({q, a}) > 0;
}

const std::vector<TreeState>& TreeAutomaton::HorizontalSuccessors(
    TreeState q, Symbol a) const {
  return horizontal_[Key(q, a)];
}

const std::vector<TreeState>& TreeAutomaton::VerticalSuccessors(
    TreeState q, Symbol a) const {
  return vertical_[Key(q, a)];
}

bool TreeAutomaton::IsAcceptingRun(const DataTree& t, const TreeRun& run) const {
  if (t.empty()) return false;
  if (run.size() != t.size()) return false;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (run[v] >= num_states_) return false;
    NodeId next = t.next_sibling(v);
    if (next != kNoNode) {
      if (!HasHorizontal(run[v], t.label(v), run[next])) return false;
    } else if (t.parent(v) != kNoNode) {
      if (!HasVertical(run[v], t.label(v), run[t.parent(v)])) return false;
    }
    // Every leaf must carry an initial state (see header note).
    if (t.first_child(v) == kNoNode && !IsInitial(run[v])) return false;
    // Non-first states require a horizontal predecessor.
    if (t.prev_sibling(v) == kNoNode && IsNonFirst(run[v])) return false;
  }
  return IsAccepting(run[t.root()], t.label(t.root()));
}

namespace {

/// Post-order traversal (children before parent, siblings left to right).
std::vector<NodeId> PostOrder(const DataTree& t) {
  std::vector<NodeId> out;
  if (t.empty()) return out;
  out.reserve(t.size());
  struct Item {
    NodeId node;
    bool expanded;
  };
  std::vector<Item> stack = {{t.root(), false}};
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.expanded) {
      out.push_back(it.node);
      continue;
    }
    stack.push_back({it.node, true});
    std::vector<NodeId> kids = t.Children(it.node);
    for (size_t i = kids.size(); i-- > 0;) stack.push_back({kids[i], false});
  }
  return out;
}

}  // namespace

// Computes, for each node v, the set P(v) of states consistent with v's
// subtree and with v's left siblings (and their subtrees). NotFound when some
// node admits no state.
Result<std::vector<std::set<TreeState>>> TreeAutomaton::AcceptingRunStates(
    const DataTree& t) const {
  if (t.empty()) return Status::InvalidArgument("empty tree has no runs");
  std::vector<std::set<TreeState>> p(t.size());
  const std::vector<NodeId> order = PostOrder(t);
  for (NodeId v : order) {
    std::set<TreeState> allowed;
    const bool is_leaf = t.first_child(v) == kNoNode;
    // Constraint from below: state must be a δv-successor of the last child.
    std::set<TreeState> up;
    if (!is_leaf) {
      NodeId lc = t.last_child(v);
      for (TreeState q : p[lc]) {
        for (TreeState r : VerticalSuccessors(q, t.label(lc))) up.insert(r);
      }
    }
    // Base constraint: leaves take initial states; internal nodes take
    // δv-successors of their last child.
    const std::set<TreeState>& base =
        is_leaf ? std::set<TreeState>(initial_.begin(), initial_.end()) : up;
    NodeId prev = t.prev_sibling(v);
    if (prev == kNoNode) {
      // First siblings cannot use non-first states.
      for (TreeState q : base) {
        if (!IsNonFirst(q)) allowed.insert(q);
      }
    } else {
      std::set<TreeState> step;
      for (TreeState q : p[prev]) {
        for (TreeState r : HorizontalSuccessors(q, t.label(prev))) {
          step.insert(r);
        }
      }
      std::set_intersection(step.begin(), step.end(), base.begin(), base.end(),
                            std::inserter(allowed, allowed.begin()));
    }
    if (allowed.empty()) return Status::NotFound("tree admits no run");
    p[v] = std::move(allowed);
  }
  // Filter the root by acceptance; the returned sets are the P(v) sets, with
  // the root restricted to accepting states. (Callers wanting exact
  // per-node accepting-run state sets should use a downward pass; for type
  // assignment under unambiguous schemas P(v) is already exact.)
  std::set<TreeState> root_ok;
  for (TreeState q : p[t.root()]) {
    if (IsAccepting(q, t.label(t.root()))) root_ok.insert(q);
  }
  if (root_ok.empty()) return Status::NotFound("no accepting run");
  p[t.root()] = std::move(root_ok);
  return p;
}

bool TreeAutomaton::Accepts(const DataTree& t) const {
  return AcceptingRunStates(t).ok();
}

Result<TreeRun> TreeAutomaton::FindAcceptingRun(const DataTree& t) const {
  FO2DT_ASSIGN_OR_RETURN(std::vector<std::set<TreeState>> p,
                         AcceptingRunStates(t));
  TreeRun run(t.size(), 0);
  // Assign the root, then per siblinghood choose states right-to-left; the
  // construction of P guarantees every choice extends leftward.
  run[t.root()] = *p[t.root()].begin();
  std::vector<NodeId> work = {t.root()};
  while (!work.empty()) {
    NodeId v = work.back();
    work.pop_back();
    if (t.first_child(v) == kNoNode) continue;
    std::vector<NodeId> kids = t.Children(v);
    // Choose the last child: must δv-step into run[v].
    TreeState target = run[v];
    NodeId lc = kids.back();
    TreeState chosen = static_cast<TreeState>(num_states_);
    for (TreeState q : p[lc]) {
      if (HasVertical(q, t.label(lc), target)) {
        chosen = q;
        break;
      }
    }
    if (chosen == num_states_) {
      return Status::Internal("run extraction failed at vertical step");
    }
    run[lc] = chosen;
    // Walk left through the siblinghood.
    for (size_t i = kids.size() - 1; i-- > 0;) {
      NodeId cur = kids[i];
      TreeState next_state = run[kids[i + 1]];
      TreeState pick = static_cast<TreeState>(num_states_);
      for (TreeState q : p[cur]) {
        if (HasHorizontal(q, t.label(cur), next_state)) {
          pick = q;
          break;
        }
      }
      if (pick == num_states_) {
        return Status::Internal("run extraction failed at horizontal step");
      }
      run[cur] = pick;
    }
    for (NodeId c : kids) work.push_back(c);
  }
  return run;
}

Result<DataTree> TreeAutomaton::FindWitnessTree() const {
  // Least-fixpoint reachability with explicit derivations.
  //   S(q, a): a node with state q and label a is realizable at some chain
  //            position (with a fully consistent subtree and left context);
  //   U(q):    q is realizable as the state of a node with children (some
  //            realizable last child δv-steps into q).
  // Rules:
  //   (q, a) ∈ S for all a,  if q ∈ (I ∪ U) \ NF          (first position)
  //   (q',a') ∈ S for all a', if (q,a) ∈ S, (q,a,q') ∈ δh, q' ∈ I ∪ U
  //   q' ∈ U                  if (q,a) ∈ S, (q,a,q') ∈ δv
  // Nonempty iff some (q, a) ∈ F has q ∈ (I ∪ U) \ NF.
  const size_t ns = num_states_;
  const size_t na = num_symbols_;
  if (ns == 0 || na == 0) return Status::NotFound("tree automaton is empty");

  struct SPairInfo {
    enum Kind { kFirstLeaf, kFirstUp, kStepLeaf, kStepUp } kind = kFirstLeaf;
    TreeState prev_q = 0;  // for kStep*: predecessor pair in the chain
    Symbol prev_a = 0;
  };
  struct UpInfo {
    TreeState last_q = 0;  // last child pair producing this state
    Symbol last_a = 0;
  };
  std::vector<char> in_s(ns * na, 0);
  std::vector<SPairInfo> s_info(ns * na);
  std::vector<char> in_u(ns, 0);
  std::vector<UpInfo> u_info(ns);
  auto key = [na](TreeState q, Symbol a) { return q * na + a; };

  auto add_s = [&](TreeState q, Symbol a, SPairInfo info) {
    size_t k = key(q, a);
    if (in_s[k]) return false;
    in_s[k] = 1;
    s_info[k] = info;
    return true;
  };

  // Naive saturation sweeps; the sets only grow and are small (|Q|·|Σ|).
  for (TreeState q : initial_) {
    if (!IsNonFirst(q)) {
      for (Symbol a = 0; a < na; ++a) {
        add_s(q, a, SPairInfo{SPairInfo::kFirstLeaf, 0, 0});
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (TreeState q = 0; q < ns; ++q) {
      for (Symbol a = 0; a < na; ++a) {
        if (!in_s[key(q, a)]) continue;
        // δv: parent becomes realizable-with-children.
        for (TreeState r : VerticalSuccessors(q, a)) {
          if (!in_u[r]) {
            in_u[r] = 1;
            u_info[r] = UpInfo{q, a};
            changed = true;
            if (!IsNonFirst(r)) {
              for (Symbol b = 0; b < na; ++b) {
                changed |= add_s(r, b, SPairInfo{SPairInfo::kFirstUp, 0, 0});
              }
            }
          }
        }
        // δh: extend the chain; the successor is a leaf (I) or has
        // children (U).
        for (TreeState r : HorizontalSuccessors(q, a)) {
          if (IsInitial(r)) {
            for (Symbol b = 0; b < na; ++b) {
              changed |= add_s(r, b, SPairInfo{SPairInfo::kStepLeaf, q, a});
            }
          }
          if (in_u[r]) {
            for (Symbol b = 0; b < na; ++b) {
              changed |= add_s(r, b, SPairInfo{SPairInfo::kStepUp, q, a});
            }
          }
        }
      }
    }
  }

  // Root choice: leaf roots give smaller witnesses; prefer them.
  const std::pair<TreeState, Symbol>* pick = nullptr;
  bool pick_leaf = false;
  for (const auto& pair : accepting_) {
    if (IsNonFirst(pair.first)) continue;
    if (IsInitial(pair.first)) {
      pick = &pair;
      pick_leaf = true;
      break;
    }
    if (in_u[pair.first] && pick == nullptr) pick = &pair;
  }
  if (pick == nullptr) {
    return Status::NotFound("tree automaton language is empty");
  }

  DataTree t;
  (void)t.CreateRoot(pick->second, 0);
  // Expand internal nodes by unrolling chain derivations. Task: realize the
  // children of `parent` so the last child is the pair (last_q, last_a).
  struct Task {
    NodeId parent;
    TreeState last_q;
    Symbol last_a;
  };
  std::vector<Task> tasks;
  if (!pick_leaf) {
    tasks.push_back(
        {t.root(), u_info[pick->first].last_q, u_info[pick->first].last_a});
  }
  while (!tasks.empty()) {
    Task task = tasks.back();
    tasks.pop_back();
    // Walk the chain derivation backwards to its first element.
    std::vector<std::pair<TreeState, Symbol>> chain;
    TreeState q = task.last_q;
    Symbol a = task.last_a;
    for (;;) {
      chain.emplace_back(q, a);
      const SPairInfo& info = s_info[key(q, a)];
      if (info.kind == SPairInfo::kFirstLeaf ||
          info.kind == SPairInfo::kFirstUp) {
        break;
      }
      q = info.prev_q;
      a = info.prev_a;
    }
    std::reverse(chain.begin(), chain.end());
    for (const auto& [cq, ca] : chain) {
      NodeId child = t.AppendChild(task.parent, ca, 0).value();
      const SPairInfo& info = s_info[key(cq, ca)];
      if (info.kind == SPairInfo::kFirstUp || info.kind == SPairInfo::kStepUp) {
        tasks.push_back({child, u_info[cq].last_q, u_info[cq].last_a});
      }
    }
  }
  return t;
}

bool TreeAutomaton::IsEmpty() const { return !FindWitnessTree().ok(); }

Result<TreeAutomaton> TreeAutomaton::Intersect(const TreeAutomaton& a,
                                               const TreeAutomaton& b) {
  if (a.num_symbols() != b.num_symbols()) {
    return Status::InvalidArgument("product requires matching alphabets");
  }
  const size_t nb = b.num_states();
  TreeAutomaton out(a.num_symbols(), a.num_states() * nb);
  auto pair_id = [nb](TreeState qa, TreeState qb) {
    return static_cast<TreeState>(qa * nb + qb);
  };
  for (const auto& [fa, sym, ta] : a.horizontal_list_) {
    for (TreeState fb = 0; fb < nb; ++fb) {
      for (TreeState tb : b.HorizontalSuccessors(fb, sym)) {
        out.AddHorizontal(pair_id(fa, fb), sym, pair_id(ta, tb));
      }
    }
  }
  for (const auto& [fa, sym, ta] : a.vertical_list_) {
    for (TreeState fb = 0; fb < nb; ++fb) {
      for (TreeState tb : b.VerticalSuccessors(fb, sym)) {
        out.AddVertical(pair_id(fa, fb), sym, pair_id(ta, tb));
      }
    }
  }
  for (TreeState qa : a.initial_) {
    for (TreeState qb : b.initial_) out.SetInitial(pair_id(qa, qb));
  }
  for (const auto& [qa, sym] : a.accepting_) {
    for (const auto& [qb, sym2] : b.accepting_) {
      if (sym == sym2) out.SetAccepting(pair_id(qa, qb), sym);
    }
  }
  // A pair state demands a horizontal predecessor when either component does.
  for (TreeState qa = 0; qa < a.num_states(); ++qa) {
    for (TreeState qb = 0; qb < nb; ++qb) {
      if (a.IsNonFirst(qa) || b.IsNonFirst(qb)) {
        out.SetNonFirst(pair_id(qa, qb));
      }
    }
  }
  return out;
}

Result<TreeAutomaton> TreeAutomaton::Union(const TreeAutomaton& a,
                                           const TreeAutomaton& b) {
  if (a.num_symbols() != b.num_symbols()) {
    return Status::InvalidArgument("union requires matching alphabets");
  }
  const TreeState off = static_cast<TreeState>(a.num_states());
  TreeAutomaton out(a.num_symbols(), a.num_states() + b.num_states());
  for (const auto& [f, sym, to] : a.horizontal_list_) {
    out.AddHorizontal(f, sym, to);
  }
  for (const auto& [f, sym, to] : a.vertical_list_) out.AddVertical(f, sym, to);
  for (const auto& [f, sym, to] : b.horizontal_list_) {
    out.AddHorizontal(f + off, sym, to + off);
  }
  for (const auto& [f, sym, to] : b.vertical_list_) {
    out.AddVertical(f + off, sym, to + off);
  }
  for (TreeState q : a.initial_) out.SetInitial(q);
  for (TreeState q : b.initial_) out.SetInitial(q + off);
  for (TreeState q : a.non_first_) out.SetNonFirst(q);
  for (TreeState q : b.non_first_) out.SetNonFirst(q + off);
  for (const auto& [q, sym] : a.accepting_) out.SetAccepting(q, sym);
  for (const auto& [q, sym] : b.accepting_) out.SetAccepting(q + off, sym);
  return out;
}

TreeAutomaton TreeAutomaton::Trim() const {
  // Bottom-up realizability: the S/U fixpoint of FindWitnessTree. A state is
  // occupiable when it can sit on an actual node (leaf via I, or via δv from
  // a realizable last child, possibly after δh steps).
  const size_t ns = num_states_;
  const size_t na = num_symbols_;
  std::vector<char> in_s(ns, 0);  // occupiable at some position (any label)
  std::vector<char> in_u(ns, 0);  // occupiable with children
  for (TreeState q : initial_) in_s[q] = 1;  // leaves fit anywhere w.r.t. NF?
  // Note: NF only restricts first positions; for occupiability we track the
  // weaker "fits at some position", which needs either ¬NF (first) or a δh
  // predecessor. We approximate from above (keep possibly-useless states
  // rather than drop needed ones): every I or U state counts as occupiable.
  bool changed = true;
  while (changed) {
    changed = false;
    for (TreeState q = 0; q < ns; ++q) {
      if (!in_s[q]) continue;
      for (Symbol a = 0; a < na; ++a) {
        for (TreeState r : VerticalSuccessors(q, a)) {
          if (!in_u[r]) {
            in_u[r] = 1;
            changed = true;
          }
          if (!in_s[r]) {
            in_s[r] = 1;
            changed = true;
          }
        }
        for (TreeState r : HorizontalSuccessors(q, a)) {
          if ((IsInitial(r) || in_u[r]) && !in_s[r]) {
            in_s[r] = 1;
            changed = true;
          }
        }
      }
    }
  }
  // Co-reachability from accepting roots over reversed edges.
  std::vector<char> useful(ns, 0);
  std::vector<TreeState> work;
  for (const auto& [q, a] : accepting_) {
    (void)a;
    if (!useful[q] && in_s[q] && !IsNonFirst(q)) {
      useful[q] = 1;
      work.push_back(q);
    }
  }
  while (!work.empty()) {
    TreeState q = work.back();
    work.pop_back();
    auto relax = [&](TreeState p) {
      if (!useful[p] && in_s[p]) {
        useful[p] = 1;
        work.push_back(p);
      }
    };
    for (const auto& [f, a, to] : vertical_list_) {
      (void)a;
      if (to == q) relax(f);
    }
    for (const auto& [f, a, to] : horizontal_list_) {
      (void)a;
      if (to == q) relax(f);
      if (f == q) relax(to);  // keep right siblings of useful states
    }
  }
  // Remap.
  std::vector<TreeState> remap(ns, 0);
  TreeState next = 0;
  for (TreeState q = 0; q < ns; ++q) {
    if (useful[q]) remap[q] = next++;
  }
  TreeAutomaton out(na, next);
  for (const auto& [f, a, to] : horizontal_list_) {
    if (useful[f] && useful[to]) out.AddHorizontal(remap[f], a, remap[to]);
  }
  for (const auto& [f, a, to] : vertical_list_) {
    if (useful[f] && useful[to]) out.AddVertical(remap[f], a, remap[to]);
  }
  for (TreeState q : initial_) {
    if (useful[q]) out.SetInitial(remap[q]);
  }
  for (TreeState q : non_first_) {
    if (useful[q]) out.SetNonFirst(remap[q]);
  }
  for (const auto& [q, a] : accepting_) {
    if (useful[q]) out.SetAccepting(remap[q], a);
  }
  return out;
}

TreeAutomaton TreeAutomaton::Universal(size_t num_symbols) {
  TreeAutomaton out(num_symbols, 1);
  out.SetInitial(0);
  for (Symbol a = 0; a < num_symbols; ++a) {
    out.AddHorizontal(0, a, 0);
    out.AddVertical(0, a, 0);
    out.SetAccepting(0, a);
  }
  return out;
}

TreeAutomaton TreeAutomaton::LabelFilter(size_t num_symbols,
                                         const std::vector<bool>& allowed) {
  TreeAutomaton out(num_symbols, 1);
  out.SetInitial(0);
  for (Symbol a = 0; a < num_symbols; ++a) {
    if (!allowed[a]) continue;
    out.AddHorizontal(0, a, 0);
    out.AddVertical(0, a, 0);
    out.SetAccepting(0, a);
  }
  return out;
}

std::string TreeAutomaton::ToString(const Alphabet& alphabet) const {
  std::string out = StringFormat("TreeAutomaton{states=%zu, symbols=%zu\n",
                                 num_states_, num_symbols_);
  out += "  initial:";
  for (TreeState q : initial_) out += StringFormat(" q%u", q);
  out += "\n  non-first:";
  for (TreeState q : non_first_) out += StringFormat(" q%u", q);
  out += "\n  accepting:";
  for (const auto& [q, a] : accepting_) {
    out += StringFormat(" (q%u,%s)", q, alphabet.Name(a).c_str());
  }
  out += "\n  horizontal:\n";
  for (const auto& [f, a, to] : horizontal_list_) {
    out += StringFormat("    q%u --%s--> q%u\n", f, alphabet.Name(a).c_str(), to);
  }
  out += "  vertical:\n";
  for (const auto& [f, a, to] : vertical_list_) {
    out += StringFormat("    q%u ==%s==> q%u\n", f, alphabet.Name(a).c_str(), to);
  }
  out += "}";
  return out;
}

}  // namespace fo2dt
