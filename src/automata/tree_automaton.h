/// \file tree_automaton.h
/// \brief Nondeterministic automata over unranked trees, in the paper's
/// hedge style (Section III; also [7], [17]).
///
/// An automaton has states Q and two transition relations
///   δh, δv ⊆ Q × Σ × Q.
/// A run labels every node with a state such that for a node v with label a:
///   * if v has a horizontal successor w, then (ρ(v), a, ρ(w)) ∈ δh;
///   * if v has no horizontal successor and parent w, then (ρ(v), a, ρ(w)) ∈ δv.
/// A run accepts when every leaf carries an initial state from I and the
/// root's (state, label) pair is in F ⊆ Q × Σ.
///
/// Note on the acceptance conditions: the conference paper's wording
/// restricts the initial-state requirement to leaves "without horizontal
/// predecessors". Under that literal reading the model is closed under
/// deleting the subtree below any non-first sibling (such a node's
/// from-below constraint simply disappears), so it could not even express
/// "every leaf is labeled c" — contradicting Fact 1 (equivalence with
/// regular tree languages). We therefore implement two strengthened — and
/// still strictly local, hence EMSO²(+1)-definable — conditions:
///   * every leaf carries an initial state from I, and
///   * a node whose state lies in the designated *non-first* set NF must
///     have a horizontal predecessor.
/// The NF set lets constructions anchor per-siblinghood start conditions
/// (e.g. the start state of a DTD content-model DFA); with both conditions
/// the model recognizes exactly the regular unranked tree languages, like
/// the standard automata of [7], [17] that the paper cites.
///
/// State thus threads left-to-right through each siblinghood and up from the
/// last child into its parent — the shape that makes the translation to
/// EMSO2(+1) (Fact 1) immediate, and that the LCTA layer (Theorem 2) counts
/// over.

#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/symbol.h"
#include "datatree/data_tree.h"

namespace fo2dt {

/// \brief State id in a tree automaton.
using TreeState = uint32_t;

/// \brief A run of a tree automaton: state per node, indexed by NodeId.
using TreeRun = std::vector<TreeState>;

/// \brief Nondeterministic unranked tree automaton (hedge style).
class TreeAutomaton {
 public:
  /// An automaton over \p num_symbols labels with \p num_states states.
  TreeAutomaton(size_t num_symbols, size_t num_states);
  /// Empty automaton (no symbols, no states; empty language).
  TreeAutomaton() : TreeAutomaton(0, 0) {}

  size_t num_states() const { return num_states_; }
  size_t num_symbols() const { return num_symbols_; }

  /// Adds a fresh state and returns its id.
  TreeState AddState();

  void AddHorizontal(TreeState from, Symbol a, TreeState to);
  void AddVertical(TreeState from, Symbol a, TreeState to);
  void SetInitial(TreeState q);
  void SetAccepting(TreeState q, Symbol a);
  /// Marks \p q as non-first: nodes carrying it must have a horizontal
  /// predecessor (see the header note).
  void SetNonFirst(TreeState q);

  bool HasHorizontal(TreeState from, Symbol a, TreeState to) const;
  bool HasVertical(TreeState from, Symbol a, TreeState to) const;
  bool IsInitial(TreeState q) const { return initial_.count(q) > 0; }
  bool IsNonFirst(TreeState q) const { return non_first_.count(q) > 0; }
  bool IsAccepting(TreeState q, Symbol a) const;

  const std::set<TreeState>& initial() const { return initial_; }
  const std::set<TreeState>& non_first() const { return non_first_; }
  const std::set<std::pair<TreeState, Symbol>>& accepting() const {
    return accepting_;
  }
  /// All horizontal transitions as (from, symbol, to) triples.
  const std::vector<std::tuple<TreeState, Symbol, TreeState>>& horizontal()
      const {
    return horizontal_list_;
  }
  const std::vector<std::tuple<TreeState, Symbol, TreeState>>& vertical()
      const {
    return vertical_list_;
  }

  /// Horizontal successors of (q, a).
  const std::vector<TreeState>& HorizontalSuccessors(TreeState q, Symbol a) const;
  /// Vertical successors of (q, a).
  const std::vector<TreeState>& VerticalSuccessors(TreeState q, Symbol a) const;

  /// Whether \p run is an accepting run on \p t (labels read from t).
  bool IsAcceptingRun(const DataTree& t, const TreeRun& run) const;

  /// Whether the automaton accepts (the data erasure of) \p t.
  bool Accepts(const DataTree& t) const;

  /// An accepting run on \p t, or NotFound if none exists.
  Result<TreeRun> FindAcceptingRun(const DataTree& t) const;

  /// All states each node can take in *some* accepting run ("run sets"), or
  /// NotFound if the tree is rejected. Used by type-annotation layers.
  Result<std::vector<std::set<TreeState>>> AcceptingRunStates(
      const DataTree& t) const;

  /// True when L(A) = ∅.
  bool IsEmpty() const;

  /// A member of L(A) (labels only; data values are all zero), or NotFound
  /// when empty. The witness is minimal in derivation depth, not necessarily
  /// in node count.
  Result<DataTree> FindWitnessTree() const;

  /// Product automaton: accepts L(a) ∩ L(b). Both must share the alphabet.
  static Result<TreeAutomaton> Intersect(const TreeAutomaton& a,
                                         const TreeAutomaton& b);

  /// Disjoint union: accepts L(a) ∪ L(b). Both must share the alphabet.
  static Result<TreeAutomaton> Union(const TreeAutomaton& a,
                                     const TreeAutomaton& b);

  /// Removes states that cannot occur in any accepting run (not bottom-up
  /// realizable, or not co-reachable from an accepting root) and remaps ids.
  /// The language is unchanged; constructions like DtdToTreeAutomaton shed
  /// most of their states here.
  TreeAutomaton Trim() const;

  /// The automaton accepting every tree over the alphabet (one state).
  static TreeAutomaton Universal(size_t num_symbols);

  /// The automaton accepting exactly the trees all of whose labels come from
  /// \p allowed.
  static TreeAutomaton LabelFilter(size_t num_symbols,
                                   const std::vector<bool>& allowed);

  std::string ToString(const Alphabet& alphabet) const;

 private:
  // Dense key for (state, symbol).
  size_t Key(TreeState q, Symbol a) const { return q * num_symbols_ + a; }

  size_t num_symbols_;
  size_t num_states_;
  // successor lists indexed by Key(q, a).
  std::vector<std::vector<TreeState>> horizontal_;
  std::vector<std::vector<TreeState>> vertical_;
  std::vector<std::tuple<TreeState, Symbol, TreeState>> horizontal_list_;
  std::vector<std::tuple<TreeState, Symbol, TreeState>> vertical_list_;
  std::unordered_set<uint64_t> horizontal_set_;
  std::unordered_set<uint64_t> vertical_set_;
  std::set<TreeState> initial_;
  std::set<TreeState> non_first_;
  std::set<std::pair<TreeState, Symbol>> accepting_;
};

}  // namespace fo2dt

