/// \file tree_automaton.h
/// \brief Nondeterministic automata over unranked trees, in the paper's
/// hedge style (Section III; also [7], [17]).
///
/// An automaton has states Q and two transition relations
///   δh, δv ⊆ Q × Σ × Q.
/// A run labels every node with a state such that for a node v with label a:
///   * if v has a horizontal successor w, then (ρ(v), a, ρ(w)) ∈ δh;
///   * if v has no horizontal successor and parent w, then (ρ(v), a, ρ(w)) ∈ δv.
/// A run accepts when every leaf carries an initial state from I and the
/// root's (state, label) pair is in F ⊆ Q × Σ.
///
/// Note on the acceptance conditions: the conference paper's wording
/// restricts the initial-state requirement to leaves "without horizontal
/// predecessors". Under that literal reading the model is closed under
/// deleting the subtree below any non-first sibling (such a node's
/// from-below constraint simply disappears), so it could not even express
/// "every leaf is labeled c" — contradicting Fact 1 (equivalence with
/// regular tree languages). We therefore implement two strengthened — and
/// still strictly local, hence EMSO²(+1)-definable — conditions:
///   * every leaf carries an initial state from I, and
///   * a node whose state lies in the designated *non-first* set NF must
///     have a horizontal predecessor.
/// The NF set lets constructions anchor per-siblinghood start conditions
/// (e.g. the start state of a DTD content-model DFA); with both conditions
/// the model recognizes exactly the regular unranked tree languages, like
/// the standard automata of [7], [17] that the paper cites.
///
/// State thus threads left-to-right through each siblinghood and up from the
/// last child into its parent — the shape that makes the translation to
/// EMSO2(+1) (Fact 1) immediate, and that the LCTA layer (Theorem 2) counts
/// over.
///
/// Representation: the state sets are bitsets (I and NF over Q, F as a
/// Q × Σ bit-matrix) and successor lookup goes through a CSR-style
/// offset+payload index rebuilt lazily after mutation — membership tests and
/// successor-range fetches are O(1), with no node-based containers on the
/// solve path. Iteration over every set and view below visits elements in
/// ascending order, exactly the order the previous `std::set` members
/// produced, so the canonical `automaton_io` text (and the FNV-1a solve-cache
/// keys derived from it) is byte-identical across the representation change.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/bitset.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/symbol.h"
#include "datatree/data_tree.h"

namespace fo2dt {

/// \brief State id in a tree automaton.
using TreeState = uint32_t;

/// \brief A run of a tree automaton: state per node, indexed by NodeId.
using TreeRun = std::vector<TreeState>;

/// \brief Contiguous successor range of one (state, symbol) key.
struct StateSpan {
  const TreeState* ptr = nullptr;
  size_t len = 0;

  const TreeState* begin() const { return ptr; }
  const TreeState* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  TreeState operator[](size_t i) const { return ptr[i]; }
};

/// \brief Read view over the accepting bit-matrix as sorted (state, symbol)
/// pairs — the iteration shape the old `std::set<std::pair<...>>` exposed.
class AcceptingView {
 public:
  AcceptingView(const Bitset* bits, size_t num_symbols)
      : bits_(bits), num_symbols_(num_symbols) {}

  size_t size() const { return bits_->size(); }
  bool empty() const { return bits_->empty(); }

  class const_iterator {
   public:
    const_iterator(Bitset::const_iterator it, size_t num_symbols)
        : it_(it), num_symbols_(num_symbols) {}

    std::pair<TreeState, Symbol> operator*() const {
      const uint32_t cell = *it_;
      return {static_cast<TreeState>(cell / num_symbols_),
              static_cast<Symbol>(cell % num_symbols_)};
    }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    Bitset::const_iterator it_;
    size_t num_symbols_;
  };

  const_iterator begin() const {
    return const_iterator(bits_->begin(), num_symbols_);
  }
  const_iterator end() const {
    return const_iterator(bits_->end(), num_symbols_);
  }

 private:
  const Bitset* bits_;
  size_t num_symbols_;
};

/// \brief Nondeterministic unranked tree automaton (hedge style).
class TreeAutomaton {
 public:
  /// An automaton over \p num_symbols labels with \p num_states states.
  TreeAutomaton(size_t num_symbols, size_t num_states);
  /// Empty automaton (no symbols, no states; empty language).
  TreeAutomaton() : TreeAutomaton(0, 0) {}

  size_t num_states() const { return num_states_; }
  size_t num_symbols() const { return num_symbols_; }

  /// Adds a fresh state and returns its id.
  TreeState AddState();

  void AddHorizontal(TreeState from, Symbol a, TreeState to);
  void AddVertical(TreeState from, Symbol a, TreeState to);
  void SetInitial(TreeState q);
  void SetAccepting(TreeState q, Symbol a);
  /// Marks \p q as non-first: nodes carrying it must have a horizontal
  /// predecessor (see the header note).
  void SetNonFirst(TreeState q);

  bool HasHorizontal(TreeState from, Symbol a, TreeState to) const;
  bool HasVertical(TreeState from, Symbol a, TreeState to) const;
  bool IsInitial(TreeState q) const { return initial_.Contains(q); }
  bool IsNonFirst(TreeState q) const { return non_first_.Contains(q); }
  bool IsAccepting(TreeState q, Symbol a) const;

  const Bitset& initial() const { return initial_; }
  const Bitset& non_first() const { return non_first_; }
  AcceptingView accepting() const {
    return AcceptingView(&accepting_, num_symbols_);
  }
  /// All horizontal transitions as (from, symbol, to) triples.
  const std::vector<std::tuple<TreeState, Symbol, TreeState>>& horizontal()
      const {
    return horizontal_list_;
  }
  const std::vector<std::tuple<TreeState, Symbol, TreeState>>& vertical()
      const {
    return vertical_list_;
  }

  /// Horizontal successors of (q, a), in insertion order. The returned span
  /// points into the CSR index: valid until the next mutation.
  StateSpan HorizontalSuccessors(TreeState q, Symbol a) const;
  /// Vertical successors of (q, a); same contract.
  StateSpan VerticalSuccessors(TreeState q, Symbol a) const;

  /// Whether \p run is an accepting run on \p t (labels read from t).
  bool IsAcceptingRun(const DataTree& t, const TreeRun& run) const;

  /// Whether the automaton accepts (the data erasure of) \p t.
  bool Accepts(const DataTree& t) const;

  /// An accepting run on \p t, or NotFound if none exists.
  Result<TreeRun> FindAcceptingRun(const DataTree& t) const;

  /// All states each node can take in *some* accepting run ("run sets"),
  /// ascending per node, or NotFound if the tree is rejected. Used by
  /// type-annotation layers.
  Result<std::vector<std::vector<TreeState>>> AcceptingRunStates(
      const DataTree& t) const;

  /// True when L(A) = ∅.
  bool IsEmpty() const;

  /// A member of L(A) (labels only; data values are all zero), or NotFound
  /// when empty. The witness is minimal in derivation depth, not necessarily
  /// in node count.
  Result<DataTree> FindWitnessTree() const;

  /// Product automaton: accepts L(a) ∩ L(b). Both must share the alphabet.
  static Result<TreeAutomaton> Intersect(const TreeAutomaton& a,
                                         const TreeAutomaton& b);

  /// Disjoint union: accepts L(a) ∪ L(b). Both must share the alphabet.
  static Result<TreeAutomaton> Union(const TreeAutomaton& a,
                                     const TreeAutomaton& b);

  /// The sub-automaton induced by the states with keep[q] true, with ids
  /// renumbered consecutively in ascending order of the surviving states.
  /// Transitions touching a dropped state are dropped; initial, non-first
  /// and accepting membership of every surviving state is preserved under
  /// the renumbering. \p keep must have size num_states().
  TreeAutomaton RestrictStates(const std::vector<bool>& keep) const;

  /// Removes states that cannot occur in any accepting run (not bottom-up
  /// realizable, or not co-reachable from an accepting root) and remaps ids.
  /// The language is unchanged; constructions like DtdToTreeAutomaton shed
  /// most of their states here.
  TreeAutomaton Trim() const;

  /// The automaton accepting every tree over the alphabet (one state).
  static TreeAutomaton Universal(size_t num_symbols);

  /// The automaton accepting exactly the trees all of whose labels come from
  /// \p allowed.
  static TreeAutomaton LabelFilter(size_t num_symbols,
                                   const std::vector<bool>& allowed);

  std::string ToString(const Alphabet& alphabet) const;

 private:
  // Dense key for (state, symbol).
  size_t Key(TreeState q, Symbol a) const { return q * num_symbols_ + a; }

  // CSR successor index over one transition list: targets for key k live at
  // targets[offsets[k] .. offsets[k+1]), in list insertion order.
  struct Csr {
    std::vector<uint32_t> offsets;
    std::vector<TreeState> targets;
  };

  // Lazily (re)built successor index. Copies and moves deliberately drop the
  // built index instead of cloning it — the copy rebuilds on first query —
  // which keeps TreeAutomaton cheaply copyable and the mutex per instance.
  // Concurrent *queries* on a built index are safe (double-checked atomic);
  // mutation is single-threaded, as it always was.
  //
  // Publication protocol (the seam the thread-safety annotations cannot
  // express, hence the FO2DT_NO_THREAD_SAFETY_ANALYSIS on EnsureIndex):
  //   1. fast path: acquire-load of fresh; true pairs with the builder's
  //      release-store, so the CSR vectors built before it are visible;
  //   2. slow path: lock mu, relaxed re-check (the lock orders us after any
  //      concurrent builder), build both CSRs under mu, then release-store
  //      fresh = true — the only store of fresh while readers are allowed.
  // Readers then access horizontal/vertical WITHOUT mu: safe because the
  // data is immutable from publication until the next single-threaded
  // mutation (InvalidateIndex), and tree_automaton_test hammers exactly
  // this first-build race under tsan.
  struct LazyIndex {
    LazyIndex() = default;
    LazyIndex(const LazyIndex&) {}
    LazyIndex(LazyIndex&&) noexcept {}
    LazyIndex& operator=(const LazyIndex&) {
      fresh.store(false, std::memory_order_relaxed);
      return *this;
    }
    LazyIndex& operator=(LazyIndex&&) noexcept {
      fresh.store(false, std::memory_order_relaxed);
      return *this;
    }

    Mutex mu{names::kLockAutomataCsr};
    // atomic: freshness flag — release-store after build under mu,
    // acquire-load on the reader fast path (see the protocol above).
    std::atomic<bool> fresh{false};
    Csr horizontal;  // written under mu, read lock-free after publication
    Csr vertical;
  };

  void EnsureIndex() const FO2DT_NO_THREAD_SAFETY_ANALYSIS;
  void BuildCsr(
      const std::vector<std::tuple<TreeState, Symbol, TreeState>>& list,
      Csr* csr) const;
  void InvalidateIndex() {
    index_.fresh.store(false, std::memory_order_relaxed);
  }

  size_t num_symbols_;
  size_t num_states_;
  std::vector<std::tuple<TreeState, Symbol, TreeState>> horizontal_list_;
  std::vector<std::tuple<TreeState, Symbol, TreeState>> vertical_list_;
  std::unordered_set<uint64_t> horizontal_set_;
  std::unordered_set<uint64_t> vertical_set_;
  Bitset initial_;
  Bitset non_first_;
  Bitset accepting_;  // bit-matrix, cell = Key(q, a)
  mutable LazyIndex index_;
};

}  // namespace fo2dt
