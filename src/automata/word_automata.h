/// \file word_automata.h
/// \brief Word automata over interned symbols: NFA (with epsilon), DFA,
/// Thompson construction from regular expressions, determinization,
/// minimization, product, complement and decision procedures.
///
/// Used as the substrate for DTD-style content models (horizontal languages
/// of schemas) and for the regular-language plumbing inside the tree-automata
/// and puzzle layers.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol.h"

namespace fo2dt {

/// \brief State id in a word automaton.
using WordState = uint32_t;

/// \brief Nondeterministic finite automaton with epsilon transitions.
class Nfa {
 public:
  /// An NFA with \p num_symbols letters and no states.
  explicit Nfa(size_t num_symbols) : num_symbols_(num_symbols) {}

  WordState AddState();
  size_t num_states() const { return transitions_.size(); }
  size_t num_symbols() const { return num_symbols_; }

  void AddTransition(WordState from, Symbol a, WordState to);
  void AddEpsilon(WordState from, WordState to);
  void SetInitial(WordState s) { initial_.insert(s); }
  void SetAccepting(WordState s) { accepting_.insert(s); }

  const std::set<WordState>& initial() const { return initial_; }
  const std::set<WordState>& accepting() const { return accepting_; }
  /// Successors of \p s on letter \p a (no epsilon closure applied).
  const std::vector<WordState>& Successors(WordState s, Symbol a) const;
  const std::vector<WordState>& EpsilonSuccessors(WordState s) const;

  /// Epsilon closure of a state set.
  std::set<WordState> EpsilonClosure(const std::set<WordState>& states) const;

  /// Whether the NFA accepts \p word.
  bool Accepts(const std::vector<Symbol>& word) const;

 private:
  size_t num_symbols_;
  // transitions_[s][a] = successor list; epsilon_[s] = epsilon successors.
  std::vector<std::vector<std::vector<WordState>>> transitions_;
  std::vector<std::vector<WordState>> epsilon_;
  std::set<WordState> initial_;
  std::set<WordState> accepting_;
};

/// \brief Complete deterministic finite automaton.
///
/// Always complete: every state has a successor on every letter (a sink is
/// added by construction where needed), which makes complementation a flip
/// of the accepting set.
class Dfa {
 public:
  Dfa(size_t num_symbols, size_t num_states, WordState initial);

  size_t num_states() const { return num_states_; }
  size_t num_symbols() const { return num_symbols_; }
  WordState initial() const { return initial_; }

  void SetTransition(WordState from, Symbol a, WordState to);
  WordState Transition(WordState from, Symbol a) const {
    return table_[from * num_symbols_ + a];
  }
  void SetAccepting(WordState s, bool accepting = true);
  bool IsAccepting(WordState s) const { return accepting_[s]; }

  bool Accepts(const std::vector<Symbol>& word) const;

  /// Language complement (flip accepting states; the DFA is complete).
  Dfa Complement() const;
  /// Language intersection via product construction.
  static Dfa Intersect(const Dfa& a, const Dfa& b);
  /// Language union via product construction.
  static Dfa Union(const Dfa& a, const Dfa& b);
  /// Hopcroft-style (Moore refinement) minimization.
  Dfa Minimize() const;
  /// True when no accepting state is reachable.
  bool IsEmpty() const;
  /// Some accepted word (shortest); NotFound when the language is empty.
  Result<std::vector<Symbol>> FindWitness() const;
  /// Language equivalence (via minimized product reasoning).
  static bool Equivalent(const Dfa& a, const Dfa& b);

 private:
  size_t num_symbols_;
  size_t num_states_;
  WordState initial_;
  std::vector<WordState> table_;
  std::vector<bool> accepting_;
};

/// Subset construction. The result is complete.
Dfa Determinize(const Nfa& nfa);

/// \brief Regular expression AST for content models.
///
/// Concrete syntax parsed by ParseRegex:
///   regex  := alt
///   alt    := cat ('|' cat)*
///   cat    := rep (',' rep)*          -- DTD-style sequencing
///   rep    := atom ('*' | '+' | '?')*
///   atom   := label | '(' alt ')' | '#eps' | '#empty'
/// `#eps` is the empty word, `#empty` the empty language.
class Regex {
 public:
  enum class Kind { kEpsilon, kEmpty, kSymbol, kConcat, kAlt, kStar };

  static Regex Epsilon();
  static Regex Empty();
  static Regex Sym(Symbol s);
  static Regex Concat(std::vector<Regex> parts);
  static Regex Alt(std::vector<Regex> parts);
  static Regex Star(Regex inner);
  /// e+ == e , e*
  static Regex Plus(Regex inner);
  /// e? == e | eps
  static Regex Opt(Regex inner);

  Kind kind() const { return node_->kind; }
  Symbol symbol() const { return node_->symbol; }
  const std::vector<Regex>& children() const { return node_->children; }

  /// Thompson construction over an alphabet of \p num_symbols letters.
  Nfa ToNfa(size_t num_symbols) const;

  std::string ToString(const Alphabet& alphabet) const;

 private:
  struct Node {
    Kind kind;
    Symbol symbol = kNoSymbol;
    std::vector<Regex> children;
  };
  explicit Regex(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

/// Parses the concrete syntax above; labels are interned into \p alphabet.
Result<Regex> ParseRegex(const std::string& text, Alphabet* alphabet);

}  // namespace fo2dt

