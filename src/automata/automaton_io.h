/// \file automaton_io.h
/// \brief Line-based text serialization of tree automata, used by the flight
/// recorder's post-mortem bundles and tools/replay/fo2dt_replay.
///
/// Format (one section per line, counts first so parsing is one pass):
///
///   automaton <num_symbols> <num_states>
///   initial <k> <q>...
///   nonfirst <k> <q>...
///   accepting <k> <q> <a> ...
///   horizontal <k> <from> <a> <to> ...
///   vertical <k> <from> <a> <to> ...
///
/// Every section is always present (k == 0 lists nothing after the count).
/// Symbols are raw dense ids — bundles pair the automaton with a canonical
/// replay alphabet (common/flight_recorder.h MakeReplayAlphabet), so ids are
/// position-stable across capture and replay. Round-trip is exact:
/// Parse(ToText(a)) reproduces the same transition lists, in order.

#pragma once

#include <string>

#include "automata/tree_automaton.h"
#include "common/status.h"

namespace fo2dt {

/// Serializes \p automaton into the line format above (trailing newline).
std::string TreeAutomatonToText(const TreeAutomaton& automaton);

/// Parses the output of TreeAutomatonToText starting at \p *pos inside
/// \p text; advances \p *pos past the consumed sections. ParseError on any
/// malformed line, count mismatch, or out-of-range state/symbol id.
Result<TreeAutomaton> ParseTreeAutomatonText(const std::string& text,
                                             size_t* pos);

/// Convenience wrapper: parses \p text from the start and requires that
/// nothing but whitespace follows the automaton.
Result<TreeAutomaton> ParseTreeAutomaton(const std::string& text);

}  // namespace fo2dt
