#include "automata/word_automata.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/strings.h"

namespace fo2dt {

// ---------------------------------------------------------------------------
// Nfa

WordState Nfa::AddState() {
  transitions_.emplace_back(num_symbols_);
  epsilon_.emplace_back();
  return static_cast<WordState>(transitions_.size() - 1);
}

void Nfa::AddTransition(WordState from, Symbol a, WordState to) {
  transitions_[from][a].push_back(to);
}

void Nfa::AddEpsilon(WordState from, WordState to) {
  epsilon_[from].push_back(to);
}

const std::vector<WordState>& Nfa::Successors(WordState s, Symbol a) const {
  return transitions_[s][a];
}

const std::vector<WordState>& Nfa::EpsilonSuccessors(WordState s) const {
  return epsilon_[s];
}

std::set<WordState> Nfa::EpsilonClosure(
    const std::set<WordState>& states) const {
  std::set<WordState> closure = states;
  std::vector<WordState> work(states.begin(), states.end());
  while (!work.empty()) {
    WordState s = work.back();
    work.pop_back();
    for (WordState t : epsilon_[s]) {
      if (closure.insert(t).second) work.push_back(t);
    }
  }
  return closure;
}

bool Nfa::Accepts(const std::vector<Symbol>& word) const {
  std::set<WordState> current = EpsilonClosure(initial_);
  for (Symbol a : word) {
    std::set<WordState> next;
    for (WordState s : current) {
      for (WordState t : transitions_[s][a]) next.insert(t);
    }
    current = EpsilonClosure(next);
    if (current.empty()) return false;
  }
  for (WordState s : current) {
    if (accepting_.count(s)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Dfa

Dfa::Dfa(size_t num_symbols, size_t num_states, WordState initial)
    : num_symbols_(num_symbols),
      num_states_(num_states),
      initial_(initial),
      table_(num_symbols * num_states, 0),
      accepting_(num_states, false) {}

void Dfa::SetTransition(WordState from, Symbol a, WordState to) {
  table_[from * num_symbols_ + a] = to;
}

void Dfa::SetAccepting(WordState s, bool accepting) { accepting_[s] = accepting; }

bool Dfa::Accepts(const std::vector<Symbol>& word) const {
  WordState s = initial_;
  for (Symbol a : word) s = Transition(s, a);
  return accepting_[s];
}

Dfa Dfa::Complement() const {
  Dfa out = *this;
  for (size_t s = 0; s < num_states_; ++s) out.accepting_[s] = !accepting_[s];
  return out;
}

namespace {

Dfa DfaProduct(const Dfa& a, const Dfa& b, bool want_union) {
  Dfa out(a.num_symbols(), a.num_states() * b.num_states(),
          a.initial() * static_cast<WordState>(b.num_states()) + b.initial());
  for (WordState sa = 0; sa < a.num_states(); ++sa) {
    for (WordState sb = 0; sb < b.num_states(); ++sb) {
      WordState s = sa * static_cast<WordState>(b.num_states()) + sb;
      bool acc = want_union ? (a.IsAccepting(sa) || b.IsAccepting(sb))
                            : (a.IsAccepting(sa) && b.IsAccepting(sb));
      out.SetAccepting(s, acc);
      for (Symbol x = 0; x < a.num_symbols(); ++x) {
        WordState ta = a.Transition(sa, x);
        WordState tb = b.Transition(sb, x);
        out.SetTransition(s, x,
                          ta * static_cast<WordState>(b.num_states()) + tb);
      }
    }
  }
  return out;
}

}  // namespace

Dfa Dfa::Intersect(const Dfa& a, const Dfa& b) {
  return DfaProduct(a, b, /*want_union=*/false);
}

Dfa Dfa::Union(const Dfa& a, const Dfa& b) {
  return DfaProduct(a, b, /*want_union=*/true);
}

Dfa Dfa::Minimize() const {
  // Restrict to reachable states first.
  std::vector<bool> reach(num_states_, false);
  std::vector<WordState> work = {initial_};
  reach[initial_] = true;
  while (!work.empty()) {
    WordState s = work.back();
    work.pop_back();
    for (Symbol a = 0; a < num_symbols_; ++a) {
      WordState t = Transition(s, a);
      if (!reach[t]) {
        reach[t] = true;
        work.push_back(t);
      }
    }
  }
  // Moore refinement: iteratively split classes by (accepting, successor
  // class vector).
  std::vector<int> cls(num_states_, -1);
  for (size_t s = 0; s < num_states_; ++s) {
    if (reach[s]) cls[s] = accepting_[s] ? 1 : 0;
  }
  int num_classes = 2;
  for (;;) {
    std::map<std::vector<int>, int> signature_to_class;
    std::vector<int> next(num_states_, -1);
    for (size_t s = 0; s < num_states_; ++s) {
      if (!reach[s]) continue;
      std::vector<int> sig;
      sig.reserve(num_symbols_ + 1);
      sig.push_back(cls[s]);
      for (Symbol a = 0; a < num_symbols_; ++a) {
        sig.push_back(cls[Transition(static_cast<WordState>(s), a)]);
      }
      auto [it, fresh] =
          signature_to_class.emplace(std::move(sig),
                                     static_cast<int>(signature_to_class.size()));
      (void)fresh;
      next[s] = it->second;
    }
    int new_count = static_cast<int>(signature_to_class.size());
    bool stable = new_count == num_classes;
    cls = std::move(next);
    num_classes = new_count;
    if (stable) break;
  }
  Dfa out(num_symbols_, static_cast<size_t>(num_classes), 0);
  // The initial state's class becomes the new initial id via renumbering.
  out = Dfa(num_symbols_, static_cast<size_t>(num_classes),
            static_cast<WordState>(cls[initial_]));
  for (size_t s = 0; s < num_states_; ++s) {
    if (!reach[s]) continue;
    WordState c = static_cast<WordState>(cls[s]);
    out.SetAccepting(c, accepting_[s]);
    for (Symbol a = 0; a < num_symbols_; ++a) {
      out.SetTransition(c, a,
                        static_cast<WordState>(cls[Transition(
                            static_cast<WordState>(s), a)]));
    }
  }
  return out;
}

bool Dfa::IsEmpty() const { return !FindWitness().ok(); }

Result<std::vector<Symbol>> Dfa::FindWitness() const {
  // BFS from the initial state tracking one predecessor edge per state.
  std::vector<int> pred_state(num_states_, -1);
  std::vector<Symbol> pred_symbol(num_states_, kNoSymbol);
  std::vector<bool> seen(num_states_, false);
  std::deque<WordState> queue = {initial_};
  seen[initial_] = true;
  while (!queue.empty()) {
    WordState s = queue.front();
    queue.pop_front();
    if (accepting_[s]) {
      std::vector<Symbol> word;
      for (WordState cur = s; cur != initial_ || pred_state[cur] >= 0;) {
        if (pred_state[cur] < 0) break;
        word.push_back(pred_symbol[cur]);
        cur = static_cast<WordState>(pred_state[cur]);
        if (cur == initial_) break;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (Symbol a = 0; a < num_symbols_; ++a) {
      WordState t = Transition(s, a);
      if (!seen[t]) {
        seen[t] = true;
        pred_state[t] = static_cast<int>(s);
        pred_symbol[t] = a;
        queue.push_back(t);
      }
    }
  }
  return Status::NotFound("DFA language is empty");
}

bool Dfa::Equivalent(const Dfa& a, const Dfa& b) {
  // Symmetric difference must be empty.
  Dfa left = Intersect(a, b.Complement());
  if (!left.IsEmpty()) return false;
  Dfa right = Intersect(a.Complement(), b);
  return right.IsEmpty();
}

Dfa Determinize(const Nfa& nfa) {
  std::map<std::set<WordState>, WordState> index;
  std::vector<std::set<WordState>> subsets;
  std::vector<std::vector<WordState>> table;  // per subset, per symbol
  const size_t k = nfa.num_symbols();

  auto intern = [&](std::set<WordState> subset) {
    auto [it, fresh] =
        index.emplace(subset, static_cast<WordState>(subsets.size()));
    if (fresh) {
      subsets.push_back(std::move(subset));
      table.emplace_back(k, 0);
    }
    return it->second;
  };

  WordState start = intern(nfa.EpsilonClosure(nfa.initial()));
  for (WordState s = 0; s < subsets.size(); ++s) {
    for (Symbol a = 0; a < k; ++a) {
      std::set<WordState> next;
      for (WordState q : subsets[s]) {
        for (WordState t : nfa.Successors(q, a)) next.insert(t);
      }
      table[s][a] = intern(nfa.EpsilonClosure(next));
    }
  }

  Dfa out(k, subsets.size(), start);
  for (WordState s = 0; s < subsets.size(); ++s) {
    for (Symbol a = 0; a < k; ++a) out.SetTransition(s, a, table[s][a]);
    for (WordState q : subsets[s]) {
      if (nfa.accepting().count(q)) {
        out.SetAccepting(s);
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Regex

Regex Regex::Epsilon() {
  return Regex(std::make_shared<Node>(Node{Kind::kEpsilon, kNoSymbol, {}}));
}
Regex Regex::Empty() {
  return Regex(std::make_shared<Node>(Node{Kind::kEmpty, kNoSymbol, {}}));
}
Regex Regex::Sym(Symbol s) {
  return Regex(std::make_shared<Node>(Node{Kind::kSymbol, s, {}}));
}
Regex Regex::Concat(std::vector<Regex> parts) {
  if (parts.empty()) return Epsilon();
  if (parts.size() == 1) return parts[0];
  return Regex(
      std::make_shared<Node>(Node{Kind::kConcat, kNoSymbol, std::move(parts)}));
}
Regex Regex::Alt(std::vector<Regex> parts) {
  if (parts.empty()) return Empty();
  if (parts.size() == 1) return parts[0];
  return Regex(
      std::make_shared<Node>(Node{Kind::kAlt, kNoSymbol, std::move(parts)}));
}
Regex Regex::Star(Regex inner) {
  return Regex(std::make_shared<Node>(
      Node{Kind::kStar, kNoSymbol, {std::move(inner)}}));
}
Regex Regex::Plus(Regex inner) {
  Regex copy = inner;
  return Concat({std::move(inner), Star(std::move(copy))});
}
Regex Regex::Opt(Regex inner) { return Alt({std::move(inner), Epsilon()}); }

namespace {

// Thompson construction fragment: entry and exit states.
struct Fragment {
  WordState in;
  WordState out;
};

Fragment BuildNfa(const Regex& r, Nfa* nfa) {
  switch (r.kind()) {
    case Regex::Kind::kEpsilon: {
      WordState a = nfa->AddState();
      WordState b = nfa->AddState();
      nfa->AddEpsilon(a, b);
      return {a, b};
    }
    case Regex::Kind::kEmpty: {
      WordState a = nfa->AddState();
      WordState b = nfa->AddState();
      return {a, b};  // no connection: empty language
    }
    case Regex::Kind::kSymbol: {
      WordState a = nfa->AddState();
      WordState b = nfa->AddState();
      nfa->AddTransition(a, r.symbol(), b);
      return {a, b};
    }
    case Regex::Kind::kConcat: {
      Fragment acc = BuildNfa(r.children()[0], nfa);
      for (size_t i = 1; i < r.children().size(); ++i) {
        Fragment next = BuildNfa(r.children()[i], nfa);
        nfa->AddEpsilon(acc.out, next.in);
        acc.out = next.out;
      }
      return acc;
    }
    case Regex::Kind::kAlt: {
      WordState in = nfa->AddState();
      WordState out = nfa->AddState();
      for (const Regex& c : r.children()) {
        Fragment f = BuildNfa(c, nfa);
        nfa->AddEpsilon(in, f.in);
        nfa->AddEpsilon(f.out, out);
      }
      return {in, out};
    }
    case Regex::Kind::kStar: {
      WordState in = nfa->AddState();
      WordState out = nfa->AddState();
      Fragment f = BuildNfa(r.children()[0], nfa);
      nfa->AddEpsilon(in, out);
      nfa->AddEpsilon(in, f.in);
      nfa->AddEpsilon(f.out, f.in);
      nfa->AddEpsilon(f.out, out);
      return {in, out};
    }
  }
  // Unreachable.
  WordState a = nfa->AddState();
  return {a, a};
}

}  // namespace

Nfa Regex::ToNfa(size_t num_symbols) const {
  Nfa nfa(num_symbols);
  Fragment f = BuildNfa(*this, &nfa);
  nfa.SetInitial(f.in);
  nfa.SetAccepting(f.out);
  return nfa;
}

std::string Regex::ToString(const Alphabet& alphabet) const {
  switch (kind()) {
    case Kind::kEpsilon:
      return "#eps";
    case Kind::kEmpty:
      return "#empty";
    case Kind::kSymbol:
      return alphabet.Name(symbol());
    case Kind::kConcat: {
      std::vector<std::string> parts;
      for (const Regex& c : children()) parts.push_back(c.ToString(alphabet));
      return "(" + JoinToString(parts, ", ") + ")";
    }
    case Kind::kAlt: {
      std::vector<std::string> parts;
      for (const Regex& c : children()) parts.push_back(c.ToString(alphabet));
      return "(" + JoinToString(parts, " | ") + ")";
    }
    case Kind::kStar:
      return children()[0].ToString(alphabet) + "*";
  }
  return "?";
}

namespace {

class RegexParser {
 public:
  RegexParser(const std::string& text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<Regex> Parse() {
    FO2DT_ASSIGN_OR_RETURN(Regex r, ParseAlt());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StringFormat("trailing regex input at offset %zu", pos_));
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<Regex> ParseAlt() {
    std::vector<Regex> parts;
    FO2DT_ASSIGN_OR_RETURN(Regex first, ParseCat());
    parts.push_back(std::move(first));
    while (Peek('|')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(Regex next, ParseCat());
      parts.push_back(std::move(next));
    }
    return Regex::Alt(std::move(parts));
  }

  Result<Regex> ParseCat() {
    std::vector<Regex> parts;
    FO2DT_ASSIGN_OR_RETURN(Regex first, ParseRep());
    parts.push_back(std::move(first));
    while (Peek(',')) {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(Regex next, ParseRep());
      parts.push_back(std::move(next));
    }
    return Regex::Concat(std::move(parts));
  }

  Result<Regex> ParseRep() {
    FO2DT_ASSIGN_OR_RETURN(Regex r, ParseAtom());
    for (;;) {
      if (Peek('*')) {
        ++pos_;
        r = Regex::Star(std::move(r));
      } else if (Peek('+')) {
        ++pos_;
        r = Regex::Plus(std::move(r));
      } else if (Peek('?')) {
        ++pos_;
        r = Regex::Opt(std::move(r));
      } else {
        return r;
      }
    }
  }

  Result<Regex> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of regex");
    }
    if (text_[pos_] == '(') {
      ++pos_;
      FO2DT_ASSIGN_OR_RETURN(Regex r, ParseAlt());
      if (!Peek(')')) return Status::ParseError("expected ')' in regex");
      ++pos_;
      return r;
    }
    if (text_[pos_] == '#') {
      size_t start = pos_++;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      std::string word = text_.substr(start, pos_ - start);
      if (word == "#eps") return Regex::Epsilon();
      if (word == "#empty") return Regex::Empty();
      return Status::ParseError("unknown regex keyword: " + word);
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(
          StringFormat("expected regex atom at offset %zu", pos_));
    }
    return Regex::Sym(alphabet_->Intern(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
};

}  // namespace

Result<Regex> ParseRegex(const std::string& text, Alphabet* alphabet) {
  return RegexParser(text, alphabet).Parse();
}

}  // namespace fo2dt
