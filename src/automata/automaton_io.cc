#include "automata/automaton_io.h"

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "common/strings.h"

namespace fo2dt {

namespace {

// Whitespace-separated token cursor. The grammar has counts before every
// list, so token order alone determines structure; newlines are cosmetic.
// Every error carries the 1-based line/column of the offending token: this
// text format is a network-facing surface (fo2dtd request bodies), so a
// hostile client gets a precise diagnostic instead of a crash.
class TokenReader {
 public:
  TokenReader(const std::string& text, size_t pos) : text_(text), pos_(pos) {}

  size_t pos() const { return pos_; }

  /// ParseError at the current cursor with "(line L, column C)" appended.
  Status ErrorHere(const std::string& what, size_t at) const {
    return Status::ParseError(StringFormat(
        "%s in automaton text (%s)", what.c_str(),
        FormatTextPosition(text_, at).c_str()));
  }

  Result<std::string> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return ErrorHere("text ended early", pos_);
    }
    token_start_ = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(token_start_, pos_ - token_start_);
  }

  Status Expect(const char* keyword) {
    FO2DT_ASSIGN_OR_RETURN(std::string token, Next());
    if (token != keyword) {
      return ErrorHere(StringFormat("expected '%s', got '%s'", keyword,
                                    SanitizeToken(token).c_str()),
                       token_start_);
    }
    return Status::OK();
  }

  Result<uint64_t> Number() {
    FO2DT_ASSIGN_OR_RETURN(std::string token, Next());
    uint64_t value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') {
        return ErrorHere(StringFormat("bad number '%s'",
                                      SanitizeToken(token).c_str()),
                         token_start_);
      }
      uint64_t digit = static_cast<uint64_t>(c - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        return ErrorHere(StringFormat("number '%s' overflows",
                                      SanitizeToken(token).c_str()),
                         token_start_);
      }
      value = value * 10 + digit;
    }
    return value;
  }

  Result<uint64_t> NumberBelow(uint64_t bound, const char* what) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t value, Number());
    if (value >= bound) {
      return ErrorHere(StringFormat(
                           "%s %llu out of range (have %llu)", what,
                           static_cast<unsigned long long>(value),
                           static_cast<unsigned long long>(bound)),
                       token_start_);
    }
    return value;
  }

 private:
  /// Hostile tokens can contain arbitrary bytes (non-UTF8, control chars);
  /// clamp length and replace non-printable bytes before echoing them into
  /// an error message.
  static std::string SanitizeToken(const std::string& token) {
    constexpr size_t kMaxEcho = 32;
    std::string out;
    for (size_t i = 0; i < token.size() && i < kMaxEcho; ++i) {
      unsigned char c = static_cast<unsigned char>(token[i]);
      out.push_back(c >= 0x20 && c < 0x7f ? token[i] : '?');
    }
    if (token.size() > kMaxEcho) out += "...";
    return out;
  }

  const std::string& text_;
  size_t pos_;
  size_t token_start_ = 0;
};

}  // namespace

std::string TreeAutomatonToText(const TreeAutomaton& automaton) {
  std::string out = StringFormat(
      "automaton %llu %llu\n",
      static_cast<unsigned long long>(automaton.num_symbols()),
      static_cast<unsigned long long>(automaton.num_states()));

  out += StringFormat("initial %llu",
                      static_cast<unsigned long long>(automaton.initial().size()));
  for (TreeState q : automaton.initial()) {
    out += StringFormat(" %u", q);
  }
  out += "\n";

  out += StringFormat(
      "nonfirst %llu",
      static_cast<unsigned long long>(automaton.non_first().size()));
  for (TreeState q : automaton.non_first()) {
    out += StringFormat(" %u", q);
  }
  out += "\n";

  out += StringFormat(
      "accepting %llu",
      static_cast<unsigned long long>(automaton.accepting().size()));
  for (const auto& [q, a] : automaton.accepting()) {
    out += StringFormat(" %u %u", q, a);
  }
  out += "\n";

  // Transitions are stored in insertion order; emit them sorted so textual
  // round-trips of structurally equal automata produce identical bytes — the
  // solve cache and the query log key on the FNV-1a of this text.
  auto sorted = [](const std::vector<std::tuple<TreeState, Symbol, TreeState>>&
                       transitions) {
    std::vector<std::tuple<TreeState, Symbol, TreeState>> ordered = transitions;
    std::sort(ordered.begin(), ordered.end());
    return ordered;
  };

  out += StringFormat(
      "horizontal %llu",
      static_cast<unsigned long long>(automaton.horizontal().size()));
  for (const auto& [from, a, to] : sorted(automaton.horizontal())) {
    out += StringFormat(" %u %u %u", from, a, to);
  }
  out += "\n";

  out += StringFormat(
      "vertical %llu",
      static_cast<unsigned long long>(automaton.vertical().size()));
  for (const auto& [from, a, to] : sorted(automaton.vertical())) {
    out += StringFormat(" %u %u %u", from, a, to);
  }
  out += "\n";
  return out;
}

Result<TreeAutomaton> ParseTreeAutomatonText(const std::string& text,
                                             size_t* pos) {
  TokenReader reader(text, *pos);
  FO2DT_RETURN_NOT_OK(reader.Expect("automaton"));
  FO2DT_ASSIGN_OR_RETURN(uint64_t num_symbols, reader.Number());
  FO2DT_ASSIGN_OR_RETURN(uint64_t num_states, reader.Number());
  // Sanity caps before any allocation. The constructor reserves
  // num_symbols * num_states adjacency slots, so the *product* is the
  // allocation driver: a hostile "automaton 16777216 16777216" header would
  // otherwise request 2^48 slots from a few bytes of input.
  constexpr uint64_t kMaxDim = 1u << 24;
  constexpr uint64_t kMaxCells = 1u << 24;
  if (num_symbols > kMaxDim || num_states > kMaxDim ||
      (num_symbols != 0 && num_states > kMaxCells / num_symbols)) {
    return Status::ParseError(StringFormat(
        "automaton dimensions implausibly large (%llu symbols x %llu states)",
        static_cast<unsigned long long>(num_symbols),
        static_cast<unsigned long long>(num_states)));
  }
  TreeAutomaton automaton(static_cast<size_t>(num_symbols),
                          static_cast<size_t>(num_states));

  FO2DT_RETURN_NOT_OK(reader.Expect("initial"));
  FO2DT_ASSIGN_OR_RETURN(uint64_t k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t q,
                           reader.NumberBelow(num_states, "initial state"));
    automaton.SetInitial(static_cast<TreeState>(q));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("nonfirst"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t q,
                           reader.NumberBelow(num_states, "nonfirst state"));
    automaton.SetNonFirst(static_cast<TreeState>(q));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("accepting"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t q,
                           reader.NumberBelow(num_states, "accepting state"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t a,
                           reader.NumberBelow(num_symbols, "accepting symbol"));
    automaton.SetAccepting(static_cast<TreeState>(q), static_cast<Symbol>(a));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("horizontal"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t from,
                           reader.NumberBelow(num_states, "horizontal state"));
    FO2DT_ASSIGN_OR_RETURN(
        uint64_t a, reader.NumberBelow(num_symbols, "horizontal symbol"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t to,
                           reader.NumberBelow(num_states, "horizontal state"));
    automaton.AddHorizontal(static_cast<TreeState>(from),
                            static_cast<Symbol>(a),
                            static_cast<TreeState>(to));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("vertical"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t from,
                           reader.NumberBelow(num_states, "vertical state"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t a,
                           reader.NumberBelow(num_symbols, "vertical symbol"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t to,
                           reader.NumberBelow(num_states, "vertical state"));
    automaton.AddVertical(static_cast<TreeState>(from), static_cast<Symbol>(a),
                          static_cast<TreeState>(to));
  }

  *pos = reader.pos();
  return automaton;
}

Result<TreeAutomaton> ParseTreeAutomaton(const std::string& text) {
  size_t pos = 0;
  FO2DT_ASSIGN_OR_RETURN(TreeAutomaton automaton,
                         ParseTreeAutomatonText(text, &pos));
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos != text.size()) {
    return Status::ParseError(StringFormat(
        "trailing content after automaton text (%s)",
        FormatTextPosition(text, pos).c_str()));
  }
  return automaton;
}

}  // namespace fo2dt
