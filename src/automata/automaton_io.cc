#include "automata/automaton_io.h"

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "common/strings.h"

namespace fo2dt {

namespace {

// Whitespace-separated token cursor. The grammar has counts before every
// list, so token order alone determines structure; newlines are cosmetic.
class TokenReader {
 public:
  TokenReader(const std::string& text, size_t pos) : text_(text), pos_(pos) {}

  size_t pos() const { return pos_; }

  Result<std::string> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::ParseError("automaton text ended early");
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Status Expect(const char* keyword) {
    FO2DT_ASSIGN_OR_RETURN(std::string token, Next());
    if (token != keyword) {
      return Status::ParseError(StringFormat(
          "expected '%s' in automaton text, got '%s'", keyword, token.c_str()));
    }
    return Status::OK();
  }

  Result<uint64_t> Number() {
    FO2DT_ASSIGN_OR_RETURN(std::string token, Next());
    uint64_t value = 0;
    if (token.empty()) return Status::ParseError("empty automaton number");
    for (char c : token) {
      if (c < '0' || c > '9') {
        return Status::ParseError(StringFormat(
            "bad number '%s' in automaton text", token.c_str()));
      }
      uint64_t digit = static_cast<uint64_t>(c - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        return Status::ParseError(StringFormat(
            "number '%s' overflows in automaton text", token.c_str()));
      }
      value = value * 10 + digit;
    }
    return value;
  }

  Result<uint64_t> NumberBelow(uint64_t bound, const char* what) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t value, Number());
    if (value >= bound) {
      return Status::ParseError(StringFormat(
          "%s %llu out of range (have %llu)", what,
          static_cast<unsigned long long>(value),
          static_cast<unsigned long long>(bound)));
    }
    return value;
  }

 private:
  const std::string& text_;
  size_t pos_;
};

}  // namespace

std::string TreeAutomatonToText(const TreeAutomaton& automaton) {
  std::string out = StringFormat(
      "automaton %llu %llu\n",
      static_cast<unsigned long long>(automaton.num_symbols()),
      static_cast<unsigned long long>(automaton.num_states()));

  out += StringFormat("initial %llu",
                      static_cast<unsigned long long>(automaton.initial().size()));
  for (TreeState q : automaton.initial()) {
    out += StringFormat(" %u", q);
  }
  out += "\n";

  out += StringFormat(
      "nonfirst %llu",
      static_cast<unsigned long long>(automaton.non_first().size()));
  for (TreeState q : automaton.non_first()) {
    out += StringFormat(" %u", q);
  }
  out += "\n";

  out += StringFormat(
      "accepting %llu",
      static_cast<unsigned long long>(automaton.accepting().size()));
  for (const auto& [q, a] : automaton.accepting()) {
    out += StringFormat(" %u %u", q, a);
  }
  out += "\n";

  // Transitions are stored in insertion order; emit them sorted so textual
  // round-trips of structurally equal automata produce identical bytes — the
  // solve cache and the query log key on the FNV-1a of this text.
  auto sorted = [](const std::vector<std::tuple<TreeState, Symbol, TreeState>>&
                       transitions) {
    std::vector<std::tuple<TreeState, Symbol, TreeState>> ordered = transitions;
    std::sort(ordered.begin(), ordered.end());
    return ordered;
  };

  out += StringFormat(
      "horizontal %llu",
      static_cast<unsigned long long>(automaton.horizontal().size()));
  for (const auto& [from, a, to] : sorted(automaton.horizontal())) {
    out += StringFormat(" %u %u %u", from, a, to);
  }
  out += "\n";

  out += StringFormat(
      "vertical %llu",
      static_cast<unsigned long long>(automaton.vertical().size()));
  for (const auto& [from, a, to] : sorted(automaton.vertical())) {
    out += StringFormat(" %u %u %u", from, a, to);
  }
  out += "\n";
  return out;
}

Result<TreeAutomaton> ParseTreeAutomatonText(const std::string& text,
                                             size_t* pos) {
  TokenReader reader(text, *pos);
  FO2DT_RETURN_NOT_OK(reader.Expect("automaton"));
  FO2DT_ASSIGN_OR_RETURN(uint64_t num_symbols, reader.Number());
  FO2DT_ASSIGN_OR_RETURN(uint64_t num_states, reader.Number());
  // A generous sanity cap; replay inputs are small by construction.
  constexpr uint64_t kMaxDim = 1u << 24;
  if (num_symbols > kMaxDim || num_states > kMaxDim) {
    return Status::ParseError("automaton dimensions implausibly large");
  }
  TreeAutomaton automaton(static_cast<size_t>(num_symbols),
                          static_cast<size_t>(num_states));

  FO2DT_RETURN_NOT_OK(reader.Expect("initial"));
  FO2DT_ASSIGN_OR_RETURN(uint64_t k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t q,
                           reader.NumberBelow(num_states, "initial state"));
    automaton.SetInitial(static_cast<TreeState>(q));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("nonfirst"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t q,
                           reader.NumberBelow(num_states, "nonfirst state"));
    automaton.SetNonFirst(static_cast<TreeState>(q));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("accepting"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t q,
                           reader.NumberBelow(num_states, "accepting state"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t a,
                           reader.NumberBelow(num_symbols, "accepting symbol"));
    automaton.SetAccepting(static_cast<TreeState>(q), static_cast<Symbol>(a));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("horizontal"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t from,
                           reader.NumberBelow(num_states, "horizontal state"));
    FO2DT_ASSIGN_OR_RETURN(
        uint64_t a, reader.NumberBelow(num_symbols, "horizontal symbol"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t to,
                           reader.NumberBelow(num_states, "horizontal state"));
    automaton.AddHorizontal(static_cast<TreeState>(from),
                            static_cast<Symbol>(a),
                            static_cast<TreeState>(to));
  }

  FO2DT_RETURN_NOT_OK(reader.Expect("vertical"));
  FO2DT_ASSIGN_OR_RETURN(k, reader.Number());
  for (uint64_t i = 0; i < k; ++i) {
    FO2DT_ASSIGN_OR_RETURN(uint64_t from,
                           reader.NumberBelow(num_states, "vertical state"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t a,
                           reader.NumberBelow(num_symbols, "vertical symbol"));
    FO2DT_ASSIGN_OR_RETURN(uint64_t to,
                           reader.NumberBelow(num_states, "vertical state"));
    automaton.AddVertical(static_cast<TreeState>(from), static_cast<Symbol>(a),
                          static_cast<TreeState>(to));
  }

  *pos = reader.pos();
  return automaton;
}

Result<TreeAutomaton> ParseTreeAutomaton(const std::string& text) {
  size_t pos = 0;
  FO2DT_ASSIGN_OR_RETURN(TreeAutomaton automaton,
                         ParseTreeAutomatonText(text, &pos));
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos != text.size()) {
    return Status::ParseError("trailing content after automaton text");
  }
  return automaton;
}

}  // namespace fo2dt
