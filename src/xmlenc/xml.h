/// \file xml.h
/// \brief Minimal XML documents and the Figure-3 data-tree encoding.
///
/// The paper encodes XML following the XPath data model: the attributes of
/// an element become attribute children (labeled with the attribute name)
/// carrying the attribute's value as their data value; element nodes' own
/// data values are unused (zero here). Attribute children precede element
/// children, in declaration order.
///
/// The XML parser covers the fragment needed for the examples and
/// benchmarks: nested elements, attributes with quoted values, self-closing
/// tags, comments; text content is ignored.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "datatree/data_tree.h"

namespace fo2dt {

/// \brief An XML attribute.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// \brief An XML element (text content is not modeled).
struct XmlElement {
  std::string tag;
  std::vector<XmlAttribute> attributes;
  std::vector<XmlElement> children;
};

/// Parses a (fragment of an) XML document.
Result<XmlElement> ParseXml(const std::string& text);

/// Serializes with 2-space indentation.
std::string XmlToString(const XmlElement& root);

/// \brief Dictionary interning attribute value strings as data values.
class ValueDictionary {
 public:
  DataValue Intern(const std::string& value);
  /// Name of \p v; empty when out of range.
  const std::string& Name(DataValue v) const;
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::map<std::string, DataValue> index_;
};

/// Figure-3 encoding: element/attribute labels are interned into
/// \p labels, attribute values into \p values.
Result<DataTree> EncodeXml(const XmlElement& root, Alphabet* labels,
                           ValueDictionary* values);

/// Inverse of EncodeXml (attribute children turn back into attributes;
/// attribute labels are those that appear as leaves with interned values —
/// callers pass the set of attribute labels explicitly to disambiguate).
Result<XmlElement> DecodeXml(const DataTree& t, const Alphabet& labels,
                             const ValueDictionary& values,
                             const std::vector<Symbol>& attribute_labels);

}  // namespace fo2dt

