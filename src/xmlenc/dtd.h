/// \file dtd.h
/// \brief DTD-style schemas and their compilation to tree automata.
///
/// A Dtd assigns each element label a content model (a regular expression
/// over element labels) and a list of attributes. In the Figure-3 encoding
/// an element's children are its attribute nodes (in declaration order)
/// followed by a word in the content model; attribute nodes are leaves.
///
/// DtdToTreeAutomaton compiles the schema to a hedge automaton: states are
/// (parent label, content-DFA progress, leaf flag, own label) tuples; the
/// non-first state set anchors each content DFA's start at the first child,
/// and the every-leaf-initial condition forces childless elements to have
/// nullable content models — see the expressiveness note in
/// tree_automaton.h. The resulting automaton accepts exactly the encodings
/// of documents valid under the DTD.

#pragma once

#include <vector>

#include "automata/tree_automaton.h"
#include "automata/word_automata.h"

namespace fo2dt {

/// \brief Declaration of one element type.
struct DtdElement {
  Symbol element;
  /// Content model over *element* labels (attributes are added implicitly).
  Regex content = Regex::Epsilon();
  /// Attribute labels, in order; each appears exactly once as a leading
  /// child of the element.
  std::vector<Symbol> attributes;
};

/// \brief A DTD: a root label plus element declarations. Labels without a
/// declaration are attribute-like: always leaves, any data value.
struct Dtd {
  Symbol root = 0;
  std::vector<DtdElement> elements;
};

/// Compiles \p dtd into a tree automaton over \p num_labels labels (must
/// cover every label mentioned).
Result<TreeAutomaton> DtdToTreeAutomaton(const Dtd& dtd, size_t num_labels);

}  // namespace fo2dt

