#include "xmlenc/xml.h"

#include <cctype>

#include "common/strings.h"

namespace fo2dt {

namespace {

class XmlParser {
 public:
  explicit XmlParser(const std::string& text) : text_(text) {}

  Result<XmlElement> Parse() {
    SkipMisc();
    FO2DT_ASSIGN_OR_RETURN(XmlElement root, ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StringFormat("trailing XML content at offset %zu", pos_));
    }
    return root;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments and text content.
  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (text_.compare(pos_, 4, "<!--") == 0) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      // Text content: skip until the next '<'.
      if (pos_ < text_.size() && text_[pos_] != '<') {
        while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
        continue;
      }
      return;
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(
          StringFormat("expected XML name at offset %zu", start));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<XmlElement> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::ParseError(
          StringFormat("expected '<' at offset %zu", pos_));
    }
    ++pos_;
    XmlElement elem;
    FO2DT_ASSIGN_OR_RETURN(elem.tag, ParseName());
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated start tag: " + elem.tag);
      }
      if (text_[pos_] == '/') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') {
          return Status::ParseError("malformed self-closing tag");
        }
        pos_ += 2;
        return elem;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      XmlAttribute attr;
      FO2DT_ASSIGN_OR_RETURN(attr.name, ParseName());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::ParseError("expected '=' after attribute " + attr.name);
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Status::ParseError("expected quoted attribute value");
      }
      char quote = text_[pos_++];
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated attribute value");
      }
      attr.value = text_.substr(start, pos_ - start);
      ++pos_;
      elem.attributes.push_back(std::move(attr));
    }
    // Content: child elements until the matching end tag.
    for (;;) {
      SkipMisc();
      if (text_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        FO2DT_ASSIGN_OR_RETURN(std::string closing, ParseName());
        if (closing != elem.tag) {
          return Status::ParseError("mismatched end tag: expected " +
                                    elem.tag + ", got " + closing);
        }
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::ParseError("expected '>' after end tag");
        }
        ++pos_;
        return elem;
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated element: " + elem.tag);
      }
      FO2DT_ASSIGN_OR_RETURN(XmlElement child, ParseElement());
      elem.children.push_back(std::move(child));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void Render(const XmlElement& e, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  *out += '<' + e.tag;
  for (const XmlAttribute& a : e.attributes) {
    *out += ' ' + a.name + "=\"" + a.value + "\"";
  }
  if (e.children.empty()) {
    *out += "/>\n";
    return;
  }
  *out += ">\n";
  for (const XmlElement& c : e.children) Render(c, depth + 1, out);
  out->append(2 * depth, ' ');
  *out += "</" + e.tag + ">\n";
}

}  // namespace

Result<XmlElement> ParseXml(const std::string& text) {
  return XmlParser(text).Parse();
}

std::string XmlToString(const XmlElement& root) {
  std::string out;
  Render(root, 0, &out);
  return out;
}

DataValue ValueDictionary::Intern(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  DataValue v = static_cast<DataValue>(names_.size());
  names_.push_back(value);
  index_.emplace(value, v);
  return v;
}

const std::string& ValueDictionary::Name(DataValue v) const {
  static const std::string kEmpty;
  return v < names_.size() ? names_[v] : kEmpty;
}

namespace {

Status EncodeInto(const XmlElement& e, DataTree* t, NodeId parent,
                  Alphabet* labels, ValueDictionary* values) {
  Symbol tag = labels->Intern(e.tag);
  NodeId me;
  if (parent == kNoNode) {
    FO2DT_ASSIGN_OR_RETURN(me, t->CreateRoot(tag, 0));
  } else {
    FO2DT_ASSIGN_OR_RETURN(me, t->AppendChild(parent, tag, 0));
  }
  for (const XmlAttribute& a : e.attributes) {
    Symbol name = labels->Intern(a.name);
    DataValue v = values->Intern(a.value);
    FO2DT_RETURN_NOT_OK(t->AppendChild(me, name, v).status());
  }
  for (const XmlElement& c : e.children) {
    FO2DT_RETURN_NOT_OK(EncodeInto(c, t, me, labels, values));
  }
  return Status::OK();
}

}  // namespace

Result<DataTree> EncodeXml(const XmlElement& root, Alphabet* labels,
                           ValueDictionary* values) {
  DataTree t;
  FO2DT_RETURN_NOT_OK(EncodeInto(root, &t, kNoNode, labels, values));
  return t;
}

namespace {

Result<XmlElement> DecodeNode(const DataTree& t, NodeId v,
                              const Alphabet& labels,
                              const ValueDictionary& values,
                              const std::vector<char>& is_attribute) {
  XmlElement out;
  out.tag = labels.Name(t.label(v));
  for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
    if (is_attribute[t.label(c)]) {
      out.attributes.push_back(
          XmlAttribute{labels.Name(t.label(c)), values.Name(t.data(c))});
    } else {
      FO2DT_ASSIGN_OR_RETURN(XmlElement child,
                             DecodeNode(t, c, labels, values, is_attribute));
      out.children.push_back(std::move(child));
    }
  }
  return out;
}

}  // namespace

Result<XmlElement> DecodeXml(const DataTree& t, const Alphabet& labels,
                             const ValueDictionary& values,
                             const std::vector<Symbol>& attribute_labels) {
  if (t.empty()) return Status::InvalidArgument("cannot decode an empty tree");
  std::vector<char> is_attribute(labels.size(), 0);
  for (Symbol s : attribute_labels) {
    if (s >= labels.size()) {
      return Status::InvalidArgument("attribute label outside alphabet");
    }
    is_attribute[s] = 1;
  }
  return DecodeNode(t, t.root(), labels, values, is_attribute);
}

}  // namespace fo2dt
