#include "xmlenc/dtd.h"

#include <optional>

#include "common/strings.h"

namespace fo2dt {

Result<TreeAutomaton> DtdToTreeAutomaton(const Dtd& dtd, size_t num_labels) {
  const size_t l = num_labels;
  if (dtd.root >= l) {
    return Status::InvalidArgument("DTD root label outside alphabet");
  }
  // Content DFA per label; undeclared labels get the ε-only model.
  std::vector<std::optional<Dfa>> dfas(l);
  for (const DtdElement& e : dtd.elements) {
    if (e.element >= l) {
      return Status::InvalidArgument("DTD element label outside alphabet");
    }
    if (dfas[e.element].has_value()) {
      return Status::InvalidArgument(
          "duplicate DTD declaration for one element");
    }
    std::vector<Regex> parts;
    for (Symbol a : e.attributes) {
      if (a >= l) {
        return Status::InvalidArgument("DTD attribute label outside alphabet");
      }
      parts.push_back(Regex::Sym(a));
    }
    parts.push_back(e.content);
    dfas[e.element] =
        Determinize(Regex::Concat(std::move(parts)).ToNfa(l)).Minimize();
  }
  for (Symbol a = 0; a < l; ++a) {
    if (!dfas[a].has_value()) {
      dfas[a] = Determinize(Regex::Epsilon().ToNfa(l)).Minimize();
    }
  }
  size_t max_h = 1;
  for (Symbol a = 0; a < l; ++a) {
    max_h = std::max(max_h, dfas[a]->num_states());
  }

  // State = (ctx, h, flag, own): ctx in [0, l] where ctx == l is the root
  // context (no parent); h = content-DFA state of D_ctx *before* reading the
  // node's own label; flag: 0 = leaf, 1 = internal; own = the node's label.
  const size_t num_states = (l + 1) * max_h * 2 * l;
  auto state_id = [&](size_t ctx, size_t h, size_t flag, Symbol own) {
    return static_cast<TreeState>(((ctx * max_h + h) * 2 + flag) * l + own);
  };
  TreeAutomaton out(l, num_states);

  auto nullable = [&](Symbol a) {
    return dfas[a]->IsAccepting(dfas[a]->initial());
  };

  for (size_t ctx = 0; ctx <= l; ++ctx) {
    const size_t h_count = ctx < l ? dfas[ctx]->num_states() : 1;
    for (size_t h = 0; h < h_count; ++h) {
      for (Symbol own = 0; own < l; ++own) {
        for (size_t flag = 0; flag < 2; ++flag) {
          TreeState me = state_id(ctx, h, flag, own);
          // Leaves must have nullable content (no children to realize it).
          if (flag == 0 && nullable(own)) out.SetInitial(me);
          // Within a siblinghood, the content DFA must start at its initial
          // state: every other progress value needs a left neighbor.
          if (ctx < l &&
              h != dfas[ctx]->initial()) {
            out.SetNonFirst(me);
          }
          if (ctx == l) {
            // Root context: accept when the own label is the DTD root.
            if (own == dtd.root) out.SetAccepting(me, own);
            continue;  // the root has no outgoing transitions
          }
          WordState h_after =
              dfas[ctx]->Transition(static_cast<WordState>(h), own);
          // Horizontal: the next sibling continues in the same context.
          for (Symbol next_own = 0; next_own < l; ++next_own) {
            for (size_t next_flag = 0; next_flag < 2; ++next_flag) {
              out.AddHorizontal(me, own,
                                state_id(ctx, h_after, next_flag, next_own));
            }
          }
          // Vertical: allowed when the children word is complete; the parent
          // is an internal node whose own label equals this context.
          if (dfas[ctx]->IsAccepting(h_after)) {
            for (size_t pctx = 0; pctx <= l; ++pctx) {
              const size_t ph_count = pctx < l ? dfas[pctx]->num_states() : 1;
              for (size_t ph = 0; ph < ph_count; ++ph) {
                out.AddVertical(
                    me, own,
                    state_id(pctx, ph, /*flag=*/1, static_cast<Symbol>(ctx)));
              }
            }
          }
        }
      }
    }
  }
  // The raw product space is mostly junk (impossible (context, own) pairs);
  // trimming typically shrinks it by an order of magnitude.
  return out.Trim();
}

}  // namespace fo2dt
